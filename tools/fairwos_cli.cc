// fairwos_cli — the command-line entry point for the library.
//
//   fairwos_cli list
//       Prints the available datasets, methods, and backbones.
//
//   fairwos_cli generate --dataset bail [--scale 20] [--seed 42] --out DIR
//       Generates a synthetic benchmark and saves it as CSVs (data/io.h).
//
//   fairwos_cli train --dataset bail | --data-dir DIR
//                     [--method fairwos] [--backbone gcn] [--alpha A]
//                     [--epochs 300] [--trials 1] [--seed 42]
//       Trains a method and prints test metrics (mean ± std over trials).
//
//   fairwos_cli audit --dataset bail | --data-dir DIR
//                     [--backbone gcn] [--trials 3] [--seed 42]
//       Runs every method in the registry and prints the comparison table.
//
//   fairwos_cli trace-report --in trace.json [--telemetry run.jsonl]
//       Summarises a Chrome-trace file written by --trace-out (span counts
//       and wall time per span name) and, optionally, a JSONL telemetry
//       stream written by --telemetry-out. Fails on malformed input, so it
//       doubles as the validator in CI.
//
//   fairwos_cli export --dataset bail | --data-dir DIR --out model.fwmodel
//                      [--method fairwos] [--backbone gcn] [--epochs 300]
//                      [--seed 42] [--model-id ID]
//       Fits one method and freezes the result as a `.fwmodel` artifact
//       (docs/serving.md): architecture config, trained parameters, and the
//       dataset's normalization statistics, in the same CRC-protected FWCP
//       envelope as training checkpoints.
//
//   fairwos_cli serve-bench --model model.fwmodel
//                           --dataset bail | --data-dir DIR
//                           [--requests 1000] [--clients 4] [--max-batch 32]
//                           [--flush-interval-ms 1.0] [--cache-capacity 1024]
//                           [--hot-fraction 0.8] [--bench-seed 1]
//                           [--overload true] [--max-queue N] [--quota N]
//                           [--deadline-ms MS] [--leader-timeout-ms MS]
//                           [--skew 4.0]
//                           [--verify true] [--json-out BENCH_serve.json]
//       Replays a synthetic request stream against the batched inference
//       engine and reports throughput, latency percentiles, and request
//       outcomes (served / shed / deadline-exceeded / degraded). --overload
//       switches to a stress profile: 16 clients, a heavy-tailed node mix,
//       an 8-deep admission queue, and 50 ms deadlines, measuring p99 and
//       shed rate under saturation. --verify bit-compares every non-degraded
//       served prediction against an in-process FittedModel::Predict over
//       the same artifact.
//
//   fairwos_cli serve-bench --audit true ... [--audit-window 128]
//                           [--audit-stride 32] [--audit-threshold-sp 25]
//                           [--audit-fraction 1.0] [--shift-at 0.5]
//                           [--snapshot-out ops.jsonl] [--snapshot-every 100]
//       Streaming-fairness-auditor drill (docs/serving.md): replays a
//       deterministic single-client stream whose group-conditional positive
//       rates are balanced (windowed dSP exactly 0), then flips group 1 to
//       all-negative at --shift-at. The bench asserts the auditor's latched
//       fairness_alert fires after the shift and within one audit window,
//       and records the detection lag in the --json-out report.
//       --snapshot-out additionally appends periodic ops snapshots
//       (serve/snapshot.h) every --snapshot-every requests.
//
//   fairwos_cli serve-bench --mutate true ... [--mutation-steps 300]
//                           [--publish-every 8] [--compact-every 64]
//                           [--max-pending 1024] [--invalidation-radius 2]
//                           [--fault-compactions 3] [--fault-deltas 2]
//                           [--mutation-log graph.fwlog]
//                           [--snapshot-out ops.jsonl]
//                           [--json-out BENCH_mutation.json]
//       Dynamic-graph chaos profile (docs/serving.md "Dynamic graphs"):
//       client threads serve a pre-drawn stream while a mutator replays a
//       drifting temporal script through graph::MutableGraph, publishing
//       epochs and compacting under injected kGraphCompaction /
//       kGraphDeltaApply faults. Every request must resolve, and after a
//       clean final compaction the served answers must be bit-identical to
//       a fresh forward over the from-scratch CSR (the bench exits
//       non-zero otherwise). Needs a dataset-feature model (e.g.
//       --method vanilla): frozen-input models cannot serve added nodes.
//       --snapshot-out appends one ops snapshot per published epoch, with
//       the mutation.*/compaction.* fields ops-report cross-checks.
//       --mutation-log attaches the durable write-ahead log (recovering
//       whatever an earlier run left in it first); the report then carries
//       refresh.* operator-patch counts and log.* append/truncate totals.
//
//   fairwos_cli mutation-replay --log graph.fwlog [--dataset toy]
//                               [--steps 200] [--publish-every 8]
//                               [--compact-every 64] [--kill-at N]
//                               [--recover true] [--digest-out FILE]
//       Kill-and-replay chaos drill (docs/serving.md "Dynamic graphs"):
//       replays a deterministic temporal script through a write-ahead-
//       logged MutableGraph. --kill-at N writes a digest of the state
//       after the Nth mutation, then dies via _Exit(137) with no shutdown
//       — the fsync'd log is all that survives. --recover replays the log
//       (base checkpoint + suffix) and writes the recovered digest; the
//       serve-chaos CI job asserts the two digest files are byte-equal.
//
//   fairwos_cli ops-report --in ops.jsonl
//       Validates and summarises an ops-snapshot JSONL stream written by
//       serve-bench --snapshot-out (or serve::OpsSnapshotter): sequence
//       integrity, request/batch totals, sliding-window latency quantiles,
//       and fairness-audit state. Fails on malformed input, so it doubles
//       as the validator in CI.
//
// Parallelism flags accepted by train and audit (docs/parallelism.md):
//   --threads N           total worker concurrency for parallel kernels and
//                         trial execution (default: the FAIRWOS_THREADS
//                         environment variable, else the hardware thread
//                         count). Results are bit-identical for any N.
//
// Observability flags accepted by train and audit (docs/observability.md):
//   --trace-out FILE      write a Chrome-trace JSON of all spans
//   --profile-out FILE    write the aggregated hierarchical text profile
//   --metrics-out FILE    write the metrics registry (.csv => CSV,
//                         .prom => Prometheus text exposition, else JSON)
//   --telemetry-out FILE  stream per-epoch training events as JSONL
//   --log-level LEVEL     debug|info|warning|error (default: info, or the
//                         FAIRWOS_LOG_LEVEL environment variable)
//
// Crash-resume flags accepted by train (docs/resume.md):
//   --checkpoint-dir DIR  rotating full-training-state checkpoints in DIR
//   --checkpoint-every N  save every N epochs (default 10; <= 0 saves only
//                         the graceful final checkpoint on interruption)
//   --keep-checkpoints N  rotation depth (default 3)
//   --resume              restart from the newest valid checkpoint in DIR
//   --max-wall-clock S    stop cleanly after S seconds at the next epoch
//                         boundary; exit code 3 signals "resumable"
//   --deadline-after-checks N
//                         deterministic test hook: expire the deadline after
//                         N polls instead of after wall-clock time
// SIGINT/SIGTERM are handled cooperatively: the run stops at the next epoch
// boundary, writes a final checkpoint when enabled, and exits with code 3.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "common/cli.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/threadpool.h"
#include "common/trace.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "data/temporal.h"
#include "eval/harness.h"
#include "graph/mutable_graph.h"
#include "eval/table.h"
#include "nn/checkpoint.h"
#include "obs/prometheus.h"
#include "obs/quantiles.h"
#include "serve/artifact.h"
#include "tensor/backend.h"
#include "serve/audit.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace fairwos::cli {
namespace {

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: fairwos_cli "
      "<list|generate|train|audit|trace-report|export|serve-bench|"
      "mutation-replay|ops-report|kernel-info> [flags]\n"
      "run with a subcommand to see its flags in the header of\n"
      "tools/fairwos_cli.cc\n");
  return 2;
}

/// Installs the requested observability sinks for the duration of a
/// subcommand and writes the export files on destruction.
class ObsSession {
 public:
  static common::Result<std::unique_ptr<ObsSession>> FromFlags(
      const common::CliFlags& flags) {
    auto session = std::unique_ptr<ObsSession>(new ObsSession());
    session->trace_out_ = flags.GetString("trace-out", "");
    session->profile_out_ = flags.GetString("profile-out", "");
    session->metrics_out_ = flags.GetString("metrics-out", "");
    if (!session->trace_out_.empty() || !session->profile_out_.empty()) {
      obs::TraceRecorder::Global().Enable();
    }
    const std::string telemetry_out = flags.GetString("telemetry-out", "");
    if (!telemetry_out.empty()) {
      FW_ASSIGN_OR_RETURN(session->telemetry_,
                          obs::JsonlFileSink::Open(telemetry_out));
      obs::SetEventSink(session->telemetry_.get());
    }
    return session;
  }

  ~ObsSession() {
    obs::SetEventSink(nullptr);
    const obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (!trace_out_.empty()) {
      Report(recorder.WriteChromeTrace(trace_out_), trace_out_);
    }
    if (!profile_out_.empty()) {
      Report(recorder.WriteTextProfile(profile_out_), profile_out_);
    }
    if (!metrics_out_.empty()) {
      const auto& registry = obs::MetricsRegistry::Global();
      const bool csv = metrics_out_.size() > 4 &&
                       metrics_out_.rfind(".csv") == metrics_out_.size() - 4;
      const bool prom = metrics_out_.size() > 5 &&
                        metrics_out_.rfind(".prom") == metrics_out_.size() - 5;
      Report(prom  ? obs::WritePrometheusText(metrics_out_, registry)
             : csv ? registry.WriteCsv(metrics_out_)
                   : registry.WriteJson(metrics_out_),
             metrics_out_);
    }
  }

 private:
  ObsSession() = default;

  static void Report(const common::Status& status, const std::string& path) {
    if (status.ok()) {
      std::fprintf(stderr, "wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    }
  }

  std::string trace_out_;
  std::string profile_out_;
  std::string metrics_out_;
  std::unique_ptr<obs::JsonlFileSink> telemetry_;
};

/// Sizes the global thread pool from --threads; without the flag the pool
/// keeps its default (FAIRWOS_THREADS or the hardware thread count).
void ApplyThreadsFlag(const common::CliFlags& flags) {
  const int64_t threads = flags.GetInt("threads", 0);
  if (threads > 0) common::SetGlobalThreadCount(static_cast<int>(threads));
}

/// Selects the compute backend from --simd (scalar|avx2|auto; default keeps
/// the FAIRWOS_SIMD / CPUID choice) and toggles reassociating kernels from
/// --fast-math (see docs/kernels.md for the accuracy contract).
common::Status ApplySimdFlags(const common::CliFlags& flags) {
  if (flags.Has("simd")) {
    FW_ASSIGN_OR_RETURN(tensor::SimdMode mode,
                        tensor::ParseSimdMode(flags.GetString("simd", "auto")));
    FW_RETURN_IF_ERROR(tensor::SelectBackend(mode));
  }
  if (flags.Has("fast-math")) {
    tensor::SetFastMath(flags.GetBool("fast-math", false));
  }
  return common::Status::OK();
}

void PrintFailureReasons(const eval::AggregateMetrics& agg) {
  for (const std::string& reason : agg.failure_reasons) {
    std::printf("  failed %s\n", reason.c_str());
  }
}

common::Result<data::Dataset> ResolveDataset(const common::CliFlags& flags) {
  const std::string data_dir = flags.GetString("data-dir", "");
  if (!data_dir.empty()) return data::LoadDataset(data_dir);
  const std::string name = flags.GetString("dataset", "");
  if (name.empty()) {
    return common::Status::InvalidArgument(
        "pass --dataset <name> or --data-dir <dir>");
  }
  data::DatasetOptions options;
  options.scale = flags.GetDouble("scale", 20.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  return data::MakeDataset(name, options);
}

common::Result<baselines::MethodOptions> ResolveMethodOptions(
    const common::CliFlags& flags, const std::string& dataset_name) {
  baselines::MethodOptions options;
  FW_ASSIGN_OR_RETURN(options.backbone,
                      nn::ParseBackbone(flags.GetString("backbone", "gcn")));
  options.train.epochs = flags.GetInt("epochs", options.train.epochs);
  options.fairwos.alpha = flags.GetDouble(
      "alpha", baselines::RecommendedAlpha(dataset_name, options.backbone));
  options.fairwos.finetune_lr =
      baselines::RecommendedFinetuneLr(options.backbone);
  options.fairwos.counterfactual.top_k =
      flags.GetInt("k", options.fairwos.counterfactual.top_k);
  return options;
}

int List() {
  std::printf("datasets: toy");
  for (const auto& name : data::BenchmarkNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nmethods:");
  for (const auto& name : baselines::KnownMethodNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nbackbones: gcn gin sage gat\n");
  return 0;
}

int Generate(const common::CliFlags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    return Fail(common::Status::InvalidArgument("--out <dir> is required"));
  }
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  common::Status status = data::SaveDataset(out, ds_or.value());
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s: %lld nodes, %lld attrs, %lld edges\n", out.c_str(),
              static_cast<long long>(ds_or->num_nodes()),
              static_cast<long long>(ds_or->num_attrs()),
              static_cast<long long>(ds_or->graph.num_edges()));
  return 0;
}

/// --checkpoint-dir / --checkpoint-every / --keep-checkpoints / --resume.
nn::CheckpointOptions ResolveCheckpointOptions(const common::CliFlags& flags) {
  nn::CheckpointOptions ckpt;
  ckpt.dir = flags.GetString("checkpoint-dir", "");
  ckpt.every = flags.GetInt("checkpoint-every", 10);
  ckpt.keep = flags.GetInt("keep-checkpoints", 3);
  ckpt.resume = flags.GetBool("resume", false);
  return ckpt;
}

/// --deadline-after-checks (deterministic test hook) wins over
/// --max-wall-clock; with neither, the deadline never fires on its own but
/// SIGINT/SIGTERM still stop the run cooperatively.
common::Deadline ResolveDeadline(const common::CliFlags& flags) {
  const int64_t checks = flags.GetInt("deadline-after-checks", -1);
  if (checks >= 0) return common::Deadline::AfterChecks(checks);
  const double wall = flags.GetDouble("max-wall-clock", 0.0);
  if (wall > 0.0) return common::Deadline::After(wall);
  return common::Deadline::Never();
}

/// The shared flag surface of every model-running subcommand (train, audit,
/// export, serve-bench), resolved in one place: --threads sizes the pool,
/// the --*-out flags open the observability session, and the checkpoint /
/// deadline flags are parsed for whichever subcommand consumes them.
struct RunOptions {
  std::unique_ptr<ObsSession> obs;
  nn::CheckpointOptions checkpoint;
  common::Deadline deadline = common::Deadline::Never();

  static common::Result<RunOptions> FromFlags(const common::CliFlags& flags) {
    ApplyThreadsFlag(flags);
    FW_RETURN_IF_ERROR(ApplySimdFlags(flags));
    RunOptions run;
    FW_ASSIGN_OR_RETURN(run.obs, ObsSession::FromFlags(flags));
    run.checkpoint = ResolveCheckpointOptions(flags);
    run.deadline = ResolveDeadline(flags);
    return run;
  }

  /// Stamps the checkpoint/deadline settings into a method configuration.
  /// Each copy of an AfterChecks deadline counts its own polls; with a
  /// single method per invocation only the method's copy matters.
  void Configure(baselines::MethodOptions* options) const {
    options->train.checkpoint = checkpoint;
    options->train.deadline = deadline;
    options->fairwos.checkpoint = checkpoint;
    options->fairwos.deadline = deadline;
  }
};

int Train(const common::CliFlags& flags) {
  auto run_or = RunOptions::FromFlags(flags);
  if (!run_or.ok()) return Fail(run_or.status());
  const RunOptions& run = run_or.value();
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();
  auto options_or = ResolveMethodOptions(flags, ds.name);
  if (!options_or.ok()) return Fail(options_or.status());
  const nn::CheckpointOptions& ckpt = run.checkpoint;
  const common::Deadline& deadline = run.deadline;
  common::InstallSignalHandlers();
  baselines::MethodOptions options = options_or.value();
  run.Configure(&options);
  const std::string method_name = flags.GetString("method", "fairwos");
  auto method_or = baselines::MakeMethod(method_name, options);
  if (!method_or.ok()) return Fail(method_or.status());
  const int64_t trials = flags.GetInt("trials", 1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (ckpt.enabled() && trials > 1) {
    std::fprintf(stderr,
                 "warning: --checkpoint-dir shares one directory across all "
                 "trials; checkpointing and --resume are only well-defined "
                 "with --trials 1\n");
  }
  auto agg_or =
      eval::RunRepeated(method_or.value().get(), ds, trials, seed, &deadline);
  if (!agg_or.ok()) {
    if (agg_or.status().code() == common::StatusCode::kDeadlineExceeded) {
      std::fprintf(stderr, "deadline exceeded: %s\n",
                   agg_or.status().ToString().c_str());
      if (ckpt.enabled()) {
        std::fprintf(stderr,
                     "resume with: --checkpoint-dir %s --resume true\n",
                     ckpt.dir.c_str());
      }
      return 3;  // distinct from generic failure: the run is resumable
    }
    return Fail(agg_or.status());
  }
  const auto& agg = agg_or.value();
  std::printf(
      "%s on %s (%lld trial(s)):\n"
      "  ACC  %s\n  F1   %s\n  AUC  %s\n  dSP  %s\n  dEO  %s\n  time "
      "%.2fs\n",
      method_or.value()->name().c_str(), ds.name.c_str(),
      static_cast<long long>(trials),
      common::FormatMeanStd(agg.acc.mean, agg.acc.stddev).c_str(),
      common::FormatMeanStd(agg.f1.mean, agg.f1.stddev).c_str(),
      common::FormatMeanStd(agg.auc.mean, agg.auc.stddev).c_str(),
      common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev).c_str(),
      common::FormatMeanStd(agg.deo.mean, agg.deo.stddev).c_str(),
      agg.seconds.mean);
  if (agg.failed_trials > 0) {
    std::printf("  %lld/%lld trial(s) failed:\n",
                static_cast<long long>(agg.failed_trials),
                static_cast<long long>(trials));
    PrintFailureReasons(agg);
  }
  if (agg.skipped_trials > 0) {
    std::printf("  %lld/%lld trial(s) skipped (deadline)\n",
                static_cast<long long>(agg.skipped_trials),
                static_cast<long long>(trials));
  }
  return 0;
}

int Audit(const common::CliFlags& flags) {
  auto run_or = RunOptions::FromFlags(flags);
  if (!run_or.ok()) return Fail(run_or.status());
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();
  auto options_or = ResolveMethodOptions(flags, ds.name);
  if (!options_or.ok()) return Fail(options_or.status());
  const int64_t trials = flags.GetInt("trials", 3);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  eval::TablePrinter table(
      {"method", "ACC %", "dSP %", "dEO %", "sec"});
  for (const auto& name : baselines::KnownMethodNames()) {
    auto method_or = baselines::MakeMethod(name, options_or.value());
    if (!method_or.ok()) return Fail(method_or.status());
    auto agg_or = eval::RunRepeated(method_or.value().get(), ds, trials, seed);
    if (!agg_or.ok()) return Fail(agg_or.status());
    const auto& agg = agg_or.value();
    table.AddRow({method_or.value()->name(),
                  common::FormatMeanStd(agg.acc.mean, agg.acc.stddev),
                  common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev),
                  common::FormatMeanStd(agg.deo.mean, agg.deo.stddev),
                  common::StrFormat("%.2f", agg.seconds.mean)});
    PrintFailureReasons(agg);
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}

int Export(const common::CliFlags& flags) {
  auto run_or = RunOptions::FromFlags(flags);
  if (!run_or.ok()) return Fail(run_or.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    return Fail(common::Status::InvalidArgument(
        "--out <model.fwmodel> is required"));
  }
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();
  auto options_or = ResolveMethodOptions(flags, ds.name);
  if (!options_or.ok()) return Fail(options_or.status());
  baselines::MethodOptions options = options_or.value();
  run_or.value().Configure(&options);
  const std::string method_name = flags.GetString("method", "fairwos");
  auto method_or = baselines::MakeMethod(method_name, options);
  if (!method_or.ok()) return Fail(method_or.status());
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  auto fitted_or = method_or.value()->Fit(ds, seed);
  if (!fitted_or.ok()) return Fail(fitted_or.status());
  const core::FittedGnnModel* gnn = fitted_or.value()->AsGnn();
  if (gnn == nullptr) {
    return Fail(common::Status::FailedPrecondition(
        method_or.value()->name() +
        " does not produce an exportable GNN model"));
  }
  serve::ModelArtifact artifact =
      serve::MakeArtifact(*gnn, ds, flags.GetString("model-id", ""));
  common::Status status = serve::SaveModelArtifact(out, artifact);
  if (!status.ok()) return Fail(status);
  int64_t total_floats = 0;
  for (const auto& p : artifact.params) {
    total_floats += static_cast<int64_t>(p.size());
  }
  std::printf("wrote %s: model %s, %zu parameter tensors (%lld floats), "
              "trained in %.2fs\n",
              out.c_str(), artifact.model_id.c_str(), artifact.params.size(),
              static_cast<long long>(total_floats),
              fitted_or.value()->train_seconds());
  return 0;
}

/// serve-bench --audit: a deterministic fairness-auditor drill. The stream
/// is drawn from (group, predicted-label) node pools so the windowed ΔSP
/// is exactly 0 at every pre-shift stride checkpoint (both groups 50%
/// predicted-positive), then a planted bias shift flips group 1 to
/// all-negative draws and ΔSP ramps at 50·m/window percent after m
/// post-shift audited samples. The bench asserts the latched
/// fairness_alert fires strictly after the shift and within one audit
/// window (+ one stride of checkpoint slack), so it is self-validating
/// under ctest/CI.
int AuditBench(const common::CliFlags& flags, const data::Dataset& ds,
               const std::string& model_path, serve::InferenceEngine& engine,
               const serve::AuditTable& table,
               const serve::AuditOptions& audit) {
  const int64_t requests = flags.GetInt("requests", 600);
  const double audit_fraction = flags.GetDouble("audit-fraction", 1.0);
  const double shift_at = flags.GetDouble("shift-at", 0.5);
  if (requests < 8) {
    return Fail(common::Status::InvalidArgument(
        "--audit needs --requests >= 8"));
  }
  if (shift_at <= 0.0 || shift_at >= 1.0) {
    return Fail(
        common::Status::InvalidArgument("--shift-at must be in (0, 1)"));
  }

  // The pattern needs each node's served label up front; the engine's
  // non-degraded answers are bit-identical to this in-process Predict.
  auto artifact_or = serve::LoadModelArtifact(model_path);
  if (!artifact_or.ok()) return Fail(artifact_or.status());
  auto model_or = serve::RestoreFittedModel(artifact_or.value(), ds);
  if (!model_or.ok()) return Fail(model_or.status());
  const nn::PredictionResult full = model_or.value()->Predict(ds);

  // (group, predicted label) pools over the audited nodes; background
  // traffic (when --audit-fraction < 1) comes from the unaudited rest.
  std::vector<int64_t> pool[2][2];
  std::vector<int64_t> unaudited;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    if (table.Find(v) != nullptr) {
      pool[ds.sens[static_cast<size_t>(v)]][full.pred[static_cast<size_t>(v)]]
          .push_back(v);
    } else {
      unaudited.push_back(v);
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (int p = 0; p < 2; ++p) {
      if (pool[s][p].empty()) {
        return Fail(common::Status::FailedPrecondition(common::StrFormat(
            "audit bench needs an audited node with sens=%d predicted=%d; "
            "train the exported model longer or raise --audit-fraction",
            s, p)));
      }
    }
  }

  // The shift lands on a full 4-draw cycle so every pre-shift stride
  // checkpoint sees both groups exactly balanced.
  const int64_t shift_pattern =
      std::max<int64_t>(4, (static_cast<int64_t>(
                                shift_at * static_cast<double>(requests)) /
                            4) *
                               4);
  if (shift_pattern < audit.window) {
    std::fprintf(stderr,
                 "warning: only %lld audited draws before the shift but the "
                 "audit window holds %lld; raise --requests or lower "
                 "--audit-window for a full-window baseline\n",
                 static_cast<long long>(shift_pattern),
                 static_cast<long long>(audit.window));
  }

  std::unique_ptr<serve::OpsSnapshotter> snapshotter;
  const std::string snapshot_out = flags.GetString("snapshot-out", "");
  const int64_t snapshot_every = flags.GetInt("snapshot-every", 100);
  if (!snapshot_out.empty()) {
    if (snapshot_every < 1) {
      return Fail(
          common::Status::InvalidArgument("--snapshot-every must be >= 1"));
    }
    auto snap_or = serve::OpsSnapshotter::Open(snapshot_out, &engine);
    if (!snap_or.ok()) return Fail(snap_or.status());
    snapshotter = std::move(snap_or.value());
  }

  // Single sequential client: the detection index is then a pure function
  // of --bench-seed, not of thread scheduling.
  common::Rng rng(static_cast<uint64_t>(flags.GetInt("bench-seed", 1)));
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(requests));
  int64_t pattern_drawn = 0;
  int64_t shift_request = -1;
  int64_t first_alert_request = -1;
  int64_t first_alert_pattern = -1;
  common::Stopwatch wall;
  for (int64_t i = 0; i < requests; ++i) {
    int64_t node;
    const bool background = audit_fraction < 1.0 && !unaudited.empty() &&
                            rng.Bernoulli(1.0 - audit_fraction);
    if (background) {
      node = unaudited[static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(unaudited.size())))];
    } else {
      const bool post_shift = pattern_drawn >= shift_pattern;
      if (post_shift && shift_request < 0) shift_request = i;
      const int64_t cyc = pattern_drawn % 4;
      const int s = cyc < 2 ? 0 : 1;
      // Pre-shift both groups alternate positive/negative; post-shift
      // group 1 only draws predicted-negative nodes.
      const int p = (post_shift && s == 1) ? 0 : (cyc % 2 == 0 ? 1 : 0);
      const std::vector<int64_t>& candidates = pool[s][p];
      node = candidates[static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(candidates.size())))];
      ++pattern_drawn;
    }
    common::Stopwatch request_watch;
    auto prediction = engine.Predict(node);
    if (!prediction.ok()) return Fail(prediction.status());
    latencies.push_back(request_watch.Millis());
    if (prediction->label != full.pred[static_cast<size_t>(node)]) {
      return Fail(common::Status::Internal(
          "served prediction for node " + std::to_string(node) +
          " diverges from in-process Predict; the planted-shift pattern "
          "is invalid"));
    }
    if (first_alert_request < 0 && engine.stats().fairness_alerts > 0) {
      first_alert_request = i;
      first_alert_pattern = pattern_drawn;
    }
    if (snapshotter != nullptr && (i + 1) % snapshot_every == 0) {
      common::Status status = snapshotter->SnapshotNow();
      if (!status.ok()) return Fail(status);
    }
  }
  const double wall_seconds = wall.Seconds();
  if (snapshotter != nullptr) {
    common::Status status = snapshotter->SnapshotNow();
    if (!status.ok()) return Fail(status);
    std::fprintf(stderr, "wrote %s (%lld snapshots)\n", snapshot_out.c_str(),
                 static_cast<long long>(snapshotter->snapshots_written()));
  }

  const serve::InferenceEngine::Stats stats = engine.stats();
  const serve::AuditWindowMetrics window = engine.audit_metrics();
  const bool detected = first_alert_request >= 0;
  const bool after_shift = detected && first_alert_pattern > shift_pattern;
  const int64_t detect_lag =
      detected ? first_alert_pattern - shift_pattern : -1;
  const bool within_window =
      detected && detect_lag <= audit.window + audit.stride;
  const double coverage_pct =
      100.0 * static_cast<double>(pattern_drawn) /
      static_cast<double>(requests);
  const obs::ExactQuantiles quantiles(std::move(latencies));

  std::printf(
      "audit bench: %lld requests (%lld audited, %.1f%% coverage) against "
      "%s in %.3fs\n"
      "  bias shift planted at audited sample %lld (request %lld)\n"
      "  fairness_alert %s%s\n"
      "  window dSP %.4f  dEO %.4f  DI %.4f  (%lld samples)\n"
      "  latency ms p50 %.4f  p90 %.4f  p99 %.4f  mean %.4f\n",
      static_cast<long long>(requests), static_cast<long long>(pattern_drawn),
      coverage_pct, engine.model_id().c_str(), wall_seconds,
      static_cast<long long>(shift_pattern),
      static_cast<long long>(shift_request),
      detected ? common::StrFormat(
                     "raised at audited sample %lld (request %lld), lag %lld",
                     static_cast<long long>(first_alert_pattern),
                     static_cast<long long>(first_alert_request),
                     static_cast<long long>(detect_lag))
                     .c_str()
               : "NOT raised",
      detected && after_shift && within_window
          ? "  [within one window]"
          : detected ? "  [OUT OF BOUNDS]" : "",
      window.delta_sp_pct, window.delta_eo_pct, window.di,
      static_cast<long long>(window.samples), quantiles.Quantile(50),
      quantiles.Quantile(90), quantiles.Quantile(99), quantiles.Mean());

  const std::string json_out = flags.GetString("json-out", "");
  if (!json_out.empty()) {
    std::ofstream json_file(json_out);
    if (!json_file) {
      return Fail(common::Status::IoError("cannot open " + json_out));
    }
    json_file << common::StrFormat(
        "{\"model\":\"%s\",\"dataset\":\"%s\",\"mode\":\"audit\","
        "\"requests\":%lld,\"wall_seconds\":%.6f,"
        "\"latency_ms\":{\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f,"
        "\"mean\":%.6f},\"audit\":{\"window\":%lld,\"stride\":%lld,"
        "\"threshold_sp\":%.3f,\"fraction\":%.3f,\"audited\":%lld,"
        "\"coverage_pct\":%.3f,\"shift_audited\":%lld,\"shift_request\":%lld,"
        "\"first_alert_audited\":%lld,\"first_alert_request\":%lld,"
        "\"detect_lag_audited\":%lld,\"detected\":%s,"
        "\"alert_after_shift\":%s,\"detected_within_window\":%s,"
        "\"fairness_alerts\":%lld,\"delta_sp_final\":%.6f,"
        "\"delta_eo_final\":%.6f,\"di_final\":%.6f,\"window_samples\":%lld,"
        "\"snapshots\":%lld}}\n",
        engine.model_id().c_str(), ds.name.c_str(),
        static_cast<long long>(requests), wall_seconds,
        quantiles.Quantile(50), quantiles.Quantile(90),
        quantiles.Quantile(99), quantiles.Mean(),
        static_cast<long long>(audit.window),
        static_cast<long long>(audit.stride), audit.delta_sp_threshold_pct,
        audit_fraction, static_cast<long long>(pattern_drawn), coverage_pct,
        static_cast<long long>(shift_pattern),
        static_cast<long long>(shift_request),
        static_cast<long long>(first_alert_pattern),
        static_cast<long long>(first_alert_request),
        static_cast<long long>(detect_lag), detected ? "true" : "false",
        after_shift ? "true" : "false", within_window ? "true" : "false",
        static_cast<long long>(stats.fairness_alerts),
        window.delta_sp_pct, window.delta_eo_pct, window.di,
        static_cast<long long>(window.samples),
        static_cast<long long>(
            snapshotter != nullptr ? snapshotter->snapshots_written() : 0));
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }

  if (!detected) {
    return Fail(common::Status::Internal(
        "planted bias shift was never detected: fairness_alert did not "
        "fire"));
  }
  if (!after_shift) {
    return Fail(common::Status::Internal(
        "fairness_alert fired before the planted shift (false positive)"));
  }
  if (!within_window) {
    return Fail(common::Status::Internal(common::StrFormat(
        "fairness_alert lag %lld audited samples exceeds one window + "
        "stride (%lld)",
        static_cast<long long>(detect_lag),
        static_cast<long long>(audit.window + audit.stride))));
  }
  return 0;
}

/// serve-bench --mutate: interleaved mutation + inference traffic over a
/// dynamic graph, with compaction (and optionally delta-apply) faults
/// injected mid-run. Client threads replay a pre-drawn node stream while a
/// mutator thread replays a drifting temporal script (data/temporal.h),
/// publishing epochs and compacting on a fixed cadence. Every inference
/// request must resolve (served, shed, or deadline-expired — never hang or
/// error); a failed compaction must leave the previous snapshot serving.
/// After traffic drains, the faults are disarmed, a final compaction must
/// succeed, and the bench replays every node through the engine and
/// bit-compares against a forward over a freshly materialized CSR — the
/// post-compaction bit-identity verdict written to --json-out.
int MutateBench(const common::CliFlags& flags, const data::Dataset& ds,
                const std::string& model_path,
                serve::EngineOptions engine_options) {
  const int64_t requests = flags.GetInt("requests", 2000);
  const int64_t clients = flags.GetInt("clients", 4);
  const int64_t steps = flags.GetInt("mutation-steps", 300);
  const int64_t publish_every = flags.GetInt("publish-every", 8);
  const int64_t compact_every = flags.GetInt("compact-every", 64);
  const int64_t max_pending = flags.GetInt("max-pending", 1024);
  const int64_t radius = flags.GetInt("invalidation-radius", 2);
  // Fault budget: how many compaction / delta-apply probes fire (count-
  // limited so the run recovers and the exhaustion telemetry of
  // docs/robustness.md is exercised too). 0 disables that site.
  const int64_t fault_compactions = flags.GetInt("fault-compactions", 3);
  const int64_t fault_deltas = flags.GetInt("fault-deltas", 2);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("bench-seed", 1));
  if (requests < 1 || clients < 1 || steps < 1 || publish_every < 1 ||
      compact_every < 1 || max_pending < 1 || radius < 0 ||
      fault_compactions < 0 || fault_deltas < 0) {
    return Fail(common::Status::InvalidArgument(
        "--mutate profile flags must be positive (faults and radius >= 0)"));
  }

  graph::MutableGraphOptions graph_options;
  graph_options.max_pending = max_pending;
  graph_options.invalidation_radius = radius;
  auto base_graph = std::make_shared<const graph::Graph>(ds.graph);
  // --mutation-log attaches the durable write-ahead log: every applied
  // mutation is fsync'd before it lands in the overlay, compactions
  // truncate the log behind a base checkpoint, and a rerun with the same
  // path replays whatever a crash left acknowledged.
  const std::string mutation_log = flags.GetString("mutation-log", "");
  std::shared_ptr<graph::MutableGraph> mutable_graph;
  int64_t recovered_mutations = 0;
  if (!mutation_log.empty()) {
    auto recovered_or = graph::MutableGraph::Recover(
        base_graph, ds.features, mutation_log, graph_options);
    if (!recovered_or.ok()) return Fail(recovered_or.status());
    mutable_graph = std::move(recovered_or.value());
    recovered_mutations = mutable_graph->stats().replayed;
  } else {
    mutable_graph = std::make_shared<graph::MutableGraph>(
        base_graph, ds.features, graph_options);
  }
  engine_options.dynamic_graph = mutable_graph;

  auto engine_or = serve::InferenceEngine::Load(model_path, ds, engine_options);
  if (!engine_or.ok()) return Fail(engine_or.status());
  serve::InferenceEngine& engine = *engine_or.value();

  // --snapshot-out streams one ops snapshot per publish (plus one at each
  // end of the run), so the mutation.*/compaction.* fields land in a
  // sequence `fairwos_cli ops-report` can cross-check.
  std::unique_ptr<serve::OpsSnapshotter> snapshotter;
  const std::string snapshot_out = flags.GetString("snapshot-out", "");
  if (!snapshot_out.empty()) {
    auto snap_or = serve::OpsSnapshotter::Open(snapshot_out, &engine);
    if (!snap_or.ok()) return Fail(snap_or.status());
    snapshotter = std::move(snap_or.value());
    (void)snapshotter->SnapshotNow();
  }

  // The verify pass needs the model restored against the ORIGINAL dataset
  // (artifact stats describe the fit-time matrix); it must read the mutated
  // features from the dataset, so frozen-input models cannot take AddNode.
  auto artifact_or = serve::LoadModelArtifact(model_path);
  if (!artifact_or.ok()) return Fail(artifact_or.status());
  auto model_or = serve::RestoreFittedModel(artifact_or.value(), ds);
  if (!model_or.ok()) return Fail(model_or.status());
  const core::FittedGnnModel& model = *model_or.value();

  data::TemporalOptions temporal;
  temporal.num_steps = steps;
  auto script_or = data::GenerateTemporalScript(ds, temporal, seed);
  if (!script_or.ok()) return Fail(script_or.status());
  const data::TemporalScript& script = script_or.value();
  if (!script.added_node_groups.empty() &&
      model.input_kind() == core::FittedGnnModel::InputKind::kFrozen) {
    return Fail(common::Status::FailedPrecondition(
        "the mutate profile adds nodes, which a frozen-input model cannot "
        "serve; export a dataset-feature model (e.g. --method vanilla)"));
  }

  // Pre-drawn inference stream over the base node ids (always servable, no
  // matter how far the mutator has advanced).
  common::Rng rng(seed + 1);
  std::vector<int64_t> stream(static_cast<size_t>(requests));
  const int64_t hot_nodes = std::min<int64_t>(64, ds.num_nodes());
  const double hot_fraction = flags.GetDouble("hot-fraction", 0.8);
  for (auto& node : stream) {
    node = rng.Bernoulli(hot_fraction) ? rng.UniformInt(hot_nodes)
                                       : rng.UniformInt(ds.num_nodes());
  }

  testing::FaultInjector injector(seed);
  if (fault_compactions > 0) {
    injector.Arm(testing::FaultSite::kGraphCompaction, /*at_visit=*/0,
                 /*count=*/fault_compactions, /*every=*/2);
  }
  if (fault_deltas > 0) {
    injector.Arm(testing::FaultSite::kGraphDeltaApply, /*at_visit=*/5,
                 /*count=*/fault_deltas, /*every=*/7);
  }

  enum class Outcome : uint8_t { kNone = 0, kOk, kShed, kDeadline };
  std::vector<serve::NodePrediction> results(stream.size());
  std::vector<Outcome> outcomes(stream.size(), Outcome::kNone);
  std::vector<double> latencies(stream.size(), 0.0);
  std::atomic<bool> failed{false};
  std::atomic<bool> mutator_failed{false};
  int64_t mutations_applied = 0, mutations_shed = 0, mutations_faulted = 0;
  int64_t publishes = 0, compact_attempts = 0, compact_failures = 0;
  std::vector<double> compact_pause_ms;  // successful compactions only
  common::Stopwatch wall;
  double mutator_seconds = 0.0;
  {
    testing::ScopedFaultInjector scoped(&injector);
    std::thread mutator([&] {
      common::Stopwatch mutator_watch;
      for (size_t i = 0; i < script.events.size(); ++i) {
        const common::Status status = mutable_graph->Apply(script.events[i]);
        if (status.ok()) {
          ++mutations_applied;
        } else if (status.code() == common::StatusCode::kResourceExhausted) {
          ++mutations_shed;  // overlay full: the latched backlog incident
        } else if (status.code() == common::StatusCode::kInternal) {
          ++mutations_faulted;  // injected delta-apply fault, overlay intact
        } else {
          std::fprintf(stderr, "mutation %zu rejected: %s\n", i,
                       status.ToString().c_str());
          mutator_failed.store(true);
          return;
        }
        if ((i + 1) % static_cast<size_t>(publish_every) == 0) {
          mutable_graph->Publish();
          ++publishes;
          if (snapshotter != nullptr) (void)snapshotter->SnapshotNow();
        }
        if ((i + 1) % static_cast<size_t>(compact_every) == 0) {
          common::Stopwatch compact_watch;
          ++compact_attempts;
          const common::Status compacted = mutable_graph->Compact();
          if (compacted.ok()) {
            compact_pause_ms.push_back(compact_watch.Millis());
          } else {
            ++compact_failures;  // injected: previous snapshot keeps serving
          }
        }
      }
      mutable_graph->Publish();
      ++publishes;
      mutator_seconds = mutator_watch.Seconds();
    });
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int64_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        const int64_t begin = c * requests / clients;
        const int64_t end = (c + 1) * requests / clients;
        for (int64_t i = begin; i < end; ++i) {
          common::Stopwatch request_watch;
          auto prediction = engine.Predict(stream[static_cast<size_t>(i)]);
          if (prediction.ok()) {
            latencies[static_cast<size_t>(i)] = request_watch.Millis();
            results[static_cast<size_t>(i)] = prediction.value();
            outcomes[static_cast<size_t>(i)] = Outcome::kOk;
          } else if (prediction.status().code() ==
                     common::StatusCode::kResourceExhausted) {
            outcomes[static_cast<size_t>(i)] = Outcome::kShed;
          } else if (prediction.status().code() ==
                     common::StatusCode::kDeadlineExceeded) {
            outcomes[static_cast<size_t>(i)] = Outcome::kDeadline;
          } else {
            std::fprintf(stderr, "request %lld failed: %s\n",
                         static_cast<long long>(i),
                         prediction.status().ToString().c_str());
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
    mutator.join();
  }
  const double wall_seconds = wall.Seconds();
  if (failed.load()) {
    return Fail(common::Status::Internal(
        "a mutate-bench inference request failed (did not resolve)"));
  }
  if (mutator_failed.load()) {
    return Fail(common::Status::Internal(
        "the mutator rejected a scripted mutation that must be valid"));
  }
  int64_t served = 0, shed = 0, deadline_exceeded = 0, degraded = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    switch (outcomes[i]) {
      case Outcome::kOk:
        ++served;
        if (results[i].degraded) ++degraded;
        break;
      case Outcome::kShed:
        ++shed;
        break;
      case Outcome::kDeadline:
        ++deadline_exceeded;
        break;
      case Outcome::kNone:
        return Fail(common::Status::Internal(
            "request " + std::to_string(i) + " never resolved"));
    }
  }
  if (fault_compactions > 0 &&
      injector.fires(testing::FaultSite::kGraphCompaction) == 0) {
    return Fail(common::Status::Internal(
        "the armed compaction faults never fired: the chaos profile did "
        "not exercise compaction (raise --mutation-steps or lower "
        "--compact-every)"));
  }

  // Faults are now disarmed: the final compaction must succeed, and the
  // compacted graph must serve bit-identically to a fresh-built CSR.
  mutable_graph->Publish();
  const common::Status final_compact = mutable_graph->Compact();
  if (!final_compact.ok()) {
    return Fail(common::Status::Internal(
        "the clean final compaction failed: " + final_compact.ToString()));
  }
  const std::shared_ptr<const graph::GraphSnapshot> snapshot =
      mutable_graph->Current();
  const graph::MutableGraph::Stats graph_stats = mutable_graph->stats();
  if (snapshotter != nullptr) {
    const common::Status last = snapshotter->SnapshotNow();
    if (!last.ok()) return Fail(last);
  }

  // Ground truth: one forward over the from-scratch CSR + merged features,
  // through the exact operators the backbone serves with.
  bool bit_identical = true;
  int64_t verified_nodes = 0;
  {
    const std::shared_ptr<const graph::Graph> fresh = snapshot->Materialized();
    const tensor::Tensor fresh_features = snapshot->Features();
    tensor::NoGradGuard no_grad;
    common::Rng forward_rng(0);
    const nn::PredictionResult truth = nn::PredictFromLogits(
        model.classifier().ForwardWith(
            nn::AdjacencyForBackbone(
                model.classifier().encoder().config().backbone, *fresh),
            fresh_features, /*training=*/false, &forward_rng));
    std::vector<int64_t> all_nodes(
        static_cast<size_t>(snapshot->num_nodes()));
    std::iota(all_nodes.begin(), all_nodes.end(), 0);
    auto replay_or = engine.PredictBatch(all_nodes);
    if (!replay_or.ok()) return Fail(replay_or.status());
    for (const serve::NodePrediction& p : replay_or.value()) {
      ++verified_nodes;
      if (p.degraded ||
          p.label != truth.pred[static_cast<size_t>(p.node)] ||
          p.prob1 != truth.prob1[static_cast<size_t>(p.node)]) {
        bit_identical = false;
        std::fprintf(stderr,
                     "bit-identity violation at node %lld (degraded=%d)\n",
                     static_cast<long long>(p.node), p.degraded ? 1 : 0);
      }
    }
  }

  std::vector<double> served_latencies;
  served_latencies.reserve(static_cast<size_t>(served));
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i] == Outcome::kOk) served_latencies.push_back(latencies[i]);
  }
  const obs::ExactQuantiles latency_q(std::move(served_latencies));
  const obs::ExactQuantiles pause_q{std::vector<double>(compact_pause_ms)};
  const double mutation_throughput =
      static_cast<double>(mutations_applied) /
      std::max(mutator_seconds, 1e-9);
  const serve::InferenceEngine::Stats stats = engine.stats();

  std::printf(
      "mutate bench: %lld/%lld requests served (%lld clients) against %s "
      "in %.3fs\n"
      "  shed %lld  deadline-exceeded %lld  degraded %lld\n"
      "  mutations %lld applied, %lld shed, %lld faulted  "
      "(%.1f mutations/s)\n"
      "  epochs %lld  publishes %lld  compactions %lld ok / %lld failed "
      "(+1 final)\n"
      "  compaction pause ms p50 %.4f  p99 %.4f\n"
      "  cache invalidations: %lld epoch-driven of %lld total\n"
      "  operator refresh: %lld incremental, %lld rebuilt\n"
      "  mutation log: %lld appends, %lld truncations, %lld replayed\n"
      "  latency ms p50 %.4f  p99 %.4f\n"
      "  post-compaction bit-identity: %s (%lld nodes)\n",
      static_cast<long long>(served), static_cast<long long>(requests),
      static_cast<long long>(clients), engine.model_id().c_str(),
      wall_seconds, static_cast<long long>(shed),
      static_cast<long long>(deadline_exceeded),
      static_cast<long long>(degraded),
      static_cast<long long>(mutations_applied),
      static_cast<long long>(mutations_shed),
      static_cast<long long>(mutations_faulted), mutation_throughput,
      static_cast<long long>(graph_stats.epoch),
      static_cast<long long>(publishes),
      static_cast<long long>(compact_attempts - compact_failures),
      static_cast<long long>(compact_failures), pause_q.Quantile(50),
      pause_q.Quantile(99), static_cast<long long>(stats.epoch_invalidations),
      static_cast<long long>(stats.cache_invalidations),
      static_cast<long long>(obs::MetricsRegistry::Global()
                                 .GetCounter("graph.ops.incremental")
                                 ->value()),
      static_cast<long long>(obs::MetricsRegistry::Global()
                                 .GetCounter("graph.ops.rebuilt")
                                 ->value()),
      static_cast<long long>(graph_stats.log_appends),
      static_cast<long long>(graph_stats.log_resets),
      static_cast<long long>(recovered_mutations), latency_q.Quantile(50),
      latency_q.Quantile(99), bit_identical ? "PASS" : "FAIL",
      static_cast<long long>(verified_nodes));

  const std::string json_out =
      flags.GetString("json-out", "BENCH_mutation.json");
  if (!json_out.empty()) {
    std::ofstream json_file(json_out);
    if (!json_file) {
      return Fail(common::Status::IoError("cannot open " + json_out));
    }
    json_file << common::StrFormat(
        "{\"model\":\"%s\",\"dataset\":\"%s\",\"mode\":\"mutate\","
        "\"requests\":%lld,\"served\":%lld,\"shed\":%lld,"
        "\"deadline_exceeded\":%lld,\"degraded\":%lld,\"clients\":%lld,"
        "\"wall_seconds\":%.6f,"
        "\"latency_ms\":{\"p50\":%.6f,\"p99\":%.6f},"
        "\"mutation\":{\"steps\":%lld,\"applied\":%lld,\"shed\":%lld,"
        "\"faulted\":%lld,\"throughput_mps\":%.3f,\"epochs\":%lld,"
        "\"publishes\":%lld,\"backlogged\":%s},"
        "\"compaction\":{\"attempts\":%lld,\"failures\":%lld,"
        "\"injected_faults\":%lld,\"pause_ms\":{\"p50\":%.6f,\"p99\":%.6f}},"
        "\"cache_invalidations\":{\"epoch\":%lld,\"total\":%lld},"
        "\"refresh\":{\"ops_incremental\":%lld,\"ops_rebuilt\":%lld},"
        "\"log\":{\"enabled\":%s,\"appends\":%lld,\"truncations\":%lld,"
        "\"replayed\":%lld,\"pending_records\":%lld},"
        "\"fault_exhausted_reports\":%lld,"
        "\"verified_nodes\":%lld,\"bit_identical\":%s}\n",
        engine.model_id().c_str(), ds.name.c_str(),
        static_cast<long long>(requests), static_cast<long long>(served),
        static_cast<long long>(shed),
        static_cast<long long>(deadline_exceeded),
        static_cast<long long>(degraded), static_cast<long long>(clients),
        wall_seconds, latency_q.Quantile(50), latency_q.Quantile(99),
        static_cast<long long>(steps),
        static_cast<long long>(mutations_applied),
        static_cast<long long>(mutations_shed),
        static_cast<long long>(mutations_faulted), mutation_throughput,
        static_cast<long long>(graph_stats.epoch),
        static_cast<long long>(publishes),
        graph_stats.backlogged ? "true" : "false",
        static_cast<long long>(compact_attempts),
        static_cast<long long>(compact_failures),
        static_cast<long long>(
            injector.fires(testing::FaultSite::kGraphCompaction)),
        pause_q.Quantile(50), pause_q.Quantile(99),
        static_cast<long long>(stats.epoch_invalidations),
        static_cast<long long>(stats.cache_invalidations),
        static_cast<long long>(obs::MetricsRegistry::Global()
                                   .GetCounter("graph.ops.incremental")
                                   ->value()),
        static_cast<long long>(obs::MetricsRegistry::Global()
                                   .GetCounter("graph.ops.rebuilt")
                                   ->value()),
        mutation_log.empty() ? "false" : "true",
        static_cast<long long>(graph_stats.log_appends),
        static_cast<long long>(graph_stats.log_resets),
        static_cast<long long>(recovered_mutations),
        static_cast<long long>(graph_stats.log_records),
        static_cast<long long>(obs::MetricsRegistry::Global()
                                   .GetCounter("fault.exhausted")
                                   ->value()),
        static_cast<long long>(verified_nodes),
        bit_identical ? "true" : "false");
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }

  if (!bit_identical) {
    return Fail(common::Status::Internal(
        "post-compaction serving diverges from the fresh-built CSR"));
  }
  return 0;
}

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t hash) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Order-independent fingerprint of everything a snapshot serves from:
/// node/edge counts, the sorted adjacency of every node, the merged
/// feature matrix, and the raw CSR buffers of all five backbone operators.
/// Two runs that digest equal are byte-identical as far as serving can
/// tell — the comparison the kill-and-replay drill gates on.
uint64_t SnapshotDigest(const graph::GraphSnapshot& snap) {
  uint64_t hash = 1469598103934665603ull;
  const int64_t nodes = snap.num_nodes();
  const int64_t edges = snap.num_edges();
  hash = Fnv1a(&nodes, sizeof(nodes), hash);
  hash = Fnv1a(&edges, sizeof(edges), hash);
  for (int64_t u = 0; u < nodes; ++u) {
    std::vector<int64_t> neighbors = snap.Neighbors(u);
    std::sort(neighbors.begin(), neighbors.end());
    hash = Fnv1a(neighbors.data(), neighbors.size() * sizeof(int64_t), hash);
  }
  const tensor::Tensor features = snap.Features();
  hash = Fnv1a(features.data().data(), features.data().size() * sizeof(float),
               hash);
  const std::shared_ptr<const tensor::SparseMatrix> ops[] = {
      snap.GcnNormalizedAdjacency(),    snap.PlainAdjacency(),
      snap.RowNormalizedAdjacency(),    snap.AdjacencyWithSelfLoops(),
      snap.NeighborMeanAdjacency()};
  for (const auto& op : ops) {
    hash = Fnv1a(op->row_ptr().data(), op->row_ptr().size() * sizeof(int64_t),
                 hash);
    hash = Fnv1a(op->col_idx().data(), op->col_idx().size() * sizeof(int64_t),
                 hash);
    hash = Fnv1a(op->values().data(), op->values().size() * sizeof(float),
                 hash);
  }
  return hash;
}

int WriteDigest(const std::string& path,
                const graph::GraphSnapshot& snap) {
  const uint64_t digest = SnapshotDigest(snap);
  std::printf("digest %016llx (epoch %lld, %lld nodes, %lld edges)\n",
              static_cast<unsigned long long>(digest),
              static_cast<long long>(snap.epoch()),
              static_cast<long long>(snap.num_nodes()),
              static_cast<long long>(snap.num_edges()));
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (!out) return Fail(common::Status::IoError("cannot open " + path));
  out << common::StrFormat("nodes %lld\nedges %lld\ndigest %016llx\n",
                           static_cast<long long>(snap.num_nodes()),
                           static_cast<long long>(snap.num_edges()),
                           static_cast<unsigned long long>(digest));
  out.flush();
  if (!out) return Fail(common::Status::IoError("short write to " + path));
  return 0;
}

/// mutation-replay: the kill-and-replay chaos drill behind the serve-chaos
/// CI job. A run without --recover replays a deterministic temporal script
/// through a write-ahead-logged MutableGraph, publishing and compacting on
/// a cadence; --kill-at N writes the state digest after the Nth applied
/// mutation and dies with std::_Exit(137) — no destructors, no final
/// compaction, exactly what kill -9 leaves behind (the log's fsync'd
/// envelope is the only survivor). A later run with --recover replays the
/// log (base checkpoint + suffix) and writes the recovered digest; the two
/// digest files must be byte-identical. Operators are built on every
/// published epoch, so the pre-kill digest covers incrementally refreshed
/// matrices while the recovered side rebuilds from scratch — the digest
/// equality is an end-to-end bit-identity check of the refresh path too.
int MutationReplay(const common::CliFlags& flags) {
  const std::string log_path = flags.GetString("log", "");
  if (log_path.empty()) {
    return Fail(
        common::Status::InvalidArgument("--log <path.fwlog> is required"));
  }
  const int64_t steps = flags.GetInt("steps", 200);
  const int64_t publish_every = flags.GetInt("publish-every", 8);
  const int64_t compact_every = flags.GetInt("compact-every", 64);
  const int64_t max_pending = flags.GetInt("max-pending", 4096);
  const int64_t kill_at = flags.GetInt("kill-at", -1);
  const bool recover = flags.GetBool("recover", false);
  const std::string digest_out = flags.GetString("digest-out", "");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("bench-seed", 1));
  if (steps < 1 || publish_every < 1 || compact_every < 1 ||
      max_pending < steps) {
    return Fail(common::Status::InvalidArgument(
        "--steps/--publish-every/--compact-every must be positive and "
        "--max-pending >= --steps (the script must never shed)"));
  }

  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();
  graph::MutableGraphOptions options;
  options.max_pending = max_pending;
  auto graph_or = graph::MutableGraph::Recover(
      std::make_shared<const graph::Graph>(ds.graph), ds.features, log_path,
      options);
  if (!graph_or.ok()) return Fail(graph_or.status());
  graph::MutableGraph& g = *graph_or.value();

  if (recover) {
    std::printf("recovered %lld mutations from %s\n",
                static_cast<long long>(g.stats().replayed), log_path.c_str());
    return WriteDigest(digest_out, *g.Current());
  }

  data::TemporalOptions temporal;
  temporal.num_steps = steps;
  auto script_or = data::GenerateTemporalScript(ds, temporal, seed);
  if (!script_or.ok()) return Fail(script_or.status());
  int64_t applied = 0;
  for (const graph::GraphMutation& m : script_or.value().events) {
    const common::Status status = g.Apply(m);
    if (!status.ok()) {
      return Fail(common::Status::Internal(
          "scripted mutation " + std::to_string(applied) +
          " rejected: " + status.ToString()));
    }
    ++applied;
    if (applied % publish_every == 0) {
      const auto snap = g.Publish();
      snap->GcnNormalizedAdjacency();  // exercise the incremental refresh
    }
    if (kill_at >= 0 && applied == kill_at) {
      g.Publish();
      const int rc = WriteDigest(digest_out, *g.Current());
      if (rc != 0) return rc;
      std::fprintf(stderr,
                   "killed after %lld mutations (exit 137, no shutdown)\n",
                   static_cast<long long>(applied));
      std::fflush(nullptr);
      std::_Exit(137);  // kill -9 semantics: the fsync'd log is all that survives
    }
    if (applied % compact_every == 0) {
      const common::Status compacted = g.Compact();
      if (!compacted.ok()) return Fail(compacted);
    }
  }
  g.Publish();
  std::printf("applied %lld mutations (%lld logged, %lld log truncations)\n",
              static_cast<long long>(applied),
              static_cast<long long>(g.stats().log_appends),
              static_cast<long long>(g.stats().log_resets));
  return WriteDigest(digest_out, *g.Current());
}

int ServeBench(const common::CliFlags& flags) {
  auto run_or = RunOptions::FromFlags(flags);
  if (!run_or.ok()) return Fail(run_or.status());
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    return Fail(common::Status::InvalidArgument(
        "--model <model.fwmodel> is required"));
  }
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();

  // --overload flips the defaults into a stress profile: many clients, a
  // tight admission queue, and per-request deadlines, so the bench measures
  // load-shedding behavior instead of steady-state latency. Every explicit
  // flag still wins over the profile's defaults.
  const bool overload = flags.GetBool("overload", false);

  serve::EngineOptions engine_options;
  engine_options.max_batch_size = flags.GetInt("max-batch", 32);
  engine_options.flush_interval_ms = flags.GetDouble("flush-interval-ms", 1.0);
  engine_options.cache_capacity =
      flags.GetInt("cache-capacity", overload ? 64 : 1024);
  engine_options.max_queue = flags.GetInt("max-queue", overload ? 8 : 1024);
  engine_options.per_model_quota = flags.GetInt("quota", 0);
  engine_options.default_deadline_ms =
      flags.GetDouble("deadline-ms", overload ? 50.0 : 0.0);
  engine_options.leader_timeout_ms =
      flags.GetDouble("leader-timeout-ms", 200.0);

  // --mutate: dynamic-graph chaos profile (MutateBench above) — the engine
  // is rebuilt there with a MutableGraph attached.
  if (flags.GetBool("mutate", false)) {
    return MutateBench(flags, ds, model_path, engine_options);
  }

  // --audit: attach a fairness auditor and switch to the planted-shift
  // drill (AuditBench above) instead of the load/latency profiles.
  const bool audit = flags.GetBool("audit", false);
  std::shared_ptr<const serve::AuditTable> audit_table;
  if (audit) {
    engine_options.audit.window = flags.GetInt("audit-window", 128);
    engine_options.audit.stride = flags.GetInt("audit-stride", 32);
    engine_options.audit.min_audited =
        std::min(engine_options.audit.window, engine_options.audit.stride);
    engine_options.audit.delta_sp_threshold_pct =
        flags.GetDouble("audit-threshold-sp", 25.0);
    const double fraction = flags.GetDouble("audit-fraction", 1.0);
    if (fraction <= 0.0 || fraction > 1.0) {
      return Fail(common::Status::InvalidArgument(
          "--audit-fraction must be in (0, 1]"));
    }
    const uint64_t seed = static_cast<uint64_t>(flags.GetInt("bench-seed", 1));
    audit_table = std::make_shared<const serve::AuditTable>(
        fraction >= 1.0
            ? serve::AuditTable::FromDataset(ds)
            : serve::AuditTable::SampleFromDataset(ds, fraction, seed));
    engine_options.audit_table = audit_table;
  }

  auto engine_or = serve::InferenceEngine::Load(model_path, ds, engine_options);
  if (!engine_or.ok()) return Fail(engine_or.status());
  serve::InferenceEngine& engine = *engine_or.value();
  if (audit) {
    return AuditBench(flags, ds, model_path, engine, *audit_table,
                      engine_options.audit);
  }

  const int64_t requests = flags.GetInt("requests", overload ? 2000 : 1000);
  const int64_t clients = flags.GetInt("clients", overload ? 16 : 4);
  const double hot_fraction = flags.GetDouble("hot-fraction", 0.8);
  const double skew = flags.GetDouble("skew", 4.0);
  if (requests < 1 || clients < 1) {
    return Fail(common::Status::InvalidArgument(
        "--requests and --clients must be >= 1"));
  }
  if (hot_fraction < 0.0 || hot_fraction > 1.0) {
    return Fail(common::Status::InvalidArgument(
        "--hot-fraction must be in [0, 1]"));
  }
  if (skew < 1.0) {
    return Fail(common::Status::InvalidArgument("--skew must be >= 1"));
  }

  // Pre-drawn request stream, deterministic in --bench-seed and independent
  // of client count. Steady state: a small hot working set (exercises the
  // LRU) mixed with uniform cold traffic (exercises batching). Overload: a
  // heavy-tailed power-law mix — a few very hot nodes plus a long cold tail
  // that defeats the (shrunken) cache and keeps the queue saturated.
  common::Rng rng(static_cast<uint64_t>(flags.GetInt("bench-seed", 1)));
  const int64_t hot_nodes = std::min<int64_t>(64, engine.num_nodes());
  std::vector<int64_t> stream(static_cast<size_t>(requests));
  for (auto& node : stream) {
    if (overload) {
      const double u = rng.Uniform();
      node = std::min<int64_t>(
          engine.num_nodes() - 1,
          static_cast<int64_t>(static_cast<double>(engine.num_nodes()) *
                               std::pow(u, skew)));
    } else {
      node = rng.Bernoulli(hot_fraction) ? rng.UniformInt(hot_nodes)
                                         : rng.UniformInt(engine.num_nodes());
    }
  }

  // Per-request outcome: answered, shed at admission, or deadline-expired.
  // Anything else is a bench failure — no request may hang or error out.
  enum class Outcome : uint8_t { kNone = 0, kOk, kShed, kDeadline };
  std::vector<serve::NodePrediction> results(stream.size());
  std::vector<double> latencies(stream.size(), 0.0);
  std::vector<Outcome> outcomes(stream.size(), Outcome::kNone);
  std::atomic<bool> failed{false};
  common::Stopwatch wall;
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int64_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        const int64_t begin = c * requests / clients;
        const int64_t end = (c + 1) * requests / clients;
        for (int64_t i = begin; i < end; ++i) {
          common::Stopwatch request_watch;
          auto prediction = engine.Predict(stream[static_cast<size_t>(i)]);
          if (prediction.ok()) {
            latencies[static_cast<size_t>(i)] = request_watch.Millis();
            results[static_cast<size_t>(i)] = prediction.value();
            outcomes[static_cast<size_t>(i)] = Outcome::kOk;
          } else if (prediction.status().code() ==
                     common::StatusCode::kResourceExhausted) {
            outcomes[static_cast<size_t>(i)] = Outcome::kShed;
          } else if (prediction.status().code() ==
                     common::StatusCode::kDeadlineExceeded) {
            outcomes[static_cast<size_t>(i)] = Outcome::kDeadline;
          } else {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  const double wall_seconds = wall.Seconds();
  if (failed.load()) {
    return Fail(common::Status::Internal("a serve-bench request failed"));
  }

  int64_t served = 0, shed = 0, deadline_exceeded = 0, degraded = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    switch (outcomes[i]) {
      case Outcome::kOk:
        ++served;
        if (results[i].degraded) ++degraded;
        break;
      case Outcome::kShed:
        ++shed;
        break;
      case Outcome::kDeadline:
        ++deadline_exceeded;
        break;
      case Outcome::kNone:
        return Fail(common::Status::Internal(
            "request " + std::to_string(i) + " never resolved"));
    }
  }

  // --verify: every non-degraded served prediction must be bit-identical
  // to an in-process FittedModel::Predict over the same artifact.
  const bool verify = flags.GetBool("verify", false);
  if (verify) {
    auto artifact_or = serve::LoadModelArtifact(model_path);
    if (!artifact_or.ok()) return Fail(artifact_or.status());
    auto model_or = serve::RestoreFittedModel(artifact_or.value(), ds);
    if (!model_or.ok()) return Fail(model_or.status());
    const nn::PredictionResult full = model_or.value()->Predict(ds);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (outcomes[i] != Outcome::kOk || results[i].degraded) continue;
      const size_t node = static_cast<size_t>(stream[i]);
      if (results[i].label != full.pred[node] ||
          results[i].prob1 != full.prob1[node]) {
        return Fail(common::Status::Internal(
            "served prediction for node " + std::to_string(stream[i]) +
            " diverges from in-process Predict"));
      }
    }
  }

  std::vector<double> served_latencies;
  served_latencies.reserve(static_cast<size_t>(served));
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i] == Outcome::kOk) served_latencies.push_back(latencies[i]);
  }
  const obs::ExactQuantiles quantiles(std::move(served_latencies));
  const auto percentile = [&quantiles](double p) {
    return quantiles.Quantile(p);
  };
  const double mean_ms = quantiles.Mean();
  const double throughput =
      static_cast<double>(requests) / std::max(wall_seconds, 1e-9);
  const double shed_rate =
      static_cast<double>(shed) / static_cast<double>(requests);
  const serve::InferenceEngine::Stats stats = engine.stats();

  std::printf(
      "served %lld/%lld requests (%lld clients) against %s in %.3fs\n"
      "  throughput %.1f req/s  shed %lld (%.1f%%)  deadline-exceeded %lld  "
      "degraded %lld\n"
      "  latency ms p50 %.4f  p90 %.4f  p99 %.4f  mean %.4f\n"
      "  batches %lld  cache hits %lld  misses %lld%s\n",
      static_cast<long long>(served), static_cast<long long>(requests),
      static_cast<long long>(clients), engine.model_id().c_str(), wall_seconds,
      throughput, static_cast<long long>(shed), 100.0 * shed_rate,
      static_cast<long long>(deadline_exceeded),
      static_cast<long long>(degraded), percentile(50), percentile(90),
      percentile(99), mean_ms, static_cast<long long>(stats.batches),
      static_cast<long long>(stats.cache_hits),
      static_cast<long long>(stats.cache_misses),
      verify ? "  (verified bit-identical)" : "");

  const std::string json_out = flags.GetString("json-out", "");
  if (!json_out.empty()) {
    std::ofstream json_file(json_out);
    if (!json_file) {
      return Fail(common::Status::IoError("cannot open " + json_out));
    }
    json_file << common::StrFormat(
        "{\"model\":\"%s\",\"dataset\":\"%s\",\"requests\":%lld,"
        "\"served\":%lld,\"clients\":%lld,\"overload\":%s,"
        "\"wall_seconds\":%.6f,\"throughput_rps\":%.3f,"
        "\"latency_ms\":{\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f,"
        "\"mean\":%.6f},\"batches\":%lld,\"cache_hits\":%lld,"
        "\"cache_misses\":%lld,\"shed\":%lld,\"shed_rate\":%.6f,"
        "\"deadline_exceeded\":%lld,\"degraded\":%lld,\"verified\":%s}\n",
        engine.model_id().c_str(), ds.name.c_str(),
        static_cast<long long>(requests), static_cast<long long>(served),
        static_cast<long long>(clients), overload ? "true" : "false",
        wall_seconds, throughput, percentile(50), percentile(90),
        percentile(99), mean_ms, static_cast<long long>(stats.batches),
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.cache_misses),
        static_cast<long long>(shed), shed_rate,
        static_cast<long long>(deadline_exceeded),
        static_cast<long long>(degraded), verify ? "true" : "false");
    std::fprintf(stderr, "wrote %s\n", json_out.c_str());
  }
  return 0;
}

/// Pulls the value of a `"key":"string"` or `"key":number` field out of one
/// JSON object line. Tolerant of field order; returns false when absent.
bool ExtractJsonString(const std::string& line, const std::string& key,
                       std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const size_t begin = pos + needle.size();
  size_t end = begin;
  while (end < line.size() && line[end] != '"') {
    end += line[end] == '\\' ? 2 : 1;  // skip escaped characters
  }
  if (end >= line.size()) return false;
  *out = line.substr(begin, end - begin);
  return true;
}

bool ExtractJsonNumber(const std::string& line, const std::string& key,
                       double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  size_t end = pos + needle.size();
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  auto parsed = common::ParseDouble(
      line.substr(pos + needle.size(), end - (pos + needle.size())));
  if (!parsed.ok()) return false;
  *out = parsed.value();
  return true;
}

/// Summarises a --trace-out file (and optionally a --telemetry-out stream):
/// span counts and wall time per name, event counts per event name. Returns
/// an error on malformed input so ctest can use it as a validator.
int TraceReport(const common::CliFlags& flags) {
  const std::string in = flags.GetString("in", "");
  if (in.empty()) {
    return Fail(common::Status::InvalidArgument("--in <trace.json> is required"));
  }
  std::ifstream trace_file(in);
  if (!trace_file) {
    return Fail(common::Status::IoError("cannot open " + in));
  }
  struct SpanAgg {
    int64_t count = 0;
    double total_ms = 0.0;
  };
  std::map<std::string, SpanAgg> spans;
  std::string line;
  bool saw_header = false;
  while (std::getline(trace_file, line)) {
    if (line.find("\"traceEvents\"") != std::string::npos) saw_header = true;
    std::string name;
    if (!ExtractJsonString(line, "name", &name)) continue;
    double dur_us = 0.0;
    if (!ExtractJsonNumber(line, "dur", &dur_us)) {
      return Fail(common::Status::InvalidArgument(
          in + ": span '" + name + "' has no \"dur\" field"));
    }
    SpanAgg& agg = spans[name];
    ++agg.count;
    agg.total_ms += dur_us / 1e3;
  }
  if (!saw_header) {
    return Fail(common::Status::InvalidArgument(
        in + " is not a fairwos Chrome-trace file (no \"traceEvents\" key)"));
  }
  if (spans.empty()) {
    return Fail(common::Status::InvalidArgument(in + " contains no spans"));
  }
  eval::TablePrinter span_table({"span", "count", "total ms", "mean ms"});
  for (const auto& [name, agg] : spans) {
    span_table.AddRow({name, std::to_string(agg.count),
                       common::StrFormat("%.3f", agg.total_ms),
                       common::StrFormat("%.6f", agg.total_ms /
                                                     static_cast<double>(
                                                         agg.count))});
  }
  std::printf("%s", span_table.Render().c_str());

  const std::string telemetry = flags.GetString("telemetry", "");
  if (!telemetry.empty()) {
    std::ifstream events_file(telemetry);
    if (!events_file) {
      return Fail(common::Status::IoError("cannot open " + telemetry));
    }
    std::map<std::string, int64_t> events;
    int64_t line_no = 0;
    while (std::getline(events_file, line)) {
      ++line_no;
      if (line.empty()) continue;
      std::string name;
      if (line.front() != '{' || line.back() != '}' ||
          !ExtractJsonString(line, "event", &name)) {
        return Fail(common::Status::InvalidArgument(
            telemetry + ":" + std::to_string(line_no) +
            ": not a JSONL telemetry event"));
      }
      ++events[name];
    }
    if (events.empty()) {
      return Fail(
          common::Status::InvalidArgument(telemetry + " contains no events"));
    }
    eval::TablePrinter event_table({"event", "count"});
    for (const auto& [name, count] : events) {
      event_table.AddRow({name, std::to_string(count)});
    }
    std::printf("\n%s", event_table.Render().c_str());
  }
  return 0;
}

/// Validates and summarises an ops-snapshot JSONL stream written by
/// serve::OpsSnapshotter (e.g. via serve-bench --snapshot-out). Every line
/// must be a {"event":"ops_snapshot",...} object with a contiguous seq
/// starting at 0; malformed streams fail, so ctest/CI can use this as the
/// snapshot validator.
int OpsReport(const common::CliFlags& flags) {
  const std::string in = flags.GetString("in", "");
  if (in.empty()) {
    return Fail(
        common::Status::InvalidArgument("--in <ops.jsonl> is required"));
  }
  std::ifstream file(in);
  if (!file) return Fail(common::Status::IoError("cannot open " + in));

  int64_t line_no = 0;
  int64_t snapshots = 0;
  int64_t alert_snapshots = 0;
  double last_seq = -1.0;
  double last_uptime = 0.0, last_requests = 0.0, last_batches = 0.0;
  double last_degraded = 0.0, last_drift = 0.0, last_fairness = 0.0;
  double last_delta_sp = 0.0, max_delta_sp = 0.0;
  double last_coverage = 0.0;
  bool saw_audit = false;
  double last_p50 = 0.0, last_p99 = 0.0;
  bool saw_latency_window = false;
  bool saw_mutation = false;
  double last_epoch = 0.0, last_pending = 0.0, last_applied = 0.0;
  double last_shed = 0.0, last_backlog = 0.0;
  double last_compactions = 0.0, last_compaction_failed = 0.0;
  std::string line;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = in + ":" + std::to_string(line_no);
    std::string event;
    if (line.front() != '{' || line.back() != '}' ||
        !ExtractJsonString(line, "event", &event)) {
      return Fail(common::Status::InvalidArgument(
          where + ": not a JSONL snapshot object"));
    }
    if (event != "ops_snapshot") {
      return Fail(common::Status::InvalidArgument(
          where + ": unexpected event '" + event + "'"));
    }
    double seq = 0.0;
    if (!ExtractJsonNumber(line, "seq", &seq)) {
      return Fail(
          common::Status::InvalidArgument(where + ": missing \"seq\""));
    }
    if (seq != last_seq + 1.0) {
      return Fail(common::Status::InvalidArgument(common::StrFormat(
          "%s: non-contiguous seq %.0f after %.0f (truncated or interleaved "
          "stream)",
          where.c_str(), seq, last_seq)));
    }
    last_seq = seq;
    ++snapshots;
    if (!ExtractJsonNumber(line, "uptime_ms", &last_uptime) ||
        !ExtractJsonNumber(line, "requests", &last_requests)) {
      return Fail(common::Status::InvalidArgument(
          where + ": missing \"uptime_ms\" or \"requests\""));
    }
    ExtractJsonNumber(line, "batches", &last_batches);
    ExtractJsonNumber(line, "degraded", &last_degraded);
    ExtractJsonNumber(line, "drift_alerts", &last_drift);
    ExtractJsonNumber(line, "fairness_alerts", &last_fairness);
    double value = 0.0;
    if (ExtractJsonNumber(line, "serve.audit.delta_sp", &value)) {
      saw_audit = true;
      last_delta_sp = value;
      max_delta_sp = std::max(max_delta_sp, value);
      ExtractJsonNumber(line, "serve.audit.coverage_pct", &last_coverage);
    }
    if (ExtractJsonNumber(line, "fairness_alert", &value) && value > 0.0) {
      ++alert_snapshots;
    }
    if (ExtractJsonNumber(line, "serve.window.latency_ms.p50", &last_p50)) {
      saw_latency_window = true;
      ExtractJsonNumber(line, "serve.window.latency_ms.p99", &last_p99);
    }
    // Dynamic-graph fields travel as one group: once a stream carries
    // mutation.epoch, every snapshot from then on must carry the whole set
    // (the sampler writes them together; a gap means a torn or doctored
    // stream), and the monotone counters must never run backwards.
    double epoch = 0.0;
    const bool has_mutation = ExtractJsonNumber(line, "mutation.epoch", &epoch);
    if (saw_mutation && !has_mutation) {
      return Fail(common::Status::InvalidArgument(common::StrFormat(
          "%s: snapshot seq %.0f dropped \"mutation.epoch\" present earlier "
          "in the stream",
          where.c_str(), seq)));
    }
    if (has_mutation) {
      double pending = 0.0, applied = 0.0, shed = 0.0, backlog = 0.0;
      double compactions = 0.0, compaction_failed = 0.0;
      const struct {
        const char* key;
        double* out;
      } required[] = {
          {"mutation.pending", &pending},
          {"mutation.applied", &applied},
          {"mutation.shed", &shed},
          {"mutation.backlog", &backlog},
          {"compaction.count", &compactions},
          {"compaction.failed", &compaction_failed},
      };
      for (const auto& field : required) {
        if (!ExtractJsonNumber(line, field.key, field.out)) {
          return Fail(common::Status::InvalidArgument(common::StrFormat(
              "%s: snapshot seq %.0f has \"mutation.epoch\" but is missing "
              "\"%s\"",
              where.c_str(), seq, field.key)));
        }
      }
      if (saw_mutation) {
        const struct {
          const char* key;
          double prev;
          double now;
        } monotone[] = {
            {"mutation.epoch", last_epoch, epoch},
            {"mutation.applied", last_applied, applied},
            {"mutation.shed", last_shed, shed},
            {"compaction.count", last_compactions, compactions},
            {"compaction.failed", last_compaction_failed, compaction_failed},
        };
        for (const auto& field : monotone) {
          if (field.now < field.prev) {
            return Fail(common::Status::InvalidArgument(common::StrFormat(
                "%s: snapshot seq %.0f: \"%s\" went backwards (%.0f after "
                "%.0f)",
                where.c_str(), seq, field.key, field.now, field.prev)));
          }
        }
      }
      saw_mutation = true;
      last_epoch = epoch;
      last_pending = pending;
      last_applied = applied;
      last_shed = shed;
      last_backlog = backlog;
      last_compactions = compactions;
      last_compaction_failed = compaction_failed;
    }
  }
  if (snapshots == 0) {
    return Fail(
        common::Status::InvalidArgument(in + " contains no snapshots"));
  }

  std::printf(
      "ops report: %lld snapshot(s), seq 0..%lld, uptime %.1f ms\n"
      "  requests %.0f  batches %.0f  degraded %.0f  drift alerts %.0f\n",
      static_cast<long long>(snapshots), static_cast<long long>(last_seq),
      last_uptime, last_requests, last_batches, last_degraded, last_drift);
  if (saw_latency_window) {
    std::printf("  window latency ms (last snapshot): p50 %.4f  p99 %.4f\n",
                last_p50, last_p99);
  }
  if (saw_audit) {
    std::printf(
        "  audit dSP %% last %.4f  max %.4f  coverage %.1f%%\n"
        "  fairness alerts %.0f  alert snapshots %lld/%lld\n",
        last_delta_sp, max_delta_sp, last_coverage, last_fairness,
        static_cast<long long>(alert_snapshots),
        static_cast<long long>(snapshots));
  } else {
    std::printf("  (no fairness audit in this stream)\n");
  }
  if (saw_mutation) {
    std::printf(
        "  graph epoch %.0f  pending %.0f  applied %.0f  shed %.0f  "
        "backlog %s\n"
        "  compactions %.0f (failed %.0f)\n",
        last_epoch, last_pending, last_applied, last_shed,
        last_backlog > 0.0 ? "LATCHED" : "clear", last_compactions,
        last_compaction_failed);
  }
  return 0;
}

/// `kernel-info`: which compute backend dispatch selected and why — CPU
/// features, requested mode, fast-math state, arena configuration. With
/// --json the same facts print as a single machine-readable object.
int KernelInfo(const common::CliFlags& flags) {
  if (common::Status status = ApplySimdFlags(flags); !status.ok()) {
    return Fail(status);
  }
  const tensor::BackendInfo info = tensor::ActiveBackendInfo();
  if (flags.GetBool("json", false)) {
    std::printf(
        "{\"backend\":\"%s\",\"requested\":\"%s\",\"cpu_features\":\"%s\","
        "\"avx2_supported\":%s,\"fast_math\":%s,"
        "\"arena_alignment\":%zu,\"arena_block_bytes\":%zu}\n",
        info.active.c_str(), info.requested_mode.c_str(),
        info.cpu_features.c_str(), info.avx2_supported ? "true" : "false",
        info.fast_math ? "true" : "false", tensor::kArenaAlignment,
        tensor::kArenaDefaultBlockBytes);
    return 0;
  }
  std::printf("backend:           %s\n", info.active.c_str());
  std::printf("requested mode:    %s\n", info.requested_mode.c_str());
  std::printf("cpu features:      %s\n", info.cpu_features.c_str());
  std::printf("avx2+fma capable:  %s\n", info.avx2_supported ? "yes" : "no");
  std::printf("fast-math:         %s\n", info.fast_math ? "on" : "off");
  std::printf("arena alignment:   %zu bytes\n", tensor::kArenaAlignment);
  std::printf("arena block size:  %zu bytes\n",
              tensor::kArenaDefaultBlockBytes);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags_or = common::CliFlags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const std::string log_level = flags_or.value().GetString("log-level", "");
  if (!log_level.empty()) {
    auto level_or = common::ParseLogLevel(log_level);
    if (!level_or.ok()) return Fail(level_or.status());
    common::SetLogLevel(level_or.value());
  }
  if (command == "list") return List();
  if (command == "generate") return Generate(flags_or.value());
  if (command == "train") return Train(flags_or.value());
  if (command == "audit") return Audit(flags_or.value());
  if (command == "trace-report") return TraceReport(flags_or.value());
  if (command == "export") return Export(flags_or.value());
  if (command == "serve-bench") return ServeBench(flags_or.value());
  if (command == "mutation-replay") return MutationReplay(flags_or.value());
  if (command == "ops-report") return OpsReport(flags_or.value());
  if (command == "kernel-info") return KernelInfo(flags_or.value());
  return Usage();
}

}  // namespace
}  // namespace fairwos::cli

int main(int argc, char** argv) { return fairwos::cli::Main(argc, argv); }
