// fairwos_cli — the command-line entry point for the library.
//
//   fairwos_cli list
//       Prints the available datasets, methods, and backbones.
//
//   fairwos_cli generate --dataset bail [--scale 20] [--seed 42] --out DIR
//       Generates a synthetic benchmark and saves it as CSVs (data/io.h).
//
//   fairwos_cli train --dataset bail | --data-dir DIR
//                     [--method fairwos] [--backbone gcn] [--alpha A]
//                     [--epochs 300] [--trials 1] [--seed 42]
//       Trains a method and prints test metrics (mean ± std over trials).
//
//   fairwos_cli audit --dataset bail | --data-dir DIR
//                     [--backbone gcn] [--trials 3] [--seed 42]
//       Runs every method in the registry and prints the comparison table.
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/registry.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/table.h"

namespace fairwos::cli {
namespace {

int Fail(const common::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: fairwos_cli <list|generate|train|audit> [flags]\n"
               "run with a subcommand to see its flags in the header of\n"
               "tools/fairwos_cli.cc\n");
  return 2;
}

common::Result<data::Dataset> ResolveDataset(const common::CliFlags& flags) {
  const std::string data_dir = flags.GetString("data-dir", "");
  if (!data_dir.empty()) return data::LoadDataset(data_dir);
  const std::string name = flags.GetString("dataset", "");
  if (name.empty()) {
    return common::Status::InvalidArgument(
        "pass --dataset <name> or --data-dir <dir>");
  }
  data::DatasetOptions options;
  options.scale = flags.GetDouble("scale", 20.0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  return data::MakeDataset(name, options);
}

common::Result<baselines::MethodOptions> ResolveMethodOptions(
    const common::CliFlags& flags, const std::string& dataset_name) {
  baselines::MethodOptions options;
  FW_ASSIGN_OR_RETURN(options.backbone,
                      nn::ParseBackbone(flags.GetString("backbone", "gcn")));
  options.train.epochs = flags.GetInt("epochs", options.train.epochs);
  options.fairwos.alpha = flags.GetDouble(
      "alpha", baselines::RecommendedAlpha(dataset_name, options.backbone));
  options.fairwos.finetune_lr =
      baselines::RecommendedFinetuneLr(options.backbone);
  options.fairwos.counterfactual.top_k =
      flags.GetInt("k", options.fairwos.counterfactual.top_k);
  return options;
}

int List() {
  std::printf("datasets: toy");
  for (const auto& name : data::BenchmarkNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nmethods:");
  for (const auto& name : baselines::KnownMethodNames()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nbackbones: gcn gin sage gat\n");
  return 0;
}

int Generate(const common::CliFlags& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    return Fail(common::Status::InvalidArgument("--out <dir> is required"));
  }
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  common::Status status = data::SaveDataset(out, ds_or.value());
  if (!status.ok()) return Fail(status);
  std::printf("wrote %s: %lld nodes, %lld attrs, %lld edges\n", out.c_str(),
              static_cast<long long>(ds_or->num_nodes()),
              static_cast<long long>(ds_or->num_attrs()),
              static_cast<long long>(ds_or->graph.num_edges()));
  return 0;
}

int Train(const common::CliFlags& flags) {
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();
  auto options_or = ResolveMethodOptions(flags, ds.name);
  if (!options_or.ok()) return Fail(options_or.status());
  const std::string method_name = flags.GetString("method", "fairwos");
  auto method_or = baselines::MakeMethod(method_name, options_or.value());
  if (!method_or.ok()) return Fail(method_or.status());
  const int64_t trials = flags.GetInt("trials", 1);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto agg_or = eval::RunRepeated(method_or.value().get(), ds, trials, seed);
  if (!agg_or.ok()) return Fail(agg_or.status());
  const auto& agg = agg_or.value();
  std::printf(
      "%s on %s (%lld trial(s)):\n"
      "  ACC  %s\n  F1   %s\n  AUC  %s\n  dSP  %s\n  dEO  %s\n  time "
      "%.2fs\n",
      method_or.value()->name().c_str(), ds.name.c_str(),
      static_cast<long long>(trials),
      common::FormatMeanStd(agg.acc.mean, agg.acc.stddev).c_str(),
      common::FormatMeanStd(agg.f1.mean, agg.f1.stddev).c_str(),
      common::FormatMeanStd(agg.auc.mean, agg.auc.stddev).c_str(),
      common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev).c_str(),
      common::FormatMeanStd(agg.deo.mean, agg.deo.stddev).c_str(),
      agg.seconds.mean);
  return 0;
}

int Audit(const common::CliFlags& flags) {
  auto ds_or = ResolveDataset(flags);
  if (!ds_or.ok()) return Fail(ds_or.status());
  const data::Dataset& ds = ds_or.value();
  auto options_or = ResolveMethodOptions(flags, ds.name);
  if (!options_or.ok()) return Fail(options_or.status());
  const int64_t trials = flags.GetInt("trials", 3);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  eval::TablePrinter table(
      {"method", "ACC %", "dSP %", "dEO %", "sec"});
  for (const auto& name : baselines::KnownMethodNames()) {
    auto method_or = baselines::MakeMethod(name, options_or.value());
    if (!method_or.ok()) return Fail(method_or.status());
    auto agg_or = eval::RunRepeated(method_or.value().get(), ds, trials, seed);
    if (!agg_or.ok()) return Fail(agg_or.status());
    const auto& agg = agg_or.value();
    table.AddRow({method_or.value()->name(),
                  common::FormatMeanStd(agg.acc.mean, agg.acc.stddev),
                  common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev),
                  common::FormatMeanStd(agg.deo.mean, agg.deo.stddev),
                  common::StrFormat("%.2f", agg.seconds.mean)});
  }
  std::printf("%s", table.Render().c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags_or = common::CliFlags::Parse(argc - 1, argv + 1);
  if (!flags_or.ok()) return Fail(flags_or.status());
  if (command == "list") return List();
  if (command == "generate") return Generate(flags_or.value());
  if (command == "train") return Train(flags_or.value());
  if (command == "audit") return Audit(flags_or.value());
  return Usage();
}

}  // namespace
}  // namespace fairwos::cli

int main(int argc, char** argv) { return fairwos::cli::Main(argc, argv); }
