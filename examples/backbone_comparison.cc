// Backbone agnosticism in practice (paper §III-C): run the vanilla model
// and Fairwos across all four backbones — GCN, GIN, GraphSAGE, GAT — on
// one dataset, then demonstrate checkpointing by saving the pseudo-
// sensitive attributes of the best run for later analysis.
//
//   ./examples/backbone_comparison [--dataset bail] [--scale 20]
//                                  [--trials 2] [--seed 21]
#include <cstdio>

#include "baselines/registry.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/table.h"

namespace {

int Main(int argc, char** argv) {
  auto flags_or = fairwos::common::CliFlags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const auto& flags = flags_or.value();
  const std::string dataset_name = flags.GetString("dataset", "bail");
  fairwos::data::DatasetOptions data_options;
  data_options.scale = flags.GetDouble("scale", 20.0);
  data_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 21));
  const int64_t trials = flags.GetInt("trials", 2);

  auto ds_or = fairwos::data::MakeDataset(dataset_name, data_options);
  if (!ds_or.ok()) {
    std::fprintf(stderr, "%s\n", ds_or.status().ToString().c_str());
    return 1;
  }
  const auto& ds = ds_or.value();
  std::printf("backbone comparison on %s (%lld nodes)\n\n", ds.name.c_str(),
              static_cast<long long>(ds.num_nodes()));

  fairwos::eval::TablePrinter table(
      {"backbone", "method", "ACC %", "dSP %", "dEO %", "sec"});
  for (fairwos::nn::Backbone backbone :
       {fairwos::nn::Backbone::kGcn, fairwos::nn::Backbone::kGin,
        fairwos::nn::Backbone::kSage, fairwos::nn::Backbone::kGat}) {
    for (const std::string name : {"vanilla", "fairwos"}) {
      fairwos::baselines::MethodOptions options;
      options.backbone = backbone;
      options.fairwos.alpha =
          fairwos::baselines::RecommendedAlpha(ds.name, backbone);
      options.fairwos.finetune_lr =
          fairwos::baselines::RecommendedFinetuneLr(backbone);
      auto method_or = fairwos::baselines::MakeMethod(name, options);
      if (!method_or.ok()) {
        std::fprintf(stderr, "%s\n", method_or.status().ToString().c_str());
        return 1;
      }
      auto agg_or = fairwos::eval::RunRepeated(method_or.value().get(), ds,
                                               trials, data_options.seed);
      if (!agg_or.ok()) {
        std::fprintf(stderr, "%s\n", agg_or.status().ToString().c_str());
        return 1;
      }
      const auto& agg = agg_or.value();
      table.AddRow(
          {fairwos::nn::BackboneName(backbone), method_or.value()->name(),
           fairwos::common::FormatMeanStd(agg.acc.mean, agg.acc.stddev),
           fairwos::common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev),
           fairwos::common::FormatMeanStd(agg.deo.mean, agg.deo.stddev),
           fairwos::common::StrFormat("%.2f", agg.seconds.mean)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Fairwos attaches to any message-passing backbone: the fairness "
      "machinery only consumes embeddings.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
