// Quickstart: train a vanilla GCN and Fairwos on a small synthetic graph
// with a hidden sensitive attribute, and compare utility vs fairness.
//
//   ./examples/quickstart [--dataset toy] [--seed 7] [--trials 3]
#include <cstdio>

#include "baselines/registry.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/table.h"

namespace {

using fairwos::baselines::MakeMethod;
using fairwos::baselines::MethodOptions;

int Main(int argc, char** argv) {
  auto flags_or = fairwos::common::CliFlags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const auto& flags = flags_or.value();
  const std::string dataset_name = flags.GetString("dataset", "toy");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  const int64_t trials = flags.GetInt("trials", 3);

  // 1. Build (or load) a dataset. The sensitive attribute ds.sens exists
  //    only for evaluation — no method ever reads it during training.
  fairwos::data::DatasetOptions data_options;
  data_options.seed = seed;
  auto ds_or = fairwos::data::MakeDataset(dataset_name, data_options);
  if (!ds_or.ok()) {
    std::fprintf(stderr, "%s\n", ds_or.status().ToString().c_str());
    return 1;
  }
  const fairwos::data::Dataset& ds = ds_or.value();
  std::printf("dataset %s: %lld nodes, %lld attrs, %lld edges (avg deg %.1f)\n",
              ds.name.c_str(), static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_attrs()),
              static_cast<long long>(ds.graph.num_edges()),
              ds.graph.AverageDegree());

  // 2. Run the vanilla backbone and Fairwos through the same harness.
  MethodOptions options;  // GCN backbone, paper-default hyper-parameters
  fairwos::eval::TablePrinter table(
      {"method", "ACC %", "dSP %", "dEO %", "sec"});
  for (const std::string name : {"vanilla", "fairwos"}) {
    auto method_or = MakeMethod(name, options);
    if (!method_or.ok()) {
      std::fprintf(stderr, "%s\n", method_or.status().ToString().c_str());
      return 1;
    }
    auto agg_or =
        fairwos::eval::RunRepeated(method_or.value().get(), ds, trials, seed);
    if (!agg_or.ok()) {
      std::fprintf(stderr, "%s\n", agg_or.status().ToString().c_str());
      return 1;
    }
    const auto& agg = agg_or.value();
    table.AddRow({method_or.value()->name(),
                  fairwos::common::FormatMeanStd(agg.acc.mean, agg.acc.stddev),
                  fairwos::common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev),
                  fairwos::common::FormatMeanStd(agg.deo.mean, agg.deo.stddev),
                  fairwos::common::StrFormat("%.2f", agg.seconds.mean)});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "Fairwos should cut the parity gaps (dSP, dEO) while keeping ACC close "
      "to the vanilla backbone.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
