// The paper's Fig. 1 motivating scenario: loan approval on a social graph.
//
// Users have non-sensitive features (income, debt, account age, ...) plus a
// postal-code block that is strongly correlated with the hidden race
// attribute. Users connect to similar users (and to same-race users, via
// residential segregation). A vanilla GNN trained to predict repayment
// absorbs the racial signal through the postal-code proxy and the topology;
// Fairwos trains on exactly the same data — race never enters training —
// and removes most of the gap.
//
//   ./examples/loan_approval [--applicants 1500] [--seed 3] [--trials 3]
#include <cstdio>

#include "baselines/registry.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "fairness/metrics.h"

namespace {

using fairwos::data::Dataset;

/// Builds the loan graph via the synthetic generator with a profile shaped
/// like the running example: few attributes, a strong postal-code proxy
/// block, residentially segregated edges.
Dataset BuildLoanGraph(int64_t applicants, uint64_t seed) {
  fairwos::data::SyntheticSpec spec;
  spec.name = "loan-approval";
  spec.label_name = "approve/reject";
  spec.sens_name = "race";
  spec.num_nodes = applicants;
  spec.num_attrs = 12;           // income, debts, history... + postal codes
  spec.avg_degree = 12.0;
  spec.group1_fraction = 0.35;   // minority group
  spec.sens_label_shift = 1.0;   // historical approval gap in the labels
  spec.proxy_strength = 1.6;     // postal code ~ race
  spec.num_proxy_attrs = 3;
  spec.num_informative_attrs = 6;
  spec.homophily_sens = 0.65;    // residential segregation
  spec.homophily_label = 0.30;
  spec.label_noise = 0.08;
  return fairwos::data::GenerateSynthetic(spec, seed);
}

int Main(int argc, char** argv) {
  auto flags_or = fairwos::common::CliFlags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const auto& flags = flags_or.value();
  const int64_t applicants = flags.GetInt("applicants", 1500);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  const int64_t trials = flags.GetInt("trials", 3);

  Dataset ds = BuildLoanGraph(applicants, seed);
  std::vector<int64_t> all(static_cast<size_t>(ds.num_nodes()));
  for (int64_t i = 0; i < ds.num_nodes(); ++i) all[static_cast<size_t>(i)] = i;
  std::printf(
      "loan graph: %lld applicants, %lld edges; historical approval gap in "
      "the labels: %.1f%%\n\n",
      static_cast<long long>(ds.num_nodes()),
      static_cast<long long>(ds.graph.num_edges()),
      fairwos::fairness::StatisticalParityGapPct(ds.labels, ds.sens, all));

  fairwos::baselines::MethodOptions options;
  fairwos::eval::TablePrinter table(
      {"method", "ACC %", "approval-rate gap dSP %", "opportunity gap dEO %"});
  for (const std::string name : {"vanilla", "remover", "fairwos"}) {
    auto method_or = fairwos::baselines::MakeMethod(name, options);
    if (!method_or.ok()) {
      std::fprintf(stderr, "%s\n", method_or.status().ToString().c_str());
      return 1;
    }
    auto agg_or =
        fairwos::eval::RunRepeated(method_or.value().get(), ds, trials, seed);
    if (!agg_or.ok()) {
      std::fprintf(stderr, "%s\n", agg_or.status().ToString().c_str());
      return 1;
    }
    const auto& agg = agg_or.value();
    table.AddRow({method_or.value()->name(),
                  fairwos::common::FormatMeanStd(agg.acc.mean, agg.acc.stddev),
                  fairwos::common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev),
                  fairwos::common::FormatMeanStd(agg.deo.mean,
                                                 agg.deo.stddev)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Race was never visible during training; the gap comes from postal "
      "codes and segregated connections — and Fairwos closes most of it.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
