// Fairness audit: run every method in the registry on one dataset and
// print a complete report — utility (ACC/F1/AUC), group fairness (ΔSP/ΔEO),
// runtime, and the per-group confusion behind the gaps for the last trial.
//
//   ./examples/audit_fairness [--dataset bail] [--scale 20] [--seed 11]
//                             [--backbone gcn] [--trials 3]
#include <cstdio>

#include "baselines/registry.h"
#include "common/cli.h"
#include "common/string_util.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/table.h"
#include "fairness/metrics.h"

namespace {

int Main(int argc, char** argv) {
  auto flags_or = fairwos::common::CliFlags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const auto& flags = flags_or.value();
  fairwos::data::DatasetOptions data_options;
  data_options.scale = flags.GetDouble("scale", 20.0);
  data_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  const int64_t trials = flags.GetInt("trials", 3);
  const std::string dataset_name = flags.GetString("dataset", "bail");
  auto backbone_or = fairwos::nn::ParseBackbone(
      flags.GetString("backbone", "gcn"));
  if (!backbone_or.ok()) {
    std::fprintf(stderr, "%s\n", backbone_or.status().ToString().c_str());
    return 1;
  }

  auto ds_or = fairwos::data::MakeDataset(dataset_name, data_options);
  if (!ds_or.ok()) {
    std::fprintf(stderr, "%s\n", ds_or.status().ToString().c_str());
    return 1;
  }
  const auto& ds = ds_or.value();
  std::printf("fairness audit on %s (%lld nodes, sens=%s, label=%s)\n\n",
              ds.name.c_str(), static_cast<long long>(ds.num_nodes()),
              ds.sens_name.c_str(), ds.label_name.c_str());

  fairwos::eval::TablePrinter table({"method", "ACC %", "F1 %", "AUC %",
                                     "dSP %", "dEO %", "sec"});
  for (const auto& name : fairwos::baselines::KnownMethodNames()) {
    fairwos::baselines::MethodOptions options;
    options.backbone = backbone_or.value();
    auto method_or = fairwos::baselines::MakeMethod(name, options);
    if (!method_or.ok()) {
      std::fprintf(stderr, "%s\n", method_or.status().ToString().c_str());
      return 1;
    }
    auto agg_or = fairwos::eval::RunRepeated(method_or.value().get(), ds,
                                             trials, data_options.seed);
    if (!agg_or.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   agg_or.status().ToString().c_str());
      return 1;
    }
    const auto& agg = agg_or.value();
    table.AddRow(
        {method_or.value()->name(),
         fairwos::common::FormatMeanStd(agg.acc.mean, agg.acc.stddev),
         fairwos::common::FormatMeanStd(agg.f1.mean, agg.f1.stddev),
         fairwos::common::FormatMeanStd(agg.auc.mean, agg.auc.stddev),
         fairwos::common::FormatMeanStd(agg.dsp.mean, agg.dsp.stddev),
         fairwos::common::FormatMeanStd(agg.deo.mean, agg.deo.stddev),
         fairwos::common::StrFormat("%.2f", agg.seconds.mean)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Per-group detail of one vanilla run: where does the gap come from?
  fairwos::baselines::MethodOptions options;
  options.backbone = backbone_or.value();
  auto vanilla =
      fairwos::baselines::MakeMethod("vanilla", options).value();
  auto fitted = vanilla->Fit(ds, data_options.seed).value();
  auto out = fitted->Predict(ds);
  auto gc = fairwos::fairness::ComputeGroupConfusion(out.pred, ds.labels,
                                                     ds.sens, ds.split.test);
  std::printf("vanilla per-group detail (test split):\n");
  for (int s = 0; s < 2; ++s) {
    std::printf(
        "  %s=%d: n=%lld  P(pred=1)=%.3f  TPR=%.3f\n", ds.sens_name.c_str(),
        s, static_cast<long long>(gc.GroupTotal(s)), gc.PositiveRate(s),
        gc.TruePositiveRate(s));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
