// Bring-your-own-graph: assemble a fairwos::data::Dataset from CSV files
// (edge list + node table) and train Fairwos on it.
//
// The example first writes a small demo dataset to the chosen directory so
// it is runnable out of the box, then loads it back through the public I/O
// APIs — the exact path a downstream user follows with real files.
//
// Node table format (CSV with header):  label,sens,attr0,attr1,...
// Edge list format (CSV with header):   src,dst
//
//   ./examples/custom_dataset [--dir /tmp] [--seed 5]
#include <cstdio>

#include "common/cli.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "core/fairwos.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "fairness/metrics.h"
#include "graph/graph.h"

namespace {

using fairwos::common::CsvTable;
using fairwos::common::Status;

/// Writes a demo node table + edge list derived from the toy generator.
Status WriteDemoFiles(const std::string& nodes_path,
                      const std::string& edges_path, uint64_t seed) {
  fairwos::data::DatasetOptions options;
  options.seed = seed;
  auto ds = fairwos::data::MakeDataset("toy", options).value();
  CsvTable nodes;
  nodes.header = {"label", "sens"};
  for (int64_t j = 0; j < ds.num_attrs(); ++j) {
    nodes.header.push_back("attr" + std::to_string(j));
  }
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    std::vector<std::string> row = {
        std::to_string(ds.labels[static_cast<size_t>(i)]),
        std::to_string(ds.sens[static_cast<size_t>(i)])};
    for (int64_t j = 0; j < ds.num_attrs(); ++j) {
      row.push_back(fairwos::common::StrFormat("%.5f", ds.features.at(i, j)));
    }
    nodes.rows.push_back(std::move(row));
  }
  FW_RETURN_IF_ERROR(fairwos::common::WriteCsv(nodes_path, nodes));
  CsvTable edges;
  edges.header = {"src", "dst"};
  for (int64_t u = 0; u < ds.num_nodes(); ++u) {
    for (int64_t v : ds.graph.Neighbors(u)) {
      if (u < v) {
        edges.rows.push_back({std::to_string(u), std::to_string(v)});
      }
    }
  }
  return fairwos::common::WriteCsv(edges_path, edges);
}

/// Loads a Dataset from the two CSVs; this is the reusable recipe.
fairwos::common::Result<fairwos::data::Dataset> LoadCustomDataset(
    const std::string& nodes_path, const std::string& edges_path,
    uint64_t seed) {
  FW_ASSIGN_OR_RETURN(CsvTable nodes,
                      fairwos::common::ReadCsv(nodes_path, true));
  const int64_t n = static_cast<int64_t>(nodes.rows.size());
  if (n == 0) return Status::InvalidArgument("empty node table");
  const int64_t num_attrs = static_cast<int64_t>(nodes.header.size()) - 2;
  if (num_attrs <= 0) {
    return Status::InvalidArgument("node table needs label,sens,attrs...");
  }
  fairwos::data::Dataset ds;
  ds.name = "custom";
  ds.label_name = "label";
  ds.sens_name = "sens";
  std::vector<float> x(static_cast<size_t>(n * num_attrs));
  for (int64_t i = 0; i < n; ++i) {
    const auto& row = nodes.rows[static_cast<size_t>(i)];
    if (static_cast<int64_t>(row.size()) != num_attrs + 2) {
      return Status::InvalidArgument("ragged node table row");
    }
    FW_ASSIGN_OR_RETURN(int64_t label, fairwos::common::ParseInt(row[0]));
    FW_ASSIGN_OR_RETURN(int64_t sens, fairwos::common::ParseInt(row[1]));
    ds.labels.push_back(static_cast<int>(label));
    ds.sens.push_back(static_cast<int>(sens));
    for (int64_t j = 0; j < num_attrs; ++j) {
      FW_ASSIGN_OR_RETURN(double v, fairwos::common::ParseDouble(
                                        row[static_cast<size_t>(j + 2)]));
      x[static_cast<size_t>(i * num_attrs + j)] = static_cast<float>(v);
    }
  }
  ds.features = fairwos::tensor::Tensor::FromVector({n, num_attrs}, std::move(x));
  fairwos::data::StandardizeColumns(&ds.features);
  FW_ASSIGN_OR_RETURN(ds.graph,
                      fairwos::graph::LoadEdgeListCsv(edges_path, true, n));
  fairwos::common::Rng rng(seed);
  ds.split = fairwos::data::MakeSplit(n, &rng);
  FW_RETURN_IF_ERROR(fairwos::data::ValidateDataset(ds));
  return ds;
}

int Main(int argc, char** argv) {
  auto flags_or = fairwos::common::CliFlags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const auto& flags = flags_or.value();
  const std::string dir = flags.GetString("dir", "/tmp");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  const std::string nodes_path = dir + "/fairwos_demo_nodes.csv";
  const std::string edges_path = dir + "/fairwos_demo_edges.csv";

  Status demo = WriteDemoFiles(nodes_path, edges_path, seed);
  if (!demo.ok()) {
    std::fprintf(stderr, "%s\n", demo.ToString().c_str());
    return 1;
  }
  std::printf("wrote demo files:\n  %s\n  %s\n\n", nodes_path.c_str(),
              edges_path.c_str());

  auto ds_or = LoadCustomDataset(nodes_path, edges_path, seed);
  if (!ds_or.ok()) {
    std::fprintf(stderr, "%s\n", ds_or.status().ToString().c_str());
    return 1;
  }
  const auto& ds = ds_or.value();
  std::printf("loaded custom dataset: %lld nodes, %lld attrs, %lld edges\n",
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(ds.num_attrs()),
              static_cast<long long>(ds.graph.num_edges()));

  fairwos::core::FairwosConfig config;
  config.pretrain_epochs = 200;
  fairwos::core::FairwosMethod method("Fairwos", config);
  auto metrics_or = fairwos::eval::RunTrial(&method, ds, seed);
  if (!metrics_or.ok()) {
    std::fprintf(stderr, "%s\n", metrics_or.status().ToString().c_str());
    return 1;
  }
  const auto& m = metrics_or.value();
  std::printf(
      "Fairwos on the custom graph: ACC %.2f%%  dSP %.2f%%  dEO %.2f%%  "
      "(%.2fs)\n",
      m.acc, m.dsp, m.deo, m.seconds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
