// Interpretability demo: peek inside Fairwos' counterfactual machinery.
// Trains the encoder + backbone on a dataset, runs the counterfactual
// search once, and prints — for a handful of nodes — the pseudo-sensitive
// bins, the matched counterfactual nodes, their embedding distances, and
// whether the pre-trained classifier treats the pair consistently. Ends
// with the aggregate counterfactual-consistency metric before fairness
// fine-tuning vs after.
//
//   ./examples/counterfactual_inspection [--dataset bail] [--scale 20]
//                                        [--nodes 5] [--seed 17]
#include <cstdio>

#include "baselines/registry.h"
#include "common/cli.h"
#include "core/counterfactual.h"
#include "core/encoder.h"
#include "core/fairwos.h"
#include "data/synthetic.h"
#include "fairness/metrics.h"

namespace {

using fairwos::core::CounterfactualSet;

/// All (anchor, top-1 counterfactual) pairs of a search result, pooled
/// across pseudo-sensitive attributes.
std::vector<std::pair<int64_t, int64_t>> TopPairs(const CounterfactualSet& cf) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (const auto& per_attr : cf.matches) {
    for (size_t a = 0; a < cf.anchors.size(); ++a) {
      if (!per_attr[a].empty()) {
        pairs.emplace_back(cf.anchors[a], per_attr[a][0]);
      }
    }
  }
  return pairs;
}

int Main(int argc, char** argv) {
  auto flags_or = fairwos::common::CliFlags::Parse(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const auto& flags = flags_or.value();
  fairwos::data::DatasetOptions data_options;
  data_options.scale = flags.GetDouble("scale", 20.0);
  data_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  const int64_t show_nodes = flags.GetInt("nodes", 5);
  const std::string dataset_name = flags.GetString("dataset", "bail");

  auto ds_or = fairwos::data::MakeDataset(dataset_name, data_options);
  if (!ds_or.ok()) {
    std::fprintf(stderr, "%s\n", ds_or.status().ToString().c_str());
    return 1;
  }
  const auto& ds = ds_or.value();

  // Train Fairwos while keeping its diagnostics.
  fairwos::core::FairwosConfig config;
  config.alpha = fairwos::baselines::RecommendedAlpha(ds.name);
  fairwos::core::FairwosStats stats;
  auto out_or =
      fairwos::core::TrainFairwos(config, ds, data_options.seed, &stats);
  if (!out_or.ok()) {
    std::fprintf(stderr, "%s\n", out_or.status().ToString().c_str());
    return 1;
  }
  const auto& out = out_or.value();

  // Re-run the search against the *final* embeddings so the printed pairs
  // describe the model the user would deploy.
  const auto bins = fairwos::core::MedianBins(out.pseudo_sens);
  fairwos::common::Rng rng(data_options.seed);
  fairwos::core::CounterfactualConfig search = config.counterfactual;
  auto cf = fairwos::core::FindCounterfactuals(out.embeddings, bins, out.pred,
                                               search, &rng);

  std::printf(
      "counterfactual inspection on %s — %zu anchors, %lld pseudo-sensitive "
      "attributes, top-%lld matches\n\n",
      ds.name.c_str(), cf.anchors.size(),
      static_cast<long long>(cf.num_attrs()),
      static_cast<long long>(search.top_k));

  const int64_t hidden = out.embeddings.dim(1);
  for (int64_t row = 0; row < show_nodes &&
                         row < static_cast<int64_t>(cf.anchors.size());
       ++row) {
    const int64_t v = cf.anchors[static_cast<size_t>(row)];
    std::printf("node %lld  (pred=%d, true s=%d):\n", static_cast<long long>(v),
                out.pred[static_cast<size_t>(v)],
                ds.sens[static_cast<size_t>(v)]);
    // Show the first two attributes' matches.
    for (int64_t i = 0; i < std::min<int64_t>(2, cf.num_attrs()); ++i) {
      const auto& slot = cf.matches[static_cast<size_t>(i)][static_cast<size_t>(row)];
      std::printf("  pseudo-attr %lld (bin %d) counterfactuals:",
                  static_cast<long long>(i),
                  static_cast<int>(bins[static_cast<size_t>(v)][static_cast<size_t>(i)]));
      for (int64_t m : slot) {
        double dist = 0.0;
        for (int64_t d = 0; d < hidden; ++d) {
          const double diff =
              out.embeddings.at(v, d) - out.embeddings.at(m, d);
          dist += diff * diff;
        }
        std::printf(" %lld(d²=%.3f,pred=%d)", static_cast<long long>(m), dist,
                    out.pred[static_cast<size_t>(m)]);
      }
      std::printf("\n");
    }
  }

  const double consistency =
      fairwos::fairness::CounterfactualConsistencyPct(out.pred, TopPairs(cf));
  std::printf(
      "\ncounterfactual consistency of the trained model: %.1f%% of "
      "(node, counterfactual) pairs receive identical predictions.\n",
      consistency);
  std::printf("final importance weights lambda:");
  for (double l : stats.lambda) std::printf(" %.3f", l);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Main(argc, argv); }
