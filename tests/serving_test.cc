// Serving subsystem tests (docs/serving.md): the `.fwmodel` artifact codec
// (round-trip bit-identity, corruption rejection including the
// kCheckpointRead fault hook), the Fit/Predict split (the Run shim must be
// behaviour-identical), and the batched inference engine (batched vs
// one-at-a-time determinism at 1 and 8 threads, LRU cache semantics).
#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vanilla.h"
#include "common/fault.h"
#include "common/threadpool.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "serve/artifact.h"
#include "serve/engine.h"
#include "serve/lru_cache.h"

namespace fairwos::serve {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

/// A real (small) fit through the public method API.
std::unique_ptr<core::FittedModel> FitVanilla(const data::Dataset& ds,
                                              uint64_t seed,
                                              int64_t epochs = 20) {
  nn::GnnConfig gnn;
  gnn.in_features = ds.num_attrs();
  baselines::TrainOptions train;
  train.epochs = epochs;
  baselines::VanillaMethod method(gnn, train);
  auto fitted_or = method.Fit(ds, seed);
  EXPECT_TRUE(fitted_or.ok()) << fitted_or.status().ToString();
  return std::move(fitted_or.value());
}

void ExpectSamePredictions(const nn::PredictionResult& a,
                           const nn::PredictionResult& b) {
  ASSERT_EQ(a.pred.size(), b.pred.size());
  EXPECT_EQ(a.pred, b.pred);
  ASSERT_EQ(a.prob1.size(), b.prob1.size());
  for (size_t i = 0; i < a.prob1.size(); ++i) {
    EXPECT_EQ(a.prob1[i], b.prob1[i]) << "prob1 differs at node " << i;
  }
}

// --- LruCache -------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  ASSERT_NE(cache.Get(1), nullptr);  // 1 is now most recent
  cache.Put(3, 30);                  // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 10);
  ASSERT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutRefreshesExistingKey) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh, not insert: nothing evicted
  cache.Put(3, 30);  // evicts 2 (least recent)
  EXPECT_EQ(cache.Get(2), nullptr);
  ASSERT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<int, int> cache(0);
  cache.Put(1, 10);
  EXPECT_EQ(cache.Get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// --- Fit/Predict split ----------------------------------------------------

TEST(FitPredictSplitTest, FitIsDeterministicAcrossInstances) {
  auto ds = ToyDataset();
  nn::GnnConfig gnn;
  gnn.in_features = ds.num_attrs();
  baselines::TrainOptions train;
  train.epochs = 20;
  baselines::VanillaMethod method(gnn, train);

  auto fitted_a = method.Fit(ds, /*seed=*/11);
  ASSERT_TRUE(fitted_a.ok());
  auto fitted_b = FitVanilla(ds, /*seed=*/11);
  ExpectSamePredictions((*fitted_a)->Predict(ds), fitted_b->Predict(ds));
}

TEST(FitPredictSplitTest, PredictIsRepeatable) {
  auto ds = ToyDataset();
  auto fitted = FitVanilla(ds, /*seed=*/3);
  ExpectSamePredictions(fitted->Predict(ds), fitted->Predict(ds));
}

// --- Artifact codec -------------------------------------------------------

TEST(ArtifactTest, RoundTripIsBitIdentical) {
  auto ds = ToyDataset();
  auto fitted = FitVanilla(ds, /*seed=*/5);
  const core::FittedGnnModel* gnn = fitted->AsGnn();
  ASSERT_NE(gnn, nullptr);
  const nn::PredictionResult reference = fitted->Predict(ds);

  const std::string path = TempPath("fw_serving_roundtrip.fwmodel");
  ModelArtifact artifact = MakeArtifact(*gnn, ds);
  EXPECT_EQ(artifact.model_id, "Vanilla\\S:toy:5");
  ASSERT_TRUE(SaveModelArtifact(path, artifact).ok());

  auto loaded_or = LoadModelArtifact(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  EXPECT_EQ(loaded_or->model_id, artifact.model_id);
  EXPECT_EQ(loaded_or->provenance.method, "Vanilla\\S");
  EXPECT_EQ(loaded_or->provenance.seed, 5u);

  auto restored_or = RestoreFittedModel(loaded_or.value(), ds);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  const nn::PredictionResult served = restored_or.value()->Predict(ds);
  ExpectSamePredictions(reference, served);
  // Embeddings too: the restored model is the same network, bit for bit.
  ASSERT_TRUE(served.embeddings.defined());
  EXPECT_EQ(reference.embeddings.data(), served.embeddings.data());
  std::filesystem::remove(path);
}

TEST(ArtifactTest, FrozenInputRoundTrips) {
  // A kFrozen model (the Fairwos/PerturbCF shape) carries its own input
  // matrix; the artifact must preserve it and the pseudo-sens flag.
  auto ds = ToyDataset();
  common::Rng rng(9);
  nn::GnnConfig gnn;
  gnn.in_features = 3;
  nn::GnnClassifier model(gnn, ds.graph, &rng);
  std::vector<float> values(static_cast<size_t>(ds.num_nodes() * 3));
  for (auto& v : values) v = static_cast<float>(rng.Normal());
  tensor::Tensor x0 =
      tensor::Tensor::FromVector({ds.num_nodes(), 3}, std::move(values));
  core::FittedGnnModel fitted(std::move(model),
                              core::FittedGnnModel::InputKind::kFrozen, x0,
                              {"Fairwos", ds.name, 9});
  fitted.set_pseudo_sens(x0);
  const nn::PredictionResult reference = fitted.Predict(ds);

  const std::string path = TempPath("fw_serving_frozen.fwmodel");
  ASSERT_TRUE(SaveModelArtifact(path, MakeArtifact(fitted, ds)).ok());
  auto loaded_or = LoadModelArtifact(path);
  ASSERT_TRUE(loaded_or.ok());
  EXPECT_EQ(loaded_or->input_kind, core::FittedGnnModel::InputKind::kFrozen);
  EXPECT_TRUE(loaded_or->input_is_pseudo_sens);
  auto restored_or = RestoreFittedModel(loaded_or.value(), ds);
  ASSERT_TRUE(restored_or.ok());
  const nn::PredictionResult served = restored_or.value()->Predict(ds);
  ExpectSamePredictions(reference, served);
  ASSERT_TRUE(served.pseudo_sens.defined());
  EXPECT_EQ(reference.pseudo_sens.data(), served.pseudo_sens.data());
  std::filesystem::remove(path);
}

TEST(ArtifactTest, CorruptFileIsRejected) {
  auto ds = ToyDataset();
  auto fitted = FitVanilla(ds, /*seed=*/5, /*epochs=*/5);
  const std::string path = TempPath("fw_serving_corrupt.fwmodel");
  ASSERT_TRUE(SaveModelArtifact(path, MakeArtifact(*fitted->AsGnn(), ds)).ok());

  // A flipped payload bit on disk must fail the CRC.
  ASSERT_TRUE(testing::FaultInjector::FlipByte(path, 40).ok());
  EXPECT_EQ(LoadModelArtifact(path).status().code(),
            common::StatusCode::kIoError);
  ASSERT_TRUE(testing::FaultInjector::FlipByte(path, 40).ok());  // undo

  // A truncated tail must be rejected, not parsed.
  const auto size = std::filesystem::file_size(path);
  ASSERT_TRUE(
      testing::FaultInjector::Truncate(path, static_cast<int64_t>(size) - 7)
          .ok());
  EXPECT_EQ(LoadModelArtifact(path).status().code(),
            common::StatusCode::kIoError);
  std::filesystem::remove(path);
}

TEST(ArtifactTest, ReadPathFaultInjectionIsCaughtByCrc) {
  // kCheckpointRead flips one bit in the buffer after it is read back —
  // simulating disk/bus rot. The artifact loader shares the envelope codec,
  // so the CRC must catch it here too.
  auto ds = ToyDataset();
  auto fitted = FitVanilla(ds, /*seed=*/2, /*epochs=*/5);
  const std::string path = TempPath("fw_serving_readfault.fwmodel");
  ASSERT_TRUE(SaveModelArtifact(path, MakeArtifact(*fitted->AsGnn(), ds)).ok());

  testing::FaultInjector injector(3);
  injector.Arm(testing::FaultSite::kCheckpointRead, 0);
  {
    testing::ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(LoadModelArtifact(path).status().code(),
              common::StatusCode::kIoError);
  }
  EXPECT_EQ(injector.fires(testing::FaultSite::kCheckpointRead), 1);
  // Without the injector the same file loads fine: the fault was injected,
  // not real.
  EXPECT_TRUE(LoadModelArtifact(path).ok());
  std::filesystem::remove(path);
}

TEST(ArtifactTest, WrongVersionIsRejected) {
  // A v3 train-state file is a valid FWCP envelope but not a model
  // artifact; the version check must reject it as InvalidArgument.
  const std::string path = TempPath("fw_serving_wrongver.fwck");
  ASSERT_TRUE(nn::WriteCheckpointEnvelope(
                  path, nn::kTrainStateCheckpointVersion, "not a model")
                  .ok());
  EXPECT_EQ(LoadModelArtifact(path).status().code(),
            common::StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(ArtifactTest, DriftedDatasetStatsAreRejected) {
  // kDatasetFeatures artifacts record the fit-time column statistics; a
  // serving dataset whose features drifted must be refused (never silently
  // re-normalized).
  auto ds = ToyDataset();
  auto fitted = FitVanilla(ds, /*seed=*/5, /*epochs=*/5);
  ModelArtifact artifact = MakeArtifact(*fitted->AsGnn(), ds);

  data::Dataset drifted = ToyDataset();
  drifted.features = drifted.features.DetachCopy();
  for (int64_t i = 0; i < drifted.num_nodes(); ++i) {
    drifted.features.set(i, 0, drifted.features.at(i, 0) * 3.0f + 1.0f);
  }
  auto restored_or = RestoreFittedModel(artifact, drifted);
  EXPECT_EQ(restored_or.status().code(),
            common::StatusCode::kFailedPrecondition);
  // The pristine dataset still restores.
  EXPECT_TRUE(RestoreFittedModel(artifact, ds).ok());
}

// --- Inference engine -----------------------------------------------------

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = ToyDataset();
    auto fitted = FitVanilla(ds_, /*seed=*/5);
    reference_ = fitted->Predict(ds_);
    path_ = TempPath("fw_serving_engine.fwmodel");
    ASSERT_TRUE(SaveModelArtifact(path_, MakeArtifact(*fitted->AsGnn(), ds_))
                    .ok());
  }
  void TearDown() override {
    common::SetGlobalThreadCount(0);
    std::filesystem::remove(path_);
  }

  std::unique_ptr<InferenceEngine> MakeEngine(EngineOptions options = {}) {
    auto engine_or = InferenceEngine::Load(path_, ds_, options);
    EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    return std::move(engine_or.value());
  }

  void ExpectMatchesReference(const NodePrediction& p) {
    EXPECT_EQ(p.label, reference_.pred[static_cast<size_t>(p.node)]);
    EXPECT_EQ(p.prob1, reference_.prob1[static_cast<size_t>(p.node)]);
  }

  data::Dataset ds_;
  nn::PredictionResult reference_;
  std::string path_;
};

TEST_F(EngineTest, BatchedMatchesOneAtATimeAtOneAndEightThreads) {
  std::vector<int64_t> all_nodes(static_cast<size_t>(ds_.num_nodes()));
  for (size_t i = 0; i < all_nodes.size(); ++i) {
    all_nodes[i] = static_cast<int64_t>(i);
  }
  for (int threads : {1, 8}) {
    common::SetGlobalThreadCount(threads);
    // Batched, cache off so every answer comes from a fresh forward.
    EngineOptions no_cache;
    no_cache.cache_capacity = 0;
    auto batched = MakeEngine(no_cache);
    auto batch_or = batched->PredictBatch(all_nodes);
    ASSERT_TRUE(batch_or.ok());
    ASSERT_EQ(batch_or->size(), all_nodes.size());
    for (const NodePrediction& p : batch_or.value()) {
      ExpectMatchesReference(p);
    }
    // One at a time through the micro-batching queue.
    auto serial = MakeEngine(no_cache);
    for (int64_t node = 0; node < ds_.num_nodes(); node += 7) {
      auto p_or = serial->Predict(node);
      ASSERT_TRUE(p_or.ok());
      ExpectMatchesReference(p_or.value());
    }
  }
}

TEST_F(EngineTest, ConcurrentClientsGetBitIdenticalAnswers) {
  common::SetGlobalThreadCount(8);
  auto engine = MakeEngine();
  constexpr int kClients = 8;
  constexpr int kPerClient = 40;
  std::vector<std::vector<NodePrediction>> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int64_t node = (c * 13 + i * 5) % ds_.num_nodes();
        auto p_or = engine->Predict(node);
        ASSERT_TRUE(p_or.ok());
        results[static_cast<size_t>(c)].push_back(p_or.value());
      }
    });
  }
  for (auto& t : clients) t.join();
  for (const auto& client_results : results) {
    for (const NodePrediction& p : client_results) {
      ExpectMatchesReference(p);
    }
  }
  const InferenceEngine::Stats stats = engine->stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, kClients * kPerClient);
  EXPECT_GE(stats.batches, 1);
}

TEST_F(EngineTest, CacheServesRepeatNodes) {
  auto engine = MakeEngine();
  auto first_or = engine->Predict(3);
  ASSERT_TRUE(first_or.ok());
  EXPECT_FALSE(first_or->cache_hit);
  auto second_or = engine->Predict(3);
  ASSERT_TRUE(second_or.ok());
  EXPECT_TRUE(second_or->cache_hit);
  EXPECT_EQ(first_or->label, second_or->label);
  EXPECT_EQ(first_or->prob1, second_or->prob1);
  const InferenceEngine::Stats stats = engine->stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.cache_misses, 1);
  EXPECT_EQ(stats.batches, 1);
}

TEST_F(EngineTest, OutOfRangeNodeIsRejected) {
  auto engine = MakeEngine();
  EXPECT_EQ(engine->Predict(-1).status().code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->Predict(ds_.num_nodes()).status().code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine->PredictBatch({0, ds_.num_nodes()}).status().code(),
            common::StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, InvalidOptionsAreRejected) {
  EngineOptions bad;
  bad.max_batch_size = 0;
  EXPECT_EQ(InferenceEngine::Load(path_, ds_, bad).status().code(),
            common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairwos::serve
