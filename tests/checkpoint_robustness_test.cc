// Corruption-resistance tests for the v2 checkpoint format: every class of
// file damage (truncation, wrong magic/version, flipped payload bit, size
// lies, architecture mismatch) must be rejected with the documented Status
// code, must never FW_CHECK-abort, and must leave the module untouched.
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "nn/checkpoint.h"
#include "nn/gnn.h"

namespace fairwos::nn {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

GnnClassifier MakeModel(uint64_t seed, int64_t hidden = 4) {
  common::Rng rng(seed);
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  GnnConfig config;
  config.in_features = 3;
  config.hidden = hidden;
  return GnnClassifier(config, g, &rng);
}

int64_t FileSize(const std::string& path) {
  return static_cast<int64_t>(std::filesystem::file_size(path));
}

class CheckpointRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // PID-qualified so concurrently running test processes (ctest -j) never
    // clobber each other's checkpoint file.
    path_ = TempPath("fw_ckpt_robust_test." +
                     std::to_string(::getpid()) + ".bin");
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  /// Saves `model`, applies `corrupt`, then asserts the load fails with
  /// `expected_code` and that `model`'s parameters are bit-identical to
  /// before the load attempt.
  void ExpectRejected(const std::function<void(const std::string&)>& corrupt,
                      common::StatusCode expected_code) {
    auto model = MakeModel(1);
    ASSERT_TRUE(SaveCheckpoint(path_, model).ok());
    corrupt(path_);
    auto snapshot = SnapshotParameters(model);
    const common::Status status = LoadCheckpoint(path_, model);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), expected_code) << status.ToString();
    for (size_t i = 0; i < snapshot.size(); ++i) {
      const auto& got = model.parameters()[i].data();
      EXPECT_EQ(std::vector<float>(got.begin(), got.end()), snapshot[i])
          << "parameter " << i << " was modified by a failed load";
    }
  }

  std::string path_;
};

TEST_F(CheckpointRobustnessTest, RoundTripStillWorks) {
  auto a = MakeModel(1);
  auto b = MakeModel(2);
  ASSERT_TRUE(SaveCheckpoint(path_, a).ok());
  ASSERT_TRUE(LoadCheckpoint(path_, b).ok());
  for (size_t i = 0; i < a.parameters().size(); ++i) {
    EXPECT_EQ(a.parameters()[i].data(), b.parameters()[i].data());
  }
  // Atomic write: no stale temp file is left behind.
  EXPECT_FALSE(std::filesystem::exists(path_ + ".tmp"));
}

TEST_F(CheckpointRobustnessTest, TruncatedFileIsIoError) {
  ExpectRejected(
      [](const std::string& p) {
        ASSERT_TRUE(
            testing::FaultInjector::Truncate(p, FileSize(p) / 2).ok());
      },
      common::StatusCode::kIoError);
}

TEST_F(CheckpointRobustnessTest, TruncatedInsideHeaderIsIoError) {
  ExpectRejected(
      [](const std::string& p) {
        ASSERT_TRUE(testing::FaultInjector::Truncate(p, 10).ok());
      },
      common::StatusCode::kIoError);
}

TEST_F(CheckpointRobustnessTest, WrongMagicIsInvalidArgument) {
  ExpectRejected(
      [](const std::string& p) {
        // The magic lives in the high half of the first u64 (little-endian:
        // bytes 4-7).
        ASSERT_TRUE(testing::FaultInjector::FlipByte(p, 5, 0xFF).ok());
      },
      common::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointRobustnessTest, WrongVersionIsInvalidArgument) {
  ExpectRejected(
      [](const std::string& p) {
        // The version lives in the low half of the first u64 (bytes 0-3).
        ASSERT_TRUE(testing::FaultInjector::FlipByte(p, 0, 0x40).ok());
      },
      common::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointRobustnessTest, FlippedPayloadByteIsIoError) {
  ExpectRejected(
      [](const std::string& p) {
        // Deep inside the payload: a float of some parameter tensor.
        ASSERT_TRUE(
            testing::FaultInjector::FlipByte(p, FileSize(p) - 3, 0x10).ok());
      },
      common::StatusCode::kIoError);
}

TEST_F(CheckpointRobustnessTest, FlippedSizeFieldIsIoErrorNotHugeAlloc) {
  ExpectRejected(
      [](const std::string& p) {
        // High byte of the payload-size field (bytes 8-15): the header now
        // promises an absurd payload. Load must reject it from the file
        // size alone, not attempt the allocation.
        ASSERT_TRUE(testing::FaultInjector::FlipByte(p, 14, 0x80).ok());
      },
      common::StatusCode::kIoError);
}

TEST_F(CheckpointRobustnessTest, ShapeMismatchIsFailedPrecondition) {
  auto small = MakeModel(1, /*hidden=*/4);
  auto big = MakeModel(2, /*hidden=*/8);
  ASSERT_TRUE(SaveCheckpoint(path_, small).ok());
  auto snapshot = SnapshotParameters(big);
  const common::Status status = LoadCheckpoint(path_, big);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition)
      << status.ToString();
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const auto& got = big.parameters()[i].data();
    EXPECT_EQ(std::vector<float>(got.begin(), got.end()), snapshot[i]);
  }
}

TEST_F(CheckpointRobustnessTest, GarbageFileIsRejectedWithoutAbort) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "definitely not a checkpoint, but long enough for a header";
  }
  auto model = MakeModel(3);
  const common::Status status = LoadCheckpoint(path_, model);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointRobustnessTest, FaultInjectedBitFlipDuringSaveIsCaught) {
  auto model = MakeModel(1);
  ::fairwos::testing::FaultInjector injector(7);
  injector.Arm(::fairwos::testing::FaultSite::kCheckpointFlip, 0);
  {
    ::fairwos::testing::ScopedFaultInjector scoped(&injector);
    ASSERT_TRUE(SaveCheckpoint(path_, model).ok());
  }
  EXPECT_EQ(injector.fires(::fairwos::testing::FaultSite::kCheckpointFlip), 1);
  // The save wrote corrupt bytes; the CRC computed from the intended bytes
  // must expose that at load time.
  auto status = LoadCheckpoint(path_, model);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError) << status.ToString();
}

TEST_F(CheckpointRobustnessTest, FaultInjectedTruncationDuringSaveIsCaught) {
  auto model = MakeModel(1);
  ::fairwos::testing::FaultInjector injector(7);
  injector.Arm(::fairwos::testing::FaultSite::kCheckpointTruncate, 0);
  {
    ::fairwos::testing::ScopedFaultInjector scoped(&injector);
    ASSERT_TRUE(SaveCheckpoint(path_, model).ok());
  }
  auto status = LoadCheckpoint(path_, model);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError) << status.ToString();
}

TEST_F(CheckpointRobustnessTest, EveryByteFlipIsRejectedOrRoundTrips) {
  // Exhaustive single-bit-flip sweep over a small checkpoint: no flip may
  // crash the loader or silently load wrong weights without at least one of
  // (a) a non-OK status, or (b) a byte-identical round trip (flips in
  // ignored padding don't exist in this format, so (b) never happens — but
  // the property we enforce is "no silent corruption", not "all rejected").
  auto model = MakeModel(1);
  ASSERT_TRUE(SaveCheckpoint(path_, model).ok());
  const int64_t size = FileSize(path_);
  auto reference = SnapshotParameters(model);
  for (int64_t offset = 0; offset < size; ++offset) {
    ASSERT_TRUE(testing::FaultInjector::FlipByte(path_, offset, 0x04).ok());
    auto victim = MakeModel(9);
    const common::Status status = LoadCheckpoint(path_, victim);
    if (status.ok()) {
      for (size_t i = 0; i < reference.size(); ++i) {
        const auto& got = victim.parameters()[i].data();
        EXPECT_EQ(std::vector<float>(got.begin(), got.end()), reference[i])
            << "flip at " << offset << " loaded silently-corrupt weights";
      }
    }
    // Restore the original byte for the next iteration.
    ASSERT_TRUE(testing::FaultInjector::FlipByte(path_, offset, 0x04).ok());
  }
}

TEST_F(CheckpointRobustnessTest, UnwritableDirectoryIsIoError) {
  auto model = MakeModel(1);
  auto status = SaveCheckpoint("/nonexistent-dir/ckpt.bin", model);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace fairwos::nn
