// Unit tests for src/common: Status/Result, RNG determinism and
// distribution sanity, string utilities, CSV round trips, CLI parsing.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/csv.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace fairwos::common {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> Doubler(Result<int> in) {
  FW_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntUnbiasedMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.UniformInt(10));
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(10);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(11);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int64_t v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(12);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(13);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(14);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.NextU64() == child.NextU64());
  EXPECT_EQ(same, 0);
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ParseIntValid) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt(" -7 ").value(), -7);
}

TEST(StringUtilTest, ParseIntRejectsGarbage) {
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
}

TEST(StringUtilTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5junk").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringUtilTest, FormatMeanStd) {
  EXPECT_EQ(FormatMeanStd(86.5638, 2.7449), "86.56 ± 2.74");
}

TEST(CsvTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_csv_test.csv").string();
  CsvTable table;
  table.header = {"a", "b"};
  table.rows = {{"1", "2"}, {"3", "4"}};
  ASSERT_TRUE(WriteCsv(path, table).ok());
  auto read = ReadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->header, table.header);
  EXPECT_EQ(read->rows, table.rows);
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto read = ReadCsv("/nonexistent/not_here.csv", false);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, SkipsBlankLinesAndCr) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_csv_cr.csv").string();
  std::ofstream out(path);
  out << "x,y\r\n\n1,2\r\n";
  out.close();
  auto read = ReadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->rows.size(), 1u);
  EXPECT_EQ(read->rows[0][1], "2");
  std::filesystem::remove(path);
}

TEST(CliTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=2.5", "--k", "7", "--verbose"};
  auto flags = CliFlags::Parse(5, const_cast<char**>(argv));
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("alpha", 0), 2.5);
  EXPECT_EQ(flags->GetInt("k", 0), 7);
  EXPECT_TRUE(flags->GetBool("verbose", false));
  EXPECT_EQ(flags->GetString("absent", "dflt"), "dflt");
}

TEST(CliTest, RejectsPositional) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(CliFlags::Parse(2, const_cast<char**>(argv)).ok());
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(w.Seconds(), 0.0);
  const double before = w.Seconds();
  w.Reset();
  EXPECT_LE(w.Seconds(), before + 1.0);
}

}  // namespace
}  // namespace fairwos::common
