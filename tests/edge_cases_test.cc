// Degenerate-input behaviour across the stack: tiny graphs, isolated
// nodes, single-class labels, extreme splits. A library is judged by what
// it does at the edges.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/fairwos.h"
#include "core/lambda_solver.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "graph/algorithms.h"
#include "nn/gnn.h"
#include "tensor/ops.h"

namespace fairwos {
namespace {

/// Builds a minimal hand-rolled dataset with full control of the pieces.
data::Dataset TinyDataset(int64_t n, bool with_edges) {
  data::Dataset ds;
  ds.name = "tiny";
  ds.label_name = "y";
  ds.sens_name = "s";
  ds.graph = graph::Graph(n);
  if (with_edges) {
    for (int64_t i = 0; i + 1 < n; ++i) ds.graph.AddEdge(i, i + 1);
  }
  common::Rng rng(3);
  std::vector<float> x(static_cast<size_t>(n * 4));
  for (auto& v : x) v = static_cast<float>(rng.Normal());
  ds.features = tensor::Tensor::FromVector({n, 4}, std::move(x));
  ds.labels.resize(static_cast<size_t>(n));
  ds.sens.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ds.labels[static_cast<size_t>(i)] = static_cast<int>(i % 2);
    ds.sens[static_cast<size_t>(i)] = static_cast<int>((i / 2) % 2);
  }
  ds.split = data::MakeSplit(n, &rng);
  return ds;
}

TEST(EdgeCaseTest, VanillaOnEdgelessGraph) {
  // Isolated nodes: GCN reduces to a per-node model; must not crash.
  auto ds = TinyDataset(16, /*with_edges=*/false);
  baselines::MethodOptions options;
  options.train.epochs = 20;
  auto method = baselines::MakeMethod("vanilla", options).value();
  auto fitted = method->Fit(ds, 1);
  ASSERT_TRUE(fitted.ok());
  auto out = (*fitted)->Predict(ds);
  EXPECT_EQ(out.pred.size(), 16u);
}

TEST(EdgeCaseTest, FairwosOnTinyGraph) {
  auto ds = TinyDataset(16, /*with_edges=*/true);
  core::FairwosConfig config;
  config.pretrain_epochs = 20;
  config.finetune_epochs = 3;
  config.encoder.epochs = 10;
  config.encoder.out_dim = 4;
  config.counterfactual.top_k = 1;
  auto out = core::TrainFairwos(config, ds, 1, nullptr);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

TEST(EdgeCaseTest, SingleClassTrainingLabels) {
  // All-positive labels: the model should learn the constant answer and
  // the fairness metrics should degrade gracefully (gaps become 0/defined).
  auto ds = TinyDataset(16, true);
  for (auto& y : ds.labels) y = 1;
  baselines::MethodOptions options;
  options.train.epochs = 30;
  auto method = baselines::MakeMethod("vanilla", options).value();
  auto metrics = eval::RunTrial(method.get(), ds, 2);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->acc, 95.0);  // constant prediction is easy
  EXPECT_DOUBLE_EQ(metrics->auc, 50.0);
}

TEST(EdgeCaseTest, OneSidedSensitiveGroup) {
  auto ds = TinyDataset(16, true);
  for (auto& s : ds.sens) s = 0;
  baselines::MethodOptions options;
  options.train.epochs = 20;
  auto method = baselines::MakeMethod("vanilla", options).value();
  auto metrics = eval::RunTrial(method.get(), ds, 2);
  ASSERT_TRUE(metrics.ok());
  EXPECT_DOUBLE_EQ(metrics->dsp, 0.0);
  EXPECT_DOUBLE_EQ(metrics->deo, 0.0);
}

TEST(EdgeCaseTest, SpectralBipartitionOnDisconnectedGraph) {
  common::Rng rng(4);
  graph::Graph g(10);  // fully disconnected
  auto side = graph::SpectralBipartition(g, 20, &rng);
  EXPECT_EQ(side.size(), 10u);  // defined, arbitrary sides
}

TEST(EdgeCaseTest, KHopOnSingleton) {
  graph::Graph g(1);
  auto hood = g.KHopNeighborhood(0, 3);
  EXPECT_EQ(hood, std::vector<int64_t>({0}));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
}

TEST(EdgeCaseTest, CounterfactualSearchWithTwoNodes) {
  common::Rng rng(5);
  std::vector<std::vector<uint8_t>> bins = {{0}, {1}};
  std::vector<int> labels = {1, 1};
  core::CounterfactualConfig config;
  config.top_k = 3;  // more than available
  config.sample_nodes = 0;
  config.candidate_pool = 0;
  auto cf = core::FindCounterfactuals(
      tensor::Tensor::FromVector({2, 1}, {0.0f, 1.0f}), bins, labels, config,
      &rng);
  ASSERT_EQ(cf.anchors.size(), 2u);
  EXPECT_EQ(cf.matches[0][0], std::vector<int64_t>({1}));
  EXPECT_EQ(cf.matches[0][1], std::vector<int64_t>({0}));
}

TEST(EdgeCaseTest, DropoutProbabilityZeroIsIdentityEvenWhenTraining) {
  common::Rng rng(6);
  tensor::Tensor x = tensor::Tensor::Ones({8});
  EXPECT_TRUE(tensor::Dropout(x, 0.0f, true, &rng).ValueEquals(x));
}

TEST(EdgeCaseTest, MinimumViableSplit) {
  common::Rng rng(7);
  // 4 nodes: 2 train / 1 val / 1 test.
  auto split = data::MakeSplit(4, &rng);
  EXPECT_EQ(split.train.size(), 2u);
  EXPECT_EQ(split.val.size(), 1u);
  EXPECT_EQ(split.test.size(), 1u);
}

TEST(EdgeCaseTest, LambdaSolverSingleAttribute) {
  auto lambda = core::SolveLambda({42.0}, 3.0, false);
  ASSERT_EQ(lambda.size(), 1u);
  EXPECT_DOUBLE_EQ(lambda[0], 1.0);
}

}  // namespace
}  // namespace fairwos
