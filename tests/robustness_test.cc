// Tests for the numerical-guardrail / self-healing layer: health scans,
// CRC32, the deterministic FaultInjector schedule, GradientGuard detection,
// gradient clipping, SelfHealing rollback-and-retry, the fault-injected
// Fairwos fine-tune recovery demanded by the PR acceptance criteria, and
// partial-failure tolerance in eval::RunRepeated.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/train_util.h"
#include "common/crc32.h"
#include "common/fault.h"
#include "common/health.h"
#include "common/rng.h"
#include "core/fairwos.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "fairness/metrics.h"
#include "nn/guard.h"
#include "nn/optim.h"

namespace fairwos {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

// --- common::health -----------------------------------------------------------

TEST(HealthTest, AllFiniteOnCleanBuffer) {
  std::vector<float> v = {0.0f, -1.5f, 3e30f};
  EXPECT_TRUE(common::AllFinite(v));
  EXPECT_TRUE(common::CheckHealth(v).ok());
}

TEST(HealthTest, DetectsNanAndInf) {
  std::vector<float> v = {1.0f, kNan, 2.0f, kInf, -kInf, kNan};
  EXPECT_FALSE(common::AllFinite(v));
  auto report = common::CheckHealth(v);
  EXPECT_EQ(report.nan_count, 2);
  EXPECT_EQ(report.inf_count, 2);
  EXPECT_EQ(report.first_bad_index, 1);
  EXPECT_FALSE(report.ok());
}

TEST(HealthTest, IsFiniteScalar) {
  EXPECT_TRUE(common::IsFinite(0.0));
  EXPECT_FALSE(common::IsFinite(std::nan("")));
  EXPECT_FALSE(common::IsFinite(std::numeric_limits<double>::infinity()));
}

// --- common::Crc32 ------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The standard CRC-32 check value.
  EXPECT_EQ(common::Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "fairwos checkpoint payload";
  const uint32_t one_shot = common::Crc32(data, 26);
  const uint32_t first = common::Crc32(data, 10);
  EXPECT_EQ(common::Crc32(data + 10, 16, first), one_shot);
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::vector<unsigned char> buf(64, 0xAB);
  const uint32_t clean = common::Crc32(buf.data(), buf.size());
  buf[40] ^= 0x08;
  EXPECT_NE(common::Crc32(buf.data(), buf.size()), clean);
}

// --- testing::FaultInjector ---------------------------------------------------

TEST(FaultInjectorTest, DisarmedNeverFires) {
  testing::FaultInjector fi(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(fi.ShouldFire(testing::FaultSite::kGradient));
  }
  EXPECT_EQ(fi.visits(testing::FaultSite::kGradient), 10);
  EXPECT_EQ(fi.fires(testing::FaultSite::kGradient), 0);
}

TEST(FaultInjectorTest, FiresOnceAtScheduledVisit) {
  testing::FaultInjector fi(1);
  fi.Arm(testing::FaultSite::kLossValue, /*at_visit=*/3);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(fi.ShouldFire(testing::FaultSite::kLossValue));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, false, false}));
  EXPECT_EQ(fi.fires(testing::FaultSite::kLossValue), 1);
}

TEST(FaultInjectorTest, PeriodicScheduleWithCount) {
  testing::FaultInjector fi(1);
  fi.Arm(testing::FaultSite::kParameter, /*at_visit=*/1, /*count=*/2,
         /*every=*/3);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(fi.ShouldFire(testing::FaultSite::kParameter));
  }
  // Visits 1 and 4 fire; visit 7 would match but the count is exhausted.
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true, false,
                                      false, false, false}));
}

TEST(FaultInjectorTest, UnlimitedCountKeepsFiring) {
  testing::FaultInjector fi(1);
  fi.Arm(testing::FaultSite::kGradient, 0, /*count=*/-1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fi.ShouldFire(testing::FaultSite::kGradient));
  }
}

TEST(FaultInjectorTest, SitesAreIndependent) {
  testing::FaultInjector fi(1);
  fi.Arm(testing::FaultSite::kGradient, 0);
  EXPECT_FALSE(fi.ShouldFire(testing::FaultSite::kLossValue));
  EXPECT_TRUE(fi.ShouldFire(testing::FaultSite::kGradient));
}

TEST(FaultInjectorTest, ScopedInstallRestoresPrevious) {
  EXPECT_EQ(testing::ActiveFaultInjector(), nullptr);
  testing::FaultInjector outer(1), inner(2);
  {
    testing::ScopedFaultInjector a(&outer);
    EXPECT_EQ(testing::ActiveFaultInjector(), &outer);
    {
      testing::ScopedFaultInjector b(&inner);
      EXPECT_EQ(testing::ActiveFaultInjector(), &inner);
    }
    EXPECT_EQ(testing::ActiveFaultInjector(), &outer);
  }
  EXPECT_EQ(testing::ActiveFaultInjector(), nullptr);
}

// --- nn::GradientGuard / clipping --------------------------------------------

std::vector<tensor::Tensor> MakeParams() {
  auto a = tensor::Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  auto b = tensor::Tensor::FromVector({2}, {0.5f, -0.5f});
  a.set_requires_grad(true);
  b.set_requires_grad(true);
  return {a, b};
}

void SetGrad(tensor::Tensor* t, std::vector<float> g) {
  t->mutable_grad() = std::move(g);
}

TEST(GradientGuardTest, CleanStateIsHealthy) {
  auto params = MakeParams();
  SetGrad(&params[0], {0.1f, 0.1f, 0.1f, 0.1f});
  nn::GradientGuard guard(params);
  EXPECT_TRUE(guard.CheckLoss(0.5).ok());
  EXPECT_TRUE(guard.CheckGradients().ok());
  EXPECT_TRUE(guard.CheckParameters().ok());
}

TEST(GradientGuardTest, DetectsNonFiniteLoss) {
  nn::GradientGuard guard(MakeParams());
  EXPECT_FALSE(guard.CheckLoss(std::nan("")).ok());
  EXPECT_FALSE(guard.CheckLoss(-std::numeric_limits<double>::infinity()).ok());
}

TEST(GradientGuardTest, DetectsNanGradient) {
  auto params = MakeParams();
  SetGrad(&params[1], {0.0f, kNan});
  nn::GradientGuard guard(params);
  auto status = guard.CheckGradients();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInternal);
  // The message names the offending parameter.
  EXPECT_NE(status.message().find("parameter 1"), std::string::npos);
}

TEST(GradientGuardTest, DetectsInfParameter) {
  auto params = MakeParams();
  params[0].mutable_data()[2] = kInf;
  nn::GradientGuard guard(params);
  EXPECT_FALSE(guard.CheckParameters().ok());
}

TEST(ClipGradNormTest, ScalesDownOverlongGradients) {
  auto params = MakeParams();
  SetGrad(&params[0], {3.0f, 0.0f, 0.0f, 0.0f});
  SetGrad(&params[1], {0.0f, 4.0f});  // global norm = 5
  const double pre = nn::ClipGradNorm(params, 1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(nn::GlobalGradNorm(params), 1.0, 1e-5);
  EXPECT_NEAR(params[0].grad()[0], 0.6f, 1e-5);
}

TEST(ClipGradNormTest, ShortGradientsUntouched) {
  auto params = MakeParams();
  SetGrad(&params[0], {0.3f, 0.0f, 0.0f, 0.0f});
  SetGrad(&params[1], {0.0f, 0.4f});
  nn::ClipGradNorm(params, 10.0);
  EXPECT_FLOAT_EQ(params[0].grad()[0], 0.3f);
  EXPECT_FLOAT_EQ(params[1].grad()[1], 0.4f);
}

TEST(ClipGradNormTest, NonFiniteNormLeftForTheGuard) {
  auto params = MakeParams();
  SetGrad(&params[0], {kNan, 0.0f, 0.0f, 0.0f});
  nn::ClipGradNorm(params, 1.0);
  // Clipping must not scale (and thereby launder) a NaN gradient.
  EXPECT_TRUE(std::isnan(params[0].grad()[0]));
}

TEST(OptimizerTest, LrAccessorsAndClipping) {
  auto params = MakeParams();
  nn::Sgd opt(params, /*lr=*/1.0f);
  EXPECT_FLOAT_EQ(opt.lr(), 1.0f);
  opt.set_lr(0.5f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.5f);
  opt.set_max_grad_norm(1.0f);
  SetGrad(&params[0], {3.0f, 0.0f, 0.0f, 0.0f});
  SetGrad(&params[1], {0.0f, 4.0f});
  opt.Step();  // clipped to norm 1: update = lr * 0.6 on params[0][0]
  EXPECT_NEAR(params[0].data()[0], 1.0f - 0.5f * 0.6f, 1e-5);
}

// --- nn::SelfHealing ----------------------------------------------------------

class TinyModule : public nn::Module {
 public:
  TinyModule() {
    w_ = RegisterParameter(
        tensor::Tensor::FromVector({2}, {1.0f, 2.0f}));
  }
  tensor::Tensor w_;
};

TEST(SelfHealingTest, HealthyStepsCommitAndNeverRetry) {
  TinyModule model;
  nn::Sgd opt(model.parameters(), 0.1f);
  nn::SelfHealing healer(nn::RecoveryConfig{}, model, &opt, "test");
  SetGrad(&model.w_, {1.0f, 1.0f});
  EXPECT_TRUE(healer.GuardedStep(0.5));
  healer.Commit();
  EXPECT_EQ(healer.retries(), 0);
  EXPECT_NEAR(model.w_.data()[0], 0.9f, 1e-6);
}

TEST(SelfHealingTest, NanLossBlocksTheStep) {
  TinyModule model;
  nn::Sgd opt(model.parameters(), 0.1f);
  nn::SelfHealing healer(nn::RecoveryConfig{}, model, &opt, "test");
  SetGrad(&model.w_, {1.0f, 1.0f});
  EXPECT_FALSE(healer.GuardedStep(std::nan("")));
  // The step was not applied: parameters are untouched.
  EXPECT_FLOAT_EQ(model.w_.data()[0], 1.0f);
}

TEST(SelfHealingTest, RecoverRollsBackDecaysLrAndEnablesClipping) {
  TinyModule model;
  nn::Sgd opt(model.parameters(), 0.1f);
  nn::RecoveryConfig config;
  config.max_retries = 2;
  config.lr_decay = 0.5;
  config.retry_clip_norm = 7.0;
  nn::SelfHealing healer(config, model, &opt, "test");
  // One healthy committed step.
  SetGrad(&model.w_, {1.0f, 1.0f});
  ASSERT_TRUE(healer.GuardedStep(0.5));
  healer.Commit();
  const auto good = model.w_.data();
  // A poisoned step: a parameter goes NaN during the update (corrupted
  // directly here; the clean gradients pass the pre-step checks, so the
  // failure is caught by the post-step parameter scan).
  model.w_.mutable_data()[0] = kNan;
  SetGrad(&model.w_, {0.0f, 0.0f});
  ASSERT_FALSE(healer.GuardedStep(0.5));
  EXPECT_TRUE(std::isnan(model.w_.data()[0]));
  ASSERT_TRUE(healer.Recover());
  EXPECT_EQ(model.w_.data(), good);  // rolled back
  EXPECT_FLOAT_EQ(opt.lr(), 0.05f);  // halved
  EXPECT_FLOAT_EQ(opt.max_grad_norm(), 7.0f);
  EXPECT_EQ(healer.retries(), 1);
}

TEST(SelfHealingTest, BudgetExhaustionStillRestoresLastGood) {
  TinyModule model;
  nn::Sgd opt(model.parameters(), 0.1f);
  nn::RecoveryConfig config;
  config.max_retries = 1;
  nn::SelfHealing healer(config, model, &opt, "test");
  const auto initial = model.w_.data();
  for (int attempt = 0; attempt < 2; ++attempt) {
    SetGrad(&model.w_, {kNan, 0.0f});
    ASSERT_FALSE(healer.GuardedStep(0.5));
    if (attempt == 0) {
      ASSERT_TRUE(healer.Recover());
    } else {
      ASSERT_FALSE(healer.Recover());  // budget spent
    }
  }
  // Even the failed Recover restored the last-good parameters.
  EXPECT_EQ(model.w_.data(), initial);
}

TEST(SelfHealingTest, ZeroBudgetDisablesRecovery) {
  TinyModule model;
  nn::Sgd opt(model.parameters(), 0.1f);
  nn::RecoveryConfig config;
  config.max_retries = 0;
  nn::SelfHealing healer(config, model, &opt, "test");
  SetGrad(&model.w_, {kNan, 0.0f});
  ASSERT_FALSE(healer.GuardedStep(0.5));
  EXPECT_FALSE(healer.Recover());
}

// --- Self-healing baseline training ------------------------------------------

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

nn::GnnClassifier ToyClassifier(const data::Dataset& ds, common::Rng* rng) {
  nn::GnnConfig config;
  config.in_features = ds.features.dim(1);
  config.hidden = 8;
  return nn::GnnClassifier(config, ds.graph, rng);
}

TEST(TrainClassifierRecoveryTest, RecoversFromOnePoisonedLoss) {
  auto ds = ToyDataset();
  common::Rng rng(3);
  auto model = ToyClassifier(ds, &rng);
  baselines::TrainOptions options;
  options.epochs = 30;
  options.patience = 0;
  testing::FaultInjector fi(11);
  // Visits alternate train-loss / validation-loss; visit 4 is epoch 2's
  // train loss.
  fi.Arm(testing::FaultSite::kLossValue, /*at_visit=*/4);
  baselines::TrainDiagnostics diag;
  {
    testing::ScopedFaultInjector scoped(&fi);
    baselines::TrainClassifier(options, ds, ds.features, nullptr, &model,
                               &rng, &diag);
  }
  EXPECT_EQ(fi.fires(testing::FaultSite::kLossValue), 1);
  EXPECT_EQ(diag.retries, 1);
  EXPECT_FALSE(diag.aborted);
  for (const auto& p : model.parameters()) {
    EXPECT_TRUE(common::AllFinite(p.data().data(), p.data().size()));
  }
}

TEST(TrainClassifierRecoveryTest, PersistentFaultAbortsWithFiniteModel) {
  auto ds = ToyDataset();
  common::Rng rng(3);
  auto model = ToyClassifier(ds, &rng);
  baselines::TrainOptions options;
  options.epochs = 50;
  options.recovery.max_retries = 2;
  testing::FaultInjector fi(11);
  // Every optimizer step poisons a gradient: training cannot make progress.
  fi.Arm(testing::FaultSite::kGradient, 0, /*count=*/-1);
  baselines::TrainDiagnostics diag;
  {
    testing::ScopedFaultInjector scoped(&fi);
    baselines::TrainClassifier(options, ds, ds.features, nullptr, &model,
                               &rng, &diag);
  }
  EXPECT_EQ(diag.retries, 2);
  EXPECT_TRUE(diag.aborted);
  for (const auto& p : model.parameters()) {
    EXPECT_TRUE(common::AllFinite(p.data().data(), p.data().size()));
  }
}

// --- Fairwos end-to-end fault recovery (PR acceptance criteria) ---------------

core::FairwosConfig FastConfig() {
  core::FairwosConfig config;
  config.pretrain_epochs = 120;
  config.finetune_epochs = 12;
  config.encoder.epochs = 60;
  return config;
}

/// Optimizer-step visits consumed by one uninjected run — used to aim
/// faults at the fine-tuning phase, whose steps come last.
int64_t CountOptimizerSteps(const data::Dataset& ds, uint64_t seed) {
  testing::FaultInjector counter(0);  // installed but never armed
  testing::ScopedFaultInjector scoped(&counter);
  auto out = core::TrainFairwos(FastConfig(), ds, seed, nullptr);
  FW_CHECK(out.ok());
  return counter.visits(testing::FaultSite::kGradient);
}

TEST(FairwosFaultRecoveryTest, NanGradientMidFinetuneRecovers) {
  auto ds = ToyDataset();
  const uint64_t seed = 11;

  core::FairwosStats clean_stats;
  auto clean = core::TrainFairwos(FastConfig(), ds, seed, &clean_stats);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean_stats.finetune_retries, 0);
  const int64_t total_steps = CountOptimizerSteps(ds, seed);
  ASSERT_GE(clean_stats.finetune_epochs_run, 12);

  // Poison one gradient in the middle of fine-tuning (the last 12 optimizer
  // steps of the run are the fine-tuning epochs).
  testing::FaultInjector fi(29);
  fi.Arm(testing::FaultSite::kGradient, total_steps - 6);
  core::FairwosStats stats;
  common::Result<core::MethodOutput> injected = common::Status::Internal("");
  {
    testing::ScopedFaultInjector scoped(&fi);
    injected = core::TrainFairwos(FastConfig(), ds, seed, &stats);
  }
  // The guard fired, the loop rolled back and retried, and training still
  // succeeded without degradation.
  EXPECT_EQ(fi.fires(testing::FaultSite::kGradient), 1);
  ASSERT_TRUE(injected.ok());
  EXPECT_EQ(stats.finetune_retries, 1);
  EXPECT_EQ(stats.pretrain_retries, 0);
  EXPECT_FALSE(stats.finetune_degraded);

  // Final metrics stay within noise of the uninjected run.
  const auto& test_idx = ds.split.test;
  const double clean_acc =
      fairness::AccuracyPct(clean->pred, ds.labels, test_idx);
  const double injected_acc =
      fairness::AccuracyPct(injected->pred, ds.labels, test_idx);
  EXPECT_NEAR(injected_acc, clean_acc, 10.0);
  for (const auto& p : injected->embeddings.data()) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(FairwosFaultRecoveryTest, UnrecoverableFinetuneDegradesToPretrained) {
  auto ds = ToyDataset();
  const uint64_t seed = 11;
  const int64_t total_steps = CountOptimizerSteps(ds, seed);

  // Reference: the same run with fine-tuning disabled ("w/o F").
  core::FairwosConfig no_fairness = FastConfig();
  no_fairness.use_fairness = false;
  auto reference = core::TrainFairwos(no_fairness, ds, seed, nullptr);
  ASSERT_TRUE(reference.ok());

  // Sabotage every fine-tuning step: recovery must exhaust its budget and
  // fall back to the pre-trained classifier instead of failing the run.
  testing::FaultInjector fi(31);
  fi.Arm(testing::FaultSite::kGradient, total_steps - 10, /*count=*/-1);
  core::FairwosStats stats;
  common::Result<core::MethodOutput> degraded = common::Status::Internal("");
  {
    testing::ScopedFaultInjector scoped(&fi);
    degraded = core::TrainFairwos(FastConfig(), ds, seed, &stats);
  }
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(stats.finetune_degraded);
  EXPECT_EQ(stats.finetune_retries, FastConfig().recovery.max_retries);
  // Graceful degradation: the output is exactly the pre-trained ("w/o F")
  // classifier's, not a half-poisoned fine-tuned model.
  EXPECT_EQ(degraded->pred, reference->pred);
}

TEST(FairwosFaultRecoveryTest, PretrainRecoveryIsCountedSeparately) {
  auto ds = ToyDataset();
  const uint64_t seed = 11;
  const int64_t total_steps = CountOptimizerSteps(ds, seed);
  // Three optimizer steps before fine-tuning begins: the tail of the
  // classifier pre-training phase.
  testing::FaultInjector fi(13);
  fi.Arm(testing::FaultSite::kGradient, total_steps - 12 - 3);
  core::FairwosStats stats;
  common::Result<core::MethodOutput> out = common::Status::Internal("");
  {
    testing::ScopedFaultInjector scoped(&fi);
    out = core::TrainFairwos(FastConfig(), ds, seed, &stats);
  }
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.pretrain_retries, 1);
  EXPECT_EQ(stats.finetune_retries, 0);
  EXPECT_FALSE(stats.finetune_degraded);
}

// --- eval::RunRepeated partial failure ----------------------------------------

/// Fails on a configurable subset of trials, succeeds (with a vanilla-style
/// constant prediction) otherwise. Failures are keyed on the trial seed —
/// reproducing RunRepeated's pre-drawn seed stream — rather than on call
/// order, so the double behaves identically when trials run in parallel.
class FlakyMethod : public core::FairMethod {
 public:
  FlakyMethod(uint64_t base_seed, const std::vector<bool>& fail_on_trial) {
    common::Rng seed_stream(base_seed);
    for (bool fail : fail_on_trial) {
      const uint64_t seed = seed_stream.NextU64();
      if (fail) failing_seeds_.push_back(seed);
    }
  }

  std::string name() const override { return "Flaky"; }

  common::Result<std::unique_ptr<core::FittedModel>> Fit(
      const data::Dataset& ds, uint64_t seed) override {
    if (std::find(failing_seeds_.begin(), failing_seeds_.end(), seed) !=
        failing_seeds_.end()) {
      return common::Status::Internal("injected trial failure");
    }
    core::MethodOutput out;
    out.pred.assign(static_cast<size_t>(ds.num_nodes()), 1);
    out.prob1.assign(static_cast<size_t>(ds.num_nodes()), 0.75f);
    out.train_seconds = 0.01;
    return std::unique_ptr<core::FittedModel>(
        new core::PrecomputedModel(name(), std::move(out)));
  }

 private:
  std::vector<uint64_t> failing_seeds_;
};

TEST(RunRepeatedPartialFailureTest, SkipsFailedTrialsAndCountsThem) {
  auto ds = ToyDataset();
  FlakyMethod method(/*base_seed=*/1, {false, true, false, true, false});
  auto agg = eval::RunRepeated(&method, ds, 5, /*base_seed=*/1);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->trials, 3);
  EXPECT_EQ(agg->failed_trials, 2);
  EXPECT_GT(agg->acc.mean, 0.0);
}

TEST(RunRepeatedPartialFailureTest, AllTrialsFailingIsAnError) {
  auto ds = ToyDataset();
  FlakyMethod method(/*base_seed=*/1, {true, true, true});
  auto agg = eval::RunRepeated(&method, ds, 3, /*base_seed=*/1);
  ASSERT_FALSE(agg.ok());
  EXPECT_EQ(agg.status().code(), common::StatusCode::kInternal);
}

TEST(RunRepeatedPartialFailureTest, NoFailuresReportsZero) {
  auto ds = ToyDataset();
  FlakyMethod method(/*base_seed=*/1, {});
  auto agg = eval::RunRepeated(&method, ds, 3, /*base_seed=*/1);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->trials, 3);
  EXPECT_EQ(agg->failed_trials, 0);
}

}  // namespace
}  // namespace fairwos
