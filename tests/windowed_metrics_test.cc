// Windowed SLO metrics and exporters (docs/observability.md): the sliding
// window histogram (time pruning, sample cap, NaN rejection), the shared
// quantile helpers (ExactQuantiles must reproduce the serve benches' index
// rule; HistogramQuantile interpolates exported buckets), the fixed-bucket
// Histogram's NaN quarantine, and the Prometheus text exporter.
#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "obs/prometheus.h"
#include "obs/quantiles.h"

namespace fairwos::obs {
namespace {

// --- WindowedHistogram ----------------------------------------------------

TEST(WindowedHistogramTest, SnapshotSummarisesSamples) {
  WindowedHistogram w;
  for (int i = 1; i <= 100; ++i) {
    w.ObserveAt(static_cast<double>(i), /*t_seconds=*/0.0);
  }
  const auto s = w.SnapshotAt(/*now_seconds=*/1.0);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Index rule over sorted samples 1..100: sorted[pct/100 * 99].
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p90, 90.0);  // floor(0.90 * 99) = 89 -> value 90
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
  EXPECT_EQ(s.nan_count, 0);
}

TEST(WindowedHistogramTest, OldSamplesFallOutOfTheWindow) {
  WindowOptions opts;
  opts.window_seconds = 10.0;
  WindowedHistogram w(opts);
  w.ObserveAt(1.0, /*t=*/0.0);
  w.ObserveAt(2.0, /*t=*/5.0);
  w.ObserveAt(3.0, /*t=*/12.0);
  // At t=13 everything is still within 10 s except the t=0 sample.
  auto s = w.SnapshotAt(13.0);
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  // At t=30 the window is empty; the snapshot must be all zeroes.
  s = w.SnapshotAt(30.0);
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
}

TEST(WindowedHistogramTest, MaxSamplesEvictsOldestFirst) {
  WindowOptions opts;
  opts.max_samples = 4;
  WindowedHistogram w(opts);
  for (int i = 1; i <= 10; ++i) {
    w.ObserveAt(static_cast<double>(i), /*t=*/static_cast<double>(i));
  }
  const auto s = w.SnapshotAt(10.0);
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.min, 7.0);  // 1..6 were evicted by the cap
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(WindowedHistogramTest, NonFiniteSamplesAreQuarantined) {
  WindowedHistogram w;
  w.ObserveAt(1.0, 0.0);
  w.ObserveAt(std::numeric_limits<double>::quiet_NaN(), 0.0);
  w.ObserveAt(std::numeric_limits<double>::infinity(), 0.0);
  const auto s = w.SnapshotAt(1.0);
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.nan_count, 2);
  EXPECT_TRUE(std::isfinite(s.sum));
  EXPECT_DOUBLE_EQ(s.p99, 1.0);
}

TEST(WindowedHistogramTest, ResetForgetsSamplesAndNanCount) {
  WindowedHistogram w;
  w.ObserveAt(1.0, 0.0);
  w.ObserveAt(std::numeric_limits<double>::quiet_NaN(), 0.0);
  w.Reset();
  const auto s = w.SnapshotAt(0.0);
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.nan_count, 0);
}

// --- Histogram NaN quarantine (satellite fix) -----------------------------

TEST(HistogramNanTest, NonFiniteObservationsDoNotPoisonTheSum) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(-std::numeric_limits<double>::infinity());
  h.Observe(1.5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.nan_count(), 2);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);  // a single NaN used to poison this forever
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0] + buckets[1] + buckets[2], 2);
}

// --- ExactQuantiles -------------------------------------------------------

TEST(ExactQuantilesTest, MatchesTheHistoricBenchIndexRule) {
  std::vector<double> samples = {9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0};
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const ExactQuantiles q(samples);
  for (double pct : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const size_t rank =
        static_cast<size_t>(pct / 100.0 * static_cast<double>(sorted.size() - 1));
    EXPECT_DOUBLE_EQ(q.Quantile(pct), sorted[rank]) << "pct=" << pct;
  }
  EXPECT_DOUBLE_EQ(q.Min(), 1.0);
  EXPECT_DOUBLE_EQ(q.Max(), 9.0);
  EXPECT_DOUBLE_EQ(q.Mean(), 35.0 / 7.0);
  EXPECT_EQ(q.count(), 7);
}

TEST(ExactQuantilesTest, EmptySampleSetReportsZeroes) {
  const ExactQuantiles q({});
  EXPECT_DOUBLE_EQ(q.Quantile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(q.Mean(), 0.0);
  EXPECT_EQ(q.count(), 0);
  EXPECT_DOUBLE_EQ(q.Min(), 0.0);
  EXPECT_DOUBLE_EQ(q.Max(), 0.0);
  EXPECT_EQ(q.rejected(), 0);
}

TEST(ExactQuantilesTest, SingleSampleAnswersEveryPercentile) {
  const ExactQuantiles q({42.0});
  for (double pct : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(q.Quantile(pct), 42.0) << "pct=" << pct;
  }
  EXPECT_DOUBLE_EQ(q.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(q.Min(), 42.0);
  EXPECT_DOUBLE_EQ(q.Max(), 42.0);
  EXPECT_EQ(q.count(), 1);
}

TEST(ExactQuantilesTest, PercentileEndpointsAndClampingAreMinAndMax) {
  const ExactQuantiles q({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(100.0), 3.0);
  // Out-of-range percentiles clamp rather than index out of bounds.
  EXPECT_DOUBLE_EQ(q.Quantile(-10.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(250.0), 3.0);
}

TEST(ExactQuantilesTest, DuplicateHeavySamplesResolveExactly) {
  // All-equal input: every statistic collapses to the one value.
  const ExactQuantiles flat({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(flat.Quantile(50.0), 5.0);
  EXPECT_DOUBLE_EQ(flat.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(flat.Min(), flat.Max());
  // A heavy mode pins the inner percentiles to the mode while the
  // endpoints still see the outliers.
  const ExactQuantiles mode({1.0, 7.0, 7.0, 7.0, 7.0, 7.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(mode.Quantile(25.0), 7.0);
  EXPECT_DOUBLE_EQ(mode.Quantile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(mode.Quantile(75.0), 7.0);
  EXPECT_DOUBLE_EQ(mode.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(mode.Quantile(100.0), 9.0);
}

TEST(ExactQuantilesTest, NanSamplesAreRejectedNotSorted) {
  // A NaN compares false against everything, so sorting a NaN-bearing
  // vector is undefined behaviour territory and the sum is poisoned; the
  // constructor must drop NaNs (and count them) before sorting.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const ExactQuantiles q({3.0, nan, 1.0, nan, 2.0});
  EXPECT_EQ(q.count(), 3);
  EXPECT_EQ(q.rejected(), 2);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(100.0), 3.0);
  EXPECT_DOUBLE_EQ(q.Mean(), 2.0);
  EXPECT_FALSE(std::isnan(q.Quantile(50.0)));

  // All-NaN input degrades to the empty-set contract instead of emitting
  // NaN statistics downstream (benches serialize these into JSON).
  const ExactQuantiles all_nan({nan, nan});
  EXPECT_EQ(all_nan.count(), 0);
  EXPECT_EQ(all_nan.rejected(), 2);
  EXPECT_DOUBLE_EQ(all_nan.Quantile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(all_nan.Mean(), 0.0);
}

TEST(QuantileFromSortedTest, AgreesWithExactQuantiles) {
  std::vector<double> sorted = {1.0, 2.0, 4.0, 8.0, 16.0};
  const ExactQuantiles q(sorted);
  for (double pct : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    EXPECT_DOUBLE_EQ(QuantileFromSorted(sorted, pct), q.Quantile(pct));
  }
}

// --- HistogramQuantile ----------------------------------------------------

TEST(HistogramQuantileTest, InterpolatesInsideTheTargetBucket) {
  // 10 samples in (1, 2]: the median interpolates to the bucket midpoint.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 10, 0, 0}, 0.5), 1.5);
  // Uniform mass: q=0.25 lands in the first bucket (interpolated from 0).
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {10, 10, 10, 0}, 0.25),
                   0.75);
}

TEST(HistogramQuantileTest, OverflowRankReportsTheLastFiniteEdge) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {1, 1, 8}, 0.99), 2.0);
}

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  EXPECT_DOUBLE_EQ(HistogramQuantile({1.0, 2.0}, {0, 0, 0}, 0.5), 0.0);
  // No bounds at all (only an overflow bucket) is also "empty".
  EXPECT_DOUBLE_EQ(HistogramQuantile({}, {5}, 0.5), 0.0);
}

TEST(HistogramQuantileTest, QuantileEndpointsClampInsteadOfExtrapolating) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<int64_t> counts = {10, 10, 10, 0};
  // q=0 resolves at the bottom edge of the first occupied bucket; q=1 at
  // the top of the last. Out-of-range q clamps to the same answers.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 0.0),
                   HistogramQuantile(bounds, counts, -3.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, counts, 7.5), 4.0);
}

TEST(HistogramQuantileTest, SingleOccupiedBucketPinsEveryQuantile) {
  // All mass in one interior bucket: every quantile interpolates inside
  // (1, 2] and never leaves it.
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  for (double q : {0.1, 0.5, 0.9, 1.0}) {
    const double v = HistogramQuantile(bounds, {0, 10, 0, 0}, q);
    EXPECT_GE(v, 1.0) << "q=" << q;
    EXPECT_LE(v, 2.0) << "q=" << q;
  }
}

// --- Prometheus exporter --------------------------------------------------

TEST(PrometheusExportTest, SanitisesMetricNames) {
  EXPECT_EQ(PrometheusMetricName("serve.audit.delta_sp"),
            "fairwos_serve_audit_delta_sp");
  EXPECT_EQ(PrometheusMetricName("train/loss-total"),
            "fairwos_train_loss_total");
}

TEST(PrometheusExportTest, ExportsEveryMetricFamily) {
  MetricsRegistry reg;  // a private registry keeps the test hermetic
  reg.GetCounter("serve.audit.audited")->Increment(3);
  reg.GetGauge("serve.audit.delta_sp")->Set(12.5);
  Histogram* h = reg.GetHistogram("serve.latency_ms", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);
  h->Observe(99.0);  // overflow bucket
  WindowedHistogram* w = reg.GetWindowed("serve.window.latency_ms");
  w->Observe(4.0);

  const std::string text = ToPrometheusText(reg);
  // Counter: _total suffix and TYPE line.
  EXPECT_NE(text.find("# TYPE fairwos_serve_audit_audited_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("fairwos_serve_audit_audited_total 3\n"),
            std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("fairwos_serve_audit_delta_sp 12.5\n"),
            std::string::npos);
  // Histogram: cumulative buckets, +Inf bucket equals _count.
  EXPECT_NE(text.find("fairwos_serve_latency_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("fairwos_serve_latency_ms_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fairwos_serve_latency_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("fairwos_serve_latency_ms_count 3\n"),
            std::string::npos);
  // Window: summary quantiles.
  EXPECT_NE(text.find("# TYPE fairwos_serve_window_latency_ms summary\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("fairwos_serve_window_latency_ms{quantile=\"0.5\"} 4\n"),
      std::string::npos);
  // No NaN was observed, so no _nan_total series appears.
  EXPECT_EQ(text.find("_nan_total"), std::string::npos);
}

TEST(PrometheusExportTest, NanQuarantineExportsOnlyWhenNonZero) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("serve.latency_ms", {1.0});
  h->Observe(std::numeric_limits<double>::quiet_NaN());
  const std::string text = ToPrometheusText(reg);
  EXPECT_NE(text.find("fairwos_serve_latency_ms_nan_total 1\n"),
            std::string::npos);
}

// --- Registry windowed family --------------------------------------------

TEST(MetricsRegistryTest, WindowedFamilyRoundTripsThroughSnapshots) {
  MetricsRegistry reg;
  WindowedHistogram* w = reg.GetWindowed("train.window.epoch_ms");
  EXPECT_EQ(reg.GetWindowed("train.window.epoch_ms"), w);  // stable pointer
  w->Observe(5.0);
  const auto values = reg.WindowValues();
  ASSERT_EQ(values.count("train.window.epoch_ms"), 1u);
  EXPECT_EQ(values.at("train.window.epoch_ms").count, 1);
  // Reset zeroes in place; the pointer stays valid.
  reg.Reset();
  EXPECT_EQ(reg.WindowValues().at("train.window.epoch_ms").count, 0);
  w->Observe(1.0);  // still usable after Reset
  EXPECT_EQ(reg.WindowValues().at("train.window.epoch_ms").count, 1);
}

}  // namespace
}  // namespace fairwos::obs
