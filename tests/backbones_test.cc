// Backbone-agnosticism tests (paper §III-C claims Fairwos is flexible
// across backbones): every backbone — GCN, GIN, GraphSAGE, GAT — must
// produce well-shaped outputs, train end-to-end, and plug into Fairwos and
// every baseline through the registry.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "nn/gnn.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace fairwos::nn {
namespace {

class BackboneParamTest : public ::testing::TestWithParam<Backbone> {};

graph::Graph RingGraph(int n) {
  graph::Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

TEST_P(BackboneParamTest, ForwardShapes) {
  common::Rng rng(1);
  GnnConfig config;
  config.backbone = GetParam();
  config.in_features = 5;
  config.hidden = 8;
  config.num_layers = 2;
  graph::Graph g = RingGraph(7);
  GnnClassifier model(config, g, &rng);
  tensor::Tensor logits =
      model.Forward(tensor::Tensor::Ones({7, 5}), /*training=*/false, &rng);
  EXPECT_EQ(logits.dim(0), 7);
  EXPECT_EQ(logits.dim(1), 2);
  EXPECT_GT(model.NumParameters(), 0);
}

TEST_P(BackboneParamTest, GradientsReachEveryParameter) {
  common::Rng rng(2);
  GnnConfig config;
  config.backbone = GetParam();
  config.in_features = 4;
  config.hidden = 8;
  config.dropout = 0.0f;
  graph::Graph g = RingGraph(6);
  GnnClassifier model(config, g, &rng);
  tensor::Tensor x = tensor::Tensor::RandNormal({6, 4}, 1.0f, &rng);
  tensor::SumSquares(model.Forward(x, /*training=*/true, &rng)).Backward();
  for (const auto& p : model.parameters()) {
    ASSERT_FALSE(p.grad().empty());
    double norm = 0.0;
    for (float v : p.grad()) norm += std::abs(v);
    EXPECT_GT(norm, 0.0) << BackboneName(GetParam());
  }
}

TEST_P(BackboneParamTest, LearnsBlockLabels) {
  common::Rng rng(3);
  GnnConfig config;
  config.backbone = GetParam();
  config.in_features = 2;
  config.hidden = 8;
  config.dropout = 0.0f;
  graph::Graph g(20);
  for (int i = 0; i + 1 < 20; ++i) {
    if (i != 9) g.AddEdge(i, i + 1);  // two disjoint chains of 10
  }
  std::vector<int> labels(20);
  std::vector<float> x(40);
  for (int i = 0; i < 20; ++i) {
    labels[static_cast<size_t>(i)] = i < 10 ? 0 : 1;
    x[static_cast<size_t>(2 * i)] = labels[static_cast<size_t>(i)] ? 1.0f : -1.0f;
  }
  tensor::Tensor features = tensor::Tensor::FromVector({20, 2}, std::move(x));
  std::vector<int64_t> all(20);
  for (int i = 0; i < 20; ++i) all[static_cast<size_t>(i)] = i;
  GnnClassifier model(config, g, &rng);
  Adam opt(model.parameters(), 0.05f);
  for (int epoch = 0; epoch < 250; ++epoch) {
    opt.ZeroGrad();
    tensor::SoftmaxCrossEntropy(model.Forward(features, true, &rng), labels,
                                all)
        .Backward();
    opt.Step();
  }
  tensor::NoGradGuard no_grad;
  auto result = PredictFromLogits(model.Forward(features, false, &rng));
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    correct += result.pred[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)];
  }
  EXPECT_GE(correct, 18) << BackboneName(GetParam());
}

TEST_P(BackboneParamTest, FairwosRunsOnBackbone) {
  auto ds = data::MakeDataset("toy", {}).value();
  baselines::MethodOptions options;
  options.backbone = GetParam();
  options.train.epochs = 50;
  options.fairwos.pretrain_epochs = 50;
  options.fairwos.finetune_epochs = 5;
  options.fairwos.encoder.epochs = 30;
  auto method = baselines::MakeMethod("fairwos", options).value();
  auto fitted = method->Fit(ds, 5);
  ASSERT_TRUE(fitted.ok()) << BackboneName(GetParam()) << ": "
                           << fitted.status().ToString();
  auto out = (*fitted)->Predict(ds);
  EXPECT_EQ(static_cast<int64_t>(out.pred.size()), ds.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(AllBackbones, BackboneParamTest,
                         ::testing::Values(Backbone::kGcn, Backbone::kGin,
                                           Backbone::kSage, Backbone::kGat),
                         [](const auto& info) {
                           return std::string(BackboneName(info.param));
                         });

TEST(SageConvTest, NormalizedRowsHaveUnitNorm) {
  common::Rng rng(4);
  graph::Graph g = RingGraph(5);
  SageConv conv(3, 4, /*normalize=*/true, &rng);
  tensor::Tensor y =
      conv.Forward(g.NeighborMeanAdjacency(),
                   tensor::Tensor::RandNormal({5, 3}, 1.0f, &rng));
  for (int64_t i = 0; i < 5; ++i) {
    double norm = 0.0;
    for (int64_t j = 0; j < 4; ++j) norm += static_cast<double>(y.at(i, j)) * y.at(i, j);
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  }
}

TEST(SageConvTest, IsolatedNodeUsesSelfOnly) {
  common::Rng rng(5);
  graph::Graph g(2);  // no edges
  SageConv conv(2, 3, /*normalize=*/false, &rng);
  tensor::Tensor x = tensor::Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  tensor::Tensor y = conv.Forward(g.NeighborMeanAdjacency(), x);
  // Neighbor mean is all zeros -> output = W_self x + b_self + b_neigh;
  // just verify it is finite and differs per node.
  EXPECT_NE(y.at(0, 0), y.at(1, 0));
}

TEST(GatConvTest, HeadsConcatenateToHidden) {
  common::Rng rng(6);
  graph::Graph g = RingGraph(6);
  GatConv conv(4, 8, /*heads=*/2, 0.2f, &rng);
  tensor::Tensor y = conv.Forward(g.AdjacencyWithSelfLoops(),
                                  tensor::Tensor::Ones({6, 4}));
  EXPECT_EQ(y.dim(0), 6);
  EXPECT_EQ(y.dim(1), 8);
}

TEST(GatConvTest, RejectsIndivisibleHeads) {
  common::Rng rng(7);
  EXPECT_DEATH(GatConv(4, 9, /*heads=*/2, 0.2f, &rng), "divisible");
}

TEST(BackboneParseTest, NewNamesRoundTrip) {
  EXPECT_EQ(ParseBackbone("sage").value(), Backbone::kSage);
  EXPECT_EQ(ParseBackbone("gat").value(), Backbone::kGat);
  EXPECT_STREQ(BackboneName(Backbone::kSage), "sage");
  EXPECT_STREQ(BackboneName(Backbone::kGat), "gat");
}

}  // namespace
}  // namespace fairwos::nn
