// Finite-difference gradient checking for the autograd engine tests.
#ifndef FAIRWOS_TESTS_GRADCHECK_H_
#define FAIRWOS_TESTS_GRADCHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace fairwos::testing {

/// Checks d(loss)/d(input) against central finite differences for every
/// element of `input`. `loss_fn` must rebuild the graph from the current
/// input values and return a scalar tensor.
inline void ExpectGradientsMatch(
    tensor::Tensor input,
    const std::function<tensor::Tensor()>& loss_fn, double eps = 1e-3,
    double tol = 2e-2) {
  input.set_requires_grad(true);
  input.ZeroGrad();
  tensor::Tensor loss = loss_fn();
  loss.Backward();
  const std::vector<float> analytic = input.grad();
  ASSERT_EQ(analytic.size(), input.data().size());

  for (size_t i = 0; i < input.data().size(); ++i) {
    const float saved = input.data()[i];
    input.mutable_data()[i] = saved + static_cast<float>(eps);
    const double plus = loss_fn().item();
    input.mutable_data()[i] = saved - static_cast<float>(eps);
    const double minus = loss_fn().item();
    input.mutable_data()[i] = saved;
    const double numeric = (plus - minus) / (2.0 * eps);
    const double denom = std::max(1.0, std::abs(numeric));
    EXPECT_NEAR(analytic[i], numeric, tol * denom)
        << "element " << i << " analytic=" << analytic[i]
        << " numeric=" << numeric;
  }
}

}  // namespace fairwos::testing

#endif  // FAIRWOS_TESTS_GRADCHECK_H_
