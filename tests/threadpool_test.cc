// Tests for the parallel runtime (common/threadpool.h) and the determinism
// discipline built on it: ParallelFor correctness, exception propagation,
// pool reuse and nesting, the thread-safe lazy transpose cache and Deadline
// poll budget, and the bit-identical --threads 1 vs --threads N guarantee
// for kernels and eval::RunRepeated (docs/parallelism.md). Run under
// -DFAIRWOS_SANITIZE=thread in CI to catch data races.
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/deadline.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "tensor/ops.h"
#include "tensor/sparse.h"
#include "tensor/tensor.h"

namespace fairwos {
namespace {

// ------------------------------------------------------- ParallelFor core --

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  common::ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 16, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(0, 3, 16, [&](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 3);
  });
  EXPECT_EQ(calls, 1);  // fits one chunk: runs inline as a single call
}

TEST(ThreadPoolTest, ChunkBoundariesDependOnlyOnRangeAndGrain) {
  // The same (begin, end, grain) must produce the same chunk set no matter
  // how many workers execute it — the root of the determinism guarantee.
  auto collect = [](common::ThreadPool& pool) {
    std::mutex mu;
    std::set<std::pair<int64_t, int64_t>> chunks;
    pool.ParallelFor(3, 1003, 100, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({lo, hi});
    });
    return chunks;
  };
  common::ThreadPool two(2), eight(8);
  EXPECT_EQ(collect(two), collect(eight));
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  common::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(0, 100000, 10, [&](int64_t, int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 1000, 1,
                                [&](int64_t lo, int64_t) {
                                  if (lo == 500) {
                                    throw std::runtime_error("chunk boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100, 1,
                                [](int64_t, int64_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool must come back clean: full coverage, no stuck workers.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 1000 * 999 / 2);
}

TEST(ThreadPoolTest, NestedParallelForCompletesWithoutDeadlock) {
  common::ThreadPool pool(4);
  constexpr int64_t kOuter = 8, kInner = 1000;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(0, kOuter, 1, [&](int64_t olo, int64_t ohi) {
    for (int64_t o = olo; o < ohi; ++o) {
      pool.ParallelFor(0, kInner, 100, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          hits[static_cast<size_t>(o * kInner + i)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ResizeChangesConcurrencyAndKeepsWorking) {
  common::ThreadPool pool(2);
  EXPECT_EQ(pool.threads(), 2);
  pool.Resize(5);
  EXPECT_EQ(pool.threads(), 5);
  std::atomic<int64_t> count{0};
  pool.ParallelFor(0, 1000, 10,
                   [&](int64_t lo, int64_t hi) { count.fetch_add(hi - lo); });
  EXPECT_EQ(count.load(), 1000);
  pool.Resize(1);
  EXPECT_EQ(pool.threads(), 1);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  common::ThreadPool pool(3);
  constexpr int kTasks = 50;
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, GlobalThreadCountRoundTrips) {
  const int before = common::GlobalThreadCount();
  common::SetGlobalThreadCount(3);
  EXPECT_EQ(common::GlobalThreadCount(), 3);
  common::SetGlobalThreadCount(0);  // restore the default
  EXPECT_EQ(common::GlobalThreadCount(), common::DefaultThreadCount());
  common::SetGlobalThreadCount(before);
}

// ------------------------------------------- thread-safety bug regressions --

TEST(SparseTransposeTest, ConcurrentFirstUseBuildsOneCache) {
  common::Rng rng(7);
  std::vector<tensor::CooEntry> entries;
  for (int i = 0; i < 500; ++i) {
    entries.push_back({rng.UniformInt(50), rng.UniformInt(40),
                       static_cast<float>(rng.Uniform(-1.0, 1.0))});
  }
  auto m = tensor::SparseMatrix::FromCoo(50, 40, entries);
  // Race 8 threads to the lazy transpose; std::call_once must hand every
  // thread the same fully-built matrix.
  std::vector<const tensor::SparseMatrix*> seen(8, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back(
        [&, t] { seen[static_cast<size_t>(t)] = &m->Transposed(); });
  }
  for (auto& th : threads) th.join();
  for (const auto* p : seen) EXPECT_EQ(p, seen[0]);
  EXPECT_EQ(seen[0]->rows(), 40);
  EXPECT_EQ(seen[0]->cols(), 50);
  EXPECT_EQ(seen[0]->nnz(), m->nnz());
}

TEST(DeadlineTest, ConcurrentPollsConsumeExactBudget) {
  constexpr int64_t kBudget = 1000;
  constexpr int kThreads = 8;
  constexpr int kPollsPerThread = 300;  // 2400 total polls > budget
  common::Deadline d = common::Deadline::AfterChecks(kBudget);
  std::atomic<int64_t> not_expired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPollsPerThread; ++i) {
        if (!d.Expired()) not_expired.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Exactly the first kBudget polls (in fetch_sub order) see not-expired.
  EXPECT_EQ(not_expired.load(), kBudget);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.reason(), common::StopReason::kInjected);
}

TEST(DeadlineTest, CopyCarriesRemainingBudget) {
  common::Deadline d = common::Deadline::AfterChecks(2);
  EXPECT_FALSE(d.Expired());
  common::Deadline copy = d;  // one poll left
  EXPECT_FALSE(copy.Expired());
  EXPECT_TRUE(copy.Expired());
  // The original's budget is independent of the copy's polls.
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.Expired());
}

// ----------------------------------------------- bit-identical determinism --

/// Runs `fn` at both thread counts and returns the two results.
template <typename Fn>
auto AtThreadCounts(int a, int b, Fn fn)
    -> std::pair<decltype(fn()), decltype(fn())> {
  common::SetGlobalThreadCount(a);
  auto ra = fn();
  common::SetGlobalThreadCount(b);
  auto rb = fn();
  common::SetGlobalThreadCount(0);  // restore the default
  return {ra, rb};
}

TEST(ParallelDeterminismTest, MatMulBitIdenticalAcrossThreadCounts) {
  auto run = [] {
    common::Rng rng(11);
    tensor::Tensor a = tensor::Tensor::RandNormal({97, 64}, 1.0f, &rng);
    tensor::Tensor b = tensor::Tensor::RandNormal({64, 33}, 1.0f, &rng);
    return tensor::MatMul(a, b).data();
  };
  auto [one, eight] = AtThreadCounts(1, 8, run);
  ASSERT_EQ(one.size(), eight.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], eight[i]) << "element " << i;
  }
}

TEST(ParallelDeterminismTest, SumReductionBitIdenticalAcrossThreadCounts) {
  // Large enough for several reduction chunks (kElemGrain = 32768).
  auto run = [] {
    common::Rng rng(13);
    tensor::Tensor a = tensor::Tensor::RandNormal({200, 1000}, 1.0f, &rng);
    return tensor::Sum(a).item();
  };
  auto [one, eight] = AtThreadCounts(1, 8, run);
  EXPECT_EQ(one, eight);
}

TEST(ParallelDeterminismTest, RunRepeatedBitIdenticalAcrossThreadCounts) {
  auto ds = data::MakeDataset("toy", {}).value();
  auto run = [&ds] {
    baselines::MethodOptions options;
    options.train.epochs = 5;
    options.train.patience = 0;
    auto method = baselines::MakeMethod("vanilla", options).value();
    return eval::RunRepeated(method.get(), ds, /*trials=*/4, /*base_seed=*/3)
        .value();
  };
  auto [one, eight] = AtThreadCounts(1, 8, run);
  EXPECT_EQ(one.trials, eight.trials);
  EXPECT_EQ(one.failed_trials, eight.failed_trials);
  // Exact double equality: same seeds, same kernels, same trial-order
  // aggregation — any scheduling leak shows up here.
  EXPECT_EQ(one.acc.mean, eight.acc.mean);
  EXPECT_EQ(one.acc.stddev, eight.acc.stddev);
  EXPECT_EQ(one.f1.mean, eight.f1.mean);
  EXPECT_EQ(one.auc.mean, eight.auc.mean);
  EXPECT_EQ(one.dsp.mean, eight.dsp.mean);
  EXPECT_EQ(one.dsp.stddev, eight.dsp.stddev);
  EXPECT_EQ(one.deo.mean, eight.deo.mean);
  EXPECT_EQ(one.deo.stddev, eight.deo.stddev);
}

TEST(ParallelDeterminismTest, ParallelTrialsMatchSequentialSeedStream) {
  // The pre-drawn seed contract: trial t's seed is the t-th draw of
  // Rng(base_seed) regardless of execution order. A seed-recording method
  // must observe exactly that set.
  class SeedRecorder : public core::FairMethod {
   public:
    std::string name() const override { return "SeedRecorder"; }
    common::Result<std::unique_ptr<core::FittedModel>> Fit(
        const data::Dataset& ds, uint64_t seed) override {
      {
        std::lock_guard<std::mutex> lock(mu_);
        seeds_.insert(seed);
      }
      core::MethodOutput out;
      out.pred.assign(static_cast<size_t>(ds.num_nodes()), 0);
      out.prob1.assign(static_cast<size_t>(ds.num_nodes()), 0.5f);
      return std::unique_ptr<core::FittedModel>(
          new core::PrecomputedModel(name(), std::move(out)));
    }
    std::set<uint64_t> seeds() const {
      std::lock_guard<std::mutex> lock(mu_);
      return seeds_;
    }

   private:
    mutable std::mutex mu_;
    std::set<uint64_t> seeds_;
  };

  auto ds = data::MakeDataset("toy", {}).value();
  common::SetGlobalThreadCount(8);
  SeedRecorder method;
  ASSERT_TRUE(eval::RunRepeated(&method, ds, /*trials=*/6, /*base_seed=*/21)
                  .ok());
  common::SetGlobalThreadCount(0);

  std::set<uint64_t> expected;
  common::Rng stream(21);
  for (int t = 0; t < 6; ++t) expected.insert(stream.NextU64());
  EXPECT_EQ(method.seeds(), expected);
}

}  // namespace
}  // namespace fairwos
