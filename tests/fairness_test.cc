// Tests for the fairness metrics: hand-computed confusion cases for ACC /
// F1 / AUC / ΔSP / ΔEO plus property tests (symmetry in group relabeling,
// invariance bounds).
#include "fairness/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fairwos::fairness {
namespace {

std::vector<int64_t> AllIdx(size_t n) {
  std::vector<int64_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int64_t>(i);
  return idx;
}

TEST(AccuracyTest, HandComputed) {
  std::vector<int> pred = {1, 0, 1, 1};
  std::vector<int> label = {1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(AccuracyPct(pred, label, AllIdx(4)), 75.0);
}

TEST(AccuracyTest, SubsetIndexing) {
  std::vector<int> pred = {1, 0, 1};
  std::vector<int> label = {0, 0, 0};
  EXPECT_DOUBLE_EQ(AccuracyPct(pred, label, {1}), 100.0);
  EXPECT_DOUBLE_EQ(AccuracyPct(pred, label, {0, 2}), 0.0);
}

TEST(F1Test, HandComputed) {
  // tp=1, fp=1, fn=1 -> F1 = 2/(2+1+1) = 50%.
  std::vector<int> pred = {1, 1, 0, 0};
  std::vector<int> label = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(F1Pct(pred, label, AllIdx(4)), 50.0);
}

TEST(F1Test, DegenerateAllNegative) {
  std::vector<int> pred = {0, 0};
  std::vector<int> label = {0, 0};
  EXPECT_DOUBLE_EQ(F1Pct(pred, label, AllIdx(2)), 0.0);
}

TEST(AucTest, PerfectRanking) {
  std::vector<float> prob = {0.1f, 0.2f, 0.8f, 0.9f};
  std::vector<int> label = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AucPct(prob, label, AllIdx(4)), 100.0);
}

TEST(AucTest, InvertedRanking) {
  std::vector<float> prob = {0.9f, 0.8f, 0.1f, 0.2f};
  std::vector<int> label = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(AucPct(prob, label, AllIdx(4)), 0.0);
}

TEST(AucTest, TiesGiveHalfCredit) {
  std::vector<float> prob = {0.5f, 0.5f};
  std::vector<int> label = {0, 1};
  EXPECT_DOUBLE_EQ(AucPct(prob, label, AllIdx(2)), 50.0);
}

TEST(AucTest, SingleClassReturnsFifty) {
  std::vector<float> prob = {0.3f, 0.6f};
  std::vector<int> label = {1, 1};
  EXPECT_DOUBLE_EQ(AucPct(prob, label, AllIdx(2)), 50.0);
}

TEST(DeltaSpTest, HandComputed) {
  // Group 0: preds {1, 0} -> rate 0.5. Group 1: preds {1, 1} -> rate 1.
  std::vector<int> pred = {1, 0, 1, 1};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(StatisticalParityGapPct(pred, sens, AllIdx(4)), 50.0);
}

TEST(DeltaSpTest, ZeroWhenEqual) {
  std::vector<int> pred = {1, 0, 1, 0};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(StatisticalParityGapPct(pred, sens, AllIdx(4)), 0.0);
}

TEST(DeltaSpTest, EmptyGroupGivesZero) {
  std::vector<int> pred = {1, 0};
  std::vector<int> sens = {0, 0};
  EXPECT_DOUBLE_EQ(StatisticalParityGapPct(pred, sens, AllIdx(2)), 0.0);
}

TEST(DeltaSpTest, SymmetricUnderGroupRelabel) {
  std::vector<int> pred = {1, 0, 1, 1, 0, 1};
  std::vector<int> sens = {0, 0, 0, 1, 1, 1};
  std::vector<int> flipped = {1, 1, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(StatisticalParityGapPct(pred, sens, AllIdx(6)),
                   StatisticalParityGapPct(pred, flipped, AllIdx(6)));
}

TEST(DeltaEoTest, HandComputed) {
  // Positives: idx {0,1} in group 0 (TPR 1/2), idx {4,5} in group 1 (TPR 1).
  std::vector<int> pred = {1, 0, 0, 1, 1, 1};
  std::vector<int> label = {1, 1, 0, 0, 1, 1};
  std::vector<int> sens = {0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunityGapPct(pred, label, sens, AllIdx(6)), 50.0);
}

TEST(DeltaEoTest, IgnoresNegativeClass) {
  // Changing predictions on y=0 rows must not change ΔEO.
  std::vector<int> label = {1, 0, 1, 0};
  std::vector<int> sens = {0, 0, 1, 1};
  std::vector<int> pred_a = {1, 0, 1, 0};
  std::vector<int> pred_b = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunityGapPct(pred_a, label, sens, AllIdx(4)),
                   EqualOpportunityGapPct(pred_b, label, sens, AllIdx(4)));
}

TEST(DeltaEoTest, NoPositivesInGroupGivesZero) {
  std::vector<int> pred = {1, 1};
  std::vector<int> label = {1, 0};
  std::vector<int> sens = {0, 1};
  EXPECT_DOUBLE_EQ(EqualOpportunityGapPct(pred, label, sens, AllIdx(2)), 0.0);
}

TEST(GroupConfusionTest, CountsAndRates) {
  std::vector<int> pred = {1, 0, 1, 0};
  std::vector<int> label = {1, 1, 0, 0};
  std::vector<int> sens = {0, 0, 1, 1};
  GroupConfusion gc = ComputeGroupConfusion(pred, label, sens, AllIdx(4));
  EXPECT_EQ(gc.GroupTotal(0), 2);
  EXPECT_EQ(gc.GroupTotal(1), 2);
  EXPECT_DOUBLE_EQ(gc.PositiveRate(0), 0.5);
  EXPECT_DOUBLE_EQ(gc.TruePositiveRate(0), 0.5);
  EXPECT_DOUBLE_EQ(gc.TruePositiveRate(1), 0.0);
}

TEST(MetricsDeathTest, EmptyIndexAborts) {
  std::vector<int> v = {0};
  EXPECT_DEATH(AccuracyPct(v, v, {}), "empty index");
}

TEST(MetricsDeathTest, OutOfRangeIndexAborts) {
  std::vector<int> v = {0};
  EXPECT_DEATH(AccuracyPct(v, v, {5}), "");
}

// Property: both gaps are bounded in [0, 100].
class GapBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GapBoundsTest, GapsWithinBounds) {
  common::Rng rng(GetParam());
  const int n = 64;
  std::vector<int> pred(n), label(n), sens(n);
  for (int i = 0; i < n; ++i) {
    pred[i] = rng.Bernoulli(0.5);
    label[i] = rng.Bernoulli(0.5);
    sens[i] = rng.Bernoulli(0.5);
  }
  const double dsp = StatisticalParityGapPct(pred, sens, AllIdx(n));
  const double deo = EqualOpportunityGapPct(pred, label, sens, AllIdx(n));
  EXPECT_GE(dsp, 0.0);
  EXPECT_LE(dsp, 100.0);
  EXPECT_GE(deo, 0.0);
  EXPECT_LE(deo, 100.0);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GapBoundsTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace fairwos::fairness
