// Unit tests for src/graph: adjacency bookkeeping, statistics, normalized
// operators, BFS neighborhoods, and edge-list I/O.
#include "graph/graph.h"

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace fairwos::graph {
namespace {

Graph Triangle() {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  return g;
}

TEST(GraphTest, AddEdgeBookkeeping) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1)) << "duplicate edges are rejected";
  EXPECT_FALSE(g.AddEdge(1, 0)) << "undirected duplicate rejected";
  EXPECT_FALSE(g.AddEdge(2, 2)) << "self-loops rejected";
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, DegreesAndAverage) {
  Graph g = Triangle();
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0);
  Graph empty(5);
  EXPECT_DOUBLE_EQ(empty.AverageDegree(), 0.0);
}

TEST(GraphTest, KHopNeighborhood) {
  // Path 0-1-2-3-4.
  Graph g(5);
  for (int i = 0; i < 4; ++i) g.AddEdge(i, i + 1);
  auto hop0 = g.KHopNeighborhood(2, 0);
  EXPECT_EQ(hop0, std::vector<int64_t>({2}));
  auto hop1 = g.KHopNeighborhood(2, 1);
  EXPECT_EQ(hop1.size(), 3u);
  auto hop2 = g.KHopNeighborhood(0, 2);
  EXPECT_EQ(hop2.size(), 3u);  // 0, 1, 2
  auto all = g.KHopNeighborhood(2, 10);
  EXPECT_EQ(all.size(), 5u);
}

TEST(GraphTest, EdgeHomophily) {
  Graph g(4);
  g.AddEdge(0, 1);  // same group
  g.AddEdge(2, 3);  // same group
  g.AddEdge(0, 2);  // cross group
  std::vector<int> groups = {0, 0, 1, 1};
  EXPECT_NEAR(g.EdgeHomophily(groups), 2.0 / 3.0, 1e-12);
}

TEST(GraphTest, GcnNormalizedRowsHaveCorrectValues) {
  // Triangle: every node has degree 2, so D̃ = 3I and every entry of the
  // normalized operator (including the self-loop) is 1/3.
  auto adj = Triangle().GcnNormalizedAdjacency();
  EXPECT_EQ(adj->rows(), 3);
  EXPECT_EQ(adj->nnz(), 9);
  for (float v : adj->values()) EXPECT_NEAR(v, 1.0f / 3.0f, 1e-6);
}

TEST(GraphTest, RowNormalizedRowsSumToOne) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  auto adj = g.RowNormalizedAdjacency();
  // Multiply by all-ones: every row must give exactly 1.
  std::vector<float> ones(4, 1.0f), out(4);
  adj->Multiply(ones.data(), 1, out.data());
  for (float v : out) EXPECT_NEAR(v, 1.0f, 1e-6);
}

TEST(GraphTest, PlainAdjacencyIsSymmetricNoSelfLoops) {
  auto adj = Triangle().PlainAdjacency();
  EXPECT_EQ(adj->nnz(), 6);
  // Symmetry: A == Aᵀ entrywise via multiply against random vector.
  std::vector<float> x = {1.0f, 2.0f, -3.0f};
  std::vector<float> ax(3), atx(3);
  adj->Multiply(x.data(), 1, ax.data());
  adj->Transposed().Multiply(x.data(), 1, atx.data());
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(ax[i], atx[i]);
}

TEST(GraphTest, GcnOperatorPreservesConstantVector) {
  // Â is doubly stochastic-like only for regular graphs; on a triangle the
  // constant vector is exactly preserved.
  auto adj = Triangle().GcnNormalizedAdjacency();
  std::vector<float> ones(3, 1.0f), out(3);
  adj->Multiply(ones.data(), 1, out.data());
  for (float v : out) EXPECT_NEAR(v, 1.0f, 1e-6);
}

TEST(EdgeListIoTest, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_edges.csv").string();
  std::ofstream out(path);
  out << "src,dst\n0,1\n1,2\n2,0\n";
  out.close();
  auto g = LoadEdgeListCsv(path, /*has_header=*/true, /*num_nodes=*/0);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, ExplicitNodeCountValidation) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_edges2.csv").string();
  std::ofstream out(path);
  out << "0,5\n";
  out.close();
  EXPECT_FALSE(LoadEdgeListCsv(path, false, /*num_nodes=*/3).ok());
  auto ok = LoadEdgeListCsv(path, false, /*num_nodes=*/10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_nodes(), 10);
  std::filesystem::remove(path);
}

TEST(EdgeListIoTest, RejectsMalformedRows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_edges3.csv").string();
  std::ofstream out(path);
  out << "0\n";
  out.close();
  EXPECT_FALSE(LoadEdgeListCsv(path, false, 0).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace fairwos::graph
