// Quality properties of the counterfactual search on realistic data: the
// matches must actually be *near* neighbours (closer than random
// same-label nodes) and respect the constraints at scale — the semantic
// heart of Eq. 12.
#include <cmath>

#include <gtest/gtest.h>

#include "core/counterfactual.h"
#include "core/encoder.h"
#include "data/synthetic.h"

namespace fairwos::core {
namespace {

struct SearchFixture {
  data::Dataset ds;
  tensor::Tensor embeddings;  // the encoder's pseudo-attrs double as both
  std::vector<std::vector<uint8_t>> bins;
  CounterfactualSet cf;
};

SearchFixture BuildFixture(uint64_t seed) {
  SearchFixture fixture{data::MakeDataset("toy", {}).value(), {}, {}, {}};
  EncoderConfig config;
  config.out_dim = 8;
  config.epochs = 80;
  PretrainedEncoder encoder(config, fixture.ds, seed);
  fixture.embeddings = encoder.pseudo_attributes();
  fixture.bins = MedianBins(fixture.embeddings);
  CounterfactualConfig search;
  search.top_k = 3;
  search.sample_nodes = 0;
  search.candidate_pool = 0;  // exact
  common::Rng rng(seed + 1);
  fixture.cf = FindCounterfactuals(fixture.embeddings, fixture.bins,
                                   fixture.ds.labels, search, &rng);
  return fixture;
}

double Distance(const tensor::Tensor& emb, int64_t a, int64_t b) {
  double d = 0.0;
  for (int64_t k = 0; k < emb.dim(1); ++k) {
    const double diff = emb.at(a, k) - emb.at(b, k);
    d += diff * diff;
  }
  return d;
}

TEST(CounterfactualQualityTest, ConstraintsHoldOnRealData) {
  auto fixture = BuildFixture(11);
  for (int64_t i = 0; i < fixture.cf.num_attrs(); ++i) {
    for (size_t a = 0; a < fixture.cf.anchors.size(); ++a) {
      const int64_t v = fixture.cf.anchors[a];
      for (int64_t m : fixture.cf.matches[static_cast<size_t>(i)][a]) {
        EXPECT_EQ(fixture.ds.labels[static_cast<size_t>(v)],
                  fixture.ds.labels[static_cast<size_t>(m)]);
        EXPECT_NE(fixture.bins[static_cast<size_t>(v)][static_cast<size_t>(i)],
                  fixture.bins[static_cast<size_t>(m)][static_cast<size_t>(i)]);
      }
    }
  }
}

TEST(CounterfactualQualityTest, MatchesAreCloserThanRandomSameLabelPairs) {
  auto fixture = BuildFixture(12);
  // Mean distance of top-1 matches.
  double match_total = 0.0;
  int64_t match_count = 0;
  for (int64_t i = 0; i < fixture.cf.num_attrs(); ++i) {
    for (size_t a = 0; a < fixture.cf.anchors.size(); ++a) {
      const auto& slot = fixture.cf.matches[static_cast<size_t>(i)][a];
      if (slot.empty()) continue;
      match_total += Distance(fixture.embeddings, fixture.cf.anchors[a],
                              slot[0]);
      ++match_count;
    }
  }
  ASSERT_GT(match_count, 0);
  const double match_mean = match_total / static_cast<double>(match_count);

  // Mean distance of random same-label pairs.
  common::Rng rng(13);
  double random_total = 0.0;
  int64_t random_count = 0;
  const int64_t n = fixture.ds.num_nodes();
  while (random_count < 500) {
    const int64_t a = rng.UniformInt(n);
    const int64_t b = rng.UniformInt(n);
    if (a == b || fixture.ds.labels[static_cast<size_t>(a)] !=
                      fixture.ds.labels[static_cast<size_t>(b)]) {
      continue;
    }
    random_total += Distance(fixture.embeddings, a, b);
    ++random_count;
  }
  const double random_mean = random_total / static_cast<double>(random_count);
  EXPECT_LT(match_mean, random_mean)
      << "Eq. 12's nearest-neighbour property must beat random matching";
}

TEST(CounterfactualQualityTest, SampledSearchApproximatesExact) {
  auto fixture = BuildFixture(14);
  // Re-run with a sampling budget and compare top-1 distances: the sampled
  // matches may differ but must not be wildly farther on average.
  CounterfactualConfig sampled;
  sampled.top_k = 3;
  sampled.sample_nodes = 0;       // same anchors (all)
  sampled.candidate_pool = 100;   // half the nodes
  common::Rng rng(15);
  auto cf_sampled = FindCounterfactuals(fixture.embeddings, fixture.bins,
                                        fixture.ds.labels, sampled, &rng);
  auto mean_top1 = [&](const CounterfactualSet& cf) {
    double total = 0.0;
    int64_t count = 0;
    for (int64_t i = 0; i < cf.num_attrs(); ++i) {
      for (size_t a = 0; a < cf.anchors.size(); ++a) {
        const auto& slot = cf.matches[static_cast<size_t>(i)][a];
        if (slot.empty()) continue;
        total += Distance(fixture.embeddings, cf.anchors[a], slot[0]);
        ++count;
      }
    }
    return total / static_cast<double>(std::max<int64_t>(count, 1));
  };
  EXPECT_LT(mean_top1(cf_sampled), 4.0 * mean_top1(fixture.cf));
}

TEST(CounterfactualQualityTest, DeterministicGivenRngState) {
  auto a = BuildFixture(16);
  auto b = BuildFixture(16);
  ASSERT_EQ(a.cf.anchors, b.cf.anchors);
  for (int64_t i = 0; i < a.cf.num_attrs(); ++i) {
    EXPECT_EQ(a.cf.matches[static_cast<size_t>(i)],
              b.cf.matches[static_cast<size_t>(i)]);
  }
}

}  // namespace
}  // namespace fairwos::core
