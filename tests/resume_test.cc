// Durable crash-resume tests (docs/resume.md): RNG / optimizer / full
// TrainState round trips, rotation + latest-valid fallback, cooperative
// deadlines, and the headline guarantee — kill-and-resume at an epoch
// boundary produces bit-identical results to an uninterrupted run, for both
// the baseline classifier loop and full Fairwos training.
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/train_util.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "core/fairwos.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "nn/gnn.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace fairwos {
namespace {

std::string TempDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

int64_t FileSize(const std::string& path) {
  return static_cast<int64_t>(std::filesystem::file_size(path));
}

// --- Deadline -------------------------------------------------------------

TEST(DeadlineTest, NeverDoesNotExpire) {
  common::Deadline d = common::Deadline::Never();
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.reason(), common::StopReason::kNone);
}

TEST(DeadlineTest, AfterChecksExpiresOnExactPoll) {
  common::Deadline d = common::Deadline::AfterChecks(3);
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.Expired());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(d.Expired());
  EXPECT_TRUE(d.Expired());  // stays expired
  EXPECT_EQ(d.reason(), common::StopReason::kInjected);
}

TEST(DeadlineTest, AfterZeroChecksIsImmediatelyExpired) {
  common::Deadline d = common::Deadline::AfterChecks(0);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.reason(), common::StopReason::kInjected);
}

TEST(DeadlineTest, WallClockExpires) {
  common::Deadline past = common::Deadline::After(0.0);
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.reason(), common::StopReason::kWallClock);

  common::Deadline future = common::Deadline::After(3600.0);
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, CancellationTripsEveryDeadline) {
  common::ClearCancellation();
  common::Deadline d = common::Deadline::Never();
  EXPECT_FALSE(d.Expired());
  common::RequestCancellation();
  EXPECT_TRUE(common::CancellationRequested());
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.reason(), common::StopReason::kSignal);
  common::ClearCancellation();
}

// --- Rng state round trip -------------------------------------------------

TEST(RngStateTest, RoundTripContinuesIdenticalStream) {
  common::Rng rng(123);
  for (int i = 0; i < 17; ++i) rng.NextU64();
  const common::RngState saved = rng.SaveState();
  std::vector<double> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.Uniform());
  rng.LoadState(saved);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Uniform(), expected[i]);
}

TEST(RngStateTest, OddNormalDrawsPreserveCachedVariate) {
  // Box-Muller produces normals in pairs; an odd draw count leaves the
  // second variate cached. The checkpoint must carry that cache, or the
  // resumed stream shifts by one normal.
  common::Rng rng(7);
  rng.Normal();
  rng.Normal();
  rng.Normal();  // odd count: one variate cached
  const common::RngState saved = rng.SaveState();
  EXPECT_TRUE(saved.has_cached_normal);
  std::vector<double> expected;
  for (int i = 0; i < 9; ++i) expected.push_back(rng.Normal());
  expected.push_back(rng.Uniform());
  rng.LoadState(saved);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(rng.Normal(), expected[i]);
  EXPECT_EQ(rng.Uniform(), expected[9]);
}

TEST(RngStateTest, RestoredRngSavesIdenticalState) {
  common::Rng a(99);
  a.Normal();  // leave a cached variate
  const common::RngState saved = a.SaveState();
  common::Rng b(1);
  b.LoadState(saved);
  EXPECT_TRUE(b.SaveState() == saved);
}

// --- Optimizer state round trip -------------------------------------------

TEST(OptimizerStateTest, AdamExportImportRoundTrip) {
  tensor::Tensor x = tensor::Tensor::FromVector({3}, {5.0f, -5.0f, 2.0f});
  x.set_requires_grad(true);
  nn::Adam a({x}, /*lr=*/0.1f);
  for (int i = 0; i < 7; ++i) {
    a.ZeroGrad();
    tensor::SumSquares(x).Backward();
    a.Step();
  }
  const nn::OptimizerState state = a.ExportState();
  EXPECT_EQ(state.step_count, 7);
  ASSERT_EQ(state.moment1.size(), 1u);
  ASSERT_EQ(state.moment1[0].size(), 3u);

  tensor::Tensor y = tensor::Tensor::FromVector(
      {3}, std::vector<float>(x.data().begin(), x.data().end()));
  y.set_requires_grad(true);
  nn::Adam b({y}, /*lr=*/0.5f);  // wrong lr, overwritten by import
  ASSERT_TRUE(b.ImportState(state).ok());
  const nn::OptimizerState reexported = b.ExportState();
  EXPECT_EQ(reexported.lr, state.lr);
  EXPECT_EQ(reexported.step_count, state.step_count);
  EXPECT_EQ(reexported.moment1, state.moment1);
  EXPECT_EQ(reexported.moment2, state.moment2);

  // The restored optimizer continues exactly like the original.
  for (int i = 0; i < 5; ++i) {
    a.ZeroGrad();
    tensor::SumSquares(x).Backward();
    a.Step();
    b.ZeroGrad();
    tensor::SumSquares(y).Backward();
    b.Step();
  }
  EXPECT_EQ(x.data(), y.data());
}

TEST(OptimizerStateTest, AdamImportRejectsMismatchedShapes) {
  tensor::Tensor x = tensor::Tensor::FromVector({3}, {1.0f, 2.0f, 3.0f});
  x.set_requires_grad(true);
  nn::Adam opt({x}, 0.1f);
  nn::OptimizerState state = opt.ExportState();
  state.moment1[0].resize(2);
  EXPECT_EQ(opt.ImportState(state).code(),
            common::StatusCode::kFailedPrecondition);
  state = opt.ExportState();
  state.lr = 0.0f;
  EXPECT_EQ(opt.ImportState(state).code(),
            common::StatusCode::kFailedPrecondition);
}

// --- TrainState serialization ---------------------------------------------

nn::TrainState SampleState() {
  nn::TrainState st;
  st.phase = 2;
  st.epoch = 41;
  common::Rng rng(5);
  rng.Normal();
  st.rng = rng.SaveState();
  st.optimizer.lr = 0.25f;
  st.optimizer.max_grad_norm = 1.5f;
  st.optimizer.step_count = 19;
  st.optimizer.moment1 = {{0.1f, -0.2f}, {0.3f}};
  st.optimizer.moment2 = {{0.01f, 0.02f}, {0.03f}};
  st.params = {{1.0f, 2.0f}, {3.0f}};
  st.blobs = {{4.0f, 5.0f, 6.0f}, {7.0f}};
  st.scalars = {0.5, -2.75, 1e-9};
  st.counters = {3, 0, -7, 1};
  return st;
}

void ExpectStatesEqual(const nn::TrainState& a, const nn::TrainState& b) {
  EXPECT_EQ(a.phase, b.phase);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_TRUE(a.rng == b.rng);
  EXPECT_EQ(a.optimizer.lr, b.optimizer.lr);
  EXPECT_EQ(a.optimizer.max_grad_norm, b.optimizer.max_grad_norm);
  EXPECT_EQ(a.optimizer.step_count, b.optimizer.step_count);
  EXPECT_EQ(a.optimizer.moment1, b.optimizer.moment1);
  EXPECT_EQ(a.optimizer.moment2, b.optimizer.moment2);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.blobs, b.blobs);
  EXPECT_EQ(a.scalars, b.scalars);
  EXPECT_EQ(a.counters, b.counters);
}

TEST(TrainStateTest, FileRoundTrip) {
  const std::string dir = TempDir("fw_trainstate_roundtrip");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/state.fwck";
  const nn::TrainState saved = SampleState();
  ASSERT_TRUE(nn::SaveTrainState(path, saved).ok());
  nn::TrainState loaded;
  ASSERT_TRUE(nn::LoadTrainState(path, &loaded).ok());
  ExpectStatesEqual(saved, loaded);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

TEST(TrainStateTest, FlippedByteIsIoError) {
  const std::string dir = TempDir("fw_trainstate_corrupt");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/state.fwck";
  ASSERT_TRUE(nn::SaveTrainState(path, SampleState()).ok());
  ASSERT_TRUE(
      testing::FaultInjector::FlipByte(path, FileSize(path) - 5, 0x20).ok());
  nn::TrainState loaded;
  EXPECT_EQ(nn::LoadTrainState(path, &loaded).code(),
            common::StatusCode::kIoError);
  std::filesystem::remove_all(dir);
}

TEST(TrainStateTest, ModuleCheckpointIsWrongVersion) {
  // A v2 module checkpoint must not parse as a v3 TrainState.
  const std::string dir = TempDir("fw_trainstate_wrongver");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/state.fwck";
  common::Rng rng(1);
  graph::Graph g(2);
  g.AddEdge(0, 1);
  nn::GnnConfig config;
  config.in_features = 2;
  config.hidden = 3;
  nn::GnnClassifier model(config, g, &rng);
  ASSERT_TRUE(nn::SaveCheckpoint(path, model).ok());
  nn::TrainState loaded;
  EXPECT_EQ(nn::LoadTrainState(path, &loaded).code(),
            common::StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST(TrainStateTest, ReadPathFaultInjectionIsCaughtByCrc) {
  // kCheckpointRead flips one bit in the buffer *after* it is read back —
  // simulating disk/bus rot between write and read. The CRC must catch it.
  const std::string dir = TempDir("fw_trainstate_readfault");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/state.fwck";
  ASSERT_TRUE(nn::SaveTrainState(path, SampleState()).ok());
  ::fairwos::testing::FaultInjector injector(3);
  injector.Arm(::fairwos::testing::FaultSite::kCheckpointRead, 0);
  {
    ::fairwos::testing::ScopedFaultInjector scoped(&injector);
    nn::TrainState loaded;
    EXPECT_EQ(nn::LoadTrainState(path, &loaded).code(),
              common::StatusCode::kIoError);
  }
  EXPECT_EQ(injector.fires(::fairwos::testing::FaultSite::kCheckpointRead), 1);
  // Without the injector the same file loads fine: the fault was injected,
  // not real.
  nn::TrainState loaded;
  EXPECT_TRUE(nn::LoadTrainState(path, &loaded).ok());
  std::filesystem::remove_all(dir);
}

// --- CheckpointRotation ---------------------------------------------------

TEST(CheckpointRotationTest, KeepsNewestN) {
  const std::string dir = TempDir("fw_rotation_keep");
  nn::CheckpointRotation rotation(dir, /*keep=*/3);
  nn::TrainState st = SampleState();
  for (int64_t e = 1; e <= 5; ++e) {
    st.epoch = e;
    ASSERT_TRUE(rotation.Save(st).ok());
  }
  const auto files = nn::CheckpointRotation::ListCheckpoints(dir);
  EXPECT_EQ(files.size(), 3u);
  auto latest = rotation.LoadLatestValid();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 5);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRotationTest, SequenceSurvivesRestart) {
  const std::string dir = TempDir("fw_rotation_restart");
  nn::TrainState st = SampleState();
  {
    nn::CheckpointRotation rotation(dir, 3);
    st.epoch = 1;
    ASSERT_TRUE(rotation.Save(st).ok());
  }
  {
    // A fresh process re-scans the directory: the new save must sort after
    // the old one, not collide with it.
    nn::CheckpointRotation rotation(dir, 3);
    st.epoch = 2;
    ASSERT_TRUE(rotation.Save(st).ok());
    auto latest = rotation.LoadLatestValid();
    ASSERT_TRUE(latest.ok());
    EXPECT_EQ(latest.value().epoch, 2);
  }
  EXPECT_EQ(nn::CheckpointRotation::ListCheckpoints(dir).size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRotationTest, CorruptNewestFallsBackWithTelemetry) {
  const std::string dir = TempDir("fw_rotation_fallback");
  nn::CheckpointRotation rotation(dir, 3);
  nn::TrainState st = SampleState();
  st.epoch = 10;
  ASSERT_TRUE(rotation.Save(st).ok());
  st.epoch = 20;
  ASSERT_TRUE(rotation.Save(st).ok());
  const auto files = nn::CheckpointRotation::ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 2u);
  ASSERT_TRUE(
      testing::FaultInjector::FlipByte(files.back(), FileSize(files.back()) - 9,
                                       0x40)
          .ok());

  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  auto latest = rotation.LoadLatestValid();
  obs::SetEventSink(nullptr);

  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 10);  // the older, intact checkpoint
  EXPECT_EQ(rotation.last_loaded_path(), files.front());
  int fallback_events = 0;
  for (const auto& event : sink.events()) {
    if (event.name() == "resume_fallback") {
      ++fallback_events;
      EXPECT_EQ(event.GetString("path"), files.back());
      EXPECT_FALSE(event.GetString("reason").empty());
    }
  }
  EXPECT_EQ(fallback_events, 1);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRotationTest, AllCorruptIsNotFound) {
  const std::string dir = TempDir("fw_rotation_allcorrupt");
  nn::CheckpointRotation rotation(dir, 3);
  nn::TrainState st = SampleState();
  ASSERT_TRUE(rotation.Save(st).ok());
  const auto files = nn::CheckpointRotation::ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 1u);
  ASSERT_TRUE(testing::FaultInjector::Truncate(files[0], 7).ok());
  EXPECT_EQ(rotation.LoadLatestValid().status().code(),
            common::StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointRotationTest, MissingDirectoryIsNotFound) {
  nn::CheckpointRotation rotation(TempDir("fw_rotation_missing"), 3);
  EXPECT_EQ(rotation.LoadLatestValid().status().code(),
            common::StatusCode::kNotFound);
}

// --- Kill-and-resume determinism: baseline classifier ---------------------

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

nn::GnnClassifier ToyClassifier(const data::Dataset& ds, common::Rng* rng) {
  nn::GnnConfig config;
  config.in_features = ds.features.dim(1);
  config.hidden = 8;
  return nn::GnnClassifier(config, ds.graph, rng);
}

std::vector<std::vector<float>> RunBaseline(
    const data::Dataset& ds, const baselines::TrainOptions& options,
    common::Status* status_out = nullptr,
    baselines::TrainDiagnostics* diag_out = nullptr) {
  common::Rng rng(17);
  auto model = ToyClassifier(ds, &rng);
  baselines::TrainDiagnostics diag;
  auto result = baselines::TrainClassifier(options, ds, ds.features, nullptr,
                                           &model, &rng, &diag);
  if (status_out != nullptr) *status_out = result.status();
  if (diag_out != nullptr) *diag_out = diag;
  return nn::SnapshotParameters(model);
}

TEST(KillAndResumeTest, BaselineClassifierIsBitIdentical) {
  auto ds = ToyDataset();
  baselines::TrainOptions options;
  options.epochs = 30;
  options.patience = 0;
  const auto uninterrupted = RunBaseline(ds, options);

  const std::string dir = TempDir("fw_resume_baseline");
  baselines::TrainOptions interrupted = options;
  interrupted.checkpoint.dir = dir;
  interrupted.checkpoint.every = 4;
  interrupted.deadline = common::Deadline::AfterChecks(13);
  common::Status status;
  RunBaseline(ds, interrupted, &status);
  ASSERT_EQ(status.code(), common::StatusCode::kDeadlineExceeded);
  ASSERT_FALSE(nn::CheckpointRotation::ListCheckpoints(dir).empty());

  baselines::TrainOptions resumed = options;
  resumed.checkpoint.dir = dir;
  resumed.checkpoint.every = 4;
  resumed.checkpoint.resume = true;
  baselines::TrainDiagnostics diag;
  const auto params = RunBaseline(ds, resumed, &status, &diag);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // AfterChecks(13) lets 13 polls pass (epochs 0..12 run) and expires at
  // the top of epoch 13, so the final checkpoint names epoch 13 as next.
  EXPECT_TRUE(diag.resumed);
  EXPECT_EQ(diag.resume_epoch, 13);
  EXPECT_EQ(params, uninterrupted)
      << "kill-and-resume must reproduce the uninterrupted run bit for bit";
  std::filesystem::remove_all(dir);
}

TEST(KillAndResumeTest, BaselineRejectsFairwosCheckpoint) {
  auto ds = ToyDataset();
  const std::string dir = TempDir("fw_resume_phase_mismatch");
  nn::CheckpointRotation rotation(dir, 3);
  nn::TrainState st = SampleState();  // phase 2: a Fairwos fine-tune state
  ASSERT_TRUE(rotation.Save(st).ok());
  baselines::TrainOptions options;
  options.epochs = 5;
  options.checkpoint.dir = dir;
  options.checkpoint.resume = true;
  common::Status status;
  RunBaseline(ds, options, &status);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  std::filesystem::remove_all(dir);
}

// --- Kill-and-resume determinism: full Fairwos ----------------------------

core::FairwosConfig SmallFairwosConfig() {
  core::FairwosConfig config;
  config.encoder.out_dim = 4;
  config.encoder.epochs = 8;
  config.pretrain_epochs = 12;
  config.pretrain_patience = 0;
  config.finetune_epochs = 6;
  config.gnn.hidden = 8;
  return config;
}

struct FairwosRun {
  common::Status status = common::Status::OK();
  std::vector<int> pred;
  std::vector<float> prob1;
  core::FairwosStats stats;
};

FairwosRun RunFairwos(const data::Dataset& ds,
                      const core::FairwosConfig& config) {
  FairwosRun run;
  auto out = core::TrainFairwos(config, ds, /*seed=*/21, &run.stats);
  run.status = out.status();
  if (out.ok()) {
    run.pred = out.value().pred;
    run.prob1 = out.value().prob1;
  }
  return run;
}

/// Interrupts Fairwos after `checks` deadline polls, resumes, and asserts
/// the resumed run ends bit-identical to `reference`.
void ExpectFairwosResumeIdentical(const data::Dataset& ds,
                                  const FairwosRun& reference, int64_t checks,
                                  int64_t expected_phase) {
  const std::string dir =
      TempDir("fw_resume_fairwos_" + std::to_string(checks));
  core::FairwosConfig interrupted = SmallFairwosConfig();
  interrupted.checkpoint.dir = dir;
  interrupted.checkpoint.every = 3;
  interrupted.deadline = common::Deadline::AfterChecks(checks);
  const FairwosRun broken = RunFairwos(ds, interrupted);
  ASSERT_EQ(broken.status.code(), common::StatusCode::kDeadlineExceeded)
      << broken.status.ToString();
  ASSERT_FALSE(nn::CheckpointRotation::ListCheckpoints(dir).empty());

  core::FairwosConfig resumed_config = SmallFairwosConfig();
  resumed_config.checkpoint.dir = dir;
  resumed_config.checkpoint.every = 3;
  resumed_config.checkpoint.resume = true;
  const FairwosRun resumed = RunFairwos(ds, resumed_config);
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_TRUE(resumed.stats.resumed);
  EXPECT_EQ(resumed.stats.resume_phase, expected_phase);

  EXPECT_EQ(resumed.pred, reference.pred);
  EXPECT_EQ(resumed.prob1, reference.prob1);
  EXPECT_EQ(resumed.stats.lambda, reference.stats.lambda);
  EXPECT_EQ(resumed.stats.final_distances, reference.stats.final_distances);
  EXPECT_EQ(resumed.stats.pretrain_epochs_run,
            reference.stats.pretrain_epochs_run);
  EXPECT_EQ(resumed.stats.finetune_epochs_run,
            reference.stats.finetune_epochs_run);
  std::filesystem::remove_all(dir);
}

TEST(KillAndResumeTest, FairwosIsBitIdenticalFromEitherPhase) {
  auto ds = ToyDataset();
  const FairwosRun reference = RunFairwos(ds, SmallFairwosConfig());
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  // Deadline polls: 1 before the encoder, one per encoder epoch (8), 1
  // after, then one per classifier pre-train epoch (12) and fine-tune
  // epoch (6). Poll 15 lands in pre-train, poll 24 in fine-tune.
  ExpectFairwosResumeIdentical(ds, reference, /*checks=*/15,
                               /*expected_phase=*/1);
  ExpectFairwosResumeIdentical(ds, reference, /*checks=*/24,
                               /*expected_phase=*/2);
}

TEST(KillAndResumeTest, FairwosEmitsResumeTelemetry) {
  auto ds = ToyDataset();
  const std::string dir = TempDir("fw_resume_telemetry");
  core::FairwosConfig interrupted = SmallFairwosConfig();
  interrupted.checkpoint.dir = dir;
  interrupted.checkpoint.every = 3;
  interrupted.deadline = common::Deadline::AfterChecks(15);

  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  const FairwosRun broken = RunFairwos(ds, interrupted);
  obs::SetEventSink(nullptr);
  ASSERT_EQ(broken.status.code(), common::StatusCode::kDeadlineExceeded);
  bool saw_deadline = false, saw_save = false;
  for (const auto& event : sink.events()) {
    if (event.name() == "deadline_exceeded") {
      saw_deadline = true;
      EXPECT_EQ(event.GetString("reason"), "injected");
      EXPECT_EQ(event.GetString("checkpointed"), "1");
    }
    if (event.name() == "checkpoint_save") saw_save = true;
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_save);

  core::FairwosConfig resumed_config = SmallFairwosConfig();
  resumed_config.checkpoint.dir = dir;
  resumed_config.checkpoint.resume = true;
  obs::CollectingSink resume_sink;
  obs::SetEventSink(&resume_sink);
  const FairwosRun resumed = RunFairwos(ds, resumed_config);
  obs::SetEventSink(nullptr);
  ASSERT_TRUE(resumed.status.ok());
  bool saw_resume = false;
  for (const auto& event : resume_sink.events()) {
    if (event.name() == "resume") {
      saw_resume = true;
      EXPECT_FALSE(event.GetString("path").empty());
      EXPECT_EQ(event.GetString("phase"), "1");
    }
  }
  EXPECT_TRUE(saw_resume);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fairwos
