// Serving robustness chaos tests (docs/serving.md): the model registry
// (hot-swap atomicity, generation counters, swap-failure isolation via the
// kServeArtifactMmap fault), admission control (queue/quota shedding,
// deadline storms), leader-death recovery (an injected leader crash must be
// healed by follower self-promotion, never by a hung client), degraded-mode
// serving (kServeBatchForward faults fall back to the last known good
// result), cache invalidation on swap/unload, and the online drift monitor.
// Every test's core invariant: each request resolves to a prediction or a
// precise Status — no client ever hangs. The suite runs under TSan in CI
// (the serve-chaos job) with FAIRWOS_THREADS=4.
#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vanilla.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/telemetry.h"
#include "data/synthetic.h"
#include "serve/artifact.h"
#include "serve/drift.h"
#include "serve/engine.h"
#include "serve/registry.h"

namespace fairwos::serve {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

/// Fits a small vanilla GNN and freezes it at `path`; returns the model id.
std::string ExportArtifact(const data::Dataset& ds, uint64_t seed,
                           const std::string& path,
                           const std::string& model_id = "") {
  nn::GnnConfig gnn;
  gnn.in_features = ds.num_attrs();
  baselines::TrainOptions train;
  train.epochs = 20;
  baselines::VanillaMethod method(gnn, train);
  auto fitted_or = method.Fit(ds, seed);
  EXPECT_TRUE(fitted_or.ok()) << fitted_or.status().ToString();
  const core::FittedGnnModel* model = fitted_or.value()->AsGnn();
  EXPECT_NE(model, nullptr);
  ModelArtifact artifact = MakeArtifact(*model, ds, model_id);
  const common::Status saved = SaveModelArtifact(path, artifact);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return artifact.model_id;
}

/// The ground truth the engine must match bit-for-bit: an in-process
/// restore + Predict of the same artifact.
nn::PredictionResult FreshPredictions(const std::string& path,
                                      const data::Dataset& ds) {
  auto artifact_or = LoadModelArtifact(path);
  EXPECT_TRUE(artifact_or.ok()) << artifact_or.status().ToString();
  auto model_or = RestoreFittedModel(artifact_or.value(), ds);
  EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
  return model_or.value()->Predict(ds);
}

// --- ModelRegistry --------------------------------------------------------

TEST(ModelRegistryTest, LoadSwapUnloadLifecycle) {
  auto ds = ToyDataset();
  const std::string path_a = TempPath("registry_a.fwmodel");
  const std::string path_b = TempPath("registry_b.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path_a, "m");
  ExportArtifact(ds, /*seed=*/2, path_b, "m");

  ModelRegistry registry(ds);
  auto id_or = registry.Load(path_a);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  EXPECT_EQ(id_or.value(), "m");
  EXPECT_EQ(registry.generation("m"), 1);
  EXPECT_EQ(registry.size(), 1u);

  // A second Load under the same id must be rejected (that is what Swap
  // is for), and Swap of an unknown id must be NotFound.
  auto dup = registry.Load(path_b);
  EXPECT_EQ(dup.status().code(), common::StatusCode::kFailedPrecondition);
  auto missing = registry.Swap("ghost", path_b);
  EXPECT_EQ(missing.status().code(), common::StatusCode::kNotFound);

  auto gen_or = registry.Swap("m", path_b);
  ASSERT_TRUE(gen_or.ok()) << gen_or.status().ToString();
  EXPECT_EQ(gen_or.value(), 2);
  EXPECT_EQ(registry.Get("m")->source_path, path_b);

  ASSERT_TRUE(registry.Unload("m").ok());
  EXPECT_EQ(registry.Get("m"), nullptr);
  EXPECT_EQ(registry.generation("m"), 0);
  EXPECT_EQ(registry.Unload("m").code(), common::StatusCode::kNotFound);

  // Generations survive the unload: a re-registered id never reuses a
  // retired generation, so stale cache entries can never validate.
  ASSERT_TRUE(registry.Load(path_a).ok());
  EXPECT_EQ(registry.generation("m"), 3);
}

TEST(ModelRegistryTest, FailedSwapLeavesOldModelServing) {
  auto ds = ToyDataset();
  const std::string path_a = TempPath("swapfail_a.fwmodel");
  const std::string path_b = TempPath("swapfail_b.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path_a, "m");
  ExportArtifact(ds, /*seed=*/2, path_b, "m");

  ModelRegistry registry(ds);
  ASSERT_TRUE(registry.Load(path_a).ok());
  const auto before = registry.Get("m");

  // Injected mmap fault while restoring the replacement: the swap must
  // fail without unpublishing anything.
  testing::FaultInjector injector(7);
  injector.Arm(testing::FaultSite::kServeArtifactMmap, /*at_visit=*/0);
  {
    testing::ScopedFaultInjector scoped(&injector);
    auto swap = registry.Swap("m", path_b);
    EXPECT_EQ(swap.status().code(), common::StatusCode::kIoError);
  }
  EXPECT_EQ(injector.fires(testing::FaultSite::kServeArtifactMmap), 1);
  EXPECT_EQ(registry.Get("m"), before);  // same published entry, untouched
  EXPECT_EQ(registry.generation("m"), 1);

  // With the fault gone the same swap succeeds.
  auto swap = registry.Swap("m", path_b);
  ASSERT_TRUE(swap.ok()) << swap.status().ToString();
  EXPECT_EQ(swap.value(), 2);
}

// --- Admission control and deadlines --------------------------------------

TEST(AdmissionTest, QueueFullShedsWithResourceExhausted) {
  auto ds = ToyDataset();
  const std::string path = TempPath("admission.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  EngineOptions options;
  options.cache_capacity = 0;         // every request must queue
  options.max_queue = 1;              // the leader's own request fills it
  options.flush_interval_ms = 50.0;   // hold the queue long enough to shed
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  constexpr int kClients = 8;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto prediction = engine.Predict(c);
      if (prediction.ok()) {
        ++ok;
      } else if (prediction.status().code() ==
                 common::StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);  // whoever got the queue slot is served
  EXPECT_EQ(ok.load() + shed.load(), kClients);
  EXPECT_EQ(engine.stats().shed_queue, shed.load());
}

TEST(AdmissionTest, PerModelQuotaShedsWithResourceExhausted) {
  auto ds = ToyDataset();
  const std::string path = TempPath("quota.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  EngineOptions options;
  options.cache_capacity = 0;
  options.per_model_quota = 1;
  options.flush_interval_ms = 50.0;
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  constexpr int kClients = 6;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto prediction = engine.Predict(c);
      if (prediction.ok()) {
        ++ok;
      } else if (prediction.status().code() ==
                 common::StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);
  EXPECT_EQ(ok.load() + shed.load(), kClients);
  EXPECT_EQ(engine.stats().shed_quota, shed.load());
}

TEST(AdmissionTest, ExpiredDeadlineResolvesToDeadlineExceeded) {
  auto ds = ToyDataset();
  const std::string path = TempPath("deadline.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  EngineOptions options;
  options.cache_capacity = 0;
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  const common::Deadline expired = common::Deadline::After(0.0);
  auto prediction = engine.Predict(engine.model_id(), /*node=*/0, &expired);
  EXPECT_EQ(prediction.status().code(),
            common::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(engine.stats().deadline_exceeded, 1);
}

TEST(AdmissionTest, DeadlineStormEveryRequestResolves) {
  auto ds = ToyDataset();
  const std::string path = TempPath("deadline_storm.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  EngineOptions options;
  options.cache_capacity = 0;
  options.flush_interval_ms = 2.0;
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  // Half the clients carry an (effectively already expired) deadline, half
  // none. Tight deadlines must become DeadlineExceeded, never a hang, and
  // must not poison the untimed requests sharing their batches.
  constexpr int kClients = 8;
  constexpr int kRounds = 10;
  std::atomic<int> ok{0}, deadline{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const int64_t node = (c * kRounds + r) % engine.num_nodes();
        common::Result<NodePrediction> prediction =
            common::Status::Internal("unset");
        if (c % 2 == 0) {
          const common::Deadline tight = common::Deadline::After(1e-9);
          prediction = engine.Predict(engine.model_id(), node, &tight);
        } else {
          prediction = engine.Predict(node);
        }
        if (prediction.ok()) {
          ++ok;
        } else if (prediction.status().code() ==
                   common::StatusCode::kDeadlineExceeded) {
          ++deadline;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + deadline.load(), kClients * kRounds);
  EXPECT_EQ(ok.load(), kClients / 2 * kRounds);  // untimed half all served
  EXPECT_EQ(deadline.load(), kClients / 2 * kRounds);
  EXPECT_EQ(engine.stats().deadline_exceeded, deadline.load());
}

// --- Leader-death recovery ------------------------------------------------

TEST(LeaderDeathTest, FollowersPromoteAndRecoverTheBatch) {
  auto ds = ToyDataset();
  const std::string path = TempPath("leader_death.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);
  const nn::PredictionResult fresh = FreshPredictions(path, ds);

  EngineOptions options;
  options.cache_capacity = 0;
  options.flush_interval_ms = 20.0;   // let every client join the doomed batch
  options.leader_timeout_ms = 50.0;   // prompt follower promotion
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  engine.CrashNextLeaderForTesting();

  constexpr int kClients = 4;
  std::atomic<int> ok{0}, crashed{0}, other{0}, mismatched{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto prediction = engine.Predict(c);
      if (prediction.ok()) {
        if (prediction.value().label != fresh.pred[static_cast<size_t>(c)] ||
            prediction.value().prob1 != fresh.prob1[static_cast<size_t>(c)]) {
          ++mismatched;
        }
        ++ok;
      } else if (prediction.status().code() ==
                 common::StatusCode::kInternal) {
        ++crashed;  // the injected leader crash fails the leader's own call
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(mismatched.load(), 0);
  EXPECT_EQ(crashed.load(), 1);
  EXPECT_EQ(ok.load(), kClients - 1);
  EXPECT_GE(engine.stats().leader_promotions, 1);

  // The engine is healthy again: the next request (a fresh leader) serves.
  auto after = engine.Predict(0);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().label, fresh.pred[0]);
}

// --- Degraded-mode serving ------------------------------------------------

TEST(DegradedServeTest, ForwardFaultsFallBackToLastKnownGood) {
  auto ds = ToyDataset();
  const std::string path = TempPath("degraded.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);
  const nn::PredictionResult fresh = FreshPredictions(path, ds);

  EngineOptions options;
  options.forward_retries = 1;  // 2 attempts per batch
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  // Warm the last-known-good snapshot with one healthy batch.
  auto warm = engine.Predict(0);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_FALSE(warm.value().degraded);

  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  testing::FaultInjector injector(7);
  // Enough fires to exhaust the initial attempt and the retry.
  injector.Arm(testing::FaultSite::kServeBatchForward, /*at_visit=*/0,
               /*count=*/2);
  {
    testing::ScopedFaultInjector scoped(&injector);
    auto degraded = engine.Predict(1);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_TRUE(degraded.value().degraded);
    // Stale but correct here: the model never changed, so the last good
    // result is the same full-graph prediction a fresh forward computes.
    EXPECT_EQ(degraded.value().label, fresh.pred[1]);
    EXPECT_EQ(degraded.value().prob1, fresh.prob1[1]);
  }
  obs::SetEventSink(nullptr);
  EXPECT_EQ(injector.fires(testing::FaultSite::kServeBatchForward), 2);
  EXPECT_EQ(engine.stats().degraded, 1);

  int degraded_incidents = 0, degraded_requests = 0;
  for (const auto& event : sink.events()) {
    if (event.name() == "degraded_serve") {
      ++degraded_incidents;
      EXPECT_EQ(event.GetString("model"), engine.model_id());
    }
    if (event.name() == "serve_request" &&
        event.GetDouble("degraded", 0.0) == 1.0) {
      ++degraded_requests;
    }
  }
  EXPECT_EQ(degraded_incidents, 1);
  EXPECT_EQ(degraded_requests, 1);

  // Degraded answers are never cached: with the fault gone the same node
  // is recomputed fresh (still bit-identical) rather than replayed.
  auto again = engine.Predict(1);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(again.value().cache_hit);
  EXPECT_FALSE(again.value().degraded);
  EXPECT_EQ(again.value().prob1, fresh.prob1[1]);
}

TEST(DegradedServeTest, NoLastGoodMeansPreciseInternalError) {
  auto ds = ToyDataset();
  const std::string path = TempPath("degraded_cold.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  EngineOptions options;
  options.forward_retries = 1;
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  // Cold engine: no last known good exists, so exhausted retries must
  // surface as a precise Internal error, not a hang or a bogus answer.
  testing::FaultInjector injector(7);
  injector.Arm(testing::FaultSite::kServeBatchForward, /*at_visit=*/0,
               /*count=*/2);
  testing::ScopedFaultInjector scoped(&injector);
  auto prediction = engine.Predict(0);
  EXPECT_EQ(prediction.status().code(), common::StatusCode::kInternal);
}

// --- Hot-swap and cache invalidation under traffic ------------------------

TEST(HotSwapTest, CacheInvalidatedOnSwapAndUnload) {
  auto ds = ToyDataset();
  const std::string path_a = TempPath("invalidate_a.fwmodel");
  const std::string path_b = TempPath("invalidate_b.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path_a, "m");
  ExportArtifact(ds, /*seed=*/2, path_b, "m");
  const nn::PredictionResult fresh_b = FreshPredictions(path_b, ds);

  auto registry = std::make_shared<ModelRegistry>(ds);
  ASSERT_TRUE(registry->Load(path_a).ok());
  InferenceEngine engine(registry, EngineOptions{});

  ASSERT_TRUE(engine.Predict("m", 3).ok());
  auto hit = engine.Predict("m", 3);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().cache_hit);

  // Swap: the cached generation-1 answer must be purged, and the next
  // request must serve the new model, bit-identical to a fresh engine.
  ASSERT_TRUE(registry->Swap("m", path_b).ok());
  EXPECT_GE(engine.stats().cache_invalidations, 1);
  auto after_swap = engine.Predict("m", 3);
  ASSERT_TRUE(after_swap.ok()) << after_swap.status().ToString();
  EXPECT_FALSE(after_swap.value().cache_hit);
  EXPECT_EQ(after_swap.value().label, fresh_b.pred[3]);
  EXPECT_EQ(after_swap.value().prob1, fresh_b.prob1[3]);

  // Unload: entries purged again, and requests get NotFound (satellite:
  // unload invalidates too, not just swap).
  const int64_t invalidated_after_swap = engine.stats().cache_invalidations;
  ASSERT_TRUE(registry->Unload("m").ok());
  EXPECT_GT(engine.stats().cache_invalidations, invalidated_after_swap);
  auto gone = engine.Predict("m", 3);
  EXPECT_EQ(gone.status().code(), common::StatusCode::kNotFound);
}

TEST(HotSwapTest, ConcurrentSwapDuringTrafficStaysConsistent) {
  auto ds = ToyDataset();
  const std::string path_a = TempPath("swap_traffic_a.fwmodel");
  const std::string path_b = TempPath("swap_traffic_b.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path_a, "m");
  ExportArtifact(ds, /*seed=*/2, path_b, "m");
  const nn::PredictionResult fresh_a = FreshPredictions(path_a, ds);
  const nn::PredictionResult fresh_b = FreshPredictions(path_b, ds);

  EngineOptions options;
  options.flush_interval_ms = 0.2;
  auto registry = std::make_shared<ModelRegistry>(ds);
  ASSERT_TRUE(registry->Load(path_a).ok());
  InferenceEngine engine(registry, options);

  // Clients hammer the model while the main thread swaps it back and forth.
  // Every answer must be exact under SOME generation of the model — an
  // in-flight batch may legitimately serve the generation it captured — and
  // nothing may error or hang.
  constexpr int kClients = 4;
  constexpr int kRounds = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const int64_t node = (c + r * kClients) % engine.num_nodes();
        auto prediction = engine.Predict("m", node);
        if (!prediction.ok()) {
          ++failures;
          continue;
        }
        const auto n = static_cast<size_t>(node);
        const bool matches_a =
            prediction.value().label == fresh_a.pred[n] &&
            prediction.value().prob1 == fresh_a.prob1[n];
        const bool matches_b =
            prediction.value().label == fresh_b.pred[n] &&
            prediction.value().prob1 == fresh_b.prob1[n];
        if (!matches_a && !matches_b) ++failures;
      }
    });
  }
  for (int swap = 0; swap < 6; ++swap) {
    auto gen = registry->Swap("m", swap % 2 == 0 ? path_b : path_a);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Traffic has drained: post-swap answers must be bit-identical to a
  // fresh engine on the final artifact (the acceptance bar for hot-swap).
  ASSERT_TRUE(registry->Swap("m", path_b).ok());
  for (int64_t node = 0; node < 8; ++node) {
    auto prediction = engine.Predict("m", node);
    ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
    EXPECT_EQ(prediction.value().label,
              fresh_b.pred[static_cast<size_t>(node)]);
    EXPECT_EQ(prediction.value().prob1,
              fresh_b.prob1[static_cast<size_t>(node)]);
  }
}

TEST(HotSwapTest, MultiModelRegistryServesEachModelIndependently) {
  auto ds = ToyDataset();
  const std::string path_a = TempPath("multi_a.fwmodel");
  const std::string path_b = TempPath("multi_b.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path_a, "alpha");
  ExportArtifact(ds, /*seed=*/2, path_b, "beta");
  const nn::PredictionResult fresh_a = FreshPredictions(path_a, ds);
  const nn::PredictionResult fresh_b = FreshPredictions(path_b, ds);

  auto registry = std::make_shared<ModelRegistry>(ds);
  ASSERT_TRUE(registry->Load(path_a).ok());
  ASSERT_TRUE(registry->Load(path_b).ok());
  InferenceEngine engine(registry, EngineOptions{});

  auto a = engine.Predict("alpha", 5);
  auto b = engine.Predict("beta", 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().prob1, fresh_a.prob1[5]);
  EXPECT_EQ(b.value().prob1, fresh_b.prob1[5]);

  // A registry-backed engine has no default model.
  auto no_default = engine.Predict(5);
  EXPECT_EQ(no_default.status().code(),
            common::StatusCode::kFailedPrecondition);
  auto unknown = engine.Predict("ghost", 5);
  EXPECT_EQ(unknown.status().code(), common::StatusCode::kNotFound);
}

// --- Drift monitor --------------------------------------------------------

TEST(DriftMonitorTest, AlertLatchesUntilRecovery) {
  DriftOptions options;
  options.min_samples = 4;
  options.z_threshold = 2.0;
  DriftMonitor monitor({0.0f}, {1.0f}, options);

  const float drifted = 3.0f;
  for (int i = 0; i < 3; ++i) monitor.ObserveRow(&drifted);
  EXPECT_EQ(monitor.MaxZ(), 0.0);  // below min_samples: no verdict yet

  int64_t column = -1;
  double z = 0.0;
  monitor.ObserveRow(&drifted);
  ASSERT_TRUE(monitor.CheckAlert(&column, &z));
  EXPECT_EQ(column, 0);
  EXPECT_NEAR(z, 3.0, 1e-9);
  EXPECT_FALSE(monitor.CheckAlert(&column, &z));  // latched

  // Counter-traffic pulls the mean back under the threshold (re-arms),
  // then pushes it out again: a second distinct alert.
  const float counter = -3.0f;
  for (int i = 0; i < 8; ++i) monitor.ObserveRow(&counter);
  EXPECT_FALSE(monitor.CheckAlert(&column, &z));
  for (int i = 0; i < 60; ++i) monitor.ObserveRow(&counter);
  EXPECT_TRUE(monitor.CheckAlert(&column, &z));
}

TEST(DriftMonitorTest, EngineRaisesAlertOnSkewedTraffic) {
  auto ds = ToyDataset();
  const std::string path = TempPath("drift.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  // Find the node whose feature row deviates most from the column means —
  // traffic pinned to it drags the observed mean exactly onto that row.
  std::vector<float> mean, stddev;
  ComputeColumnStats(ds.features, &mean, &stddev);
  const int64_t cols = ds.num_attrs();
  int64_t worst_node = 0;
  double worst_z = 0.0;
  for (int64_t n = 0; n < ds.num_nodes(); ++n) {
    for (int64_t j = 0; j < cols; ++j) {
      const double sd = std::max(1e-6, static_cast<double>(stddev[j]));
      const double z = std::fabs(ds.features.data()[n * cols + j] - mean[j]) / sd;
      if (z > worst_z) {
        worst_z = z;
        worst_node = n;
      }
    }
  }
  ASSERT_GT(worst_z, 1.0);  // standardized features: some row sticks out

  EngineOptions options;
  options.cache_capacity = 0;  // every request reaches the drift monitor
  options.drift.min_samples = 8;
  options.drift.z_threshold = worst_z * 0.5;
  auto engine_or = InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine.Predict(worst_node).ok());
  }
  obs::SetEventSink(nullptr);

  EXPECT_GE(engine.stats().drift_alerts, 1);
  int alerts = 0;
  for (const auto& event : sink.events()) {
    if (event.name() != "drift_alert") continue;
    ++alerts;
    EXPECT_EQ(event.GetString("model"), engine.model_id());
    EXPECT_GT(event.GetDouble("z", 0.0), options.drift.z_threshold);
    EXPECT_GE(event.GetDouble("samples", 0.0), options.drift.min_samples);
  }
  EXPECT_EQ(alerts, 1);  // latched: pinned traffic alerts exactly once
}

TEST(DriftMonitorTest, GenerationResetUnderHotSwapTraffic) {
  auto ds = ToyDataset();
  const std::string path_a = TempPath("drift_swap_a.fwmodel");
  const std::string path_b = TempPath("drift_swap_b.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path_a, "m");
  ExportArtifact(ds, /*seed=*/2, path_b, "m");

  // Same worst-row hunt as EngineRaisesAlertOnSkewedTraffic: traffic
  // pinned to this node reliably trips the monitor.
  std::vector<float> mean, stddev;
  ComputeColumnStats(ds.features, &mean, &stddev);
  const int64_t cols = ds.num_attrs();
  int64_t worst_node = 0;
  double worst_z = 0.0;
  for (int64_t n = 0; n < ds.num_nodes(); ++n) {
    for (int64_t j = 0; j < cols; ++j) {
      const double sd = std::max(1e-6, static_cast<double>(stddev[j]));
      const double z =
          std::fabs(ds.features.data()[n * cols + j] - mean[j]) / sd;
      if (z > worst_z) {
        worst_z = z;
        worst_node = n;
      }
    }
  }
  ASSERT_GT(worst_z, 1.0);

  EngineOptions options;
  options.cache_capacity = 0;  // every request reaches the drift monitor
  options.flush_interval_ms = 0.2;
  options.drift.min_samples = 8;
  options.drift.z_threshold = worst_z * 0.5;
  auto registry = std::make_shared<ModelRegistry>(ds);
  ASSERT_TRUE(registry->Load(path_a).ok());
  InferenceEngine engine(registry, options);

  // Pinned traffic races repeated hot-swaps. Each swap bumps the model
  // generation, which must atomically retire the old DriftMonitor (its
  // latched alert included) and start a fresh one — under traffic, with
  // no torn monitor state (the TSan half of this test).
  constexpr int kClients = 4;
  constexpr int kRounds = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (!engine.Predict("m", worst_node).ok()) ++failures;
      }
    });
  }
  for (int swap = 0; swap < 6; ++swap) {
    auto gen = registry->Swap("m", swap % 2 == 0 ? path_b : path_a);
    ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The latch must not leak across generations: after one more swap the
  // fresh monitor re-observes the same skew from scratch and fires its own
  // alert. A leaked latch would report the episode exactly once per
  // process instead of once per generation.
  const int64_t alerts_before = engine.stats().drift_alerts;
  ASSERT_TRUE(registry->Swap("m", path_a).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine.Predict("m", worst_node).ok());
  }
  EXPECT_GT(engine.stats().drift_alerts, alerts_before);
}

// --- Cache-insert faults --------------------------------------------------

TEST(CacheFaultTest, DroppedInsertStillServesThePrediction) {
  auto ds = ToyDataset();
  const std::string path = TempPath("cache_fault.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);
  const nn::PredictionResult fresh = FreshPredictions(path, ds);

  auto engine_or = InferenceEngine::Load(path, ds, EngineOptions{});
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  InferenceEngine& engine = *engine_or.value();

  testing::FaultInjector injector(7);
  injector.Arm(testing::FaultSite::kServeCacheInsert, /*at_visit=*/0);
  {
    testing::ScopedFaultInjector scoped(&injector);
    auto prediction = engine.Predict(2);
    ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
    EXPECT_EQ(prediction.value().prob1, fresh.prob1[2]);  // still served
  }
  EXPECT_EQ(injector.fires(testing::FaultSite::kServeCacheInsert), 1);

  // The dropped insert means the next lookup is a miss, not a stale hit.
  auto again = engine.Predict(2);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().cache_hit);
}

}  // namespace
}  // namespace fairwos::serve
