// Tests for the baseline methods and the method registry: each method must
// run end-to-end on the toy dataset, be deterministic in its seed, respect
// its configuration, and never touch the sensitive attribute.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "fairness/metrics.h"

namespace fairwos::baselines {
namespace {

/// Fit-then-predict in one call (what the removed FairMethod::Run shim did).
common::Result<core::MethodOutput> FitPredict(core::FairMethod& method,
                                              const data::Dataset& ds,
                                              uint64_t seed) {
  auto fitted = method.Fit(ds, seed);
  if (!fitted.ok()) return fitted.status();
  core::MethodOutput out = (*fitted)->Predict(ds);
  out.train_seconds = (*fitted)->train_seconds();
  return out;
}

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

MethodOptions FastOptions() {
  MethodOptions options;
  options.train.epochs = 60;
  options.fairwos.pretrain_epochs = 60;
  options.fairwos.finetune_epochs = 8;
  options.fairwos.encoder.epochs = 40;
  options.fairgkd.teacher_epochs = 40;
  options.perturbcf.encoder.epochs = 40;
  options.perturbcf.finetune_epochs = 8;
  return options;
}

class MethodContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MethodContractTest, RunsAndPredictsEveryNode) {
  auto ds = ToyDataset();
  auto method = MakeMethod(GetParam(), FastOptions()).value();
  auto out = FitPredict(*method, ds, 7);
  ASSERT_TRUE(out.ok()) << GetParam() << ": " << out.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(out->pred.size()), ds.num_nodes());
  EXPECT_EQ(static_cast<int64_t>(out->prob1.size()), ds.num_nodes());
  for (int p : out->pred) EXPECT_TRUE(p == 0 || p == 1);
  for (float p : out->prob1) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
  EXPECT_GT(out->train_seconds, 0.0);
}

TEST_P(MethodContractTest, DeterministicInSeed) {
  auto ds = ToyDataset();
  auto m1 = MakeMethod(GetParam(), FastOptions()).value();
  auto m2 = MakeMethod(GetParam(), FastOptions()).value();
  auto a = FitPredict(*m1, ds, 13);
  auto b = FitPredict(*m2, ds, 13);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pred, b->pred) << GetParam();
}

TEST_P(MethodContractTest, IgnoresSensitiveAttribute) {
  // Scrambling ds.sens must not change any prediction: s is evaluation-only
  // (the paper's core problem setting).
  auto ds = ToyDataset();
  auto scrambled = ds;
  for (size_t i = 0; i < scrambled.sens.size(); ++i) {
    scrambled.sens[i] = static_cast<int>(i % 2);
  }
  auto m1 = MakeMethod(GetParam(), FastOptions()).value();
  auto m2 = MakeMethod(GetParam(), FastOptions()).value();
  auto a = FitPredict(*m1, ds, 29);
  auto b = FitPredict(*m2, scrambled, 29);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pred, b->pred) << GetParam() << " read the sensitive attribute";
}

TEST_P(MethodContractTest, BeatsChanceOnBail) {
  // bail (scaled) has enough attributes that even attribute-dropping
  // methods retain signal; toy is too small for that guarantee.
  data::DatasetOptions options;
  options.scale = 60.0;
  auto ds = data::MakeDataset("bail", options).value();
  auto method = MakeMethod(GetParam(), FastOptions()).value();
  auto metrics = eval::RunTrial(method.get(), ds, 3);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->acc, 56.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodContractTest,
                         ::testing::Values("vanilla", "remover", "ksmote",
                                           "fairrf", "fairgkd", "perturbcf",
                                           "fairwos", "fairwos-wo-e",
                                           "fairwos-wo-f", "fairwos-wo-w"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(RegistryTest, UnknownMethodNotFound) {
  auto r = MakeMethod("no-such-method", {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kNotFound);
}

TEST(RegistryTest, KnownNamesAllConstruct) {
  for (const auto& name : KnownMethodNames()) {
    EXPECT_TRUE(MakeMethod(name, {}).ok()) << name;
  }
}

TEST(RegistryTest, BackboneReachesMethods) {
  MethodOptions options = FastOptions();
  options.backbone = nn::Backbone::kGin;
  auto method = MakeMethod("vanilla", options).value();
  auto ds = ToyDataset();
  EXPECT_TRUE(method->Fit(ds, 1).ok());
}

TEST(RemoveRTest, DropsRequestedFraction) {
  auto ds = ToyDataset();
  MethodOptions options = FastOptions();
  options.remover.drop_fraction = 0.5;
  auto method = MakeMethod("remover", options).value();
  EXPECT_TRUE(method->Fit(ds, 2).ok());
  // Invalid fraction is rejected.
  RemoveRConfig bad;
  bad.drop_fraction = 1.5;
  RemoveRMethod invalid({}, {}, bad);
  EXPECT_FALSE(invalid.Fit(ds, 1).ok());
}

TEST(KSmoteTest, RejectsTooFewClusters) {
  auto ds = ToyDataset();
  KSmoteConfig bad;
  bad.clusters = 1;
  KSmoteMethod invalid({}, {}, bad);
  EXPECT_FALSE(invalid.Fit(ds, 1).ok());
}

TEST(FairRFTest, RejectsBadRelatedFraction) {
  auto ds = ToyDataset();
  FairRFConfig bad;
  bad.related_fraction = 0.0;
  FairRFMethod invalid({}, {}, bad);
  EXPECT_FALSE(invalid.Fit(ds, 1).ok());
}

TEST(FairGkdTest, RejectsNegativeGamma) {
  auto ds = ToyDataset();
  FairGkdConfig bad;
  bad.gamma = -1.0;
  FairGkdMethod invalid({}, {}, bad);
  EXPECT_FALSE(invalid.Fit(ds, 1).ok());
}

TEST(FairGkdTest, StructureFeaturesAreStandardized) {
  auto ds = ToyDataset();
  tensor::Tensor f = StructureOnlyFeatures(ds.graph);
  EXPECT_EQ(f.dim(0), ds.num_nodes());
  EXPECT_EQ(f.dim(1), 2);
  for (int64_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (int64_t i = 0; i < f.dim(0); ++i) mean += f.at(i, j);
    EXPECT_NEAR(mean / static_cast<double>(f.dim(0)), 0.0, 1e-4);
  }
}

TEST(SuspicionRankingTest, FindsPlantedProxy) {
  // toy plants proxies in the first 3 attributes; the suspicion ranking
  // should surface at least one of them near the top.
  auto ds = ToyDataset();
  common::Rng rng(17);
  auto ranked = RankAttributesBySuspicion(ds, &rng);
  ASSERT_EQ(static_cast<int64_t>(ranked.size()), ds.num_attrs());
  bool proxy_in_top5 = false;
  for (int r = 0; r < 5; ++r) proxy_in_top5 |= (ranked[static_cast<size_t>(r)] < 3);
  EXPECT_TRUE(proxy_in_top5);
}

}  // namespace
}  // namespace fairwos::baselines
