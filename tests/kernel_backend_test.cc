// The kernel-backend determinism contract (docs/kernels.md): the scalar
// and AVX2 backends must produce bytewise-identical results for every
// non-reassociating entry point, at any thread count; the opt-in fast-math
// kernels must stay within documented tolerances of the scalar reference.
// Plus the arena allocator's alignment / reset / reuse / detach semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/cpuid.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "tensor/arena.h"
#include "tensor/backend.h"

namespace fairwos::tensor {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed, bool with_specials) {
  common::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal(0.0, 1.0));
  if (with_specials && n >= 8) {
    // Exact zeros and negative zeros exercise the kernels' zero-skip and
    // sign-propagation paths, where a careless SIMD port diverges first.
    v[1] = 0.0f;
    v[5] = -0.0f;
  }
  return v;
}

bool BitEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Restores the default pool size when a test returns early.
struct ThreadGuard {
  ~ThreadGuard() { common::SetGlobalThreadCount(0); }
};

class BackendPairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = GetAvx2BackendOrNull();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "host lacks AVX2+FMA; single-backend build";
    }
  }
  const KernelBackend* avx2_ = nullptr;
  ThreadGuard guard_;
};

// --- Bit-identity: scalar vs AVX2, 1 vs 8 threads -------------------------

TEST_F(BackendPairTest, GemmFamilyBitIdentical) {
  const int64_t n = 33, k = 29, m = 41;  // odd sizes exercise SIMD tails
  const auto a = RandomVec(static_cast<size_t>(n * k), 1, true);
  const auto b = RandomVec(static_cast<size_t>(k * m), 2, true);
  for (int threads : {1, 8}) {
    common::SetGlobalThreadCount(threads);
    std::vector<float> c_scalar(static_cast<size_t>(n * m), 0.5f);
    std::vector<float> c_avx2 = c_scalar;
    GetScalarBackend().GemmNN(a.data(), b.data(), c_scalar.data(), n, k, m);
    avx2_->GemmNN(a.data(), b.data(), c_avx2.data(), n, k, m);
    EXPECT_TRUE(BitEqual(c_scalar, c_avx2)) << "GemmNN @" << threads;

    // GemmNT: c[n,m] += a[n,k] · bt[m,k]ᵀ (bt stores the transposed factor).
    const auto bt = RandomVec(static_cast<size_t>(m * k), 20, true);
    std::vector<float> t_scalar(static_cast<size_t>(n * m), 0.25f);
    std::vector<float> t_avx2 = t_scalar;
    GetScalarBackend().GemmNT(a.data(), bt.data(), t_scalar.data(), n, k, m);
    avx2_->GemmNT(a.data(), bt.data(), t_avx2.data(), n, k, m);
    EXPECT_TRUE(BitEqual(t_scalar, t_avx2)) << "GemmNT @" << threads;

    // GemmTN: c[k,m2] += a[n,k]ᵀ · b2[n,m2].
    const int64_t m2 = 23;
    const auto b2 = RandomVec(static_cast<size_t>(n * m2), 21, true);
    std::vector<float> g_scalar(static_cast<size_t>(k * m2), 0.0f);
    std::vector<float> g_avx2 = g_scalar;
    GetScalarBackend().GemmTN(a.data(), b2.data(), g_scalar.data(), n, k, m2);
    avx2_->GemmTN(a.data(), b2.data(), g_avx2.data(), n, k, m2);
    EXPECT_TRUE(BitEqual(g_scalar, g_avx2)) << "GemmTN @" << threads;
  }
}

TEST_F(BackendPairTest, GemmNNIdenticalAcrossThreadCounts) {
  const int64_t n = 64, k = 64, m = 64;
  const auto a = RandomVec(static_cast<size_t>(n * k), 3, true);
  const auto b = RandomVec(static_cast<size_t>(k * m), 4, true);
  common::SetGlobalThreadCount(1);
  std::vector<float> c1(static_cast<size_t>(n * m), 0.0f);
  avx2_->GemmNN(a.data(), b.data(), c1.data(), n, k, m);
  common::SetGlobalThreadCount(8);
  std::vector<float> c8(static_cast<size_t>(n * m), 0.0f);
  avx2_->GemmNN(a.data(), b.data(), c8.data(), n, k, m);
  EXPECT_TRUE(BitEqual(c1, c8));
}

TEST_F(BackendPairTest, SpmmBitIdentical) {
  const int64_t rows = 200, x_cols = 17;
  common::Rng rng(5);
  std::vector<int64_t> row_ptr(static_cast<size_t>(rows) + 1, 0);
  std::vector<int64_t> col_idx;
  for (int64_t r = 0; r < rows; ++r) {
    for (int d = 0; d < 7; ++d) col_idx.push_back(rng.UniformInt(rows));
    row_ptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(col_idx.size());
  }
  const auto vals = RandomVec(col_idx.size(), 6, true);
  const auto x = RandomVec(static_cast<size_t>(rows * x_cols), 7, true);
  for (int threads : {1, 8}) {
    common::SetGlobalThreadCount(threads);
    std::vector<float> y_scalar(static_cast<size_t>(rows * x_cols));
    std::vector<float> y_avx2(y_scalar.size());
    GetScalarBackend().Spmm(row_ptr.data(), col_idx.data(), vals.data(), rows,
                            x.data(), x_cols, y_scalar.data());
    avx2_->Spmm(row_ptr.data(), col_idx.data(), vals.data(), rows, x.data(),
                x_cols, y_avx2.data());
    EXPECT_TRUE(BitEqual(y_scalar, y_avx2)) << "@" << threads;
  }
}

TEST_F(BackendPairTest, EwiseFamiliesBitIdentical) {
  const int64_t n = 4099;  // not a multiple of 8: exercises the tails
  const auto a = RandomVec(static_cast<size_t>(n), 8, true);
  const auto b = RandomVec(static_cast<size_t>(n), 9, true);
  const auto gy = RandomVec(static_cast<size_t>(n), 10, true);
  for (int threads : {1, 8}) {
    common::SetGlobalThreadCount(threads);
    for (auto op : {EwiseBinaryOp::kAdd, EwiseBinaryOp::kSub,
                    EwiseBinaryOp::kMul, EwiseBinaryOp::kDiv}) {
      std::vector<float> y_scalar(static_cast<size_t>(n)), y_avx2(y_scalar);
      GetScalarBackend().EwiseBinary(op, a.data(), b.data(), y_scalar.data(),
                                     n);
      avx2_->EwiseBinary(op, a.data(), b.data(), y_avx2.data(), n);
      EXPECT_TRUE(BitEqual(y_scalar, y_avx2))
          << "binary op " << static_cast<int>(op) << " @" << threads;
      for (int input : {0, 1}) {
        std::vector<float> gx_scalar(static_cast<size_t>(n), 0.125f);
        std::vector<float> gx_avx2 = gx_scalar;
        GetScalarBackend().EwiseBinaryGrad(op, input, y_scalar.data(),
                                           gy.data(), a.data(), b.data(),
                                           gx_scalar.data(), n);
        avx2_->EwiseBinaryGrad(op, input, y_scalar.data(), gy.data(), a.data(),
                               b.data(), gx_avx2.data(), n);
        EXPECT_TRUE(BitEqual(gx_scalar, gx_avx2))
            << "binary grad op " << static_cast<int>(op) << " input " << input
            << " @" << threads;
      }
    }
    struct UnaryCase {
      EwiseUnaryOp op;
      float p0, p1;
    };
    // Sqrt needs non-negative input; tested separately below.
    for (UnaryCase uc : std::vector<UnaryCase>{
             {EwiseUnaryOp::kAddScalar, 1.5f, 0.0f},
             {EwiseUnaryOp::kMulScalar, -2.0f, 0.0f},
             {EwiseUnaryOp::kRelu, 0.0f, 0.0f},
             {EwiseUnaryOp::kLeakyRelu, 0.2f, 0.0f},
             {EwiseUnaryOp::kSigmoid, 0.0f, 0.0f},
             {EwiseUnaryOp::kTanh, 0.0f, 0.0f},
             {EwiseUnaryOp::kExp, 0.0f, 0.0f},
             {EwiseUnaryOp::kAbs, 0.0f, 0.0f},
             {EwiseUnaryOp::kClamp, -0.5f, 0.5f}}) {
      std::vector<float> y_scalar(static_cast<size_t>(n)), y_avx2(y_scalar);
      GetScalarBackend().EwiseUnary(uc.op, uc.p0, uc.p1, a.data(),
                                    y_scalar.data(), n);
      avx2_->EwiseUnary(uc.op, uc.p0, uc.p1, a.data(), y_avx2.data(), n);
      EXPECT_TRUE(BitEqual(y_scalar, y_avx2))
          << "unary op " << static_cast<int>(uc.op) << " @" << threads;
      std::vector<float> gx_scalar(static_cast<size_t>(n), 0.25f);
      std::vector<float> gx_avx2 = gx_scalar;
      GetScalarBackend().EwiseUnaryGrad(uc.op, uc.p0, uc.p1, y_scalar.data(),
                                        a.data(), gy.data(), gx_scalar.data(),
                                        n);
      avx2_->EwiseUnaryGrad(uc.op, uc.p0, uc.p1, y_scalar.data(), a.data(),
                            gy.data(), gx_avx2.data(), n);
      EXPECT_TRUE(BitEqual(gx_scalar, gx_avx2))
          << "unary grad op " << static_cast<int>(uc.op) << " @" << threads;
    }
  }
}

TEST_F(BackendPairTest, SqrtBitIdentical) {
  // _mm256_sqrt_ps is IEEE correctly rounded, so SIMD sqrt must match libm
  // bit for bit.
  const int64_t n = 1023;
  auto a = RandomVec(static_cast<size_t>(n), 11, false);
  for (auto& v : a) v = std::abs(v);
  a[3] = 0.0f;
  const auto gy = RandomVec(static_cast<size_t>(n), 12, false);
  std::vector<float> y_scalar(static_cast<size_t>(n)), y_avx2(y_scalar);
  GetScalarBackend().EwiseUnary(EwiseUnaryOp::kSqrt, 0, 0, a.data(),
                                y_scalar.data(), n);
  avx2_->EwiseUnary(EwiseUnaryOp::kSqrt, 0, 0, a.data(), y_avx2.data(), n);
  EXPECT_TRUE(BitEqual(y_scalar, y_avx2));
  std::vector<float> gx_scalar(static_cast<size_t>(n), 0.0f);
  std::vector<float> gx_avx2 = gx_scalar;
  GetScalarBackend().EwiseUnaryGrad(EwiseUnaryOp::kSqrt, 0, 0,
                                    y_scalar.data(), a.data(), gy.data(),
                                    gx_scalar.data(), n);
  avx2_->EwiseUnaryGrad(EwiseUnaryOp::kSqrt, 0, 0, y_scalar.data(), a.data(),
                        gy.data(), gx_avx2.data(), n);
  EXPECT_TRUE(BitEqual(gx_scalar, gx_avx2));
}

TEST_F(BackendPairTest, ReduceBitIdenticalAcrossBackendsAndThreads) {
  const int64_t n = 100003;
  const auto a = RandomVec(static_cast<size_t>(n), 13, true);
  for (auto kind : {ReduceKind::kSum, ReduceKind::kSumSquares}) {
    common::SetGlobalThreadCount(1);
    const double s1 = GetScalarBackend().Reduce(kind, a.data(), n);
    const double v1 = avx2_->Reduce(kind, a.data(), n);
    common::SetGlobalThreadCount(8);
    const double s8 = GetScalarBackend().Reduce(kind, a.data(), n);
    const double v8 = avx2_->Reduce(kind, a.data(), n);
    EXPECT_EQ(s1, v1) << static_cast<int>(kind);
    EXPECT_EQ(s1, s8) << static_cast<int>(kind);
    EXPECT_EQ(v1, v8) << static_cast<int>(kind);
  }
}

// --- Fast-math tolerance (docs/kernels.md) ---------------------------------

/// RAII toggle so a failing ASSERT cannot leave fast-math on for later
/// tests.
struct FastMathOn {
  FastMathOn() { SetFastMath(true); }
  ~FastMathOn() { SetFastMath(false); }
};

TEST_F(BackendPairTest, FastMathGemmWithinTolerance) {
  const int64_t n = 61, k = 127, m = 35;
  const auto a = RandomVec(static_cast<size_t>(n * k), 14, false);
  const auto b = RandomVec(static_cast<size_t>(k * m), 15, false);
  std::vector<float> ref(static_cast<size_t>(n * m), 0.0f);
  GetScalarBackend().GemmNN(a.data(), b.data(), ref.data(), n, k, m);
  std::vector<float> fast(static_cast<size_t>(n * m), 0.0f);
  {
    FastMathOn fm;
    avx2_->GemmNN(a.data(), b.data(), fast.data(), n, k, m);
  }
  // FMA reassociation changes rounding, not math. The documented tolerance
  // (docs/kernels.md) is the standard accumulated-rounding bound: for a
  // length-k dot product, |fast - exact| <= k·ε·Σ|a·b| with ε = 2^-24, so
  // fast vs scalar differ by at most twice that. Normalizing by Σ|a·b|
  // (not by the result) keeps the bound meaningful under cancellation.
  std::vector<float> abs_a(a.size()), abs_b(b.size());
  for (size_t i = 0; i < a.size(); ++i) abs_a[i] = std::abs(a[i]);
  for (size_t i = 0; i < b.size(); ++i) abs_b[i] = std::abs(b[i]);
  std::vector<float> l1(static_cast<size_t>(n * m), 0.0f);
  GetScalarBackend().GemmNN(abs_a.data(), abs_b.data(), l1.data(), n, k, m);
  const double eps = 1.0 / (1 << 24);
  for (size_t i = 0; i < ref.size(); ++i) {
    const double bound = 2.0 * static_cast<double>(k) * eps * l1[i] + 1e-12;
    EXPECT_LT(std::abs(static_cast<double>(fast[i]) - ref[i]), bound)
        << "element " << i;
  }
}

TEST_F(BackendPairTest, FastMathReduceWithinToleranceAndThreadStable) {
  const int64_t n = 1 << 18;
  const auto a = RandomVec(static_cast<size_t>(n), 16, false);
  const double ref = GetScalarBackend().Reduce(ReduceKind::kSum, a.data(), n);
  FastMathOn fm;
  common::SetGlobalThreadCount(1);
  const double f1 = avx2_->Reduce(ReduceKind::kSum, a.data(), n);
  common::SetGlobalThreadCount(8);
  const double f8 = avx2_->Reduce(ReduceKind::kSum, a.data(), n);
  // The 4-lane double accumulation reassociates relative to scalar, but the
  // chunk structure is still thread-count independent.
  EXPECT_EQ(f1, f8);
  EXPECT_NEAR(f1, ref, 1e-4 * std::max(1.0, std::abs(ref)));
}

// --- Dispatch --------------------------------------------------------------

TEST(DispatchTest, ParseSimdModeRoundTrips) {
  EXPECT_EQ(ParseSimdMode("auto").value(), SimdMode::kAuto);
  EXPECT_EQ(ParseSimdMode("scalar").value(), SimdMode::kScalar);
  EXPECT_EQ(ParseSimdMode("avx2").value(), SimdMode::kAvx2);
  EXPECT_FALSE(ParseSimdMode("neon").ok());
  EXPECT_FALSE(ParseSimdMode("").ok());
}

TEST(DispatchTest, SelectBackendScalarAlwaysWorks) {
  ASSERT_TRUE(SelectBackend(SimdMode::kScalar).ok());
  EXPECT_EQ(ActiveBackendInfo().active, "scalar");
  // Restore auto dispatch for the rest of the binary.
  ASSERT_TRUE(SelectBackend(SimdMode::kAuto).ok());
  if (common::CpuSupportsAvx2Fma()) {
    EXPECT_EQ(ActiveBackendInfo().active, "avx2");
  } else {
    EXPECT_EQ(ActiveBackendInfo().active, "scalar");
  }
}

TEST(DispatchTest, SelectAvx2FailsCleanlyWithoutSupport) {
  if (common::CpuSupportsAvx2Fma()) {
    EXPECT_TRUE(SelectBackend(SimdMode::kAvx2).ok());
    ASSERT_TRUE(SelectBackend(SimdMode::kAuto).ok());
  } else {
    EXPECT_FALSE(SelectBackend(SimdMode::kAvx2).ok());
  }
}

// --- Arena -----------------------------------------------------------------

TEST(ArenaTest, AllocationsAre64ByteAligned) {
  Arena arena;
  ArenaScope scope(&arena);
  for (size_t bytes : {1u, 7u, 64u, 100u, 4096u}) {
    void* p = ArenaAllocate(bytes);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kArenaAlignment, 0u)
        << bytes << " bytes";
    ArenaDeallocate(p);
  }
}

TEST(ArenaTest, HeapFallbackIsAlsoAligned) {
  ASSERT_EQ(CurrentThreadArena(), nullptr);
  void* p = ArenaAllocate(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kArenaAlignment, 0u);
  ArenaDeallocate(p);
}

TEST(ArenaTest, EpochResetReusesTheSameBlock) {
  Arena arena;
  ArenaScope scope(&arena);
  void* first = ArenaAllocate(512);
  ArenaDeallocate(first);
  arena.EpochReset();
  void* second = ArenaAllocate(512);
  // Bump pointer rewound: the same slot is handed out again.
  EXPECT_EQ(first, second);
  ArenaDeallocate(second);
  const Arena::Stats stats = arena.stats();
  EXPECT_EQ(stats.blocks, 1u);
  EXPECT_EQ(stats.epoch_resets, 1);
  EXPECT_EQ(stats.allocations, 2);
}

TEST(ArenaTest, ResetWithLiveAllocationIsDeferred) {
  Arena arena;
  ArenaScope scope(&arena);
  void* live = ArenaAllocate(256);
  arena.EpochReset();  // must NOT rewind under `live`
  EXPECT_EQ(arena.stats().deferred_resets, 1);
  EXPECT_EQ(arena.stats().epoch_resets, 0);
  void* after = ArenaAllocate(256);
  EXPECT_NE(live, after);  // still bump-allocated past the live buffer
  ArenaDeallocate(after);
  ArenaDeallocate(live);  // last release runs the deferred reset
  EXPECT_EQ(arena.stats().epoch_resets, 1);
  void* reused = ArenaAllocate(256);
  EXPECT_EQ(live, reused);
  ArenaDeallocate(reused);
}

TEST(ArenaTest, OversizeRequestsFallBackToHeap) {
  Arena arena(Arena::Options{/*block_bytes=*/4096});
  ArenaScope scope(&arena);
  void* big = ArenaAllocate(1 << 20);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % kArenaAlignment, 0u);
  std::memset(big, 0xab, 1 << 20);  // must be writable end to end
  ArenaDeallocate(big);
  EXPECT_EQ(arena.stats().oversize_allocs, 1);
  EXPECT_EQ(arena.stats().allocations, 0);
}

TEST(ArenaTest, BufferOutlivesItsArena) {
  FloatBuffer buffer;
  {
    Arena arena;
    ArenaScope scope(&arena);
    buffer.assign(1000, 2.5f);
  }  // arena destroyed with `buffer` live: blocks must stay valid
  for (float v : buffer) ASSERT_EQ(v, 2.5f);
  buffer.clear();
  buffer.shrink_to_fit();  // releases the detached arena's last block
}

TEST(ArenaTest, ScopesNestAndRestore) {
  Arena outer, inner;
  ASSERT_EQ(CurrentThreadArena(), nullptr);
  {
    ArenaScope a(&outer);
    EXPECT_EQ(CurrentThreadArena(), &outer);
    {
      ArenaScope b(&inner);
      EXPECT_EQ(CurrentThreadArena(), &inner);
    }
    EXPECT_EQ(CurrentThreadArena(), &outer);
  }
  EXPECT_EQ(CurrentThreadArena(), nullptr);
}

TEST(ArenaTest, FloatBufferRoutesThroughScopedArena) {
  Arena arena;
  size_t before, after;
  {
    ArenaScope scope(&arena);
    before = arena.stats().bytes_in_use;
    FloatBuffer buf(10000, 1.0f);
    after = arena.stats().bytes_in_use;
    EXPECT_GE(after - before, 10000 * sizeof(float));
  }
  EXPECT_EQ(arena.stats().live_allocations, 0);
}

TEST(ArenaTest, CrossScopeDeallocationRoutesToOwner) {
  // Allocated under the arena, freed after the scope ended: the header
  // routes the release back to the owning arena, not the heap.
  Arena arena;
  void* p = nullptr;
  {
    ArenaScope scope(&arena);
    p = ArenaAllocate(128);
  }
  ASSERT_EQ(CurrentThreadArena(), nullptr);
  ArenaDeallocate(p);
  EXPECT_EQ(arena.stats().live_allocations, 0);
  EXPECT_EQ(arena.stats().bytes_in_use, 0u);
}

}  // namespace
}  // namespace fairwos::tensor
