// Round-trip tests for dataset persistence (data/io.h).
#include "data/io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fairwos::data {
namespace {

class DataIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // PID-qualified so concurrently running test processes (ctest -j) never
    // remove each other's directory from TearDown.
    dir_ = (std::filesystem::temp_directory_path() /
            ("fw_dataset_io." + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DataIoTest, RoundTripPreservesEverything) {
  auto ds = MakeDataset("toy", {}).value();
  ASSERT_TRUE(SaveDataset(dir_, ds).ok());
  auto loaded_or = LoadDataset(dir_);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Dataset& loaded = loaded_or.value();
  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_EQ(loaded.label_name, ds.label_name);
  EXPECT_EQ(loaded.sens_name, ds.sens_name);
  EXPECT_EQ(loaded.labels, ds.labels);
  EXPECT_EQ(loaded.sens, ds.sens);
  EXPECT_EQ(loaded.graph.num_edges(), ds.graph.num_edges());
  EXPECT_EQ(loaded.split.train, ds.split.train);
  EXPECT_EQ(loaded.split.val, ds.split.val);
  EXPECT_EQ(loaded.split.test, ds.split.test);
  ASSERT_EQ(loaded.num_attrs(), ds.num_attrs());
  for (int64_t i = 0; i < ds.num_nodes(); ++i) {
    for (int64_t j = 0; j < ds.num_attrs(); ++j) {
      EXPECT_NEAR(loaded.features.at(i, j), ds.features.at(i, j), 1e-5);
    }
    for (int64_t v : ds.graph.Neighbors(i)) {
      EXPECT_TRUE(loaded.graph.HasEdge(i, v));
    }
  }
}

TEST_F(DataIoTest, LoadedDatasetTrainsIdentically) {
  auto ds = MakeDataset("toy", {}).value();
  ASSERT_TRUE(SaveDataset(dir_, ds).ok());
  auto loaded = LoadDataset(dir_).value();
  EXPECT_TRUE(ValidateDataset(loaded).ok());
}

TEST_F(DataIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDataset("/nonexistent/fw_nowhere").ok());
}

TEST_F(DataIoTest, CorruptSplitRejected) {
  auto ds = MakeDataset("toy", {}).value();
  ASSERT_TRUE(SaveDataset(dir_, ds).ok());
  {
    std::ofstream out(dir_ + "/split.csv");
    out << "node,part\n0,weekend\n";
  }
  EXPECT_FALSE(LoadDataset(dir_).ok());
}

TEST_F(DataIoTest, SaveRejectsInvalidDataset) {
  auto ds = MakeDataset("toy", {}).value();
  ds.labels[0] = 7;
  EXPECT_FALSE(SaveDataset(dir_, ds).ok());
}

}  // namespace
}  // namespace fairwos::data
