// Numerical-stability and optimizer edge cases: extreme logits through the
// fused losses, parameters that never receive gradients, and long
// optimization runs staying finite.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace fairwos {
namespace {

TEST(NumericsTest, SoftmaxCrossEntropyExtremeLogits) {
  tensor::Tensor logits = tensor::Tensor::FromVector(
      {2, 2}, {1000.0f, -1000.0f, -1000.0f, 1000.0f});
  logits.set_requires_grad(true);
  tensor::Tensor loss =
      tensor::SoftmaxCrossEntropy(logits, {0, 1}, {0, 1});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_NEAR(loss.item(), 0.0f, 1e-5);  // confidently correct
  loss.Backward();
  for (float g : logits.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(NumericsTest, SoftmaxCrossEntropyConfidentlyWrongIsLarge) {
  tensor::Tensor logits =
      tensor::Tensor::FromVector({1, 2}, {50.0f, -50.0f});
  tensor::Tensor loss = tensor::SoftmaxCrossEntropy(logits, {1}, {0});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 50.0f);
}

TEST(NumericsTest, BceWithLogitsExtremes) {
  tensor::Tensor logits =
      tensor::Tensor::FromVector({2}, {500.0f, -500.0f});
  logits.set_requires_grad(true);
  tensor::Tensor loss =
      tensor::BceWithLogits(logits, {0.0f, 1.0f}, {0, 1});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 100.0f);
  loss.Backward();
  for (float g : logits.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(NumericsTest, SigmoidSaturationGradients) {
  tensor::Tensor x =
      tensor::Tensor::FromVector({2}, {80.0f, -80.0f}).set_requires_grad(true);
  tensor::Sum(tensor::Sigmoid(x)).Backward();
  // Saturated: gradient ~0 but finite, not NaN.
  for (float g : x.grad()) {
    EXPECT_TRUE(std::isfinite(g));
    EXPECT_NEAR(g, 0.0f, 1e-6);
  }
}

TEST(NumericsTest, OptimizerSkipsParametersWithoutGradients) {
  // Two parameters; only one participates in the loss. The other must keep
  // its value rather than being corrupted by uninitialised state.
  tensor::Tensor used = tensor::Tensor::Scalar(1.0f).set_requires_grad(true);
  tensor::Tensor unused = tensor::Tensor::Scalar(7.0f).set_requires_grad(true);
  nn::Adam opt({used, unused}, 0.1f);
  for (int i = 0; i < 5; ++i) {
    opt.ZeroGrad();
    tensor::SumSquares(used).Backward();
    opt.Step();
  }
  EXPECT_FLOAT_EQ(unused.item(), 7.0f);
  EXPECT_LT(used.item(), 1.0f);
}

TEST(NumericsTest, AdamLongRunStaysFinite) {
  common::Rng rng(1);
  nn::Mlp mlp({4, 8, 2}, 0.0f, &rng);
  nn::Adam opt(mlp.parameters(), 0.05f);
  tensor::Tensor x = tensor::Tensor::RandNormal({16, 4}, 1.0f, &rng);
  std::vector<int> labels(16);
  std::vector<int64_t> idx(16);
  for (int i = 0; i < 16; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
    idx[static_cast<size_t>(i)] = i;
  }
  for (int epoch = 0; epoch < 2000; ++epoch) {
    opt.ZeroGrad();
    tensor::SoftmaxCrossEntropy(mlp.Forward(x, true, &rng), labels, idx)
        .Backward();
    opt.Step();
  }
  for (const auto& p : mlp.parameters()) {
    for (float v : p.data()) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(NumericsTest, L2NormalizeZeroRowStaysZero) {
  tensor::Tensor x = tensor::Tensor::Zeros({2, 3}).set_requires_grad(true);
  tensor::Tensor y = tensor::L2NormalizeRows(x);
  tensor::Sum(y).Backward();
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);
  for (float g : x.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(NumericsTest, DropoutHighProbabilityGradientsFinite) {
  common::Rng rng(2);
  tensor::Tensor x =
      tensor::Tensor::Ones({100}).set_requires_grad(true);
  tensor::Tensor y = tensor::Dropout(x, 0.99f, true, &rng);
  tensor::Sum(y).Backward();
  for (float g : x.grad()) EXPECT_TRUE(std::isfinite(g));
}

}  // namespace
}  // namespace fairwos
