// Streaming fairness audit tests (docs/serving.md): the audit table join,
// the bit-match guarantee (windowed ΔSP/ΔEO/DI computed incrementally must
// equal the batch fairness metrics over the same samples — same functions,
// same doubles), the latched fairness_alert with re-arm, the engine
// integration, and the ops-snapshot stream.
#include <algorithm>
#include <array>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vanilla.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "fairness/metrics.h"
#include "serve/artifact.h"
#include "serve/audit.h"
#include "serve/engine.h"
#include "serve/snapshot.h"

namespace fairwos::serve {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

std::unique_ptr<core::FittedModel> FitVanilla(const data::Dataset& ds,
                                              uint64_t seed,
                                              int64_t epochs = 20) {
  nn::GnnConfig gnn;
  gnn.in_features = ds.num_attrs();
  baselines::TrainOptions train;
  train.epochs = epochs;
  baselines::VanillaMethod method(gnn, train);
  auto fitted_or = method.Fit(ds, seed);
  EXPECT_TRUE(fitted_or.ok()) << fitted_or.status().ToString();
  return std::move(fitted_or.value());
}

/// Four audited nodes, one per (sens, label) combination, so a test can
/// stream any (s, y, pred) triple through the auditor.
std::shared_ptr<const AuditTable> CombinationTable() {
  AuditTable table;
  table.Add(0, /*sens=*/0, /*label=*/0);
  table.Add(1, /*sens=*/0, /*label=*/1);
  table.Add(2, /*sens=*/1, /*label=*/0);
  table.Add(3, /*sens=*/1, /*label=*/1);
  return std::make_shared<const AuditTable>(std::move(table));
}

int64_t NodeFor(int s, int y) { return s * 2 + y; }

// --- AuditTable -----------------------------------------------------------

TEST(AuditTableTest, FindJoinsOnlyRegisteredNodes) {
  AuditTable table;
  table.Add(7, 1, 0);
  ASSERT_NE(table.Find(7), nullptr);
  EXPECT_EQ(table.Find(7)->sens, 1);
  EXPECT_EQ(table.Find(7)->label, 0);
  EXPECT_EQ(table.Find(8), nullptr);
  EXPECT_EQ(table.size(), 1);
}

TEST(AuditTableTest, FromDatasetCoversEveryNode) {
  const auto ds = ToyDataset();
  const AuditTable table = AuditTable::FromDataset(ds);
  EXPECT_EQ(table.size(), ds.num_nodes());
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    const AuditTable::Entry* e = table.Find(v);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->sens, ds.sens[static_cast<size_t>(v)]);
    EXPECT_EQ(e->label, ds.labels[static_cast<size_t>(v)]);
  }
}

TEST(AuditTableTest, SampleFromDatasetIsDeterministicInTheSeed) {
  const auto ds = ToyDataset();
  const AuditTable a = AuditTable::SampleFromDataset(ds, 0.5, /*seed=*/42);
  const AuditTable b = AuditTable::SampleFromDataset(ds, 0.5, /*seed=*/42);
  const AuditTable c = AuditTable::SampleFromDataset(ds, 0.5, /*seed=*/43);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0);
  EXPECT_LT(a.size(), ds.num_nodes());  // a half-sample strictly subsets
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    EXPECT_EQ(a.Find(v) != nullptr, b.Find(v) != nullptr) << "node " << v;
  }
  // A different seed draws a different subset (astronomically unlikely to
  // coincide on the toy graph).
  bool any_difference = c.size() != a.size();
  for (int64_t v = 0; !any_difference && v < ds.num_nodes(); ++v) {
    any_difference = (a.Find(v) != nullptr) != (c.Find(v) != nullptr);
  }
  EXPECT_TRUE(any_difference);
  EXPECT_EQ(AuditTable::SampleFromDataset(ds, 1.0, 1).size(), ds.num_nodes());
}

// --- Bit-match against the batch metrics ----------------------------------

/// Streams (s, y, pred) triples through an auditor with stride 1 and, after
/// every step, recomputes the batch metrics over a mirror of the same
/// window. EXPECT_EQ on doubles: the contract is bit-identity, not
/// tolerance.
void ExpectWindowBitMatch(const std::vector<std::array<int, 3>>& stream,
                          int64_t window) {
  AuditOptions options;
  options.window = window;
  options.stride = 1;  // recompute after every audited sample
  options.min_audited = 1;
  FairnessAuditor auditor(CombinationTable(), options);

  std::deque<std::array<int, 3>> mirror;
  for (const auto& [s, y, p] : stream) {
    ASSERT_TRUE(auditor.Observe(NodeFor(s, y), p));
    mirror.push_back({s, y, p});
    if (static_cast<int64_t>(mirror.size()) > window) mirror.pop_front();

    std::vector<int> pred, labels, sens;
    std::vector<int64_t> idx;
    for (const auto& [ms, my, mp] : mirror) {
      idx.push_back(static_cast<int64_t>(pred.size()));
      pred.push_back(mp);
      labels.push_back(my);
      sens.push_back(ms);
    }
    const AuditWindowMetrics& m = auditor.Current();
    ASSERT_EQ(m.samples, static_cast<int64_t>(mirror.size()));
    EXPECT_EQ(m.delta_sp_pct,
              fairness::StatisticalParityGapPct(pred, sens, idx));
    EXPECT_EQ(m.delta_eo_pct,
              fairness::EqualOpportunityGapPct(pred, labels, sens, idx));
    EXPECT_EQ(m.di, fairness::DisparateImpactRatio(pred, sens, idx));
  }
}

TEST(FairnessAuditorTest, WindowedMetricsBitMatchBatchMetrics) {
  common::Rng rng(1234);
  std::vector<std::array<int, 3>> stream;
  for (int i = 0; i < 200; ++i) {
    const int s = static_cast<int>(rng.UniformInt(2));
    const int y = static_cast<int>(rng.UniformInt(2));
    // Plant a mild group-dependent bias so the gaps are non-trivial.
    const int p = rng.Bernoulli(s == 0 ? 0.7 : 0.4) ? 1 : 0;
    stream.push_back({s, y, p});
  }
  // A window shorter than the stream exercises eviction on every step.
  ExpectWindowBitMatch(stream, /*window=*/16);
}

TEST(FairnessAuditorTest, EmptyGroupWindowsBitMatchConventions) {
  // Only group 0 ever appears: ΔSP/ΔEO are 0 and DI is 1 by convention, on
  // both the streaming and the batch side.
  std::vector<std::array<int, 3>> stream;
  common::Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    stream.push_back({0, static_cast<int>(rng.UniformInt(2)),
                      static_cast<int>(rng.UniformInt(2))});
  }
  ExpectWindowBitMatch(stream, /*window=*/8);
}

TEST(FairnessAuditorTest, AllNegativeWindowsBitMatchConventions) {
  // Both groups present but nobody is ever predicted positive: positive
  // rates are 0/0-free (0 over both groups), ΔSP = 0 and DI = 1.
  std::vector<std::array<int, 3>> stream;
  for (int i = 0; i < 24; ++i) stream.push_back({i % 2, (i / 2) % 2, 0});
  ExpectWindowBitMatch(stream, /*window=*/12);
}

// --- Alert latch ----------------------------------------------------------

TEST(FairnessAuditorTest, AlertLatchesAndReArmsOnRecovery) {
  AuditOptions options;
  options.window = 8;
  options.stride = 4;
  options.min_audited = 4;
  options.delta_sp_threshold_pct = 20.0;
  FairnessAuditor auditor(CombinationTable(), options);

  // Balanced traffic: both groups get positives at the same rate.
  const auto feed_balanced = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      auditor.Observe(NodeFor(0, 1), 1);
      auditor.Observe(NodeFor(1, 1), 1);
      auditor.Observe(NodeFor(0, 0), 0);
      auditor.Observe(NodeFor(1, 0), 0);
    }
  };
  // Biased traffic: group 0 always positive, group 1 never.
  const auto feed_biased = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      auditor.Observe(NodeFor(0, 1), 1);
      auditor.Observe(NodeFor(1, 1), 0);
      auditor.Observe(NodeFor(0, 0), 1);
      auditor.Observe(NodeFor(1, 0), 0);
    }
  };

  feed_balanced(4);  // fills the window; ΔSP is exactly 0
  EXPECT_FALSE(auditor.CheckAlert());
  EXPECT_FALSE(auditor.alert_active());

  feed_biased(2);  // the whole window is now biased: ΔSP = 100
  AuditWindowMetrics at_alert;
  EXPECT_TRUE(auditor.CheckAlert(&at_alert));
  EXPECT_GT(at_alert.delta_sp_pct, options.delta_sp_threshold_pct);
  EXPECT_TRUE(auditor.alert_active());
  EXPECT_FALSE(auditor.CheckAlert()) << "latched: one episode, one alert";
  feed_biased(1);  // still breaching: stays latched
  EXPECT_FALSE(auditor.CheckAlert());
  EXPECT_EQ(auditor.alerts(), 1);

  feed_balanced(2);  // window fully recovered
  EXPECT_FALSE(auditor.CheckAlert());
  EXPECT_FALSE(auditor.alert_active()) << "recovery re-arms the latch";

  feed_biased(2);  // a second episode fires a fresh alert
  EXPECT_TRUE(auditor.CheckAlert());
  EXPECT_EQ(auditor.alerts(), 2);
}

TEST(FairnessAuditorTest, NoAlertBeforeMinAuditedSamples) {
  AuditOptions options;
  options.window = 64;
  options.stride = 2;
  options.min_audited = 64;
  options.delta_sp_threshold_pct = 20.0;
  FairnessAuditor auditor(CombinationTable(), options);
  // Maximally biased from the first sample, but the window never reaches
  // min_audited: a handful of joins must not be called bias.
  for (int i = 0; i < 31; ++i) {
    auditor.Observe(NodeFor(0, 1), 1);
    auditor.Observe(NodeFor(1, 1), 0);
    EXPECT_FALSE(auditor.CheckAlert());
  }
  EXPECT_EQ(auditor.alerts(), 0);
  // One more round crosses min_audited and the alert finally fires.
  auditor.Observe(NodeFor(0, 1), 1);
  auditor.Observe(NodeFor(1, 1), 0);
  EXPECT_TRUE(auditor.CheckAlert());
}

TEST(FairnessAuditorTest, CoverageTracksTheAuditedShare) {
  AuditOptions options;
  options.stride = 1;
  options.min_audited = 1;
  FairnessAuditor auditor(CombinationTable(), options);
  EXPECT_DOUBLE_EQ(auditor.CoveragePct(), 0.0);
  EXPECT_TRUE(auditor.Observe(0, 1));
  EXPECT_FALSE(auditor.Observe(1000, 1));  // not in the table
  EXPECT_FALSE(auditor.Observe(1001, 0));
  EXPECT_TRUE(auditor.Observe(3, 0));
  EXPECT_EQ(auditor.observed(), 4);
  EXPECT_EQ(auditor.audited(), 2);
  EXPECT_DOUBLE_EQ(auditor.CoveragePct(), 50.0);
}

TEST(FairnessAuditorTest, ResetForgetsWindowAndLatchButKeepsCounters) {
  AuditOptions options;
  options.window = 4;
  options.stride = 2;
  options.min_audited = 2;
  options.delta_sp_threshold_pct = 20.0;
  FairnessAuditor auditor(CombinationTable(), options);
  auditor.Observe(NodeFor(0, 1), 1);
  auditor.Observe(NodeFor(1, 1), 0);
  EXPECT_TRUE(auditor.CheckAlert());
  auditor.Reset();
  EXPECT_FALSE(auditor.alert_active());
  EXPECT_EQ(auditor.Current().samples, 0);
  EXPECT_DOUBLE_EQ(auditor.Current().di, 1.0);
  EXPECT_EQ(auditor.audited(), 2) << "lifetime counters survive Reset";
  EXPECT_EQ(auditor.alerts(), 1);
}

// --- Engine integration ---------------------------------------------------

class AuditEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = ToyDataset();
    auto fitted = FitVanilla(ds_, /*seed=*/5);
    reference_ = fitted->Predict(ds_);
    // Unique per test: ctest runs each TEST_F as its own process, possibly
    // in parallel, and a shared path would let one test's TearDown delete
    // the artifact another is still reading.
    path_ = TempPath(
        std::string("fw_serving_audit_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".fwmodel");
    ASSERT_TRUE(SaveModelArtifact(path_, MakeArtifact(*fitted->AsGnn(), ds_))
                    .ok());
  }
  void TearDown() override { std::filesystem::remove(path_); }

  /// Audit table whose group labels are *derived from the model's own
  /// predictions* (sens := pred): group 0's positive rate is exactly 0 and
  /// group 1's exactly 1, so ΔSP over any window holding both groups is
  /// 100% — a guaranteed, deterministic alert.
  std::shared_ptr<const AuditTable> AdversarialTable() const {
    AuditTable table;
    for (int64_t v = 0; v < ds_.num_nodes(); ++v) {
      table.Add(v, reference_.pred[static_cast<size_t>(v)],
                ds_.labels[static_cast<size_t>(v)]);
    }
    return std::make_shared<const AuditTable>(std::move(table));
  }

  std::unique_ptr<InferenceEngine> MakeEngine(EngineOptions options) {
    auto engine_or = InferenceEngine::Load(path_, ds_, options);
    EXPECT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    return std::move(engine_or.value());
  }

  data::Dataset ds_;
  nn::PredictionResult reference_;
  std::string path_;
};

TEST_F(AuditEngineTest, AuditIsOffByDefault) {
  auto engine = MakeEngine(EngineOptions{});
  EXPECT_FALSE(engine->audit_enabled());
  ASSERT_TRUE(engine->Predict(0).ok());
  EXPECT_EQ(engine->stats().fairness_alerts, 0);
}

TEST_F(AuditEngineTest, ServedPredictionsRaiseFairnessAlert) {
  // Both predicted classes must occur, otherwise sens := pred cannot form
  // two groups (and the fixture would be meaningless).
  const bool has_both =
      std::count(reference_.pred.begin(), reference_.pred.end(), 1) > 0 &&
      std::count(reference_.pred.begin(), reference_.pred.end(), 0) > 0;
  ASSERT_TRUE(has_both);

  EngineOptions options;
  options.cache_capacity = 0;  // every request is a real forward
  options.audit_table = AdversarialTable();
  options.audit.window = 16;
  options.audit.stride = 4;
  options.audit.min_audited = 8;
  options.audit.delta_sp_threshold_pct = 20.0;
  auto engine = MakeEngine(options);
  ASSERT_TRUE(engine->audit_enabled());

  for (int64_t v = 0; v < ds_.num_nodes(); ++v) {
    auto p = engine->Predict(v);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->label, reference_.pred[static_cast<size_t>(v)]);
  }
  const auto stats = engine->stats();
  EXPECT_EQ(stats.fairness_alerts, 1) << "one sustained episode, one alert";
  EXPECT_TRUE(engine->audit_alert_active());
  const AuditWindowMetrics m = engine->audit_metrics();
  EXPECT_DOUBLE_EQ(m.delta_sp_pct, 100.0);
  EXPECT_DOUBLE_EQ(m.di, 0.0);
  EXPECT_GT(m.samples, 0);
}

TEST_F(AuditEngineTest, PredictBatchAndCacheHitsAreAuditedToo) {
  EngineOptions options;
  options.audit_table = AdversarialTable();
  options.audit.window = 16;
  options.audit.stride = 4;
  options.audit.min_audited = 8;
  options.audit.delta_sp_threshold_pct = 20.0;
  auto engine = MakeEngine(options);

  std::vector<int64_t> nodes(static_cast<size_t>(ds_.num_nodes()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<int64_t>(i);
  }
  ASSERT_TRUE(engine->PredictBatch(nodes).ok());
  const int64_t audited_after_miss = engine->stats().requests;
  EXPECT_GT(engine->stats().fairness_alerts, 0);
  // The second pass is served from the cache; those answers still stream
  // into the audit window.
  ASSERT_TRUE(engine->PredictBatch(nodes).ok());
  EXPECT_EQ(engine->stats().requests, 2 * audited_after_miss);
  EXPECT_GT(engine->stats().cache_hits, 0);
  const AuditWindowMetrics m = engine->audit_metrics();
  EXPECT_EQ(m.samples, std::min<int64_t>(16, 2 * ds_.num_nodes()));
}

// --- Ops snapshots --------------------------------------------------------

TEST_F(AuditEngineTest, OpsSnapshotStreamRecordsAuditState) {
  EngineOptions options;
  options.audit_table = AdversarialTable();
  options.audit.window = 16;
  options.audit.stride = 4;
  options.audit.min_audited = 8;
  options.audit.delta_sp_threshold_pct = 20.0;
  auto engine = MakeEngine(options);

  const std::string snap_path = TempPath("fw_ops_snapshots.jsonl");
  auto snapshotter_or = OpsSnapshotter::Open(snap_path, engine.get());
  ASSERT_TRUE(snapshotter_or.ok()) << snapshotter_or.status().ToString();
  auto& snapshotter = *snapshotter_or.value();

  ASSERT_TRUE(snapshotter.SnapshotNow().ok());  // before any traffic
  for (int64_t v = 0; v < ds_.num_nodes(); ++v) {
    ASSERT_TRUE(engine->Predict(v).ok());
  }
  ASSERT_TRUE(snapshotter.SnapshotNow().ok());
  EXPECT_EQ(snapshotter.snapshots_written(), 2);

  std::ifstream in(snap_path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_NE(l.find("\"event\":\"ops_snapshot\""), std::string::npos);
    EXPECT_NE(l.find("\"serve.audit.delta_sp\""), std::string::npos);
    EXPECT_NE(l.find("\"fairness_alert\""), std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  // Quiet stream, then the planted episode: the alert flag flips between
  // the two snapshots.
  EXPECT_NE(lines[0].find("\"fairness_alert\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("\"fairness_alert\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"requests\":"), std::string::npos);
  std::filesystem::remove(snap_path);
}

TEST_F(AuditEngineTest, OpsSnapshotterBackgroundThreadStartsAndStops) {
  auto engine = MakeEngine(EngineOptions{});
  const std::string snap_path = TempPath("fw_ops_snapshots_bg.jsonl");
  OpsSnapshotOptions snap_options;
  snap_options.interval_seconds = 0.01;
  auto snapshotter_or =
      OpsSnapshotter::Open(snap_path, engine.get(), snap_options);
  ASSERT_TRUE(snapshotter_or.ok());
  auto& snapshotter = *snapshotter_or.value();
  snapshotter.Start();
  snapshotter.Start();  // idempotent
  // SnapshotNow stays safe while the background thread runs.
  ASSERT_TRUE(snapshotter.SnapshotNow().ok());
  while (snapshotter.snapshots_written() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  snapshotter.Stop();
  const int64_t written = snapshotter.snapshots_written();
  EXPECT_GE(written, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(snapshotter.snapshots_written(), written)
      << "Stop() must halt the sampler";
  std::filesystem::remove(snap_path);
}

TEST(OpsSnapshotterTest, OpenRejectsBadArguments) {
  EXPECT_FALSE(OpsSnapshotter::Open("/tmp/x.jsonl", nullptr).ok());
}

}  // namespace
}  // namespace fairwos::serve
