// Tests for src/nn: module parameter registration, initializer statistics,
// layer shapes and gradient flow, optimizer behaviour on analytic problems,
// and GNN forward semantics on hand-built graphs.
#include "nn/gnn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/init.h"
#include "nn/linear.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace fairwos::nn {
namespace {

TEST(InitTest, GlorotUniformBounds) {
  common::Rng rng(1);
  tensor::Tensor w = GlorotUniform(30, 20, &rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LT(v, bound);
  }
}

TEST(InitTest, HeNormalStddev) {
  common::Rng rng(2);
  tensor::Tensor w = HeNormal(200, 100, &rng);
  double var = 0.0;
  for (float v : w.data()) var += static_cast<double>(v) * v;
  var /= w.numel();
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0 / 200.0), 0.01);
}

TEST(LinearTest, ShapesAndParameterCount) {
  common::Rng rng(3);
  Linear layer(5, 3, &rng);
  EXPECT_EQ(layer.NumParameters(), 5 * 3 + 3);
  tensor::Tensor x = tensor::Tensor::Ones({4, 5});
  tensor::Tensor y = layer.Forward(x);
  EXPECT_EQ(y.dim(0), 4);
  EXPECT_EQ(y.dim(1), 3);
}

TEST(LinearTest, GradientReachesAllParameters) {
  common::Rng rng(4);
  Linear layer(3, 2, &rng);
  tensor::Tensor x = tensor::Tensor::Ones({2, 3});
  tensor::Sum(layer.Forward(x)).Backward();
  for (const auto& p : layer.parameters()) {
    ASSERT_FALSE(p.grad().empty());
    double norm = 0.0;
    for (float g : p.grad()) norm += std::abs(g);
    EXPECT_GT(norm, 0.0);
  }
}

TEST(MlpTest, HiddenLayersApplyRelu) {
  common::Rng rng(5);
  Mlp mlp({2, 4, 1}, /*dropout=*/0.0f, &rng);
  tensor::Tensor x = tensor::Tensor::FromVector({1, 2}, {1.0f, -1.0f});
  tensor::Tensor y = mlp.Forward(x, /*training=*/false, &rng);
  EXPECT_EQ(y.dim(1), 1);
  EXPECT_EQ(mlp.NumParameters(), (2 * 4 + 4) + (4 * 1 + 1));
}

TEST(ModuleTest, SnapshotRestoreRoundTrip) {
  common::Rng rng(6);
  Linear layer(2, 2, &rng);
  auto snapshot = SnapshotParameters(layer);
  // Perturb.
  tensor::Tensor w = layer.parameters()[0];
  w.mutable_data()[0] += 10.0f;
  RestoreParameters(layer, snapshot);
  const auto& restored = layer.parameters()[0].data();
  EXPECT_EQ(std::vector<float>(restored.begin(), restored.end()),
            snapshot[0]);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  common::Rng rng(7);
  Linear layer(2, 2, &rng);
  tensor::Sum(layer.Forward(tensor::Tensor::Ones({1, 2}))).Backward();
  layer.ZeroGrad();
  for (const auto& p : layer.parameters()) {
    for (float g : p.grad()) EXPECT_EQ(g, 0.0f);
  }
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  // min (x - 3)²: gradient descent must land near 3.
  tensor::Tensor x = tensor::Tensor::Scalar(0.0f).set_requires_grad(true);
  Sgd opt({x}, /*lr=*/0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.ZeroGrad();
    tensor::Tensor diff = tensor::AddScalar(x, -3.0f);
    tensor::Mul(diff, diff).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.item(), 3.0f, 1e-3);
}

TEST(OptimTest, AdamConvergesOnQuadratic) {
  tensor::Tensor x = tensor::Tensor::FromVector({2}, {5.0f, -5.0f});
  x.set_requires_grad(true);
  Adam opt({x}, /*lr=*/0.1f);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    tensor::SumSquares(x).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-2);
  EXPECT_NEAR(x.at(1), 0.0f, 1e-2);
}

TEST(OptimTest, WeightDecayShrinksWeights) {
  tensor::Tensor x = tensor::Tensor::Scalar(1.0f).set_requires_grad(true);
  Sgd opt({x}, /*lr=*/0.1f, /*weight_decay=*/1.0f);
  // Zero loss gradient; only decay acts — but parameters with no grad are
  // skipped, so attach a zero-gradient loss.
  opt.ZeroGrad();
  tensor::MulScalar(x, 0.0f).Backward();
  opt.Step();
  EXPECT_NEAR(x.item(), 0.9f, 1e-6);
}

TEST(BackboneTest, ParseRoundTrip) {
  EXPECT_EQ(ParseBackbone("gcn").value(), Backbone::kGcn);
  EXPECT_EQ(ParseBackbone("gin").value(), Backbone::kGin);
  EXPECT_FALSE(ParseBackbone("GCN").ok()) << "names are case-sensitive";
  EXPECT_FALSE(ParseBackbone("transformer").ok());
  EXPECT_STREQ(BackboneName(Backbone::kGin), "gin");
}

graph::Graph PathGraph(int n) {
  graph::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(GcnConvTest, IsolatedNodeKeepsOwnSignalOnly) {
  // Two nodes, no edges: Â = I, so GCN reduces to a per-node Linear.
  graph::Graph g(2);
  common::Rng rng(8);
  GcnConv conv(3, 2, &rng);
  tensor::Tensor x = tensor::Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  tensor::Tensor direct = conv.Forward(g.GcnNormalizedAdjacency(), x);
  // Same op through an explicit identity adjacency.
  auto identity = tensor::SparseMatrix::FromCoo(
      2, 2, {{0, 0, 1.0f}, {1, 1, 1.0f}});
  tensor::Tensor expected = conv.Forward(identity, x);
  EXPECT_TRUE(direct.ValueEquals(expected));
}

TEST(GinConvTest, AggregatesNeighborSum) {
  // With eps = 0 the GIN input is x_v + Σ_{u∈N(v)} x_u; check through the
  // MLP by comparing two nodes with identical aggregate inputs.
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(2, 1);
  common::Rng rng(9);
  GinConv conv(1, 4, /*eps=*/0.0f, &rng);
  // Nodes 0 and 2 both have x=1 and a single neighbor with x=5.
  tensor::Tensor x = tensor::Tensor::FromVector({3, 1}, {1.0f, 5.0f, 1.0f});
  tensor::Tensor out =
      conv.Forward(g.PlainAdjacency(), x, /*training=*/false, &rng);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out.at(0, j), out.at(2, j));
  }
}

TEST(GnnEncoderTest, OutputShapeAndParams) {
  common::Rng rng(10);
  GnnConfig config;
  config.in_features = 6;
  config.hidden = 8;
  config.num_layers = 2;
  graph::Graph g = PathGraph(5);
  GnnEncoder encoder(config, g, &rng);
  tensor::Tensor h =
      encoder.Forward(tensor::Tensor::Ones({5, 6}), /*training=*/false, &rng);
  EXPECT_EQ(h.dim(0), 5);
  EXPECT_EQ(h.dim(1), 8);
  EXPECT_GT(encoder.NumParameters(), 0);
}

TEST(GnnClassifierTest, LogitsShapeBothBackbones) {
  graph::Graph g = PathGraph(6);
  for (Backbone backbone : {Backbone::kGcn, Backbone::kGin}) {
    common::Rng rng(11);
    GnnConfig config;
    config.backbone = backbone;
    config.in_features = 4;
    config.hidden = 8;
    config.num_classes = 2;
    GnnClassifier model(config, g, &rng);
    tensor::Tensor logits =
        model.Forward(tensor::Tensor::Ones({6, 4}), /*training=*/false, &rng);
    EXPECT_EQ(logits.dim(0), 6);
    EXPECT_EQ(logits.dim(1), 2);
  }
}

TEST(GnnClassifierTest, TrainsToFitEasyLabels) {
  // A path graph where the label equals a single input feature: the model
  // must reach 100% train accuracy quickly.
  graph::Graph g = PathGraph(20);
  common::Rng rng(12);
  GnnConfig config;
  config.in_features = 2;
  config.hidden = 8;
  config.dropout = 0.0f;
  GnnClassifier model(config, g, &rng);
  std::vector<int> labels(20);
  std::vector<float> x(40);
  for (int i = 0; i < 20; ++i) {
    // Labels in blocks so GCN neighborhood averaging is constructive.
    labels[static_cast<size_t>(i)] = i < 10 ? 0 : 1;
    x[static_cast<size_t>(2 * i)] = labels[static_cast<size_t>(i)] ? 1.0f : -1.0f;
    x[static_cast<size_t>(2 * i + 1)] = 0.0f;
  }
  tensor::Tensor features = tensor::Tensor::FromVector({20, 2}, std::move(x));
  std::vector<int64_t> all(20);
  for (int i = 0; i < 20; ++i) all[static_cast<size_t>(i)] = i;
  Adam opt(model.parameters(), 0.05f);
  for (int epoch = 0; epoch < 200; ++epoch) {
    opt.ZeroGrad();
    tensor::SoftmaxCrossEntropy(model.Forward(features, true, &rng), labels,
                                all)
        .Backward();
    opt.Step();
  }
  tensor::NoGradGuard no_grad;
  auto result = PredictFromLogits(model.Forward(features, false, &rng));
  int correct = 0;
  for (int i = 0; i < 20; ++i) {
    correct += result.pred[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)];
  }
  EXPECT_GE(correct, 19);
}

TEST(PredictFromLogitsTest, ArgmaxAndProb) {
  tensor::Tensor logits =
      tensor::Tensor::FromVector({2, 2}, {2.0f, 0.0f, -1.0f, 1.0f});
  auto result = PredictFromLogits(logits);
  EXPECT_EQ(result.pred[0], 0);
  EXPECT_EQ(result.pred[1], 1);
  EXPECT_LT(result.prob1[0], 0.5f);
  EXPECT_GT(result.prob1[1], 0.5f);
}

}  // namespace
}  // namespace fairwos::nn
