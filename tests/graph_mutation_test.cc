// Dynamic-graph mutation tests (docs/serving.md "Dynamic graphs"): the
// DeltaOverlay validation front door (precise Statuses, never partial
// application), epoch-numbered copy-on-write snapshots (old snapshots stay
// bit-stable under mutations, publishes, and compactions), compaction under
// injected kGraphCompaction faults (a failed compaction leaves the previous
// snapshot serving and re-arms), overlay overflow (ResourceExhausted + the
// latched mutation_backlog incident), the serving integration (exact LRU
// invalidation per epoch, snapshot-isolated concurrent mutate+predict,
// post-compaction bit-identity), fault-plan exhaustion telemetry, and the
// drifting temporal script generator. The Mutation*/Temporal* suites run
// under TSan in CI (the serve-chaos job).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vanilla.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/synthetic.h"
#include "data/temporal.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/mutable_graph.h"
#include "nn/gnn.h"
#include "serve/artifact.h"
#include "serve/engine.h"
#include "tensor/tensor.h"

namespace fairwos::graph {
namespace {

using ::fairwos::common::StatusCode;
using ::fairwos::testing::FaultInjector;
using ::fairwos::testing::FaultSite;
using ::fairwos::testing::ScopedFaultInjector;

/// A path graph 0-1-...-(n-1) with one-column features (the node id), the
/// workhorse topology: hop distances are exact, so invalidation radii have
/// unambiguous expected sets.
std::shared_ptr<const Graph> PathGraph(int64_t n) {
  Graph g(n);
  for (int64_t v = 0; v + 1 < n; ++v) FW_CHECK(g.AddEdge(v, v + 1));
  return std::make_shared<const Graph>(std::move(g));
}

tensor::Tensor PathFeatures(int64_t n) {
  std::vector<float> data(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    data[static_cast<size_t>(v)] = static_cast<float>(v);
  }
  return tensor::Tensor::FromVector({n, 1}, std::move(data));
}

MutableGraph MakePathMutable(int64_t n, MutableGraphOptions options = {}) {
  return MutableGraph(PathGraph(n), PathFeatures(n), options);
}

int CountEvents(const obs::CollectingSink& sink, const std::string& name) {
  int count = 0;
  for (const auto& event : sink.events()) {
    if (event.name() == name) ++count;
  }
  return count;
}

// --- Validation front door ------------------------------------------------

TEST(MutationValidationTest, OutOfRangeEndpointsRejected) {
  MutableGraph g = MakePathMutable(5);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.RemoveEdge(4, 99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.pending(), 0);
  EXPECT_EQ(g.stats().applied, 0);
}

TEST(MutationValidationTest, SelfLoopsRejectedByPolicy) {
  MutableGraph g = MakePathMutable(5);
  const common::Status status = g.AddEdge(3, 3);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("self-loop"), std::string::npos);
  EXPECT_EQ(g.RemoveEdge(2, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.pending(), 0);
}

TEST(MutationValidationTest, FeatureDimMismatchRejected) {
  MutableGraph g = MakePathMutable(5);  // feature width 1
  auto too_wide = g.AddNode({1.0f, 2.0f});
  EXPECT_EQ(too_wide.status().code(), StatusCode::kInvalidArgument);
  auto empty = g.AddNode({});
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.pending(), 0);
}

TEST(MutationValidationTest, DuplicateInsertAndMissingDeleteRejected) {
  MutableGraph g = MakePathMutable(5);
  // (1, 2) is a base edge; inserting it again is FailedPrecondition even
  // though the overlay itself has never seen it.
  EXPECT_EQ(g.AddEdge(1, 2).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.AddEdge(2, 1).code(), StatusCode::kFailedPrecondition);
  // (0, 3) does not exist in the merged view: deleting it is NotFound.
  EXPECT_EQ(g.RemoveEdge(0, 3).code(), StatusCode::kNotFound);
  // An overlay-added edge is a duplicate on the second insert too.
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_EQ(g.AddEdge(3, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.pending(), 1);
}

TEST(MutationValidationTest, RejectionIsNeverPartial) {
  MutableGraph g = MakePathMutable(6);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  const auto before = g.Publish();
  const int64_t edges_before = before->num_edges();

  // Every rejection class in a row: the merged view must be bit-identical
  // to before each one (same edge count, same adjacency).
  EXPECT_FALSE(g.AddEdge(0, 2).ok());   // duplicate
  EXPECT_FALSE(g.AddEdge(5, 6).ok());   // out of range
  EXPECT_FALSE(g.AddEdge(4, 4).ok());   // self-loop
  EXPECT_FALSE(g.RemoveEdge(1, 5).ok());  // missing
  EXPECT_FALSE(g.AddNode({1.0f, 2.0f}).ok());  // wrong width

  const auto after = g.Publish();
  EXPECT_EQ(after.get(), before.get());  // no-op publish: nothing changed
  EXPECT_EQ(after->num_edges(), edges_before);
  EXPECT_EQ(g.stats().applied, 1);
}

TEST(MutationValidationTest, AddNodeAssignsSequentialIdsAndGrowsFeatures) {
  MutableGraph g = MakePathMutable(4);
  auto a = g.AddNode({10.0f});
  auto b = g.AddNode({11.0f});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), 4);
  EXPECT_EQ(b.value(), 5);
  ASSERT_TRUE(g.AddEdge(a.value(), 0).ok());
  ASSERT_TRUE(g.AddEdge(b.value(), a.value()).ok());

  const auto snap = g.Publish();
  EXPECT_EQ(snap->num_nodes(), 6);
  EXPECT_TRUE(snap->HasEdge(4, 0));
  EXPECT_TRUE(snap->HasEdge(5, 4));
  const tensor::Tensor features = snap->Features();
  ASSERT_EQ(features.dim(0), 6);
  EXPECT_EQ(features.at(4, 0), 10.0f);
  EXPECT_EQ(features.at(5, 0), 11.0f);
}

// --- Snapshots ------------------------------------------------------------

TEST(MutationSnapshotTest, OldSnapshotsStayBitStable) {
  MutableGraph g = MakePathMutable(8);
  const auto snap0 = g.Current();
  EXPECT_EQ(snap0->epoch(), 0);
  const int64_t edges0 = snap0->num_edges();

  ASSERT_TRUE(g.AddEdge(0, 7).ok());
  ASSERT_TRUE(g.RemoveEdge(3, 4).ok());
  ASSERT_TRUE(g.AddNode({42.0f}).ok());
  const auto snap1 = g.Publish();
  ASSERT_TRUE(g.Compact().ok());

  // The epoch-0 snapshot still reads as the original path graph even
  // though the live graph has mutated, published, and compacted past it.
  EXPECT_EQ(snap0->num_edges(), edges0);
  EXPECT_EQ(snap0->num_nodes(), 8);
  EXPECT_FALSE(snap0->HasEdge(0, 7));
  EXPECT_TRUE(snap0->HasEdge(3, 4));
  EXPECT_EQ(snap0->Features().dim(0), 8);

  // And the published epoch-1 snapshot survives the compaction behind it.
  EXPECT_TRUE(snap1->HasEdge(0, 7));
  EXPECT_FALSE(snap1->HasEdge(3, 4));
  EXPECT_EQ(snap1->num_nodes(), 9);
}

TEST(MutationSnapshotTest, PublishIsNoOpWithoutChanges) {
  MutableGraph g = MakePathMutable(4);
  const auto first = g.Publish();
  EXPECT_EQ(first->epoch(), 0);
  EXPECT_EQ(first.get(), g.Current().get());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  const auto second = g.Publish();
  EXPECT_EQ(second->epoch(), 1);
  const auto third = g.Publish();  // nothing new since
  EXPECT_EQ(third.get(), second.get());
  EXPECT_EQ(g.epoch(), 1);
}

TEST(MutationSnapshotTest, AffectedNodesRespectInvalidationRadius) {
  // Path 0-1-2-3-4-5-6-7-8, radius 2. Adding edge {0, 8} seeds {0, 8};
  // expanding two hops over the NEW view (where 0 and 8 are adjacent)
  // reaches {0,1,2,8,7,6} — nodes 3, 4, 5 must not be invalidated.
  MutableGraphOptions options;
  options.invalidation_radius = 2;
  MutableGraph g = MakePathMutable(9, options);
  ASSERT_TRUE(g.AddEdge(0, 8).ok());
  const auto snap = g.Publish();
  EXPECT_EQ(snap->affected_nodes(),
            (std::vector<int64_t>{0, 1, 2, 6, 7, 8}));
}

TEST(MutationSnapshotTest, RemovedEdgeInvalidatesItsOldNeighborhood) {
  // Removing {3, 4} on a path of 9: the new view no longer connects the
  // halves, but the union with the previous epoch's adjacency still walks
  // across the removed edge — both sides' 2-hop neighborhoods invalidate.
  MutableGraphOptions options;
  options.invalidation_radius = 2;
  MutableGraph g = MakePathMutable(9, options);
  ASSERT_TRUE(g.RemoveEdge(3, 4).ok());
  const auto snap = g.Publish();
  EXPECT_EQ(snap->affected_nodes(),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
}

// --- Overflow and the mutation_backlog incident ---------------------------

TEST(MutationBacklogTest, OverflowShedsWithResourceExhaustedAndLatches) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  MutableGraphOptions options;
  options.max_pending = 2;
  MutableGraph g = MakePathMutable(10, options);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_FALSE(g.backlogged());

  // The overlay is full: further mutations shed, and the incident latches
  // on the FIRST shed only — a sustained overflow is one incident.
  EXPECT_EQ(g.AddEdge(0, 4).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(g.backlogged());
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.AddNode({9.0f}).status().code(),
            StatusCode::kResourceExhausted);
  obs::SetEventSink(nullptr);

  const MutableGraph::Stats stats = g.stats();
  EXPECT_EQ(stats.applied, 2);
  EXPECT_EQ(stats.shed, 3);
  EXPECT_TRUE(stats.backlogged);
  EXPECT_EQ(CountEvents(sink, "mutation_backlog"), 1);
}

TEST(MutationBacklogTest, CompactionDrainsTheBacklogAndClearsTheLatch) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  MutableGraphOptions options;
  options.max_pending = 2;
  MutableGraph g = MakePathMutable(10, options);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_EQ(g.AddEdge(0, 4).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(g.backlogged());

  ASSERT_TRUE(g.Compact().ok());
  obs::SetEventSink(nullptr);
  EXPECT_FALSE(g.backlogged());
  EXPECT_EQ(g.pending(), 0);  // folded into the new base
  EXPECT_EQ(CountEvents(sink, "mutation_backlog_cleared"), 1);

  // The shed mutation was NOT silently applied — the caller was told to
  // retry, and now the retry succeeds.
  EXPECT_FALSE(g.Current()->HasEdge(0, 4));
  EXPECT_TRUE(g.AddEdge(0, 4).ok());
  EXPECT_TRUE(g.Current()->HasEdge(0, 2));  // compacted edges survived
}

// --- Compaction under faults ----------------------------------------------

TEST(MutationCompactionTest, FailedCompactionLeavesPreviousSnapshotServing) {
  MutableGraph g = MakePathMutable(12);
  ASSERT_TRUE(g.AddEdge(0, 6).ok());
  const auto published = g.Publish();

  FaultInjector injector(7);
  // First compaction dies at the pre-rebuild probe, the second at the
  // pre-publish probe (after the merged CSR was fully built): neither may
  // swap anything.
  injector.Arm(FaultSite::kGraphCompaction, /*at_visit=*/0);
  {
    ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(g.Compact().code(), StatusCode::kInternal);
    EXPECT_EQ(g.Current().get(), published.get());
    EXPECT_EQ(g.epoch(), published->epoch());
    EXPECT_EQ(g.pending(), 1);  // the overlay kept its mutations

    injector.Arm(FaultSite::kGraphCompaction, /*at_visit=*/2);
    EXPECT_EQ(g.Compact().code(), StatusCode::kInternal);
    EXPECT_EQ(g.Current().get(), published.get());
    EXPECT_EQ(g.pending(), 1);

    // Re-armed: with the fault budget spent, the SAME call site succeeds.
    EXPECT_TRUE(g.Compact().ok());
  }
  EXPECT_EQ(injector.fires(FaultSite::kGraphCompaction), 2);

  const MutableGraph::Stats stats = g.stats();
  EXPECT_EQ(stats.compaction_failures, 2);
  EXPECT_EQ(stats.compactions, 1);
  EXPECT_EQ(stats.pending, 0);
  EXPECT_TRUE(g.Current()->HasEdge(0, 6));
  EXPECT_GT(g.epoch(), published->epoch());
}

TEST(MutationCompactionTest, CompactedViewIsBitIdenticalToFreshCsr) {
  MutableGraph g = MakePathMutable(16);
  ASSERT_TRUE(g.AddEdge(0, 8).ok());
  ASSERT_TRUE(g.RemoveEdge(4, 5).ok());
  ASSERT_TRUE(g.AddNode({99.0f}).ok());
  ASSERT_TRUE(g.AddEdge(16, 2).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 8).ok());  // add-then-remove cancels out
  ASSERT_TRUE(g.Compact().ok());

  const auto snap = g.Current();
  const std::shared_ptr<const Graph> merged = snap->Materialized();

  // Rebuild the same edge set from scratch and compare the actual CSR
  // operator buffers: FromCoo sorts its entries, so identical edge sets
  // must produce identical row_ptr/col_idx/values — bit-for-bit.
  Graph fresh(merged->num_nodes());
  for (int64_t u = 0; u < merged->num_nodes(); ++u) {
    for (int64_t v : merged->Neighbors(u)) {
      if (v > u) FW_CHECK(fresh.AddEdge(u, v));
    }
  }
  ASSERT_EQ(fresh.num_edges(), merged->num_edges());
  const auto lhs = snap->GcnNormalizedAdjacency();
  const auto rhs = fresh.GcnNormalizedAdjacency();
  EXPECT_EQ(lhs->row_ptr(), rhs->row_ptr());
  EXPECT_EQ(lhs->col_idx(), rhs->col_idx());
  EXPECT_EQ(lhs->values(), rhs->values());
  const auto lhs_mean = snap->NeighborMeanAdjacency();
  const auto rhs_mean = fresh.NeighborMeanAdjacency();
  EXPECT_EQ(lhs_mean->col_idx(), rhs_mean->col_idx());
  EXPECT_EQ(lhs_mean->values(), rhs_mean->values());
}

TEST(MutationCompactionTest, MutationsDuringCompactionAreReplayed) {
  // Mutations keep landing while compactions run on another thread: the
  // rebase replay must lose none of them. (Also a TSan exercise of the
  // compact_mu_ / mu_ split.)
  MutableGraph g = MakePathMutable(64);
  for (int64_t i = 0; i < 20; ++i) ASSERT_TRUE(g.AddEdge(i, i + 2).ok());
  g.Publish();

  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load()) {
      const common::Status status = g.Compact();
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 3).ok());
  }
  stop.store(true);
  compactor.join();

  g.Publish();
  ASSERT_TRUE(g.Compact().ok());
  const auto snap = g.Current();
  for (int64_t i = 0; i < 20; ++i) EXPECT_TRUE(snap->HasEdge(i, i + 2));
  for (int64_t i = 0; i < 30; ++i) EXPECT_TRUE(snap->HasEdge(i, i + 3));
  EXPECT_EQ(snap->num_edges(), 63 + 20 + 30);
}

// --- Fault-plan exhaustion telemetry --------------------------------------

TEST(MutationFaultTest, DeltaApplyFaultLeavesOverlayUntouched) {
  MutableGraph g = MakePathMutable(8);
  FaultInjector injector(7);
  injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0);
  {
    ScopedFaultInjector scoped(&injector);
    const common::Status status = g.AddEdge(0, 4);
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(g.pending(), 0);
    EXPECT_FALSE(g.Current()->HasEdge(0, 4));
    // The fault consumed the validated mutation, not the overlay: the
    // caller's retry goes through cleanly.
    EXPECT_TRUE(g.AddEdge(0, 4).ok());
  }
  EXPECT_TRUE(g.Publish()->HasEdge(0, 4));
}

TEST(MutationFaultTest, ExhaustedFaultPlanReportsOnceAndRearms) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  auto* exhausted_counter =
      obs::MetricsRegistry::Global().GetCounter("fault.exhausted");
  const int64_t counter_before = exhausted_counter->value();

  MutableGraph g = MakePathMutable(8);
  FaultInjector injector(7);
  injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0, /*count=*/1);
  {
    ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(g.AddEdge(0, 2).code(), StatusCode::kInternal);  // the fire
    EXPECT_EQ(CountEvents(sink, "fault_plan_exhausted"), 0);
    // The first visit past the budget reports exhaustion — exactly once,
    // no matter how many more visits follow.
    EXPECT_TRUE(g.AddEdge(0, 2).ok());
    EXPECT_TRUE(g.AddEdge(0, 3).ok());
    EXPECT_EQ(CountEvents(sink, "fault_plan_exhausted"), 1);
    EXPECT_EQ(exhausted_counter->value(), counter_before + 1);

    // Re-arming resets the report: a fresh plan exhausts afresh.
    injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0, /*count=*/1);
    EXPECT_EQ(g.AddEdge(0, 4).code(), StatusCode::kInternal);
    EXPECT_TRUE(g.AddEdge(0, 4).ok());
    EXPECT_EQ(CountEvents(sink, "fault_plan_exhausted"), 2);
    EXPECT_EQ(exhausted_counter->value(), counter_before + 2);
  }
  obs::SetEventSink(nullptr);
}

// --- Serving integration --------------------------------------------------

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

std::string ExportArtifact(const data::Dataset& ds, uint64_t seed,
                           const std::string& path) {
  nn::GnnConfig gnn;
  gnn.in_features = ds.num_attrs();
  baselines::TrainOptions train;
  train.epochs = 20;
  baselines::VanillaMethod method(gnn, train);
  auto fitted_or = method.Fit(ds, seed);
  EXPECT_TRUE(fitted_or.ok()) << fitted_or.status().ToString();
  const core::FittedGnnModel* model = fitted_or.value()->AsGnn();
  EXPECT_NE(model, nullptr);
  serve::ModelArtifact artifact = serve::MakeArtifact(*model, ds);
  EXPECT_TRUE(serve::SaveModelArtifact(path, artifact).ok());
  return artifact.model_id;
}

std::shared_ptr<MutableGraph> MakeDynamic(const data::Dataset& ds,
                                          MutableGraphOptions options = {}) {
  return std::make_shared<MutableGraph>(
      std::make_shared<const Graph>(ds.graph), ds.features, options);
}

/// Ground truth for a snapshot: the model's eval forward over the
/// materialized CSR and merged features, through the served backbone's
/// exact adjacency operator.
nn::PredictionResult SnapshotTruth(const std::string& artifact_path,
                                   const data::Dataset& ds,
                                   const GraphSnapshot& snap) {
  auto artifact_or = serve::LoadModelArtifact(artifact_path);
  EXPECT_TRUE(artifact_or.ok()) << artifact_or.status().ToString();
  auto model_or = serve::RestoreFittedModel(artifact_or.value(), ds);
  EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
  const core::FittedGnnModel& model = *model_or.value();
  tensor::NoGradGuard no_grad;
  common::Rng rng(0);
  return nn::PredictFromLogits(model.classifier().ForwardWith(
      nn::AdjacencyForBackbone(model.classifier().encoder().config().backbone,
                               *snap.Materialized()),
      snap.Features(), /*training=*/false, &rng));
}

TEST(MutationServingTest, EpochInvalidationPurgesExactlyAffectedEntries) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_invalidate.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  // Warm the cache with every node.
  std::vector<int64_t> all_nodes(static_cast<size_t>(ds.num_nodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  ASSERT_TRUE(engine.PredictBatch(all_nodes).ok());
  ASSERT_TRUE(engine.Predict(0).value().cache_hit);

  // Mutate between two non-adjacent nodes and publish the epoch.
  int64_t v = -1;
  for (int64_t candidate = 1; candidate < ds.num_nodes(); ++candidate) {
    if (!ds.graph.HasEdge(0, candidate)) {
      v = candidate;
      break;
    }
  }
  ASSERT_GE(v, 1);
  ASSERT_TRUE(dynamic->AddEdge(0, v).ok());
  const auto snap = dynamic->Publish();
  const std::vector<int64_t>& affected = snap->affected_nodes();
  ASSERT_FALSE(affected.empty());
  ASSERT_LT(static_cast<int64_t>(affected.size()), ds.num_nodes())
      << "toy graph too dense for an exactness check";

  // Every affected node had a cached entry, so the purge count must equal
  // the affected count exactly — no over- and no under-invalidation.
  EXPECT_EQ(engine.stats().epoch_invalidations,
            static_cast<int64_t>(affected.size()));
  EXPECT_EQ(engine.stats().graph_epoch, snap->epoch());

  const std::unordered_set<int64_t> hit(affected.begin(), affected.end());
  const nn::PredictionResult truth = SnapshotTruth(path, ds, *snap);
  for (int64_t node = 0; node < ds.num_nodes(); ++node) {
    auto prediction = engine.Predict(node);
    ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
    EXPECT_EQ(prediction.value().cache_hit, hit.count(node) == 0)
        << "node " << node;
    // Unaffected nodes answer from cache (computed on the OLD snapshot)
    // and must still be bit-correct for the new epoch — that is what the
    // invalidation radius guarantees.
    EXPECT_EQ(prediction.value().label,
              truth.pred[static_cast<size_t>(node)]);
    EXPECT_EQ(prediction.value().prob1,
              truth.prob1[static_cast<size_t>(node)]);
  }
}

TEST(MutationServingTest, AddedNodeBecomesServableAfterPublish) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_addnode.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  const int64_t base_nodes = ds.num_nodes();
  EXPECT_EQ(engine.num_nodes(), base_nodes);
  EXPECT_EQ(engine.Predict(base_nodes).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<float> row(static_cast<size_t>(ds.num_attrs()));
  for (int64_t c = 0; c < ds.num_attrs(); ++c) {
    row[static_cast<size_t>(c)] = ds.features.at(0, c);
  }
  auto node_or = dynamic->AddNode(std::move(row));
  ASSERT_TRUE(node_or.ok());
  ASSERT_TRUE(dynamic->AddEdge(node_or.value(), 0).ok());

  // Not yet published: the serving surface still ends at the old range.
  EXPECT_EQ(engine.num_nodes(), base_nodes);
  const auto snap = dynamic->Publish();
  EXPECT_EQ(engine.num_nodes(), base_nodes + 1);

  auto prediction = engine.Predict(node_or.value());
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  const nn::PredictionResult truth = SnapshotTruth(path, ds, *snap);
  EXPECT_EQ(prediction.value().label,
            truth.pred[static_cast<size_t>(node_or.value())]);
  EXPECT_EQ(prediction.value().prob1,
            truth.prob1[static_cast<size_t>(node_or.value())]);
}

TEST(MutationServingTest, ConcurrentMutatePredictIsSnapshotIsolated) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_concurrent.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  options.flush_interval_ms = 0.2;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  data::TemporalOptions temporal;
  temporal.num_steps = 60;
  auto script_or = data::GenerateTemporalScript(ds, temporal, /*seed=*/11);
  ASSERT_TRUE(script_or.ok()) << script_or.status().ToString();

  // Clients hammer the base node range while the mutator applies the
  // drifting script, publishing and compacting as it goes. Every request
  // must resolve OK — mutations must never tear or starve a forward.
  constexpr int kClients = 3;
  constexpr int kRounds = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const int64_t node = (c + r * kClients) % ds.num_nodes();
        if (!engine.Predict(node).ok()) ++failures;
      }
    });
  }
  int64_t step = 0;
  for (const GraphMutation& m : script_or.value().events) {
    ASSERT_TRUE(dynamic->Apply(m).ok());
    if (++step % 8 == 0) dynamic->Publish();
    if (step % 24 == 0) {
      ASSERT_TRUE(dynamic->Compact().ok());
    }
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Drained and compacted: the served answers must be bit-identical to a
  // fresh forward over the final from-scratch CSR.
  dynamic->Publish();
  ASSERT_TRUE(dynamic->Compact().ok());
  const auto snap = dynamic->Current();
  const nn::PredictionResult truth = SnapshotTruth(path, ds, *snap);
  std::vector<int64_t> all_nodes(static_cast<size_t>(snap->num_nodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  auto replay_or = engine.PredictBatch(all_nodes);
  ASSERT_TRUE(replay_or.ok()) << replay_or.status().ToString();
  for (const serve::NodePrediction& p : replay_or.value()) {
    EXPECT_FALSE(p.degraded);
    EXPECT_EQ(p.label, truth.pred[static_cast<size_t>(p.node)]);
    EXPECT_EQ(p.prob1, truth.prob1[static_cast<size_t>(p.node)]);
  }
}

TEST(MutationServingTest, AuditWindowsStayConsistentAcrossEpochBoundary) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_audit.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  options.cache_capacity = 0;  // every request reaches the auditor
  options.audit_table = std::make_shared<const serve::AuditTable>(
      serve::AuditTable::FromDataset(ds));
  options.audit.stride = 1;
  options.audit.min_audited = 1;
  options.audit.delta_sp_threshold_pct = 0.0;  // metrics only, no alerts
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  constexpr int64_t kPerPhase = 12;
  for (int64_t node = 0; node < kPerPhase; ++node) {
    ASSERT_TRUE(engine.Predict(node).ok());
  }
  const serve::AuditWindowMetrics before = engine.audit_metrics();
  EXPECT_EQ(before.samples, kPerPhase);

  // Publish an epoch mid-stream: the audit window must carry straight
  // across the boundary — no reset, no double-count, full coverage.
  ASSERT_TRUE(dynamic->AddEdge(0, ds.num_nodes() - 1).ok());
  dynamic->Publish();

  for (int64_t node = 0; node < kPerPhase; ++node) {
    ASSERT_TRUE(engine.Predict(node).ok());
  }
  const serve::AuditWindowMetrics after = engine.audit_metrics();
  EXPECT_EQ(after.samples, 2 * kPerPhase);
  EXPECT_EQ(after.group_total[0] + after.group_total[1], 2 * kPerPhase);
  EXPECT_EQ(engine.audit_coverage_pct(), 100.0);
}

// --- Temporal script generator --------------------------------------------

TEST(TemporalScriptTest, DeterministicInTheSeed) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 50;
  auto a = data::GenerateTemporalScript(ds, options, 42);
  auto b = data::GenerateTemporalScript(ds, options, 42);
  auto c = data::GenerateTemporalScript(ds, options, 43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_EQ(a.value().events.size(), 50u);
  EXPECT_EQ(a.value().step_seeds, b.value().step_seeds);
  EXPECT_EQ(a.value().added_node_groups, b.value().added_node_groups);
  for (size_t i = 0; i < a.value().events.size(); ++i) {
    const auto& x = a.value().events[i];
    const auto& y = b.value().events[i];
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.u, y.u);
    EXPECT_EQ(x.v, y.v);
    EXPECT_EQ(x.features, y.features);
  }
  EXPECT_NE(a.value().step_seeds, c.value().step_seeds);
}

TEST(TemporalScriptTest, SeedStreamIsPrefixStableAcrossHorizons) {
  auto ds = ToyDataset();
  data::TemporalOptions short_run, long_run;
  short_run.num_steps = 30;
  long_run.num_steps = 90;
  auto a = data::GenerateTemporalScript(ds, short_run, 7);
  auto b = data::GenerateTemporalScript(ds, long_run, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(b.value().step_seeds.size(), 90u);
  const std::vector<uint64_t> prefix(b.value().step_seeds.begin(),
                                     b.value().step_seeds.begin() + 30);
  EXPECT_EQ(a.value().step_seeds, prefix);
}

TEST(TemporalScriptTest, ReplaysThroughMutableGraphWithoutRejection) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 120;
  auto script_or = data::GenerateTemporalScript(ds, options, 3);
  ASSERT_TRUE(script_or.ok()) << script_or.status().ToString();
  const data::TemporalScript& script = script_or.value();

  MutableGraphOptions graph_options;
  graph_options.max_pending = options.num_steps + 1;
  MutableGraph g(std::make_shared<const Graph>(ds.graph), ds.features,
                 graph_options);
  int64_t add_nodes = 0;
  for (const GraphMutation& m : script.events) {
    const common::Status status = g.Apply(m);
    ASSERT_TRUE(status.ok()) << status.ToString();
    if (m.kind == MutationKind::kAddNode) ++add_nodes;
  }
  EXPECT_EQ(static_cast<size_t>(add_nodes), script.added_node_groups.size());
  EXPECT_EQ(g.Publish()->num_nodes(), ds.num_nodes() + add_nodes);
  ASSERT_TRUE(g.Compact().ok());
  EXPECT_EQ(g.stats().applied, options.num_steps);
  EXPECT_EQ(g.stats().shed, 0);
}

TEST(TemporalScriptTest, HomophilyAndGroupMixDriftAcrossTheScript) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 400;
  options.add_node_fraction = 0.25;
  options.remove_edge_fraction = 0.1;
  options.homophily_start = 0.95;
  options.homophily_end = 0.05;
  options.group1_fraction_start = 0.1;
  options.group1_fraction_end = 0.9;
  auto script_or = data::GenerateTemporalScript(ds, options, 42);
  ASSERT_TRUE(script_or.ok()) << script_or.status().ToString();
  const data::TemporalScript& script = script_or.value();

  // Walk the script tracking each node's group, splitting inserted edges
  // and arrivals into the first and last thirds of the horizon.
  std::vector<int> groups = ds.sens;
  size_t arrival = 0;
  const size_t third = script.events.size() / 3;
  int64_t same_early = 0, edges_early = 0, same_late = 0, edges_late = 0;
  int64_t group1_early = 0, adds_early = 0, group1_late = 0, adds_late = 0;
  for (size_t i = 0; i < script.events.size(); ++i) {
    const GraphMutation& m = script.events[i];
    if (m.kind == MutationKind::kAddNode) {
      const int group = script.added_node_groups[arrival++];
      groups.push_back(group);
      if (i < third) {
        ++adds_early;
        group1_early += group;
      } else if (i >= 2 * third) {
        ++adds_late;
        group1_late += group;
      }
    } else if (m.kind == MutationKind::kAddEdge) {
      const bool same = groups[static_cast<size_t>(m.u)] ==
                        groups[static_cast<size_t>(m.v)];
      if (i < third) {
        ++edges_early;
        same_early += same ? 1 : 0;
      } else if (i >= 2 * third) {
        ++edges_late;
        same_late += same ? 1 : 0;
      }
    }
  }
  ASSERT_GT(edges_early, 20);
  ASSERT_GT(edges_late, 20);
  ASSERT_GT(adds_early, 5);
  ASSERT_GT(adds_late, 5);
  // Homophily decays: early same-group edge share must clearly exceed the
  // late share (0.95 vs 0.05 targets leave a wide margin at these counts).
  EXPECT_GT(static_cast<double>(same_early) / edges_early,
            static_cast<double>(same_late) / edges_late + 0.3);
  // Group mix shifts toward group 1.
  EXPECT_LT(static_cast<double>(group1_early) / adds_early,
            static_cast<double>(group1_late) / adds_late - 0.3);
}

// --- Incremental operator refresh -----------------------------------------

/// Builds all five adjacency operators of `snap`, which (a) materializes
/// them into the snapshot's cache for the NEXT epoch's refresh to capture
/// and (b) runs the cross-check when the graph was configured with it.
void BuildAllOps(const GraphSnapshot& snap) {
  snap.GcnNormalizedAdjacency();
  snap.PlainAdjacency();
  snap.RowNormalizedAdjacency();
  snap.AdjacencyWithSelfLoops();
  snap.NeighborMeanAdjacency();
}

MutableGraphOptions CrossCheckedRefresh() {
  MutableGraphOptions options;
  options.incremental_refresh = true;
  options.refresh_cross_check = true;  // FW_CHECKs bit-identity internally
  return options;
}

TEST(MutationRefreshTest, IncrementalRefreshBitIdenticalForAllOperators) {
  MutableGraph g = MakePathMutable(32, CrossCheckedRefresh());
  BuildAllOps(*g.Current());  // epoch 0: from scratch, captured for epoch 1

  ASSERT_TRUE(g.AddEdge(0, 16).ok());
  ASSERT_TRUE(g.RemoveEdge(8, 9).ok());
  auto node = g.AddNode({77.0f});
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE(g.AddEdge(node.value(), 4).ok());
  const auto snap = g.Publish();
  BuildAllOps(*snap);  // cross-check mode FW_CHECKs each against a rebuild
  EXPECT_EQ(snap->ops_incremental(), 5);
  EXPECT_EQ(snap->ops_rebuilt(), 0);

  // Belt and braces on top of the internal cross-check: compare one
  // degree-normalized operator against a from-scratch Graph, buffer for
  // buffer.
  Graph fresh(snap->num_nodes());
  for (int64_t u = 0; u < snap->num_nodes(); ++u) {
    for (int64_t v : snap->Neighbors(u)) {
      if (v > u) FW_CHECK(fresh.AddEdge(u, v));
    }
  }
  const auto lhs = snap->GcnNormalizedAdjacency();
  const auto rhs = fresh.GcnNormalizedAdjacency();
  EXPECT_EQ(lhs->row_ptr(), rhs->row_ptr());
  EXPECT_EQ(lhs->col_idx(), rhs->col_idx());
  EXPECT_EQ(lhs->values(), rhs->values());
}

TEST(MutationRefreshTest, RefreshChainsAcrossManyEpochs) {
  // Each epoch patches the PREVIOUS epoch's patched matrices — errors
  // would compound, so the cross-check runs every epoch of the chain.
  MutableGraph g = MakePathMutable(24, CrossCheckedRefresh());
  BuildAllOps(*g.Current());
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 12).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(g.RemoveEdge(i, i + 1).ok());
    }
    const auto snap = g.Publish();
    BuildAllOps(*snap);
    EXPECT_EQ(snap->ops_incremental(), 5) << "epoch " << snap->epoch();
  }
}

TEST(MutationRefreshTest, UnbuiltPreviousOperatorsFallBackToRebuild) {
  MutableGraph g = MakePathMutable(16, CrossCheckedRefresh());
  // Epoch 0's operators are never requested, so epoch 1 has nothing to
  // patch and must rebuild from scratch — correct, just not incremental.
  ASSERT_TRUE(g.AddEdge(0, 8).ok());
  const auto snap = g.Publish();
  BuildAllOps(*snap);
  EXPECT_EQ(snap->ops_incremental(), 0);
  EXPECT_EQ(snap->ops_rebuilt(), 5);
}

TEST(MutationRefreshTest, RefreshSurvivesCompaction) {
  // Compaction rebases the overlay onto a fresh CSR; the published
  // snapshot must still patch the pre-compaction operators bit-exactly.
  MutableGraph g = MakePathMutable(20, CrossCheckedRefresh());
  ASSERT_TRUE(g.AddEdge(0, 10).ok());
  const auto before = g.Publish();
  BuildAllOps(*before);
  ASSERT_TRUE(g.AddEdge(5, 15).ok());
  ASSERT_TRUE(g.Compact().ok());
  const auto after = g.Current();
  ASSERT_NE(after.get(), before.get());
  BuildAllOps(*after);
  EXPECT_EQ(after->ops_incremental(), 5);
}

TEST(MutationRefreshTest, DisabledRefreshAlwaysRebuilds) {
  MutableGraphOptions options;
  options.incremental_refresh = false;
  MutableGraph g = MakePathMutable(16, options);
  BuildAllOps(*g.Current());
  ASSERT_TRUE(g.AddEdge(0, 8).ok());
  const auto snap = g.Publish();
  BuildAllOps(*snap);
  EXPECT_EQ(snap->ops_incremental(), 0);
  EXPECT_EQ(snap->ops_rebuilt(), 5);
}

// --- Transactional ApplyBatch ---------------------------------------------

TEST(MutationBatchTest, BatchAppliesAtomicallyWithDependentMutations) {
  MutableGraph g = MakePathMutable(4);
  // The batch adds a node and wires edges to the id it will get — later
  // mutations validate against the state earlier ones produce.
  std::vector<GraphMutation> batch = {
      GraphMutation::AddNode({7.0f}),
      GraphMutation::AddEdge(4, 0),
      GraphMutation::AddEdge(4, 2),
  };
  std::vector<common::Status> statuses;
  ASSERT_TRUE(g.ApplyBatch(batch, &statuses).ok());
  ASSERT_EQ(statuses.size(), 3u);
  for (const auto& s : statuses) EXPECT_TRUE(s.ok());
  EXPECT_EQ(g.stats().applied, 3);
  const auto snap = g.Publish();
  EXPECT_EQ(snap->num_nodes(), 5);
  EXPECT_TRUE(snap->HasEdge(4, 0));
  EXPECT_TRUE(snap->HasEdge(4, 2));
}

TEST(MutationBatchTest, FailingMutationAbortsTheWholeBatch) {
  MutableGraph g = MakePathMutable(6);
  std::vector<GraphMutation> batch = {
      GraphMutation::AddEdge(0, 2),  // valid on its own
      GraphMutation::AddEdge(1, 2),  // duplicate of a base edge
      GraphMutation::AddEdge(0, 3),  // never reached
  };
  std::vector<common::Status> statuses;
  const common::Status status = g.ApplyBatch(batch, &statuses);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // Per-mutation statuses say exactly what happened to each entry.
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_NE(statuses[0].message().find("validated, rolled back"),
            std::string::npos);
  EXPECT_EQ(statuses[1].code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(statuses[2].message().find("not attempted"), std::string::npos);

  // All-or-nothing: mutation #0 validated fine but must NOT have landed.
  EXPECT_EQ(g.pending(), 0);
  EXPECT_EQ(g.stats().applied, 0);
  EXPECT_FALSE(g.Current()->HasEdge(0, 2));
  const auto snap = g.Publish();
  EXPECT_EQ(snap->epoch(), 0);  // no-op publish: nothing changed

  // The batch minus the poison pill goes through afterwards.
  ASSERT_TRUE(g.ApplyBatch({batch[0], batch[2]}).ok());
  EXPECT_EQ(g.pending(), 2);
}

TEST(MutationBatchTest, OverflowInsideBatchShedsAndLatchesBacklog) {
  MutableGraphOptions options;
  options.max_pending = 2;
  MutableGraph g = MakePathMutable(10, options);
  std::vector<GraphMutation> batch = {
      GraphMutation::AddEdge(0, 2),
      GraphMutation::AddEdge(0, 3),
      GraphMutation::AddEdge(0, 4),  // overlay full here
  };
  std::vector<common::Status> statuses;
  EXPECT_EQ(g.ApplyBatch(batch, &statuses).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(statuses[2].code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.pending(), 0);  // nothing from the batch landed
  EXPECT_TRUE(g.backlogged());
  EXPECT_EQ(g.stats().shed, 1);
}

TEST(MutationBatchTest, InjectedApplyFaultRejectsTheWholeBatch) {
  MutableGraph g = MakePathMutable(8);
  FaultInjector injector(7);
  // The dry-run applies probe kGraphDeltaApply per mutation; firing on the
  // second mutation must abort the batch with the overlay untouched.
  injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/1);
  {
    ScopedFaultInjector scoped(&injector);
    std::vector<GraphMutation> batch = {GraphMutation::AddEdge(0, 2),
                                        GraphMutation::AddEdge(0, 3)};
    std::vector<common::Status> statuses;
    EXPECT_EQ(g.ApplyBatch(batch, &statuses).code(), StatusCode::kInternal);
    EXPECT_EQ(statuses[1].code(), StatusCode::kInternal);
    EXPECT_EQ(g.pending(), 0);
    // Budget spent: the same batch now lands atomically.
    ASSERT_TRUE(g.ApplyBatch(batch).ok());
  }
  EXPECT_EQ(g.pending(), 2);
  EXPECT_EQ(injector.fires(FaultSite::kGraphDeltaApply), 1);
}

TEST(MutationBatchTest, EmptyBatchIsANoOp) {
  MutableGraph g = MakePathMutable(4);
  std::vector<common::Status> statuses = {common::Status::Internal("stale")};
  EXPECT_TRUE(g.ApplyBatch({}, &statuses).ok());
  EXPECT_TRUE(statuses.empty());
  EXPECT_EQ(g.pending(), 0);
}

// --- Durable mutation log (file level) ------------------------------------

MutationLog::Header PathLogHeader(int64_t n) {
  MutationLog::Header h;
  h.base_seq = 0;
  h.base_nodes = n;
  h.base_edges = n - 1;
  h.feature_dim = 1;
  return h;
}

TEST(MutationLogTest, AppendedRecordsRoundTripThroughReplay) {
  const std::string path = TempPath("mutation_log_roundtrip.fwlog");
  std::filesystem::remove(path);
  auto log_or = MutationLog::Create(path, PathLogHeader(8));
  ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
  MutationLog& log = *log_or.value();
  ASSERT_TRUE(log.Append(GraphMutation::AddEdge(0, 4)).ok());
  ASSERT_TRUE(log.Append(GraphMutation::RemoveEdge(2, 3)).ok());
  ASSERT_TRUE(log.Append(GraphMutation::AddNode({1.5f})).ok());
  EXPECT_EQ(log.records(), 3);

  auto replay_or = MutationLog::Replay(path);
  ASSERT_TRUE(replay_or.ok()) << replay_or.status().ToString();
  const MutationLog::ReplayResult& replay = replay_or.value();
  EXPECT_EQ(replay.header.base_seq, 0u);
  EXPECT_EQ(replay.header.base_nodes, 8);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0].kind, MutationKind::kAddEdge);
  EXPECT_EQ(replay.records[0].u, 0);
  EXPECT_EQ(replay.records[0].v, 4);
  EXPECT_EQ(replay.records[1].kind, MutationKind::kRemoveEdge);
  EXPECT_EQ(replay.records[2].kind, MutationKind::kAddNode);
  EXPECT_EQ(replay.records[2].features, std::vector<float>{1.5f});
}

TEST(MutationLogTest, TornTailIsToleratedAndTruncatedOnOpen) {
  const std::string path = TempPath("mutation_log_torn.fwlog");
  std::filesystem::remove(path);
  {
    auto log_or = MutationLog::Create(path, PathLogHeader(8));
    ASSERT_TRUE(log_or.ok());
    ASSERT_TRUE(log_or.value()->Append(GraphMutation::AddEdge(0, 4)).ok());
  }
  // A crash mid-append leaves a partial record at EOF: simulate with a few
  // garbage bytes that parse as an incomplete length prefix + payload.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char garbage[] = {0x40, 0x00, 0x00, 0x00, 0x01, 0x02};
    out.write(garbage, sizeof(garbage));
  }
  auto replay_or = MutationLog::Replay(path);
  ASSERT_TRUE(replay_or.ok()) << replay_or.status().ToString();
  EXPECT_TRUE(replay_or.value().torn_tail);
  ASSERT_EQ(replay_or.value().records.size(), 1u);  // the complete record

  // Open drops the tail; subsequent appends and replays are clean.
  auto open_or = MutationLog::Open(path, replay_or.value());
  ASSERT_TRUE(open_or.ok()) << open_or.status().ToString();
  ASSERT_TRUE(open_or.value()->Append(GraphMutation::AddEdge(0, 5)).ok());
  auto clean_or = MutationLog::Replay(path);
  ASSERT_TRUE(clean_or.ok());
  EXPECT_FALSE(clean_or.value().torn_tail);
  EXPECT_EQ(clean_or.value().records.size(), 2u);
}

TEST(MutationLogTest, CorruptRecordIsRejectedWithPreciseError) {
  const std::string path = TempPath("mutation_log_corrupt.fwlog");
  std::filesystem::remove(path);
  {
    auto log_or = MutationLog::Create(path, PathLogHeader(8));
    ASSERT_TRUE(log_or.ok());
    ASSERT_TRUE(log_or.value()->Append(GraphMutation::AddEdge(0, 4)).ok());
    ASSERT_TRUE(log_or.value()->Append(GraphMutation::AddEdge(0, 5)).ok());
  }
  // Flip one payload byte of the SECOND record (header is 44 bytes, each
  // edge record is 4 + 28 + 4 = 36): a complete-but-corrupt record must
  // fail CRC — never replay garbage, never masquerade as a torn tail.
  ASSERT_TRUE(FaultInjector::FlipByte(path, /*offset=*/44 + 36 + 10).ok());
  auto replay_or = MutationLog::Replay(path);
  ASSERT_FALSE(replay_or.ok());
  EXPECT_EQ(replay_or.status().code(), StatusCode::kIoError);
  EXPECT_NE(replay_or.status().ToString().find("CRC"), std::string::npos);
  EXPECT_NE(replay_or.status().ToString().find("record 1"),
            std::string::npos);
}

TEST(MutationLogTest, CorruptHeaderIsRejected) {
  const std::string path = TempPath("mutation_log_badheader.fwlog");
  std::filesystem::remove(path);
  {
    auto log_or = MutationLog::Create(path, PathLogHeader(8));
    ASSERT_TRUE(log_or.ok());
  }
  ASSERT_TRUE(FaultInjector::FlipByte(path, /*offset=*/12).ok());
  EXPECT_EQ(MutationLog::Replay(path).status().code(), StatusCode::kIoError);
}

TEST(MutationLogTest, ResetStartsTheNextGenerationWithCarriedRecords) {
  const std::string path = TempPath("mutation_log_reset.fwlog");
  std::filesystem::remove(path);
  auto log_or = MutationLog::Create(path, PathLogHeader(8));
  ASSERT_TRUE(log_or.ok());
  MutationLog& log = *log_or.value();
  ASSERT_TRUE(log.Append(GraphMutation::AddEdge(0, 4)).ok());
  ASSERT_TRUE(log.Append(GraphMutation::AddEdge(0, 5)).ok());

  MutationLog::Header next = PathLogHeader(8);
  next.base_seq = 1;
  next.base_edges = 9;  // the compacted base absorbed both edges
  ASSERT_TRUE(log.Reset(next, {GraphMutation::AddEdge(0, 6)}).ok());
  EXPECT_EQ(log.records(), 1);

  auto replay_or = MutationLog::Replay(path);
  ASSERT_TRUE(replay_or.ok());
  EXPECT_EQ(replay_or.value().header.base_seq, 1u);
  ASSERT_EQ(replay_or.value().records.size(), 1u);
  EXPECT_EQ(replay_or.value().records[0].v, 6);

  // The new generation keeps appending in place.
  ASSERT_TRUE(log.Append(GraphMutation::AddEdge(0, 7)).ok());
  EXPECT_EQ(MutationLog::Replay(path).value().records.size(), 2u);
}

TEST(MutationLogTest, AppendFaultLeavesTheFileUntouched) {
  const std::string path = TempPath("mutation_log_appendfault.fwlog");
  std::filesystem::remove(path);
  auto log_or = MutationLog::Create(path, PathLogHeader(8));
  ASSERT_TRUE(log_or.ok());
  MutationLog& log = *log_or.value();
  ASSERT_TRUE(log.Append(GraphMutation::AddEdge(0, 4)).ok());
  const int64_t bytes_before = log.bytes();

  FaultInjector injector(7);
  injector.Arm(FaultSite::kMutationLogAppend, /*at_visit=*/0);
  {
    ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(log.Append(GraphMutation::AddEdge(0, 5)).code(),
              StatusCode::kInternal);
    EXPECT_EQ(log.bytes(), bytes_before);
    EXPECT_EQ(log.records(), 1);
    EXPECT_TRUE(log.Append(GraphMutation::AddEdge(0, 5)).ok());  // retry
  }
  EXPECT_EQ(injector.fires(FaultSite::kMutationLogAppend), 1);
  EXPECT_EQ(static_cast<int64_t>(std::filesystem::file_size(path)),
            log.bytes());
}

// --- Write-ahead logging through MutableGraph -----------------------------

/// One operator's raw CSR buffers plus the merged feature matrix — the
/// bit-identity fingerprint recovery is checked against.
struct GraphDigest {
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  std::vector<float> values;
  std::vector<float> features;
  int64_t nodes = 0;
  int64_t edges = 0;
};

GraphDigest DigestOf(const GraphSnapshot& snap) {
  GraphDigest d;
  const auto op = snap.GcnNormalizedAdjacency();
  d.row_ptr = op->row_ptr();
  d.col_idx = op->col_idx();
  d.values = op->values();
  d.features.assign(snap.Features().data().begin(),
                    snap.Features().data().end());
  d.nodes = snap.num_nodes();
  d.edges = snap.num_edges();
  return d;
}

void ExpectDigestEq(const GraphDigest& a, const GraphDigest& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  EXPECT_EQ(a.col_idx, b.col_idx);
  EXPECT_EQ(a.values, b.values);   // bitwise: operator float products
  EXPECT_EQ(a.features, b.features);
}

std::string FreshLogPath(const std::string& name) {
  const std::string path = TempPath(name);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".base");
  return path;
}

TEST(MutationDurabilityTest, CrashBeforeCompactionReplaysTheOverlay) {
  const std::string path = FreshLogPath("mutation_wal_replay.fwlog");
  GraphDigest before;
  {
    auto g_or = MutableGraph::Recover(PathGraph(16), PathFeatures(16), path);
    ASSERT_TRUE(g_or.ok()) << g_or.status().ToString();
    MutableGraph& g = *g_or.value();
    ASSERT_TRUE(g.AddEdge(0, 8).ok());
    ASSERT_TRUE(g.RemoveEdge(3, 4).ok());
    ASSERT_TRUE(g.AddNode({77.0f}).ok());
    ASSERT_TRUE(g.AddEdge(16, 2).ok());
    before = DigestOf(*g.Publish());
    EXPECT_EQ(g.stats().log_appends, 4);
    // The graph object is dropped here WITHOUT compacting — the process
    // "crashed" with four acknowledged mutations only the log remembers.
  }
  auto r_or = MutableGraph::Recover(PathGraph(16), PathFeatures(16), path);
  ASSERT_TRUE(r_or.ok()) << r_or.status().ToString();
  MutableGraph& r = *r_or.value();
  EXPECT_EQ(r.stats().replayed, 4);
  ExpectDigestEq(DigestOf(*r.Current()), before);
}

TEST(MutationDurabilityTest, CompactTruncatesTheLogAndWritesABase) {
  const std::string path = FreshLogPath("mutation_wal_compact.fwlog");
  GraphDigest final_state;
  {
    auto g_or = MutableGraph::Recover(PathGraph(12), PathFeatures(12), path);
    ASSERT_TRUE(g_or.ok()) << g_or.status().ToString();
    MutableGraph& g = *g_or.value();
    ASSERT_TRUE(g.AddEdge(0, 6).ok());
    ASSERT_TRUE(g.AddEdge(1, 7).ok());
    ASSERT_TRUE(g.Compact().ok());
    EXPECT_EQ(g.stats().log_resets, 1);
    EXPECT_EQ(g.mutation_log()->records(), 0);  // truncated: all folded
    EXPECT_EQ(g.mutation_log()->header().base_seq, 1u);
    EXPECT_TRUE(std::filesystem::exists(path + ".base"));

    // Post-compaction mutations land in the new generation.
    ASSERT_TRUE(g.AddEdge(2, 8).ok());
    final_state = DigestOf(*g.Publish());
    EXPECT_EQ(g.mutation_log()->records(), 1);
  }
  // Recovery stitches checkpoint + suffix: the compacted edges come from
  // the base file, the post-compaction edge from the generation-1 log.
  auto r_or = MutableGraph::Recover(PathGraph(12), PathFeatures(12), path);
  ASSERT_TRUE(r_or.ok()) << r_or.status().ToString();
  MutableGraph& r = *r_or.value();
  EXPECT_EQ(r.stats().replayed, 1);
  EXPECT_TRUE(r.Current()->HasEdge(0, 6));
  EXPECT_TRUE(r.Current()->HasEdge(1, 7));
  EXPECT_TRUE(r.Current()->HasEdge(2, 8));
  ExpectDigestEq(DigestOf(*r.Current()), final_state);
}

TEST(MutationDurabilityTest, LogAppendFaultRejectsWithNothingChanged) {
  const std::string path = FreshLogPath("mutation_wal_appendfault.fwlog");
  auto g_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
  ASSERT_TRUE(g_or.ok()) << g_or.status().ToString();
  MutableGraph& g = *g_or.value();

  FaultInjector injector(7);
  injector.Arm(FaultSite::kMutationLogAppend, /*at_visit=*/0);
  {
    ScopedFaultInjector scoped(&injector);
    const common::Status status = g.AddEdge(0, 4);
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("mutation-log"), std::string::npos);
    EXPECT_EQ(g.pending(), 0);
    EXPECT_EQ(g.mutation_log()->records(), 0);
    EXPECT_EQ(g.stats().log_appends, 0);
    EXPECT_TRUE(g.AddEdge(0, 4).ok());  // budget spent: retry goes through
  }
  EXPECT_EQ(g.pending(), 1);
  EXPECT_EQ(g.mutation_log()->records(), 1);
}

TEST(MutationDurabilityTest, ApplyFaultRollsTheLogBack) {
  const std::string path = FreshLogPath("mutation_wal_rollback.fwlog");
  {
    auto g_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
    ASSERT_TRUE(g_or.ok()) << g_or.status().ToString();
    MutableGraph& g = *g_or.value();
    ASSERT_TRUE(g.AddEdge(0, 4).ok());

    FaultInjector injector(7);
    injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0);
    {
      ScopedFaultInjector scoped(&injector);
      // The mutation was durably appended, then the overlay apply faulted:
      // the append must be rolled back or a crash would replay a mutation
      // the caller was told failed.
      EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kInternal);
    }
    EXPECT_EQ(g.mutation_log()->records(), 1);
    EXPECT_EQ(g.pending(), 1);
  }
  auto r_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
  ASSERT_TRUE(r_or.ok()) << r_or.status().ToString();
  EXPECT_TRUE(r_or.value()->Current()->HasEdge(0, 4));
  EXPECT_FALSE(r_or.value()->Current()->HasEdge(0, 5));
}

TEST(MutationDurabilityTest, CorruptLogIsRejectedWhileOldStateKeepsServing) {
  const std::string path = FreshLogPath("mutation_wal_corrupt.fwlog");
  {
    auto g_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
    ASSERT_TRUE(g_or.ok());
    ASSERT_TRUE(g_or.value()->AddEdge(0, 4).ok());
    ASSERT_TRUE(g_or.value()->AddEdge(0, 5).ok());
  }
  ASSERT_TRUE(FaultInjector::FlipByte(path, /*offset=*/44 + 36 + 10).ok());

  // The server that is already up keeps its snapshot; the RECOVERY path is
  // what must refuse precisely instead of replaying garbage.
  auto serving_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8),
                                          TempPath("mutation_wal_other.fwlog"));
  std::filesystem::remove(TempPath("mutation_wal_other.fwlog"));
  ASSERT_TRUE(serving_or.ok());
  const auto pre_failure = serving_or.value()->Current();

  auto r_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
  ASSERT_FALSE(r_or.ok());
  EXPECT_EQ(r_or.status().code(), StatusCode::kIoError);
  EXPECT_NE(r_or.status().ToString().find("CRC"), std::string::npos);

  // The failed recovery touched nothing: the old snapshot still answers
  // and a second replay attempt reports the same precise error.
  EXPECT_EQ(serving_or.value()->Current().get(), pre_failure.get());
  EXPECT_EQ(MutableGraph::Recover(PathGraph(8), PathFeatures(8), path)
                .status()
                .code(),
            StatusCode::kIoError);
}

TEST(MutationDurabilityTest, TornTailFromCrashMidAppendIsDropped) {
  const std::string path = FreshLogPath("mutation_wal_torn.fwlog");
  {
    auto g_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
    ASSERT_TRUE(g_or.ok());
    ASSERT_TRUE(g_or.value()->AddEdge(0, 4).ok());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const char partial[] = {0x24, 0x00, 0x00, 0x00, 0x01};
    out.write(partial, sizeof(partial));
  }
  // The torn record was never acknowledged; recovery keeps the acked edge,
  // drops the tail, and the log is clean for new appends.
  auto r_or = MutableGraph::Recover(PathGraph(8), PathFeatures(8), path);
  ASSERT_TRUE(r_or.ok()) << r_or.status().ToString();
  EXPECT_EQ(r_or.value()->stats().replayed, 1);
  EXPECT_TRUE(r_or.value()->Current()->HasEdge(0, 4));
  ASSERT_TRUE(r_or.value()->AddEdge(0, 5).ok());
  auto replay_or = MutationLog::Replay(path);
  ASSERT_TRUE(replay_or.ok());
  EXPECT_FALSE(replay_or.value().torn_tail);
  EXPECT_EQ(replay_or.value().records.size(), 2u);
}

TEST(MutationDurabilityTest, KillAndReplayUnderTemporalScriptIsBitIdentical) {
  // The in-process kill-and-replay chaos drill: run a drifting temporal
  // script with interleaved publishes and compactions, "kill" at an
  // arbitrary point (drop the graph without shutdown), recover, and demand
  // the served view — CSR operators, features, everything — byte for byte.
  auto ds = ToyDataset();
  const std::string path = FreshLogPath("mutation_wal_chaos.fwlog");
  data::TemporalOptions temporal;
  temporal.num_steps = 90;
  auto script_or = data::GenerateTemporalScript(ds, temporal, /*seed=*/5);
  ASSERT_TRUE(script_or.ok());

  MutableGraphOptions options = CrossCheckedRefresh();
  options.max_pending = 256;
  GraphDigest at_kill;
  {
    auto g_or = MutableGraph::Recover(
        std::make_shared<const Graph>(ds.graph), ds.features, path, options);
    ASSERT_TRUE(g_or.ok()) << g_or.status().ToString();
    MutableGraph& g = *g_or.value();
    int64_t step = 0;
    for (const GraphMutation& m : script_or.value().events) {
      ASSERT_TRUE(g.Apply(m).ok());
      if (++step % 7 == 0) BuildAllOps(*g.Publish());
      if (step % 31 == 0) {
        ASSERT_TRUE(g.Compact().ok());
      }
    }
    at_kill = DigestOf(*g.Publish());
    EXPECT_GT(g.stats().log_resets, 0);  // at least one compact-truncate ran
  }
  auto r_or = MutableGraph::Recover(std::make_shared<const Graph>(ds.graph),
                                    ds.features, path, options);
  ASSERT_TRUE(r_or.ok()) << r_or.status().ToString();
  ExpectDigestEq(DigestOf(*r_or.value()->Current()), at_kill);
}

// --- Epoch-notification races ---------------------------------------------

TEST(MutationRaceTest, OutOfOrderEpochDeliveryStillPurgesEveryAffectedSet) {
  // Regression test for the purge-skip race: when epoch N+1's notification
  // reached the engine before epoch N's, the old `epoch <= graph_epoch_`
  // guard dropped N's affected set and its cache entries served stale
  // predictions forever. The production notify path now serializes
  // deliveries, so this test forces the reordering through the test hook.
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_race_ooo.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);
  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  std::vector<int64_t> all_nodes(static_cast<size_t>(ds.num_nodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  ASSERT_TRUE(engine.PredictBatch(all_nodes).ok());
  ASSERT_TRUE(engine.Predict(0).value().cache_hit);
  ASSERT_TRUE(engine.Predict(1).value().cache_hit);

  // Hand-built snapshots with disjoint affected sets, delivered furthest
  // epoch first — exactly the interleaving the race produced.
  auto base = std::make_shared<const Graph>(ds.graph);
  const int64_t fdim = ds.features.dim(1);
  auto epoch2 = std::make_shared<const GraphSnapshot>(
      /*epoch=*/2, DeltaOverlay(base, fdim, 8), ds.features,
      std::vector<int64_t>{0});
  auto epoch1 = std::make_shared<const GraphSnapshot>(
      /*epoch=*/1, DeltaOverlay(base, fdim, 8), ds.features,
      std::vector<int64_t>{1});
  engine.DeliverGraphEpochForTesting(epoch2);
  engine.DeliverGraphEpochForTesting(epoch1);  // pre-fix: silently dropped

  // BOTH affected sets must have been purged, whatever the order.
  EXPECT_FALSE(engine.Predict(0).value().cache_hit);
  EXPECT_FALSE(engine.Predict(1).value().cache_hit);
  EXPECT_EQ(engine.stats().graph_epoch, 2);
  EXPECT_EQ(engine.stats().epoch_invalidations, 2);
}

TEST(MutationRaceTest, ConcurrentPublishersDeliverEpochsInStrictOrder) {
  // Publish() and Compact() race from several threads; listeners must see
  // epochs strictly ascending (the notify mutex orders delivery with the
  // epoch assignment). Run under TSan in CI.
  MutableGraph g = MakePathMutable(64);
  std::mutex seen_mu;
  std::vector<int64_t> seen;
  const int64_t token = g.AddEpochListener(
      [&](const std::shared_ptr<const GraphSnapshot>& snap) {
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.push_back(snap->epoch());
      });

  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const int64_t u = t;          // disjoint endpoints per thread
      const int64_t v = 32 + t;
      for (int r = 0; r < kRounds; ++r) {
        ASSERT_TRUE(g.AddEdge(u, v).ok());
        g.Publish();
        ASSERT_TRUE(g.RemoveEdge(u, v).ok());
        g.Publish();
        if (r % 10 == t) {
          ASSERT_TRUE(g.Compact().ok());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  g.RemoveEpochListener(token);

  ASSERT_FALSE(seen.empty());
  for (size_t i = 1; i < seen.size(); ++i) {
    ASSERT_GT(seen[i], seen[i - 1])
        << "epoch notifications delivered out of order at index " << i;
  }
}

TEST(MutationRaceTest, ListenerRemovalSynchronizesWithInFlightNotifies) {
  // Teardown race: RemoveEpochListener must not return while a
  // notification round is still invoking the listener, or the caller frees
  // captured state under the callback's feet (use-after-free under a
  // publish storm). TSan verifies the synchronization.
  MutableGraph g = MakePathMutable(32);
  auto state = std::make_unique<std::atomic<int64_t>>(0);
  const int64_t token = g.AddEpochListener(
      [p = state.get()](const std::shared_ptr<const GraphSnapshot>&) {
        p->fetch_add(1, std::memory_order_relaxed);
      });

  std::atomic<bool> stop{false};
  std::thread storm([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // The overlay fills up without compaction; fold it and keep storming.
      if (!g.AddEdge(0, 16).ok()) {
        ASSERT_TRUE(g.Compact().ok());
        continue;
      }
      g.Publish();
      if (!g.RemoveEdge(0, 16).ok()) {
        ASSERT_TRUE(g.Compact().ok());
        ASSERT_TRUE(g.RemoveEdge(0, 16).ok());
      }
      g.Publish();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  g.RemoveEpochListener(token);
  state.reset();  // pre-fix: the storm's in-flight notify dereferences this
  stop.store(true);
  storm.join();
}

TEST(MutationRaceTest, EngineDestructionUnderPublishStormIsSafe) {
  // The engine's dtor removes its epoch listener and then frees the
  // engine; with the removal barrier this must be safe even while another
  // thread publishes as fast as it can.
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_race_dtor.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);
  auto dynamic = MakeDynamic(ds);

  std::atomic<bool> stop{false};
  std::thread storm([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (dynamic->AddEdge(0, 2).ok()) {
        dynamic->Publish();
        ASSERT_TRUE(dynamic->RemoveEdge(0, 2).ok());
        dynamic->Publish();
      } else {
        ASSERT_TRUE(dynamic->Compact().ok());  // overlay full: fold and go on
      }
    }
  });
  for (int i = 0; i < 8; ++i) {
    serve::EngineOptions options;
    options.dynamic_graph = dynamic;
    auto engine_or = serve::InferenceEngine::Load(path, ds, options);
    ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
    ASSERT_TRUE(engine_or.value()->Predict(5).ok());
    engine_or.value().reset();  // dtor races the storm's notifications
  }
  stop.store(true);
  storm.join();
}

TEST(TemporalScriptTest, RejectsMalformedOptions) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 0;
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.add_node_fraction = 0.7;
  options.remove_edge_fraction = 0.7;  // sums past 1
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.homophily_start = 1.5;
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.feature_noise = -0.1;
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairwos::graph
