// Dynamic-graph mutation tests (docs/serving.md "Dynamic graphs"): the
// DeltaOverlay validation front door (precise Statuses, never partial
// application), epoch-numbered copy-on-write snapshots (old snapshots stay
// bit-stable under mutations, publishes, and compactions), compaction under
// injected kGraphCompaction faults (a failed compaction leaves the previous
// snapshot serving and re-arms), overlay overflow (ResourceExhausted + the
// latched mutation_backlog incident), the serving integration (exact LRU
// invalidation per epoch, snapshot-isolated concurrent mutate+predict,
// post-compaction bit-identity), fault-plan exhaustion telemetry, and the
// drifting temporal script generator. The Mutation*/Temporal* suites run
// under TSan in CI (the serve-chaos job).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/vanilla.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "data/synthetic.h"
#include "data/temporal.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/mutable_graph.h"
#include "nn/gnn.h"
#include "serve/artifact.h"
#include "serve/engine.h"
#include "tensor/tensor.h"

namespace fairwos::graph {
namespace {

using ::fairwos::common::StatusCode;
using ::fairwos::testing::FaultInjector;
using ::fairwos::testing::FaultSite;
using ::fairwos::testing::ScopedFaultInjector;

/// A path graph 0-1-...-(n-1) with one-column features (the node id), the
/// workhorse topology: hop distances are exact, so invalidation radii have
/// unambiguous expected sets.
std::shared_ptr<const Graph> PathGraph(int64_t n) {
  Graph g(n);
  for (int64_t v = 0; v + 1 < n; ++v) FW_CHECK(g.AddEdge(v, v + 1));
  return std::make_shared<const Graph>(std::move(g));
}

tensor::Tensor PathFeatures(int64_t n) {
  std::vector<float> data(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    data[static_cast<size_t>(v)] = static_cast<float>(v);
  }
  return tensor::Tensor::FromVector({n, 1}, std::move(data));
}

MutableGraph MakePathMutable(int64_t n, MutableGraphOptions options = {}) {
  return MutableGraph(PathGraph(n), PathFeatures(n), options);
}

int CountEvents(const obs::CollectingSink& sink, const std::string& name) {
  int count = 0;
  for (const auto& event : sink.events()) {
    if (event.name() == name) ++count;
  }
  return count;
}

// --- Validation front door ------------------------------------------------

TEST(MutationValidationTest, OutOfRangeEndpointsRejected) {
  MutableGraph g = MakePathMutable(5);
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.AddEdge(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.RemoveEdge(4, 99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.pending(), 0);
  EXPECT_EQ(g.stats().applied, 0);
}

TEST(MutationValidationTest, SelfLoopsRejectedByPolicy) {
  MutableGraph g = MakePathMutable(5);
  const common::Status status = g.AddEdge(3, 3);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("self-loop"), std::string::npos);
  EXPECT_EQ(g.RemoveEdge(2, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.pending(), 0);
}

TEST(MutationValidationTest, FeatureDimMismatchRejected) {
  MutableGraph g = MakePathMutable(5);  // feature width 1
  auto too_wide = g.AddNode({1.0f, 2.0f});
  EXPECT_EQ(too_wide.status().code(), StatusCode::kInvalidArgument);
  auto empty = g.AddNode({});
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.pending(), 0);
}

TEST(MutationValidationTest, DuplicateInsertAndMissingDeleteRejected) {
  MutableGraph g = MakePathMutable(5);
  // (1, 2) is a base edge; inserting it again is FailedPrecondition even
  // though the overlay itself has never seen it.
  EXPECT_EQ(g.AddEdge(1, 2).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.AddEdge(2, 1).code(), StatusCode::kFailedPrecondition);
  // (0, 3) does not exist in the merged view: deleting it is NotFound.
  EXPECT_EQ(g.RemoveEdge(0, 3).code(), StatusCode::kNotFound);
  // An overlay-added edge is a duplicate on the second insert too.
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_EQ(g.AddEdge(3, 0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(g.pending(), 1);
}

TEST(MutationValidationTest, RejectionIsNeverPartial) {
  MutableGraph g = MakePathMutable(6);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  const auto before = g.Publish();
  const int64_t edges_before = before->num_edges();

  // Every rejection class in a row: the merged view must be bit-identical
  // to before each one (same edge count, same adjacency).
  EXPECT_FALSE(g.AddEdge(0, 2).ok());   // duplicate
  EXPECT_FALSE(g.AddEdge(5, 6).ok());   // out of range
  EXPECT_FALSE(g.AddEdge(4, 4).ok());   // self-loop
  EXPECT_FALSE(g.RemoveEdge(1, 5).ok());  // missing
  EXPECT_FALSE(g.AddNode({1.0f, 2.0f}).ok());  // wrong width

  const auto after = g.Publish();
  EXPECT_EQ(after.get(), before.get());  // no-op publish: nothing changed
  EXPECT_EQ(after->num_edges(), edges_before);
  EXPECT_EQ(g.stats().applied, 1);
}

TEST(MutationValidationTest, AddNodeAssignsSequentialIdsAndGrowsFeatures) {
  MutableGraph g = MakePathMutable(4);
  auto a = g.AddNode({10.0f});
  auto b = g.AddNode({11.0f});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), 4);
  EXPECT_EQ(b.value(), 5);
  ASSERT_TRUE(g.AddEdge(a.value(), 0).ok());
  ASSERT_TRUE(g.AddEdge(b.value(), a.value()).ok());

  const auto snap = g.Publish();
  EXPECT_EQ(snap->num_nodes(), 6);
  EXPECT_TRUE(snap->HasEdge(4, 0));
  EXPECT_TRUE(snap->HasEdge(5, 4));
  const tensor::Tensor features = snap->Features();
  ASSERT_EQ(features.dim(0), 6);
  EXPECT_EQ(features.at(4, 0), 10.0f);
  EXPECT_EQ(features.at(5, 0), 11.0f);
}

// --- Snapshots ------------------------------------------------------------

TEST(MutationSnapshotTest, OldSnapshotsStayBitStable) {
  MutableGraph g = MakePathMutable(8);
  const auto snap0 = g.Current();
  EXPECT_EQ(snap0->epoch(), 0);
  const int64_t edges0 = snap0->num_edges();

  ASSERT_TRUE(g.AddEdge(0, 7).ok());
  ASSERT_TRUE(g.RemoveEdge(3, 4).ok());
  ASSERT_TRUE(g.AddNode({42.0f}).ok());
  const auto snap1 = g.Publish();
  ASSERT_TRUE(g.Compact().ok());

  // The epoch-0 snapshot still reads as the original path graph even
  // though the live graph has mutated, published, and compacted past it.
  EXPECT_EQ(snap0->num_edges(), edges0);
  EXPECT_EQ(snap0->num_nodes(), 8);
  EXPECT_FALSE(snap0->HasEdge(0, 7));
  EXPECT_TRUE(snap0->HasEdge(3, 4));
  EXPECT_EQ(snap0->Features().dim(0), 8);

  // And the published epoch-1 snapshot survives the compaction behind it.
  EXPECT_TRUE(snap1->HasEdge(0, 7));
  EXPECT_FALSE(snap1->HasEdge(3, 4));
  EXPECT_EQ(snap1->num_nodes(), 9);
}

TEST(MutationSnapshotTest, PublishIsNoOpWithoutChanges) {
  MutableGraph g = MakePathMutable(4);
  const auto first = g.Publish();
  EXPECT_EQ(first->epoch(), 0);
  EXPECT_EQ(first.get(), g.Current().get());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  const auto second = g.Publish();
  EXPECT_EQ(second->epoch(), 1);
  const auto third = g.Publish();  // nothing new since
  EXPECT_EQ(third.get(), second.get());
  EXPECT_EQ(g.epoch(), 1);
}

TEST(MutationSnapshotTest, AffectedNodesRespectInvalidationRadius) {
  // Path 0-1-2-3-4-5-6-7-8, radius 2. Adding edge {0, 8} seeds {0, 8};
  // expanding two hops over the NEW view (where 0 and 8 are adjacent)
  // reaches {0,1,2,8,7,6} — nodes 3, 4, 5 must not be invalidated.
  MutableGraphOptions options;
  options.invalidation_radius = 2;
  MutableGraph g = MakePathMutable(9, options);
  ASSERT_TRUE(g.AddEdge(0, 8).ok());
  const auto snap = g.Publish();
  EXPECT_EQ(snap->affected_nodes(),
            (std::vector<int64_t>{0, 1, 2, 6, 7, 8}));
}

TEST(MutationSnapshotTest, RemovedEdgeInvalidatesItsOldNeighborhood) {
  // Removing {3, 4} on a path of 9: the new view no longer connects the
  // halves, but the union with the previous epoch's adjacency still walks
  // across the removed edge — both sides' 2-hop neighborhoods invalidate.
  MutableGraphOptions options;
  options.invalidation_radius = 2;
  MutableGraph g = MakePathMutable(9, options);
  ASSERT_TRUE(g.RemoveEdge(3, 4).ok());
  const auto snap = g.Publish();
  EXPECT_EQ(snap->affected_nodes(),
            (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
}

// --- Overflow and the mutation_backlog incident ---------------------------

TEST(MutationBacklogTest, OverflowShedsWithResourceExhaustedAndLatches) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  MutableGraphOptions options;
  options.max_pending = 2;
  MutableGraph g = MakePathMutable(10, options);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_FALSE(g.backlogged());

  // The overlay is full: further mutations shed, and the incident latches
  // on the FIRST shed only — a sustained overflow is one incident.
  EXPECT_EQ(g.AddEdge(0, 4).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(g.backlogged());
  EXPECT_EQ(g.AddEdge(0, 5).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g.AddNode({9.0f}).status().code(),
            StatusCode::kResourceExhausted);
  obs::SetEventSink(nullptr);

  const MutableGraph::Stats stats = g.stats();
  EXPECT_EQ(stats.applied, 2);
  EXPECT_EQ(stats.shed, 3);
  EXPECT_TRUE(stats.backlogged);
  EXPECT_EQ(CountEvents(sink, "mutation_backlog"), 1);
}

TEST(MutationBacklogTest, CompactionDrainsTheBacklogAndClearsTheLatch) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  MutableGraphOptions options;
  options.max_pending = 2;
  MutableGraph g = MakePathMutable(10, options);
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_EQ(g.AddEdge(0, 4).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(g.backlogged());

  ASSERT_TRUE(g.Compact().ok());
  obs::SetEventSink(nullptr);
  EXPECT_FALSE(g.backlogged());
  EXPECT_EQ(g.pending(), 0);  // folded into the new base
  EXPECT_EQ(CountEvents(sink, "mutation_backlog_cleared"), 1);

  // The shed mutation was NOT silently applied — the caller was told to
  // retry, and now the retry succeeds.
  EXPECT_FALSE(g.Current()->HasEdge(0, 4));
  EXPECT_TRUE(g.AddEdge(0, 4).ok());
  EXPECT_TRUE(g.Current()->HasEdge(0, 2));  // compacted edges survived
}

// --- Compaction under faults ----------------------------------------------

TEST(MutationCompactionTest, FailedCompactionLeavesPreviousSnapshotServing) {
  MutableGraph g = MakePathMutable(12);
  ASSERT_TRUE(g.AddEdge(0, 6).ok());
  const auto published = g.Publish();

  FaultInjector injector(7);
  // First compaction dies at the pre-rebuild probe, the second at the
  // pre-publish probe (after the merged CSR was fully built): neither may
  // swap anything.
  injector.Arm(FaultSite::kGraphCompaction, /*at_visit=*/0);
  {
    ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(g.Compact().code(), StatusCode::kInternal);
    EXPECT_EQ(g.Current().get(), published.get());
    EXPECT_EQ(g.epoch(), published->epoch());
    EXPECT_EQ(g.pending(), 1);  // the overlay kept its mutations

    injector.Arm(FaultSite::kGraphCompaction, /*at_visit=*/2);
    EXPECT_EQ(g.Compact().code(), StatusCode::kInternal);
    EXPECT_EQ(g.Current().get(), published.get());
    EXPECT_EQ(g.pending(), 1);

    // Re-armed: with the fault budget spent, the SAME call site succeeds.
    EXPECT_TRUE(g.Compact().ok());
  }
  EXPECT_EQ(injector.fires(FaultSite::kGraphCompaction), 2);

  const MutableGraph::Stats stats = g.stats();
  EXPECT_EQ(stats.compaction_failures, 2);
  EXPECT_EQ(stats.compactions, 1);
  EXPECT_EQ(stats.pending, 0);
  EXPECT_TRUE(g.Current()->HasEdge(0, 6));
  EXPECT_GT(g.epoch(), published->epoch());
}

TEST(MutationCompactionTest, CompactedViewIsBitIdenticalToFreshCsr) {
  MutableGraph g = MakePathMutable(16);
  ASSERT_TRUE(g.AddEdge(0, 8).ok());
  ASSERT_TRUE(g.RemoveEdge(4, 5).ok());
  ASSERT_TRUE(g.AddNode({99.0f}).ok());
  ASSERT_TRUE(g.AddEdge(16, 2).ok());
  ASSERT_TRUE(g.RemoveEdge(0, 8).ok());  // add-then-remove cancels out
  ASSERT_TRUE(g.Compact().ok());

  const auto snap = g.Current();
  const std::shared_ptr<const Graph> merged = snap->Materialized();

  // Rebuild the same edge set from scratch and compare the actual CSR
  // operator buffers: FromCoo sorts its entries, so identical edge sets
  // must produce identical row_ptr/col_idx/values — bit-for-bit.
  Graph fresh(merged->num_nodes());
  for (int64_t u = 0; u < merged->num_nodes(); ++u) {
    for (int64_t v : merged->Neighbors(u)) {
      if (v > u) FW_CHECK(fresh.AddEdge(u, v));
    }
  }
  ASSERT_EQ(fresh.num_edges(), merged->num_edges());
  const auto lhs = snap->GcnNormalizedAdjacency();
  const auto rhs = fresh.GcnNormalizedAdjacency();
  EXPECT_EQ(lhs->row_ptr(), rhs->row_ptr());
  EXPECT_EQ(lhs->col_idx(), rhs->col_idx());
  EXPECT_EQ(lhs->values(), rhs->values());
  const auto lhs_mean = snap->NeighborMeanAdjacency();
  const auto rhs_mean = fresh.NeighborMeanAdjacency();
  EXPECT_EQ(lhs_mean->col_idx(), rhs_mean->col_idx());
  EXPECT_EQ(lhs_mean->values(), rhs_mean->values());
}

TEST(MutationCompactionTest, MutationsDuringCompactionAreReplayed) {
  // Mutations keep landing while compactions run on another thread: the
  // rebase replay must lose none of them. (Also a TSan exercise of the
  // compact_mu_ / mu_ split.)
  MutableGraph g = MakePathMutable(64);
  for (int64_t i = 0; i < 20; ++i) ASSERT_TRUE(g.AddEdge(i, i + 2).ok());
  g.Publish();

  std::atomic<bool> stop{false};
  std::thread compactor([&] {
    while (!stop.load()) {
      const common::Status status = g.Compact();
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(g.AddEdge(i, i + 3).ok());
  }
  stop.store(true);
  compactor.join();

  g.Publish();
  ASSERT_TRUE(g.Compact().ok());
  const auto snap = g.Current();
  for (int64_t i = 0; i < 20; ++i) EXPECT_TRUE(snap->HasEdge(i, i + 2));
  for (int64_t i = 0; i < 30; ++i) EXPECT_TRUE(snap->HasEdge(i, i + 3));
  EXPECT_EQ(snap->num_edges(), 63 + 20 + 30);
}

// --- Fault-plan exhaustion telemetry --------------------------------------

TEST(MutationFaultTest, DeltaApplyFaultLeavesOverlayUntouched) {
  MutableGraph g = MakePathMutable(8);
  FaultInjector injector(7);
  injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0);
  {
    ScopedFaultInjector scoped(&injector);
    const common::Status status = g.AddEdge(0, 4);
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_EQ(g.pending(), 0);
    EXPECT_FALSE(g.Current()->HasEdge(0, 4));
    // The fault consumed the validated mutation, not the overlay: the
    // caller's retry goes through cleanly.
    EXPECT_TRUE(g.AddEdge(0, 4).ok());
  }
  EXPECT_TRUE(g.Publish()->HasEdge(0, 4));
}

TEST(MutationFaultTest, ExhaustedFaultPlanReportsOnceAndRearms) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  auto* exhausted_counter =
      obs::MetricsRegistry::Global().GetCounter("fault.exhausted");
  const int64_t counter_before = exhausted_counter->value();

  MutableGraph g = MakePathMutable(8);
  FaultInjector injector(7);
  injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0, /*count=*/1);
  {
    ScopedFaultInjector scoped(&injector);
    EXPECT_EQ(g.AddEdge(0, 2).code(), StatusCode::kInternal);  // the fire
    EXPECT_EQ(CountEvents(sink, "fault_plan_exhausted"), 0);
    // The first visit past the budget reports exhaustion — exactly once,
    // no matter how many more visits follow.
    EXPECT_TRUE(g.AddEdge(0, 2).ok());
    EXPECT_TRUE(g.AddEdge(0, 3).ok());
    EXPECT_EQ(CountEvents(sink, "fault_plan_exhausted"), 1);
    EXPECT_EQ(exhausted_counter->value(), counter_before + 1);

    // Re-arming resets the report: a fresh plan exhausts afresh.
    injector.Arm(FaultSite::kGraphDeltaApply, /*at_visit=*/0, /*count=*/1);
    EXPECT_EQ(g.AddEdge(0, 4).code(), StatusCode::kInternal);
    EXPECT_TRUE(g.AddEdge(0, 4).ok());
    EXPECT_EQ(CountEvents(sink, "fault_plan_exhausted"), 2);
    EXPECT_EQ(exhausted_counter->value(), counter_before + 2);
  }
  obs::SetEventSink(nullptr);
}

// --- Serving integration --------------------------------------------------

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::Dataset ToyDataset() { return data::MakeDataset("toy", {}).value(); }

std::string ExportArtifact(const data::Dataset& ds, uint64_t seed,
                           const std::string& path) {
  nn::GnnConfig gnn;
  gnn.in_features = ds.num_attrs();
  baselines::TrainOptions train;
  train.epochs = 20;
  baselines::VanillaMethod method(gnn, train);
  auto fitted_or = method.Fit(ds, seed);
  EXPECT_TRUE(fitted_or.ok()) << fitted_or.status().ToString();
  const core::FittedGnnModel* model = fitted_or.value()->AsGnn();
  EXPECT_NE(model, nullptr);
  serve::ModelArtifact artifact = serve::MakeArtifact(*model, ds);
  EXPECT_TRUE(serve::SaveModelArtifact(path, artifact).ok());
  return artifact.model_id;
}

std::shared_ptr<MutableGraph> MakeDynamic(const data::Dataset& ds,
                                          MutableGraphOptions options = {}) {
  return std::make_shared<MutableGraph>(
      std::make_shared<const Graph>(ds.graph), ds.features, options);
}

/// Ground truth for a snapshot: the model's eval forward over the
/// materialized CSR and merged features, through the served backbone's
/// exact adjacency operator.
nn::PredictionResult SnapshotTruth(const std::string& artifact_path,
                                   const data::Dataset& ds,
                                   const GraphSnapshot& snap) {
  auto artifact_or = serve::LoadModelArtifact(artifact_path);
  EXPECT_TRUE(artifact_or.ok()) << artifact_or.status().ToString();
  auto model_or = serve::RestoreFittedModel(artifact_or.value(), ds);
  EXPECT_TRUE(model_or.ok()) << model_or.status().ToString();
  const core::FittedGnnModel& model = *model_or.value();
  tensor::NoGradGuard no_grad;
  common::Rng rng(0);
  return nn::PredictFromLogits(model.classifier().ForwardWith(
      nn::AdjacencyForBackbone(model.classifier().encoder().config().backbone,
                               *snap.Materialized()),
      snap.Features(), /*training=*/false, &rng));
}

TEST(MutationServingTest, EpochInvalidationPurgesExactlyAffectedEntries) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_invalidate.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  // Warm the cache with every node.
  std::vector<int64_t> all_nodes(static_cast<size_t>(ds.num_nodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  ASSERT_TRUE(engine.PredictBatch(all_nodes).ok());
  ASSERT_TRUE(engine.Predict(0).value().cache_hit);

  // Mutate between two non-adjacent nodes and publish the epoch.
  int64_t v = -1;
  for (int64_t candidate = 1; candidate < ds.num_nodes(); ++candidate) {
    if (!ds.graph.HasEdge(0, candidate)) {
      v = candidate;
      break;
    }
  }
  ASSERT_GE(v, 1);
  ASSERT_TRUE(dynamic->AddEdge(0, v).ok());
  const auto snap = dynamic->Publish();
  const std::vector<int64_t>& affected = snap->affected_nodes();
  ASSERT_FALSE(affected.empty());
  ASSERT_LT(static_cast<int64_t>(affected.size()), ds.num_nodes())
      << "toy graph too dense for an exactness check";

  // Every affected node had a cached entry, so the purge count must equal
  // the affected count exactly — no over- and no under-invalidation.
  EXPECT_EQ(engine.stats().epoch_invalidations,
            static_cast<int64_t>(affected.size()));
  EXPECT_EQ(engine.stats().graph_epoch, snap->epoch());

  const std::unordered_set<int64_t> hit(affected.begin(), affected.end());
  const nn::PredictionResult truth = SnapshotTruth(path, ds, *snap);
  for (int64_t node = 0; node < ds.num_nodes(); ++node) {
    auto prediction = engine.Predict(node);
    ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
    EXPECT_EQ(prediction.value().cache_hit, hit.count(node) == 0)
        << "node " << node;
    // Unaffected nodes answer from cache (computed on the OLD snapshot)
    // and must still be bit-correct for the new epoch — that is what the
    // invalidation radius guarantees.
    EXPECT_EQ(prediction.value().label,
              truth.pred[static_cast<size_t>(node)]);
    EXPECT_EQ(prediction.value().prob1,
              truth.prob1[static_cast<size_t>(node)]);
  }
}

TEST(MutationServingTest, AddedNodeBecomesServableAfterPublish) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_addnode.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  const int64_t base_nodes = ds.num_nodes();
  EXPECT_EQ(engine.num_nodes(), base_nodes);
  EXPECT_EQ(engine.Predict(base_nodes).status().code(),
            StatusCode::kInvalidArgument);

  std::vector<float> row(static_cast<size_t>(ds.num_attrs()));
  for (int64_t c = 0; c < ds.num_attrs(); ++c) {
    row[static_cast<size_t>(c)] = ds.features.at(0, c);
  }
  auto node_or = dynamic->AddNode(std::move(row));
  ASSERT_TRUE(node_or.ok());
  ASSERT_TRUE(dynamic->AddEdge(node_or.value(), 0).ok());

  // Not yet published: the serving surface still ends at the old range.
  EXPECT_EQ(engine.num_nodes(), base_nodes);
  const auto snap = dynamic->Publish();
  EXPECT_EQ(engine.num_nodes(), base_nodes + 1);

  auto prediction = engine.Predict(node_or.value());
  ASSERT_TRUE(prediction.ok()) << prediction.status().ToString();
  const nn::PredictionResult truth = SnapshotTruth(path, ds, *snap);
  EXPECT_EQ(prediction.value().label,
            truth.pred[static_cast<size_t>(node_or.value())]);
  EXPECT_EQ(prediction.value().prob1,
            truth.prob1[static_cast<size_t>(node_or.value())]);
}

TEST(MutationServingTest, ConcurrentMutatePredictIsSnapshotIsolated) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_concurrent.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  options.flush_interval_ms = 0.2;
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  data::TemporalOptions temporal;
  temporal.num_steps = 60;
  auto script_or = data::GenerateTemporalScript(ds, temporal, /*seed=*/11);
  ASSERT_TRUE(script_or.ok()) << script_or.status().ToString();

  // Clients hammer the base node range while the mutator applies the
  // drifting script, publishing and compacting as it goes. Every request
  // must resolve OK — mutations must never tear or starve a forward.
  constexpr int kClients = 3;
  constexpr int kRounds = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        const int64_t node = (c + r * kClients) % ds.num_nodes();
        if (!engine.Predict(node).ok()) ++failures;
      }
    });
  }
  int64_t step = 0;
  for (const GraphMutation& m : script_or.value().events) {
    ASSERT_TRUE(dynamic->Apply(m).ok());
    if (++step % 8 == 0) dynamic->Publish();
    if (step % 24 == 0) {
      ASSERT_TRUE(dynamic->Compact().ok());
    }
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Drained and compacted: the served answers must be bit-identical to a
  // fresh forward over the final from-scratch CSR.
  dynamic->Publish();
  ASSERT_TRUE(dynamic->Compact().ok());
  const auto snap = dynamic->Current();
  const nn::PredictionResult truth = SnapshotTruth(path, ds, *snap);
  std::vector<int64_t> all_nodes(static_cast<size_t>(snap->num_nodes()));
  std::iota(all_nodes.begin(), all_nodes.end(), 0);
  auto replay_or = engine.PredictBatch(all_nodes);
  ASSERT_TRUE(replay_or.ok()) << replay_or.status().ToString();
  for (const serve::NodePrediction& p : replay_or.value()) {
    EXPECT_FALSE(p.degraded);
    EXPECT_EQ(p.label, truth.pred[static_cast<size_t>(p.node)]);
    EXPECT_EQ(p.prob1, truth.prob1[static_cast<size_t>(p.node)]);
  }
}

TEST(MutationServingTest, AuditWindowsStayConsistentAcrossEpochBoundary) {
  auto ds = ToyDataset();
  const std::string path = TempPath("mutation_audit.fwmodel");
  ExportArtifact(ds, /*seed=*/1, path);

  auto dynamic = MakeDynamic(ds);
  serve::EngineOptions options;
  options.dynamic_graph = dynamic;
  options.cache_capacity = 0;  // every request reaches the auditor
  options.audit_table = std::make_shared<const serve::AuditTable>(
      serve::AuditTable::FromDataset(ds));
  options.audit.stride = 1;
  options.audit.min_audited = 1;
  options.audit.delta_sp_threshold_pct = 0.0;  // metrics only, no alerts
  auto engine_or = serve::InferenceEngine::Load(path, ds, options);
  ASSERT_TRUE(engine_or.ok()) << engine_or.status().ToString();
  serve::InferenceEngine& engine = *engine_or.value();

  constexpr int64_t kPerPhase = 12;
  for (int64_t node = 0; node < kPerPhase; ++node) {
    ASSERT_TRUE(engine.Predict(node).ok());
  }
  const serve::AuditWindowMetrics before = engine.audit_metrics();
  EXPECT_EQ(before.samples, kPerPhase);

  // Publish an epoch mid-stream: the audit window must carry straight
  // across the boundary — no reset, no double-count, full coverage.
  ASSERT_TRUE(dynamic->AddEdge(0, ds.num_nodes() - 1).ok());
  dynamic->Publish();

  for (int64_t node = 0; node < kPerPhase; ++node) {
    ASSERT_TRUE(engine.Predict(node).ok());
  }
  const serve::AuditWindowMetrics after = engine.audit_metrics();
  EXPECT_EQ(after.samples, 2 * kPerPhase);
  EXPECT_EQ(after.group_total[0] + after.group_total[1], 2 * kPerPhase);
  EXPECT_EQ(engine.audit_coverage_pct(), 100.0);
}

// --- Temporal script generator --------------------------------------------

TEST(TemporalScriptTest, DeterministicInTheSeed) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 50;
  auto a = data::GenerateTemporalScript(ds, options, 42);
  auto b = data::GenerateTemporalScript(ds, options, 42);
  auto c = data::GenerateTemporalScript(ds, options, 43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_EQ(a.value().events.size(), 50u);
  EXPECT_EQ(a.value().step_seeds, b.value().step_seeds);
  EXPECT_EQ(a.value().added_node_groups, b.value().added_node_groups);
  for (size_t i = 0; i < a.value().events.size(); ++i) {
    const auto& x = a.value().events[i];
    const auto& y = b.value().events[i];
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.u, y.u);
    EXPECT_EQ(x.v, y.v);
    EXPECT_EQ(x.features, y.features);
  }
  EXPECT_NE(a.value().step_seeds, c.value().step_seeds);
}

TEST(TemporalScriptTest, SeedStreamIsPrefixStableAcrossHorizons) {
  auto ds = ToyDataset();
  data::TemporalOptions short_run, long_run;
  short_run.num_steps = 30;
  long_run.num_steps = 90;
  auto a = data::GenerateTemporalScript(ds, short_run, 7);
  auto b = data::GenerateTemporalScript(ds, long_run, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(b.value().step_seeds.size(), 90u);
  const std::vector<uint64_t> prefix(b.value().step_seeds.begin(),
                                     b.value().step_seeds.begin() + 30);
  EXPECT_EQ(a.value().step_seeds, prefix);
}

TEST(TemporalScriptTest, ReplaysThroughMutableGraphWithoutRejection) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 120;
  auto script_or = data::GenerateTemporalScript(ds, options, 3);
  ASSERT_TRUE(script_or.ok()) << script_or.status().ToString();
  const data::TemporalScript& script = script_or.value();

  MutableGraphOptions graph_options;
  graph_options.max_pending = options.num_steps + 1;
  MutableGraph g(std::make_shared<const Graph>(ds.graph), ds.features,
                 graph_options);
  int64_t add_nodes = 0;
  for (const GraphMutation& m : script.events) {
    const common::Status status = g.Apply(m);
    ASSERT_TRUE(status.ok()) << status.ToString();
    if (m.kind == MutationKind::kAddNode) ++add_nodes;
  }
  EXPECT_EQ(static_cast<size_t>(add_nodes), script.added_node_groups.size());
  EXPECT_EQ(g.Publish()->num_nodes(), ds.num_nodes() + add_nodes);
  ASSERT_TRUE(g.Compact().ok());
  EXPECT_EQ(g.stats().applied, options.num_steps);
  EXPECT_EQ(g.stats().shed, 0);
}

TEST(TemporalScriptTest, HomophilyAndGroupMixDriftAcrossTheScript) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 400;
  options.add_node_fraction = 0.25;
  options.remove_edge_fraction = 0.1;
  options.homophily_start = 0.95;
  options.homophily_end = 0.05;
  options.group1_fraction_start = 0.1;
  options.group1_fraction_end = 0.9;
  auto script_or = data::GenerateTemporalScript(ds, options, 42);
  ASSERT_TRUE(script_or.ok()) << script_or.status().ToString();
  const data::TemporalScript& script = script_or.value();

  // Walk the script tracking each node's group, splitting inserted edges
  // and arrivals into the first and last thirds of the horizon.
  std::vector<int> groups = ds.sens;
  size_t arrival = 0;
  const size_t third = script.events.size() / 3;
  int64_t same_early = 0, edges_early = 0, same_late = 0, edges_late = 0;
  int64_t group1_early = 0, adds_early = 0, group1_late = 0, adds_late = 0;
  for (size_t i = 0; i < script.events.size(); ++i) {
    const GraphMutation& m = script.events[i];
    if (m.kind == MutationKind::kAddNode) {
      const int group = script.added_node_groups[arrival++];
      groups.push_back(group);
      if (i < third) {
        ++adds_early;
        group1_early += group;
      } else if (i >= 2 * third) {
        ++adds_late;
        group1_late += group;
      }
    } else if (m.kind == MutationKind::kAddEdge) {
      const bool same = groups[static_cast<size_t>(m.u)] ==
                        groups[static_cast<size_t>(m.v)];
      if (i < third) {
        ++edges_early;
        same_early += same ? 1 : 0;
      } else if (i >= 2 * third) {
        ++edges_late;
        same_late += same ? 1 : 0;
      }
    }
  }
  ASSERT_GT(edges_early, 20);
  ASSERT_GT(edges_late, 20);
  ASSERT_GT(adds_early, 5);
  ASSERT_GT(adds_late, 5);
  // Homophily decays: early same-group edge share must clearly exceed the
  // late share (0.95 vs 0.05 targets leave a wide margin at these counts).
  EXPECT_GT(static_cast<double>(same_early) / edges_early,
            static_cast<double>(same_late) / edges_late + 0.3);
  // Group mix shifts toward group 1.
  EXPECT_LT(static_cast<double>(group1_early) / adds_early,
            static_cast<double>(group1_late) / adds_late - 0.3);
}

TEST(TemporalScriptTest, RejectsMalformedOptions) {
  auto ds = ToyDataset();
  data::TemporalOptions options;
  options.num_steps = 0;
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.add_node_fraction = 0.7;
  options.remove_edge_fraction = 0.7;  // sums past 1
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.homophily_start = 1.5;
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
  options = {};
  options.feature_noise = -0.1;
  EXPECT_EQ(data::GenerateTemporalScript(ds, options, 1).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairwos::graph
