// Tests for the extension modules: additional fairness metrics, PCA,
// checkpoint I/O, and the classical graph algorithms / generators.
#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/pca.h"
#include "fairness/metrics.h"
#include "graph/algorithms.h"
#include "nn/checkpoint.h"
#include "nn/gnn.h"

namespace fairwos {
namespace {

std::vector<int64_t> AllIdx(size_t n) {
  std::vector<int64_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int64_t>(i);
  return idx;
}

// --- Extended fairness metrics ----------------------------------------------

TEST(DisparateImpactTest, HandComputed) {
  // p0 = 0.5, p1 = 1.0 -> ratio 0.5.
  std::vector<int> pred = {1, 0, 1, 1};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(fairness::DisparateImpactRatio(pred, sens, AllIdx(4)), 0.5);
}

TEST(DisparateImpactTest, PerfectlyFairIsOne) {
  std::vector<int> pred = {1, 0, 1, 0};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(fairness::DisparateImpactRatio(pred, sens, AllIdx(4)), 1.0);
}

TEST(DisparateImpactTest, NoPositivesAnywhereIsOne) {
  std::vector<int> pred = {0, 0};
  std::vector<int> sens = {0, 1};
  EXPECT_DOUBLE_EQ(fairness::DisparateImpactRatio(pred, sens, AllIdx(2)), 1.0);
}

TEST(AccuracyEqualityTest, HandComputed) {
  // Group 0 is 100% correct, group 1 is 50% correct.
  std::vector<int> pred = {1, 0, 1, 0};
  std::vector<int> label = {1, 0, 1, 1};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(
      fairness::AccuracyEqualityGapPct(pred, label, sens, AllIdx(4)), 50.0);
}

TEST(GroupCalibrationTest, IdenticalGroupsGiveZero) {
  std::vector<float> prob = {0.8f, 0.2f, 0.8f, 0.2f};
  std::vector<int> label = {1, 0, 1, 0};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_NEAR(fairness::GroupCalibrationGapPct(prob, label, sens, AllIdx(4)),
              0.0, 1e-9);
}

TEST(GroupCalibrationTest, MiscalibratedGroupShowsGap) {
  std::vector<float> prob = {1.0f, 0.0f, 0.0f, 1.0f};  // group 1 inverted
  std::vector<int> label = {1, 0, 1, 0};
  std::vector<int> sens = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(
      fairness::GroupCalibrationGapPct(prob, label, sens, AllIdx(4)), 100.0);
}

TEST(CounterfactualConsistencyTest, CountsMatchingPairs) {
  std::vector<int> pred = {1, 1, 0, 1};
  std::vector<std::pair<int64_t, int64_t>> pairs = {{0, 1}, {0, 2}, {0, 3},
                                                    {2, 2}};
  EXPECT_DOUBLE_EQ(fairness::CounterfactualConsistencyPct(pred, pairs), 75.0);
}

TEST(CounterfactualConsistencyTest, EmptyIsPerfect) {
  std::vector<int> pred = {1};
  EXPECT_DOUBLE_EQ(fairness::CounterfactualConsistencyPct(pred, {}), 100.0);
}

// --- PCA ---------------------------------------------------------------------

TEST(PcaTest, RecoversDominantDirection) {
  // Points spread along (1, 1)/√2 with small orthogonal noise.
  common::Rng rng(1);
  const int n = 200;
  std::vector<float> points;
  for (int i = 0; i < n; ++i) {
    const double t = rng.Normal(0.0, 3.0);
    const double noise = rng.Normal(0.0, 0.1);
    points.push_back(static_cast<float>(t + noise));
    points.push_back(static_cast<float>(t - noise));
  }
  auto pca = eval::FitPca(points, n, 2, 1, &rng);
  const double c0 = pca.components[0], c1 = pca.components[1];
  EXPECT_NEAR(std::abs(c0), 1.0 / std::sqrt(2.0), 0.02);
  EXPECT_NEAR(c0, c1, 0.05);  // same sign, same magnitude
  EXPECT_GT(pca.explained_variance[0], 8.0);
}

TEST(PcaTest, ComponentsAreOrthonormal) {
  common::Rng rng(2);
  const int n = 100, dim = 5;
  std::vector<float> points(n * dim);
  for (auto& v : points) v = static_cast<float>(rng.Normal());
  auto pca = eval::FitPca(points, n, dim, 3, &rng);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (int d = 0; d < dim; ++d) {
        dot += pca.components[a * dim + d] * pca.components[b * dim + d];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(PcaTest, ExplainedVarianceDescends) {
  common::Rng rng(3);
  const int n = 150, dim = 4;
  std::vector<float> points(n * dim);
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) {
      points[static_cast<size_t>(i * dim + d)] =
          static_cast<float>(rng.Normal(0.0, 4.0 - d));
    }
  }
  auto pca = eval::FitPca(points, n, dim, 3, &rng);
  EXPECT_GE(pca.explained_variance[0], pca.explained_variance[1]);
  EXPECT_GE(pca.explained_variance[1], pca.explained_variance[2]);
}

TEST(PcaTest, TransformShapesAndCentering) {
  common::Rng rng(4);
  const int n = 50, dim = 3;
  std::vector<float> points(n * dim);
  for (auto& v : points) v = static_cast<float>(rng.Normal(5.0, 1.0));
  auto pca = eval::FitPca(points, n, dim, 2, &rng);
  auto scores = pca.Transform(points, n);
  ASSERT_EQ(scores.size(), static_cast<size_t>(n * 2));
  // Scores of the training data are centered.
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (int i = 0; i < n; ++i) mean += scores[static_cast<size_t>(i * 2 + c)];
    EXPECT_NEAR(mean / n, 0.0, 1e-3);
  }
}

// --- Checkpoints ---------------------------------------------------------------

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_ckpt_test.bin").string();
  common::Rng rng(5);
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  nn::GnnConfig config;
  config.in_features = 3;
  config.hidden = 4;
  nn::GnnClassifier a(config, g, &rng);
  nn::GnnClassifier b(config, g, &rng);  // different init
  ASSERT_TRUE(nn::SaveCheckpoint(path, a).ok());
  ASSERT_TRUE(nn::LoadCheckpoint(path, b).ok());
  for (size_t i = 0; i < a.parameters().size(); ++i) {
    EXPECT_EQ(a.parameters()[i].data(), b.parameters()[i].data());
  }
  std::filesystem::remove(path);
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_ckpt_mismatch.bin")
          .string();
  common::Rng rng(6);
  graph::Graph g(4);
  nn::GnnConfig small;
  small.in_features = 3;
  small.hidden = 4;
  nn::GnnConfig big = small;
  big.hidden = 8;
  nn::GnnClassifier a(small, g, &rng);
  nn::GnnClassifier b(big, g, &rng);
  ASSERT_TRUE(nn::SaveCheckpoint(path, a).ok());
  auto status = nn::LoadCheckpoint(path, b);
  EXPECT_EQ(status.code(), common::StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, GarbageFileRejected) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fw_ckpt_garbage.bin")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint";
  }
  common::Rng rng(7);
  graph::Graph g(2);
  nn::GnnConfig config;
  config.in_features = 2;
  nn::GnnClassifier m(config, g, &rng);
  EXPECT_FALSE(nn::LoadCheckpoint(path, m).ok());
  EXPECT_FALSE(nn::LoadCheckpoint("/nonexistent/ckpt.bin", m).ok());
  std::filesystem::remove(path);
}

// --- Graph algorithms -----------------------------------------------------------

TEST(ComponentsTest, CountsAndLargest) {
  graph::Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  auto result = graph::ConnectedComponents(g);
  EXPECT_EQ(result.num_components, 3);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(result.LargestSize(), 3);
  EXPECT_EQ(result.component[0], result.component[2]);
  EXPECT_NE(result.component[0], result.component[3]);
}

TEST(ClusteringTest, TriangleIsOne) {
  graph::Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  EXPECT_DOUBLE_EQ(graph::LocalClusteringCoefficient(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(graph::AverageClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarIsZero) {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  EXPECT_DOUBLE_EQ(graph::AverageClusteringCoefficient(g), 0.0);
}

TEST(DegreeHistogramTest, Counts) {
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  auto hist = graph::DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1);  // node 3
  EXPECT_EQ(hist[1], 2);  // nodes 1, 2
  EXPECT_EQ(hist[2], 1);  // node 0
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  common::Rng rng(8);
  graph::Graph g = graph::ErdosRenyi(100, 0.1, &rng);
  const double expected = 0.1 * 100 * 99 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.25 * expected);
}

TEST(ErdosRenyiTest, ExtremesAreEmptyAndComplete) {
  common::Rng rng(9);
  EXPECT_EQ(graph::ErdosRenyi(10, 0.0, &rng).num_edges(), 0);
  EXPECT_EQ(graph::ErdosRenyi(10, 1.0, &rng).num_edges(), 45);
}

TEST(BarabasiAlbertTest, ConnectedWithHubs) {
  common::Rng rng(10);
  graph::Graph g = graph::BarabasiAlbert(200, 2, &rng);
  EXPECT_EQ(graph::ConnectedComponents(g).num_components, 1);
  // Preferential attachment produces hubs: max degree well above attach.
  int64_t max_degree = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  EXPECT_GT(max_degree, 10);
}

TEST(SbmTest, WithinBlockDenser) {
  common::Rng rng(11);
  graph::Graph g = graph::TwoBlockSbm(100, 0.2, 0.02, &rng);
  std::vector<int> blocks(100);
  for (int i = 0; i < 100; ++i) blocks[static_cast<size_t>(i)] = i < 50 ? 0 : 1;
  EXPECT_GT(g.EdgeHomophily(blocks), 0.8);
}

}  // namespace
}  // namespace fairwos
