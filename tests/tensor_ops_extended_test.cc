// Tests for the extended op set: analytic elementwise ops, axis reductions,
// slicing/concat/reshape, row normalisation, and the fused GAT aggregate —
// forward values plus finite-difference gradient checks for each.
#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/ops.h"

namespace fairwos::tensor {
namespace {

using ::fairwos::testing::ExpectGradientsMatch;

TEST(ExtendedForwardTest, DivValues) {
  Tensor a = Tensor::FromVector({3}, {6, 9, -4});
  Tensor b = Tensor::FromVector({3}, {2, 3, 4});
  EXPECT_TRUE(Div(a, b).ValueEquals(Tensor::FromVector({3}, {3, 3, -1})));
}

TEST(ExtendedForwardTest, AnalyticOps) {
  Tensor a = Tensor::FromVector({2}, {1.0f, 4.0f});
  EXPECT_NEAR(Exp(a).at(0), std::exp(1.0f), 1e-5);
  EXPECT_NEAR(Log(a).at(1), std::log(4.0f), 1e-6);
  EXPECT_FLOAT_EQ(Sqrt(a).at(1), 2.0f);
  EXPECT_FLOAT_EQ(Pow(a, 3.0f).at(1), 64.0f);
  Tensor b = Tensor::FromVector({3}, {-2.0f, 0.5f, 7.0f});
  EXPECT_TRUE(Abs(b).ValueEquals(Tensor::FromVector({3}, {2.0f, 0.5f, 7.0f})));
  EXPECT_TRUE(Clamp(b, -1.0f, 1.0f)
                  .ValueEquals(Tensor::FromVector({3}, {-1.0f, 0.5f, 1.0f})));
}

TEST(ExtendedForwardTest, AxisReductions) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(SumAxis(a, 0).ValueEquals(Tensor::FromVector({3}, {5, 7, 9})));
  EXPECT_TRUE(SumAxis(a, 1).ValueEquals(Tensor::FromVector({2}, {6, 15})));
  EXPECT_TRUE(MeanAxis(a, 1).ValueEquals(Tensor::FromVector({2}, {2, 5})));
}

TEST(ExtendedForwardTest, L2NormalizeRowsUnitNorm) {
  Tensor a = Tensor::FromVector({2, 2}, {3, 4, 0, 0});
  Tensor y = L2NormalizeRows(a);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.8f);
  // Zero rows survive via the epsilon floor.
  EXPECT_FLOAT_EQ(y.at(1, 0), 0.0f);
}

TEST(ExtendedForwardTest, SliceColsValues) {
  Tensor a = Tensor::FromVector({2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_TRUE(SliceCols(a, 1, 2).ValueEquals(
      Tensor::FromVector({2, 2}, {1, 2, 5, 6})));
}

TEST(ExtendedForwardTest, ConcatBothAxes) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  EXPECT_TRUE(Concat({a, b}, 0).ValueEquals(
      Tensor::FromVector({2, 2}, {1, 2, 3, 4})));
  EXPECT_TRUE(Concat({a, b}, 1).ValueEquals(
      Tensor::FromVector({1, 4}, {1, 2, 3, 4})));
}

TEST(ExtendedForwardTest, ReshapeKeepsOrder) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, {3, 2});
  EXPECT_EQ(r.at(1, 0), 3.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(ExtendedDeathTest, InvalidArgumentsAbort) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_DEATH(SliceCols(a, 1, 3), "out of range");
  EXPECT_DEATH(Reshape(a, {3}), "element count");
  EXPECT_DEATH(SumAxis(a, 2), "axis");
  EXPECT_DEATH(Log(Tensor::FromVector({1}, {-1.0f})), "positive");
}

TEST(ExtendedGradTest, DivGrad) {
  common::Rng rng(1);
  Tensor a = Tensor::RandNormal({3, 2}, 1.0f, &rng);
  Tensor b = AddScalar(Tensor::RandUniform({3, 2}, 0.5f, 2.0f, &rng), 0.5f);
  b.set_requires_grad(true);
  ExpectGradientsMatch(a, [&] { return Sum(Div(a, b)); });
  ExpectGradientsMatch(b, [&] { return Sum(Div(a, b)); });
}

TEST(ExtendedGradTest, AnalyticGrads) {
  common::Rng rng(2);
  Tensor pos = Tensor::RandUniform({5}, 0.5f, 3.0f, &rng);
  ExpectGradientsMatch(pos, [&] { return Sum(Exp(pos)); });
  ExpectGradientsMatch(pos, [&] { return Sum(Log(pos)); });
  ExpectGradientsMatch(pos, [&] { return Sum(Sqrt(pos)); });
  ExpectGradientsMatch(pos, [&] { return Sum(Pow(pos, 2.5f)); });
  Tensor any = Tensor::RandNormal({5}, 1.0f, &rng);
  ExpectGradientsMatch(any, [&] { return Sum(Abs(any)); });
}

TEST(ExtendedGradTest, AxisSumGrads) {
  common::Rng rng(3);
  Tensor a = Tensor::RandNormal({4, 3}, 1.0f, &rng);
  Tensor w0 = Tensor::RandNormal({3}, 1.0f, &rng);
  Tensor w1 = Tensor::RandNormal({4}, 1.0f, &rng);
  ExpectGradientsMatch(a, [&] { return Sum(Mul(SumAxis(a, 0), w0)); });
  ExpectGradientsMatch(a, [&] { return Sum(Mul(MeanAxis(a, 1), w1)); });
}

TEST(ExtendedGradTest, L2NormalizeRowsGrad) {
  common::Rng rng(4);
  Tensor a = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  Tensor w = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  ExpectGradientsMatch(a, [&] { return Sum(Mul(L2NormalizeRows(a), w)); });
}

TEST(ExtendedGradTest, SliceConcatReshapeGrads) {
  common::Rng rng(5);
  Tensor a = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  Tensor b = Tensor::RandNormal({3, 2}, 1.0f, &rng);
  b.set_requires_grad(true);
  ExpectGradientsMatch(a, [&] { return SumSquares(SliceCols(a, 1, 2)); });
  ExpectGradientsMatch(a, [&] { return SumSquares(Concat({a, b}, 1)); });
  ExpectGradientsMatch(b, [&] { return SumSquares(Concat({a, b}, 1)); });
  ExpectGradientsMatch(a, [&] { return SumSquares(Reshape(a, {4, 3})); });
}

std::shared_ptr<SparseMatrix> RingWithSelfLoops(int64_t n) {
  std::vector<CooEntry> entries;
  for (int64_t v = 0; v < n; ++v) {
    entries.push_back({v, v, 1.0f});
    entries.push_back({v, (v + 1) % n, 1.0f});
    entries.push_back({v, (v + n - 1) % n, 1.0f});
  }
  return SparseMatrix::FromCoo(n, n, std::move(entries));
}

TEST(GatAggregateTest, UniformScoresGiveNeighborhoodMean) {
  auto adj = RingWithSelfLoops(4);
  Tensor d = Tensor::Zeros({4});
  Tensor s = Tensor::Zeros({4});
  Tensor x = Tensor::FromVector({4, 1}, {1, 2, 3, 4});
  Tensor y = GatAggregate(adj, d, s, x, 0.2f);
  // Equal scores -> softmax is uniform over the 3 support nodes.
  EXPECT_NEAR(y.at(0, 0), (1 + 2 + 4) / 3.0f, 1e-5);
  EXPECT_NEAR(y.at(2, 0), (2 + 3 + 4) / 3.0f, 1e-5);
}

TEST(GatAggregateTest, AttentionRowsAreConvexCombinations) {
  common::Rng rng(6);
  auto adj = RingWithSelfLoops(6);
  Tensor d = Tensor::RandNormal({6}, 1.0f, &rng);
  Tensor s = Tensor::RandNormal({6}, 1.0f, &rng);
  Tensor x = Tensor::Ones({6, 3});
  Tensor y = GatAggregate(adj, d, s, x, 0.2f);
  // A convex combination of all-ones rows is all ones.
  for (float v : y.data()) EXPECT_NEAR(v, 1.0f, 1e-5);
}

TEST(GatAggregateTest, GradAllThreeInputs) {
  common::Rng rng(7);
  auto adj = RingWithSelfLoops(5);
  Tensor d = Tensor::RandNormal({5}, 1.0f, &rng);
  Tensor s = Tensor::RandNormal({5}, 1.0f, &rng);
  Tensor x = Tensor::RandNormal({5, 2}, 1.0f, &rng);
  Tensor w = Tensor::RandNormal({5, 2}, 1.0f, &rng);
  d.set_requires_grad(true);
  s.set_requires_grad(true);
  auto loss = [&] { return Sum(Mul(GatAggregate(adj, d, s, x, 0.2f), w)); };
  ExpectGradientsMatch(x, loss);
  ExpectGradientsMatch(d, loss);
  ExpectGradientsMatch(s, loss);
}

TEST(GatAggregateTest, ExtremeScoresAreStable) {
  auto adj = RingWithSelfLoops(3);
  Tensor d = Tensor::FromVector({3}, {500.0f, -500.0f, 0.0f});
  Tensor s = Tensor::FromVector({3}, {500.0f, 0.0f, -500.0f});
  Tensor x = Tensor::Ones({3, 2});
  Tensor y = GatAggregate(adj, d, s, x, 0.2f);
  for (float v : y.data()) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 1.0f, 1e-4);
  }
}

}  // namespace
}  // namespace fairwos::tensor
