// End-to-end integration tests: the headline behaviours the repository
// exists to demonstrate, pinned at small scale with fixed seeds.
//  * Fairwos reduces the statistical parity gap of the vanilla backbone on
//    a biased benchmark while keeping (or improving) accuracy.
//  * The whole pipeline is deterministic.
//  * The harness agrees with direct metric computation.
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "fairness/metrics.h"

namespace fairwos {
namespace {

/// A moderately sized credit graph: the dataset where the bias channel is
/// widest and the Fairwos-vs-vanilla contrast is most stable.
data::Dataset CreditDataset() {
  data::DatasetOptions options;
  options.scale = 40.0;
  options.seed = 42;
  return data::MakeDataset("credit", options).value();
}

TEST(IntegrationTest, FairwosImprovesParityOverVanillaOnCredit) {
  auto ds = CreditDataset();
  baselines::MethodOptions options;
  options.fairwos.alpha = baselines::RecommendedAlpha("credit");

  auto vanilla = baselines::MakeMethod("vanilla", options).value();
  auto fairwos = baselines::MakeMethod("fairwos", options).value();
  auto vanilla_agg = eval::RunRepeated(vanilla.get(), ds, 2, 7).value();
  auto fairwos_agg = eval::RunRepeated(fairwos.get(), ds, 2, 7).value();

  // The headline claim, at fixed seeds: less bias, no accuracy collapse.
  EXPECT_LT(fairwos_agg.dsp.mean, vanilla_agg.dsp.mean);
  EXPECT_GT(fairwos_agg.acc.mean, vanilla_agg.acc.mean - 2.0);
}

TEST(IntegrationTest, EndToEndDeterminism) {
  auto ds = CreditDataset();
  baselines::MethodOptions options;
  options.train.epochs = 80;
  options.fairwos.pretrain_epochs = 80;
  options.fairwos.finetune_epochs = 10;
  auto m1 = baselines::MakeMethod("fairwos", options).value();
  auto m2 = baselines::MakeMethod("fairwos", options).value();
  auto a = eval::RunTrial(m1.get(), ds, 99).value();
  auto b = eval::RunTrial(m2.get(), ds, 99).value();
  EXPECT_DOUBLE_EQ(a.acc, b.acc);
  EXPECT_DOUBLE_EQ(a.dsp, b.dsp);
  EXPECT_DOUBLE_EQ(a.deo, b.deo);
}

TEST(IntegrationTest, HarnessAgreesWithDirectMetrics) {
  auto ds = data::MakeDataset("toy", {}).value();
  baselines::MethodOptions options;
  options.train.epochs = 60;
  auto method = baselines::MakeMethod("vanilla", options).value();
  auto metrics = eval::RunTrial(method.get(), ds, 5).value();
  // Re-run the method directly with the same seed and recompute by hand.
  auto method2 = baselines::MakeMethod("vanilla", options).value();
  auto fitted = method2->Fit(ds, 5).value();
  auto out = fitted->Predict(ds);
  EXPECT_DOUBLE_EQ(
      metrics.acc,
      fairness::AccuracyPct(out.pred, ds.labels, ds.split.test));
  EXPECT_DOUBLE_EQ(
      metrics.dsp,
      fairness::StatisticalParityGapPct(out.pred, ds.sens, ds.split.test));
  EXPECT_DOUBLE_EQ(metrics.deo,
                   fairness::EqualOpportunityGapPct(out.pred, ds.labels,
                                                    ds.sens, ds.split.test));
}

TEST(IntegrationTest, RecommendedAlphaCoversAllBenchmarks) {
  for (const auto& name : data::BenchmarkNames()) {
    EXPECT_GT(baselines::RecommendedAlpha(name), 0.0) << name;
  }
  // Unknown datasets fall back to the config default.
  EXPECT_DOUBLE_EQ(baselines::RecommendedAlpha("mystery"),
                   core::FairwosConfig{}.alpha);
}

TEST(IntegrationTest, PerturbCfTradesWorseThanFairwosOnCredit) {
  // The §III-D claim behind the whole design: fabricated counterfactuals
  // are a worse deal than searched ones. We assert the weak (robust) form:
  // PerturbCF must not beat Fairwos on both utility AND fairness.
  auto ds = CreditDataset();
  baselines::MethodOptions options;
  options.fairwos.alpha = baselines::RecommendedAlpha("credit");
  auto fairwos = baselines::MakeMethod("fairwos", options).value();
  auto perturb = baselines::MakeMethod("perturbcf", options).value();
  auto fw = eval::RunRepeated(fairwos.get(), ds, 2, 11).value();
  auto pc = eval::RunRepeated(perturb.get(), ds, 2, 11).value();
  const bool perturb_dominates =
      pc.acc.mean > fw.acc.mean + 0.5 && pc.dsp.mean < fw.dsp.mean - 0.5;
  EXPECT_FALSE(perturb_dominates);
}

}  // namespace
}  // namespace fairwos
