// Property-style gradient sweeps: every differentiable op is gradchecked
// across a grid of shapes and random seeds (TEST_P), plus randomized deep
// composite graphs that chain many ops — the strongest correctness
// guarantee the autograd engine has.
#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/ops.h"

namespace fairwos::tensor {
namespace {

using ::fairwos::testing::ExpectGradientsMatch;

struct ShapeCase {
  int64_t rows;
  int64_t cols;
  uint64_t seed;
};

class ShapeSweepTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ShapeSweepTest, ElementwiseChainGrad) {
  const auto& p = GetParam();
  common::Rng rng(p.seed);
  Tensor x = Tensor::RandNormal({p.rows, p.cols}, 1.0f, &rng);
  Tensor c = Tensor::RandNormal({p.rows, p.cols}, 1.0f, &rng);
  ExpectGradientsMatch(x, [&] {
    return Sum(Mul(Tanh(Add(x, c)), Sigmoid(Sub(x, c))));
  });
}

TEST_P(ShapeSweepTest, MatMulReluGrad) {
  const auto& p = GetParam();
  common::Rng rng(p.seed + 100);
  Tensor a = Tensor::RandNormal({p.rows, p.cols}, 1.0f, &rng);
  Tensor b = Tensor::RandNormal({p.cols, p.rows}, 1.0f, &rng);
  b.set_requires_grad(true);
  ExpectGradientsMatch(a, [&] { return SumSquares(Relu(MatMul(a, b))); });
  ExpectGradientsMatch(b, [&] { return SumSquares(Relu(MatMul(a, b))); });
}

TEST_P(ShapeSweepTest, SoftmaxCrossEntropyGradAnyShape) {
  const auto& p = GetParam();
  common::Rng rng(p.seed + 200);
  const int64_t classes = 2 + static_cast<int64_t>(p.seed % 3);
  Tensor logits = Tensor::RandNormal({p.rows, classes}, 1.0f, &rng);
  std::vector<int> labels(static_cast<size_t>(p.rows));
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < p.rows; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int>(rng.UniformInt(classes));
    if (rng.Bernoulli(0.7)) idx.push_back(i);
  }
  if (idx.empty()) idx.push_back(0);
  ExpectGradientsMatch(logits, [&] {
    return SoftmaxCrossEntropy(logits, labels, idx);
  });
}

TEST_P(ShapeSweepTest, RowGatherConcatGrad) {
  const auto& p = GetParam();
  common::Rng rng(p.seed + 300);
  Tensor x = Tensor::RandNormal({p.rows, p.cols}, 1.0f, &rng);
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < p.rows; ++i) {
    idx.push_back(rng.UniformInt(p.rows));  // duplicates exercise scatter-add
  }
  ExpectGradientsMatch(x, [&] {
    Tensor gathered = Rows(x, idx);
    return SumSquares(Concat({gathered, gathered}, 1));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweepTest,
    ::testing::Values(ShapeCase{1, 1, 0}, ShapeCase{1, 7, 1},
                      ShapeCase{5, 1, 2}, ShapeCase{3, 4, 3},
                      ShapeCase{8, 8, 4}, ShapeCase{2, 16, 5},
                      ShapeCase{16, 2, 6}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.rows) + "c" +
             std::to_string(info.param.cols) + "s" +
             std::to_string(info.param.seed);
    });

/// Deep randomized composites: a random pipeline of ops applied to one
/// trainable input, gradchecked end-to-end. Catches interaction bugs that
/// single-op checks cannot (shared subgraphs, repeated use, mixed shapes).
class RandomCompositeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomCompositeTest, DeepChainGradcheck) {
  common::Rng rng(GetParam() * 7919 + 13);
  const int64_t n = 3 + rng.UniformInt(3);
  const int64_t c = 2 + rng.UniformInt(3);
  Tensor x = Tensor::RandNormal({n, c}, 0.7f, &rng);
  // Pre-draw op choices so the loss closure is deterministic.
  std::vector<int> ops;
  for (int depth = 0; depth < 6; ++depth) {
    ops.push_back(static_cast<int>(rng.UniformInt(7)));
  }
  Tensor mixer = Tensor::RandNormal({c, c}, 0.7f, &rng);
  auto loss = [&] {
    Tensor h = x;
    for (int op : ops) {
      switch (op) {
        case 0:
          h = Tanh(h);
          break;
        case 1:
          h = Add(h, x);  // re-use of the leaf: accumulation path
          break;
        case 2:
          h = MatMul(h, mixer);
          break;
        case 3:
          h = LeakyRelu(h, 0.1f);
          break;
        case 4:
          h = MulScalar(h, 1.3f);
          break;
        case 5:
          h = Sigmoid(h);
          break;
        case 6:
          h = L2NormalizeRows(h);
          break;
      }
    }
    return Mean(Mul(h, h));
  };
  ExpectGradientsMatch(x, loss, /*eps=*/1e-3, /*tol=*/5e-2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCompositeTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace fairwos::tensor
