// Tests for the learning-rate schedules and dataset augmentation helpers.
#include <cmath>

#include <gtest/gtest.h>

#include "data/augment.h"
#include "data/synthetic.h"
#include "nn/schedule.h"

namespace fairwos {
namespace {

TEST(ScheduleTest, ConstantIsOne) {
  nn::ConstantSchedule schedule;
  EXPECT_FLOAT_EQ(schedule.Multiplier(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(1000), 1.0f);
}

TEST(ScheduleTest, StepDecayHalvesAtBoundaries) {
  nn::StepDecaySchedule schedule(10, 0.5f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(0), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(9), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(10), 0.5f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(25), 0.25f);
}

TEST(ScheduleTest, CosineEndpointsAndMonotonicity) {
  nn::CosineSchedule schedule(100, 0.1f);
  EXPECT_NEAR(schedule.Multiplier(0), 1.0f, 1e-6);
  EXPECT_NEAR(schedule.Multiplier(100), 0.1f, 1e-6);
  EXPECT_NEAR(schedule.Multiplier(1000), 0.1f, 1e-6);
  float prev = 2.0f;
  for (int e = 0; e <= 100; e += 10) {
    const float m = schedule.Multiplier(e);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(ScheduleTest, WarmupRampsLinearly) {
  nn::WarmupSchedule schedule(10, 0.1f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(0), 0.1f);
  EXPECT_NEAR(schedule.Multiplier(5), 0.55f, 1e-6);
  EXPECT_FLOAT_EQ(schedule.Multiplier(10), 1.0f);
  EXPECT_FLOAT_EQ(schedule.Multiplier(999), 1.0f);
}

class AugmentTest : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = data::MakeDataset("toy", {}).value(); }
  data::Dataset ds_;
};

TEST_F(AugmentTest, FeatureNoiseChangesValuesNotShape) {
  common::Rng rng(1);
  auto noisy = data::WithFeatureNoise(ds_, 0.5, &rng);
  EXPECT_EQ(noisy.num_attrs(), ds_.num_attrs());
  EXPECT_FALSE(noisy.features.ValueEquals(ds_.features));
  // Zero noise is the identity.
  common::Rng rng2(2);
  EXPECT_TRUE(data::WithFeatureNoise(ds_, 0.0, &rng2)
                  .features.ValueEquals(ds_.features));
  // Original untouched (pure function).
  EXPECT_TRUE(data::ValidateDataset(ds_).ok());
}

TEST_F(AugmentTest, EdgeDropoutBounds) {
  common::Rng rng(3);
  auto kept = data::WithEdgeDropout(ds_, 1.0, &rng);
  EXPECT_EQ(kept.graph.num_edges(), ds_.graph.num_edges());
  auto none = data::WithEdgeDropout(ds_, 0.0, &rng);
  EXPECT_EQ(none.graph.num_edges(), 0);
  auto half = data::WithEdgeDropout(ds_, 0.5, &rng);
  EXPECT_NEAR(static_cast<double>(half.graph.num_edges()),
              0.5 * static_cast<double>(ds_.graph.num_edges()),
              0.15 * static_cast<double>(ds_.graph.num_edges()));
}

TEST_F(AugmentTest, LabelNoiseOnlyTouchesTrain) {
  common::Rng rng(4);
  auto flipped = data::WithLabelNoise(ds_, 1.0, &rng);
  for (int64_t v : ds_.split.train) {
    EXPECT_NE(flipped.labels[static_cast<size_t>(v)],
              ds_.labels[static_cast<size_t>(v)]);
  }
  for (int64_t v : ds_.split.test) {
    EXPECT_EQ(flipped.labels[static_cast<size_t>(v)],
              ds_.labels[static_cast<size_t>(v)]);
  }
}

TEST_F(AugmentTest, MaskedAttributesZeroWholeColumns) {
  common::Rng rng(5);
  auto masked = data::WithMaskedAttributes(ds_, 0.3, &rng);
  int64_t zero_columns = 0;
  for (int64_t j = 0; j < masked.num_attrs(); ++j) {
    bool all_zero = true;
    for (int64_t i = 0; i < masked.num_nodes(); ++i) {
      all_zero &= masked.features.at(i, j) == 0.0f;
    }
    zero_columns += all_zero;
  }
  EXPECT_EQ(zero_columns, 3);  // round(0.3 * 10)
}

TEST_F(AugmentTest, AugmentedDatasetsStillValidate) {
  common::Rng rng(6);
  EXPECT_TRUE(
      data::ValidateDataset(data::WithFeatureNoise(ds_, 0.1, &rng)).ok());
  EXPECT_TRUE(
      data::ValidateDataset(data::WithEdgeDropout(ds_, 0.8, &rng)).ok());
  EXPECT_TRUE(
      data::ValidateDataset(data::WithLabelNoise(ds_, 0.1, &rng)).ok());
  EXPECT_TRUE(
      data::ValidateDataset(data::WithMaskedAttributes(ds_, 0.2, &rng)).ok());
}

}  // namespace
}  // namespace fairwos
