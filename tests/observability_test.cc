// Tests for the fairwos::obs observability stack (docs/observability.md):
// scoped-span tracing (nesting, Chrome-trace export, text profile, the
// disabled-path contract), the metrics registry (counters, gauges,
// histogram bucketing, JSON/CSV export, in-place Reset), structured
// telemetry (Event JSON, JSONL sink, collecting sink, the global sink
// hook), leveled logging (parsing, env override, filtering, thread-safe
// emission), and the harness-level failure-reason plumbing.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "data/synthetic.h"
#include "eval/harness.h"

namespace fairwos {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------- tracing --

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().Enable();
  }
  void TearDown() override {
    obs::TraceRecorder::Global().Disable();
    obs::TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, RecordsNestedSpansWithDepthAndPath) {
  {
    FW_TRACE_SPAN("outer");
    {
      FW_TRACE_SPAN("middle");
      { FW_TRACE_SPAN("inner"); }
    }
  }
  auto events = obs::TraceRecorder::Global().snapshot();
  ASSERT_EQ(events.size(), 3u);  // innermost finishes (and records) first
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[0].path, "outer>middle>inner");
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[1].path, "outer>middle");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_EQ(events[2].path, "outer");
  // A parent's span covers its children.
  EXPECT_LE(events[2].start_us, events[0].start_us);
  EXPECT_GE(events[2].start_us + events[2].duration_us,
            events[0].start_us + events[0].duration_us);
}

TEST_F(TraceTest, DisabledRecorderRecordsNothing) {
  obs::TraceRecorder::Global().Disable();
  {
    FW_TRACE_SPAN("ghost");
    { FW_TRACE_SPAN("ghost_child"); }
  }
  EXPECT_EQ(obs::TraceRecorder::Global().size(), 0u);
}

TEST_F(TraceTest, SpanOpenedWhileDisabledIsNotRecordedOnEnable) {
  obs::TraceRecorder::Global().Disable();
  {
    FW_TRACE_SPAN("started_disabled");
    obs::TraceRecorder::Global().Enable();
    // The enclosing span saw a disabled recorder at construction; only
    // spans opened from here on are recorded.
    { FW_TRACE_SPAN("started_enabled"); }
  }
  auto events = obs::TraceRecorder::Global().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "started_enabled");
  EXPECT_EQ(events[0].depth, 0);
}

TEST_F(TraceTest, ChromeTraceJsonShape) {
  {
    FW_TRACE_SPAN("alpha");
    { FW_TRACE_SPAN("beta"); }
  }
  const std::string json = obs::TraceRecorder::Global().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"alpha>beta\""), std::string::npos);
  // One event object per line so line-oriented tools can scan it.
  EXPECT_GE(std::count(json.begin(), json.end(), '\n'), 3);
}

TEST_F(TraceTest, TextProfileAggregatesRepeatedSpans) {
  for (int i = 0; i < 3; ++i) {
    FW_TRACE_SPAN("repeat");
  }
  const std::string profile = obs::TraceRecorder::Global().ToTextProfile();
  EXPECT_NE(profile.find("repeat"), std::string::npos);
  // The aggregated call count appears as a column.
  EXPECT_NE(profile.find("3"), std::string::npos);
}

TEST_F(TraceTest, WriteChromeTraceRoundTrips) {
  { FW_TRACE_SPAN("to_disk"); }
  const std::string path = TempPath("fairwos_trace_test.json");
  ASSERT_TRUE(obs::TraceRecorder::Global().WriteChromeTrace(path).ok());
  const std::string contents = ReadAll(path);
  EXPECT_NE(contents.find("\"to_disk\""), std::string::npos);
  fs::remove(path);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsEnabled) {
  { FW_TRACE_SPAN("gone"); }
  EXPECT_EQ(obs::TraceRecorder::Global().size(), 1u);
  obs::TraceRecorder::Global().Clear();
  EXPECT_EQ(obs::TraceRecorder::Global().size(), 0u);
  EXPECT_TRUE(obs::TraceRecorder::Global().enabled());
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  std::thread t([] { FW_TRACE_SPAN("worker"); });
  t.join();
  { FW_TRACE_SPAN("main"); }
  auto events = obs::TraceRecorder::Global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // Each thread has its own stack: both spans are roots.
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
}

// ---------------------------------------------------------------- metrics --

TEST(MetricsTest, CounterIncrementsAndResets) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5);
  // Same name -> same pointer.
  EXPECT_EQ(registry.GetCounter("test.counter"), c);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);  // pointer survived the reset
}

TEST(MetricsTest, GaugeHoldsLastValue) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->value(), -2.25);
}

TEST(MetricsTest, HistogramBucketsOnInclusiveUpperBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0});
  h->Observe(0.5);   // <= 1      -> bucket 0
  h->Observe(1.0);   // == 1      -> bucket 0 (inclusive edge)
  h->Observe(5.0);   // <= 10     -> bucket 1
  h->Observe(50.0);  // overflow  -> bucket 2
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum(), 56.5);
  std::vector<int64_t> expected = {2, 1, 1};
  EXPECT_EQ(h->bucket_counts(), expected);
  h->Reset();
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->bucket_counts(), (std::vector<int64_t>{0, 0, 0}));
}

TEST(MetricsTest, JsonExportContainsAllFamilies) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c.one")->Increment(7);
  registry.GetGauge("g.one")->Set(0.5);
  registry.GetHistogram("h.one", {1.0})->Observe(2.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g.one\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsTest, CsvExportHasOneRowPerScalar) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetHistogram("h", {2.0})->Observe(1.0);
  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("counter,c,value,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,1"), std::string::npos);
  EXPECT_NE(csv.find("le_inf"), std::string::npos);
}

TEST(MetricsTest, GlobalRegistryIsProcessWide) {
  obs::Counter* a = obs::MetricsRegistry::Global().GetCounter("global.same");
  obs::Counter* b = obs::MetricsRegistry::Global().GetCounter("global.same");
  EXPECT_EQ(a, b);
}

TEST(MetricsTest, DefaultLatencyBucketsAreSorted) {
  auto bounds = obs::DefaultLatencyBucketsMs();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// -------------------------------------------------------------- telemetry --

TEST(TelemetryTest, EventToJsonPreservesOrderAndTypes) {
  obs::Event e("epoch");
  e.Set("epoch", 3).Set("loss", 0.5).Set("phase", "finetune");
  const std::string json = e.ToJson();
  EXPECT_EQ(json.find("{\"event\":\"epoch\""), 0u);
  EXPECT_NE(json.find("\"epoch\":3"), std::string::npos);
  EXPECT_NE(json.find("\"phase\":\"finetune\""), std::string::npos);
  // Insertion order is preserved.
  EXPECT_LT(json.find("\"epoch\":3"), json.find("\"loss\""));
  EXPECT_LT(json.find("\"loss\""), json.find("\"phase\""));
}

TEST(TelemetryTest, EventJsonEscapesStrings) {
  obs::Event e("note");
  e.Set("msg", "line1\n\"quoted\"\\");
  const std::string json = e.ToJson();
  EXPECT_NE(json.find("line1\\n\\\"quoted\\\"\\\\"), std::string::npos);
}

TEST(TelemetryTest, EventAccessors) {
  obs::Event e("x");
  e.Set("phase", "pretrain").Set("loss", 1.25).Set("epoch", 7);
  EXPECT_EQ(e.GetString("phase"), "pretrain");
  EXPECT_DOUBLE_EQ(e.GetDouble("loss"), 1.25);
  EXPECT_DOUBLE_EQ(e.GetDouble("epoch"), 7.0);
  EXPECT_EQ(e.GetString("absent"), "");
  EXPECT_DOUBLE_EQ(e.GetDouble("absent", -1.0), -1.0);
}

TEST(TelemetryTest, EmitWithoutSinkIsNoOp) {
  obs::SetEventSink(nullptr);
  EXPECT_FALSE(obs::TelemetryEnabled());
  obs::EmitEvent(obs::Event("ignored"));  // must not crash
}

TEST(TelemetryTest, CollectingSinkReceivesEvents) {
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  EXPECT_TRUE(obs::TelemetryEnabled());
  obs::EmitEvent(obs::Event("one"));
  obs::EmitEvent(obs::Event("two"));
  obs::SetEventSink(nullptr);
  obs::EmitEvent(obs::Event("after_detach"));
  auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name(), "one");
  EXPECT_EQ(events[1].name(), "two");
}

TEST(TelemetryTest, JsonlFileSinkWritesOneObjectPerLine) {
  const std::string path = TempPath("fairwos_telemetry_test.jsonl");
  auto sink_or = obs::JsonlFileSink::Open(path);
  ASSERT_TRUE(sink_or.ok());
  auto sink = std::move(sink_or).value();
  sink->Emit(obs::Event("a").Set("v", 1));
  sink->Emit(obs::Event("b").Set("v", 2.5));
  EXPECT_EQ(sink->events_written(), 2);
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"event\":"), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  fs::remove(path);
}

TEST(TelemetryTest, JsonlFileSinkRejectsBadPath) {
  auto sink_or = obs::JsonlFileSink::Open("/nonexistent-dir/x/y.jsonl");
  EXPECT_FALSE(sink_or.ok());
}

// ---------------------------------------------------------------- logging --

TEST(LoggingTest, ParseLogLevelAcceptsAllNamesCaseInsensitive) {
  using common::LogLevel;
  EXPECT_EQ(common::ParseLogLevel("debug").value(), LogLevel::kDebug);
  EXPECT_EQ(common::ParseLogLevel("INFO").value(), LogLevel::kInfo);
  EXPECT_EQ(common::ParseLogLevel("Warning").value(), LogLevel::kWarning);
  EXPECT_EQ(common::ParseLogLevel("warn").value(), LogLevel::kWarning);
  EXPECT_EQ(common::ParseLogLevel("error").value(), LogLevel::kError);
  EXPECT_FALSE(common::ParseLogLevel("loud").ok());
  EXPECT_FALSE(common::ParseLogLevel("").ok());
}

TEST(LoggingTest, LogLevelNameRoundTrips) {
  using common::LogLevel;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError}) {
    EXPECT_EQ(common::ParseLogLevel(common::LogLevelName(level)).value(),
              level);
  }
}

TEST(LoggingTest, MessagesBelowLevelAreDropped) {
  std::string captured;
  common::SetLogCaptureForTest(&captured);
  common::SetLogLevel(common::LogLevel::kWarning);
  FW_LOG(Info) << "invisible";
  FW_LOG(Warning) << "visible warning";
  FW_LOG(Error) << "visible error";
  common::SetLogCaptureForTest(nullptr);
  common::SetLogLevel(common::LogLevel::kInfo);
  EXPECT_EQ(captured.find("invisible"), std::string::npos);
  EXPECT_NE(captured.find("visible warning"), std::string::npos);
  EXPECT_NE(captured.find("visible error"), std::string::npos);
}

TEST(LoggingTest, EnvVariableOverridesLevel) {
  ASSERT_EQ(setenv("FAIRWOS_LOG_LEVEL", "error", /*overwrite=*/1), 0);
  common::InitLogLevelFromEnv();
  EXPECT_EQ(common::GetLogLevel(), common::LogLevel::kError);
  // Malformed values leave the level untouched.
  ASSERT_EQ(setenv("FAIRWOS_LOG_LEVEL", "shouting", 1), 0);
  common::InitLogLevelFromEnv();
  EXPECT_EQ(common::GetLogLevel(), common::LogLevel::kError);
  ASSERT_EQ(unsetenv("FAIRWOS_LOG_LEVEL"), 0);
  common::SetLogLevel(common::LogLevel::kInfo);
}

TEST(LoggingTest, ConcurrentLogLinesNeverInterleave) {
  std::string captured;
  common::SetLogCaptureForTest(&captured);
  common::SetLogLevel(common::LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        FW_LOG(Info) << "thread-" << t << "-line-" << i << "-end";
      }
    });
  }
  for (auto& t : threads) t.join();
  common::SetLogCaptureForTest(nullptr);
  // Every emitted line must be intact: "thread-T-line-I-end" with no
  // fragments of other lines spliced in.
  std::istringstream in(captured);
  std::string line;
  int intact = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("thread-"), std::string::npos) << line;
    EXPECT_EQ(line.find("thread-", line.find("thread-") + 1),
              std::string::npos)
        << "interleaved line: " << line;
    EXPECT_EQ(line.rfind("-end"), line.size() - 4) << line;
    ++intact;
  }
  EXPECT_EQ(intact, kThreads * kLines);
}

// ------------------------------------------------------ harness telemetry --

/// Fails the 1st and 3rd of four trials with a distinctive message.
/// Failures are keyed on the trial seed — reproducing RunRepeated's
/// pre-drawn stream for base_seed 0 — not on call order, so the double is
/// unaffected by trials running in parallel.
class FlakyMethod : public core::FairMethod {
 public:
  FlakyMethod() {
    common::Rng seed_stream(/*base_seed=*/0);
    for (int t = 0; t < 4; ++t) {
      const uint64_t seed = seed_stream.NextU64();
      if (t % 2 == 0) failing_seeds_.push_back(seed);
    }
  }

  std::string name() const override { return "Flaky"; }

  common::Result<std::unique_ptr<core::FittedModel>> Fit(
      const data::Dataset& ds, uint64_t seed) override {
    if (std::find(failing_seeds_.begin(), failing_seeds_.end(), seed) !=
        failing_seeds_.end()) {
      return common::Status::Internal("loss diverged");
    }
    core::MethodOutput out;
    out.pred.assign(static_cast<size_t>(ds.num_nodes()), 0);
    out.prob1.assign(static_cast<size_t>(ds.num_nodes()), 0.5f);
    return std::unique_ptr<core::FittedModel>(
        new core::PrecomputedModel(name(), std::move(out)));
  }

 private:
  std::vector<uint64_t> failing_seeds_;
};

TEST(HarnessTelemetryTest, RunRepeatedRecordsFailureReasons) {
  auto ds = data::MakeDataset("toy", {}).value();
  FlakyMethod method;
  // Trials 1 and 3 fail, 2 and 4 succeed.
  auto agg = eval::RunRepeated(&method, ds, /*trials=*/4, /*base_seed=*/0);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg.value().trials, 2);
  EXPECT_EQ(agg.value().failed_trials, 2);
  ASSERT_EQ(agg.value().failure_reasons.size(), 2u);
  EXPECT_NE(agg.value().failure_reasons[0].find("loss diverged"),
            std::string::npos);
  EXPECT_NE(agg.value().failure_reasons[0].find("trial"), std::string::npos);
}

TEST(HarnessTelemetryTest, RunRepeatedEmitsTrialEvents) {
  auto ds = data::MakeDataset("toy", {}).value();
  FlakyMethod method;
  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  auto agg = eval::RunRepeated(&method, ds, /*trials=*/4, /*base_seed=*/0);
  obs::SetEventSink(nullptr);
  ASSERT_TRUE(agg.ok());
  int done = 0, failed = 0;
  for (const auto& e : sink.events()) {
    if (e.name() == "trial_done") ++done;
    if (e.name() == "trial_failed") {
      ++failed;
      EXPECT_EQ(e.GetString("method"), "Flaky");
      EXPECT_NE(e.GetString("reason").find("loss diverged"),
                std::string::npos);
    }
  }
  EXPECT_EQ(done, 2);
  EXPECT_EQ(failed, 2);
}

TEST(HarnessTelemetryTest, TrainingEmitsEpochEventsAndSpans) {
  auto ds = data::MakeDataset("toy", {}).value();
  baselines::MethodOptions options;
  options.train.epochs = 5;
  options.train.patience = 0;
  auto method = baselines::MakeMethod("vanilla", options).value();

  obs::CollectingSink sink;
  obs::SetEventSink(&sink);
  obs::TraceRecorder::Global().Clear();
  obs::TraceRecorder::Global().Enable();
  auto result = eval::RunTrial(method.get(), ds, /*seed=*/1);
  obs::TraceRecorder::Global().Disable();
  obs::SetEventSink(nullptr);
  ASSERT_TRUE(result.ok());

  int epoch_events = 0;
  for (const auto& e : sink.events()) {
    if (e.name() != "epoch") continue;
    ++epoch_events;
    EXPECT_EQ(e.GetString("phase"), "baseline");
    EXPECT_NE(e.GetString("loss_total"), "");
    EXPECT_NE(e.GetString("grad_norm"), "");
  }
  EXPECT_EQ(epoch_events, 5);

  bool saw_train = false, saw_epoch = false, saw_step = false;
  for (const auto& ev : obs::TraceRecorder::Global().snapshot()) {
    if (ev.name == "baseline/train") saw_train = true;
    if (ev.name == "baseline/train_epoch") saw_epoch = true;
    if (ev.name == "optimizer/step") {
      saw_step = true;
      // Optimizer steps nest inside the per-epoch span.
      EXPECT_NE(ev.path.find("baseline/train_epoch>"), std::string::npos);
    }
  }
  obs::TraceRecorder::Global().Clear();
  EXPECT_TRUE(saw_train);
  EXPECT_TRUE(saw_epoch);
  EXPECT_TRUE(saw_step);
}

// ------------------------------------------------------------ string util --

TEST(JsonEscapeTest, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(common::JsonEscape("plain"), "plain");
  EXPECT_EQ(common::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(common::JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(common::JsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(common::JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace fairwos
