// Tests for src/eval: statistics helpers, k-means, t-SNE, the table
// printer, and the repeated-trial harness.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/vanilla.h"
#include "data/synthetic.h"
#include "eval/harness.h"
#include "eval/kmeans.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "eval/tsne.h"

namespace fairwos::eval {
namespace {

TEST(StatsTest, MeanStdHandComputed) {
  auto ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 2.0);
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  std::vector<double> x = {1, 2, 3, 4};
  std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> z = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, SilhouetteSeparatedClusters) {
  // Two tight, well-separated 1-D clusters.
  std::vector<float> points = {0.0f, 0.1f, 0.2f, 10.0f, 10.1f, 10.2f};
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  EXPECT_GT(SilhouetteScore(points, 1, labels), 0.9);
}

TEST(StatsTest, SilhouetteMixedClustersNearZero) {
  std::vector<float> points = {0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  std::vector<int> labels = {0, 1, 0, 1, 0, 1};
  EXPECT_LT(SilhouetteScore(points, 1, labels), 0.1);
}

TEST(StatsTest, SilhouetteSingleClusterIsZero) {
  std::vector<float> points = {0.0f, 1.0f};
  std::vector<int> labels = {0, 0};
  EXPECT_DOUBLE_EQ(SilhouetteScore(points, 1, labels), 0.0);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  common::Rng rng(1);
  std::vector<float> points;
  std::vector<int> truth;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 30; ++i) {
      points.push_back(static_cast<float>(c) * 10.0f +
                       static_cast<float>(rng.Normal(0.0, 0.3)));
      points.push_back(static_cast<float>(rng.Normal(0.0, 0.3)));
      truth.push_back(c);
    }
  }
  auto result = KMeans(points.data(), 90, 2, 3, 50, &rng);
  // Every true cluster must be pure under the recovered assignment.
  for (int c = 0; c < 3; ++c) {
    const int first = result.assignment[static_cast<size_t>(c * 30)];
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(result.assignment[static_cast<size_t>(c * 30 + i)], first);
    }
  }
  EXPECT_LT(result.inertia, 90.0 * 0.5);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  common::Rng rng(2);
  std::vector<float> points = {0.0f, 5.0f, 9.0f};
  auto result = KMeans(points.data(), 3, 1, 3, 20, &rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, DeterministicGivenRngState) {
  std::vector<float> points;
  common::Rng data_rng(3);
  for (int i = 0; i < 50; ++i) {
    points.push_back(static_cast<float>(data_rng.Normal()));
  }
  common::Rng a(7), b(7);
  auto ra = KMeans(points.data(), 50, 1, 4, 30, &a);
  auto rb = KMeans(points.data(), 50, 1, 4, 30, &b);
  EXPECT_EQ(ra.assignment, rb.assignment);
}

TEST(TsneTest, SeparatedClustersStaySeparated) {
  // Two 5-D Gaussian blobs far apart must map to separable 2-D clusters.
  common::Rng rng(4);
  const int per_cluster = 20;
  std::vector<float> points;
  std::vector<int> labels;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      for (int d = 0; d < 5; ++d) {
        points.push_back(static_cast<float>(c * 20.0 + rng.Normal(0.0, 0.5)));
      }
      labels.push_back(c);
    }
  }
  TsneConfig config;
  config.perplexity = 10.0;
  config.iterations = 500;
  auto embedding = Tsne(points, 2 * per_cluster, 5, config, &rng);
  ASSERT_EQ(embedding.size(), static_cast<size_t>(2 * per_cluster * 2));
  // Clusters must remain separable; t-SNE clusters are elongated, so the
  // silhouette threshold is deliberately modest.
  EXPECT_GT(SilhouetteScore(embedding, 2, labels), 0.25);
}

TEST(TsneTest, OutputIsCentered) {
  common::Rng rng(5);
  std::vector<float> points(40);
  for (auto& v : points) v = static_cast<float>(rng.Normal());
  TsneConfig config;
  config.perplexity = 5.0;
  config.iterations = 50;
  auto embedding = Tsne(points, 20, 2, config, &rng);
  for (int d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (int i = 0; i < 20; ++i) mean += embedding[static_cast<size_t>(i * 2 + d)];
    EXPECT_NEAR(mean / 20.0, 0.0, 1e-3);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1.0"});
  table.AddRow({"long-name", "2"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| name      | v   |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 2   |"), std::string::npos);
}

TEST(TablePrinterDeathTest, WrongWidthAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(HarnessTest, TrialMetricsInRange) {
  auto ds = data::MakeDataset("toy", {}).value();
  nn::GnnConfig gnn;
  baselines::TrainOptions train;
  train.epochs = 60;
  baselines::VanillaMethod method(gnn, train);
  auto metrics = RunTrial(&method, ds, 1);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->acc, 0.0);
  EXPECT_LE(metrics->acc, 100.0);
  EXPECT_GE(metrics->auc, 0.0);
  EXPECT_LE(metrics->auc, 100.0);
  EXPECT_GE(metrics->seconds, 0.0);
}

TEST(HarnessTest, RepeatedAggregatesTrials) {
  auto ds = data::MakeDataset("toy", {}).value();
  nn::GnnConfig gnn;
  baselines::TrainOptions train;
  train.epochs = 40;
  baselines::VanillaMethod method(gnn, train);
  auto agg = RunRepeated(&method, ds, 3, 9);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->trials, 3);
  EXPECT_GE(agg->acc.stddev, 0.0);
}

TEST(HarnessTest, RejectsNonPositiveTrials) {
  auto ds = data::MakeDataset("toy", {}).value();
  nn::GnnConfig gnn;
  baselines::VanillaMethod method(gnn, {});
  EXPECT_FALSE(RunRepeated(&method, ds, 0, 1).ok());
}

}  // namespace
}  // namespace fairwos::eval
