// Tests for the dataset layer: splits, standardization, validation, and —
// most importantly — property tests asserting the causal structure every
// synthetic benchmark must plant (proxy correlation with s, label bias,
// sensitive homophily). These properties are what make the fairness
// experiments meaningful.
#include "data/dataset.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/stats.h"

namespace fairwos::data {
namespace {

TEST(SplitTest, SizesAndDisjointness) {
  common::Rng rng(1);
  Split split = MakeSplit(1000, &rng);
  EXPECT_EQ(split.train.size(), 500u);
  EXPECT_EQ(split.val.size(), 250u);
  EXPECT_EQ(split.test.size(), 250u);
  std::set<int64_t> seen;
  for (const auto* part : {&split.train, &split.val, &split.test}) {
    for (int64_t v : *part) EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SplitTest, DeterministicInSeed) {
  common::Rng a(7), b(7);
  EXPECT_EQ(MakeSplit(100, &a).train, MakeSplit(100, &b).train);
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  tensor::Tensor x = tensor::Tensor::FromVector({4, 2},
                                                {1, 10, 2, 20, 3, 30, 4, 40});
  auto stats = StandardizeColumns(&x);
  EXPECT_NEAR(stats.mean[0], 2.5f, 1e-5);
  for (int64_t j = 0; j < 2; ++j) {
    double mean = 0.0, var = 0.0;
    for (int64_t i = 0; i < 4; ++i) mean += x.at(i, j);
    mean /= 4;
    for (int64_t i = 0; i < 4; ++i) var += (x.at(i, j) - mean) * (x.at(i, j) - mean);
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(StandardizeTest, ConstantColumnBecomesZero) {
  tensor::Tensor x = tensor::Tensor::FromVector({3, 1}, {5, 5, 5});
  StandardizeColumns(&x);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(x.at(i, 0), 0.0f);
}

TEST(ValidateTest, AcceptsGenerated) {
  auto ds = MakeDataset("toy", {}).value();
  EXPECT_TRUE(ValidateDataset(ds).ok());
}

TEST(ValidateTest, RejectsBrokenDatasets) {
  auto ds = MakeDataset("toy", {}).value();
  Dataset bad_labels = ds;
  bad_labels.labels[0] = 3;
  EXPECT_FALSE(ValidateDataset(bad_labels).ok());

  Dataset bad_split = ds;
  bad_split.split.val.push_back(bad_split.split.train[0]);
  EXPECT_FALSE(ValidateDataset(bad_split).ok());

  Dataset bad_size = ds;
  bad_size.sens.pop_back();
  EXPECT_FALSE(ValidateDataset(bad_size).ok());
}

TEST(RegistryTest, UnknownNameNotFound) {
  auto r = MakeDataset("no-such-dataset", {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kNotFound);
}

TEST(RegistryTest, BadScaleRejected) {
  DatasetOptions options;
  options.scale = 0.5;
  EXPECT_FALSE(MakeDataset("bail", options).ok());
}

TEST(RegistryTest, AllBenchmarksGenerate) {
  DatasetOptions options;
  options.scale = 60.0;  // keep the test fast
  for (const auto& name : BenchmarkNames()) {
    auto ds = MakeDataset(name, options);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_TRUE(ValidateDataset(*ds).ok()) << name;
    EXPECT_GE(ds->num_nodes(), 400) << name << ": scale floor";
  }
}

TEST(RegistryTest, DeterministicInSeed) {
  DatasetOptions options;
  options.scale = 60.0;
  options.seed = 5;
  auto a = MakeDataset("bail", options).value();
  auto b = MakeDataset("bail", options).value();
  EXPECT_TRUE(a.features.ValueEquals(b.features));
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  options.seed = 6;
  auto c = MakeDataset("bail", options).value();
  EXPECT_FALSE(a.features.ValueEquals(c.features));
}

TEST(RegistryTest, AttributeCountsMatchTableOne) {
  DatasetOptions options;
  options.scale = 60.0;
  EXPECT_EQ(MakeDataset("bail", options)->num_attrs(), 18);
  EXPECT_EQ(MakeDataset("credit", options)->num_attrs(), 13);
  EXPECT_EQ(MakeDataset("pokec-z", options)->num_attrs(), 277);
  EXPECT_EQ(MakeDataset("pokec-n", options)->num_attrs(), 266);
  EXPECT_EQ(MakeDataset("nba", options)->num_attrs(), 39);
  EXPECT_EQ(MakeDataset("occupation", options)->num_attrs(), 768);
}

// --- Causal-structure property tests ----------------------------------------

/// Generated datasets must leak s through the proxy block, correlate labels
/// with merit-carrying attributes, and segregate edges by group — the three
/// bias channels of DESIGN.md §1.
class SyntheticPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SyntheticPropertyTest, ProxiesCorrelateWithSens) {
  DatasetOptions options;
  options.scale = 30.0;
  auto ds = MakeDataset(GetParam(), options).value();
  const int64_t n = ds.num_nodes();
  std::vector<double> sv(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) sv[static_cast<size_t>(i)] = ds.sens[static_cast<size_t>(i)];
  // The first attribute is in the proxy block for every profile.
  std::vector<double> proxy(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) proxy[static_cast<size_t>(i)] = ds.features.at(i, 0);
  EXPECT_GT(std::abs(eval::PearsonCorrelation(proxy, sv)), 0.05)
      << GetParam() << ": proxy block must leak s";
}

TEST_P(SyntheticPropertyTest, SensitiveHomophilyAboveChance) {
  DatasetOptions options;
  options.scale = 30.0;
  auto ds = MakeDataset(GetParam(), options).value();
  // Chance level for group homophily is p² + (1-p)²; generated graphs must
  // exceed it (the s → topology channel).
  double p = 0.0;
  for (int v : ds.sens) p += v;
  p /= static_cast<double>(ds.sens.size());
  const double chance = p * p + (1 - p) * (1 - p);
  EXPECT_GT(ds.graph.EdgeHomophily(ds.sens), chance + 0.02) << GetParam();
}

TEST_P(SyntheticPropertyTest, LabelsLearnableFromFeatures) {
  DatasetOptions options;
  options.scale = 30.0;
  auto ds = MakeDataset(GetParam(), options).value();
  const int64_t n = ds.num_nodes();
  std::vector<double> yv(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) yv[static_cast<size_t>(i)] = ds.labels[static_cast<size_t>(i)];
  // At least one attribute must carry label signal.
  double best = 0.0;
  for (int64_t j = 0; j < ds.num_attrs(); ++j) {
    std::vector<double> col(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) col[static_cast<size_t>(i)] = ds.features.at(i, j);
    best = std::max(best, std::abs(eval::PearsonCorrelation(col, yv)));
  }
  EXPECT_GT(best, 0.2) << GetParam();
}

TEST_P(SyntheticPropertyTest, AverageDegreeNearTarget) {
  DatasetOptions options;
  options.scale = 30.0;
  auto ds = MakeDataset(GetParam(), options).value();
  for (const auto& spec : Profiles()) {
    if (spec.name != GetParam()) continue;
    const double target =
        std::min(spec.avg_degree,
                 static_cast<double>(ds.num_nodes() - 1) / 2.0);
    EXPECT_NEAR(ds.graph.AverageDegree(), target, 0.15 * target + 1.0)
        << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SyntheticPropertyTest,
                         ::testing::Values("bail", "credit", "pokec-z",
                                           "pokec-n", "nba", "occupation"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace fairwos::data
