// Tests for the Fairwos core: the KKT λ-solver (against brute force and
// its simplex invariants), the counterfactual search (constraint and
// ordering invariants), the encoder, and the end-to-end trainer.
#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/counterfactual.h"
#include "core/encoder.h"
#include "core/fairwos.h"
#include "core/lambda_solver.h"
#include "data/synthetic.h"

namespace fairwos::core {
namespace {

// --- Simplex projection / λ solver -------------------------------------------

double SimplexObjective(const std::vector<double>& lambda,
                        const std::vector<double>& d, double alpha) {
  double obj = 0.0;
  for (size_t i = 0; i < lambda.size(); ++i) {
    obj += alpha * lambda[i] * d[i] + lambda[i] * lambda[i];
  }
  return obj;
}

TEST(SimplexProjectionTest, AlreadyOnSimplexIsFixedPoint) {
  std::vector<double> v = {0.2, 0.3, 0.5};
  auto p = ProjectOntoSimplex(v);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(p[i], v[i], 1e-12);
}

TEST(SimplexProjectionTest, UniformFromEqualInputs) {
  auto p = ProjectOntoSimplex({-3.0, -3.0, -3.0, -3.0});
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(SimplexProjectionTest, DominantCoordinateTakesAll) {
  auto p = ProjectOntoSimplex({10.0, 0.0, 0.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(SimplexProjectionTest, SingleElement) {
  auto p = ProjectOntoSimplex({-42.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

class SimplexRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplexRandomTest, OutputSatisfiesConstraints) {
  common::Rng rng(GetParam());
  std::vector<double> v(1 + rng.UniformInt(8));
  for (auto& x : v) x = rng.Normal(0.0, 3.0);
  auto p = ProjectOntoSimplex(v);
  double sum = 0.0;
  for (double x : p) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(SimplexRandomTest, IsNearestSimplexPointVsRandomCandidates) {
  common::Rng rng(GetParam() + 1000);
  std::vector<double> v(3);
  for (auto& x : v) x = rng.Normal(0.0, 2.0);
  auto p = ProjectOntoSimplex(v);
  auto dist = [&](const std::vector<double>& q) {
    double d = 0.0;
    for (size_t i = 0; i < v.size(); ++i) d += (q[i] - v[i]) * (q[i] - v[i]);
    return d;
  };
  const double dp = dist(p);
  // Random simplex points must never beat the projection.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> q(3);
    double sum = 0.0;
    for (auto& x : q) {
      x = -std::log(std::max(rng.Uniform(), 1e-12));
      sum += x;
    }
    for (auto& x : q) x /= sum;
    EXPECT_GE(dist(q) + 1e-9, dp);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range<uint64_t>(0, 10));

TEST(SolveLambdaTest, MatchesBruteForceGrid) {
  const std::vector<double> d = {4.0, 1.0, 2.5};
  const double alpha = 1.5;
  auto lambda = SolveLambda(d, alpha, /*invert_preference=*/false);
  // Brute-force over a fine grid of the 2-simplex.
  double best = 1e18;
  const int steps = 200;
  for (int i = 0; i <= steps; ++i) {
    for (int j = 0; j <= steps - i; ++j) {
      std::vector<double> q = {static_cast<double>(i) / steps,
                               static_cast<double>(j) / steps,
                               static_cast<double>(steps - i - j) / steps};
      best = std::min(best, SimplexObjective(q, d, alpha));
    }
  }
  EXPECT_NEAR(SimplexObjective(lambda, d, alpha), best, 1e-3);
}

TEST(SolveLambdaTest, Eq24PrefersSmallDistances) {
  auto lambda = SolveLambda({5.0, 1.0, 3.0}, 1.0, /*invert_preference=*/false);
  EXPECT_GT(lambda[1], lambda[2]);
  EXPECT_GE(lambda[2], lambda[0]);
}

TEST(SolveLambdaTest, InvertedPrefersLargeDistances) {
  auto lambda = SolveLambda({5.0, 1.0, 3.0}, 1.0, /*invert_preference=*/true);
  EXPECT_GT(lambda[0], lambda[2]);
  EXPECT_GE(lambda[2], lambda[1]);
}

TEST(SolveLambdaTest, AlphaZeroGivesUniform) {
  auto lambda = SolveLambda({9.0, 1.0, 4.0, 2.0}, 0.0, false);
  for (double l : lambda) EXPECT_NEAR(l, 0.25, 1e-12);
}

TEST(SolveLambdaTest, SmallAlphaStaysDense) {
  // With a mild α the regulariser dominates and every attribute keeps some
  // weight (the paper's intended soft weighting).
  auto lambda = SolveLambda({3.0, 1.0, 2.0}, 0.1, false);
  for (double l : lambda) EXPECT_GT(l, 0.0);
}

TEST(SolveLambdaTest, LargeAlphaSparsifies) {
  auto lambda = SolveLambda({3.0, 1.0, 2.0}, 100.0, false);
  EXPECT_NEAR(lambda[1], 1.0, 1e-9);
  EXPECT_NEAR(lambda[0] + lambda[2], 0.0, 1e-9);
}

// --- Median bins -------------------------------------------------------------

TEST(MedianBinsTest, SplitsEachColumnInHalf) {
  common::Rng rng(1);
  tensor::Tensor x = tensor::Tensor::RandNormal({101, 4}, 1.0f, &rng);
  auto bins = MedianBins(x);
  for (int64_t j = 0; j < 4; ++j) {
    int64_t ones = 0;
    for (int64_t i = 0; i < 101; ++i) {
      ones += bins[static_cast<size_t>(i)][static_cast<size_t>(j)];
    }
    // Median split: the high side has ceil(n/2) elements for distinct values.
    EXPECT_NEAR(static_cast<double>(ones), 50.5, 2.0);
  }
}

TEST(MedianBinsTest, ConstantColumnAllOnes) {
  tensor::Tensor x = tensor::Tensor::Full({5, 1}, 2.0f);
  auto bins = MedianBins(x);
  for (const auto& row : bins) EXPECT_EQ(row[0], 1);  // v >= median
}

// --- Counterfactual search ---------------------------------------------------

CounterfactualSet SmallSearch(common::Rng* rng, int64_t top_k) {
  // 8 nodes on a line in embedding space; labels alternate in two halves;
  // a single pseudo-attribute splits odd/even.
  std::vector<float> emb;
  std::vector<std::vector<uint8_t>> bins;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    emb.push_back(static_cast<float>(i));
    bins.push_back({static_cast<uint8_t>(i % 2)});
    labels.push_back(i < 4 ? 0 : 1);
  }
  CounterfactualConfig config;
  config.top_k = top_k;
  config.sample_nodes = 0;      // all
  config.candidate_pool = 0;    // all
  return FindCounterfactuals(tensor::Tensor::FromVector({8, 1}, emb), bins,
                             labels, config, rng);
}

TEST(CounterfactualTest, MatchesRespectConstraints) {
  common::Rng rng(2);
  auto cf = SmallSearch(&rng, 2);
  ASSERT_EQ(cf.num_attrs(), 1);
  ASSERT_EQ(cf.anchors.size(), 8u);
  for (size_t a = 0; a < cf.anchors.size(); ++a) {
    const int64_t v = cf.anchors[a];
    for (int64_t m : cf.matches[0][a]) {
      EXPECT_NE(m, v) << "no self-matches";
      EXPECT_EQ(v < 4, m < 4) << "same (pseudo-)label required";
      EXPECT_NE(v % 2, m % 2) << "different pseudo-attribute bin required";
    }
  }
}

TEST(CounterfactualTest, NearestFirstOrdering) {
  common::Rng rng(3);
  auto cf = SmallSearch(&rng, 3);
  for (size_t a = 0; a < cf.anchors.size(); ++a) {
    const auto& slot = cf.matches[0][a];
    const int64_t v = cf.anchors[a];
    for (size_t k = 1; k < slot.size(); ++k) {
      EXPECT_LE(std::abs(slot[k - 1] - v), std::abs(slot[k] - v))
          << "matches must be ordered by increasing embedding distance";
    }
  }
}

TEST(CounterfactualTest, TopKBoundsMatchCount) {
  common::Rng rng(4);
  auto cf = SmallSearch(&rng, 2);
  for (const auto& per_anchor : cf.matches[0]) {
    EXPECT_LE(per_anchor.size(), 2u);
    // Each half has 2 nodes of each parity, so 2 matches always exist.
    EXPECT_EQ(per_anchor.size(), 2u);
  }
}

TEST(CounterfactualTest, ExhaustedConstraintGivesFewerMatches) {
  // All nodes share one bin value: no counterfactuals can exist.
  common::Rng rng(5);
  std::vector<std::vector<uint8_t>> bins(4, {1});
  std::vector<int> labels = {0, 0, 0, 0};
  CounterfactualConfig config;
  config.sample_nodes = 0;
  config.candidate_pool = 0;
  auto cf = FindCounterfactuals(
      tensor::Tensor::FromVector({4, 1}, {0, 1, 2, 3}), bins, labels, config,
      &rng);
  for (const auto& per_anchor : cf.matches[0]) EXPECT_TRUE(per_anchor.empty());
}

TEST(CounterfactualTest, SamplingBoundsRespected) {
  common::Rng rng(6);
  std::vector<float> emb(100);
  std::vector<std::vector<uint8_t>> bins(100, {0});
  std::vector<int> labels(100, 0);
  for (int i = 0; i < 100; ++i) {
    emb[static_cast<size_t>(i)] = static_cast<float>(i);
    bins[static_cast<size_t>(i)][0] = static_cast<uint8_t>(i % 2);
  }
  CounterfactualConfig config;
  config.sample_nodes = 10;
  config.candidate_pool = 20;
  auto cf = FindCounterfactuals(
      tensor::Tensor::FromVector({100, 1}, std::move(emb)), bins, labels,
      config, &rng);
  EXPECT_EQ(cf.anchors.size(), 10u);
}

// --- Encoder ------------------------------------------------------------------

TEST(EncoderTest, ProducesRequestedDimensionAndLearns) {
  auto ds = data::MakeDataset("toy", {}).value();
  EncoderConfig config;
  config.out_dim = 8;
  config.epochs = 300;
  PretrainedEncoder encoder(config, ds, /*seed=*/3);
  EXPECT_EQ(encoder.pseudo_attributes().dim(0), ds.num_nodes());
  EXPECT_EQ(encoder.pseudo_attributes().dim(1), 8);
  // The encoder head must beat chance on validation by a clear margin.
  EXPECT_GE(encoder.best_val_accuracy_pct(), 58.0);
}

TEST(EncoderTest, DeterministicInSeed) {
  auto ds = data::MakeDataset("toy", {}).value();
  EncoderConfig config;
  config.epochs = 30;
  PretrainedEncoder a(config, ds, 9);
  PretrainedEncoder b(config, ds, 9);
  EXPECT_TRUE(a.pseudo_attributes().ValueEquals(b.pseudo_attributes()));
}

// --- Trainer (integration) ----------------------------------------------------

FairwosConfig FastConfig() {
  FairwosConfig config;
  config.pretrain_epochs = 120;
  config.finetune_epochs = 12;
  config.encoder.epochs = 60;
  return config;
}

TEST(FairwosTrainerTest, RunsEndToEndOnToy) {
  auto ds = data::MakeDataset("toy", {}).value();
  FairwosStats stats;
  auto out = TrainFairwos(FastConfig(), ds, 11, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(static_cast<int64_t>(out->pred.size()), ds.num_nodes());
  EXPECT_EQ(out->embeddings.dim(0), ds.num_nodes());
  EXPECT_TRUE(out->pseudo_sens.defined());
  EXPECT_EQ(stats.finetune_epochs_run, 12);
  // λ lives on the simplex.
  double sum = 0.0;
  for (double l : stats.lambda) {
    EXPECT_GE(l, 0.0);
    sum += l;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(FairwosTrainerTest, DeterministicInSeed) {
  auto ds = data::MakeDataset("toy", {}).value();
  auto a = TrainFairwos(FastConfig(), ds, 5, nullptr);
  auto b = TrainFairwos(FastConfig(), ds, 5, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pred, b->pred);
}

TEST(FairwosTrainerTest, AblationSwitchesChangeBehaviour) {
  auto ds = data::MakeDataset("toy", {}).value();
  FairwosConfig base = FastConfig();
  FairwosConfig no_encoder = base;
  no_encoder.use_encoder = false;
  auto with_encoder = TrainFairwos(base, ds, 21, nullptr);
  auto without_encoder = TrainFairwos(no_encoder, ds, 21, nullptr);
  ASSERT_TRUE(with_encoder.ok());
  ASSERT_TRUE(without_encoder.ok());
  EXPECT_FALSE(without_encoder->pseudo_sens.defined());
  EXPECT_TRUE(with_encoder->pseudo_sens.defined());
}

TEST(FairwosTrainerTest, WithoutFairnessSkipsFinetuning) {
  auto ds = data::MakeDataset("toy", {}).value();
  FairwosConfig config = FastConfig();
  config.use_fairness = false;
  FairwosStats stats;
  auto out = TrainFairwos(config, ds, 3, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(stats.finetune_epochs_run, 0);
  EXPECT_TRUE(stats.lambda.empty());
}

TEST(FairwosTrainerTest, WithoutWeightUpdateKeepsUniformLambda) {
  auto ds = data::MakeDataset("toy", {}).value();
  FairwosConfig config = FastConfig();
  config.use_weight_update = false;
  FairwosStats stats;
  ASSERT_TRUE(TrainFairwos(config, ds, 3, &stats).ok());
  for (double l : stats.lambda) {
    EXPECT_NEAR(l, 1.0 / static_cast<double>(stats.lambda.size()), 1e-9);
  }
}

TEST(FairwosTrainerTest, RejectsNegativeAlpha) {
  auto ds = data::MakeDataset("toy", {}).value();
  FairwosConfig config = FastConfig();
  config.alpha = -1.0;
  EXPECT_FALSE(TrainFairwos(config, ds, 3, nullptr).ok());
}

TEST(FairwosMethodTest, ReportsTrainingTime) {
  auto ds = data::MakeDataset("toy", {}).value();
  FairwosMethod method("Fairwos", FastConfig());
  auto fitted = method.Fit(ds, 1);
  ASSERT_TRUE(fitted.ok());
  EXPECT_GT((*fitted)->train_seconds(), 0.0);
  EXPECT_EQ(method.name(), "Fairwos");
}

}  // namespace
}  // namespace fairwos::core
