// Unit tests for the tensor engine: construction, shape checks, op forward
// values against hand-computed results, and finite-difference gradient
// checks for every differentiable op.
#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/ops.h"

namespace fairwos::tensor {
namespace {

using ::fairwos::testing::ExpectGradientsMatch;

TEST(TensorTest, ZerosOnesFull) {
  Tensor z = Tensor::Zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.rank(), 2);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor o = Tensor::Ones({4});
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);
  Tensor f = Tensor::Full({2, 2}, 3.5f);
  for (float v : f.data()) EXPECT_EQ(v, 3.5f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 1), 5.0f);
  t.set(1, 1, -5.0f);
  EXPECT_EQ(t.at(1, 1), -5.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, RandUniformRange) {
  common::Rng rng(1);
  Tensor t = Tensor::RandUniform({100}, -2.0f, 3.0f, &rng);
  for (float v : t.data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(TensorTest, RandNormalMoments) {
  common::Rng rng(2);
  Tensor t = Tensor::RandNormal({10000}, 2.0f, &rng);
  double mean = 0.0;
  for (float v : t.data()) mean += v;
  mean /= t.numel();
  EXPECT_NEAR(mean, 0.0, 0.1);
  double var = 0.0;
  for (float v : t.data()) var += (v - mean) * (v - mean);
  var /= t.numel();
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(TensorTest, DetachCopySharesNothing) {
  Tensor a = Tensor::FromVector({2}, {1, 2}).set_requires_grad(true);
  Tensor b = a.DetachCopy();
  EXPECT_FALSE(b.requires_grad());
  b.mutable_data()[0] = 99.0f;
  EXPECT_EQ(a.at(0), 1.0f);
}

TEST(TensorTest, ValueEquals) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  EXPECT_TRUE(a.ValueEquals(Tensor::FromVector({2}, {1, 2})));
  EXPECT_FALSE(a.ValueEquals(Tensor::FromVector({2}, {1, 3})));
  EXPECT_FALSE(a.ValueEquals(Tensor::FromVector({1, 2}, {1, 2})));
}

// --- Forward values ---------------------------------------------------------

TEST(OpsForwardTest, AddSubMul) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {10, 20, 30, 40});
  EXPECT_TRUE(Add(a, b).ValueEquals(Tensor::FromVector({2, 2}, {11, 22, 33, 44})));
  EXPECT_TRUE(Sub(b, a).ValueEquals(Tensor::FromVector({2, 2}, {9, 18, 27, 36})));
  EXPECT_TRUE(Mul(a, b).ValueEquals(Tensor::FromVector({2, 2}, {10, 40, 90, 160})));
}

TEST(OpsForwardTest, ScalarOps) {
  Tensor a = Tensor::FromVector({3}, {1, -2, 3});
  EXPECT_TRUE(AddScalar(a, 1.0f).ValueEquals(Tensor::FromVector({3}, {2, -1, 4})));
  EXPECT_TRUE(MulScalar(a, -2.0f).ValueEquals(Tensor::FromVector({3}, {-2, 4, -6})));
  EXPECT_TRUE(Neg(a).ValueEquals(Tensor::FromVector({3}, {-1, 2, -3})));
}

TEST(OpsForwardTest, MatMulHandComputed) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_TRUE(c.ValueEquals(Tensor::FromVector({2, 2}, {58, 64, 139, 154})));
}

TEST(OpsForwardTest, TransposeRoundTrip) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 2);
  EXPECT_EQ(t.at(0, 1), 4.0f);
  EXPECT_TRUE(Transpose(t).ValueEquals(a));
}

TEST(OpsForwardTest, AddRowBroadcast) {
  Tensor x = Tensor::FromVector({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Tensor::FromVector({3}, {5, 6, 7});
  EXPECT_TRUE(AddRowBroadcast(x, b).ValueEquals(
      Tensor::FromVector({2, 3}, {5, 6, 7, 6, 7, 8})));
}

TEST(OpsForwardTest, ReluFamily) {
  Tensor a = Tensor::FromVector({4}, {-2, -0.5f, 0.5f, 2});
  EXPECT_TRUE(Relu(a).ValueEquals(Tensor::FromVector({4}, {0, 0, 0.5f, 2})));
  Tensor leaky = LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(leaky.at(0), -0.2f);
  EXPECT_FLOAT_EQ(leaky.at(3), 2.0f);
}

TEST(OpsForwardTest, SigmoidTanhValues) {
  Tensor a = Tensor::FromVector({3}, {0, 100, -100});
  Tensor s = Sigmoid(a);
  EXPECT_FLOAT_EQ(s.at(0), 0.5f);
  EXPECT_NEAR(s.at(1), 1.0f, 1e-6);
  EXPECT_NEAR(s.at(2), 0.0f, 1e-6);
  EXPECT_NEAR(Tanh(a).at(0), 0.0f, 1e-6);
}

TEST(OpsForwardTest, Reductions) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).item(), 2.5f);
  EXPECT_FLOAT_EQ(SumSquares(a).item(), 30.0f);
}

TEST(OpsForwardTest, RowsGather) {
  Tensor a = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor r = Rows(a, {2, 0, 2});
  EXPECT_TRUE(r.ValueEquals(Tensor::FromVector({3, 2}, {5, 6, 1, 2, 5, 6})));
}

TEST(OpsForwardTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, -1, 0, 1000});
  Tensor s = Softmax(a);
  for (int i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 3; ++j) sum += s.at(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_NEAR(s.at(1, 2), 1.0f, 1e-5);  // extreme logit, no overflow
}

TEST(OpsForwardTest, SoftmaxCrossEntropyMatchesManual) {
  // Two rows; select only row 0 with label 1.
  Tensor logits = Tensor::FromVector({2, 2}, {1, 2, 0, 0});
  Tensor loss = SoftmaxCrossEntropy(logits, {1, 0}, {0});
  const double expected = std::log(std::exp(1.0) + std::exp(2.0)) - 2.0;
  EXPECT_NEAR(loss.item(), expected, 1e-5);
}

TEST(OpsForwardTest, BceWithLogitsMatchesManual) {
  Tensor logits = Tensor::FromVector({2}, {0.5f, -1.0f});
  Tensor loss = BceWithLogits(logits, {1.0f, 0.0f}, {0, 1});
  const double l0 = std::log(1.0 + std::exp(-0.5));
  const double l1 = std::log(1.0 + std::exp(-1.0));
  EXPECT_NEAR(loss.item(), (l0 + l1) / 2.0, 1e-5);
}

TEST(OpsForwardTest, SoftCrossEntropyMatchesHardWhenOneHot) {
  Tensor logits = Tensor::FromVector({2, 2}, {1, 2, -1, 3});
  Tensor onehot = Tensor::FromVector({2, 2}, {0, 1, 1, 0});
  Tensor soft = SoftCrossEntropy(logits, onehot, {0, 1});
  Tensor hard = SoftmaxCrossEntropy(logits, {1, 0}, {0, 1});
  EXPECT_NEAR(soft.item(), hard.item(), 1e-5);
}

TEST(OpsForwardTest, SpMMMatchesDense) {
  // 3x3 matrix times 3x2 features.
  auto adj = SparseMatrix::FromCoo(
      3, 3, {{0, 1, 2.0f}, {1, 0, 1.0f}, {1, 2, 3.0f}, {2, 2, 4.0f}});
  Tensor x = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor y = SpMM(adj, x);
  // Row 0: 2 * row1 = (6, 8); row 1: row0 + 3*row2 = (16, 20); row 2: 4*row2.
  EXPECT_TRUE(y.ValueEquals(Tensor::FromVector({3, 2}, {6, 8, 16, 20, 20, 24})));
}

TEST(OpsForwardTest, DropoutEvalIsIdentityAndTrainScales) {
  common::Rng rng(3);
  Tensor x = Tensor::Ones({1000});
  Tensor eval_out = Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_TRUE(eval_out.ValueEquals(x));
  Tensor train_out = Dropout(x, 0.5f, /*training=*/true, &rng);
  double mean = 0.0;
  int64_t zeros = 0;
  for (float v : train_out.data()) {
    mean += v;
    if (v == 0.0f) ++zeros;
    if (v != 0.0f) EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scale
  }
  mean /= train_out.numel();
  EXPECT_NEAR(mean, 1.0, 0.15);
  EXPECT_GT(zeros, 350);
  EXPECT_LT(zeros, 650);
}

// --- Shape violations are fatal ---------------------------------------------

using OpsDeathTest = ::testing::Test;

TEST(OpsDeathTest, AddShapeMismatchAborts) {
  Tensor a = Tensor::Zeros({2, 2});
  Tensor b = Tensor::Zeros({2, 3});
  EXPECT_DEATH(Add(a, b), "shape mismatch");
}

TEST(OpsDeathTest, MatMulInnerMismatchAborts) {
  EXPECT_DEATH(MatMul(Tensor::Zeros({2, 3}), Tensor::Zeros({2, 3})),
               "inner dimension mismatch");
}

TEST(OpsDeathTest, BackwardOnNonScalarAborts) {
  Tensor a = Tensor::Zeros({2});
  EXPECT_DEATH(a.Backward(), "scalar");
}

TEST(OpsDeathTest, ItemOnMultiElementAborts) {
  EXPECT_DEATH(Tensor::Zeros({2}).item(), "one-element");
}

// --- Gradient checks ---------------------------------------------------------

TEST(GradTest, AddSubMulChain) {
  common::Rng rng(10);
  Tensor x = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  Tensor c = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  ExpectGradientsMatch(x, [&] {
    return Sum(Mul(Add(x, c), Sub(x, c)));
  });
}

TEST(GradTest, MatMulBothSides) {
  common::Rng rng(11);
  Tensor a = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  Tensor b = Tensor::RandNormal({4, 2}, 1.0f, &rng);
  b.set_requires_grad(true);
  ExpectGradientsMatch(a, [&] { return SumSquares(MatMul(a, b)); });
  ExpectGradientsMatch(b, [&] { return SumSquares(MatMul(a, b)); });
}

TEST(GradTest, TransposeGrad) {
  common::Rng rng(12);
  Tensor a = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  Tensor w = Tensor::RandNormal({3, 2}, 1.0f, &rng);
  ExpectGradientsMatch(a, [&] { return SumSquares(MatMul(Transpose(a), w)); });
}

TEST(GradTest, AddRowBroadcastBias) {
  common::Rng rng(13);
  Tensor x = Tensor::RandNormal({5, 3}, 1.0f, &rng);
  Tensor b = Tensor::RandNormal({3}, 1.0f, &rng);
  ExpectGradientsMatch(b, [&] { return SumSquares(AddRowBroadcast(x, b)); });
  ExpectGradientsMatch(x, [&] { return SumSquares(AddRowBroadcast(x, b)); });
}

TEST(GradTest, Nonlinearities) {
  common::Rng rng(14);
  Tensor x = Tensor::RandNormal({4, 4}, 1.0f, &rng);
  ExpectGradientsMatch(x, [&] { return Sum(Sigmoid(x)); });
  ExpectGradientsMatch(x, [&] { return Sum(Tanh(x)); });
  ExpectGradientsMatch(x, [&] { return Sum(LeakyRelu(x, 0.1f)); });
  // ReLU is non-differentiable at 0; inputs here are generic reals.
  ExpectGradientsMatch(x, [&] { return Sum(Relu(x)); });
}

TEST(GradTest, MeanAndSumSquares) {
  common::Rng rng(15);
  Tensor x = Tensor::RandNormal({6}, 1.0f, &rng);
  ExpectGradientsMatch(x, [&] { return Mean(x); });
  ExpectGradientsMatch(x, [&] { return SumSquares(x); });
}

TEST(GradTest, RowsGatherScatter) {
  common::Rng rng(16);
  Tensor x = Tensor::RandNormal({5, 3}, 1.0f, &rng);
  // Repeated rows check the scatter-add accumulation.
  ExpectGradientsMatch(x, [&] { return SumSquares(Rows(x, {0, 2, 2, 4})); });
}

TEST(GradTest, SoftmaxGrad) {
  common::Rng rng(17);
  Tensor x = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  Tensor w = Tensor::RandNormal({3, 4}, 1.0f, &rng);
  ExpectGradientsMatch(x, [&] { return Sum(Mul(Softmax(x), w)); });
}

TEST(GradTest, SoftmaxCrossEntropyGrad) {
  common::Rng rng(18);
  Tensor logits = Tensor::RandNormal({4, 3}, 1.0f, &rng);
  std::vector<int> labels = {0, 2, 1, 1};
  ExpectGradientsMatch(logits, [&] {
    return SoftmaxCrossEntropy(logits, labels, {0, 1, 3});
  });
}

TEST(GradTest, BceWithLogitsGrad) {
  common::Rng rng(19);
  Tensor logits = Tensor::RandNormal({5}, 1.0f, &rng);
  std::vector<float> targets = {1, 0, 1, 1, 0};
  ExpectGradientsMatch(logits, [&] {
    return BceWithLogits(logits, targets, {0, 1, 2, 4});
  });
}

TEST(GradTest, SoftCrossEntropyGrad) {
  common::Rng rng(20);
  Tensor logits = Tensor::RandNormal({3, 3}, 1.0f, &rng);
  Tensor targets = Tensor::FromVector(
      {3, 3}, {0.2f, 0.3f, 0.5f, 1.0f, 0.0f, 0.0f, 0.1f, 0.8f, 0.1f});
  ExpectGradientsMatch(logits, [&] {
    return SoftCrossEntropy(logits, targets, {0, 1, 2});
  });
}

TEST(GradTest, SpMMGrad) {
  common::Rng rng(21);
  auto adj = SparseMatrix::FromCoo(
      4, 4,
      {{0, 1, 0.5f}, {1, 0, 0.5f}, {1, 2, 1.5f}, {2, 3, -1.0f}, {3, 3, 2.0f}});
  Tensor x = Tensor::RandNormal({4, 3}, 1.0f, &rng);
  ExpectGradientsMatch(x, [&] { return SumSquares(SpMM(adj, x)); });
}

TEST(GradTest, GradAccumulatesAcrossUses) {
  // x used twice: d/dx (sum(x) + sum(x*x)) = 1 + 2x.
  Tensor x = Tensor::FromVector({3}, {1, 2, 3}).set_requires_grad(true);
  Tensor loss = Add(Sum(x), SumSquares(x));
  loss.Backward();
  ASSERT_EQ(x.grad().size(), 3u);
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 5.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 7.0f);
}

TEST(GradTest, NoGradGuardSuppressesTape) {
  Tensor x = Tensor::FromVector({2}, {1, 2}).set_requires_grad(true);
  tensor::NoGradGuard guard;
  Tensor y = Sum(Mul(x, x));
  EXPECT_FALSE(y.requires_grad());
}

TEST(GradTest, ZeroGradClears) {
  Tensor x = Tensor::FromVector({2}, {1, 2}).set_requires_grad(true);
  Sum(x).Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 1.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(GradTest, BackwardTwiceAccumulates) {
  Tensor x = Tensor::FromVector({2}, {1, 2}).set_requires_grad(true);
  Tensor loss = Sum(x);
  loss.Backward();
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
}

TEST(GradTest, DiamondGraph) {
  // y = x*x; loss = sum(y) + sum(y) — shared intermediate node.
  Tensor x = Tensor::FromVector({2}, {3, -4}).set_requires_grad(true);
  Tensor y = Mul(x, x);
  Tensor loss = Add(Sum(y), Sum(y));
  loss.Backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 12.0f);   // 2 * 2x
  EXPECT_FLOAT_EQ(x.grad()[1], -16.0f);
}

TEST(SparseTest, FromCooSumsDuplicates) {
  auto m = SparseMatrix::FromCoo(2, 2, {{0, 1, 1.0f}, {0, 1, 2.0f}});
  EXPECT_EQ(m->nnz(), 1);
  EXPECT_FLOAT_EQ(m->values()[0], 3.0f);
}

TEST(SparseTest, TransposeValues) {
  auto m = SparseMatrix::FromCoo(2, 3, {{0, 2, 5.0f}, {1, 0, 7.0f}});
  const SparseMatrix& t = m->Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  // (2,0)=5, (0,1)=7 in the transpose.
  std::vector<float> y(3 * 1);
  std::vector<float> x = {1.0f, 10.0f};
  t.Multiply(x.data(), 1, y.data());
  EXPECT_FLOAT_EQ(y[0], 70.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 5.0f);
}

}  // namespace
}  // namespace fairwos::tensor
