// Statistical quality tests for the RNG: chi-square uniformity, serial
// independence, and higher-moment checks for the normal generator. These
// guard the foundation every synthetic dataset and initializer stands on.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fairwos::common {
namespace {

/// Chi-square statistic for observed counts vs a uniform expectation.
double ChiSquare(const std::vector<int64_t>& counts, double expected) {
  double stat = 0.0;
  for (int64_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

TEST(RngStatTest, UniformIntChiSquare) {
  // 16 bins, 64k draws: chi-square(15) > 40 has p < 5e-4 — a generator
  // failing this is broken, not unlucky.
  Rng rng(2024);
  const int bins = 16;
  const int64_t draws = 65536;
  std::vector<int64_t> counts(bins, 0);
  for (int64_t i = 0; i < draws; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(bins))];
  }
  EXPECT_LT(ChiSquare(counts, static_cast<double>(draws) / bins), 40.0);
}

TEST(RngStatTest, UniformDoubleBinnedChiSquare) {
  Rng rng(2025);
  const int bins = 20;
  const int64_t draws = 40000;
  std::vector<int64_t> counts(bins, 0);
  for (int64_t i = 0; i < draws; ++i) {
    int bin = static_cast<int>(rng.Uniform() * bins);
    if (bin == bins) bin = bins - 1;
    ++counts[static_cast<size_t>(bin)];
  }
  // chi-square(19) > 50 has p < 1e-4.
  EXPECT_LT(ChiSquare(counts, static_cast<double>(draws) / bins), 50.0);
}

TEST(RngStatTest, SerialCorrelationNearZero) {
  Rng rng(2026);
  const int64_t n = 50000;
  double prev = rng.Uniform();
  double sum_xy = 0.0, sum_x = 0.0, sum_sq = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double cur = rng.Uniform();
    sum_xy += prev * cur;
    sum_x += cur;
    sum_sq += cur * cur;
    prev = cur;
  }
  const double mean = sum_x / n;
  const double var = sum_sq / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_LT(std::abs(cov / var), 0.02);
}

TEST(RngStatTest, NormalSkewAndKurtosis) {
  Rng rng(2027);
  const int64_t n = 100000;
  double m1 = 0, m2 = 0, m3 = 0, m4 = 0;
  std::vector<double> draws(static_cast<size_t>(n));
  for (auto& d : draws) {
    d = rng.Normal();
    m1 += d;
  }
  m1 /= n;
  for (double d : draws) {
    const double c = d - m1;
    m2 += c * c;
    m3 += c * c * c;
    m4 += c * c * c * c;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  const double skew = m3 / std::pow(m2, 1.5);
  const double kurtosis = m4 / (m2 * m2);
  EXPECT_NEAR(skew, 0.0, 0.05);
  EXPECT_NEAR(kurtosis, 3.0, 0.1);
}

TEST(RngStatTest, BernoulliTailProbabilities) {
  Rng rng(2028);
  const int64_t n = 100000;
  int64_t hits = 0;
  for (int64_t i = 0; i < n; ++i) hits += rng.Bernoulli(0.01);
  // 1% rate: expect 1000 ± ~5 std (std ≈ 31).
  EXPECT_NEAR(static_cast<double>(hits), 1000.0, 160.0);
}

TEST(RngStatTest, SampleWithoutReplacementIsUniform) {
  // Each element of [0, 10) should appear in a 5-subset with p = 0.5.
  Rng rng(2029);
  const int64_t rounds = 20000;
  std::vector<int64_t> counts(10, 0);
  for (int64_t r = 0; r < rounds; ++r) {
    for (int64_t v : rng.SampleWithoutReplacement(10, 5)) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), rounds * 0.5, rounds * 0.5 * 0.05);
  }
}

TEST(RngStatTest, UniformIntRejectionIsExactForOddModuli) {
  // n = 3 exposes modulo bias in naive implementations.
  Rng rng(2030);
  const int64_t draws = 90000;
  std::vector<int64_t> counts(3, 0);
  for (int64_t i = 0; i < draws; ++i) {
    ++counts[static_cast<size_t>(rng.UniformInt(3))];
  }
  EXPECT_LT(ChiSquare(counts, static_cast<double>(draws) / 3.0), 14.0);
}

}  // namespace
}  // namespace fairwos::common
