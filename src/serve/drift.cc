#include "serve/drift.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace fairwos::serve {
namespace {

/// Columns the model saw as (near-)constant get a floor instead of an
/// exploding z-score; any real movement on such a column is still several
/// floored units.
constexpr double kMinStd = 1e-6;

}  // namespace

DriftMonitor::DriftMonitor(std::vector<float> fit_mean,
                           std::vector<float> fit_std, DriftOptions options)
    : fit_mean_(std::move(fit_mean)),
      fit_std_(std::move(fit_std)),
      options_(options) {
  FW_CHECK_EQ(fit_mean_.size(), fit_std_.size());
  FW_CHECK_GE(options_.min_samples, 1);
  FW_CHECK(options_.z_threshold > 0.0);
  sums_.assign(fit_mean_.size(), 0.0);
}

void DriftMonitor::ObserveRow(const float* row) {
  for (size_t j = 0; j < sums_.size(); ++j) {
    sums_[j] += static_cast<double>(row[j]);
  }
  ++samples_;
}

double DriftMonitor::MaxZ(int64_t* worst_column) const {
  if (worst_column != nullptr) *worst_column = -1;
  if (samples_ < options_.min_samples) return 0.0;
  double max_z = 0.0;
  for (size_t j = 0; j < sums_.size(); ++j) {
    const double observed = sums_[j] / static_cast<double>(samples_);
    const double scale =
        std::max(static_cast<double>(fit_std_[j]), kMinStd);
    const double z = std::fabs(observed - fit_mean_[j]) / scale;
    if (z > max_z) {
      max_z = z;
      if (worst_column != nullptr) *worst_column = static_cast<int64_t>(j);
    }
  }
  return max_z;
}

bool DriftMonitor::CheckAlert(int64_t* column, double* z) {
  int64_t worst = -1;
  const double max_z = MaxZ(&worst);
  if (max_z <= options_.z_threshold) {
    alerted_ = false;  // recovered: re-arm for the next crossing
    return false;
  }
  if (alerted_) return false;  // still inside the same excursion
  alerted_ = true;
  if (column != nullptr) *column = worst;
  if (z != nullptr) *z = max_z;
  return true;
}

void DriftMonitor::Reset() {
  sums_.assign(sums_.size(), 0.0);
  samples_ = 0;
  alerted_ = false;
}

}  // namespace fairwos::serve
