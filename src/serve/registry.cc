#include "serve/registry.h"

#include <utility>

#include "common/telemetry.h"
#include "common/trace.h"

namespace fairwos::serve {

ModelRegistry::ModelRegistry(const data::Dataset& ds) : ds_(ds) {
  auto& registry = obs::MetricsRegistry::Global();
  loads_counter_ = registry.GetCounter("serve.registry.loads");
  unloads_counter_ = registry.GetCounter("serve.registry.unloads");
  swaps_counter_ = registry.GetCounter("serve.swap.total");
  swap_failures_counter_ = registry.GetCounter("serve.swap.failures");
  models_gauge_ = registry.GetGauge("serve.registry.models");
}

common::Result<ModelRegistry::Entry> ModelRegistry::RestoreEntry(
    const std::string& path, const std::string& model_id) const {
  FW_ASSIGN_OR_RETURN(ModelArtifact artifact, LoadModelArtifact(path));
  FW_ASSIGN_OR_RETURN(std::unique_ptr<core::FittedGnnModel> model,
                      RestoreFittedModel(artifact, ds_));
  Entry entry;
  entry.model_id = model_id.empty() ? artifact.model_id : model_id;
  entry.input = model->ResolveInput(ds_);
  entry.input_mean = std::move(artifact.input_mean);
  entry.input_std = std::move(artifact.input_std);
  entry.source_path = path;
  entry.model = std::shared_ptr<const core::FittedGnnModel>(std::move(model));
  return entry;
}

common::Status ModelRegistry::Publish(Entry entry, bool replace) {
  std::string model_id;
  int64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const bool exists = models_.count(entry.model_id) > 0;
    if (replace && !exists) {
      return common::Status::NotFound("model '" + entry.model_id +
                                      "' is not registered (Swap requires a "
                                      "loaded model; use Load)");
    }
    if (!replace && exists) {
      return common::Status::FailedPrecondition(
          "model '" + entry.model_id +
          "' is already registered (use Swap to hot-reload)");
    }
    entry.generation = ++last_generation_[entry.model_id];
    model_id = entry.model_id;
    generation = entry.generation;
    models_[model_id] = std::make_shared<const Entry>(std::move(entry));
    models_gauge_->Set(static_cast<double>(models_.size()));
  }
  if (replace) {
    // The swap is published; retire every cached prediction of the old
    // generation before returning to the caller.
    NotifyListeners(model_id, generation);
  }
  return common::Status::OK();
}

common::Result<std::string> ModelRegistry::Load(const std::string& path,
                                                const std::string& model_id) {
  FW_ASSIGN_OR_RETURN(Entry entry, RestoreEntry(path, model_id));
  const std::string published_id = entry.model_id;
  FW_RETURN_IF_ERROR(Publish(std::move(entry), /*replace=*/false));
  loads_counter_->Increment();
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("model_load")
                       .Set("model", published_id)
                       .Set("path", path));
  }
  return published_id;
}

common::Status ModelRegistry::Install(
    const std::string& model_id, std::unique_ptr<core::FittedGnnModel> model) {
  FW_CHECK(model != nullptr);
  FW_CHECK(!model_id.empty()) << "Install requires a model id";
  Entry entry;
  entry.model_id = model_id;
  entry.input = model->ResolveInput(ds_);
  ComputeColumnStats(entry.input, &entry.input_mean, &entry.input_std);
  entry.model = std::shared_ptr<const core::FittedGnnModel>(std::move(model));
  FW_RETURN_IF_ERROR(Publish(std::move(entry), /*replace=*/false));
  loads_counter_->Increment();
  return common::Status::OK();
}

common::Result<int64_t> ModelRegistry::Swap(const std::string& model_id,
                                            const std::string& path) {
  FW_TRACE_SPAN("serve/swap");
  // Restore first, outside the mutex: a corrupt or missing artifact (or an
  // injected kServeArtifactMmap fault) must leave the old model serving.
  auto entry_or = RestoreEntry(path, model_id);
  if (!entry_or.ok()) {
    swap_failures_counter_->Increment();
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("model_swap_failed")
                         .Set("model", model_id)
                         .Set("path", path)
                         .Set("error", entry_or.status().ToString()));
    }
    return entry_or.status();
  }
  common::Status published = Publish(std::move(entry_or).value(),
                                     /*replace=*/true);
  if (!published.ok()) {
    swap_failures_counter_->Increment();
    return published;
  }
  const int64_t new_generation = generation(model_id);
  swaps_counter_->Increment();
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("model_swap")
                       .Set("model", model_id)
                       .Set("generation", new_generation)
                       .Set("path", path));
  }
  return new_generation;
}

common::Status ModelRegistry::Unload(const std::string& model_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(model_id);
    if (it == models_.end()) {
      return common::Status::NotFound("model '" + model_id +
                                      "' is not registered");
    }
    models_.erase(it);
    models_gauge_->Set(static_cast<double>(models_.size()));
  }
  NotifyListeners(model_id, /*new_generation=*/0);
  unloads_counter_->Increment();
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("model_unload").Set("model", model_id));
  }
  return common::Status::OK();
}

std::shared_ptr<const ModelRegistry::Entry> ModelRegistry::Get(
    const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model_id);
  return it == models_.end() ? nullptr : it->second;
}

int64_t ModelRegistry::generation(const std::string& model_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model_id);
  return it == models_.end() ? 0 : it->second->generation;
}

std::vector<std::string> ModelRegistry::ModelIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(models_.size());
  for (const auto& [id, entry] : models_) ids.push_back(id);
  return ids;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

int64_t ModelRegistry::AddInvalidationListener(InvalidationListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void ModelRegistry::RemoveListener(int64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

void ModelRegistry::NotifyListeners(const std::string& model_id,
                                    int64_t new_generation) {
  // Listeners run outside the registry mutex: the engine's purge takes its
  // own engine mutex, and engine code queries the registry while holding
  // it — invoking listeners locked would invert that order.
  std::vector<InvalidationListener> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      snapshot.push_back(listener);
    }
  }
  for (const auto& listener : snapshot) listener(model_id, new_generation);
}

}  // namespace fairwos::serve
