#include "serve/artifact.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/fault.h"
#include "nn/checkpoint.h"
#include "nn/payload.h"

namespace fairwos::serve {
namespace {

common::Status Malformed(const std::string& path, const char* what) {
  return common::Status::IoError("model artifact " + path +
                                 ": malformed payload (" + what + ")");
}

}  // namespace

std::string DefaultModelId(const core::FittedGnnModel::Provenance& p) {
  return p.method + ":" + p.dataset + ":" + std::to_string(p.seed);
}

void ComputeColumnStats(const tensor::Tensor& x, std::vector<float>* mean,
                        std::vector<float>* stddev) {
  FW_CHECK_EQ(x.rank(), 2);
  const int64_t n = x.dim(0), f = x.dim(1);
  mean->assign(static_cast<size_t>(f), 0.0f);
  stddev->assign(static_cast<size_t>(f), 0.0f);
  if (n == 0) return;
  for (int64_t j = 0; j < f; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double v = x.at(i, j);
      sum += v;
      sum_sq += v * v;
    }
    const double mu = sum / static_cast<double>(n);
    const double var =
        std::max(0.0, sum_sq / static_cast<double>(n) - mu * mu);
    (*mean)[static_cast<size_t>(j)] = static_cast<float>(mu);
    (*stddev)[static_cast<size_t>(j)] = static_cast<float>(std::sqrt(var));
  }
}

ModelArtifact MakeArtifact(const core::FittedGnnModel& model,
                           const data::Dataset& ds,
                           const std::string& model_id) {
  ModelArtifact artifact;
  artifact.provenance = model.provenance();
  artifact.model_id =
      model_id.empty() ? DefaultModelId(artifact.provenance) : model_id;
  artifact.gnn = model.classifier().encoder().config();
  for (const auto& p : model.classifier().parameters()) {
    artifact.params.emplace_back(p.data().begin(), p.data().end());
  }
  artifact.input_kind = model.input_kind();
  const tensor::Tensor& input = model.ResolveInput(ds);
  ComputeColumnStats(input, &artifact.input_mean, &artifact.input_std);
  if (artifact.input_kind == core::FittedGnnModel::InputKind::kFrozen) {
    artifact.frozen_input = model.frozen_input();
    artifact.input_is_pseudo_sens = model.pseudo_sens().defined();
  }
  return artifact;
}

common::Status SaveModelArtifact(const std::string& path,
                                 const ModelArtifact& artifact) {
  std::string payload;
  nn::AppendString(&payload, artifact.model_id);
  nn::AppendString(&payload, artifact.provenance.method);
  nn::AppendString(&payload, artifact.provenance.dataset);
  nn::AppendU64(&payload, artifact.provenance.seed);

  const nn::GnnConfig& gnn = artifact.gnn;
  nn::AppendU64(&payload, static_cast<uint64_t>(gnn.backbone));
  nn::AppendU64(&payload, static_cast<uint64_t>(gnn.in_features));
  nn::AppendU64(&payload, static_cast<uint64_t>(gnn.hidden));
  nn::AppendU64(&payload, static_cast<uint64_t>(gnn.num_layers));
  nn::AppendU64(&payload, static_cast<uint64_t>(gnn.num_classes));
  nn::AppendF32(&payload, gnn.dropout);
  nn::AppendF32(&payload, gnn.gin_eps);
  nn::AppendU64(&payload, gnn.sage_normalize ? 1 : 0);
  nn::AppendU64(&payload, static_cast<uint64_t>(gnn.gat_heads));
  nn::AppendF32(&payload, gnn.gat_negative_slope);

  nn::AppendU64(&payload, artifact.params.size());
  for (const auto& p : artifact.params) {
    nn::AppendU64(&payload, p.size());
    nn::AppendFloats(&payload, p);
  }
  nn::AppendU64(&payload, artifact.input_mean.size());
  nn::AppendFloats(&payload, artifact.input_mean);
  nn::AppendU64(&payload, artifact.input_std.size());
  nn::AppendFloats(&payload, artifact.input_std);

  const bool frozen =
      artifact.input_kind == core::FittedGnnModel::InputKind::kFrozen;
  nn::AppendU64(&payload, frozen ? 1 : 0);
  if (frozen) {
    FW_CHECK(artifact.frozen_input.defined());
    FW_CHECK_EQ(artifact.frozen_input.rank(), 2);
    nn::AppendU64(&payload, static_cast<uint64_t>(artifact.frozen_input.dim(0)));
    nn::AppendU64(&payload, static_cast<uint64_t>(artifact.frozen_input.dim(1)));
    nn::AppendFloats(&payload, artifact.frozen_input.data());
  }
  nn::AppendU64(&payload, artifact.input_is_pseudo_sens ? 1 : 0);

  return nn::WriteCheckpointEnvelope(path, nn::kModelArtifactVersion,
                                     std::move(payload));
}

common::Result<ModelArtifact> LoadModelArtifact(const std::string& path) {
  // Fault-injection site modelling a failed artifact mapping (mmap/read
  // error after the file opened). Fired before any byte is parsed, so a
  // registry Swap that hits it must leave the old model fully in place.
  if (auto* fi = testing::ActiveFaultInjector();
      fi != nullptr && fi->ShouldFire(testing::FaultSite::kServeArtifactMmap)) {
    return common::Status::IoError("model artifact " + path +
                                   ": injected mmap fault");
  }
  std::string payload;
  FW_RETURN_IF_ERROR(nn::ReadCheckpointEnvelope(
      path, nn::kModelArtifactVersion, &payload));
  nn::PayloadReader reader(payload);

  ModelArtifact artifact;
  if (!reader.ReadString(&artifact.model_id) ||
      !reader.ReadString(&artifact.provenance.method) ||
      !reader.ReadString(&artifact.provenance.dataset) ||
      !reader.ReadU64(&artifact.provenance.seed)) {
    return Malformed(path, "identity section");
  }

  uint64_t backbone = 0, in_features = 0, hidden = 0, num_layers = 0;
  uint64_t num_classes = 0, sage_normalize = 0, gat_heads = 0;
  nn::GnnConfig& gnn = artifact.gnn;
  if (!reader.ReadU64(&backbone) || !reader.ReadU64(&in_features) ||
      !reader.ReadU64(&hidden) || !reader.ReadU64(&num_layers) ||
      !reader.ReadU64(&num_classes) || !reader.ReadF32(&gnn.dropout) ||
      !reader.ReadF32(&gnn.gin_eps) || !reader.ReadU64(&sage_normalize) ||
      !reader.ReadU64(&gat_heads) || !reader.ReadF32(&gnn.gat_negative_slope)) {
    return Malformed(path, "config section");
  }
  if (backbone > static_cast<uint64_t>(nn::Backbone::kGat)) {
    return Malformed(path, "unknown backbone");
  }
  gnn.backbone = static_cast<nn::Backbone>(backbone);
  gnn.in_features = static_cast<int64_t>(in_features);
  gnn.hidden = static_cast<int64_t>(hidden);
  gnn.num_layers = static_cast<int64_t>(num_layers);
  gnn.num_classes = static_cast<int64_t>(num_classes);
  gnn.sage_normalize = sage_normalize != 0;
  gnn.gat_heads = static_cast<int64_t>(gat_heads);
  if (gnn.in_features <= 0 || gnn.hidden <= 0 || gnn.num_layers <= 0 ||
      gnn.num_classes <= 0) {
    return Malformed(path, "non-positive model dimension");
  }

  uint64_t param_count = 0;
  if (!reader.ReadU64(&param_count)) return Malformed(path, "parameter count");
  artifact.params.resize(param_count);
  for (auto& p : artifact.params) {
    if (!reader.ReadSizedFloats(&p)) return Malformed(path, "parameter data");
  }
  if (!reader.ReadSizedFloats(&artifact.input_mean) ||
      !reader.ReadSizedFloats(&artifact.input_std)) {
    return Malformed(path, "input statistics");
  }
  if (artifact.input_mean.size() != artifact.input_std.size() ||
      artifact.input_mean.size() != static_cast<size_t>(gnn.in_features)) {
    return Malformed(path, "input statistics size");
  }

  uint64_t frozen = 0;
  if (!reader.ReadU64(&frozen)) return Malformed(path, "input kind");
  artifact.input_kind = frozen != 0
                            ? core::FittedGnnModel::InputKind::kFrozen
                            : core::FittedGnnModel::InputKind::kDatasetFeatures;
  if (frozen != 0) {
    uint64_t rows = 0, cols = 0;
    if (!reader.ReadU64(&rows) || !reader.ReadU64(&cols)) {
      return Malformed(path, "frozen input shape");
    }
    // Divide instead of multiplying so a corrupt row count can't overflow.
    if (cols != static_cast<uint64_t>(gnn.in_features) ||
        rows > (reader.remaining() / sizeof(float)) / cols) {
      return Malformed(path, "frozen input size");
    }
    std::vector<float> values(rows * cols);
    if (!reader.ReadFloats(&values)) return Malformed(path, "frozen input");
    artifact.frozen_input = tensor::Tensor::FromVector(
        {static_cast<int64_t>(rows), static_cast<int64_t>(cols)},
        std::move(values));
  }
  uint64_t pseudo = 0;
  if (!reader.ReadU64(&pseudo)) return Malformed(path, "pseudo-sens flag");
  artifact.input_is_pseudo_sens = pseudo != 0;
  if (!reader.exhausted()) return Malformed(path, "trailing bytes");
  return artifact;
}

common::Result<std::unique_ptr<core::FittedGnnModel>> RestoreFittedModel(
    const ModelArtifact& artifact, const data::Dataset& ds) {
  // Construct the skeleton first: its parameters define the expected
  // shapes. The seed is irrelevant — every weight is overwritten.
  common::Rng rng(0);
  nn::GnnClassifier model(artifact.gnn, ds.graph, &rng);
  FW_RETURN_IF_ERROR(nn::CheckParamsCompatible(
      model.parameters(), artifact.params, "model artifact"));

  const bool frozen =
      artifact.input_kind == core::FittedGnnModel::InputKind::kFrozen;
  if (frozen) {
    if (!artifact.frozen_input.defined() ||
        artifact.frozen_input.dim(0) != ds.num_nodes()) {
      return common::Status::FailedPrecondition(
          "model artifact frozen input has " +
          std::to_string(artifact.frozen_input.defined()
                             ? artifact.frozen_input.dim(0)
                             : 0) +
          " rows but the dataset has " + std::to_string(ds.num_nodes()) +
          " nodes");
    }
  } else {
    if (ds.features.dim(1) != artifact.gnn.in_features) {
      return common::Status::FailedPrecondition(
          "dataset has " + std::to_string(ds.features.dim(1)) +
          " features but the model artifact expects " +
          std::to_string(artifact.gnn.in_features));
    }
    // Validate — never re-normalize — the serving dataset's statistics
    // against the fit-time ones. A drifted dataset would silently produce
    // garbage predictions; bit-identity with the in-process model requires
    // the features pass through untouched.
    std::vector<float> mean, stddev;
    ComputeColumnStats(ds.features, &mean, &stddev);
    constexpr float kTol = 1e-3f;
    for (size_t j = 0; j < mean.size(); ++j) {
      if (std::fabs(mean[j] - artifact.input_mean[j]) > kTol ||
          std::fabs(stddev[j] - artifact.input_std[j]) > kTol) {
        return common::Status::FailedPrecondition(
            "dataset normalization stats do not match the model artifact "
            "(column " +
            std::to_string(j) + ")");
      }
    }
  }

  nn::RestoreParameters(model, artifact.params);
  auto fitted = std::make_unique<core::FittedGnnModel>(
      std::move(model), artifact.input_kind, artifact.frozen_input,
      artifact.provenance);
  if (artifact.input_is_pseudo_sens) {
    fitted->set_pseudo_sens(artifact.frozen_input);
  }
  return fitted;
}

}  // namespace fairwos::serve
