#include "serve/snapshot.h"

#include <chrono>
#include <utility>

#include "common/metrics.h"
#include "common/telemetry.h"

namespace fairwos::serve {
namespace {

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

common::Result<std::unique_ptr<OpsSnapshotter>> OpsSnapshotter::Open(
    const std::string& path, InferenceEngine* engine,
    OpsSnapshotOptions options) {
  if (engine == nullptr) {
    return common::Status::InvalidArgument("ops snapshotter needs an engine");
  }
  if (options.interval_seconds <= 0.0) {
    return common::Status::InvalidArgument("interval_seconds must be > 0");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return common::Status::IoError("cannot open for write: " + path);
  }
  return std::unique_ptr<OpsSnapshotter>(
      new OpsSnapshotter(std::move(out), engine, options));
}

OpsSnapshotter::OpsSnapshotter(std::ofstream out, InferenceEngine* engine,
                               OpsSnapshotOptions options)
    : engine_(engine), options_(options), out_(std::move(out)) {}

OpsSnapshotter::~OpsSnapshotter() { Stop(); }

common::Status OpsSnapshotter::SnapshotNow() {
  const InferenceEngine::Stats s = engine_->stats();
  auto& registry = obs::MetricsRegistry::Global();

  // One lock for sample-and-write: concurrent callers serialize, so seq
  // numbers land in the file in order and deltas never double-count.
  std::lock_guard<std::mutex> lock(mu_);
  obs::Event ev("ops_snapshot");
  ev.Set("seq", seq_).Set("uptime_ms", uptime_.Millis());
  // Engine counters: cumulative totals plus since-last-snapshot deltas
  // for the rates an operator actually watches.
  ev.Set("requests", s.requests)
      .Set("requests_delta", s.requests - last_.requests)
      .Set("batches", s.batches)
      .Set("batches_delta", s.batches - last_.batches)
      .Set("cache_hits", s.cache_hits)
      .Set("cache_misses", s.cache_misses)
      .Set("shed_queue", s.shed_queue)
      .Set("shed_quota", s.shed_quota)
      .Set("deadline_exceeded", s.deadline_exceeded)
      .Set("degraded", s.degraded)
      .Set("degraded_delta", s.degraded - last_.degraded)
      .Set("leader_promotions", s.leader_promotions)
      .Set("drift_alerts", s.drift_alerts)
      .Set("fairness_alerts", s.fairness_alerts);
  last_ = s;
  ++seq_;

  // Serving gauges: queue depth, drift score, drift samples. The audit
  // gauges are skipped here and sampled from the engine below, so a
  // multi-engine process reports this engine's auditor, not the last
  // writer's.
  for (const auto& [name, value] : registry.GaugeValues()) {
    if (HasPrefix(name, "serve.") && !HasPrefix(name, "serve.audit.")) {
      ev.Set(name, value);
    }
  }

  // Sliding-window quantiles: the SLO view of the last N seconds.
  for (const auto& [name, w] : registry.WindowValues()) {
    if (HasPrefix(name, "serve.window.") || HasPrefix(name, "train.window.")) {
      ev.Set(name + ".count", w.count)
          .Set(name + ".p50", w.p50)
          .Set(name + ".p99", w.p99);
    }
  }

  if (engine_->audit_enabled()) {
    const AuditWindowMetrics am = engine_->audit_metrics();
    ev.Set("serve.audit.delta_sp", am.delta_sp_pct)
        .Set("serve.audit.delta_eo", am.delta_eo_pct)
        .Set("serve.audit.di", am.di)
        .Set("serve.audit.window_samples", am.samples)
        .Set("serve.audit.group0", am.group_total[0])
        .Set("serve.audit.group1", am.group_total[1])
        .Set("serve.audit.coverage_pct", engine_->audit_coverage_pct())
        .Set("fairness_alert", engine_->audit_alert_active() ? 1 : 0);
  }

  // Dynamic-graph shape: which epoch is serving, how deep the overlay is,
  // and whether mutations are currently being shed (the latched backlog).
  if (graph::MutableGraph* dg = engine_->dynamic_graph(); dg != nullptr) {
    const graph::MutableGraph::Stats gs = dg->stats();
    ev.Set("mutation.epoch", gs.epoch)
        .Set("mutation.pending", gs.pending)
        .Set("mutation.applied", gs.applied)
        .Set("mutation.shed", gs.shed)
        .Set("mutation.backlog", gs.backlogged ? 1 : 0)
        .Set("compaction.count", gs.compactions)
        .Set("compaction.failed", gs.compaction_failures)
        .Set("cache.epoch_invalidations", s.epoch_invalidations);
  }

  // Which model generations are live, so a snapshot stream pins every
  // served answer to the registry state that produced it.
  for (const std::string& id : engine_->registry().ModelIds()) {
    ev.Set("generation." + id, engine_->registry().generation(id));
  }

  out_ << ev.ToJson() << '\n';
  out_.flush();
  if (!out_) return common::Status::IoError("ops snapshot write failed");
  return common::Status::OK();
}

void OpsSnapshotter::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (thread_.joinable()) return;  // already running
  stop_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(run_mu_);
    while (!stop_) {
      run_cv_.wait_for(
          lock,
          std::chrono::duration<double>(options_.interval_seconds),
          [this] { return stop_; });
      if (stop_) break;
      lock.unlock();
      (void)SnapshotNow();  // an I/O hiccup must not kill the sampler
      lock.lock();
    }
  });
}

void OpsSnapshotter::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
}

int64_t OpsSnapshotter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

}  // namespace fairwos::serve
