#include "serve/audit.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace fairwos::serve {

void AuditTable::Add(int64_t node, int sens, int label) {
  FW_CHECK_GE(node, 0);
  FW_CHECK(sens == 0 || sens == 1);
  FW_CHECK(label == 0 || label == 1);
  entries_[node] = Entry{sens, label};
}

AuditTable AuditTable::FromDataset(const data::Dataset& ds) {
  AuditTable table;
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    table.Add(v, ds.sens[static_cast<size_t>(v)],
              ds.labels[static_cast<size_t>(v)]);
  }
  return table;
}

AuditTable AuditTable::SampleFromDataset(const data::Dataset& ds,
                                         double fraction, uint64_t seed) {
  FW_CHECK_GE(fraction, 0.0);
  FW_CHECK_LE(fraction, 1.0);
  AuditTable table;
  common::Rng rng(seed);
  for (int64_t v = 0; v < ds.num_nodes(); ++v) {
    if (rng.Bernoulli(fraction)) {
      table.Add(v, ds.sens[static_cast<size_t>(v)],
                ds.labels[static_cast<size_t>(v)]);
    }
  }
  return table;
}

const AuditTable::Entry* AuditTable::Find(int64_t node) const {
  auto it = entries_.find(node);
  return it == entries_.end() ? nullptr : &it->second;
}

FairnessAuditor::FairnessAuditor(std::shared_ptr<const AuditTable> table,
                                 AuditOptions options)
    : table_(std::move(table)), options_(options) {
  FW_CHECK(table_ != nullptr);
  FW_CHECK_GT(options_.window, 0);
  FW_CHECK_GT(options_.stride, 0);
  FW_CHECK_LE(options_.stride, options_.window);
  auto& reg = obs::MetricsRegistry::Global();
  delta_sp_gauge_ = reg.GetGauge("serve.audit.delta_sp");
  delta_eo_gauge_ = reg.GetGauge("serve.audit.delta_eo");
  di_gauge_ = reg.GetGauge("serve.audit.di");
  window_samples_gauge_ = reg.GetGauge("serve.audit.window_samples");
  coverage_gauge_ = reg.GetGauge("serve.audit.coverage_pct");
  alert_active_gauge_ = reg.GetGauge("serve.audit.alert_active");
  audited_counter_ = reg.GetCounter("serve.audit.audited");
  alerts_counter_ = reg.GetCounter("serve.audit.alerts");
}

bool FairnessAuditor::Observe(int64_t node, int pred_label) {
  FW_CHECK(pred_label == 0 || pred_label == 1);
  ++observed_;
  const AuditTable::Entry* entry = table_->Find(node);
  if (entry == nullptr) return false;
  ++audited_;
  audited_counter_->Increment();
  window_.push_back(Sample{static_cast<int8_t>(entry->sens),
                           static_cast<int8_t>(entry->label),
                           static_cast<int8_t>(pred_label)});
  ++confusion_.count[entry->sens][entry->label][pred_label];
  if (static_cast<int64_t>(window_.size()) > options_.window) {
    const Sample& old = window_.front();
    --confusion_.count[old.sens][old.label][old.pred];
    window_.pop_front();
  }
  if (audited_ % options_.stride == 0) Recompute();
  return true;
}

bool FairnessAuditor::Breaches(const AuditWindowMetrics& m) const {
  if (m.samples < options_.min_audited) return false;
  if (options_.delta_sp_threshold_pct > 0.0 &&
      m.delta_sp_pct > options_.delta_sp_threshold_pct) {
    return true;
  }
  if (options_.delta_eo_threshold_pct > 0.0 &&
      m.delta_eo_pct > options_.delta_eo_threshold_pct) {
    return true;
  }
  if (options_.di_threshold > 0.0 && m.di < options_.di_threshold) {
    return true;
  }
  return false;
}

void FairnessAuditor::Recompute() {
  current_.samples = static_cast<int64_t>(window_.size());
  current_.group_total[0] = confusion_.GroupTotal(0);
  current_.group_total[1] = confusion_.GroupTotal(1);
  current_.delta_sp_pct = fairness::StatisticalParityGapPct(confusion_);
  current_.delta_eo_pct = fairness::EqualOpportunityGapPct(confusion_);
  current_.di = fairness::DisparateImpactRatio(confusion_);
  delta_sp_gauge_->Set(current_.delta_sp_pct);
  delta_eo_gauge_->Set(current_.delta_eo_pct);
  di_gauge_->Set(current_.di);
  window_samples_gauge_->Set(static_cast<double>(current_.samples));
  coverage_gauge_->Set(CoveragePct());
}

bool FairnessAuditor::CheckAlert(AuditWindowMetrics* metrics) {
  const bool breach = Breaches(current_);
  if (breach && !alerted_) {
    alerted_ = true;
    ++alerts_;
    alerts_counter_->Increment();
    alert_active_gauge_->Set(1.0);
    if (metrics != nullptr) *metrics = current_;
    return true;
  }
  if (!breach && alerted_) {
    alerted_ = false;  // re-arm: a later episode fires a fresh alert
    alert_active_gauge_->Set(0.0);
  }
  return false;
}

void FairnessAuditor::Reset() {
  window_.clear();
  confusion_ = fairness::GroupConfusion{};
  current_ = AuditWindowMetrics{};
  alerted_ = false;
  delta_sp_gauge_->Set(0.0);
  delta_eo_gauge_->Set(0.0);
  di_gauge_->Set(1.0);
  window_samples_gauge_->Set(0.0);
  alert_active_gauge_->Set(0.0);
}

double FairnessAuditor::CoveragePct() const {
  if (observed_ == 0) return 0.0;
  return 100.0 * static_cast<double>(audited_) /
         static_cast<double>(observed_);
}

}  // namespace fairwos::serve
