// Multi-model serving registry (docs/serving.md). A ModelRegistry holds
// many named `.fwmodel` artifacts restored against one dataset and supports
// hot reload: `Swap(model_id, path)` restores the new artifact fully (it can
// fail without side effects — the old model keeps serving), then atomically
// replaces the published entry under the registry mutex and bumps the
// model's generation counter. Readers take `shared_ptr` snapshots, so an
// in-flight batch finishes on whichever model it captured while new
// requests immediately see the swapped one.
//
// Generation counters are per model id and survive Unload/Load cycles, so a
// cached prediction from any retired generation can never be mistaken for a
// current one. Invalidation listeners (the engine's LRU purge) run after
// the swap is published and outside the registry mutex — by the time
// Swap/Unload returns, every listener has been told and no stale prediction
// survives the reload.
#ifndef FAIRWOS_SERVE_REGISTRY_H_
#define FAIRWOS_SERVE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "core/fitted.h"
#include "data/dataset.h"
#include "serve/artifact.h"

namespace fairwos::serve {

/// Thread-safe registry of servable models over one dataset. `ds` must
/// outlive the registry (and therefore every engine built on it).
class ModelRegistry {
 public:
  /// One published model. Immutable once published; replaced wholesale on
  /// Swap. Readers hold the shared_ptr for as long as they need the model.
  struct Entry {
    std::string model_id;
    std::shared_ptr<const core::FittedGnnModel> model;
    tensor::Tensor input;  // the matrix Predict reads, resolved once
    /// Fit-time per-column normalization stats from the artifact — the
    /// reference distribution the drift monitor audits against.
    std::vector<float> input_mean;
    std::vector<float> input_std;
    int64_t generation = 0;
    std::string source_path;  // empty for in-process Install()ed models
  };

  explicit ModelRegistry(const data::Dataset& ds);

  /// Loads a `.fwmodel` from `path` and publishes it under `model_id`
  /// (empty: the artifact's own id). Returns the published id.
  /// FailedPrecondition if the id is already registered (use Swap).
  common::Result<std::string> Load(const std::string& path,
                                   const std::string& model_id = "");

  /// Publishes an already-restored model (e.g. straight from Fit).
  common::Status Install(const std::string& model_id,
                         std::unique_ptr<core::FittedGnnModel> model);

  /// Atomically replaces `model_id` with the artifact at `path`. The new
  /// artifact is restored before anything is unpublished: on any failure
  /// the old model keeps serving untouched. NotFound when the id is not
  /// registered. Returns the new generation.
  common::Result<int64_t> Swap(const std::string& model_id,
                               const std::string& path);

  /// Unpublishes `model_id`; NotFound when absent. Listeners fire so every
  /// cached prediction for the model is invalidated.
  common::Status Unload(const std::string& model_id);

  /// Snapshot of the current entry, or nullptr when not registered.
  std::shared_ptr<const Entry> Get(const std::string& model_id) const;

  /// Current generation of `model_id`; 0 when not registered. An unloaded
  /// model reports 0 even though its counter persists for the next Load.
  int64_t generation(const std::string& model_id) const;

  std::vector<std::string> ModelIds() const;
  size_t size() const;
  const data::Dataset& dataset() const { return ds_; }

  /// Called after a Swap or Unload is published, outside the registry
  /// mutex, with the model id and its new generation (0 for unload).
  using InvalidationListener =
      std::function<void(const std::string& model_id, int64_t new_generation)>;

  /// Registers a listener; returns a token for RemoveListener. Listeners
  /// must stay callable until removed.
  int64_t AddInvalidationListener(InvalidationListener listener);
  void RemoveListener(int64_t token);

 private:
  /// Restores `path` into a publishable entry (no mutation on failure).
  common::Result<Entry> RestoreEntry(const std::string& path,
                                     const std::string& model_id) const;

  /// Publishes `entry` under the next generation for its id and notifies
  /// listeners. `replace` distinguishes Load (must not exist) from Swap
  /// (must exist).
  common::Status Publish(Entry entry, bool replace);

  void NotifyListeners(const std::string& model_id, int64_t new_generation);

  const data::Dataset& ds_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Entry>> models_;
  /// Monotonic per-id generation, surviving Unload so re-registered ids
  /// never reuse a retired generation.
  std::map<std::string, int64_t> last_generation_;
  std::vector<std::pair<int64_t, InvalidationListener>> listeners_;
  int64_t next_listener_token_ = 1;

  obs::Counter* loads_counter_;
  obs::Counter* unloads_counter_;
  obs::Counter* swaps_counter_;
  obs::Counter* swap_failures_counter_;
  obs::Gauge* models_gauge_;
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_REGISTRY_H_
