// Periodic ops snapshots (docs/observability.md). While telemetry events
// record individual incidents, an on-call engineer mostly wants the
// current shape of the system: request-rate deltas, sliding-window latency
// quantiles, audit coverage and fairness-window gaps, drift score, queue
// depth, and which model generations are live. OpsSnapshotter samples all
// of that from one engine plus the global metrics registry and appends it
// as one self-contained JSONL line ({"event":"ops_snapshot",...}) —
// written whole and flushed per snapshot, so a reader tailing the file
// never sees a torn line and a crashed process leaves a valid prefix.
// `fairwos_cli ops-report` validates and pretty-prints such a stream.
#ifndef FAIRWOS_SERVE_SNAPSHOT_H_
#define FAIRWOS_SERVE_SNAPSHOT_H_

#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/stopwatch.h"
#include "serve/engine.h"

namespace fairwos::serve {

struct OpsSnapshotOptions {
  /// Background period for Start(); SnapshotNow() can always be called
  /// manually regardless.
  double interval_seconds = 5.0;
};

/// Appends one JSON object per snapshot to a file. Thread-safe; the
/// engine must outlive the snapshotter.
class OpsSnapshotter {
 public:
  static common::Result<std::unique_ptr<OpsSnapshotter>> Open(
      const std::string& path, InferenceEngine* engine,
      OpsSnapshotOptions options = {});

  ~OpsSnapshotter();
  OpsSnapshotter(const OpsSnapshotter&) = delete;
  OpsSnapshotter& operator=(const OpsSnapshotter&) = delete;

  /// Samples the engine and registry and appends one snapshot line.
  common::Status SnapshotNow();

  /// Starts (idempotently) a background thread snapshotting every
  /// interval_seconds.
  void Start();

  /// Stops the background thread; called by the destructor.
  void Stop();

  int64_t snapshots_written() const;

 private:
  OpsSnapshotter(std::ofstream out, InferenceEngine* engine,
                 OpsSnapshotOptions options);

  InferenceEngine* const engine_;
  const OpsSnapshotOptions options_;
  common::Stopwatch uptime_;

  mutable std::mutex mu_;
  std::ofstream out_;
  int64_t seq_ = 0;
  InferenceEngine::Stats last_;  // previous snapshot, for counter deltas

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_SNAPSHOT_H_
