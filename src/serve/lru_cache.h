// A small, generic least-recently-used cache: std::list keeps recency order
// (front = most recent), an unordered_map indexes list nodes by key. Not
// thread-safe by design — the inference engine already serialises cache
// access under its queue mutex, and a second lock here would only add
// contention.
#ifndef FAIRWOS_SERVE_LRU_CACHE_H_
#define FAIRWOS_SERVE_LRU_CACHE_H_

#include <cstddef>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace fairwos::serve {

/// Fixed-capacity LRU map. Capacity 0 disables caching entirely: Put is a
/// no-op and Get always misses, so callers need no special-casing.
template <typename K, typename V, typename Hash = std::hash<K>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and marks it most-recently-used, or nullptr
  /// on a miss. The pointer is valid until the next Put.
  const V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or refreshes `key`, evicting the least-recently-used entry
  /// when over capacity.
  void Put(K key, V value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(order_.front().first, order_.begin());
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// Removes every entry whose key satisfies `pred`; returns how many were
  /// erased. Used by the engine to invalidate a model's entries on swap or
  /// unload so no stale prediction survives a reload.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->first)) {
        index_.erase(it->first);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    return erased;
  }

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator, Hash>
      index_;
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_LRU_CACHE_H_
