#include "serve/engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "nn/gnn.h"
#include "tensor/ops.h"

namespace fairwos::serve {
namespace {

/// Batch sizes are small integers; the default latency edges would lump
/// them all into the first bucket.
std::vector<double> BatchSizeBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

common::Status ValidateOptions(const EngineOptions& options) {
  if (options.max_batch_size < 1) {
    return common::Status::InvalidArgument("max_batch_size must be >= 1");
  }
  if (options.flush_interval_ms < 0.0) {
    return common::Status::InvalidArgument("flush_interval_ms must be >= 0");
  }
  if (options.cache_capacity < 0) {
    return common::Status::InvalidArgument("cache_capacity must be >= 0");
  }
  if (options.max_queue < 1) {
    return common::Status::InvalidArgument("max_queue must be >= 1");
  }
  if (options.per_model_quota < 0) {
    return common::Status::InvalidArgument("per_model_quota must be >= 0");
  }
  if (options.default_deadline_ms < 0.0) {
    return common::Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (options.leader_timeout_ms <= 0.0) {
    return common::Status::InvalidArgument("leader_timeout_ms must be > 0");
  }
  if (options.forward_retries < 0) {
    return common::Status::InvalidArgument("forward_retries must be >= 0");
  }
  return common::Status::OK();
}

/// The snapshot-side twin of nn::AdjacencyForBackbone: the merged view's
/// operator for `backbone`, built (and cached) by the snapshot.
std::shared_ptr<const tensor::SparseMatrix> SnapshotAdjacency(
    nn::Backbone backbone, const graph::GraphSnapshot& snap) {
  switch (backbone) {
    case nn::Backbone::kGcn:
      return snap.GcnNormalizedAdjacency();
    case nn::Backbone::kGin:
      return snap.PlainAdjacency();
    case nn::Backbone::kSage:
      return snap.NeighborMeanAdjacency();
    case nn::Backbone::kGat:
      return snap.AdjacencyWithSelfLoops();
  }
  return nullptr;
}

std::shared_ptr<ModelRegistry> SingleModelRegistry(
    std::unique_ptr<core::FittedGnnModel> model, const std::string& model_id,
    const data::Dataset& ds) {
  auto registry = std::make_shared<ModelRegistry>(ds);
  const common::Status status = registry->Install(model_id, std::move(model));
  FW_CHECK(status.ok()) << status.ToString();
  return registry;
}

}  // namespace

common::Result<std::unique_ptr<InferenceEngine>> InferenceEngine::Load(
    const std::string& artifact_path, const data::Dataset& ds,
    EngineOptions options) {
  FW_RETURN_IF_ERROR(ValidateOptions(options));
  auto registry = std::make_shared<ModelRegistry>(ds);
  FW_ASSIGN_OR_RETURN(std::string model_id, registry->Load(artifact_path));
  auto engine = std::make_unique<InferenceEngine>(std::move(registry), options);
  engine->default_model_id_ = std::move(model_id);
  return engine;
}

InferenceEngine::InferenceEngine(std::unique_ptr<core::FittedGnnModel> model,
                                 std::string model_id, const data::Dataset& ds,
                                 EngineOptions options)
    : InferenceEngine(SingleModelRegistry(std::move(model), model_id, ds),
                      options) {
  default_model_id_ = std::move(model_id);
}

InferenceEngine::InferenceEngine(std::shared_ptr<ModelRegistry> registry,
                                 EngineOptions options)
    : registry_(std::move(registry)),
      num_nodes_(registry_->dataset().num_nodes()),
      options_(options),
      cache_(
          static_cast<size_t>(std::max<int64_t>(0, options.cache_capacity))) {
  const common::Status status = ValidateOptions(options_);
  FW_CHECK(status.ok()) << status.ToString();
  InitMetrics();
  if (options_.audit_table != nullptr) {
    auditor_ = std::make_unique<FairnessAuditor>(options_.audit_table,
                                                 options_.audit);
  }
  listener_token_ = registry_->AddInvalidationListener(
      [this](const std::string& model_id, int64_t new_generation) {
        OnInvalidation(model_id, new_generation);
      });
  if (options_.dynamic_graph != nullptr) {
    graph_epoch_ = options_.dynamic_graph->Current()->epoch();
    graph_listener_token_ = options_.dynamic_graph->AddEpochListener(
        [this](const std::shared_ptr<const graph::GraphSnapshot>& snap) {
          OnGraphEpoch(snap);
        });
  }
}

InferenceEngine::~InferenceEngine() {
  registry_->RemoveListener(listener_token_);
  if (options_.dynamic_graph != nullptr) {
    options_.dynamic_graph->RemoveEpochListener(graph_listener_token_);
  }
}

int64_t InferenceEngine::num_nodes() const {
  return options_.dynamic_graph != nullptr
             ? options_.dynamic_graph->Current()->num_nodes()
             : num_nodes_;
}

void InferenceEngine::InitMetrics() {
  auto& registry = obs::MetricsRegistry::Global();
  requests_counter_ = registry.GetCounter("serve.requests");
  batches_counter_ = registry.GetCounter("serve.batches");
  hits_counter_ = registry.GetCounter("serve.cache.hits");
  misses_counter_ = registry.GetCounter("serve.cache.misses");
  accepted_counter_ = registry.GetCounter("serve.admission.accepted");
  shed_queue_counter_ = registry.GetCounter("serve.admission.shed_queue");
  shed_quota_counter_ = registry.GetCounter("serve.admission.shed_quota");
  deadline_counter_ = registry.GetCounter("serve.admission.deadline_exceeded");
  degraded_counter_ = registry.GetCounter("serve.degraded");
  promotions_counter_ = registry.GetCounter("serve.leader_promotions");
  invalidations_counter_ = registry.GetCounter("serve.cache.invalidations");
  insert_dropped_counter_ = registry.GetCounter("serve.cache.insert_dropped");
  forward_retries_counter_ = registry.GetCounter("serve.forward.retries");
  drift_alerts_counter_ = registry.GetCounter("serve.drift.alerts");
  queue_depth_gauge_ = registry.GetGauge("serve.queue_depth");
  drift_max_z_gauge_ = registry.GetGauge("serve.drift.max_z");
  drift_samples_gauge_ = registry.GetGauge("serve.drift.samples");
  batch_size_hist_ =
      registry.GetHistogram("serve.batch_size", BatchSizeBuckets());
  latency_hist_ = registry.GetHistogram("serve.request_latency_ms");
  latency_window_ = registry.GetWindowed("serve.window.latency_ms");
  queue_wait_window_ = registry.GetWindowed("serve.window.queue_wait_ms");
  batch_size_window_ = registry.GetWindowed("serve.window.batch_size");
}

NodePrediction InferenceEngine::RowPrediction(const nn::PredictionResult& full,
                                              int64_t node) {
  NodePrediction p;
  p.node = node;
  p.label = full.pred[static_cast<size_t>(node)];
  p.prob1 = full.prob1[static_cast<size_t>(node)];
  return p;
}

void InferenceEngine::EmitRequestTelemetry(const std::string& model_id,
                                           const NodePrediction& p,
                                           double latency_ms) const {
  if (!obs::TelemetryEnabled()) return;
  obs::EmitEvent(obs::Event("serve_request")
                     .Set("model", model_id)
                     .Set("node", p.node)
                     .Set("label", p.label)
                     .Set("prob1", static_cast<double>(p.prob1))
                     .Set("cache_hit", p.cache_hit ? 1 : 0)
                     .Set("degraded", p.degraded ? 1 : 0)
                     .Set("latency_ms", latency_ms));
}

void InferenceEngine::EmitRejectTelemetry(const std::string& model_id,
                                          int64_t node,
                                          const char* reason) const {
  if (!obs::TelemetryEnabled()) return;
  obs::EmitEvent(obs::Event("serve_rejected")
                     .Set("model", model_id)
                     .Set("node", node)
                     .Set("reason", reason));
}

void InferenceEngine::OnInvalidation(const std::string& model_id,
                                     int64_t /*new_generation*/) {
  // The registry guarantees this runs outside its own mutex, so taking the
  // engine mutex here cannot deadlock against engine->registry calls.
  std::lock_guard<std::mutex> lock(mu_);
  const size_t erased = cache_.EraseIf(
      [&](const std::pair<std::string, int64_t>& key) {
        return key.first == model_id;
      });
  if (erased > 0) {
    invalidations_counter_->Increment(static_cast<int64_t>(erased));
    cache_invalidations_.fetch_add(static_cast<int64_t>(erased),
                                   std::memory_order_relaxed);
  }
  // Per-model serving state belongs to the retired generation: the drift
  // baseline and the degraded-mode fallback both restart with the new model.
  drift_.erase(model_id);
  last_good_.erase(model_id);
}

void InferenceEngine::OnGraphEpoch(
    const std::shared_ptr<const graph::GraphSnapshot>& snap) {
  // MutableGraph notifies outside its writer mutex (same discipline as the
  // registry), so taking the engine mutex here cannot deadlock.
  size_t erased = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Purge EVERY delivered snapshot's affected set, even when the epoch
    // looks stale or duplicated. The old `epoch <= graph_epoch_` early-out
    // had a staleness hole: if epoch N+1's notification overtook epoch N's,
    // N's affected set was never purged and entries cached under N-1 kept
    // serving stale predictions. Purging twice is merely redundant work,
    // and cache inserts are epoch-gated (group->graph_epoch must match),
    // so the union of all delivered affected sets closes the hole for any
    // delivery order.
    graph_epoch_ = std::max(graph_epoch_, snap->epoch());
    const std::vector<int64_t>& affected = snap->affected_nodes();
    if (!affected.empty()) {
      const std::unordered_set<int64_t> hit(affected.begin(), affected.end());
      erased = cache_.EraseIf(
          [&](const std::pair<std::string, int64_t>& key) {
            return hit.count(key.second) > 0;
          });
    }
    if (erased > 0) {
      invalidations_counter_->Increment(static_cast<int64_t>(erased));
      cache_invalidations_.fetch_add(static_cast<int64_t>(erased),
                                     std::memory_order_relaxed);
      epoch_invalidations_.fetch_add(static_cast<int64_t>(erased),
                                     std::memory_order_relaxed);
    }
  }
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("cache_epoch_invalidation")
                       .Set("epoch", snap->epoch())
                       .Set("affected", static_cast<int64_t>(
                                            snap->affected_nodes().size()))
                       .Set("purged", static_cast<int64_t>(erased)));
  }
}

void InferenceEngine::ObserveDriftLocked(const ModelRegistry::Entry& entry,
                                         int64_t node) {
  if (!options_.drift_monitor || entry.input_mean.empty()) return;
  const int64_t cols = static_cast<int64_t>(entry.input_mean.size());
  if (cols * num_nodes_ != static_cast<int64_t>(entry.input.data().size())) {
    return;  // stats do not describe the served matrix; nothing to audit
  }
  if (node >= num_nodes_) return;  // dynamically added node: no fit-time row
  DriftState& state = drift_[entry.model_id];
  if (state.monitor == nullptr || state.generation != entry.generation) {
    state.monitor = std::make_unique<DriftMonitor>(
        entry.input_mean, entry.input_std, options_.drift);
    state.generation = entry.generation;
  }
  state.monitor->ObserveRow(entry.input.data().data() + node * cols);
  drift_samples_gauge_->Set(static_cast<double>(state.monitor->samples()));
  drift_max_z_gauge_->Set(state.monitor->MaxZ());
  int64_t column = -1;
  double z = 0.0;
  if (state.monitor->CheckAlert(&column, &z)) {
    drift_alerts_counter_->Increment();
    drift_alerts_.fetch_add(1, std::memory_order_relaxed);
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("drift_alert")
                         .Set("model", entry.model_id)
                         .Set("column", column)
                         .Set("z", z)
                         .Set("samples", state.monitor->samples())
                         .Set("observed_mean", state.monitor->observed_mean(column))
                         .Set("expected_mean", state.monitor->fit_mean(column))
                         .Set("expected_std", state.monitor->fit_std(column)));
    }
  }
}

void InferenceEngine::ObserveAuditLocked(const std::string& model_id,
                                         const NodePrediction& p) {
  if (auditor_ == nullptr) return;
  auditor_->Observe(p.node, p.label);
  AuditWindowMetrics m;
  if (auditor_->CheckAlert(&m)) {
    fairness_alerts_.fetch_add(1, std::memory_order_relaxed);
    audit_alert_state_ = true;
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("fairness_alert")
                         .Set("model", model_id)
                         .Set("delta_sp_pct", m.delta_sp_pct)
                         .Set("delta_eo_pct", m.delta_eo_pct)
                         .Set("di", m.di)
                         .Set("window_samples", m.samples)
                         .Set("group0", m.group_total[0])
                         .Set("group1", m.group_total[1]));
    }
  } else if (audit_alert_state_ && !auditor_->alert_active()) {
    // The window recovered below threshold: the latch re-armed.
    audit_alert_state_ = false;
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("fairness_alert_cleared")
                         .Set("model", model_id)
                         .Set("delta_sp_pct", auditor_->Current().delta_sp_pct)
                         .Set("window_samples", auditor_->Current().samples));
    }
  }
}

InferenceEngine::GroupExecution InferenceEngine::ExecuteGroup(
    const std::string& model_id,
    std::vector<std::shared_ptr<PendingRequest>> reqs) {
  GroupExecution group;
  group.model_id = model_id;
  group.reqs = std::move(reqs);

  // Re-snapshot: the model may have been swapped (fine — serve the new
  // generation) or unloaded (fail the requests) while they sat queued.
  const std::shared_ptr<const ModelRegistry::Entry> entry =
      registry_->Get(model_id);
  if (entry == nullptr) {
    group.status = common::Status::NotFound("model '" + model_id +
                                            "' was unloaded while queued");
    return group;
  }
  group.generation = entry->generation;

  // Dynamic graphs: capture ONE immutable snapshot up front — every request
  // in the group is answered from the same epoch (adjacency and features),
  // no matter what mutations or compactions land mid-forward.
  std::shared_ptr<const graph::GraphSnapshot> snap;
  std::shared_ptr<const tensor::SparseMatrix> snap_adj;
  tensor::Tensor snap_input;
  if (options_.dynamic_graph != nullptr) {
    snap = options_.dynamic_graph->Current();
    group.graph_epoch = snap->epoch();
    if (entry->model->input_kind() ==
        core::FittedGnnModel::InputKind::kFrozen) {
      // A frozen input matrix has exactly the fit-time node rows: servable
      // over a mutated edge set, but not once the node set grew.
      if (entry->input.dim(0) != snap->num_nodes()) {
        group.status = common::Status::FailedPrecondition(
            "model '" + model_id + "' carries a frozen input matrix of " +
            std::to_string(entry->input.dim(0)) +
            " rows; the dynamic graph now has " +
            std::to_string(snap->num_nodes()) + " nodes");
        return group;
      }
      snap_input = entry->input;
    } else {
      snap_input = snap->Features();
    }
    snap_adj = SnapshotAdjacency(
        entry->model->classifier().encoder().config().backbone, *snap);
  }

  const int64_t attempts = 1 + options_.forward_retries;
  for (int64_t attempt = 0; attempt < attempts; ++attempt) {
    if (auto* fi = testing::ActiveFaultInjector();
        fi != nullptr &&
        fi->ShouldFire(testing::FaultSite::kServeBatchForward)) {
      group.forward_faulted = true;
      group.status = common::Status::Internal(
          "batch forward for model '" + model_id + "' faulted " +
          std::to_string(attempt + 1) + " time(s)");
      if (attempt + 1 < attempts) forward_retries_counter_->Increment();
      continue;
    }
    FW_TRACE_SPAN("serve/batch");
    // The transductive forward computes every node at once; each request
    // just reads its row. This is the same RNG-free eval pass as
    // FittedGnnModel::Predict, so results are bit-identical to it.
    tensor::NoGradGuard no_grad;
    common::Rng rng(0);
    group.full =
        std::make_shared<const nn::PredictionResult>(nn::PredictFromLogits(
            snap != nullptr
                ? entry->model->classifier().ForwardWith(
                      snap_adj, snap_input, /*training=*/false, &rng)
                : entry->model->classifier().Forward(entry->input,
                                                     /*training=*/false,
                                                     &rng)));
    group.forward_faulted = false;
    group.status = common::Status::OK();
    batches_counter_->Increment();
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_size_hist_->Observe(static_cast<double>(group.reqs.size()));
    batch_size_window_->Observe(static_cast<double>(group.reqs.size()));
    break;
  }
  return group;
}

void InferenceEngine::PublishGroupLocked(GroupExecution* group) {
  if (group->full != nullptr) {
    // Cache (and remember as last-good) only when the generation that
    // computed this result is still the published one — a swap that landed
    // mid-forward must not be shadowed by the retiring model's answers.
    // Same guard for the graph epoch: a forward that read an older snapshot
    // must not re-populate entries the newer epoch already purged (its
    // answers are still served — snapshot isolation — just not remembered).
    const bool generation_current =
        registry_->generation(group->model_id) == group->generation;
    const bool epoch_current = options_.dynamic_graph == nullptr ||
                               group->graph_epoch == graph_epoch_;
    const bool cacheable = generation_current && epoch_current;
    if (cacheable) {
      last_good_[group->model_id] = LastGood{group->full, group->generation};
    }
    auto* fi = testing::ActiveFaultInjector();
    for (auto& req : group->reqs) {
      req->result = RowPrediction(*group->full, req->node);
      req->status = common::Status::OK();
      req->done = true;
      if (cacheable) {
        if (fi != nullptr &&
            fi->ShouldFire(testing::FaultSite::kServeCacheInsert)) {
          // The answer is still served; it just is not remembered.
          insert_dropped_counter_->Increment();
        } else {
          cache_.Put({group->model_id, req->node},
                     CachedValue{req->result, group->generation});
        }
      }
    }
    return;
  }

  if (group->forward_faulted) {
    // Retries exhausted: degrade to the last known good full-graph result
    // for this same generation rather than failing the requests.
    auto it = last_good_.find(group->model_id);
    if (it != last_good_.end() &&
        it->second.generation == group->generation &&
        // A last-good result from before an AddNode epoch has no rows for
        // the new nodes; rather than answer part of the group stale and
        // part not, fail the whole group over to the error path.
        std::all_of(group->reqs.begin(), group->reqs.end(),
                    [&](const std::shared_ptr<PendingRequest>& req) {
                      return req->node <
                             static_cast<int64_t>(it->second.full->pred.size());
                    })) {
      for (auto& req : group->reqs) {
        req->result = RowPrediction(*it->second.full, req->node);
        req->result.degraded = true;
        req->status = common::Status::OK();
        req->done = true;
      }
      const auto served = static_cast<int64_t>(group->reqs.size());
      degraded_counter_->Increment(served);
      degraded_.fetch_add(served, std::memory_order_relaxed);
      if (obs::TelemetryEnabled()) {
        obs::EmitEvent(obs::Event("degraded_serve")
                           .Set("model", group->model_id)
                           .Set("requests", served)
                           .Set("error", group->status.message()));
      }
      return;
    }
  }

  for (auto& req : group->reqs) {
    req->status = group->status;
    req->done = true;
  }
}

void InferenceEngine::AbandonLocked(
    const std::shared_ptr<PendingRequest>& req) {
  if (!req->queued) return;
  auto it = std::find(pending_.begin(), pending_.end(), req);
  if (it != pending_.end()) pending_.erase(it);
  req->queued = false;
  auto quota_it = pending_per_model_.find(req->model_id);
  if (quota_it != pending_per_model_.end() && --quota_it->second <= 0) {
    pending_per_model_.erase(quota_it);
  }
  queue_depth_gauge_->Set(static_cast<double>(pending_.size()));
}

void InferenceEngine::RunAsLeader(
    std::unique_lock<std::mutex>& lock,
    const std::shared_ptr<PendingRequest>& self) {
  // Give followers a chance to join the batch, bounded by the flush
  // interval; a full queue flushes immediately.
  if (static_cast<int64_t>(pending_.size()) < options_.max_batch_size &&
      options_.flush_interval_ms > 0.0) {
    batch_ready_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.flush_interval_ms),
        [&] {
          return static_cast<int64_t>(pending_.size()) >=
                 options_.max_batch_size;
        });
  }
  std::vector<std::shared_ptr<PendingRequest>> batch;
  batch.swap(pending_);
  const Clock::time_point captured_at = Clock::now();
  for (auto& req : batch) {
    req->queued = false;
    queue_wait_window_->Observe(
        std::chrono::duration<double, std::milli>(captured_at - req->enqueued)
            .count());
    auto it = pending_per_model_.find(req->model_id);
    if (it != pending_per_model_.end() && --it->second <= 0) {
      pending_per_model_.erase(it);
    }
  }
  queue_depth_gauge_->Set(0.0);

  // Test hook: simulate this leader dying mid-batch. The captured requests
  // are left undone and unqueued and leader_active_ stays set — exactly the
  // wreckage a crashed thread leaves. Only the leader's own request resolves
  // (with an error), so its caller can observe the crash; every follower
  // must recover via timeout self-promotion.
  int64_t crashes = crash_next_leader_.load(std::memory_order_relaxed);
  while (crashes > 0 && !crash_next_leader_.compare_exchange_weak(
                            crashes, crashes - 1, std::memory_order_relaxed)) {
  }
  if (crashes > 0) {
    self->status = common::Status::Internal(
        "injected leader crash: batch captured but never published");
    self->done = true;
    return;
  }

  // Group by model id (deterministic order) and run one forward per model
  // outside the lock, so followers can keep queueing the next batch.
  std::map<std::string, std::vector<std::shared_ptr<PendingRequest>>>
      by_model;
  for (auto& req : batch) by_model[req->model_id].push_back(std::move(req));

  lock.unlock();
  std::vector<GroupExecution> groups;
  groups.reserve(by_model.size());
  for (auto& [model_id, reqs] : by_model) {
    groups.push_back(ExecuteGroup(model_id, std::move(reqs)));
  }
  lock.lock();

  for (auto& group : groups) PublishGroupLocked(&group);
  leader_active_ = false;
  done_.notify_all();
}

common::Result<NodePrediction> InferenceEngine::Predict(int64_t node) {
  if (default_model_id_.empty()) {
    return common::Status::FailedPrecondition(
        "engine serves a multi-model registry: Predict must name a model");
  }
  return Predict(default_model_id_, node);
}

common::Result<NodePrediction> InferenceEngine::Predict(
    const std::string& model_id, int64_t node,
    const common::Deadline* deadline_in) {
  common::Stopwatch watch;
  const int64_t servable_nodes = num_nodes();
  if (node < 0 || node >= servable_nodes) {
    return common::Status::InvalidArgument(
        "node " + std::to_string(node) + " out of range [0, " +
        std::to_string(servable_nodes) + ")");
  }
  const std::shared_ptr<const ModelRegistry::Entry> snapshot =
      registry_->Get(model_id);
  if (snapshot == nullptr) {
    return common::Status::NotFound("model '" + model_id +
                                    "' is not registered");
  }
  common::Deadline deadline =
      deadline_in != nullptr ? *deadline_in
      : options_.default_deadline_ms > 0.0
          ? common::Deadline::After(options_.default_deadline_ms / 1000.0)
          : common::Deadline::Never();

  requests_counter_->Increment();
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mu_);
  ObserveDriftLocked(*snapshot, node);

  if (const CachedValue* cached = cache_.Get({model_id, node});
      cached != nullptr && cached->generation == snapshot->generation) {
    NodePrediction result = cached->prediction;
    result.cache_hit = true;
    hits_counter_->Increment();
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    ObserveAuditLocked(model_id, result);
    lock.unlock();
    const double latency_ms = watch.Millis();
    latency_hist_->Observe(latency_ms);
    latency_window_->Observe(latency_ms);
    EmitRequestTelemetry(model_id, result, latency_ms);
    return result;
  }
  misses_counter_->Increment();
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  // --- Admission control: shed rather than queue unbounded work. ---------
  if (deadline.Expired()) {
    deadline_counter_->Increment();
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    EmitRejectTelemetry(model_id, node, "deadline");
    return common::Status::DeadlineExceeded("request deadline expired: " +
                                            std::string(common::StopReasonName(deadline.reason())));
  }
  if (static_cast<int64_t>(pending_.size()) >= options_.max_queue) {
    shed_queue_counter_->Increment();
    shed_queue_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    EmitRejectTelemetry(model_id, node, "queue_full");
    return common::Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " pending requests)");
  }
  if (options_.per_model_quota > 0) {
    auto it = pending_per_model_.find(model_id);
    if (it != pending_per_model_.end() &&
        it->second >= options_.per_model_quota) {
      shed_quota_counter_->Increment();
      shed_quota_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      EmitRejectTelemetry(model_id, node, "quota");
      return common::Status::ResourceExhausted(
          "per-model quota full for '" + model_id + "' (" +
          std::to_string(options_.per_model_quota) + " pending requests)");
    }
  }
  accepted_counter_->Increment();

  auto req = std::make_shared<PendingRequest>();
  req->model_id = model_id;
  req->node = node;
  req->queued = true;
  req->enqueued = Clock::now();
  pending_.push_back(req);
  ++pending_per_model_[model_id];
  queue_depth_gauge_->Set(static_cast<double>(pending_.size()));

  const auto leader_timeout =
      std::chrono::duration<double, std::milli>(options_.leader_timeout_ms);
  while (!req->done) {
    if (deadline.Expired()) {
      // Deadlines govern waiting only: a request already captured into an
      // executing batch keeps its slot (the answer is simply dropped), but
      // one still queued is withdrawn so the batch never computes it.
      AbandonLocked(req);
      deadline_counter_->Increment();
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      EmitRejectTelemetry(model_id, node, "deadline");
      return common::Status::DeadlineExceeded("request deadline expired: " +
                                              std::string(common::StopReasonName(deadline.reason())));
    }
    if (!leader_active_) {
      leader_active_ = true;
      leader_since_ = Clock::now();
      if (!req->queued) {  // recovered from a dead leader's captured batch
        req->queued = true;
        pending_.push_back(req);
        ++pending_per_model_[req->model_id];
      }
      RunAsLeader(lock, req);
      continue;
    }
    if (static_cast<int64_t>(pending_.size()) >= options_.max_batch_size) {
      batch_ready_.notify_one();
    }
    // Followers never wait unbounded: the wait is clipped to half the
    // leader timeout (so a dead leader is noticed promptly) and to the
    // request deadline.
    double wait_ms = options_.leader_timeout_ms / 2.0;
    const double remaining_s = deadline.RemainingSeconds();
    if (remaining_s * 1000.0 < wait_ms) {
      wait_ms = std::max(0.1, remaining_s * 1000.0);
    }
    done_.wait_for(lock, std::chrono::duration<double, std::milli>(wait_ms),
                   [&] { return req->done || !leader_active_; });
    if (req->done) break;
    if (leader_active_ && Clock::now() - leader_since_ >= leader_timeout) {
      // The leader has made no progress for a full timeout: presume it
      // dead and promote ourselves. If it captured our request before
      // dying, re-queue it — duplicate execution is harmless because the
      // forward is deterministic.
      promotions_counter_->Increment();
      leader_promotions_.fetch_add(1, std::memory_order_relaxed);
      if (!req->queued) {
        req->queued = true;
        pending_.push_back(req);
        ++pending_per_model_[req->model_id];
        queue_depth_gauge_->Set(static_cast<double>(pending_.size()));
      }
      leader_since_ = Clock::now();
      RunAsLeader(lock, req);
    }
  }
  if (!req->status.ok()) {
    common::Status status = req->status;
    lock.unlock();
    return status;
  }
  NodePrediction result = req->result;
  ObserveAuditLocked(model_id, result);
  lock.unlock();

  const double latency_ms = watch.Millis();
  latency_hist_->Observe(latency_ms);
  latency_window_->Observe(latency_ms);
  EmitRequestTelemetry(model_id, result, latency_ms);
  return result;
}

common::Result<std::vector<NodePrediction>> InferenceEngine::PredictBatch(
    const std::vector<int64_t>& nodes) {
  if (default_model_id_.empty()) {
    return common::Status::FailedPrecondition(
        "engine serves a multi-model registry: PredictBatch must name a "
        "model");
  }
  return PredictBatch(default_model_id_, nodes);
}

common::Result<std::vector<NodePrediction>> InferenceEngine::PredictBatch(
    const std::string& model_id, const std::vector<int64_t>& nodes) {
  const int64_t servable_nodes = num_nodes();
  for (int64_t node : nodes) {
    if (node < 0 || node >= servable_nodes) {
      return common::Status::InvalidArgument(
          "node " + std::to_string(node) + " out of range [0, " +
          std::to_string(servable_nodes) + ")");
    }
  }
  std::vector<NodePrediction> results;
  results.reserve(nodes.size());
  const size_t chunk = static_cast<size_t>(options_.max_batch_size);
  for (size_t begin = 0; begin < nodes.size(); begin += chunk) {
    common::Stopwatch watch;
    const size_t end = std::min(nodes.size(), begin + chunk);
    const std::shared_ptr<const ModelRegistry::Entry> snapshot =
        registry_->Get(model_id);
    if (snapshot == nullptr) {
      return common::Status::NotFound("model '" + model_id +
                                      "' is not registered");
    }
    std::vector<std::shared_ptr<PendingRequest>> misses;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (size_t i = begin; i < end; ++i) {
        requests_counter_->Increment();
        requests_.fetch_add(1, std::memory_order_relaxed);
        ObserveDriftLocked(*snapshot, nodes[i]);
        const CachedValue* cached = cache_.Get({model_id, nodes[i]});
        if (cached != nullptr &&
            cached->generation == snapshot->generation) {
          NodePrediction hit = cached->prediction;
          hit.cache_hit = true;
          hits_counter_->Increment();
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          ObserveAuditLocked(model_id, hit);
          results.push_back(hit);
        } else {
          misses_counter_->Increment();
          cache_misses_.fetch_add(1, std::memory_order_relaxed);
          auto req = std::make_shared<PendingRequest>();
          req->model_id = model_id;
          req->node = nodes[i];
          misses.push_back(std::move(req));
          results.emplace_back();  // placeholder, filled below
          results.back().node = nodes[i];
        }
      }
    }
    if (!misses.empty()) {
      // PredictBatch bypasses the admission queue — the caller already owns
      // its concurrency — but shares the forward/publish path, so it gets
      // the same retries, degraded fallback, and generation-checked cache.
      GroupExecution group = ExecuteGroup(model_id, misses);
      std::unique_lock<std::mutex> lock(mu_);
      PublishGroupLocked(&group);
      size_t next_miss = 0;
      for (size_t i = begin; i < end; ++i) {
        NodePrediction& slot = results[i];
        if (slot.cache_hit) continue;
        const std::shared_ptr<PendingRequest>& req = misses[next_miss++];
        if (!req->status.ok()) return req->status;
        slot = req->result;
        ObserveAuditLocked(model_id, slot);
      }
    }
    const double latency_ms = watch.Millis();
    for (size_t i = begin; i < end; ++i) {
      latency_hist_->Observe(latency_ms);
      latency_window_->Observe(latency_ms);
      EmitRequestTelemetry(model_id, results[i], latency_ms);
    }
  }
  return results;
}

InferenceEngine::Stats InferenceEngine::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.shed_queue = shed_queue_.load(std::memory_order_relaxed);
  s.shed_quota = shed_quota_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.leader_promotions = leader_promotions_.load(std::memory_order_relaxed);
  s.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  s.epoch_invalidations =
      epoch_invalidations_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.graph_epoch = graph_epoch_;
  }
  s.drift_alerts = drift_alerts_.load(std::memory_order_relaxed);
  s.fairness_alerts = fairness_alerts_.load(std::memory_order_relaxed);
  return s;
}

AuditWindowMetrics InferenceEngine::audit_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (auditor_ == nullptr) return AuditWindowMetrics{};
  return auditor_->Current();
}

bool InferenceEngine::audit_alert_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return auditor_ != nullptr && auditor_->alert_active();
}

double InferenceEngine::audit_coverage_pct() const {
  std::lock_guard<std::mutex> lock(mu_);
  return auditor_ != nullptr ? auditor_->CoveragePct() : 0.0;
}

}  // namespace fairwos::serve
