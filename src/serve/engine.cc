#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "tensor/ops.h"

namespace fairwos::serve {
namespace {

/// Batch sizes are small integers; the default latency edges would lump
/// them all into the first bucket.
std::vector<double> BatchSizeBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256};
}

common::Status ValidateOptions(const EngineOptions& options) {
  if (options.max_batch_size < 1) {
    return common::Status::InvalidArgument("max_batch_size must be >= 1");
  }
  if (options.flush_interval_ms < 0.0) {
    return common::Status::InvalidArgument(
        "flush_interval_ms must be >= 0");
  }
  if (options.cache_capacity < 0) {
    return common::Status::InvalidArgument("cache_capacity must be >= 0");
  }
  return common::Status::OK();
}

}  // namespace

common::Result<std::unique_ptr<InferenceEngine>> InferenceEngine::Load(
    const std::string& artifact_path, const data::Dataset& ds,
    EngineOptions options) {
  FW_RETURN_IF_ERROR(ValidateOptions(options));
  FW_ASSIGN_OR_RETURN(ModelArtifact artifact,
                      LoadModelArtifact(artifact_path));
  std::string model_id = artifact.model_id;
  FW_ASSIGN_OR_RETURN(std::unique_ptr<core::FittedGnnModel> model,
                      RestoreFittedModel(artifact, ds));
  return std::make_unique<InferenceEngine>(std::move(model),
                                           std::move(model_id), ds, options);
}

InferenceEngine::InferenceEngine(std::unique_ptr<core::FittedGnnModel> model,
                                 std::string model_id, const data::Dataset& ds,
                                 EngineOptions options)
    : model_(std::move(model)),
      model_id_(std::move(model_id)),
      input_(model_->ResolveInput(ds)),
      num_nodes_(ds.num_nodes()),
      options_(options),
      cache_(static_cast<size_t>(std::max<int64_t>(0, options.cache_capacity))) {
  auto& registry = obs::MetricsRegistry::Global();
  requests_counter_ = registry.GetCounter("serve.requests");
  batches_counter_ = registry.GetCounter("serve.batches");
  hits_counter_ = registry.GetCounter("serve.cache.hits");
  misses_counter_ = registry.GetCounter("serve.cache.misses");
  queue_depth_gauge_ = registry.GetGauge("serve.queue_depth");
  batch_size_hist_ =
      registry.GetHistogram("serve.batch_size", BatchSizeBuckets());
  latency_hist_ = registry.GetHistogram("serve.request_latency_ms");
}

NodePrediction InferenceEngine::RowPrediction(const nn::PredictionResult& full,
                                              int64_t node) const {
  NodePrediction p;
  p.node = node;
  p.label = full.pred[static_cast<size_t>(node)];
  p.prob1 = full.prob1[static_cast<size_t>(node)];
  return p;
}

void InferenceEngine::EmitRequestTelemetry(const NodePrediction& p,
                                           double latency_ms) const {
  if (!obs::TelemetryEnabled()) return;
  obs::EmitEvent(obs::Event("serve_request")
                     .Set("model", model_id_)
                     .Set("node", p.node)
                     .Set("label", p.label)
                     .Set("prob1", static_cast<double>(p.prob1))
                     .Set("cache_hit", p.cache_hit ? 1 : 0)
                     .Set("latency_ms", latency_ms));
}

void InferenceEngine::ExecuteBatch(
    std::vector<std::shared_ptr<PendingRequest>>* batch) {
  FW_TRACE_SPAN("serve/batch");
  batches_counter_->Increment();
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_size_hist_->Observe(static_cast<double>(batch->size()));

  // The transductive forward computes every node at once; each request
  // just reads its row. This is the same RNG-free eval pass as
  // FittedGnnModel::Predict, so results are bit-identical to it.
  tensor::NoGradGuard no_grad;
  common::Rng rng(0);
  const nn::PredictionResult full = nn::PredictFromLogits(
      model_->classifier().Forward(input_, /*training=*/false, &rng));
  for (auto& req : *batch) {
    req->result = RowPrediction(full, req->node);
  }
}

void InferenceEngine::RunAsLeader(std::unique_lock<std::mutex>& lock) {
  // Give followers a chance to join the batch, bounded by the flush
  // interval; a full queue flushes immediately.
  if (static_cast<int64_t>(pending_.size()) < options_.max_batch_size &&
      options_.flush_interval_ms > 0.0) {
    batch_ready_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(options_.flush_interval_ms),
        [&] {
          return static_cast<int64_t>(pending_.size()) >=
                 options_.max_batch_size;
        });
  }
  std::vector<std::shared_ptr<PendingRequest>> batch;
  batch.swap(pending_);
  queue_depth_gauge_->Set(0.0);

  lock.unlock();
  ExecuteBatch(&batch);
  lock.lock();

  for (auto& req : batch) {
    cache_.Put({model_id_, req->node}, req->result);
    req->done = true;
  }
  leader_active_ = false;
  done_.notify_all();
}

common::Result<NodePrediction> InferenceEngine::Predict(int64_t node) {
  if (node < 0 || node >= num_nodes_) {
    return common::Status::InvalidArgument(
        "node " + std::to_string(node) + " out of range [0, " +
        std::to_string(num_nodes_) + ")");
  }
  common::Stopwatch watch;
  requests_counter_->Increment();
  requests_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mu_);
  if (const NodePrediction* cached = cache_.Get({model_id_, node})) {
    NodePrediction result = *cached;
    result.cache_hit = true;
    hits_counter_->Increment();
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    const double latency_ms = watch.Millis();
    latency_hist_->Observe(latency_ms);
    EmitRequestTelemetry(result, latency_ms);
    return result;
  }
  misses_counter_->Increment();
  cache_misses_.fetch_add(1, std::memory_order_relaxed);

  auto req = std::make_shared<PendingRequest>();
  req->node = node;
  pending_.push_back(req);
  queue_depth_gauge_->Set(static_cast<double>(pending_.size()));

  while (!req->done) {
    if (!leader_active_) {
      leader_active_ = true;
      RunAsLeader(lock);
      // Our own request was in the captured batch, so req->done now holds;
      // the loop exits. (If a racing leader captured it first, we ran a
      // batch for whoever queued meanwhile — their followers get notified.)
    } else {
      if (static_cast<int64_t>(pending_.size()) >= options_.max_batch_size) {
        batch_ready_.notify_one();
      }
      done_.wait(lock, [&] { return req->done || !leader_active_; });
    }
  }
  NodePrediction result = req->result;
  lock.unlock();

  const double latency_ms = watch.Millis();
  latency_hist_->Observe(latency_ms);
  EmitRequestTelemetry(result, latency_ms);
  return result;
}

common::Result<std::vector<NodePrediction>> InferenceEngine::PredictBatch(
    const std::vector<int64_t>& nodes) {
  for (int64_t node : nodes) {
    if (node < 0 || node >= num_nodes_) {
      return common::Status::InvalidArgument(
          "node " + std::to_string(node) + " out of range [0, " +
          std::to_string(num_nodes_) + ")");
    }
  }
  std::vector<NodePrediction> results;
  results.reserve(nodes.size());
  const size_t chunk = static_cast<size_t>(options_.max_batch_size);
  for (size_t begin = 0; begin < nodes.size(); begin += chunk) {
    common::Stopwatch watch;
    const size_t end = std::min(nodes.size(), begin + chunk);
    std::vector<std::shared_ptr<PendingRequest>> misses;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (size_t i = begin; i < end; ++i) {
        requests_counter_->Increment();
        requests_.fetch_add(1, std::memory_order_relaxed);
        if (const NodePrediction* cached = cache_.Get({model_id_, nodes[i]})) {
          NodePrediction hit = *cached;
          hit.cache_hit = true;
          hits_counter_->Increment();
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          results.push_back(hit);
        } else {
          misses_counter_->Increment();
          cache_misses_.fetch_add(1, std::memory_order_relaxed);
          auto req = std::make_shared<PendingRequest>();
          req->node = nodes[i];
          misses.push_back(std::move(req));
          results.emplace_back();  // placeholder, filled below
          results.back().node = nodes[i];
        }
      }
    }
    if (!misses.empty()) {
      ExecuteBatch(&misses);
      std::unique_lock<std::mutex> lock(mu_);
      size_t next_miss = 0;
      for (size_t i = begin; i < end; ++i) {
        NodePrediction& slot = results[i];
        if (slot.cache_hit) continue;
        slot = misses[next_miss]->result;
        cache_.Put({model_id_, slot.node}, slot);
        ++next_miss;
      }
    }
    const double latency_ms = watch.Millis();
    for (size_t i = begin; i < end; ++i) {
      latency_hist_->Observe(latency_ms);
      EmitRequestTelemetry(results[i], latency_ms);
    }
  }
  return results;
}

InferenceEngine::Stats InferenceEngine::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fairwos::serve
