// Streaming fairness audit of served predictions (docs/serving.md). The
// source paper's deployment setting withholds sensitive attributes from
// training, but an operator typically *does* hold group labels for a small
// audited subset of nodes (a compliance panel, a survey sample). This
// module joins the live prediction stream against that audit table and
// recomputes the paper's group-fairness metrics — ΔSP, ΔEO, disparate
// impact — over a sliding window of the most recent audited predictions.
//
// The window math is exact, not approximate: the auditor maintains a
// fairness::GroupConfusion incrementally (increment on arrival, decrement
// on eviction) and evaluates the very same GroupConfusion overloads the
// batch metrics in fairness/metrics.h delegate to. A windowed ΔSP is
// therefore bit-identical to fairness::StatisticalParityGapPct computed
// batch-style over the same samples.
//
// Alerting mirrors serve/drift.h: when a recomputed window metric crosses
// its threshold, CheckAlert fires exactly once and latches until the
// metric recovers (or Reset), so one sustained bias episode produces one
// `fairness_alert` incident, and a later episode re-fires.
#ifndef FAIRWOS_SERVE_AUDIT_H_
#define FAIRWOS_SERVE_AUDIT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/metrics.h"
#include "data/dataset.h"
#include "fairness/metrics.h"

namespace fairwos::serve {

/// Ground-truth group membership (and label, for ΔEO) of the audited node
/// subset. Immutable once handed to an engine; share via shared_ptr.
class AuditTable {
 public:
  struct Entry {
    int sens = 0;   // group s ∈ {0, 1}
    int label = 0;  // y ∈ {0, 1}, used only by ΔEO
  };

  /// Registers one audited node. FW_CHECKs binary sens/label.
  void Add(int64_t node, int sens, int label);

  /// Audit coverage of every node of `ds` (full-knowledge upper bound,
  /// mostly for tests and benches).
  static AuditTable FromDataset(const data::Dataset& ds);

  /// Deterministic subsample: each node enters the table with probability
  /// `fraction` under `seed` — the realistic partial-coverage setting.
  static AuditTable SampleFromDataset(const data::Dataset& ds,
                                      double fraction, uint64_t seed);

  /// nullptr when the node is not audited.
  const Entry* Find(int64_t node) const;

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

 private:
  std::unordered_map<int64_t, Entry> entries_;
};

struct AuditOptions {
  /// Sliding window length, in audited samples.
  int64_t window = 256;
  /// Metrics (and alert state) recompute every `stride` audited samples;
  /// between recomputes Current() reports the last checkpoint.
  int64_t stride = 64;
  /// No alert until the window holds this many audited samples; a handful
  /// of early joins is too small a sample to call bias.
  int64_t min_audited = 64;
  /// Alert when the windowed ΔSP exceeds this many percent; 0 disables.
  double delta_sp_threshold_pct = 20.0;
  /// Alert when the windowed ΔEO exceeds this many percent; 0 disables.
  double delta_eo_threshold_pct = 0.0;
  /// Alert when the windowed disparate-impact ratio falls below this
  /// (e.g. 0.8 = four-fifths rule); 0 disables.
  double di_threshold = 0.0;
};

/// One recompute checkpoint of the sliding window.
struct AuditWindowMetrics {
  int64_t samples = 0;             // audited samples in the window
  int64_t group_total[2] = {0, 0};  // per-group sample counts
  double delta_sp_pct = 0.0;
  double delta_eo_pct = 0.0;
  double di = 1.0;
};

/// Joins served predictions against an AuditTable and keeps windowed
/// group-fairness metrics fresh. Not thread-safe: the engine observes
/// under its own mutex (same contract as DriftMonitor). Feeds the
/// serve.audit.* registry metrics on every recompute.
class FairnessAuditor {
 public:
  FairnessAuditor(std::shared_ptr<const AuditTable> table,
                  AuditOptions options);

  /// Streams one served prediction. Returns true when the node was in the
  /// audit table (and thus entered the window).
  bool Observe(int64_t node, int pred_label);

  /// True exactly once per threshold crossing: fires when the windowed
  /// metrics (as of the last recompute) first breach a threshold, then
  /// latches until they recover (or Reset). Fills the breaching window
  /// snapshot when non-null.
  bool CheckAlert(AuditWindowMetrics* metrics = nullptr);

  /// Metrics as of the last stride checkpoint.
  const AuditWindowMetrics& Current() const { return current_; }

  /// Forgets the window and alert latch (e.g. after a model swap); the
  /// audit table and lifetime counters are kept.
  void Reset();

  int64_t observed() const { return observed_; }  // all predictions seen
  int64_t audited() const { return audited_; }    // joined to the table
  int64_t alerts() const { return alerts_; }      // CheckAlert firings
  /// Audited share of all observed predictions, percent (0 before any
  /// traffic) — the "audit gap" is 100 minus this.
  double CoveragePct() const;
  bool alert_active() const { return alerted_; }
  const AuditOptions& options() const { return options_; }
  const AuditTable& table() const { return *table_; }

 private:
  struct Sample {
    int8_t sens = 0;
    int8_t label = 0;
    int8_t pred = 0;
  };

  /// True when `m` breaches any enabled threshold.
  bool Breaches(const AuditWindowMetrics& m) const;

  /// Rebuilds `current_` from the incremental confusion counts and pushes
  /// the serve.audit.* gauges.
  void Recompute();

  const std::shared_ptr<const AuditTable> table_;
  const AuditOptions options_;

  std::deque<Sample> window_;
  fairness::GroupConfusion confusion_;  // always matches window_
  AuditWindowMetrics current_;
  int64_t observed_ = 0;
  int64_t audited_ = 0;
  int64_t alerts_ = 0;
  bool alerted_ = false;  // latched until the window recovers

  // Registry metrics, fetched once (pointers are stable process-wide).
  obs::Gauge* delta_sp_gauge_;
  obs::Gauge* delta_eo_gauge_;
  obs::Gauge* di_gauge_;
  obs::Gauge* window_samples_gauge_;
  obs::Gauge* coverage_gauge_;
  obs::Gauge* alert_active_gauge_;
  obs::Counter* audited_counter_;
  obs::Counter* alerts_counter_;
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_AUDIT_H_
