// The frozen-model artifact (`.fwmodel`): everything needed to reconstruct
// a FittedGnnModel for serving, serialized as a v4 FWCP envelope — the same
// magic/CRC/atomic-rename codec as the v2/v3 training checkpoints
// (nn/checkpoint.h), so corruption detection and the fault-injection hooks
// come for free. See docs/serving.md.
//
// Format v4 payload (little-endian, after the FWCP header):
//   string  model id
//   string  provenance: method name
//   string  provenance: dataset name
//   u64     provenance: fit seed
//   u64 backbone, u64 in_features, u64 hidden, u64 num_layers,
//   u64 num_classes, f32 dropout, f32 gin_eps, u64 sage_normalize,
//   u64 gat_heads, f32 gat_negative_slope          (GnnConfig)
//   u64     parameter count; per parameter: u64 count + float32 data
//   u64 count + float32 data                       (input column means)
//   u64 count + float32 data                       (input column stddevs)
//   u64     input kind (0 = dataset features, 1 = frozen matrix)
//   if frozen: u64 rows, u64 cols, float32 data
//   u64     frozen input doubles as pseudo-sensitive attributes (0/1)
#ifndef FAIRWOS_SERVE_ARTIFACT_H_
#define FAIRWOS_SERVE_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/fitted.h"
#include "data/dataset.h"

namespace fairwos::serve {

/// In-memory form of a `.fwmodel` file.
struct ModelArtifact {
  /// Stable identifier used for cache keys and telemetry; defaults to
  /// "<method>:<dataset>:<seed>" (DefaultModelId).
  std::string model_id;
  core::FittedGnnModel::Provenance provenance;
  nn::GnnConfig gnn;
  /// Flattened parameter tensors, in Module::parameters() order.
  std::vector<std::vector<float>> params;
  /// Per-column mean/stddev of the matrix the model predicts from. For
  /// kDatasetFeatures models these are the serving-side compatibility
  /// check: a dataset whose feature statistics drift from the fit-time
  /// ones is rejected at restore (validation only — features are never
  /// re-normalized, preserving bit-identity with the in-process model).
  std::vector<float> input_mean;
  std::vector<float> input_std;
  core::FittedGnnModel::InputKind input_kind =
      core::FittedGnnModel::InputKind::kDatasetFeatures;
  /// Defined iff input_kind == kFrozen.
  tensor::Tensor frozen_input;
  /// True when the frozen input is the encoder's X⁰ and should be exposed
  /// as PredictionResult::pseudo_sens.
  bool input_is_pseudo_sens = false;
};

/// "<method>:<dataset>:<seed>" — the default model id.
std::string DefaultModelId(const core::FittedGnnModel::Provenance& p);

/// Per-column mean and population stddev of a [N, F] matrix.
void ComputeColumnStats(const tensor::Tensor& x, std::vector<float>* mean,
                        std::vector<float>* stddev);

/// Captures a fitted model as an artifact. `ds` supplies the input matrix
/// statistics for kDatasetFeatures models; it must be the dataset the model
/// was fit on. `model_id` empty picks DefaultModelId.
ModelArtifact MakeArtifact(const core::FittedGnnModel& model,
                           const data::Dataset& ds,
                           const std::string& model_id = "");

/// Writes the artifact to `path` as a v4 FWCP file (atomic + durable).
common::Status SaveModelArtifact(const std::string& path,
                                 const ModelArtifact& artifact);

/// Reads and authenticates a v4 FWCP file. Errors follow the checkpoint
/// Status contract: InvalidArgument for a wrong magic/version, IoError for
/// truncation or CRC mismatch or a malformed payload.
common::Result<ModelArtifact> LoadModelArtifact(const std::string& path);

/// Reconstructs the servable model against `ds` (which supplies the graph
/// and, for kDatasetFeatures artifacts, the input matrix). Validates the
/// parameter shapes and — for kDatasetFeatures — the dataset's column
/// statistics against the artifact before touching any model state;
/// FailedPrecondition when they do not match.
common::Result<std::unique_ptr<core::FittedGnnModel>> RestoreFittedModel(
    const ModelArtifact& artifact, const data::Dataset& ds);

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_ARTIFACT_H_
