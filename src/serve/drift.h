// Online feature-drift monitor (docs/serving.md). The `.fwmodel` artifact
// stores the per-column normalization statistics of the matrix the model
// was fit on; at serve time those are checked once at restore. This monitor
// turns that static check into a continuous audit: it accumulates a
// streaming per-column mean over the feature rows of incoming requests and
// scores each column's deviation from the fit-time mean in units of the
// fit-time stddev. Traffic concentrated on a subpopulation whose features
// sit far from the training distribution — the deployment shift the source
// paper's no-sensitive-attributes setting is most exposed to — pushes the
// z-score past the threshold and raises a latched drift alert.
#ifndef FAIRWOS_SERVE_DRIFT_H_
#define FAIRWOS_SERVE_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairwos::serve {

struct DriftOptions {
  /// No alert (and MaxZ() reports 0) until this many rows were observed;
  /// early traffic is too small a sample to call drift.
  int64_t min_samples = 64;
  /// Alert when any column's |observed mean - fit mean| exceeds this many
  /// fit-time stddevs.
  double z_threshold = 4.0;
};

/// Streaming audit of one model's incoming feature rows against its
/// fit-time column statistics. Not thread-safe: the engine observes rows
/// under its own mutex.
class DriftMonitor {
 public:
  DriftMonitor(std::vector<float> fit_mean, std::vector<float> fit_std,
               DriftOptions options);

  /// Accumulates one feature row (`columns()` contiguous floats).
  void ObserveRow(const float* row);

  /// Largest per-column z-score of the observed mean, and the column it
  /// occurs in; 0 until min_samples rows were seen.
  double MaxZ(int64_t* worst_column = nullptr) const;

  /// True exactly once per threshold crossing: fires when MaxZ() first
  /// exceeds z_threshold, then latches until the score falls back below
  /// the threshold (or Reset). Fills the alert's column and z-score.
  bool CheckAlert(int64_t* column, double* z);

  /// Forgets all observations (e.g. after a model swap installed new
  /// fit-time statistics).
  void Reset();

  int64_t samples() const { return samples_; }
  int64_t columns() const { return static_cast<int64_t>(fit_mean_.size()); }
  double observed_mean(int64_t column) const {
    return sums_[static_cast<size_t>(column)] /
           static_cast<double>(samples_ > 0 ? samples_ : 1);
  }
  double fit_mean(int64_t column) const {
    return fit_mean_[static_cast<size_t>(column)];
  }
  double fit_std(int64_t column) const {
    return fit_std_[static_cast<size_t>(column)];
  }

 private:
  const std::vector<float> fit_mean_;
  const std::vector<float> fit_std_;
  const DriftOptions options_;
  std::vector<double> sums_;  // per-column running sums
  int64_t samples_ = 0;
  bool alerted_ = false;  // latched until the score recovers
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_DRIFT_H_
