// Batched inference over frozen models, hardened for production traffic
// (docs/serving.md).
//
// The setting is transductive: the graph is bound inside the classifier, so
// the unit of compute is one eval-mode forward pass over the FULL node set,
// no matter how many nodes a request asks about. The engine therefore
// micro-batches: concurrent Predict callers queue their node ids, the first
// one becomes the batch leader, waits up to the flush interval (or until
// the batch fills), runs ONE forward per requested model, and hands each
// caller its row. An LRU cache keyed on (model id, node id) answers repeat
// nodes without any forward at all.
//
// Robustness layer on top of that core:
//   * Models come from a ModelRegistry (serve/registry.h): many named
//     models, hot-swappable under traffic. Cache entries are generation-
//     checked and purged on Swap/Unload, so no stale prediction survives a
//     reload — post-swap answers are bit-identical to a fresh engine on
//     the new artifact.
//   * Admission control: a bounded request queue and optional per-model
//     quotas; requests past either limit are shed immediately with
//     ResourceExhausted instead of piling up latency.
//   * Deadlines: every Predict can carry a common::Deadline; a request
//     that cannot be answered in time resolves to DeadlineExceeded. No
//     wait in the engine is unbounded — followers use wait_for and
//     self-promote to leader if the current leader stalls or dies, so a
//     faulted leader can never hang every client thread.
//   * Degraded serving: if a batch forward faults (kServeBatchForward)
//     and retries are exhausted, the engine answers from the last known
//     good full-graph result, flagged `degraded=true`, instead of failing.
//   * Online drift audit: incoming request feature rows stream into a
//     per-model DriftMonitor scored against the artifact's fit-time
//     normalization stats (serve.drift.* gauges, drift_alert incidents).
//   * Streaming fairness audit: served predictions join against an
//     optional AuditTable of known group labels; windowed ΔSP/ΔEO/DI feed
//     serve.audit.* gauges and latched fairness_alert incidents
//     (serve/audit.h).
//   * Windowed SLO metrics: request latency, queue wait, and batch size
//     also stream into serve.window.* sliding windows so p50/p99 reflect
//     the last minute, not the process lifetime.
//   * Dynamic graphs: with EngineOptions::dynamic_graph set, every batch
//     forward reads one epoch-numbered graph::GraphSnapshot (snapshot
//     isolation — a compaction or mutation landing mid-forward never tears
//     the batch), and each published epoch purges exactly the affected
//     node ids from the LRU (serve.cache.invalidations).
//
// Determinism: the forward is the same RNG-free eval pass FittedGnnModel::
// Predict runs, computed by the deterministic parallel kernels — so served
// (non-degraded) predictions are bit-identical to the in-process model at
// any thread count and any batching schedule.
#ifndef FAIRWOS_SERVE_ENGINE_H_
#define FAIRWOS_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "core/fitted.h"
#include "graph/mutable_graph.h"
#include "serve/artifact.h"
#include "serve/audit.h"
#include "serve/drift.h"
#include "serve/lru_cache.h"
#include "serve/registry.h"

namespace fairwos::serve {

struct EngineOptions {
  /// A leader flushes as soon as this many requests are queued.
  int64_t max_batch_size = 32;
  /// How long a leader waits for the batch to fill before flushing anyway;
  /// 0 flushes immediately (batches only what is already queued).
  double flush_interval_ms = 1.0;
  /// LRU entries; 0 disables the cache.
  int64_t cache_capacity = 1024;
  /// Admission queue bound (includes the leader's own request). A Predict
  /// arriving while this many requests are pending is shed with
  /// ResourceExhausted.
  int64_t max_queue = 1024;
  /// Per-model pending-request quota; 0 = unlimited. One model's burst
  /// sheds with ResourceExhausted before it can starve the shared queue.
  int64_t per_model_quota = 0;
  /// Implicit per-request deadline for Predict calls that do not pass one;
  /// 0 = none. Expired requests resolve to DeadlineExceeded.
  double default_deadline_ms = 0.0;
  /// A follower that has waited this long without batch progress presumes
  /// the leader dead and promotes itself (re-queueing its request). Must
  /// comfortably exceed flush_interval_ms plus one forward pass.
  double leader_timeout_ms = 200.0;
  /// Extra forward attempts after a faulted batch forward before the
  /// engine degrades to the last known good result.
  int64_t forward_retries = 2;
  /// Online drift audit of incoming feature rows (serve/drift.h).
  bool drift_monitor = true;
  DriftOptions drift;
  /// Streaming fairness audit (serve/audit.h): when non-null, every served
  /// prediction is joined against this table and the windowed ΔSP/ΔEO/DI
  /// feed serve.audit.* metrics plus latched fairness_alert incidents.
  std::shared_ptr<const AuditTable> audit_table;
  AuditOptions audit;
  /// Dynamic-graph serving (graph/mutable_graph.h): when non-null, every
  /// batch forward reads an epoch-numbered GraphSnapshot (adjacency AND
  /// features) instead of the construction-time graph, and each published
  /// epoch purges exactly the affected (model, node) cache entries. Models
  /// with a frozen input matrix stay servable only while the snapshot's
  /// node count matches the fit-time graph (FailedPrecondition after an
  /// AddNode). The MutableGraph must outlive the engine.
  std::shared_ptr<graph::MutableGraph> dynamic_graph;
};

/// One answered request.
struct NodePrediction {
  int64_t node = 0;
  int label = 0;       // argmax class
  float prob1 = 0.0f;  // P(class 1)
  bool cache_hit = false;
  /// True when this answer came from the last known good result because
  /// the fresh forward faulted (stale but servable).
  bool degraded = false;
};

/// Hash for the (model id, node id) cache key.
struct CacheKeyHash {
  size_t operator()(const std::pair<std::string, int64_t>& k) const {
    return std::hash<std::string>()(k.first) ^
           (std::hash<int64_t>()(k.second) * 0x9e3779b97f4a7c15ull);
  }
};

/// Serves node-classification requests from the models of a registry.
/// Thread-safe: any number of threads may call Predict/PredictBatch
/// concurrently, and the registry may Swap/Unload models under traffic.
class InferenceEngine {
 public:
  /// Single-model convenience: loads one `.fwmodel` into a fresh registry
  /// and makes it the default model. `ds` must outlive the engine.
  static common::Result<std::unique_ptr<InferenceEngine>> Load(
      const std::string& artifact_path, const data::Dataset& ds,
      EngineOptions options = {});

  /// Wraps an already-restored model (e.g. straight from Fit) as the
  /// default model of a fresh registry.
  InferenceEngine(std::unique_ptr<core::FittedGnnModel> model,
                  std::string model_id, const data::Dataset& ds,
                  EngineOptions options);

  /// Serves every model of an existing registry (which may gain, lose,
  /// and swap models while the engine runs). No default model: requests
  /// must name one.
  InferenceEngine(std::shared_ptr<ModelRegistry> registry,
                  EngineOptions options);

  ~InferenceEngine();
  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Answers one node from `model_id`, blocking until its micro-batch
  /// executes (or the cache answers immediately). Statuses:
  ///   InvalidArgument    out-of-range node
  ///   NotFound           model not in the registry
  ///   ResourceExhausted  admission queue or per-model quota full
  ///   DeadlineExceeded   `deadline` (or the default deadline) expired
  ///   Internal           forward faulted and no degraded answer exists
  common::Result<NodePrediction> Predict(
      const std::string& model_id, int64_t node,
      const common::Deadline* deadline = nullptr);

  /// Default-model shorthand (single-model constructors).
  common::Result<NodePrediction> Predict(int64_t node);

  /// Answers many nodes from the calling thread, chunked deterministically
  /// into batches of at most max_batch_size; bypasses the admission queue
  /// (the caller already owns its own concurrency).
  common::Result<std::vector<NodePrediction>> PredictBatch(
      const std::string& model_id, const std::vector<int64_t>& nodes);
  common::Result<std::vector<NodePrediction>> PredictBatch(
      const std::vector<int64_t>& nodes);

  const std::string& model_id() const { return default_model_id_; }
  ModelRegistry& registry() { return *registry_; }
  /// Servable node-id range: the dataset's node count, or the currently
  /// published snapshot's when a dynamic graph is attached.
  int64_t num_nodes() const;
  /// The attached dynamic graph, or nullptr for static-graph engines.
  graph::MutableGraph* dynamic_graph() const {
    return options_.dynamic_graph.get();
  }

  /// Engine-local counters (the serve.* registry metrics aggregate across
  /// engines; these are per-instance, for benches and tests).
  struct Stats {
    int64_t requests = 0;
    int64_t batches = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t shed_queue = 0;         // ResourceExhausted: queue full
    int64_t shed_quota = 0;         // ResourceExhausted: per-model quota
    int64_t deadline_exceeded = 0;  // requests resolved DeadlineExceeded
    int64_t degraded = 0;           // answers served from last known good
    int64_t leader_promotions = 0;  // followers that usurped a dead leader
    int64_t cache_invalidations = 0;  // entries purged on swap/unload
    int64_t epoch_invalidations = 0;  // entries purged by graph epochs
    int64_t graph_epoch = 0;          // last graph epoch the engine saw
    int64_t drift_alerts = 0;
    int64_t fairness_alerts = 0;  // latched audit-window threshold crossings
  };
  Stats stats() const;

  /// True when an audit table was configured.
  bool audit_enabled() const { return auditor_ != nullptr; }

  /// Last audit-window checkpoint (all zeroes / DI = 1 when auditing is
  /// disabled or no stride checkpoint has been reached yet).
  AuditWindowMetrics audit_metrics() const;

  /// Whether the fairness-alert latch is currently raised.
  bool audit_alert_active() const;

  /// Audited share of all served predictions, percent (0 when auditing is
  /// disabled or before any traffic).
  double audit_coverage_pct() const;

  /// Test hook: the next `n` batch leaders "die" after capturing their
  /// batch — they fail their own request, never publish, and leave the
  /// leader flag held, exactly like a crashed thread. Followers must
  /// recover via timeout self-promotion.
  void CrashNextLeaderForTesting(int64_t n = 1) {
    crash_next_leader_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Test hook: feeds `snap` straight into the epoch-listener path, exactly
  /// as a MutableGraph notification would. Lets regression tests force the
  /// delivery orders (out-of-order, duplicate) the production notify path
  /// is designed to prevent.
  void DeliverGraphEpochForTesting(
      const std::shared_ptr<const graph::GraphSnapshot>& snap) {
    OnGraphEpoch(snap);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingRequest {
    std::string model_id;
    int64_t node = 0;
    NodePrediction result;
    common::Status status;  // meaningful once done
    bool done = false;
    bool queued = false;  // currently sitting in pending_
    /// When the request first entered pending_ (feeds the queue-wait
    /// window); unset for PredictBatch misses, which never queue.
    std::chrono::steady_clock::time_point enqueued{};
  };

  /// A cached answer is only valid for the generation that computed it.
  struct CachedValue {
    NodePrediction prediction;
    int64_t generation = 0;
  };

  /// One model's share of a captured batch, executed as one forward.
  struct GroupExecution {
    std::string model_id;
    int64_t generation = 0;
    int64_t graph_epoch = 0;  // snapshot epoch the forward read (dynamic)
    std::shared_ptr<const nn::PredictionResult> full;  // null on failure
    common::Status status;        // failure reason when full == nullptr
    bool forward_faulted = false;  // failure came from the forward pass
    std::vector<std::shared_ptr<PendingRequest>> reqs;
  };

  /// The last successful full-graph result per model — the degraded-mode
  /// fallback when a fresh forward faults.
  struct LastGood {
    std::shared_ptr<const nn::PredictionResult> full;
    int64_t generation = 0;
  };

  struct DriftState {
    std::unique_ptr<DriftMonitor> monitor;
    int64_t generation = 0;
  };

  void InitMetrics();

  /// Leader duty cycle: wait for the batch to fill (bounded by the flush
  /// interval), capture the queue, execute it, publish results. Enters and
  /// leaves with `lock` held; leader_active_/leader_since_ set by the
  /// caller. `self` is the calling thread's own request (the one a
  /// crash-injected leader fails).
  void RunAsLeader(std::unique_lock<std::mutex>& lock,
                   const std::shared_ptr<PendingRequest>& self);

  /// One forward pass (with fault retries) answering `reqs` for one model;
  /// no engine lock held (the group is exclusively owned by the caller).
  GroupExecution ExecuteGroup(
      const std::string& model_id,
      std::vector<std::shared_ptr<PendingRequest>> reqs);

  /// Fills results, inserts cache entries (generation-checked, with the
  /// kServeCacheInsert fault hook), updates the last-good snapshot, and
  /// applies the degraded fallback. Requires the engine lock.
  void PublishGroupLocked(GroupExecution* group);

  /// Streams `node`'s feature row into the model's drift monitor and
  /// raises alerts. Requires the engine lock.
  void ObserveDriftLocked(const ModelRegistry::Entry& entry, int64_t node);

  /// Joins one served prediction against the fairness auditor and raises
  /// (or re-arms) the latched fairness alert. Requires the engine lock.
  void ObserveAuditLocked(const std::string& model_id,
                          const NodePrediction& p);

  /// Removes `req` from the pending queue if still there. Requires lock.
  void AbandonLocked(const std::shared_ptr<PendingRequest>& req);

  /// Registry listener: purges the model's cache entries and per-model
  /// serving state after a swap or unload.
  void OnInvalidation(const std::string& model_id, int64_t new_generation);

  /// Dynamic-graph epoch listener: purges exactly the cache entries whose
  /// node id is in the snapshot's affected set (any model).
  void OnGraphEpoch(const std::shared_ptr<const graph::GraphSnapshot>& snap);

  /// Argmax/prob1 for `node` from a full-graph result.
  static NodePrediction RowPrediction(const nn::PredictionResult& full,
                                      int64_t node);

  void EmitRequestTelemetry(const std::string& model_id,
                            const NodePrediction& p, double latency_ms) const;
  void EmitRejectTelemetry(const std::string& model_id, int64_t node,
                           const char* reason) const;

  std::shared_ptr<ModelRegistry> registry_;
  std::string default_model_id_;  // empty for registry-backed engines
  int64_t num_nodes_ = 0;  // dataset node count (static-graph range check)
  EngineOptions options_;
  int64_t listener_token_ = 0;
  int64_t graph_listener_token_ = 0;  // epoch listener (dynamic graphs)

  mutable std::mutex mu_;
  std::condition_variable batch_ready_;  // wakes a waiting leader early
  std::condition_variable done_;         // wakes followers
  std::vector<std::shared_ptr<PendingRequest>> pending_;
  std::map<std::string, int64_t> pending_per_model_;
  bool leader_active_ = false;
  Clock::time_point leader_since_{};
  LruCache<std::pair<std::string, int64_t>, CachedValue, CacheKeyHash> cache_;
  std::map<std::string, LastGood> last_good_;
  std::map<std::string, DriftState> drift_;
  std::unique_ptr<FairnessAuditor> auditor_;  // guarded by mu_
  bool audit_alert_state_ = false;  // last seen latch, for cleared events
  /// Highest graph epoch whose invalidations have been applied; a forward
  /// that read an older snapshot must not populate the cache (its affected
  /// rows were already purged). Guarded by mu_.
  int64_t graph_epoch_ = 0;

  std::atomic<int64_t> crash_next_leader_{0};

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};
  std::atomic<int64_t> shed_queue_{0};
  std::atomic<int64_t> shed_quota_{0};
  std::atomic<int64_t> deadline_exceeded_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> leader_promotions_{0};
  std::atomic<int64_t> cache_invalidations_{0};
  std::atomic<int64_t> epoch_invalidations_{0};
  std::atomic<int64_t> drift_alerts_{0};
  std::atomic<int64_t> fairness_alerts_{0};

  // Registry metrics, fetched once (pointers are stable process-wide).
  obs::Counter* requests_counter_;
  obs::Counter* batches_counter_;
  obs::Counter* hits_counter_;
  obs::Counter* misses_counter_;
  obs::Counter* accepted_counter_;
  obs::Counter* shed_queue_counter_;
  obs::Counter* shed_quota_counter_;
  obs::Counter* deadline_counter_;
  obs::Counter* degraded_counter_;
  obs::Counter* promotions_counter_;
  obs::Counter* invalidations_counter_;
  obs::Counter* insert_dropped_counter_;
  obs::Counter* forward_retries_counter_;
  obs::Counter* drift_alerts_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Gauge* drift_max_z_gauge_;
  obs::Gauge* drift_samples_gauge_;
  obs::Histogram* batch_size_hist_;
  obs::Histogram* latency_hist_;
  // Sliding windows: SLO views of the last N seconds, not process lifetime.
  obs::WindowedHistogram* latency_window_;
  obs::WindowedHistogram* queue_wait_window_;
  obs::WindowedHistogram* batch_size_window_;
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_ENGINE_H_
