// Batched inference over a frozen model (docs/serving.md).
//
// The setting is transductive: the graph is bound inside the classifier, so
// the unit of compute is one eval-mode forward pass over the FULL node set,
// no matter how many nodes a request asks about. The engine therefore
// micro-batches: concurrent Predict callers queue their node ids, the first
// one becomes the batch leader, waits up to the flush interval (or until
// the batch fills), runs ONE forward for everyone, and hands each caller
// its row. An LRU cache keyed on (model id, node id) answers repeat nodes
// without any forward at all.
//
// Determinism: the forward is the same RNG-free eval pass FittedGnnModel::
// Predict runs, computed by the deterministic parallel kernels — so served
// predictions are bit-identical to the in-process model at any thread
// count and any batching schedule.
#ifndef FAIRWOS_SERVE_ENGINE_H_
#define FAIRWOS_SERVE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "core/fitted.h"
#include "serve/artifact.h"
#include "serve/lru_cache.h"

namespace fairwos::serve {

struct EngineOptions {
  /// A leader flushes as soon as this many requests are queued.
  int64_t max_batch_size = 32;
  /// How long a leader waits for the batch to fill before flushing anyway;
  /// 0 flushes immediately (batches only what is already queued).
  double flush_interval_ms = 1.0;
  /// LRU entries; 0 disables the cache.
  int64_t cache_capacity = 1024;
};

/// One answered request.
struct NodePrediction {
  int64_t node = 0;
  int label = 0;      // argmax class
  float prob1 = 0.0f;  // P(class 1)
  bool cache_hit = false;
};

/// Hash for the (model id, node id) cache key.
struct CacheKeyHash {
  size_t operator()(const std::pair<std::string, int64_t>& k) const {
    return std::hash<std::string>()(k.first) ^
           (std::hash<int64_t>()(k.second) * 0x9e3779b97f4a7c15ull);
  }
};

/// Serves node-classification requests from a frozen model. Thread-safe:
/// any number of threads may call Predict/PredictBatch concurrently.
class InferenceEngine {
 public:
  /// Loads a `.fwmodel` artifact and binds it to `ds` (graph + features).
  /// `ds` must outlive the engine.
  static common::Result<std::unique_ptr<InferenceEngine>> Load(
      const std::string& artifact_path, const data::Dataset& ds,
      EngineOptions options = {});

  /// Wraps an already-restored model (e.g. straight from Fit).
  InferenceEngine(std::unique_ptr<core::FittedGnnModel> model,
                  std::string model_id, const data::Dataset& ds,
                  EngineOptions options);

  /// Answers one node, blocking until its micro-batch executes (or the
  /// cache answers immediately). InvalidArgument for an out-of-range node.
  common::Result<NodePrediction> Predict(int64_t node);

  /// Answers many nodes from the calling thread, chunked deterministically
  /// into batches of at most max_batch_size; bypasses the request queue.
  common::Result<std::vector<NodePrediction>> PredictBatch(
      const std::vector<int64_t>& nodes);

  const std::string& model_id() const { return model_id_; }
  const core::FittedGnnModel& model() const { return *model_; }
  int64_t num_nodes() const { return num_nodes_; }

  /// Engine-local counters (the serve.* registry metrics aggregate across
  /// engines; these are per-instance, for benches and tests).
  struct Stats {
    int64_t requests = 0;
    int64_t batches = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
  };
  Stats stats() const;

 private:
  struct PendingRequest {
    int64_t node = 0;
    NodePrediction result;
    bool done = false;
  };

  /// Leader duty cycle: wait for the batch to fill (bounded by the flush
  /// interval), capture the queue, execute it, publish results. Enters and
  /// leaves with `lock` held and leader_active_ set by the caller.
  void RunAsLeader(std::unique_lock<std::mutex>& lock);

  /// One forward pass answering `batch`; no lock required (the batch is
  /// exclusively owned by the caller).
  void ExecuteBatch(std::vector<std::shared_ptr<PendingRequest>>* batch);

  /// Argmax/prob1 for `node` from a freshly computed full-graph result.
  NodePrediction RowPrediction(const nn::PredictionResult& full,
                               int64_t node) const;

  void EmitRequestTelemetry(const NodePrediction& p, double latency_ms) const;

  std::unique_ptr<core::FittedGnnModel> model_;
  std::string model_id_;
  tensor::Tensor input_;  // resolved once at construction
  int64_t num_nodes_ = 0;
  EngineOptions options_;

  std::mutex mu_;
  std::condition_variable batch_ready_;  // wakes a waiting leader early
  std::condition_variable done_;         // wakes followers
  std::vector<std::shared_ptr<PendingRequest>> pending_;
  bool leader_active_ = false;
  LruCache<std::pair<std::string, int64_t>, NodePrediction, CacheKeyHash>
      cache_;

  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> cache_misses_{0};

  // Registry metrics, fetched once (pointers are stable process-wide).
  obs::Counter* requests_counter_;
  obs::Counter* batches_counter_;
  obs::Counter* hits_counter_;
  obs::Counter* misses_counter_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* batch_size_hist_;
  obs::Histogram* latency_hist_;
};

}  // namespace fairwos::serve

#endif  // FAIRWOS_SERVE_ENGINE_H_
