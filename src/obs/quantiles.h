// Quantile helpers shared by the serve benches, the windowed SLO metrics,
// and the ops-snapshot/Prometheus exporters (fairwos::obs — see
// docs/observability.md): exact percentiles over a raw sample set, and the
// interpolated quantile estimate recoverable from an exported fixed-bucket
// histogram.
#ifndef FAIRWOS_OBS_QUANTILES_H_
#define FAIRWOS_OBS_QUANTILES_H_

#include <cstdint>
#include <vector>

namespace fairwos::obs {

/// Exact percentiles over a sample set: sorts once at construction, then
/// answers any Quantile(pct) in O(1) with the index rule
/// sorted[pct/100 * (n-1)] — the formula the serve benches report, so
/// extracting it here changed no bench output.
class ExactQuantiles {
 public:
  /// Takes ownership of `samples`, drops NaN entries (a NaN breaks the
  /// sort's strict weak ordering and would poison every statistic), and
  /// sorts the rest ascending.
  explicit ExactQuantiles(std::vector<double> samples);

  /// pct in [0, 100] (clamped); 0 for an empty sample set.
  double Quantile(double pct) const;
  double Mean() const;
  double Min() const;
  double Max() const;
  int64_t count() const { return static_cast<int64_t>(sorted_.size()); }
  /// NaN samples rejected at construction.
  int64_t rejected() const { return rejected_; }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
  double sum_ = 0.0;
  int64_t rejected_ = 0;
};

/// Interpolated quantile from exported fixed-bucket histogram counts —
/// Prometheus' histogram_quantile, for consumers that only have the bucket
/// vector. `bounds` are the inclusive upper edges, `bucket_counts` has
/// bounds.size() + 1 entries (last = overflow), `q` in [0, 1]. Linear
/// interpolation inside the target bucket (the first bucket interpolates
/// from min(0, bounds[0])); a rank landing in the overflow bucket reports
/// the last finite edge. 0 for an empty histogram.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<int64_t>& bucket_counts, double q);

}  // namespace fairwos::obs

#endif  // FAIRWOS_OBS_QUANTILES_H_
