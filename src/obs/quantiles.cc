#include "obs/quantiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"

namespace fairwos::obs {

ExactQuantiles::ExactQuantiles(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  // NaN samples are rejected before the sort: a NaN breaks the strict weak
  // ordering (every comparison is false), which would leave the array
  // unsorted and poison Mean()/sum. They are counted so callers can tell
  // "clean" from "filtered" sample sets.
  const auto nan_begin = std::remove_if(
      sorted_.begin(), sorted_.end(), [](double v) { return std::isnan(v); });
  rejected_ = static_cast<int64_t>(sorted_.end() - nan_begin);
  sorted_.erase(nan_begin, sorted_.end());
  std::sort(sorted_.begin(), sorted_.end());
  for (double v : sorted_) sum_ += v;
}

double ExactQuantiles::Quantile(double pct) const {
  return QuantileFromSorted(sorted_, pct);
}

double ExactQuantiles::Mean() const {
  if (sorted_.empty()) return 0.0;
  return sum_ / static_cast<double>(sorted_.size());
}

double ExactQuantiles::Min() const {
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double ExactQuantiles::Max() const {
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<int64_t>& bucket_counts,
                         double q) {
  FW_CHECK_EQ(bucket_counts.size(), bounds.size() + 1)
      << "bucket_counts must have one overflow entry past the last bound";
  int64_t total = 0;
  for (int64_t c : bucket_counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  const double target = clamped * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(bucket_counts[i]);
    if (next >= target && bucket_counts[i] > 0) {
      if (i >= bounds.size()) {
        // Overflow bucket: no finite upper edge to interpolate toward.
        return bounds.back();
      }
      const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double upper = bounds[i];
      const double fraction =
          (target - cumulative) / static_cast<double>(bucket_counts[i]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
    }
    cumulative = next;
  }
  return bounds.back();
}

}  // namespace fairwos::obs
