#include "obs/prometheus.h"

#include <fstream>

#include "common/string_util.h"

namespace fairwos::obs {
namespace {

void AppendLine(std::string* out, const std::string& series, double value) {
  *out += common::StrFormat("%s %.9g\n", series.c_str(), value);
}

void AppendLine(std::string* out, const std::string& series, int64_t value) {
  *out += common::StrFormat("%s %lld\n", series.c_str(),
                            static_cast<long long>(value));
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "fairwos_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string prom = PrometheusMetricName(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    AppendLine(&out, prom, value);
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " gauge\n";
    AppendLine(&out, prom, value);
  }
  for (const auto& [name, h] : registry.HistogramValues()) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? common::StrFormat("%.9g", h.bounds[i])
                              : std::string("+Inf");
      AppendLine(&out, prom + "_bucket{le=\"" + le + "\"}", cumulative);
    }
    AppendLine(&out, prom + "_sum", h.sum);
    AppendLine(&out, prom + "_count", h.count);
    if (h.nan_count > 0) {
      const std::string nan_prom = prom + "_nan_total";
      out += "# TYPE " + nan_prom + " counter\n";
      AppendLine(&out, nan_prom, h.nan_count);
    }
  }
  for (const auto& [name, w] : registry.WindowValues()) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " summary\n";
    AppendLine(&out, prom + "{quantile=\"0.5\"}", w.p50);
    AppendLine(&out, prom + "{quantile=\"0.9\"}", w.p90);
    AppendLine(&out, prom + "{quantile=\"0.99\"}", w.p99);
    AppendLine(&out, prom + "_sum", w.sum);
    AppendLine(&out, prom + "_count", w.count);
  }
  return out;
}

common::Status WritePrometheusText(const std::string& path,
                                   const MetricsRegistry& registry) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return common::Status::IoError("cannot open for write: " + path);
  out << ToPrometheusText(registry);
  out.flush();
  if (!out) return common::Status::IoError("write failed: " + path);
  return common::Status::OK();
}

}  // namespace fairwos::obs
