// Prometheus text-exposition exporter (fairwos::obs — see
// docs/observability.md): renders a MetricsRegistry in the format a
// Prometheus scraper (or promtool) ingests. Counters become `_total`
// counters, gauges stay gauges, fixed-bucket histograms become cumulative
// `_bucket{le=...}` series with `_sum`/`_count`, and the sliding-window
// histograms export as summaries with `quantile` labels so dashboards see
// last-window p50/p99 instead of process-lifetime aggregates.
#ifndef FAIRWOS_OBS_PROMETHEUS_H_
#define FAIRWOS_OBS_PROMETHEUS_H_

#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace fairwos::obs {

/// `fairwos_` + `name` with every character outside [a-zA-Z0-9_] replaced
/// by '_' (metric dots become underscores: serve.audit.delta_sp ->
/// fairwos_serve_audit_delta_sp).
std::string PrometheusMetricName(const std::string& name);

/// The whole registry in Prometheus text exposition format 0.0.4.
std::string ToPrometheusText(
    const MetricsRegistry& registry = MetricsRegistry::Global());

common::Status WritePrometheusText(
    const std::string& path,
    const MetricsRegistry& registry = MetricsRegistry::Global());

}  // namespace fairwos::obs

#endif  // FAIRWOS_OBS_PROMETHEUS_H_
