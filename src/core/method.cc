#include "core/method.h"

namespace fairwos::core {

common::Result<MethodOutput> FairMethod::Run(const data::Dataset& ds,
                                             uint64_t seed) {
  FW_ASSIGN_OR_RETURN(std::unique_ptr<FittedModel> fitted, Fit(ds, seed));
  MethodOutput out = fitted->Predict(ds);
  out.train_seconds = fitted->train_seconds();
  return out;
}

}  // namespace fairwos::core
