// The frozen form of every GNN-backed method: a trained GnnClassifier plus
// the exact input matrix its predictions are computed from. This is what
// Fit returns, what serve/artifact.h serializes to a .fwmodel, and what the
// inference engine evaluates (docs/serving.md).
#ifndef FAIRWOS_CORE_FITTED_H_
#define FAIRWOS_CORE_FITTED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "core/method.h"
#include "nn/gnn.h"
#include "tensor/tensor.h"

namespace fairwos::core {

/// A trained GnnClassifier frozen for prediction. The graph is bound inside
/// the classifier (transductive setting), so Predict is one eval-mode
/// forward pass over the full node set — deterministic, RNG-free, and
/// bit-identical at any thread count.
class FittedGnnModel : public FittedModel {
 public:
  /// Where Predict takes the model input from.
  enum class InputKind {
    /// `ds.features` of the dataset passed to Predict — the common case
    /// (Vanilla\S, KSMOTE, FairRF, FairGKD\S train on the raw attributes).
    kDatasetFeatures,
    /// A matrix frozen at fit time and carried by the model: the encoder's
    /// X⁰ (Fairwos, PerturbCF) or RemoveR's column-reduced features.
    kFrozen,
  };

  /// Where this model came from — stamped into exported artifacts.
  struct Provenance {
    std::string method;   // producing method's display name
    std::string dataset;  // ds.name at fit time
    uint64_t seed = 0;    // fit seed
  };

  /// `input` must be defined for kFrozen and is ignored (may be undefined)
  /// for kDatasetFeatures.
  FittedGnnModel(nn::GnnClassifier model, InputKind input_kind,
                 tensor::Tensor input, Provenance provenance);

  /// One eval-mode forward pass; fills pred/prob1/embeddings (+ pseudo_sens
  /// when set) exactly like the former fused Run paths did.
  nn::PredictionResult Predict(const data::Dataset& ds) const override;

  std::string method_name() const override { return provenance_.method; }
  double train_seconds() const override { return train_seconds_; }
  const FittedGnnModel* AsGnn() const override { return this; }

  /// Resolves the input matrix Predict would use for `ds` (FW_CHECKs the
  /// shape contract). The engine uses this to run the forward itself.
  const tensor::Tensor& ResolveInput(const data::Dataset& ds) const;

  const nn::GnnClassifier& classifier() const { return model_; }
  InputKind input_kind() const { return input_kind_; }
  /// The frozen input matrix; undefined for kDatasetFeatures.
  const tensor::Tensor& frozen_input() const { return input_; }
  const Provenance& provenance() const { return provenance_; }
  const tensor::Tensor& pseudo_sens() const { return pseudo_sens_; }

  /// X⁰ to expose through every Predict (encoder-based methods).
  void set_pseudo_sens(tensor::Tensor x0) { pseudo_sens_ = std::move(x0); }
  void set_train_seconds(double seconds) { train_seconds_ = seconds; }
  /// Restamps the producing method's display name (ablation variants share
  /// one fit pipeline but report their own names).
  void set_method_name(std::string name) {
    provenance_.method = std::move(name);
  }

 private:
  nn::GnnClassifier model_;
  InputKind input_kind_;
  tensor::Tensor input_;  // defined iff input_kind_ == kFrozen
  Provenance provenance_;
  tensor::Tensor pseudo_sens_;  // optional
  double train_seconds_ = 0.0;
};

/// Convenience for Fit implementations: wraps a freshly trained classifier
/// as a Result<unique_ptr<FittedModel>> in one expression.
common::Result<std::unique_ptr<FittedModel>> MakeFittedGnn(
    nn::GnnClassifier model, FittedGnnModel::InputKind input_kind,
    tensor::Tensor input, FittedGnnModel::Provenance provenance,
    double train_seconds, tensor::Tensor pseudo_sens = tensor::Tensor());

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_FITTED_H_
