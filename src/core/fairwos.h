// Fairwos (paper §III, Algorithm 1): fair GNN training via graph
// counterfactuals without sensitive attributes.
//
// Pipeline:
//   1. Pre-train the encoder and freeze X⁰ = Encoder(G)   (Eq. 4-6)
//   2. Pre-train the GNN classifier on X⁰                 (Eq. 10)
//   3. Repeat (fine-tuning):
//        a. search graph counterfactuals per pseudo-attr  (Eq. 12)
//        b. update θ on L_U + α Σᵢ λᵢ Dᵢ                  (Eq. 16)
//        c. update λ by the closed-form KKT solution      (Eq. 24)
#ifndef FAIRWOS_CORE_FAIRWOS_H_
#define FAIRWOS_CORE_FAIRWOS_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/counterfactual.h"
#include "core/encoder.h"
#include "core/fitted.h"
#include "core/method.h"
#include "nn/checkpoint.h"
#include "nn/gnn.h"
#include "nn/guard.h"

namespace fairwos::core {

struct FairwosConfig {
  /// Backbone configuration; `in_features` is filled in from the data (or
  /// the encoder output) at training time.
  nn::GnnConfig gnn;
  EncoderConfig encoder;
  CounterfactualConfig counterfactual;

  /// Paper §V-A4 uses 1000 pre-train epochs on a GPU; the CPU default
  /// relies on early stopping instead.
  int64_t pretrain_epochs = 300;
  int64_t pretrain_patience = 30;
  /// Paper §V-A4: the fairness fine-tuning phase runs 15 epochs. Because
  /// Adam's step size is gradient-scale invariant, a handful of epochs at
  /// the pre-training learning rate cannot move the model; the fine-tuning
  /// phase therefore gets its own (larger) learning rate.
  int64_t finetune_epochs = 50;
  float finetune_lr = 3e-2f;

  float lr = 1e-3f;  // paper: Adam, 0.001
  float weight_decay = 5e-4f;

  /// α — weight of the fairness regularization term (Eq. 15).
  double alpha = 1.0;

  /// Model selection during fine-tuning (paper §V-A4: early stop "to
  /// preserve competitive utility"): the latest fine-tuning epoch whose
  /// validation accuracy stays within this many percentage points of the
  /// pre-trained model's is kept; if none qualifies, the best-validation
  /// fine-tuning epoch is kept.
  double utility_tolerance_pct = 4.0;

  // Ablation switches (paper §V-C): Fwos w/o E, w/o F, w/o W.
  bool use_encoder = true;
  bool use_fairness = true;
  bool use_weight_update = true;

  /// See lambda_solver.h: false = Eq. 24 verbatim, true = prose reading.
  bool invert_lambda_preference = false;

  /// Rollback-and-retry policy for both training phases: on a NaN/Inf loss,
  /// gradient, or parameter the loop restores the last-good parameters,
  /// halves the learning rate, and retries (docs/robustness.md). When
  /// fine-tuning cannot stabilize within the budget, training degrades to
  /// the pre-trained classifier (the "w/o F" ablation) instead of failing.
  nn::RecoveryConfig recovery;

  /// Steady-state global-norm gradient clip applied on every optimizer
  /// step; <= 0 (the default) leaves steps unclipped until the recovery
  /// path enables clipping after a divergence.
  float max_grad_norm = 0.0f;

  /// Durable crash-resume (docs/resume.md): rotating full-training-state
  /// checkpoints written at epoch boundaries of the classifier pre-train
  /// and fairness fine-tune phases, and deterministic restart from the
  /// newest valid one. Disabled while `checkpoint.dir` is empty.
  nn::CheckpointOptions checkpoint;

  /// Cooperative stop token, polled at every epoch boundary (including the
  /// encoder's). On expiry the run writes one final checkpoint (when
  /// checkpointing is enabled) and returns Status::DeadlineExceeded.
  common::Deadline deadline;
};

/// Diagnostics exposed to benches and tests.
struct FairwosStats {
  std::vector<double> lambda;           // final importance weights
  std::vector<double> final_distances;  // final per-attribute Dᵢ
  double encoder_val_acc_pct = 0.0;
  int64_t pretrain_epochs_run = 0;
  int64_t finetune_epochs_run = 0;
  /// Divergence recoveries (rollback + lr halving) performed per phase.
  int64_t pretrain_retries = 0;
  int64_t finetune_retries = 0;
  /// True when fine-tuning exhausted its retry budget and the pre-trained
  /// classifier was kept — graceful degradation to the "w/o F" ablation.
  bool finetune_degraded = false;
  /// Crash-resume provenance: whether this run restarted from a checkpoint,
  /// and if so from which phase/epoch boundary (docs/resume.md).
  bool resumed = false;
  int64_t resume_phase = 0;
  int64_t resume_epoch = 0;
};

/// Trains Fairwos once and freezes the result. Deterministic in (config,
/// dataset, seed); with checkpointing enabled, a run interrupted at any
/// epoch boundary and then resumed produces a bit-identical model.
/// `stats` may be nullptr; it is also written on the DeadlineExceeded error
/// path so callers can report how far the run got.
common::Result<std::unique_ptr<FittedGnnModel>> FitFairwos(
    const FairwosConfig& config, const data::Dataset& ds, uint64_t seed,
    FairwosStats* stats);

/// Fit-then-predict convenience kept for benches and tests that consume the
/// predictions directly; behaviour-identical to the pre-split fused run.
common::Result<MethodOutput> TrainFairwos(const FairwosConfig& config,
                                          const data::Dataset& ds,
                                          uint64_t seed, FairwosStats* stats);

/// FairMethod adapter, including the ablation variants; `name` is shown in
/// tables ("Fairwos", "Fwos w/o E", ...).
class FairwosMethod : public FairMethod {
 public:
  FairwosMethod(std::string name, FairwosConfig config)
      : name_(std::move(name)), config_(std::move(config)) {}

  std::string name() const override { return name_; }

  /// Thread-safe: one FairwosMethod may run concurrent trials
  /// (eval::RunRepeated with --threads > 1); each Fit writes last_stats()
  /// under a lock, so after parallel trials it holds the stats of whichever
  /// trial finished last.
  common::Result<std::unique_ptr<FittedModel>> Fit(const data::Dataset& ds,
                                                   uint64_t seed) override;

  FairwosStats last_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return last_stats_;
  }

 private:
  std::string name_;
  FairwosConfig config_;
  mutable std::mutex stats_mu_;
  FairwosStats last_stats_;  // under stats_mu_
};

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_FAIRWOS_H_
