#include "core/lambda_solver.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace fairwos::core {

std::vector<double> ProjectOntoSimplex(const std::vector<double>& v) {
  FW_CHECK(!v.empty());
  const size_t n = v.size();
  std::vector<double> u = v;
  std::sort(u.begin(), u.end(), std::greater<double>());
  // Find rho = max{ j : u_j + (1 - sum_{k<=j} u_k) / j > 0 }.
  double cumsum = 0.0;
  double tau = 0.0;
  size_t rho = 0;
  double best_cumsum = 0.0;
  for (size_t j = 0; j < n; ++j) {
    cumsum += u[j];
    if (u[j] + (1.0 - cumsum) / static_cast<double>(j + 1) > 0.0) {
      rho = j + 1;
      best_cumsum = cumsum;
    }
  }
  FW_CHECK_GE(rho, 1u);  // always holds: j=0 gives u_0 + (1 - u_0) = 1 > 0
  tau = (best_cumsum - 1.0) / static_cast<double>(rho);
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = std::max(0.0, v[i] - tau);
  return out;
}

std::vector<double> SolveLambda(const std::vector<double>& d, double alpha,
                                bool invert_preference) {
  FW_CHECK(!d.empty());
  FW_CHECK_GE(alpha, 0.0);
  std::vector<double> v(d.size());
  const double sign = invert_preference ? 1.0 : -1.0;
  for (size_t i = 0; i < d.size(); ++i) {
    FW_CHECK_GE(d[i], 0.0) << "distances are non-negative by construction";
    v[i] = sign * alpha * d[i] / 2.0;
  }
  return ProjectOntoSimplex(v);
}

}  // namespace fairwos::core
