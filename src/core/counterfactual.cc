#include "core/counterfactual.h"

#include <algorithm>
#include <numeric>

namespace fairwos::core {
namespace {

/// Picks `k` node ids (all of them when k <= 0 or k >= n).
std::vector<int64_t> PickNodes(int64_t n, int64_t k, common::Rng* rng) {
  if (k <= 0 || k >= n) {
    std::vector<int64_t> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  return rng->SampleWithoutReplacement(n, k);
}

}  // namespace

CounterfactualSet FindCounterfactuals(
    const tensor::Tensor& embeddings,
    const std::vector<std::vector<uint8_t>>& bins,
    const std::vector<int>& pseudo_labels, const CounterfactualConfig& config,
    common::Rng* rng) {
  FW_CHECK_EQ(embeddings.rank(), 2);
  const int64_t n = embeddings.dim(0);
  const int64_t h = embeddings.dim(1);
  FW_CHECK_EQ(static_cast<int64_t>(bins.size()), n);
  FW_CHECK_EQ(static_cast<int64_t>(pseudo_labels.size()), n);
  FW_CHECK_GT(n, 1);
  const int64_t num_attrs = static_cast<int64_t>(bins[0].size());
  FW_CHECK_GT(num_attrs, 0);
  FW_CHECK_GT(config.top_k, 0);

  CounterfactualSet out;
  out.anchors = PickNodes(n, config.sample_nodes, rng);
  const std::vector<int64_t> pool = PickNodes(n, config.candidate_pool, rng);
  out.matches.assign(
      static_cast<size_t>(num_attrs),
      std::vector<std::vector<int64_t>>(out.anchors.size()));

  const float* emb = embeddings.data().data();
  std::vector<std::pair<float, int64_t>> order(pool.size());
  for (size_t a = 0; a < out.anchors.size(); ++a) {
    const int64_t v = out.anchors[a];
    const float* ev = emb + v * h;
    // Distance of the anchor to every candidate, then one shared sort; the
    // per-attribute pass below just scans this order and filters.
    size_t m = 0;
    for (int64_t cand : pool) {
      if (cand == v) continue;
      if (pseudo_labels[static_cast<size_t>(cand)] !=
          pseudo_labels[static_cast<size_t>(v)]) {
        continue;  // Eq. 12: same (pseudo-)label
      }
      const float* ec = emb + cand * h;
      float dist = 0.0f;
      for (int64_t d = 0; d < h; ++d) {
        const float diff = ev[d] - ec[d];
        dist += diff * diff;
      }
      order[m++] = {dist, cand};
    }
    std::sort(order.begin(), order.begin() + static_cast<int64_t>(m));
    for (int64_t i = 0; i < num_attrs; ++i) {
      auto& slot = out.matches[static_cast<size_t>(i)][a];
      slot.reserve(static_cast<size_t>(config.top_k));
      const uint8_t anchor_bin =
          bins[static_cast<size_t>(v)][static_cast<size_t>(i)];
      for (size_t c = 0; c < m; ++c) {
        const int64_t cand = order[c].second;
        if (bins[static_cast<size_t>(cand)][static_cast<size_t>(i)] ==
            anchor_bin) {
          continue;  // Eq. 12: x⁰ᵢ must differ
        }
        slot.push_back(cand);
        if (static_cast<int64_t>(slot.size()) == config.top_k) break;
      }
    }
  }
  return out;
}

}  // namespace fairwos::core
