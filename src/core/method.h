// The uniform interface every fair-learning method implements (Fairwos and
// all baselines), so the experiment harness and benches can treat methods
// interchangeably.
#ifndef FAIRWOS_CORE_METHOD_H_
#define FAIRWOS_CORE_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "tensor/tensor.h"

namespace fairwos::core {

/// What a method produces for one training run on one dataset.
struct MethodOutput {
  /// Hard predictions, one per node (train/val/test alike).
  std::vector<int> pred;
  /// P(y = 1) per node; used for AUC.
  std::vector<float> prob1;
  /// Final node representations [N, hidden]; may be undefined for methods
  /// that do not expose one.
  tensor::Tensor embeddings;
  /// Pseudo-sensitive attributes X⁰ [N, I]; defined only for Fairwos
  /// (visualised by the Fig. 7 bench).
  tensor::Tensor pseudo_sens;
  /// Wall-clock training time, for the Fig. 8 runtime comparison.
  double train_seconds = 0.0;
};

/// A fair node-classification method. Implementations must be deterministic
/// in (dataset, seed).
class FairMethod {
 public:
  virtual ~FairMethod() = default;

  /// Display name used in tables ("Fairwos", "Vanilla\\S", ...).
  virtual std::string name() const = 0;

  /// Trains on ds.split.train (labels visible only there), predicts for all
  /// nodes. The sensitive attribute in `ds.sens` must not be read — it is
  /// evaluation-only; tests enforce this by perturbation.
  virtual common::Result<MethodOutput> Run(const data::Dataset& ds,
                                           uint64_t seed) = 0;
};

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_METHOD_H_
