// The uniform interface every fair-learning method implements (Fairwos and
// all baselines), so the experiment harness and benches can treat methods
// interchangeably.
//
// The lifecycle is split in two (docs/serving.md):
//   Fit(dataset, seed)      trains and returns a frozen FittedModel
//   FittedModel::Predict    evaluates the frozen model — repeatable,
//                           side-effect free, and bit-identical across calls
#ifndef FAIRWOS_CORE_METHOD_H_
#define FAIRWOS_CORE_METHOD_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "nn/prediction.h"
#include "tensor/tensor.h"

namespace fairwos::core {

class FittedGnnModel;

/// What a method produces for one training run on one dataset. Alias of the
/// repository-wide prediction type (nn/prediction.h); kept so existing call
/// sites read naturally.
using MethodOutput = nn::PredictionResult;

/// A trained, frozen model: no optimizer state, no training inputs beyond
/// what prediction needs. Predict must be deterministic and repeatable —
/// calling it twice, at any thread count, yields bit-identical results.
class FittedModel {
 public:
  virtual ~FittedModel() = default;

  /// Predictions for every node of `ds`. The dataset must be the one the
  /// model was fitted on (same graph and feature schema); implementations
  /// check what they can and abort on contract violations.
  virtual nn::PredictionResult Predict(const data::Dataset& ds) const = 0;

  /// Display name of the method that produced this model.
  virtual std::string method_name() const = 0;

  /// Wall-clock seconds the producing Fit spent; 0 when unknown (e.g. a
  /// model restored from a serialized artifact).
  virtual double train_seconds() const { return 0.0; }

  /// Checked downcast for the GNN-backed models every built-in method
  /// produces — what artifact export (serve/artifact.h) requires. Returns
  /// nullptr for models without a serializable GNN core.
  virtual const FittedGnnModel* AsGnn() const { return nullptr; }
};

/// Trivial FittedModel around a fixed prediction — for test doubles and
/// methods whose fit step computes the predictions directly.
class PrecomputedModel : public FittedModel {
 public:
  PrecomputedModel(std::string method_name, nn::PredictionResult result)
      : method_name_(std::move(method_name)), result_(std::move(result)) {}

  nn::PredictionResult Predict(const data::Dataset& ds) const override {
    (void)ds;
    return result_;
  }
  std::string method_name() const override { return method_name_; }
  double train_seconds() const override { return result_.train_seconds; }

 private:
  std::string method_name_;
  nn::PredictionResult result_;
};

/// A fair node-classification method. Implementations must be deterministic
/// in (dataset, seed).
class FairMethod {
 public:
  virtual ~FairMethod() = default;

  /// Display name used in tables ("Fairwos", "Vanilla\\S", ...).
  virtual std::string name() const = 0;

  /// Trains on ds.split.train (labels visible only there) and freezes the
  /// result. The sensitive attribute in `ds.sens` must not be read — it is
  /// evaluation-only; tests enforce this by perturbation.
  virtual common::Result<std::unique_ptr<FittedModel>> Fit(
      const data::Dataset& ds, uint64_t seed) = 0;
};

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_METHOD_H_
