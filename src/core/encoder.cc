#include "core/encoder.h"

#include <algorithm>
#include <limits>

#include "common/telemetry.h"
#include "common/trace.h"
#include "fairness/metrics.h"
#include "tensor/ops.h"

namespace fairwos::core {

PretrainedEncoder::PretrainedEncoder(const EncoderConfig& config,
                                     const data::Dataset& ds, uint64_t seed,
                                     const common::Deadline* deadline) {
  FW_CHECK_GT(config.out_dim, 0);
  FW_CHECK_GT(config.epochs, 0);
  common::Rng rng(seed);
  nn::GnnConfig gnn;
  gnn.backbone = nn::Backbone::kGcn;  // the encoder always sees structure
  gnn.in_features = ds.num_attrs();
  gnn.hidden = config.out_dim;
  gnn.num_layers = 1;
  gnn.num_classes = 2;
  gnn.dropout = config.dropout;
  nn::GnnClassifier model(gnn, ds.graph, &rng);
  nn::Adam opt(model.parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
               config.weight_decay);

  auto snapshot = nn::SnapshotParameters(model);
  double best_val_loss = std::numeric_limits<double>::infinity();
  int64_t since_best = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (deadline != nullptr && deadline->Expired()) break;
    FW_TRACE_SPAN("encoder/pretrain_epoch");
    opt.ZeroGrad();
    tensor::Tensor logits = model.Forward(ds.features, /*training=*/true, &rng);
    tensor::Tensor loss =
        tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.train);
    loss.Backward();
    opt.Step();

    // Validation loss drives checkpointing (Eq. 5 is optimised on the
    // train split only).
    tensor::NoGradGuard no_grad;
    tensor::Tensor eval_logits =
        model.Forward(ds.features, /*training=*/false, &rng);
    const double val_loss =
        tensor::SoftmaxCrossEntropy(eval_logits, ds.labels, ds.split.val)
            .item();
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("epoch")
                         .Set("phase", "encoder")
                         .Set("epoch", epoch)
                         .Set("loss_cls", loss.item())
                         .Set("val_loss", val_loss)
                         .Set("lr", static_cast<double>(opt.lr())));
    }
    if (val_loss < best_val_loss) {
      best_val_loss = val_loss;
      snapshot = nn::SnapshotParameters(model);
      since_best = 0;
    } else if (config.patience > 0 && ++since_best >= config.patience) {
      break;
    }
  }
  nn::RestoreParameters(model, snapshot);
  {
    tensor::NoGradGuard no_grad;
    auto result = nn::PredictFromLogits(
        model.Forward(ds.features, /*training=*/false, &rng));
    best_val_acc_ =
        fairness::AccuracyPct(result.pred, ds.labels, ds.split.val);
  }

  // Eq. 6: apply the frozen encoder as a feature extractor.
  tensor::NoGradGuard no_grad;
  x0_ = model.Embed(ds.features, /*training=*/false, &rng).DetachCopy();
}

std::vector<std::vector<uint8_t>> MedianBins(const tensor::Tensor& x0) {
  FW_CHECK_EQ(x0.rank(), 2);
  const int64_t n = x0.dim(0), f = x0.dim(1);
  FW_CHECK_GT(n, 0);
  std::vector<std::vector<uint8_t>> bins(
      static_cast<size_t>(n), std::vector<uint8_t>(static_cast<size_t>(f)));
  std::vector<float> column(static_cast<size_t>(n));
  for (int64_t j = 0; j < f; ++j) {
    for (int64_t i = 0; i < n; ++i) column[static_cast<size_t>(i)] = x0.at(i, j);
    auto mid = column.begin() + static_cast<int64_t>(column.size()) / 2;
    std::nth_element(column.begin(), mid, column.end());
    const float median = *mid;
    for (int64_t i = 0; i < n; ++i) {
      bins[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          x0.at(i, j) >= median ? 1 : 0;
    }
  }
  return bins;
}

}  // namespace fairwos::core
