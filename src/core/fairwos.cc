#include "core/fairwos.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/lambda_solver.h"
#include "fairness/metrics.h"
#include "nn/optim.h"
#include "tensor/arena.h"
#include "tensor/ops.h"

namespace fairwos::core {
namespace {

// Checkpoint phase ids (docs/resume.md). Phase 0 is reserved for
// baselines::TrainClassifier; the encoder phase keeps no durable state.
constexpr int64_t kPhasePretrain = 1;
constexpr int64_t kPhaseFinetune = 2;

void AppendSnapshot(std::vector<std::vector<float>>* blobs,
                    const std::vector<std::vector<float>>& snapshot) {
  blobs->insert(blobs->end(), snapshot.begin(), snapshot.end());
}

/// Checkpoint sections are validated against the live module before
/// RestoreParameters (which FW_CHECK-aborts on mismatch) ever sees them, so
/// a checkpoint from a different config surfaces as a Status.
common::Status CheckParamsMatch(
    const std::vector<tensor::Tensor>& params,
    const std::vector<std::vector<float>>& saved, const char* what) {
  return nn::CheckParamsCompatible(params, saved, what);
}

void EmitResumeEvent(const std::string& path, const nn::TrainState& st) {
  obs::MetricsRegistry::Global().GetCounter("resume.success")->Increment();
  obs::EmitEvent(obs::Event("resume")
                     .Set("path", path)
                     .Set("phase", st.phase)
                     .Set("epoch", st.epoch));
}

void EmitDeadlineEvent(const char* phase, int64_t epoch,
                       const common::Deadline& deadline, bool checkpointed) {
  obs::MetricsRegistry::Global()
      .GetCounter("resume.deadline_exceeded")
      ->Increment();
  obs::EmitEvent(obs::Event("deadline_exceeded")
                     .Set("phase", phase)
                     .Set("epoch", epoch)
                     .Set("reason", common::StopReasonName(deadline.reason()))
                     .Set("checkpointed", static_cast<int64_t>(checkpointed)));
}

/// Evaluation-mode predictions for every node.
nn::PredictionResult Evaluate(const nn::GnnClassifier& model,
                              const tensor::Tensor& x, common::Rng* rng) {
  tensor::NoGradGuard no_grad;
  return nn::PredictFromLogits(model.Forward(x, /*training=*/false, rng));
}

/// Validation cross-entropy — the early-stopping signal (accuracy on small
/// validation splits is too coarsely quantised).
double ValLoss(const nn::GnnClassifier& model, const tensor::Tensor& x,
               const data::Dataset& ds, common::Rng* rng) {
  tensor::NoGradGuard no_grad;
  tensor::Tensor logits = model.Forward(x, /*training=*/false, rng);
  return tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.val).item();
}

/// Per-attribute counterfactual distances Dᵢ (Eq. 13) measured on a plain
/// embedding matrix, no tape — feeds the λ update and diagnostics.
std::vector<double> MeasureDistances(const tensor::Tensor& emb,
                                     const CounterfactualSet& cf,
                                     int64_t top_k) {
  const int64_t num_attrs = cf.num_attrs();
  const int64_t dim = emb.dim(1);
  const double anchor_norm =
      1.0 / static_cast<double>(std::max<size_t>(cf.anchors.size(), 1));
  std::vector<double> distances(static_cast<size_t>(num_attrs), 0.0);
  const float* data = emb.data().data();
  for (int64_t i = 0; i < num_attrs; ++i) {
    double total = 0.0;
    for (size_t a = 0; a < cf.anchors.size(); ++a) {
      const float* anchor = data + cf.anchors[a] * dim;
      const auto& slot = cf.matches[static_cast<size_t>(i)][a];
      const int64_t k_max =
          std::min<int64_t>(top_k, static_cast<int64_t>(slot.size()));
      for (int64_t k = 0; k < k_max; ++k) {
        const float* other = data + slot[static_cast<size_t>(k)] * dim;
        for (int64_t d = 0; d < dim; ++d) {
          const double diff = static_cast<double>(anchor[d]) - other[d];
          total += diff * diff;
        }
      }
    }
    distances[static_cast<size_t>(i)] = total * anchor_norm;
  }
  return distances;
}

/// Pre-trains the classifier (Eq. 10) with best-validation checkpointing and
/// rollback-and-retry divergence recovery. With a non-null `rotation`, the
/// loop additionally writes phase-1 TrainState checkpoints every
/// `config.checkpoint.every` epochs; a non-null `resume` restarts from that
/// state (see the layout comment at PackPretrainState). On deadline expiry
/// it saves one final checkpoint and returns DeadlineExceeded; the epoch
/// and retry counts written so far stay valid either way.
///
/// Phase-1 TrainState layout (docs/resume.md):
///   params          model parameters at the boundary
///   blobs[0]        X⁰ flattened row-major ([N, num_attrs])
///   blobs[1..1+P)   best-validation snapshot (P = parameter count)
///   scalars         [best_val_loss, encoder_val_acc_pct]
///   counters        [since_best, epochs_run, retries, num_attrs]
common::Status PretrainClassifier(
    const FairwosConfig& config, const data::Dataset& ds,
    const tensor::Tensor& x, double encoder_val_acc,
    nn::GnnClassifier* model, common::Rng* rng,
    nn::CheckpointRotation* rotation, const nn::TrainState* resume,
    int64_t* epochs_run_out, int64_t* retries_out) {
  FW_TRACE_SPAN("fairwos/classifier_pretrain");
  nn::Adam opt(model->parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
               config.weight_decay);
  opt.set_max_grad_norm(config.max_grad_norm);
  auto best_snapshot = nn::SnapshotParameters(*model);
  double best_val_loss = std::numeric_limits<double>::infinity();
  int64_t since_best = 0;
  int64_t epochs_run = 0;
  int64_t start_epoch = 0;
  int64_t restored_retries = 0;
  if (resume != nullptr) {
    const size_t num_params = model->parameters().size();
    if (resume->blobs.size() != 1 + num_params ||
        resume->scalars.size() != 2 || resume->counters.size() != 4) {
      return common::Status::FailedPrecondition(
          "pre-train checkpoint has unexpected section sizes");
    }
    std::vector<std::vector<float>> saved_best(resume->blobs.begin() + 1,
                                               resume->blobs.end());
    FW_RETURN_IF_ERROR(
        CheckParamsMatch(model->parameters(), resume->params, "parameters"));
    FW_RETURN_IF_ERROR(CheckParamsMatch(model->parameters(), saved_best,
                                        "best-validation snapshot"));
    nn::RestoreParameters(*model, resume->params);
    FW_RETURN_IF_ERROR(opt.ImportState(resume->optimizer));
    best_snapshot = std::move(saved_best);
    best_val_loss = resume->scalars[0];
    since_best = resume->counters[0];
    epochs_run = resume->counters[1];
    restored_retries = resume->counters[2];
    start_epoch = resume->epoch;
  }
  // Constructed after any restore so its rollback target is the restored
  // parameters — exactly what the interrupted run's healer held committed.
  nn::SelfHealing healer(config.recovery, *model, &opt, "Fairwos pre-train");
  if (resume != nullptr) {
    healer.RestoreRetries(restored_retries);
    rng->LoadState(resume->rng);
  }
  const auto pack = [&](int64_t next_epoch) {
    nn::TrainState st;
    st.phase = kPhasePretrain;
    st.epoch = next_epoch;
    st.rng = rng->SaveState();
    st.optimizer = opt.ExportState();
    st.params = nn::SnapshotParameters(*model);
    st.blobs.emplace_back(x.data().begin(), x.data().end());
    AppendSnapshot(&st.blobs, best_snapshot);
    st.scalars = {best_val_loss, encoder_val_acc};
    st.counters = {since_best, epochs_run, healer.retries(), x.dim(1)};
    return st;
  };
  obs::WindowedHistogram* epoch_window =
      obs::MetricsRegistry::Global().GetWindowed("train.window.epoch_ms");
  obs::WindowedHistogram* grad_window =
      obs::MetricsRegistry::Global().GetWindowed("train.window.grad_norm");
  // Per-epoch tensors (op outputs, tape intermediates) bump-allocate from
  // this arena; the reset at each epoch boundary reuses the same hot blocks
  // (tensor/arena.h). Parameters and datasets were allocated outside the
  // scope and stay on the heap.
  tensor::Arena arena;
  for (int64_t epoch = start_epoch; epoch < config.pretrain_epochs; ++epoch) {
    tensor::ArenaScope arena_scope(&arena);
    arena.EpochReset();
    if (config.deadline.Expired()) {
      bool checkpointed = false;
      if (rotation != nullptr) {
        FW_RETURN_IF_ERROR(rotation->Save(pack(epoch)));
        checkpointed = true;
      }
      *epochs_run_out = epochs_run;
      *retries_out = healer.retries();
      EmitDeadlineEvent("pretrain", epoch, config.deadline, checkpointed);
      return common::Status::DeadlineExceeded(
          "Fairwos pre-train interrupted at epoch " + std::to_string(epoch));
    }
    FW_TRACE_SPAN("fairwos/pretrain_epoch");
    common::Stopwatch epoch_watch;
    ++epochs_run;
    opt.ZeroGrad();
    tensor::Tensor logits = model->Forward(x, /*training=*/true, rng);
    tensor::Tensor loss =
        tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.train);
    loss.Backward();
    // Gradient norms cost a full parameter sweep — only pay it when a
    // telemetry sink is attached.
    const double grad_norm = obs::TelemetryEnabled()
                                 ? nn::GlobalGradNorm(model->parameters())
                                 : 0.0;
    if (!healer.GuardedStep(loss.item())) {
      if (!healer.Recover()) break;  // budget spent: keep best-val params
      continue;                      // retry from the rolled-back parameters
    }
    healer.Commit();

    const double val_loss = ValLoss(*model, x, ds, rng);
    epoch_window->Observe(epoch_watch.Millis());
    if (obs::TelemetryEnabled()) {
      grad_window->Observe(grad_norm);
      obs::EmitEvent(obs::Event("epoch")
                         .Set("phase", "pretrain")
                         .Set("epoch", epoch)
                         .Set("loss_cls", loss.item())
                         .Set("val_loss", val_loss)
                         .Set("grad_norm", grad_norm)
                         .Set("lr", static_cast<double>(opt.lr())));
    }
    if (val_loss < best_val_loss) {
      best_val_loss = val_loss;
      best_snapshot = nn::SnapshotParameters(*model);
      since_best = 0;
    } else if (config.pretrain_patience > 0 &&
               ++since_best >= config.pretrain_patience) {
      break;
    }
    if (rotation != nullptr && config.checkpoint.every > 0 &&
        (epoch + 1) % config.checkpoint.every == 0) {
      FW_RETURN_IF_ERROR(rotation->Save(pack(epoch + 1)));
    }
  }
  nn::RestoreParameters(*model, best_snapshot);
  *epochs_run_out = epochs_run;
  *retries_out = healer.retries();
  return common::Status::OK();
}

}  // namespace

common::Result<std::unique_ptr<FittedGnnModel>> FitFairwos(
    const FairwosConfig& config, const data::Dataset& ds, uint64_t seed,
    FairwosStats* stats) {
  FW_TRACE_SPAN("fairwos/train");
  FW_RETURN_IF_ERROR(data::ValidateDataset(ds));
  if (config.alpha < 0.0) {
    return common::Status::InvalidArgument("alpha must be non-negative");
  }
  common::Stopwatch watch;
  common::Rng rng(seed);
  FairwosStats local_stats;

  // --- Crash-resume bootstrap (docs/resume.md) ----------------------------
  std::unique_ptr<nn::CheckpointRotation> rotation;
  nn::TrainState resume_state;
  bool resuming = false;
  if (config.checkpoint.enabled()) {
    rotation = std::make_unique<nn::CheckpointRotation>(config.checkpoint.dir,
                                                        config.checkpoint.keep);
    if (config.checkpoint.resume) {
      obs::MetricsRegistry::Global().GetCounter("resume.attempts")->Increment();
      auto loaded = rotation->LoadLatestValid();
      if (loaded.ok()) {
        resume_state = std::move(loaded).value();
        if (resume_state.phase != kPhasePretrain &&
            resume_state.phase != kPhaseFinetune) {
          return common::Status::FailedPrecondition(
              "checkpoint phase " + std::to_string(resume_state.phase) +
              " is not a Fairwos phase (was it written by a baseline?)");
        }
        resuming = true;
        local_stats.resumed = true;
        local_stats.resume_phase = resume_state.phase;
        local_stats.resume_epoch = resume_state.epoch;
        EmitResumeEvent(rotation->last_loaded_path(), resume_state);
      } else if (loaded.status().code() != common::StatusCode::kNotFound) {
        return loaded.status();
      }
      // NotFound: an empty checkpoint directory means a fresh start.
    }
  }

  // --- Step 1: pseudo-sensitive attributes (Eq. 4-6) ----------------------
  tensor::Tensor x0;
  if (resuming) {
    // X⁰ is frozen after step 1, so checkpoints carry it verbatim (both
    // phase layouts put num_attrs at counters[3] and the flattened X⁰ in
    // blobs[0]); resume never re-runs the encoder.
    const int64_t num_nodes = ds.num_nodes();
    const int64_t saved_attrs =
        resume_state.counters.size() >= 4 ? resume_state.counters[3] : 0;
    if (saved_attrs <= 0 || resume_state.blobs.empty() ||
        static_cast<int64_t>(resume_state.blobs[0].size()) !=
            num_nodes * saved_attrs) {
      return common::Status::FailedPrecondition(
          "checkpoint pseudo-attributes do not match this dataset");
    }
    x0 = tensor::Tensor::FromVector({num_nodes, saved_attrs},
                                    resume_state.blobs[0]);
  } else {
    if (config.deadline.Expired()) {
      EmitDeadlineEvent("encoder", 0, config.deadline, /*checkpointed=*/false);
      if (stats != nullptr) *stats = local_stats;
      return common::Status::DeadlineExceeded(
          "deadline expired before Fairwos training started");
    }
    if (config.use_encoder) {
      FW_TRACE_SPAN("fairwos/encoder_pretrain");
      PretrainedEncoder encoder(config.encoder, ds, rng.NextU64(),
                                &config.deadline);
      x0 = encoder.pseudo_attributes();
      local_stats.encoder_val_acc_pct = encoder.best_val_accuracy_pct();
    } else {
      // Ablation Fwos w/o E: every non-sensitive attribute is its own
      // pseudo-sensitive attribute.
      x0 = ds.features.DetachCopy();
    }
    if (config.deadline.Expired()) {
      // The encoder phase keeps no durable state (it is cheap relative to
      // the classifier phases): an interruption here aborts cleanly and a
      // resumed run restarts the encoder from scratch.
      EmitDeadlineEvent("encoder", 0, config.deadline, /*checkpointed=*/false);
      if (stats != nullptr) *stats = local_stats;
      return common::Status::DeadlineExceeded(
          "Fairwos encoder pre-train interrupted");
    }
  }
  const int64_t num_attrs = x0.dim(1);

  // --- Step 2: pre-train the GNN classifier (Eq. 10) ----------------------
  nn::GnnConfig gnn = config.gnn;
  gnn.in_features = num_attrs;
  nn::GnnClassifier model(gnn, ds.graph, &rng);

  const bool resume_finetune =
      resuming && resume_state.phase == kPhaseFinetune;
  if (resume_finetune &&
      !(config.use_fairness && config.finetune_epochs > 0)) {
    // With fine-tuning disabled the resumed run would keep a never-trained
    // model (the phase-2 path skips classifier pre-training entirely).
    return common::Status::FailedPrecondition(
        "fine-tune checkpoint cannot be resumed with fairness fine-tuning "
        "disabled");
  }
  std::vector<int> pseudo_labels;
  if (!resume_finetune) {
    const nn::TrainState* pretrain_resume =
        resuming && resume_state.phase == kPhasePretrain ? &resume_state
                                                         : nullptr;
    if (pretrain_resume != nullptr) {
      if (resume_state.scalars.size() != 2) {
        return common::Status::FailedPrecondition(
            "pre-train checkpoint has unexpected section sizes");
      }
      local_stats.encoder_val_acc_pct = resume_state.scalars[1];
    }
    common::Status pretrain_status = PretrainClassifier(
        config, ds, x0, local_stats.encoder_val_acc_pct, &model, &rng,
        rotation.get(), pretrain_resume, &local_stats.pretrain_epochs_run,
        &local_stats.pretrain_retries);
    if (!pretrain_status.ok()) {
      if (stats != nullptr) *stats = local_stats;
      return pretrain_status;
    }

    // Pseudo-labels for the counterfactual search (semi-supervised
    // setting). Ground-truth labels override pseudo-labels where known.
    pseudo_labels = Evaluate(model, x0, &rng).pred;
    for (int64_t v : ds.split.train) {
      pseudo_labels[static_cast<size_t>(v)] =
          ds.labels[static_cast<size_t>(v)];
    }
  }

  // --- Step 3: fairness fine-tuning (Eq. 12-16, Algorithm 1 lines 5-13) ---
  if (config.use_fairness && config.finetune_epochs > 0) {
    FW_TRACE_SPAN("fairwos/finetune");
    const auto bins = MedianBins(x0);
    std::vector<double> lambda(
        static_cast<size_t>(num_attrs),
        1.0 / static_cast<double>(num_attrs));  // Algorithm 1 line 2
    nn::Adam opt(model.parameters(), config.finetune_lr, 0.9f, 0.999f, 1e-8f,
                 config.weight_decay);
    opt.set_max_grad_norm(config.max_grad_norm);
    // Degradation target when fine-tuning cannot stabilize: the pre-trained
    // classifier, i.e. the "w/o F" ablation.
    auto pretrained_snapshot = nn::SnapshotParameters(model);
    // Utility reference for model selection: the pre-trained model.
    double pretrain_val_acc = 0.0;
    auto best_snapshot = pretrained_snapshot;
    bool have_tolerated = false;
    auto fallback_snapshot = best_snapshot;
    double best_val = -1.0;
    int64_t start_epoch = 0;
    int64_t restored_retries = 0;
    if (resume_finetune) {
      // Phase-2 TrainState layout (docs/resume.md):
      //   params            model parameters at the boundary
      //   blobs[0]          X⁰; [1..1+P) pretrained, [1+P..1+2P) best,
      //                     [1+2P..1+3P) fallback snapshots
      //   scalars           [pretrain_val_acc, best_val, encoder_val_acc,
      //                     λ₀..λ_A, D₀..D_A]
      //   counters          [finetune_epochs_run, retries, have_tolerated,
      //                     num_attrs, pretrain_epochs_run,
      //                     pretrain_retries, pseudo_label₀..pseudo_label_N]
      const size_t num_params = model.parameters().size();
      const size_t num_nodes = static_cast<size_t>(ds.num_nodes());
      const size_t attrs = static_cast<size_t>(num_attrs);
      if (resume_state.blobs.size() != 1 + 3 * num_params ||
          resume_state.scalars.size() != 3 + 2 * attrs ||
          resume_state.counters.size() != 6 + num_nodes) {
        return common::Status::FailedPrecondition(
            "fine-tune checkpoint has unexpected section sizes");
      }
      const auto blob_slice = [&](size_t first) {
        return std::vector<std::vector<float>>(
            resume_state.blobs.begin() + 1 + first * num_params,
            resume_state.blobs.begin() + 1 + (first + 1) * num_params);
      };
      auto saved_pretrained = blob_slice(0);
      auto saved_best = blob_slice(1);
      auto saved_fallback = blob_slice(2);
      FW_RETURN_IF_ERROR(CheckParamsMatch(model.parameters(),
                                          resume_state.params, "parameters"));
      FW_RETURN_IF_ERROR(CheckParamsMatch(model.parameters(), saved_pretrained,
                                          "pre-trained snapshot"));
      FW_RETURN_IF_ERROR(CheckParamsMatch(model.parameters(), saved_best,
                                          "best snapshot"));
      FW_RETURN_IF_ERROR(CheckParamsMatch(model.parameters(), saved_fallback,
                                          "fallback snapshot"));
      nn::RestoreParameters(model, resume_state.params);
      FW_RETURN_IF_ERROR(opt.ImportState(resume_state.optimizer));
      pretrained_snapshot = std::move(saved_pretrained);
      best_snapshot = std::move(saved_best);
      fallback_snapshot = std::move(saved_fallback);
      pretrain_val_acc = resume_state.scalars[0];
      best_val = resume_state.scalars[1];
      local_stats.encoder_val_acc_pct = resume_state.scalars[2];
      lambda.assign(resume_state.scalars.begin() + 3,
                    resume_state.scalars.begin() + 3 + attrs);
      local_stats.finetune_epochs_run = resume_state.counters[0];
      restored_retries = resume_state.counters[1];
      have_tolerated = resume_state.counters[2] != 0;
      local_stats.pretrain_epochs_run = resume_state.counters[4];
      local_stats.pretrain_retries = resume_state.counters[5];
      // Dᵢ diagnostics are only meaningful once an epoch has run; an
      // all-zero placeholder marks a checkpoint written before the first.
      if (local_stats.finetune_epochs_run > 0) {
        local_stats.final_distances.assign(
            resume_state.scalars.begin() + 3 + attrs,
            resume_state.scalars.begin() + 3 + 2 * attrs);
      }
      pseudo_labels.resize(num_nodes);
      for (size_t v = 0; v < num_nodes; ++v) {
        pseudo_labels[v] = static_cast<int>(resume_state.counters[6 + v]);
      }
      start_epoch = resume_state.epoch;
    } else {
      pretrain_val_acc = fairness::AccuracyPct(
          Evaluate(model, x0, &rng).pred, ds.labels, ds.split.val);
    }
    // Constructed after any restore so its rollback target matches the
    // interrupted run's committed parameters.
    nn::SelfHealing healer(config.recovery, model, &opt, "Fairwos fine-tune");
    if (resume_finetune) {
      healer.RestoreRetries(restored_retries);
      rng.LoadState(resume_state.rng);
    }
    const double acceptable_val_acc =
        pretrain_val_acc - config.utility_tolerance_pct;
    const auto pack = [&](int64_t next_epoch) {
      nn::TrainState st;
      st.phase = kPhaseFinetune;
      st.epoch = next_epoch;
      st.rng = rng.SaveState();
      st.optimizer = opt.ExportState();
      st.params = nn::SnapshotParameters(model);
      st.blobs.emplace_back(x0.data().begin(), x0.data().end());
      AppendSnapshot(&st.blobs, pretrained_snapshot);
      AppendSnapshot(&st.blobs, best_snapshot);
      AppendSnapshot(&st.blobs, fallback_snapshot);
      st.scalars = {pretrain_val_acc, best_val,
                    local_stats.encoder_val_acc_pct};
      st.scalars.insert(st.scalars.end(), lambda.begin(), lambda.end());
      if (local_stats.final_distances.empty()) {
        st.scalars.insert(st.scalars.end(), static_cast<size_t>(num_attrs),
                          0.0);
      } else {
        st.scalars.insert(st.scalars.end(),
                          local_stats.final_distances.begin(),
                          local_stats.final_distances.end());
      }
      st.counters = {local_stats.finetune_epochs_run,
                     healer.retries(),
                     have_tolerated ? int64_t{1} : int64_t{0},
                     num_attrs,
                     local_stats.pretrain_epochs_run,
                     local_stats.pretrain_retries};
      st.counters.reserve(st.counters.size() + pseudo_labels.size());
      for (int label : pseudo_labels) st.counters.push_back(label);
      return st;
    };
    obs::WindowedHistogram* epoch_window =
        obs::MetricsRegistry::Global().GetWindowed("train.window.epoch_ms");
    obs::WindowedHistogram* grad_window =
        obs::MetricsRegistry::Global().GetWindowed("train.window.grad_norm");
    // Per-epoch tensors (op outputs, tape intermediates) bump-allocate from
    // this arena; the reset at each epoch boundary reuses the same hot blocks
    // (tensor/arena.h). Parameters and datasets were allocated outside the
    // scope and stay on the heap.
    tensor::Arena arena;
    for (int64_t epoch = start_epoch; epoch < config.finetune_epochs;
         ++epoch) {
      tensor::ArenaScope arena_scope(&arena);
      arena.EpochReset();
      if (config.deadline.Expired()) {
        bool checkpointed = false;
        if (rotation != nullptr) {
          common::Status save_status = rotation->Save(pack(epoch));
          if (!save_status.ok()) {
            if (stats != nullptr) *stats = local_stats;
            return save_status;
          }
          checkpointed = true;
        }
        local_stats.finetune_retries = healer.retries();
        local_stats.lambda = lambda;
        EmitDeadlineEvent("finetune", epoch, config.deadline, checkpointed);
        if (stats != nullptr) *stats = local_stats;
        return common::Status::DeadlineExceeded(
            "Fairwos fine-tune interrupted at epoch " +
            std::to_string(epoch));
      }
      FW_TRACE_SPAN("fairwos/finetune_epoch");
      common::Stopwatch epoch_watch;
      ++local_stats.finetune_epochs_run;
      // (a) refresh the counterfactual set from current embeddings.
      tensor::Tensor frozen_emb;
      {
        tensor::NoGradGuard no_grad;
        frozen_emb = model.Embed(x0, /*training=*/false, &rng);
      }
      CounterfactualSet cf = [&] {
        FW_TRACE_SPAN("fairwos/counterfactual_search");
        return FindCounterfactuals(frozen_emb, bins, pseudo_labels,
                                   config.counterfactual, &rng);
      }();

      // (b) λ update (Algorithm 1 lines 9-12) from the *current*
      // embeddings, solved before the θ step so the importance weights
      // shape every parameter update — including the first fine-tuning
      // epoch, which the utility-tolerance selection often keeps.
      if (config.use_weight_update) {
        const std::vector<double> eval_distances =
            MeasureDistances(frozen_emb, cf, config.counterfactual.top_k);
        double mean_d = 0.0;
        for (double d : eval_distances) mean_d += d;
        mean_d /= static_cast<double>(eval_distances.size());
        if (mean_d > 1e-12) {
          std::vector<double> normalized_eval = eval_distances;
          for (double& d : normalized_eval) d /= mean_d;
          lambda = SolveLambda(normalized_eval, config.alpha,
                               config.invert_lambda_preference);
        }
      }

      // (c) θ update on Eq. 16.
      opt.ZeroGrad();
      tensor::Tensor h = model.Embed(x0, /*training=*/true, &rng);
      tensor::Tensor logits = model.Logits(h);
      tensor::Tensor total =
          tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.train);
      const double loss_cls = total.item();  // CE before the fairness term
      local_stats.final_distances.assign(static_cast<size_t>(num_attrs), 0.0);
      const double anchor_norm =
          1.0 / static_cast<double>(std::max<size_t>(cf.anchors.size(), 1));
      std::vector<tensor::Tensor> distances(static_cast<size_t>(num_attrs));
      for (int64_t i = 0; i < num_attrs; ++i) {
        // Dᵢ = (1/|A|) Σ_a Σ_k ‖h_a − h̄ᵏ_a‖²  (Eq. 13 with Eq. 33's L2²).
        tensor::Tensor d_i;
        for (int64_t k = 0; k < config.counterfactual.top_k; ++k) {
          std::vector<int64_t> anchor_ids, cf_ids;
          for (size_t a = 0; a < cf.anchors.size(); ++a) {
            const auto& slot = cf.matches[static_cast<size_t>(i)][a];
            if (static_cast<int64_t>(slot.size()) > k) {
              anchor_ids.push_back(cf.anchors[a]);
              cf_ids.push_back(slot[static_cast<size_t>(k)]);
            }
          }
          if (anchor_ids.empty()) continue;
          tensor::Tensor diff = tensor::Sub(tensor::Rows(h, anchor_ids),
                                            tensor::Rows(h, cf_ids));
          tensor::Tensor dist = tensor::MulScalar(
              tensor::SumSquares(diff), static_cast<float>(anchor_norm));
          d_i = d_i.defined() ? tensor::Add(d_i, dist) : dist;
        }
        if (!d_i.defined()) continue;  // constraint set empty for attr i
        distances[static_cast<size_t>(i)] = d_i;
        local_stats.final_distances[static_cast<size_t>(i)] = d_i.item();
      }
      // Distances are normalized by their mean so that α is scale-free:
      // the raw Dᵢ magnitude depends on the embedding scale, which varies
      // across datasets and backbones (DESIGN.md §4).
      double mean_distance = 0.0;
      for (double d : local_stats.final_distances) mean_distance += d;
      mean_distance /= static_cast<double>(num_attrs);
      const double scale =
          mean_distance > 1e-12 ? 1.0 / mean_distance : 0.0;
      for (int64_t i = 0; i < num_attrs; ++i) {
        if (!distances[static_cast<size_t>(i)].defined()) continue;
        total = tensor::Add(
            total,
            tensor::MulScalar(distances[static_cast<size_t>(i)],
                              static_cast<float>(config.alpha * scale *
                                                 lambda[static_cast<size_t>(i)])));
      }
      total.Backward();
      const double loss_total = total.item();
      const double grad_norm = obs::TelemetryEnabled()
                                   ? nn::GlobalGradNorm(model.parameters())
                                   : 0.0;
      if (!healer.GuardedStep(loss_total)) {
        if (!healer.Recover()) {
          local_stats.finetune_degraded = true;
          break;
        }
        continue;  // retry the epoch from the rolled-back parameters
      }
      healer.Commit();

      // Model selection within fine-tuning: later epochs are fairer, so we
      // keep the *latest* epoch whose validation accuracy stays within the
      // utility tolerance of the pre-trained model; the best-validation
      // epoch is the fallback when no epoch qualifies.
      auto eval = Evaluate(model, x0, &rng);
      const double val_acc =
          fairness::AccuracyPct(eval.pred, ds.labels, ds.split.val);
      epoch_window->Observe(epoch_watch.Millis());
      if (obs::TelemetryEnabled()) {
        grad_window->Observe(grad_norm);
        obs::EmitEvent(obs::Event("epoch")
                           .Set("phase", "finetune")
                           .Set("epoch", epoch)
                           .Set("loss_total", loss_total)
                           .Set("loss_cls", loss_cls)
                           .Set("loss_fair", loss_total - loss_cls)
                           .Set("mean_distance", mean_distance)
                           .Set("grad_norm", grad_norm)
                           .Set("lr", static_cast<double>(opt.lr()))
                           .Set("val_acc", val_acc));
      }
      if (val_acc >= acceptable_val_acc) {
        best_snapshot = nn::SnapshotParameters(model);
        have_tolerated = true;
      }
      if (val_acc > best_val) {
        best_val = val_acc;
        fallback_snapshot = nn::SnapshotParameters(model);
      }
      if (rotation != nullptr && config.checkpoint.every > 0 &&
          (epoch + 1) % config.checkpoint.every == 0) {
        common::Status save_status = rotation->Save(pack(epoch + 1));
        if (!save_status.ok()) {
          if (stats != nullptr) *stats = local_stats;
          return save_status;
        }
      }
    }
    if (local_stats.finetune_degraded) {
      FW_LOG(Warning) << "Fairwos fine-tuning could not stabilize within "
                      << config.recovery.max_retries
                      << " retries; falling back to the pre-trained "
                         "classifier (degrading to the w/o F ablation)";
      obs::MetricsRegistry::Global()
          .GetCounter("fairwos.finetune_degraded")
          ->Increment();
      obs::EmitEvent(obs::Event("degraded")
                         .Set("phase", "finetune")
                         .Set("retries", healer.retries())
                         .Set("fallback", "pretrained classifier (w/o F)"));
      nn::RestoreParameters(model, pretrained_snapshot);
    } else {
      nn::RestoreParameters(
          model, have_tolerated ? best_snapshot : fallback_snapshot);
    }
    local_stats.finetune_retries = healer.retries();
    local_stats.lambda = lambda;
  }

  // --- Freeze --------------------------------------------------------------
  // X⁰ is the frozen model input: the dataset's raw features never reach
  // the classifier directly, so the fitted model carries X⁰ itself.
  auto fitted = std::make_unique<FittedGnnModel>(
      std::move(model), FittedGnnModel::InputKind::kFrozen, x0,
      FittedGnnModel::Provenance{"Fairwos", ds.name, seed});
  if (config.use_encoder) fitted->set_pseudo_sens(x0);
  fitted->set_train_seconds(watch.Seconds());
  if (stats != nullptr) *stats = local_stats;
  return fitted;
}

common::Result<MethodOutput> TrainFairwos(const FairwosConfig& config,
                                          const data::Dataset& ds,
                                          uint64_t seed, FairwosStats* stats) {
  FW_ASSIGN_OR_RETURN(std::unique_ptr<FittedGnnModel> fitted,
                      FitFairwos(config, ds, seed, stats));
  return fitted->Predict(ds);
}

common::Result<std::unique_ptr<FittedModel>> FairwosMethod::Fit(
    const data::Dataset& ds, uint64_t seed) {
  // Fit into a local and publish under the lock: concurrent trials must
  // not scribble on last_stats_ mid-run (FitFairwos writes *stats on the
  // deadline path too, so publish on error as well).
  FairwosStats stats;
  common::Result<std::unique_ptr<FittedGnnModel>> fitted =
      FitFairwos(config_, ds, seed, &stats);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = stats;
  }
  FW_RETURN_IF_ERROR(fitted.status());
  auto model = std::move(fitted).value();
  // The ablation variants share the Fairwos pipeline but report their own
  // display names; restamp so exported artifacts carry the actual method.
  model->set_method_name(name_);
  return std::unique_ptr<FittedModel>(std::move(model));
}

}  // namespace fairwos::core
