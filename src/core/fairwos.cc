#include "core/fairwos.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "core/lambda_solver.h"
#include "fairness/metrics.h"
#include "nn/optim.h"
#include "tensor/ops.h"

namespace fairwos::core {
namespace {

/// Evaluation-mode predictions for every node.
nn::PredictionResult Evaluate(const nn::GnnClassifier& model,
                              const tensor::Tensor& x, common::Rng* rng) {
  tensor::NoGradGuard no_grad;
  return nn::PredictFromLogits(model.Forward(x, /*training=*/false, rng));
}

/// Validation cross-entropy — the early-stopping signal (accuracy on small
/// validation splits is too coarsely quantised).
double ValLoss(const nn::GnnClassifier& model, const tensor::Tensor& x,
               const data::Dataset& ds, common::Rng* rng) {
  tensor::NoGradGuard no_grad;
  tensor::Tensor logits = model.Forward(x, /*training=*/false, rng);
  return tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.val).item();
}

/// Per-attribute counterfactual distances Dᵢ (Eq. 13) measured on a plain
/// embedding matrix, no tape — feeds the λ update and diagnostics.
std::vector<double> MeasureDistances(const tensor::Tensor& emb,
                                     const CounterfactualSet& cf,
                                     int64_t top_k) {
  const int64_t num_attrs = cf.num_attrs();
  const int64_t dim = emb.dim(1);
  const double anchor_norm =
      1.0 / static_cast<double>(std::max<size_t>(cf.anchors.size(), 1));
  std::vector<double> distances(static_cast<size_t>(num_attrs), 0.0);
  const float* data = emb.data().data();
  for (int64_t i = 0; i < num_attrs; ++i) {
    double total = 0.0;
    for (size_t a = 0; a < cf.anchors.size(); ++a) {
      const float* anchor = data + cf.anchors[a] * dim;
      const auto& slot = cf.matches[static_cast<size_t>(i)][a];
      const int64_t k_max =
          std::min<int64_t>(top_k, static_cast<int64_t>(slot.size()));
      for (int64_t k = 0; k < k_max; ++k) {
        const float* other = data + slot[static_cast<size_t>(k)] * dim;
        for (int64_t d = 0; d < dim; ++d) {
          const double diff = static_cast<double>(anchor[d]) - other[d];
          total += diff * diff;
        }
      }
    }
    distances[static_cast<size_t>(i)] = total * anchor_norm;
  }
  return distances;
}

/// Pre-trains the classifier (Eq. 10) with best-validation checkpointing and
/// rollback-and-retry divergence recovery. Returns the number of epochs
/// actually run; `retries` (if non-null) receives the recovery count.
int64_t PretrainClassifier(const FairwosConfig& config,
                           const data::Dataset& ds, const tensor::Tensor& x,
                           nn::GnnClassifier* model, common::Rng* rng,
                           int64_t* retries) {
  FW_TRACE_SPAN("fairwos/classifier_pretrain");
  nn::Adam opt(model->parameters(), config.lr, 0.9f, 0.999f, 1e-8f,
               config.weight_decay);
  opt.set_max_grad_norm(config.max_grad_norm);
  nn::SelfHealing healer(config.recovery, *model, &opt, "Fairwos pre-train");
  auto best_snapshot = nn::SnapshotParameters(*model);
  double best_val_loss = std::numeric_limits<double>::infinity();
  int64_t since_best = 0;
  int64_t epochs_run = 0;
  for (int64_t epoch = 0; epoch < config.pretrain_epochs; ++epoch) {
    FW_TRACE_SPAN("fairwos/pretrain_epoch");
    ++epochs_run;
    opt.ZeroGrad();
    tensor::Tensor logits = model->Forward(x, /*training=*/true, rng);
    tensor::Tensor loss =
        tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.train);
    loss.Backward();
    // Gradient norms cost a full parameter sweep — only pay it when a
    // telemetry sink is attached.
    const double grad_norm = obs::TelemetryEnabled()
                                 ? nn::GlobalGradNorm(model->parameters())
                                 : 0.0;
    if (!healer.GuardedStep(loss.item())) {
      if (!healer.Recover()) break;  // budget spent: keep best-val params
      continue;                      // retry from the rolled-back parameters
    }
    healer.Commit();

    const double val_loss = ValLoss(*model, x, ds, rng);
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("epoch")
                         .Set("phase", "pretrain")
                         .Set("epoch", epoch)
                         .Set("loss_cls", loss.item())
                         .Set("val_loss", val_loss)
                         .Set("grad_norm", grad_norm)
                         .Set("lr", static_cast<double>(opt.lr())));
    }
    if (val_loss < best_val_loss) {
      best_val_loss = val_loss;
      best_snapshot = nn::SnapshotParameters(*model);
      since_best = 0;
    } else if (config.pretrain_patience > 0 &&
               ++since_best >= config.pretrain_patience) {
      break;
    }
  }
  nn::RestoreParameters(*model, best_snapshot);
  if (retries != nullptr) *retries = healer.retries();
  return epochs_run;
}

}  // namespace

common::Result<MethodOutput> TrainFairwos(const FairwosConfig& config,
                                          const data::Dataset& ds,
                                          uint64_t seed, FairwosStats* stats) {
  FW_TRACE_SPAN("fairwos/train");
  FW_RETURN_IF_ERROR(data::ValidateDataset(ds));
  if (config.alpha < 0.0) {
    return common::Status::InvalidArgument("alpha must be non-negative");
  }
  common::Rng rng(seed);
  FairwosStats local_stats;

  // --- Step 1: pseudo-sensitive attributes (Eq. 4-6) ----------------------
  tensor::Tensor x0;
  if (config.use_encoder) {
    FW_TRACE_SPAN("fairwos/encoder_pretrain");
    PretrainedEncoder encoder(config.encoder, ds, rng.NextU64());
    x0 = encoder.pseudo_attributes();
    local_stats.encoder_val_acc_pct = encoder.best_val_accuracy_pct();
  } else {
    // Ablation Fwos w/o E: every non-sensitive attribute is its own
    // pseudo-sensitive attribute.
    x0 = ds.features.DetachCopy();
  }
  const int64_t num_attrs = x0.dim(1);

  // --- Step 2: pre-train the GNN classifier (Eq. 10) ----------------------
  nn::GnnConfig gnn = config.gnn;
  gnn.in_features = num_attrs;
  nn::GnnClassifier model(gnn, ds.graph, &rng);
  local_stats.pretrain_epochs_run = PretrainClassifier(
      config, ds, x0, &model, &rng, &local_stats.pretrain_retries);

  // Pseudo-labels for the counterfactual search (semi-supervised setting).
  std::vector<int> pseudo_labels = Evaluate(model, x0, &rng).pred;
  // Ground-truth labels override pseudo-labels where known.
  for (int64_t v : ds.split.train) {
    pseudo_labels[static_cast<size_t>(v)] = ds.labels[static_cast<size_t>(v)];
  }

  // --- Step 3: fairness fine-tuning (Eq. 12-16, Algorithm 1 lines 5-13) ---
  if (config.use_fairness && config.finetune_epochs > 0) {
    FW_TRACE_SPAN("fairwos/finetune");
    const auto bins = MedianBins(x0);
    std::vector<double> lambda(
        static_cast<size_t>(num_attrs),
        1.0 / static_cast<double>(num_attrs));  // Algorithm 1 line 2
    nn::Adam opt(model.parameters(), config.finetune_lr, 0.9f, 0.999f, 1e-8f,
                 config.weight_decay);
    opt.set_max_grad_norm(config.max_grad_norm);
    nn::SelfHealing healer(config.recovery, model, &opt, "Fairwos fine-tune");
    // Degradation target when fine-tuning cannot stabilize: the pre-trained
    // classifier, i.e. the "w/o F" ablation.
    const auto pretrained_snapshot = nn::SnapshotParameters(model);
    // Utility reference for model selection: the pre-trained model.
    const double pretrain_val_acc = fairness::AccuracyPct(
        Evaluate(model, x0, &rng).pred, ds.labels, ds.split.val);
    const double acceptable_val_acc =
        pretrain_val_acc - config.utility_tolerance_pct;
    auto best_snapshot = nn::SnapshotParameters(model);
    bool have_tolerated = false;
    auto fallback_snapshot = best_snapshot;
    double best_val = -1.0;
    for (int64_t epoch = 0; epoch < config.finetune_epochs; ++epoch) {
      FW_TRACE_SPAN("fairwos/finetune_epoch");
      ++local_stats.finetune_epochs_run;
      // (a) refresh the counterfactual set from current embeddings.
      tensor::Tensor frozen_emb;
      {
        tensor::NoGradGuard no_grad;
        frozen_emb = model.Embed(x0, /*training=*/false, &rng);
      }
      CounterfactualSet cf = [&] {
        FW_TRACE_SPAN("fairwos/counterfactual_search");
        return FindCounterfactuals(frozen_emb, bins, pseudo_labels,
                                   config.counterfactual, &rng);
      }();

      // (b) λ update (Algorithm 1 lines 9-12) from the *current*
      // embeddings, solved before the θ step so the importance weights
      // shape every parameter update — including the first fine-tuning
      // epoch, which the utility-tolerance selection often keeps.
      if (config.use_weight_update) {
        const std::vector<double> eval_distances =
            MeasureDistances(frozen_emb, cf, config.counterfactual.top_k);
        double mean_d = 0.0;
        for (double d : eval_distances) mean_d += d;
        mean_d /= static_cast<double>(eval_distances.size());
        if (mean_d > 1e-12) {
          std::vector<double> normalized_eval = eval_distances;
          for (double& d : normalized_eval) d /= mean_d;
          lambda = SolveLambda(normalized_eval, config.alpha,
                               config.invert_lambda_preference);
        }
      }

      // (c) θ update on Eq. 16.
      opt.ZeroGrad();
      tensor::Tensor h = model.Embed(x0, /*training=*/true, &rng);
      tensor::Tensor logits = model.Logits(h);
      tensor::Tensor total =
          tensor::SoftmaxCrossEntropy(logits, ds.labels, ds.split.train);
      const double loss_cls = total.item();  // CE before the fairness term
      local_stats.final_distances.assign(static_cast<size_t>(num_attrs), 0.0);
      const double anchor_norm =
          1.0 / static_cast<double>(std::max<size_t>(cf.anchors.size(), 1));
      std::vector<tensor::Tensor> distances(static_cast<size_t>(num_attrs));
      for (int64_t i = 0; i < num_attrs; ++i) {
        // Dᵢ = (1/|A|) Σ_a Σ_k ‖h_a − h̄ᵏ_a‖²  (Eq. 13 with Eq. 33's L2²).
        tensor::Tensor d_i;
        for (int64_t k = 0; k < config.counterfactual.top_k; ++k) {
          std::vector<int64_t> anchor_ids, cf_ids;
          for (size_t a = 0; a < cf.anchors.size(); ++a) {
            const auto& slot = cf.matches[static_cast<size_t>(i)][a];
            if (static_cast<int64_t>(slot.size()) > k) {
              anchor_ids.push_back(cf.anchors[a]);
              cf_ids.push_back(slot[static_cast<size_t>(k)]);
            }
          }
          if (anchor_ids.empty()) continue;
          tensor::Tensor diff = tensor::Sub(tensor::Rows(h, anchor_ids),
                                            tensor::Rows(h, cf_ids));
          tensor::Tensor dist = tensor::MulScalar(
              tensor::SumSquares(diff), static_cast<float>(anchor_norm));
          d_i = d_i.defined() ? tensor::Add(d_i, dist) : dist;
        }
        if (!d_i.defined()) continue;  // constraint set empty for attr i
        distances[static_cast<size_t>(i)] = d_i;
        local_stats.final_distances[static_cast<size_t>(i)] = d_i.item();
      }
      // Distances are normalized by their mean so that α is scale-free:
      // the raw Dᵢ magnitude depends on the embedding scale, which varies
      // across datasets and backbones (DESIGN.md §4).
      double mean_distance = 0.0;
      for (double d : local_stats.final_distances) mean_distance += d;
      mean_distance /= static_cast<double>(num_attrs);
      const double scale =
          mean_distance > 1e-12 ? 1.0 / mean_distance : 0.0;
      for (int64_t i = 0; i < num_attrs; ++i) {
        if (!distances[static_cast<size_t>(i)].defined()) continue;
        total = tensor::Add(
            total,
            tensor::MulScalar(distances[static_cast<size_t>(i)],
                              static_cast<float>(config.alpha * scale *
                                                 lambda[static_cast<size_t>(i)])));
      }
      total.Backward();
      const double loss_total = total.item();
      const double grad_norm = obs::TelemetryEnabled()
                                   ? nn::GlobalGradNorm(model.parameters())
                                   : 0.0;
      if (!healer.GuardedStep(loss_total)) {
        if (!healer.Recover()) {
          local_stats.finetune_degraded = true;
          break;
        }
        continue;  // retry the epoch from the rolled-back parameters
      }
      healer.Commit();

      // Model selection within fine-tuning: later epochs are fairer, so we
      // keep the *latest* epoch whose validation accuracy stays within the
      // utility tolerance of the pre-trained model; the best-validation
      // epoch is the fallback when no epoch qualifies.
      auto eval = Evaluate(model, x0, &rng);
      const double val_acc =
          fairness::AccuracyPct(eval.pred, ds.labels, ds.split.val);
      if (obs::TelemetryEnabled()) {
        obs::EmitEvent(obs::Event("epoch")
                           .Set("phase", "finetune")
                           .Set("epoch", epoch)
                           .Set("loss_total", loss_total)
                           .Set("loss_cls", loss_cls)
                           .Set("loss_fair", loss_total - loss_cls)
                           .Set("mean_distance", mean_distance)
                           .Set("grad_norm", grad_norm)
                           .Set("lr", static_cast<double>(opt.lr()))
                           .Set("val_acc", val_acc));
      }
      if (val_acc >= acceptable_val_acc) {
        best_snapshot = nn::SnapshotParameters(model);
        have_tolerated = true;
      }
      if (val_acc > best_val) {
        best_val = val_acc;
        fallback_snapshot = nn::SnapshotParameters(model);
      }
    }
    if (local_stats.finetune_degraded) {
      FW_LOG(Warning) << "Fairwos fine-tuning could not stabilize within "
                      << config.recovery.max_retries
                      << " retries; falling back to the pre-trained "
                         "classifier (degrading to the w/o F ablation)";
      obs::MetricsRegistry::Global()
          .GetCounter("fairwos.finetune_degraded")
          ->Increment();
      obs::EmitEvent(obs::Event("degraded")
                         .Set("phase", "finetune")
                         .Set("retries", healer.retries())
                         .Set("fallback", "pretrained classifier (w/o F)"));
      nn::RestoreParameters(model, pretrained_snapshot);
    } else {
      nn::RestoreParameters(
          model, have_tolerated ? best_snapshot : fallback_snapshot);
    }
    local_stats.finetune_retries = healer.retries();
    local_stats.lambda = lambda;
  }

  // --- Final predictions ---------------------------------------------------
  MethodOutput out;
  {
    tensor::NoGradGuard no_grad;
    tensor::Tensor h = model.Embed(x0, /*training=*/false, &rng);
    auto eval = nn::PredictFromLogits(model.Logits(h));
    out.pred = std::move(eval.pred);
    out.prob1 = std::move(eval.prob1);
    out.embeddings = h.DetachCopy();
  }
  if (config.use_encoder) out.pseudo_sens = x0;
  if (stats != nullptr) *stats = local_stats;
  return out;
}

common::Result<MethodOutput> FairwosMethod::Run(const data::Dataset& ds,
                                                uint64_t seed) {
  common::Stopwatch watch;
  FW_ASSIGN_OR_RETURN(MethodOutput out,
                      TrainFairwos(config_, ds, seed, &last_stats_));
  out.train_seconds = watch.Seconds();
  return out;
}

}  // namespace fairwos::core
