// Exact KKT solution of the importance-weight subproblem (paper §III-F,
// Eq. 17-24):
//
//     min_λ  α · Σᵢ λᵢ Dᵢ + ‖λ‖²   s.t.  λᵢ ≥ 0,  Σᵢ λᵢ = 1.
//
// Completing the square shows this is the Euclidean projection of the
// vector −α·D/2 onto the probability simplex; the paper's sort-and-
// threshold recipe (Eq. 22-24) is exactly the classic simplex-projection
// algorithm. Note the paper's *prose* asks for the opposite preference
// ("a larger Dᵢ should receive a larger λᵢ"), which corresponds to
// projecting +α·D/2; `invert_preference` selects that reading. See
// EXPERIMENTS.md for the discrepancy discussion.
#ifndef FAIRWOS_CORE_LAMBDA_SOLVER_H_
#define FAIRWOS_CORE_LAMBDA_SOLVER_H_

#include <vector>

namespace fairwos::core {

/// Euclidean projection of `v` onto {λ : λ ≥ 0, Σλ = 1} (Duchi et al.'s
/// sort-based algorithm). Exposed separately for testing.
std::vector<double> ProjectOntoSimplex(const std::vector<double>& v);

/// Solves the λ subproblem for distances `d` (one entry per
/// pseudo-sensitive attribute) and regularization weight `alpha` >= 0.
/// With invert_preference = false this is Eq. 24 verbatim (larger D ⇒
/// smaller λ); with true, larger D ⇒ larger λ (the prose reading).
std::vector<double> SolveLambda(const std::vector<double>& d, double alpha,
                                bool invert_preference);

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_LAMBDA_SOLVER_H_
