#include "core/fitted.h"

#include "common/rng.h"
#include "common/trace.h"
#include "tensor/ops.h"

namespace fairwos::core {

FittedGnnModel::FittedGnnModel(nn::GnnClassifier model, InputKind input_kind,
                               tensor::Tensor input, Provenance provenance)
    : model_(std::move(model)),
      input_kind_(input_kind),
      input_(std::move(input)),
      provenance_(std::move(provenance)) {
  if (input_kind_ == InputKind::kFrozen) {
    FW_CHECK(input_.defined());
    FW_CHECK_EQ(input_.rank(), 2);
    FW_CHECK_EQ(input_.dim(1), model_.encoder().config().in_features);
  }
}

const tensor::Tensor& FittedGnnModel::ResolveInput(
    const data::Dataset& ds) const {
  const tensor::Tensor& x =
      input_kind_ == InputKind::kDatasetFeatures ? ds.features : input_;
  // Shape mismatches mean Predict was handed a different dataset than Fit —
  // a caller bug, not an input error.
  FW_CHECK_EQ(x.dim(0), ds.num_nodes());
  FW_CHECK_EQ(x.dim(1), model_.encoder().config().in_features);
  return x;
}

nn::PredictionResult FittedGnnModel::Predict(const data::Dataset& ds) const {
  FW_TRACE_SPAN("fitted/predict");
  const tensor::Tensor& x = ResolveInput(ds);
  tensor::NoGradGuard no_grad;
  // The eval-mode forward draws nothing from the stream (dropout is a
  // no-op), so prediction is RNG-free; the instance only satisfies the
  // Embed signature.
  common::Rng rng(0);
  tensor::Tensor h = model_.Embed(x, /*training=*/false, &rng);
  nn::PredictionResult out = nn::PredictFromLogits(model_.Logits(h));
  out.embeddings = h.DetachCopy();
  if (pseudo_sens_.defined()) out.pseudo_sens = pseudo_sens_;
  out.train_seconds = train_seconds_;
  return out;
}

common::Result<std::unique_ptr<FittedModel>> MakeFittedGnn(
    nn::GnnClassifier model, FittedGnnModel::InputKind input_kind,
    tensor::Tensor input, FittedGnnModel::Provenance provenance,
    double train_seconds, tensor::Tensor pseudo_sens) {
  auto fitted = std::make_unique<FittedGnnModel>(
      std::move(model), input_kind, std::move(input), std::move(provenance));
  fitted->set_train_seconds(train_seconds);
  if (pseudo_sens.defined()) fitted->set_pseudo_sens(std::move(pseudo_sens));
  return std::unique_ptr<FittedModel>(std::move(fitted));
}

}  // namespace fairwos::core
