// The encoder module (paper §III-B, Eq. 4-6): a graph-aware dimensionality
// reducer whose output coordinates become the pseudo-sensitive attributes
// X⁰. It is pre-trained on the node-classification task through a linear
// softmax head, then frozen and applied as a feature extractor.
#ifndef FAIRWOS_CORE_ENCODER_H_
#define FAIRWOS_CORE_ENCODER_H_

#include <memory>

#include "common/deadline.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "nn/gnn.h"
#include "nn/optim.h"

namespace fairwos::core {

struct EncoderConfig {
  /// I — the number of pseudo-sensitive attributes (Fig. 5 sweeps this).
  int64_t out_dim = 16;
  int64_t epochs = 100;
  float lr = 1e-3f;
  float weight_decay = 5e-4f;
  float dropout = 0.5f;
  /// Early-stopping patience on validation accuracy; <= 0 disables.
  int64_t patience = 30;
};

/// Pre-trains a one-layer GCN encoder (captures non-sensitive attributes
/// AND structure, per Fig. 3) with a softmax head on the training labels,
/// then returns the frozen low-dimensional attributes X⁰ = Encoder(G).
class PretrainedEncoder {
 public:
  /// Trains on ds (Eq. 5) deterministically from `seed`. A non-null
  /// `deadline` is polled once per epoch; on expiry training stops early
  /// with the best parameters so far (the caller — core::TrainFairwos —
  /// re-checks the deadline and aborts the run cleanly; a half-trained
  /// encoder is never checkpointed, see docs/resume.md).
  PretrainedEncoder(const EncoderConfig& config, const data::Dataset& ds,
                    uint64_t seed,
                    const common::Deadline* deadline = nullptr);

  /// X⁰: [N, out_dim] pseudo-sensitive attributes, detached constants.
  const tensor::Tensor& pseudo_attributes() const { return x0_; }

  /// Validation accuracy of the encoder's own head at the best epoch —
  /// exposed for tests and diagnostics.
  double best_val_accuracy_pct() const { return best_val_acc_; }

 private:
  tensor::Tensor x0_;
  double best_val_acc_ = 0.0;
};

/// Per-column median split used to make "x⁰ᵢ differs" well-defined for
/// continuous embeddings (DESIGN.md §4): bins[v][i] ∈ {0, 1}.
std::vector<std::vector<uint8_t>> MedianBins(const tensor::Tensor& x0);

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_ENCODER_H_
