// Counterfactual data augmentation (paper §III-D, Eq. 11-12): instead of
// perturbing attributes (which fabricates non-realistic counterfactuals),
// Fairwos searches the *real* dataset for each node's counterfactuals —
// nodes with the same (pseudo-)label but a different value of the i-th
// pseudo-sensitive attribute, nearest in GNN embedding space.
#ifndef FAIRWOS_CORE_COUNTERFACTUAL_H_
#define FAIRWOS_CORE_COUNTERFACTUAL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fairwos::core {

struct CounterfactualConfig {
  /// K — counterfactuals kept per (node, attribute); paper sweeps 1..20.
  int64_t top_k = 5;
  /// Anchor nodes regularized per refresh; <= 0 uses every node. Sampling
  /// bounds the O(anchors * pool) search on commodity CPUs.
  int64_t sample_nodes = 512;
  /// Candidate pool size; <= 0 searches the full node set (exact Eq. 12).
  int64_t candidate_pool = 1024;
};

/// The search result: for attribute i and anchor position a,
/// matches[i][a] holds up to K node ids ordered by increasing embedding
/// distance. Fewer than K entries means the constraint set was exhausted.
struct CounterfactualSet {
  std::vector<int64_t> anchors;
  std::vector<std::vector<std::vector<int64_t>>> matches;  // [I][A][<=K]

  int64_t num_attrs() const { return static_cast<int64_t>(matches.size()); }
};

/// Runs the top-K search of Eq. 12.
///
/// `embeddings` are the current GNN representations h [N, H] (read as plain
/// values — the search itself is not differentiated through);
/// `bins[v][i]` is the discretised value of pseudo-attribute i at node v;
/// `pseudo_labels` come from the pre-trained classifier (semi-supervised
/// setting, §III-D). Deterministic in (inputs, rng state).
CounterfactualSet FindCounterfactuals(
    const tensor::Tensor& embeddings,
    const std::vector<std::vector<uint8_t>>& bins,
    const std::vector<int>& pseudo_labels, const CounterfactualConfig& config,
    common::Rng* rng);

}  // namespace fairwos::core

#endif  // FAIRWOS_CORE_COUNTERFACTUAL_H_
