// Classical graph algorithms used for dataset diagnostics and tests:
// connected components, clustering coefficients, degree histograms, and
// standard random-graph generators (the substrates behind the synthetic
// benchmarks are tested against these).
#ifndef FAIRWOS_GRAPH_ALGORITHMS_H_
#define FAIRWOS_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace fairwos::graph {

/// Component id per node (0-based, contiguous) plus the component count.
struct ComponentResult {
  std::vector<int64_t> component;
  int64_t num_components = 0;

  /// Size of the largest component.
  int64_t LargestSize() const;
};
ComponentResult ConnectedComponents(const Graph& g);

/// Local clustering coefficient of `v`: 2·|edges among neighbors| /
/// (deg·(deg−1)); 0 for degree < 2.
double LocalClusteringCoefficient(const Graph& g, int64_t v);

/// Mean local clustering coefficient over all nodes.
double AverageClusteringCoefficient(const Graph& g);

/// histogram[d] = number of nodes with degree d (length = max degree + 1;
/// a single zero entry for an empty graph).
std::vector<int64_t> DegreeHistogram(const Graph& g);

/// G(n, p) Erdős–Rényi random graph.
Graph ErdosRenyi(int64_t n, double p, common::Rng* rng);

/// Barabási–Albert preferential attachment: starts from a clique of
/// `attach` + 1 nodes, each new node attaches to `attach` distinct
/// existing nodes with probability proportional to degree.
Graph BarabasiAlbert(int64_t n, int64_t attach, common::Rng* rng);

/// Two-block stochastic block model: nodes [0, n/2) vs [n/2, n) with
/// within-block edge probability `p_in` and cross-block `p_out`.
Graph TwoBlockSbm(int64_t n, double p_in, double p_out, common::Rng* rng);

/// Spectral bipartition: the sign pattern of (an approximation of) the
/// second dominant eigenvector of the row-normalized adjacency, computed
/// by power iteration with the trivial all-ones direction deflated.
/// On homophilous graphs this recovers the dominant community split —
/// which, when a hidden demographic drives edge formation, is exactly the
/// demographic signature the fairness baselines go looking for.
std::vector<int> SpectralBipartition(const Graph& g, int64_t iterations,
                                     common::Rng* rng);

}  // namespace fairwos::graph

#endif  // FAIRWOS_GRAPH_ALGORITHMS_H_
