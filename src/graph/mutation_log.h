// Durable append-only mutation log for graph::MutableGraph
// (docs/serving.md "Dynamic graphs"): the write-ahead record of every
// accepted overlay mutation, using the fsync'd-envelope discipline of the
// v3 checkpoints (nn/checkpoint.h) so a crashed server can replay the
// overlay it had not yet compacted.
//
// On-disk layout (little-endian, packed):
//   header   u64 magic|version ("FWML" << 32 | 1), u64 base_seq,
//            u64 base_nodes, u64 base_edges, u64 feature_dim,
//            u32 crc32(previous 40 bytes)
//   record*  u32 payload_bytes, payload, u32 crc32(payload)
//   payload  u32 kind, i64 u, i64 v, u32 feature_count, f32[feature_count]
//
// Durability contract:
//   * Append/AppendBatch fsync before returning OK — a mutation is only
//     acknowledged once its record is on stable storage. The
//     kMutationLogAppend fault site is probed first; an injected fault
//     rejects the mutation with Internal and leaves the file untouched.
//   * Replay tolerates a torn tail (a crash mid-append leaves a partial
//     final record for a mutation that was never acknowledged — it is
//     dropped and reported via `torn_tail`), but any CRC mismatch or
//     malformed complete record is rejected with a precise IoError: a
//     corrupt log must never replay garbage into a serving graph.
//   * Reset() atomically replaces the log with a new generation header plus
//     the mutations a compaction carried over (tmp + fsync + rename + dir
//     fsync) — the log-truncation half of the compact lifecycle.
//
// The `base_seq` generation counter ties the log to the graph base it
// replays against. Generation 0 is the construction-time base; every
// successful MutableGraph::Compact() writes the merged base as a durable
// graph-base checkpoint (WriteGraphBase, seq = generation + 1, `folded` =
// the count of this generation's records it absorbed) and then Resets the
// log to the next generation. MutableGraph::Recover() stitches the two
// files back together across every crash window (mutation_log.cc documents
// the case analysis).
#ifndef FAIRWOS_GRAPH_MUTATION_LOG_H_
#define FAIRWOS_GRAPH_MUTATION_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace fairwos::graph {

class MutationLog {
 public:
  /// Generation header: which base the records replay against, and the
  /// shape that base must have (validated at recovery).
  struct Header {
    uint64_t base_seq = 0;
    int64_t base_nodes = 0;
    int64_t base_edges = 0;
    int64_t feature_dim = 0;
  };

  /// Everything Replay() learned from the file.
  struct ReplayResult {
    Header header;
    std::vector<GraphMutation> records;
    /// Bytes of header + complete records; a torn tail (if any) lies past
    /// this offset and is discarded by Open().
    int64_t valid_bytes = 0;
    /// True when the file ended inside a record — the fingerprint of a
    /// crash mid-append. The partial record was never acknowledged.
    bool torn_tail = false;
  };

  ~MutationLog();
  MutationLog(const MutationLog&) = delete;
  MutationLog& operator=(const MutationLog&) = delete;

  /// Creates a fresh log at `path` (truncating any existing file), writes
  /// the generation header durably, and returns the log open for append.
  static common::Result<std::unique_ptr<MutationLog>> Create(
      const std::string& path, const Header& header);

  /// Parses `path`: header, every complete record (CRC-verified), and
  /// whether a torn tail follows. Rejects a missing file, a bad magic or
  /// header CRC, and any corrupt complete record with a precise Status.
  static common::Result<ReplayResult> Replay(const std::string& path);

  /// Opens an existing, already-Replay()ed log for append. Truncates the
  /// file to `replay.valid_bytes` first, dropping any torn tail.
  static common::Result<std::unique_ptr<MutationLog>> Open(
      const std::string& path, const ReplayResult& replay);

  /// Appends one record and fsyncs. Probes kMutationLogAppend first: an
  /// injected fault returns Internal with the file untouched.
  common::Status Append(const GraphMutation& m);

  /// Appends `batch` as one write + one fsync (all records durable or, on
  /// error, the file rolled back to its previous size). One
  /// kMutationLogAppend probe per call.
  common::Status AppendBatch(const std::vector<GraphMutation>& batch);

  /// Truncates the file back to before the most recent successful
  /// Append/AppendBatch — the undo path for a mutation the overlay then
  /// refused (only an injected kGraphDeltaApply fault can cause that; real
  /// applies are pre-validated).
  common::Status RollbackLastAppend();

  /// Atomically replaces the log with a new generation: `header` plus
  /// `carried` (the mutations a compaction replayed onto its new base).
  /// On success the log continues appending to the new generation.
  common::Status Reset(const Header& header,
                       const std::vector<GraphMutation>& carried);

  const std::string& path() const { return path_; }
  const Header& header() const { return header_; }
  /// Records in the current generation's file (including carried-over ones).
  int64_t records() const { return records_; }
  int64_t bytes() const { return bytes_; }

 private:
  MutationLog(std::string path, Header header);

  common::Status AppendSerialized(const std::string& bytes, int64_t count);

  std::string path_;
  Header header_;
  int fd_ = -1;  // POSIX append fd; -1 on Windows (fstream fallback)
  int64_t records_ = 0;
  int64_t bytes_ = 0;
  int64_t last_append_bytes_ = -1;  // file size before the last append
};

/// A durable checkpoint of a compacted merged base: the graph, its feature
/// matrix, the log generation it supersedes (`seq` = generation + 1), and
/// `folded` — how many records of that generation it absorbed. Written with
/// the same atomic tmp + fsync + rename discipline as the v3 checkpoints.
struct GraphBaseCheckpoint {
  uint64_t seq = 0;
  int64_t folded = 0;
  std::shared_ptr<const Graph> graph;
  tensor::Tensor features;
};

common::Status WriteGraphBase(const std::string& path,
                              const GraphBaseCheckpoint& base);
common::Result<GraphBaseCheckpoint> ReadGraphBase(const std::string& path);

}  // namespace fairwos::graph

#endif  // FAIRWOS_GRAPH_MUTATION_LOG_H_
