#include "graph/mutable_graph.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "common/check.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "tensor/sparse.h"

namespace fairwos::graph {

GraphSnapshot::GraphSnapshot(int64_t epoch, DeltaOverlay overlay,
                             tensor::Tensor base_features,
                             std::vector<int64_t> affected)
    : GraphSnapshot(epoch, std::move(overlay), std::move(base_features),
                    std::move(affected), Refresh()) {}

GraphSnapshot::GraphSnapshot(int64_t epoch, DeltaOverlay overlay,
                             tensor::Tensor base_features,
                             std::vector<int64_t> affected, Refresh refresh)
    : epoch_(epoch),
      overlay_(std::move(overlay)),
      base_features_(std::move(base_features)),
      affected_(std::move(affected)),
      refresh_(std::move(refresh)) {}

std::vector<int64_t> GraphSnapshot::Neighbors(int64_t v) const {
  std::vector<int64_t> out;
  overlay_.AppendNeighbors(v, &out);
  return out;
}

std::shared_ptr<const Graph> GraphSnapshot::Materialized() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (materialized_ == nullptr) {
    materialized_ = std::make_shared<const Graph>(overlay_.Materialize());
  }
  return materialized_;
}

tensor::Tensor GraphSnapshot::Features() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!features_built_) {
    const auto& added = overlay_.added_features();
    if (added.empty()) {
      features_ = base_features_;  // copy-on-write: no added rows, no copy
    } else {
      const int64_t cols = overlay_.feature_dim();
      std::vector<float> data(base_features_.data().begin(),
                              base_features_.data().end());
      data.reserve(data.size() + added.size() * static_cast<size_t>(cols));
      for (const auto& row : added) {
        data.insert(data.end(), row.begin(), row.end());
      }
      features_ =
          tensor::Tensor::FromVector({num_nodes(), cols}, std::move(data));
    }
    features_built_ = true;
  }
  return features_;
}

std::shared_ptr<const tensor::SparseMatrix> GraphSnapshot::FullOperatorLocked(
    OpKind kind) const {
  if (materialized_ == nullptr) {
    materialized_ = std::make_shared<const Graph>(overlay_.Materialize());
  }
  switch (kind) {
    case kGcn:
      return materialized_->GcnNormalizedAdjacency();
    case kPlain:
      return materialized_->PlainAdjacency();
    case kRowNorm:
      return materialized_->RowNormalizedAdjacency();
    case kSelfLoops:
      return materialized_->AdjacencyWithSelfLoops();
    case kNeighborMean:
      return materialized_->NeighborMeanAdjacency();
  }
  FW_CHECK(false) << "unreachable operator kind";
  return nullptr;
}

std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::IncrementalOperatorLocked(OpKind kind) const {
  const tensor::SparseMatrix& prev = *refresh_.prev_ops[kind];
  const int64_t n = overlay_.num_nodes();
  const std::vector<int64_t>& patch = refresh_.patch_rows;

  std::vector<int64_t> row_ptr(static_cast<size_t>(n) + 1, 0);
  std::vector<int64_t> cols;
  std::vector<float> vals;
  // Most epochs touch a handful of rows; prev's nnz is a tight lower bound.
  cols.reserve(static_cast<size_t>(prev.nnz()) + 64);
  vals.reserve(static_cast<size_t>(prev.nnz()) + 64);

  std::vector<int64_t> neighbors;
  size_t pi = 0;
  for (int64_t r = 0; r < n; ++r) {
    while (pi < patch.size() && patch[pi] < r) ++pi;
    const bool patched = (pi < patch.size() && patch[pi] == r) ||
                         r >= refresh_.prev_num_nodes;
    if (!patched) {
      // Copy the previous epoch's row verbatim — bit-identical by
      // construction (the patch set covers every row whose entries could
      // have changed; see the file comment in mutable_graph.h).
      const auto& pp = prev.row_ptr();
      const size_t lo = static_cast<size_t>(pp[static_cast<size_t>(r)]);
      const size_t hi = static_cast<size_t>(pp[static_cast<size_t>(r) + 1]);
      cols.insert(cols.end(), prev.col_idx().begin() + lo,
                  prev.col_idx().begin() + hi);
      vals.insert(vals.end(), prev.values().begin() + lo,
                  prev.values().begin() + hi);
      row_ptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(cols.size());
      continue;
    }
    // Rebuild the row from the merged view with exactly the arithmetic
    // graph::Graph uses, in sorted-column order (what FromCoo would have
    // produced).
    neighbors.clear();
    overlay_.AppendNeighbors(r, &neighbors);
    std::sort(neighbors.begin(), neighbors.end());
    const int64_t deg = static_cast<int64_t>(neighbors.size());
    auto push_with_diag = [&](auto value_of, float diag) {
      bool placed = false;
      for (int64_t v : neighbors) {
        if (!placed && r < v) {
          cols.push_back(r);
          vals.push_back(diag);
          placed = true;
        }
        cols.push_back(v);
        vals.push_back(value_of(v));
      }
      if (!placed) {
        cols.push_back(r);
        vals.push_back(diag);
      }
    };
    switch (kind) {
      case kGcn: {
        // Mirrors Graph::GcnNormalizedAdjacency: inverse-sqrt degrees in
        // double, products narrowed to float per entry.
        const double dr =
            1.0 / std::sqrt(static_cast<double>(deg) + 1.0);
        push_with_diag(
            [&](int64_t v) {
              const double dv = 1.0 / std::sqrt(
                  static_cast<double>(overlay_.Degree(v)) + 1.0);
              return static_cast<float>(dr * dv);
            },
            static_cast<float>(dr * dr));
        break;
      }
      case kPlain:
        for (int64_t v : neighbors) {
          cols.push_back(v);
          vals.push_back(1.0f);
        }
        break;
      case kRowNorm: {
        const float inv = 1.0f / static_cast<float>(deg + 1);
        push_with_diag([&](int64_t) { return inv; }, inv);
        break;
      }
      case kSelfLoops:
        push_with_diag([&](int64_t) { return 1.0f; }, 1.0f);
        break;
      case kNeighborMean: {
        if (deg > 0) {
          const float inv = 1.0f / static_cast<float>(deg);
          for (int64_t v : neighbors) {
            cols.push_back(v);
            vals.push_back(inv);
          }
        }
        break;
      }
    }
    row_ptr[static_cast<size_t>(r) + 1] = static_cast<int64_t>(cols.size());
  }
  return tensor::SparseMatrix::FromCsr(n, n, std::move(row_ptr),
                                       std::move(cols), std::move(vals));
}

std::shared_ptr<const tensor::SparseMatrix> GraphSnapshot::Operator(
    OpKind kind) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (ops_[kind] == nullptr) {
    if (refresh_.prev_ops[kind] != nullptr) {
      auto patched = IncrementalOperatorLocked(kind);
      if (refresh_.cross_check) {
        const auto full = FullOperatorLocked(kind);
        FW_CHECK_EQ(patched->rows(), full->rows());
        FW_CHECK(patched->row_ptr() == full->row_ptr())
            << "incremental refresh diverged from rebuild (row_ptr), kind="
            << static_cast<int>(kind);
        FW_CHECK(patched->col_idx() == full->col_idx())
            << "incremental refresh diverged from rebuild (col_idx), kind="
            << static_cast<int>(kind);
        FW_CHECK(patched->values().size() == full->values().size() &&
                 (patched->values().empty() ||
                  std::memcmp(patched->values().data(),
                              full->values().data(),
                              patched->values().size() * sizeof(float)) == 0))
            << "incremental refresh diverged from rebuild (values), kind="
            << static_cast<int>(kind);
      }
      ops_[kind] = std::move(patched);
      ++ops_incremental_;
      obs::MetricsRegistry::Global()
          .GetCounter("graph.ops.incremental")
          ->Increment();
    } else {
      ops_[kind] = FullOperatorLocked(kind);
      ++ops_rebuilt_;
      obs::MetricsRegistry::Global()
          .GetCounter("graph.ops.rebuilt")
          ->Increment();
    }
  }
  return ops_[kind];
}

std::array<std::shared_ptr<const tensor::SparseMatrix>, 5>
GraphSnapshot::BuiltOps() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::array<std::shared_ptr<const tensor::SparseMatrix>, 5> out;
  for (int k = 0; k < 5; ++k) out[static_cast<size_t>(k)] = ops_[k];
  return out;
}

int64_t GraphSnapshot::ops_incremental() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return ops_incremental_;
}

int64_t GraphSnapshot::ops_rebuilt() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return ops_rebuilt_;
}

std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::GcnNormalizedAdjacency() const {
  return Operator(kGcn);
}
std::shared_ptr<const tensor::SparseMatrix> GraphSnapshot::PlainAdjacency()
    const {
  return Operator(kPlain);
}
std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::RowNormalizedAdjacency() const {
  return Operator(kRowNorm);
}
std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::AdjacencyWithSelfLoops() const {
  return Operator(kSelfLoops);
}
std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::NeighborMeanAdjacency() const {
  return Operator(kNeighborMean);
}

MutableGraph::MutableGraph(std::shared_ptr<const Graph> base,
                           tensor::Tensor base_features,
                           MutableGraphOptions options)
    : options_(options),
      feature_dim_(base_features.rank() == 2 ? base_features.dim(1) : 0),
      base_(std::move(base)),
      base_features_(std::move(base_features)) {
  FW_CHECK(base_ != nullptr);
  FW_CHECK_GE(options_.max_pending, 1);
  FW_CHECK_GE(options_.invalidation_radius, 0);
  FW_CHECK_EQ(base_features_.rank(), 2);
  FW_CHECK_EQ(base_features_.dim(0), base_->num_nodes())
      << "base feature matrix must have one row per node";
  auto& registry = obs::MetricsRegistry::Global();
  applied_counter_ = registry.GetCounter("graph.mutations.applied");
  shed_counter_ = registry.GetCounter("graph.mutations.shed");
  compactions_counter_ = registry.GetCounter("graph.compactions");
  compaction_failures_counter_ =
      registry.GetCounter("graph.compactions.failed");
  log_appends_counter_ = registry.GetCounter("graph.mutation_log.appends");
  log_resets_counter_ = registry.GetCounter("graph.mutation_log.resets");
  epoch_gauge_ = registry.GetGauge("graph.epoch");
  pending_gauge_ = registry.GetGauge("graph.pending_mutations");
  backlog_gauge_ = registry.GetGauge("graph.backlog");
  compaction_ms_hist_ = registry.GetHistogram("graph.compaction_ms");

  overlay_ = std::make_unique<DeltaOverlay>(base_, feature_dim_,
                                            options_.max_pending);
  std::lock_guard<std::mutex> lock(mu_);
  published_ = std::make_shared<const GraphSnapshot>(
      /*epoch=*/0, *overlay_, base_features_, std::vector<int64_t>{});
  epoch_gauge_->Set(0.0);
}

common::Result<std::unique_ptr<MutableGraph>> MutableGraph::Recover(
    std::shared_ptr<const Graph> base, tensor::Tensor base_features,
    const std::string& log_path, MutableGraphOptions options) {
  namespace fs = std::filesystem;
  const std::string base_path = log_path + ".base";

  std::shared_ptr<const Graph> start_base = std::move(base);
  tensor::Tensor start_features = std::move(base_features);
  const int64_t feature_dim =
      start_features.rank() == 2 ? start_features.dim(1) : 0;

  bool have_ckpt = false;
  uint64_t ckpt_seq = 0;
  int64_t ckpt_folded = 0;
  std::error_code ec;
  if (fs::exists(base_path, ec)) {
    FW_ASSIGN_OR_RETURN(GraphBaseCheckpoint ckpt, ReadGraphBase(base_path));
    if (ckpt.features.rank() != 2 || ckpt.features.dim(1) != feature_dim) {
      return common::Status::InvalidArgument(
          "graph-base checkpoint feature width does not match the caller's "
          "feature matrix: " + base_path);
    }
    start_base = ckpt.graph;
    start_features = ckpt.features;
    have_ckpt = true;
    ckpt_seq = ckpt.seq;
    ckpt_folded = ckpt.folded;
  }

  std::unique_ptr<MutationLog> log;
  std::vector<GraphMutation> replay;
  int64_t replay_from = 0;
  int64_t folded = 0;
  bool torn_tail = false;
  if (fs::exists(log_path, ec)) {
    FW_ASSIGN_OR_RETURN(MutationLog::ReplayResult rep,
                        MutationLog::Replay(log_path));
    torn_tail = rep.torn_tail;
    const uint64_t gen = rep.header.base_seq;
    if (!have_ckpt) {
      if (gen != 0) {
        return common::Status::FailedPrecondition(
            "mutation log is generation " + std::to_string(gen) +
            " but no graph-base checkpoint exists at " + base_path);
      }
      replay_from = 0;
    } else if (ckpt_seq == gen) {
      // The checkpoint IS this generation's base: replay everything.
      replay_from = 0;
    } else if (ckpt_seq == gen + 1) {
      // Compaction wrote the new base but crashed before truncating the
      // log: the first `folded` records are already inside the base.
      if (ckpt_folded < 0 ||
          ckpt_folded > static_cast<int64_t>(rep.records.size())) {
        return common::Status::FailedPrecondition(
            "graph-base checkpoint claims to fold " +
            std::to_string(ckpt_folded) + " records but the log holds " +
            std::to_string(rep.records.size()));
      }
      replay_from = ckpt_folded;
      folded = ckpt_folded;
    } else {
      return common::Status::FailedPrecondition(
          "graph-base checkpoint seq " + std::to_string(ckpt_seq) +
          " does not match mutation log generation " + std::to_string(gen));
    }
    if (!have_ckpt || ckpt_seq == gen) {
      // In these cases the log header describes exactly start_base. (When
      // ckpt_seq == gen + 1 the header describes the superseded base the
      // checkpoint replaced, so there is nothing left to compare against.)
      if (rep.header.base_nodes != start_base->num_nodes() ||
          rep.header.base_edges != start_base->num_edges() ||
          rep.header.feature_dim != feature_dim) {
        return common::Status::FailedPrecondition(
            "mutation log header does not match the recovery base: " +
            log_path);
      }
    }
    const int64_t to_replay =
        static_cast<int64_t>(rep.records.size()) - replay_from;
    if (to_replay > options.max_pending) {
      return common::Status::FailedPrecondition(
          "mutation log holds " + std::to_string(to_replay) +
          " uncompacted mutations but max_pending is " +
          std::to_string(options.max_pending) +
          "; raise max_pending to recover");
    }
    replay.assign(rep.records.begin() + replay_from, rep.records.end());
    FW_ASSIGN_OR_RETURN(log, MutationLog::Open(log_path, rep));
  } else {
    MutationLog::Header h;
    h.base_seq = have_ckpt ? ckpt_seq : 0;
    h.base_nodes = start_base->num_nodes();
    h.base_edges = start_base->num_edges();
    h.feature_dim = feature_dim;
    FW_ASSIGN_OR_RETURN(log, MutationLog::Create(log_path, h));
    folded = 0;
  }

  auto g = std::make_unique<MutableGraph>(start_base, start_features, options);
  for (size_t i = 0; i < replay.size(); ++i) {
    std::lock_guard<std::mutex> lock(g->mu_);
    const common::Status st =
        g->overlay_->Apply(replay[i], /*probe_faults=*/false);
    if (!st.ok()) {
      return common::Status::IoError(
          "mutation log replay failed at record " +
          std::to_string(replay_from + static_cast<int64_t>(i)) + ": " +
          st.ToString());
    }
    ++g->applied_;
    ++g->replayed_;
  }
  if (!replay.empty()) g->Publish();
  g->log_ = std::move(log);
  g->log_folded_ = folded;
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(
        obs::Event("mutation_log_recovered")
            .Set("generation",
                 static_cast<int64_t>(g->log_->header().base_seq))
            .Set("replayed", static_cast<int64_t>(replay.size()))
            .Set("folded", folded)
            .Set("torn_tail", torn_tail ? 1 : 0)
            .Set("from_checkpoint", have_ckpt ? 1 : 0));
  }
  return g;
}

common::Status MutableGraph::ApplyInternal(const GraphMutation& m,
                                           int64_t* node_out) {
  bool latch_backlog = false;
  int64_t pending_now = 0;
  int64_t shed_now = 0;
  common::Status status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (node_out != nullptr) *node_out = overlay_->num_nodes();
    if (log_ != nullptr && !log_detached_) {
      // Write-ahead discipline: validate (no fault probe), durably log,
      // then apply. A failed log append rejects the mutation with the
      // overlay and the file both untouched. Apply() after a successful
      // append can only fail via an injected kGraphDeltaApply fault
      // (real applies are pre-validated) — the log is rolled back so it
      // never carries a mutation the overlay refused.
      status = overlay_->Validate(m);
      if (status.ok()) {
        status = log_->Append(m);
        if (status.ok()) {
          ++log_appends_;
          log_appends_counter_->Increment();
          status = overlay_->Apply(m);
          if (!status.ok()) {
            const common::Status rb = log_->RollbackLastAppend();
            if (!rb.ok() && obs::TelemetryEnabled()) {
              obs::EmitEvent(obs::Event("mutation_log_rollback_failed")
                                 .Set("error", rb.ToString()));
            }
          }
        }
      }
    } else {
      status = overlay_->Apply(m);
    }
    if (status.ok()) {
      ++applied_;
      applied_counter_->Increment();
      pending_gauge_->Set(static_cast<double>(overlay_->size()));
    } else if (status.code() == common::StatusCode::kResourceExhausted) {
      ++shed_;
      shed_counter_->Increment();
      if (!backlogged_) {
        backlogged_ = true;
        latch_backlog = true;
        backlog_gauge_->Set(1.0);
      }
      pending_now = overlay_->size();
      shed_now = shed_;
    }
  }
  if (latch_backlog && obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("mutation_backlog")
                       .Set("pending", pending_now)
                       .Set("shed", shed_now)
                       .Set("max_pending", options_.max_pending));
  }
  return status;
}

common::Status MutableGraph::Apply(const GraphMutation& m) {
  return ApplyInternal(m, nullptr);
}

common::Result<int64_t> MutableGraph::AddNode(std::vector<float> features) {
  int64_t node = -1;
  const common::Status status =
      ApplyInternal(GraphMutation::AddNode(std::move(features)), &node);
  if (!status.ok()) return status;
  return node;
}

common::Status MutableGraph::AddEdge(int64_t u, int64_t v) {
  return Apply(GraphMutation::AddEdge(u, v));
}

common::Status MutableGraph::RemoveEdge(int64_t u, int64_t v) {
  return Apply(GraphMutation::RemoveEdge(u, v));
}

common::Status MutableGraph::ApplyBatch(
    const std::vector<GraphMutation>& batch,
    std::vector<common::Status>* statuses) {
  if (statuses != nullptr) {
    statuses->assign(batch.size(), common::Status::OK());
  }
  if (batch.empty()) return common::Status::OK();

  bool latch_backlog = false;
  int64_t pending_now = 0;
  int64_t shed_now = 0;
  common::Status first_error;
  size_t failed_at = batch.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Dry-run the whole batch on a scratch copy of the overlay: later
    // mutations validate against the state earlier ones produce (a batch
    // may add a node and then wire edges to it), and any failure aborts
    // with the live overlay untouched.
    auto scratch = std::make_unique<DeltaOverlay>(*overlay_);
    for (size_t i = 0; i < batch.size(); ++i) {
      const common::Status st = scratch->Apply(batch[i]);
      if (!st.ok()) {
        first_error = st;
        failed_at = i;
        break;
      }
    }
    if (failed_at < batch.size()) {
      if (statuses != nullptr) {
        const std::string aborted =
            "batch aborted by mutation #" + std::to_string(failed_at);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (i == failed_at) {
            (*statuses)[i] = first_error;
          } else {
            (*statuses)[i] = common::Status::FailedPrecondition(
                (i < failed_at ? "validated, rolled back: " : "not attempted: ") +
                aborted);
          }
        }
      }
      if (first_error.code() == common::StatusCode::kResourceExhausted) {
        ++shed_;
        shed_counter_->Increment();
        if (!backlogged_) {
          backlogged_ = true;
          latch_backlog = true;
          backlog_gauge_->Set(1.0);
        }
        pending_now = overlay_->size();
        shed_now = shed_;
      }
    } else {
      if (log_ != nullptr && !log_detached_) {
        first_error = log_->AppendBatch(batch);
      }
      if (first_error.ok()) {
        overlay_ = std::move(scratch);
        applied_ += static_cast<int64_t>(batch.size());
        applied_counter_->Increment(static_cast<int64_t>(batch.size()));
        if (log_ != nullptr && !log_detached_) {
          log_appends_ += static_cast<int64_t>(batch.size());
          log_appends_counter_->Increment(static_cast<int64_t>(batch.size()));
        }
        pending_gauge_->Set(static_cast<double>(overlay_->size()));
      } else {
        // Durable append refused (kMutationLogAppend): the whole batch is
        // rejected; log and overlay are both untouched.
        failed_at = 0;
        if (statuses != nullptr) {
          for (auto& s : *statuses) s = first_error;
        }
      }
    }
  }
  if (latch_backlog && obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("mutation_backlog")
                       .Set("pending", pending_now)
                       .Set("shed", shed_now)
                       .Set("max_pending", options_.max_pending));
  }
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("mutation_batch")
                       .Set("size", static_cast<int64_t>(batch.size()))
                       .Set("applied", failed_at == batch.size() ? 1 : 0));
  }
  if (failed_at == batch.size()) return common::Status::OK();
  return first_error;
}

std::shared_ptr<const GraphSnapshot> MutableGraph::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::vector<int64_t> MutableGraph::SeedsLocked(int64_t from,
                                               int64_t to) const {
  const auto& log = overlay_->log();
  int64_t next_added_id = overlay_->base()->num_nodes();
  for (int64_t i = 0; i < from; ++i) {
    if (log[i].kind == MutationKind::kAddNode) ++next_added_id;
  }
  std::vector<int64_t> seeds;
  for (int64_t i = from; i < to; ++i) {
    const GraphMutation& m = log[i];
    if (m.kind == MutationKind::kAddNode) {
      seeds.push_back(next_added_id++);
    } else {
      seeds.push_back(m.u);
      seeds.push_back(m.v);
    }
  }
  return seeds;
}

std::vector<int64_t> MutableGraph::AffectedLocked(
    const std::vector<int64_t>& seeds, int64_t radius) const {
  std::unordered_set<int64_t> seen(seeds.begin(), seeds.end());
  std::vector<int64_t> frontier(seen.begin(), seen.end());
  for (int64_t hop = 0; hop < radius; ++hop) {
    std::vector<int64_t> next;
    for (int64_t v : frontier) {
      std::vector<int64_t> neighbors;
      if (v >= 0 && v < overlay_->num_nodes()) {
        overlay_->AppendNeighbors(v, &neighbors);
      }
      // Union with the previous epoch's view, so nodes that *lost* an edge
      // (and their neighborhoods) are still invalidated.
      if (published_ != nullptr && v >= 0 && v < published_->num_nodes()) {
        const std::vector<int64_t> old = published_->Neighbors(v);
        neighbors.insert(neighbors.end(), old.begin(), old.end());
      }
      for (int64_t u : neighbors) {
        if (seen.insert(u).second) next.push_back(u);
      }
    }
    frontier = std::move(next);
  }
  std::vector<int64_t> affected(seen.begin(), seen.end());
  std::sort(affected.begin(), affected.end());
  return affected;
}

GraphSnapshot::Refresh MutableGraph::RefreshLocked(
    const std::vector<int64_t>& seeds) const {
  GraphSnapshot::Refresh refresh;
  if (!options_.incremental_refresh || published_ == nullptr) return refresh;
  refresh.prev_ops = published_->BuiltOps();
  refresh.prev_num_nodes = published_->num_nodes();
  // 1 hop suffices for bit-identity of every backbone operator: an entry
  // (u, v) changes only if u's adjacency changed (u is a seed) or a degree
  // feeding it changed — and degrees change only at seeds, whose operator
  // entries all live in rows adjacent to them.
  refresh.patch_rows = AffectedLocked(seeds, 1);
  refresh.cross_check = options_.refresh_cross_check;
  return refresh;
}

std::shared_ptr<const GraphSnapshot> MutableGraph::PublishLocked() {
  const std::vector<int64_t> seeds =
      SeedsLocked(published_log_size_, overlay_->size());
  std::vector<int64_t> affected =
      AffectedLocked(seeds, options_.invalidation_radius);
  GraphSnapshot::Refresh refresh = RefreshLocked(seeds);
  ++epoch_;
  auto snapshot = std::make_shared<const GraphSnapshot>(
      epoch_, *overlay_, base_features_, std::move(affected),
      std::move(refresh));
  published_ = snapshot;
  published_log_size_ = overlay_->size();
  epoch_gauge_->Set(static_cast<double>(epoch_));
  return snapshot;
}

void MutableGraph::NotifyListeners(
    const std::shared_ptr<const GraphSnapshot>& snapshot) {
  std::vector<EpochListener> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      listeners.push_back(listener);
    }
  }
  for (const auto& listener : listeners) listener(snapshot);
}

std::shared_ptr<const GraphSnapshot> MutableGraph::Publish() {
  std::shared_ptr<const GraphSnapshot> snapshot;
  {
    // notify_mu_ is taken BEFORE mu_ and held across the listener calls:
    // concurrent publishes deliver their epochs to listeners in strictly
    // ascending order, so a later epoch can never overtake an earlier
    // one's notification (which would let a cache skip the earlier
    // epoch's invalidations).
    std::lock_guard<std::mutex> notify_lock(notify_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (overlay_->size() == published_log_size_) return published_;
      snapshot = PublishLocked();
    }
    NotifyListeners(snapshot);
  }
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(
        obs::Event("graph_epoch")
            .Set("epoch", snapshot->epoch())
            .Set("nodes", snapshot->num_nodes())
            .Set("edges", snapshot->num_edges())
            .Set("affected",
                 static_cast<int64_t>(snapshot->affected_nodes().size())));
  }
  return snapshot;
}

common::Status MutableGraph::Compact() {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  common::Stopwatch watch;

  std::unique_ptr<DeltaOverlay> frozen;
  tensor::Tensor frozen_features;
  int64_t merged_count = 0;
  bool log_attached = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (overlay_->size() == 0) return common::Status::OK();
    merged_count = overlay_->size();
    frozen = std::make_unique<DeltaOverlay>(*overlay_);
    frozen_features = base_features_;
    log_attached = log_ != nullptr && !log_detached_;
  }

  auto fail = [&](const char* stage, common::Status st) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++compaction_failures_;
    }
    compaction_failures_counter_->Increment();
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("compaction_failed")
                         .Set("stage", stage)
                         .Set("pending", merged_count)
                         .Set("error", st.ToString()));
    }
    return st;
  };
  auto injected = [](const char* stage) {
    return common::Status::Internal(
        std::string("injected compaction fault (") + stage +
        "); previous snapshot keeps serving");
  };

  // Restore-before-publish: the merged CSR and feature matrix are built in
  // full before the swap below; a fault (or crash) at either probe leaves
  // every published structure untouched.
  auto* fi = testing::ActiveFaultInjector();
  if (fi != nullptr && fi->ShouldFire(testing::FaultSite::kGraphCompaction)) {
    return fail("pre-rebuild", injected("pre-rebuild"));
  }
  auto new_base = std::make_shared<const Graph>(frozen->Materialize());
  tensor::Tensor new_features;
  if (frozen->added_features().empty()) {
    new_features = frozen_features;
  } else {
    std::vector<float> data(frozen_features.data().begin(),
                            frozen_features.data().end());
    for (const auto& row : frozen->added_features()) {
      data.insert(data.end(), row.begin(), row.end());
    }
    new_features = tensor::Tensor::FromVector(
        {new_base->num_nodes(), feature_dim_}, std::move(data));
  }
  if (fi != nullptr && fi->ShouldFire(testing::FaultSite::kGraphCompaction)) {
    return fail("pre-publish", injected("pre-publish"));
  }

  // Durable half of the compact lifecycle, still before anything is
  // published: write the merged base as a graph-base checkpoint whose seq
  // supersedes the current log generation. A crash after this write but
  // before the log Reset below recovers via the checkpoint's `folded`
  // offset (mutation_log.h documents the case analysis). On write failure
  // nothing has been swapped — the previous base, overlay, and log keep
  // serving and a later Compact() retries.
  if (log_attached) {
    GraphBaseCheckpoint ckpt;
    ckpt.seq = log_->header().base_seq + 1;
    ckpt.folded = log_folded_ + merged_count;
    ckpt.graph = new_base;
    ckpt.features = new_features;
    const common::Status st = WriteGraphBase(log_->path() + ".base", ckpt);
    if (!st.ok()) return fail("base-checkpoint", st);
  }

  std::shared_ptr<const GraphSnapshot> snapshot;
  bool clear_backlog = false;
  int64_t carried_over = 0;
  bool detached_now = false;
  common::Status reset_status;
  {
    std::lock_guard<std::mutex> notify_lock(notify_mu_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Seeds of everything this publish makes visible, in pre-rebase
      // coordinates (the folded log still exists here).
      const std::vector<int64_t> seeds =
          SeedsLocked(published_log_size_, overlay_->size());
      std::vector<int64_t> affected =
          AffectedLocked(seeds, options_.invalidation_radius);
      GraphSnapshot::Refresh refresh = RefreshLocked(seeds);

      // Mutations that arrived while the merge was building are replayed
      // onto the new base — the suffix revalidates against exactly the
      // state it was originally accepted under, so every replay must
      // succeed.
      auto fresh = std::make_unique<DeltaOverlay>(new_base, feature_dim_,
                                                  options_.max_pending);
      const auto& log = overlay_->log();
      for (size_t i = static_cast<size_t>(merged_count); i < log.size();
           ++i) {
        const common::Status st =
            fresh->Apply(log[i], /*probe_faults=*/false);
        FW_CHECK(st.ok()) << "compaction rebase replay failed: "
                          << st.ToString();
      }
      base_ = new_base;
      base_features_ = new_features;
      overlay_ = std::move(fresh);
      published_log_size_ = 0;
      ++compactions_;
      ++epoch_;
      snapshot = std::make_shared<const GraphSnapshot>(
          epoch_, *overlay_, base_features_, std::move(affected),
          std::move(refresh));
      published_ = snapshot;
      published_log_size_ = overlay_->size();
      carried_over = overlay_->size();
      epoch_gauge_->Set(static_cast<double>(epoch_));
      pending_gauge_->Set(static_cast<double>(overlay_->size()));
      if (backlogged_ && !overlay_->full()) {
        backlogged_ = false;
        clear_backlog = true;
        backlog_gauge_->Set(0.0);
      }
      if (log_attached) {
        // Truncate the log to the carried-over suffix: the new generation
        // replays against the checkpoint written above.
        MutationLog::Header h;
        h.base_seq = log_->header().base_seq + 1;
        h.base_nodes = new_base->num_nodes();
        h.base_edges = new_base->num_edges();
        h.feature_dim = feature_dim_;
        reset_status = log_->Reset(h, overlay_->log());
        if (reset_status.ok()) {
          log_folded_ = 0;
          ++log_resets_;
          log_resets_counter_->Increment();
        } else {
          // The swap is already published and the checkpoint is durable,
          // so in-memory serving is correct — but the log can no longer be
          // trusted to extend it. Detach: later mutations are not logged
          // (crash durability is degraded until restart) and the incident
          // below says so.
          log_detached_ = true;
          detached_now = true;
        }
      }
    }
    NotifyListeners(snapshot);
  }

  const double duration_ms = watch.Millis();
  compactions_counter_->Increment();
  compaction_ms_hist_->Observe(duration_ms);
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(
        obs::Event("compaction")
            .Set("epoch", snapshot->epoch())
            .Set("merged", merged_count)
            .Set("carried_over", carried_over)
            .Set("duration_ms", duration_ms));
    if (clear_backlog) {
      obs::EmitEvent(obs::Event("mutation_backlog_cleared")
                         .Set("epoch", snapshot->epoch()));
    }
    if (detached_now) {
      obs::EmitEvent(obs::Event("mutation_log_detached")
                         .Set("epoch", snapshot->epoch())
                         .Set("error", reset_status.ToString()));
    }
  }
  return common::Status::OK();
}

int64_t MutableGraph::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

int64_t MutableGraph::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_->size();
}

bool MutableGraph::backlogged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlogged_;
}

MutableGraph::Stats MutableGraph::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.epoch = epoch_;
  s.pending = overlay_->size();
  s.applied = applied_;
  s.shed = shed_;
  s.compactions = compactions_;
  s.compaction_failures = compaction_failures_;
  s.backlogged = backlogged_;
  s.log_appends = log_appends_;
  s.log_records = log_ != nullptr ? log_->records() : 0;
  s.log_resets = log_resets_;
  s.replayed = replayed_;
  return s;
}

int64_t MutableGraph::AddEpochListener(EpochListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void MutableGraph::RemoveEpochListener(int64_t token) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
      if (it->first == token) {
        listeners_.erase(it);
        break;
      }
    }
  }
  // A notification round that copied the listener list before the erase
  // above may still be invoking the removed listener. Taking notify_mu_
  // once (and releasing it immediately) waits that round out: after this
  // returns, the listener is not running and will never run again, so the
  // caller may destroy the state it captures.
  std::lock_guard<std::mutex> barrier(notify_mu_);
}

}  // namespace fairwos::graph
