#include "graph/mutable_graph.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/fault.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"

namespace fairwos::graph {

GraphSnapshot::GraphSnapshot(int64_t epoch, DeltaOverlay overlay,
                             tensor::Tensor base_features,
                             std::vector<int64_t> affected)
    : epoch_(epoch),
      overlay_(std::move(overlay)),
      base_features_(std::move(base_features)),
      affected_(std::move(affected)) {}

std::vector<int64_t> GraphSnapshot::Neighbors(int64_t v) const {
  std::vector<int64_t> out;
  overlay_.AppendNeighbors(v, &out);
  return out;
}

std::shared_ptr<const Graph> GraphSnapshot::Materialized() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (materialized_ == nullptr) {
    materialized_ = std::make_shared<const Graph>(overlay_.Materialize());
  }
  return materialized_;
}

tensor::Tensor GraphSnapshot::Features() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!features_built_) {
    const auto& added = overlay_.added_features();
    if (added.empty()) {
      features_ = base_features_;  // copy-on-write: no added rows, no copy
    } else {
      const int64_t cols = overlay_.feature_dim();
      std::vector<float> data = base_features_.data();
      data.reserve(data.size() + added.size() * static_cast<size_t>(cols));
      for (const auto& row : added) {
        data.insert(data.end(), row.begin(), row.end());
      }
      features_ =
          tensor::Tensor::FromVector({num_nodes(), cols}, std::move(data));
    }
    features_built_ = true;
  }
  return features_;
}

std::shared_ptr<const tensor::SparseMatrix> GraphSnapshot::Operator(
    OpKind kind) const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (ops_[kind] == nullptr) {
    if (materialized_ == nullptr) {
      materialized_ = std::make_shared<const Graph>(overlay_.Materialize());
    }
    switch (kind) {
      case kGcn:
        ops_[kind] = materialized_->GcnNormalizedAdjacency();
        break;
      case kPlain:
        ops_[kind] = materialized_->PlainAdjacency();
        break;
      case kRowNorm:
        ops_[kind] = materialized_->RowNormalizedAdjacency();
        break;
      case kSelfLoops:
        ops_[kind] = materialized_->AdjacencyWithSelfLoops();
        break;
      case kNeighborMean:
        ops_[kind] = materialized_->NeighborMeanAdjacency();
        break;
    }
  }
  return ops_[kind];
}

std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::GcnNormalizedAdjacency() const {
  return Operator(kGcn);
}
std::shared_ptr<const tensor::SparseMatrix> GraphSnapshot::PlainAdjacency()
    const {
  return Operator(kPlain);
}
std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::RowNormalizedAdjacency() const {
  return Operator(kRowNorm);
}
std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::AdjacencyWithSelfLoops() const {
  return Operator(kSelfLoops);
}
std::shared_ptr<const tensor::SparseMatrix>
GraphSnapshot::NeighborMeanAdjacency() const {
  return Operator(kNeighborMean);
}

MutableGraph::MutableGraph(std::shared_ptr<const Graph> base,
                           tensor::Tensor base_features,
                           MutableGraphOptions options)
    : options_(options),
      feature_dim_(base_features.rank() == 2 ? base_features.dim(1) : 0),
      base_(std::move(base)),
      base_features_(std::move(base_features)) {
  FW_CHECK(base_ != nullptr);
  FW_CHECK_GE(options_.max_pending, 1);
  FW_CHECK_GE(options_.invalidation_radius, 0);
  FW_CHECK_EQ(base_features_.rank(), 2);
  FW_CHECK_EQ(base_features_.dim(0), base_->num_nodes())
      << "base feature matrix must have one row per node";
  auto& registry = obs::MetricsRegistry::Global();
  applied_counter_ = registry.GetCounter("graph.mutations.applied");
  shed_counter_ = registry.GetCounter("graph.mutations.shed");
  compactions_counter_ = registry.GetCounter("graph.compactions");
  compaction_failures_counter_ =
      registry.GetCounter("graph.compactions.failed");
  epoch_gauge_ = registry.GetGauge("graph.epoch");
  pending_gauge_ = registry.GetGauge("graph.pending_mutations");
  backlog_gauge_ = registry.GetGauge("graph.backlog");
  compaction_ms_hist_ = registry.GetHistogram("graph.compaction_ms");

  overlay_ = std::make_unique<DeltaOverlay>(base_, feature_dim_,
                                            options_.max_pending);
  std::lock_guard<std::mutex> lock(mu_);
  published_ = std::make_shared<const GraphSnapshot>(
      /*epoch=*/0, *overlay_, base_features_, std::vector<int64_t>{});
  epoch_gauge_->Set(0.0);
}

common::Status MutableGraph::Apply(const GraphMutation& m) {
  bool latch_backlog = false;
  int64_t pending_now = 0;
  int64_t shed_now = 0;
  common::Status status;
  {
    std::lock_guard<std::mutex> lock(mu_);
    status = overlay_->Apply(m);
    if (status.ok()) {
      ++applied_;
      applied_counter_->Increment();
      pending_gauge_->Set(static_cast<double>(overlay_->size()));
    } else if (status.code() == common::StatusCode::kResourceExhausted) {
      ++shed_;
      shed_counter_->Increment();
      if (!backlogged_) {
        backlogged_ = true;
        latch_backlog = true;
        backlog_gauge_->Set(1.0);
      }
      pending_now = overlay_->size();
      shed_now = shed_;
    }
  }
  if (latch_backlog && obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("mutation_backlog")
                       .Set("pending", pending_now)
                       .Set("shed", shed_now)
                       .Set("max_pending", options_.max_pending));
  }
  return status;
}

common::Result<int64_t> MutableGraph::AddNode(std::vector<float> features) {
  GraphMutation m = GraphMutation::AddNode(std::move(features));
  bool latch_backlog = false;
  int64_t pending_now = 0;
  int64_t shed_now = 0;
  common::Status status;
  int64_t node = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    node = overlay_->num_nodes();
    status = overlay_->Apply(m);
    if (status.ok()) {
      ++applied_;
      applied_counter_->Increment();
      pending_gauge_->Set(static_cast<double>(overlay_->size()));
    } else if (status.code() == common::StatusCode::kResourceExhausted) {
      ++shed_;
      shed_counter_->Increment();
      if (!backlogged_) {
        backlogged_ = true;
        latch_backlog = true;
        backlog_gauge_->Set(1.0);
      }
      pending_now = overlay_->size();
      shed_now = shed_;
    }
  }
  if (latch_backlog && obs::TelemetryEnabled()) {
    obs::EmitEvent(obs::Event("mutation_backlog")
                       .Set("pending", pending_now)
                       .Set("shed", shed_now)
                       .Set("max_pending", options_.max_pending));
  }
  if (!status.ok()) return status;
  return node;
}

common::Status MutableGraph::AddEdge(int64_t u, int64_t v) {
  return Apply(GraphMutation::AddEdge(u, v));
}

common::Status MutableGraph::RemoveEdge(int64_t u, int64_t v) {
  return Apply(GraphMutation::RemoveEdge(u, v));
}

std::shared_ptr<const GraphSnapshot> MutableGraph::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

std::vector<int64_t> MutableGraph::SeedsLocked(int64_t from,
                                               int64_t to) const {
  const auto& log = overlay_->log();
  int64_t next_added_id = overlay_->base()->num_nodes();
  for (int64_t i = 0; i < from; ++i) {
    if (log[i].kind == MutationKind::kAddNode) ++next_added_id;
  }
  std::vector<int64_t> seeds;
  for (int64_t i = from; i < to; ++i) {
    const GraphMutation& m = log[i];
    if (m.kind == MutationKind::kAddNode) {
      seeds.push_back(next_added_id++);
    } else {
      seeds.push_back(m.u);
      seeds.push_back(m.v);
    }
  }
  return seeds;
}

std::vector<int64_t> MutableGraph::AffectedLocked(
    std::vector<int64_t> seeds) const {
  std::unordered_set<int64_t> seen(seeds.begin(), seeds.end());
  std::vector<int64_t> frontier(seen.begin(), seen.end());
  for (int64_t hop = 0; hop < options_.invalidation_radius; ++hop) {
    std::vector<int64_t> next;
    for (int64_t v : frontier) {
      std::vector<int64_t> neighbors;
      if (v >= 0 && v < overlay_->num_nodes()) {
        overlay_->AppendNeighbors(v, &neighbors);
      }
      // Union with the previous epoch's view, so nodes that *lost* an edge
      // (and their neighborhoods) are still invalidated.
      if (published_ != nullptr && v >= 0 && v < published_->num_nodes()) {
        const std::vector<int64_t> old = published_->Neighbors(v);
        neighbors.insert(neighbors.end(), old.begin(), old.end());
      }
      for (int64_t u : neighbors) {
        if (seen.insert(u).second) next.push_back(u);
      }
    }
    frontier = std::move(next);
  }
  std::vector<int64_t> affected(seen.begin(), seen.end());
  std::sort(affected.begin(), affected.end());
  return affected;
}

std::shared_ptr<const GraphSnapshot> MutableGraph::PublishLocked() {
  std::vector<int64_t> seeds =
      SeedsLocked(published_log_size_, overlay_->size());
  std::vector<int64_t> affected = AffectedLocked(std::move(seeds));
  ++epoch_;
  auto snapshot = std::make_shared<const GraphSnapshot>(
      epoch_, *overlay_, base_features_, std::move(affected));
  published_ = snapshot;
  published_log_size_ = overlay_->size();
  epoch_gauge_->Set(static_cast<double>(epoch_));
  return snapshot;
}

void MutableGraph::NotifyListeners(
    const std::shared_ptr<const GraphSnapshot>& snapshot) {
  std::vector<EpochListener> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners.reserve(listeners_.size());
    for (const auto& [token, listener] : listeners_) {
      listeners.push_back(listener);
    }
  }
  for (const auto& listener : listeners) listener(snapshot);
}

std::shared_ptr<const GraphSnapshot> MutableGraph::Publish() {
  std::shared_ptr<const GraphSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (overlay_->size() == published_log_size_) return published_;
    snapshot = PublishLocked();
  }
  NotifyListeners(snapshot);
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(
        obs::Event("graph_epoch")
            .Set("epoch", snapshot->epoch())
            .Set("nodes", snapshot->num_nodes())
            .Set("edges", snapshot->num_edges())
            .Set("affected",
                 static_cast<int64_t>(snapshot->affected_nodes().size())));
  }
  return snapshot;
}

common::Status MutableGraph::Compact() {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  common::Stopwatch watch;

  std::unique_ptr<DeltaOverlay> frozen;
  tensor::Tensor frozen_features;
  int64_t merged_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (overlay_->size() == 0) return common::Status::OK();
    merged_count = overlay_->size();
    frozen = std::make_unique<DeltaOverlay>(*overlay_);
    frozen_features = base_features_;
  }

  auto fail = [&](const char* stage) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++compaction_failures_;
    }
    compaction_failures_counter_->Increment();
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("compaction_failed")
                         .Set("stage", stage)
                         .Set("pending", merged_count));
    }
    return common::Status::Internal(
        std::string("injected compaction fault (") + stage +
        "); previous snapshot keeps serving");
  };

  // Restore-before-publish: the merged CSR and feature matrix are built in
  // full before the swap below; a fault (or crash) at either probe leaves
  // every published structure untouched.
  auto* fi = testing::ActiveFaultInjector();
  if (fi != nullptr && fi->ShouldFire(testing::FaultSite::kGraphCompaction)) {
    return fail("pre-rebuild");
  }
  auto new_base = std::make_shared<const Graph>(frozen->Materialize());
  tensor::Tensor new_features;
  if (frozen->added_features().empty()) {
    new_features = frozen_features;
  } else {
    std::vector<float> data = frozen_features.data();
    for (const auto& row : frozen->added_features()) {
      data.insert(data.end(), row.begin(), row.end());
    }
    new_features = tensor::Tensor::FromVector(
        {new_base->num_nodes(), feature_dim_}, std::move(data));
  }
  if (fi != nullptr && fi->ShouldFire(testing::FaultSite::kGraphCompaction)) {
    return fail("pre-publish");
  }

  std::shared_ptr<const GraphSnapshot> snapshot;
  bool clear_backlog = false;
  int64_t carried_over = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Seeds of everything this publish makes visible, in pre-rebase
    // coordinates (the folded log still exists here).
    std::vector<int64_t> seeds =
        SeedsLocked(published_log_size_, overlay_->size());
    std::vector<int64_t> affected = AffectedLocked(std::move(seeds));

    // Mutations that arrived while the merge was building are replayed onto
    // the new base — the suffix revalidates against exactly the state it
    // was originally accepted under, so every replay must succeed.
    auto fresh = std::make_unique<DeltaOverlay>(new_base, feature_dim_,
                                                options_.max_pending);
    const auto& log = overlay_->log();
    for (size_t i = static_cast<size_t>(merged_count); i < log.size(); ++i) {
      const common::Status st = fresh->Apply(log[i], /*probe_faults=*/false);
      FW_CHECK(st.ok()) << "compaction rebase replay failed: " << st.ToString();
    }
    base_ = new_base;
    base_features_ = new_features;
    overlay_ = std::move(fresh);
    published_log_size_ = 0;
    ++compactions_;
    ++epoch_;
    snapshot = std::make_shared<const GraphSnapshot>(
        epoch_, *overlay_, base_features_, std::move(affected));
    published_ = snapshot;
    published_log_size_ = overlay_->size();
    carried_over = overlay_->size();
    epoch_gauge_->Set(static_cast<double>(epoch_));
    pending_gauge_->Set(static_cast<double>(overlay_->size()));
    if (backlogged_ && !overlay_->full()) {
      backlogged_ = false;
      clear_backlog = true;
      backlog_gauge_->Set(0.0);
    }
  }
  NotifyListeners(snapshot);

  const double duration_ms = watch.Millis();
  compactions_counter_->Increment();
  compaction_ms_hist_->Observe(duration_ms);
  if (obs::TelemetryEnabled()) {
    obs::EmitEvent(
        obs::Event("compaction")
            .Set("epoch", snapshot->epoch())
            .Set("merged", merged_count)
            .Set("carried_over", carried_over)
            .Set("duration_ms", duration_ms));
    if (clear_backlog) {
      obs::EmitEvent(obs::Event("mutation_backlog_cleared")
                         .Set("epoch", snapshot->epoch()));
    }
  }
  return common::Status::OK();
}

int64_t MutableGraph::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

int64_t MutableGraph::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_->size();
}

bool MutableGraph::backlogged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlogged_;
}

MutableGraph::Stats MutableGraph::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.epoch = epoch_;
  s.pending = overlay_->size();
  s.applied = applied_;
  s.shed = shed_;
  s.compactions = compactions_;
  s.compaction_failures = compaction_failures_;
  s.backlogged = backlogged_;
  return s;
}

int64_t MutableGraph::AddEpochListener(EpochListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t token = next_listener_token_++;
  listeners_.emplace_back(token, std::move(listener));
  return token;
}

void MutableGraph::RemoveEpochListener(int64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = listeners_.begin(); it != listeners_.end(); ++it) {
    if (it->first == token) {
      listeners_.erase(it);
      return;
    }
  }
}

}  // namespace fairwos::graph
