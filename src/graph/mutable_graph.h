// Dynamic graphs for serving (docs/serving.md "Dynamic graphs"): an
// immutable base CSR plus a bounded, validated delta overlay
// (graph/delta.h), published to readers as epoch-numbered copy-on-write
// snapshots.
//
// Concurrency contract:
//   * Mutations (Apply/ApplyBatch/AddNode/AddEdge/RemoveEdge) and
//     Publish/Compact are serialized under the writer mutex.
//   * Readers call Current() — one brief mutex-protected shared_ptr copy —
//     and then work against the immutable GraphSnapshot with no further
//     MutableGraph locks: the forward path never blocks on a writer. A
//     snapshot stays fully usable (and bit-stable) for as long as anyone
//     holds it, no matter how many mutations, publishes, or compactions
//     happen behind it.
//   * Publish() freezes the current merged view as epoch N+1 and notifies
//     epoch listeners (outside the writer mutex, registry-listener
//     discipline) with the snapshot, whose affected_nodes() lists exactly
//     the node ids whose predictions may differ from epoch N — the serving
//     LRU purges precisely those. Notification order is serialized under a
//     dedicated notify mutex: listeners observe epochs strictly ascending
//     even when Publish races Publish/Compact, so no epoch's affected set
//     can be skipped by an out-of-order delivery. Listeners must not call
//     back into Add/RemoveEpochListener or Publish/Compact.
//   * RemoveEpochListener synchronizes with in-flight notifications: after
//     it returns, the removed listener is not running and will never run
//     again — an engine may destroy itself immediately after removal.
//   * Compact() merges the overlay into a fresh base CSR behind an atomic
//     restore-before-publish swap (the ModelRegistry::Swap discipline): the
//     merged CSR and feature matrix are fully built before anything is
//     unpublished, with the kGraphCompaction fault site probed before and
//     after the rebuild. A failed (or crashed) compaction leaves the
//     previous base, overlay, and snapshot serving untouched and re-arms —
//     the next Compact() simply tries again. Mutations that arrive while a
//     compaction is building are replayed onto the new base before the
//     swap publishes, so none are lost.
//   * Overlay overflow sheds mutations with ResourceExhausted and raises a
//     latched `mutation_backlog` incident (cleared, with a
//     `mutation_backlog_cleared` event, by the compaction that drains the
//     overlay) instead of growing unbounded.
//
// Incremental operator refresh: each published snapshot captures the
// previous epoch's already-built adjacency operators and, on first use,
// patches only the rows the epoch's mutations could have changed (the
// 1-hop expansion of the mutation seeds over the union of the old and new
// adjacency — for the degree-normalized operators that radius also covers
// the degree-scaled entries in the touched *columns*, because every row
// holding such an entry neighbors a mutation endpoint). Unpatched rows are
// copied verbatim, so the result is bit-identical to a from-scratch
// rebuild; MutableGraphOptions::refresh_cross_check additionally rebuilds
// every operator from scratch and FW_CHECKs bit-equality (tests and the
// chaos bench run with it on).
//
// Durable mutation log: a graph created via Recover() carries a
// graph::MutationLog. Every accepted mutation is appended (fsync'd) to the
// log *before* it is applied to the overlay, and a successful Compact()
// writes the merged base as a graph-base checkpoint and then truncates the
// log to the mutations it carried over — so a crashed server replays
// exactly the overlay it had not yet compacted, byte-identical. A failed
// log append (kMutationLogAppend) rejects the mutation with Internal and
// leaves both the log and the overlay untouched.
//
// Because SparseMatrix::FromCoo sorts its COO entries, every adjacency
// operator built from a snapshot is bit-identical to the same operator
// built from a from-scratch Graph holding the same edge set — which is what
// makes the refresh and post-compaction bit-identity guarantees testable
// end to end.
#ifndef FAIRWOS_GRAPH_MUTABLE_GRAPH_H_
#define FAIRWOS_GRAPH_MUTABLE_GRAPH_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "graph/mutation_log.h"
#include "tensor/tensor.h"

namespace fairwos::graph {

/// One immutable published epoch: the merged graph view plus its feature
/// matrix. Cheap to hold; the materialized Graph, the feature matrix, and
/// the per-backbone adjacency operators are built lazily on first use and
/// cached (thread-safe), so an epoch that only absorbs mutations never pays
/// for views nobody reads.
class GraphSnapshot {
 public:
  /// What an epoch inherits from its predecessor for incremental operator
  /// refresh: the operators the previous snapshot had already built, its
  /// row count, and the sorted row ids this epoch must rebuild (everything
  /// else is copied verbatim). Populated by MutableGraph at publish time;
  /// an empty Refresh (no prev_ops) falls back to from-scratch builds.
  struct Refresh {
    std::array<std::shared_ptr<const tensor::SparseMatrix>, 5> prev_ops{};
    int64_t prev_num_nodes = 0;
    std::vector<int64_t> patch_rows;  // sorted, unique
    bool cross_check = false;  // also rebuild + FW_CHECK bit-identity
  };

  GraphSnapshot(int64_t epoch, DeltaOverlay overlay,
                tensor::Tensor base_features, std::vector<int64_t> affected);
  GraphSnapshot(int64_t epoch, DeltaOverlay overlay,
                tensor::Tensor base_features, std::vector<int64_t> affected,
                Refresh refresh);

  int64_t epoch() const { return epoch_; }
  int64_t num_nodes() const { return overlay_.num_nodes(); }
  int64_t num_edges() const { return overlay_.num_edges(); }
  bool HasEdge(int64_t u, int64_t v) const { return overlay_.HasEdge(u, v); }
  int64_t Degree(int64_t v) const { return overlay_.Degree(v); }
  std::vector<int64_t> Neighbors(int64_t v) const;

  /// Node ids whose predictions may differ from the previous epoch's
  /// (mutation endpoints expanded to the configured invalidation radius
  /// over the union of the old and new adjacency). Sorted, unique. Empty
  /// for the initial epoch.
  const std::vector<int64_t>& affected_nodes() const { return affected_; }

  /// The merged view as a from-scratch-equivalent Graph.
  std::shared_ptr<const Graph> Materialized() const;

  /// [num_nodes, F] feature matrix: the base matrix with the overlay's
  /// added rows appended. Returns the base tensor itself (no copy) when no
  /// nodes were added.
  tensor::Tensor Features() const;

  // Adjacency operators of the merged view, mirroring graph::Graph (each
  // built once per snapshot and cached).
  std::shared_ptr<const tensor::SparseMatrix> GcnNormalizedAdjacency() const;
  std::shared_ptr<const tensor::SparseMatrix> PlainAdjacency() const;
  std::shared_ptr<const tensor::SparseMatrix> RowNormalizedAdjacency() const;
  std::shared_ptr<const tensor::SparseMatrix> AdjacencyWithSelfLoops() const;
  std::shared_ptr<const tensor::SparseMatrix> NeighborMeanAdjacency() const;

  /// The operators this snapshot has built so far (null where not yet
  /// requested) — the next epoch's Refresh captures these at publish time.
  std::array<std::shared_ptr<const tensor::SparseMatrix>, 5> BuiltOps() const;

  /// How many of this snapshot's operators were built by patching the
  /// previous epoch's matrices vs from scratch (tests and benches assert
  /// the refresh path actually ran).
  int64_t ops_incremental() const;
  int64_t ops_rebuilt() const;

 private:
  enum OpKind { kGcn = 0, kPlain, kRowNorm, kSelfLoops, kNeighborMean };

  std::shared_ptr<const tensor::SparseMatrix> Operator(OpKind kind) const;

  /// From-scratch build via the materialized Graph. Requires cache_mu_.
  std::shared_ptr<const tensor::SparseMatrix> FullOperatorLocked(
      OpKind kind) const;

  /// Patches refresh_.prev_ops[kind]: rows in patch_rows (plus any row past
  /// the previous epoch's node count) are rebuilt from the merged view with
  /// exactly the arithmetic graph::Graph uses; every other row is copied
  /// verbatim. Requires cache_mu_.
  std::shared_ptr<const tensor::SparseMatrix> IncrementalOperatorLocked(
      OpKind kind) const;

  const int64_t epoch_;
  const DeltaOverlay overlay_;  // frozen at publish
  const tensor::Tensor base_features_;
  const std::vector<int64_t> affected_;
  const Refresh refresh_;

  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<const Graph> materialized_;
  mutable tensor::Tensor features_;
  mutable bool features_built_ = false;
  mutable std::shared_ptr<const tensor::SparseMatrix> ops_[5];
  mutable int64_t ops_incremental_ = 0;
  mutable int64_t ops_rebuilt_ = 0;
};

struct MutableGraphOptions {
  /// Overlay bound: mutations beyond this (since the last compaction) are
  /// shed with ResourceExhausted until a compaction drains the backlog.
  int64_t max_pending = 1024;
  /// Hop radius of affected_nodes() around each mutation endpoint. Must be
  /// >= the deepest served GNN's num_layers for cached predictions of
  /// unaffected nodes to stay bit-correct across the epoch (one operator
  /// application propagates a changed degree exactly one hop).
  int64_t invalidation_radius = 2;
  /// Patch the previous epoch's cached operators instead of rebuilding all
  /// five from scratch at every publish. Bit-identical either way; false
  /// forces the O(E) rebuild path (the bench baseline).
  bool incremental_refresh = true;
  /// Debug/test mode: every incrementally refreshed operator is also
  /// rebuilt from scratch and FW_CHECKed bit-equal.
  bool refresh_cross_check = false;
};

/// Thread-safe dynamic graph: see the file comment for the full contract.
class MutableGraph {
 public:
  /// `base_features` must have base->num_nodes() rows; its column count
  /// fixes the feature width every added node must match.
  MutableGraph(std::shared_ptr<const Graph> base,
               tensor::Tensor base_features, MutableGraphOptions options = {});

  /// Opens (or creates) the durable mutation log at `log_path` and
  /// reconstructs the pre-crash state: if a graph-base checkpoint
  /// (`log_path + ".base"`, written by Compact) exists it replaces `base`,
  /// and every logged-but-uncompacted mutation is replayed into the
  /// overlay and published. The returned graph appends every subsequent
  /// accepted mutation to the log before applying it. Errors (corrupt log
  /// or checkpoint, generation mismatch, replay failure) leave every file
  /// untouched so the caller can keep serving its previous state.
  static common::Result<std::unique_ptr<MutableGraph>> Recover(
      std::shared_ptr<const Graph> base, tensor::Tensor base_features,
      const std::string& log_path, MutableGraphOptions options = {});

  // --- Mutation front door (validated; never partial) ---------------------
  common::Status Apply(const GraphMutation& m);
  /// Returns the new node's id.
  common::Result<int64_t> AddNode(std::vector<float> features);
  common::Status AddEdge(int64_t u, int64_t v);
  common::Status RemoveEdge(int64_t u, int64_t v);

  /// Transactional multi-mutation apply: the whole batch is validated (in
  /// order, against the merged view as the batch itself transforms it)
  /// before any state changes — either every mutation lands, atomically
  /// with one durable log append, or none do. `statuses`, when non-null,
  /// receives one Status per mutation: all OK on success; on failure the
  /// first failing mutation carries its precise error and every other
  /// entry is FailedPrecondition naming the aborting index. The returned
  /// Status is OK or the first failure.
  common::Status ApplyBatch(const std::vector<GraphMutation>& batch,
                            std::vector<common::Status>* statuses = nullptr);

  // --- Publication --------------------------------------------------------
  /// The currently published snapshot (never null; epoch 0 is published at
  /// construction).
  std::shared_ptr<const GraphSnapshot> Current() const;

  /// Freezes all applied mutations as a new epoch and notifies listeners.
  /// Returns the published snapshot; a no-op (same snapshot, same epoch)
  /// when nothing changed since the last publish.
  std::shared_ptr<const GraphSnapshot> Publish();

  /// Merges the overlay into a fresh base CSR and publishes the result
  /// (compaction implies a Publish of any still-unpublished mutations).
  /// On failure — including an injected kGraphCompaction fault — nothing
  /// is swapped: the previous snapshot keeps serving, the overlay keeps
  /// its mutations, and a later Compact() retries from scratch. With a
  /// mutation log attached, a successful compaction also writes the merged
  /// base as a durable graph-base checkpoint and truncates the log to the
  /// carried-over suffix.
  common::Status Compact();

  int64_t epoch() const;
  /// Mutations in the overlay (applied since the last compaction).
  int64_t pending() const;
  /// Whether the mutation_backlog incident is currently latched.
  bool backlogged() const;
  int64_t num_nodes() const { return Current()->num_nodes(); }

  /// The attached durable log, or nullptr. The pointer is stable for the
  /// graph's lifetime; its counters are only safe to read quiesced.
  const MutationLog* mutation_log() const { return log_.get(); }

  struct Stats {
    int64_t epoch = 0;
    int64_t pending = 0;
    int64_t applied = 0;  // mutations accepted (lifetime, incl. replayed)
    int64_t shed = 0;     // mutations shed with ResourceExhausted
    int64_t compactions = 0;
    int64_t compaction_failures = 0;
    bool backlogged = false;
    int64_t log_appends = 0;   // durable appends acknowledged
    int64_t log_records = 0;   // records in the current log generation
    int64_t log_resets = 0;    // compact-truncations of the log
    int64_t replayed = 0;      // mutations replayed by Recover()
  };
  Stats stats() const;

  /// Runs after each publish, outside the writer mutex, with the new
  /// snapshot (same discipline as ModelRegistry's invalidation listeners).
  /// Deliveries are serialized and strictly epoch-ordered. A listener must
  /// not call back into this MutableGraph.
  using EpochListener =
      std::function<void(const std::shared_ptr<const GraphSnapshot>&)>;
  int64_t AddEpochListener(EpochListener listener);
  /// After this returns the listener is guaranteed not to be running and
  /// will never run again (in-flight notification rounds are waited out).
  void RemoveEpochListener(int64_t token);

 private:
  /// Shared mutation path: validate → (log append) → overlay apply, plus
  /// counters, backlog latching, and telemetry. `node_out`, when non-null,
  /// receives the id a kAddNode mutation would create.
  common::Status ApplyInternal(const GraphMutation& m, int64_t* node_out);

  /// Builds and publishes the next epoch from the current overlay state.
  /// Requires mu_; returns the snapshot (listeners are notified by the
  /// caller, outside the mutex).
  std::shared_ptr<const GraphSnapshot> PublishLocked();

  /// Seed node ids of the log entries in [from, to) (edge endpoints and
  /// added-node ids). Requires mu_.
  std::vector<int64_t> SeedsLocked(int64_t from, int64_t to) const;

  /// Expands `seeds` by `radius` hops over the union of the current
  /// overlay view and the previously published snapshot's view. Requires
  /// mu_.
  std::vector<int64_t> AffectedLocked(const std::vector<int64_t>& seeds,
                                      int64_t radius) const;

  /// The Refresh the next snapshot inherits from published_ (empty when
  /// incremental refresh is off or nothing was published yet). Requires
  /// mu_; `seeds` are the unpublished mutations' seed nodes.
  GraphSnapshot::Refresh RefreshLocked(
      const std::vector<int64_t>& seeds) const;

  void NotifyListeners(const std::shared_ptr<const GraphSnapshot>& snapshot);

  const MutableGraphOptions options_;
  const int64_t feature_dim_;

  mutable std::mutex mu_;
  std::shared_ptr<const Graph> base_;
  tensor::Tensor base_features_;
  std::unique_ptr<DeltaOverlay> overlay_;
  std::shared_ptr<const GraphSnapshot> published_;
  int64_t published_log_size_ = 0;  // log prefix included in published_
  int64_t epoch_ = 0;
  bool backlogged_ = false;
  int64_t applied_ = 0;
  int64_t shed_ = 0;
  int64_t compactions_ = 0;
  int64_t compaction_failures_ = 0;
  int64_t log_appends_ = 0;
  int64_t log_resets_ = 0;
  int64_t replayed_ = 0;
  std::vector<std::pair<int64_t, EpochListener>> listeners_;
  int64_t next_listener_token_ = 1;

  /// Serializes listener notification (and orders it by epoch): Publish
  /// and Compact acquire notify_mu_ BEFORE mu_ and hold it across the
  /// listener calls; RemoveEpochListener erases under mu_ alone, then
  /// acquires notify_mu_ once as a barrier against in-flight rounds.
  std::mutex notify_mu_;

  std::mutex compact_mu_;  // serializes compactions (mutations continue)

  /// Durable write-ahead log (Recover() only). File I/O on log_ happens
  /// under mu_ (appends, resets) or compact_mu_ (the base checkpoint).
  std::unique_ptr<MutationLog> log_;
  /// Records of the current log generation already folded into the
  /// on-disk graph-base checkpoint (non-zero only after recovering from a
  /// crash that hit between base write and log reset).
  int64_t log_folded_ = 0;
  /// Set (under mu_) when a compaction's log Reset failed: the in-memory
  /// graph keeps serving but mutations are no longer logged until restart.
  bool log_detached_ = false;

  obs::Counter* applied_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* compactions_counter_;
  obs::Counter* compaction_failures_counter_;
  obs::Counter* log_appends_counter_;
  obs::Counter* log_resets_counter_;
  obs::Gauge* epoch_gauge_;
  obs::Gauge* pending_gauge_;
  obs::Gauge* backlog_gauge_;
  obs::Histogram* compaction_ms_hist_;
};

}  // namespace fairwos::graph

#endif  // FAIRWOS_GRAPH_MUTABLE_GRAPH_H_
