// Dynamic graphs for serving (docs/serving.md "Dynamic graphs"): an
// immutable base CSR plus a bounded, validated delta overlay
// (graph/delta.h), published to readers as epoch-numbered copy-on-write
// snapshots.
//
// Concurrency contract:
//   * Mutations (Apply/AddNode/AddEdge/RemoveEdge) and Publish/Compact are
//     serialized under the writer mutex.
//   * Readers call Current() — one brief mutex-protected shared_ptr copy —
//     and then work against the immutable GraphSnapshot with no further
//     MutableGraph locks: the forward path never blocks on a writer. A
//     snapshot stays fully usable (and bit-stable) for as long as anyone
//     holds it, no matter how many mutations, publishes, or compactions
//     happen behind it.
//   * Publish() freezes the current merged view as epoch N+1 and notifies
//     epoch listeners (outside the mutex, registry-listener discipline)
//     with the snapshot, whose affected_nodes() lists exactly the node ids
//     whose predictions may differ from epoch N — the serving LRU purges
//     precisely those.
//   * Compact() merges the overlay into a fresh base CSR behind an atomic
//     restore-before-publish swap (the ModelRegistry::Swap discipline): the
//     merged CSR and feature matrix are fully built before anything is
//     unpublished, with the kGraphCompaction fault site probed before and
//     after the rebuild. A failed (or crashed) compaction leaves the
//     previous base, overlay, and snapshot serving untouched and re-arms —
//     the next Compact() simply tries again. Mutations that arrive while a
//     compaction is building are replayed onto the new base before the
//     swap publishes, so none are lost.
//   * Overlay overflow sheds mutations with ResourceExhausted and raises a
//     latched `mutation_backlog` incident (cleared, with a
//     `mutation_backlog_cleared` event, by the compaction that drains the
//     overlay) instead of growing unbounded.
//
// Because SparseMatrix::FromCoo sorts its COO entries, every adjacency
// operator built from a snapshot is bit-identical to the same operator
// built from a from-scratch Graph holding the same edge set — which is what
// makes the post-compaction bit-identity guarantee testable end to end.
#ifndef FAIRWOS_GRAPH_MUTABLE_GRAPH_H_
#define FAIRWOS_GRAPH_MUTABLE_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "graph/delta.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace fairwos::graph {

/// One immutable published epoch: the merged graph view plus its feature
/// matrix. Cheap to hold; the materialized Graph, the feature matrix, and
/// the per-backbone adjacency operators are built lazily on first use and
/// cached (thread-safe), so an epoch that only absorbs mutations never pays
/// for views nobody reads.
class GraphSnapshot {
 public:
  GraphSnapshot(int64_t epoch, DeltaOverlay overlay,
                tensor::Tensor base_features, std::vector<int64_t> affected);

  int64_t epoch() const { return epoch_; }
  int64_t num_nodes() const { return overlay_.num_nodes(); }
  int64_t num_edges() const { return overlay_.num_edges(); }
  bool HasEdge(int64_t u, int64_t v) const { return overlay_.HasEdge(u, v); }
  int64_t Degree(int64_t v) const { return overlay_.Degree(v); }
  std::vector<int64_t> Neighbors(int64_t v) const;

  /// Node ids whose predictions may differ from the previous epoch's
  /// (mutation endpoints expanded to the configured invalidation radius
  /// over the union of the old and new adjacency). Sorted, unique. Empty
  /// for the initial epoch.
  const std::vector<int64_t>& affected_nodes() const { return affected_; }

  /// The merged view as a from-scratch-equivalent Graph.
  std::shared_ptr<const Graph> Materialized() const;

  /// [num_nodes, F] feature matrix: the base matrix with the overlay's
  /// added rows appended. Returns the base tensor itself (no copy) when no
  /// nodes were added.
  tensor::Tensor Features() const;

  // Adjacency operators of the merged view, mirroring graph::Graph (each
  // built once per snapshot and cached).
  std::shared_ptr<const tensor::SparseMatrix> GcnNormalizedAdjacency() const;
  std::shared_ptr<const tensor::SparseMatrix> PlainAdjacency() const;
  std::shared_ptr<const tensor::SparseMatrix> RowNormalizedAdjacency() const;
  std::shared_ptr<const tensor::SparseMatrix> AdjacencyWithSelfLoops() const;
  std::shared_ptr<const tensor::SparseMatrix> NeighborMeanAdjacency() const;

 private:
  enum OpKind { kGcn = 0, kPlain, kRowNorm, kSelfLoops, kNeighborMean };

  std::shared_ptr<const tensor::SparseMatrix> Operator(OpKind kind) const;

  const int64_t epoch_;
  const DeltaOverlay overlay_;  // frozen at publish
  const tensor::Tensor base_features_;
  const std::vector<int64_t> affected_;

  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<const Graph> materialized_;
  mutable tensor::Tensor features_;
  mutable bool features_built_ = false;
  mutable std::shared_ptr<const tensor::SparseMatrix> ops_[5];
};

struct MutableGraphOptions {
  /// Overlay bound: mutations beyond this (since the last compaction) are
  /// shed with ResourceExhausted until a compaction drains the backlog.
  int64_t max_pending = 1024;
  /// Hop radius of affected_nodes() around each mutation endpoint. Must be
  /// >= the deepest served GNN's num_layers for cached predictions of
  /// unaffected nodes to stay bit-correct across the epoch (one operator
  /// application propagates a changed degree exactly one hop).
  int64_t invalidation_radius = 2;
};

/// Thread-safe dynamic graph: see the file comment for the full contract.
class MutableGraph {
 public:
  /// `base_features` must have base->num_nodes() rows; its column count
  /// fixes the feature width every added node must match.
  MutableGraph(std::shared_ptr<const Graph> base,
               tensor::Tensor base_features, MutableGraphOptions options = {});

  // --- Mutation front door (validated; never partial) ---------------------
  common::Status Apply(const GraphMutation& m);
  /// Returns the new node's id.
  common::Result<int64_t> AddNode(std::vector<float> features);
  common::Status AddEdge(int64_t u, int64_t v);
  common::Status RemoveEdge(int64_t u, int64_t v);

  // --- Publication --------------------------------------------------------
  /// The currently published snapshot (never null; epoch 0 is published at
  /// construction).
  std::shared_ptr<const GraphSnapshot> Current() const;

  /// Freezes all applied mutations as a new epoch and notifies listeners.
  /// Returns the published snapshot; a no-op (same snapshot, same epoch)
  /// when nothing changed since the last publish.
  std::shared_ptr<const GraphSnapshot> Publish();

  /// Merges the overlay into a fresh base CSR and publishes the result
  /// (compaction implies a Publish of any still-unpublished mutations).
  /// On failure — including an injected kGraphCompaction fault — nothing
  /// is swapped: the previous snapshot keeps serving, the overlay keeps
  /// its mutations, and a later Compact() retries from scratch.
  common::Status Compact();

  int64_t epoch() const;
  /// Mutations in the overlay (applied since the last compaction).
  int64_t pending() const;
  /// Whether the mutation_backlog incident is currently latched.
  bool backlogged() const;
  int64_t num_nodes() const { return Current()->num_nodes(); }

  struct Stats {
    int64_t epoch = 0;
    int64_t pending = 0;
    int64_t applied = 0;  // mutations accepted (lifetime)
    int64_t shed = 0;     // mutations shed with ResourceExhausted
    int64_t compactions = 0;
    int64_t compaction_failures = 0;
    bool backlogged = false;
  };
  Stats stats() const;

  /// Runs after each publish, outside the writer mutex, with the new
  /// snapshot (same discipline as ModelRegistry's invalidation listeners).
  using EpochListener =
      std::function<void(const std::shared_ptr<const GraphSnapshot>&)>;
  int64_t AddEpochListener(EpochListener listener);
  void RemoveEpochListener(int64_t token);

 private:
  /// Builds and publishes the next epoch from the current overlay state.
  /// Requires mu_; returns the snapshot (listeners are notified by the
  /// caller, outside the mutex).
  std::shared_ptr<const GraphSnapshot> PublishLocked();

  /// Seed node ids of the log entries in [from, to) (edge endpoints and
  /// added-node ids). Requires mu_.
  std::vector<int64_t> SeedsLocked(int64_t from, int64_t to) const;

  /// Expands `seeds` by options_.invalidation_radius hops over the union
  /// of the current overlay view and the previously published snapshot's
  /// view. Requires mu_.
  std::vector<int64_t> AffectedLocked(std::vector<int64_t> seeds) const;

  void NotifyListeners(const std::shared_ptr<const GraphSnapshot>& snapshot);

  const MutableGraphOptions options_;
  const int64_t feature_dim_;

  mutable std::mutex mu_;
  std::shared_ptr<const Graph> base_;
  tensor::Tensor base_features_;
  std::unique_ptr<DeltaOverlay> overlay_;
  std::shared_ptr<const GraphSnapshot> published_;
  int64_t published_log_size_ = 0;  // log prefix included in published_
  int64_t epoch_ = 0;
  bool backlogged_ = false;
  int64_t applied_ = 0;
  int64_t shed_ = 0;
  int64_t compactions_ = 0;
  int64_t compaction_failures_ = 0;
  std::vector<std::pair<int64_t, EpochListener>> listeners_;
  int64_t next_listener_token_ = 1;

  std::mutex compact_mu_;  // serializes compactions (mutations continue)

  obs::Counter* applied_counter_;
  obs::Counter* shed_counter_;
  obs::Counter* compactions_counter_;
  obs::Counter* compaction_failures_counter_;
  obs::Gauge* epoch_gauge_;
  obs::Gauge* pending_gauge_;
  obs::Gauge* backlog_gauge_;
  obs::Histogram* compaction_ms_hist_;
};

}  // namespace fairwos::graph

#endif  // FAIRWOS_GRAPH_MUTABLE_GRAPH_H_
