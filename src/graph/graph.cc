#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/csv.h"
#include "common/string_util.h"

namespace fairwos::graph {

Graph::Graph(int64_t num_nodes) {
  FW_CHECK_GE(num_nodes, 0);
  adj_.resize(static_cast<size_t>(num_nodes));
}

bool Graph::AddEdge(int64_t u, int64_t v) {
  FW_CHECK_GE(u, 0);
  FW_CHECK_LT(u, num_nodes());
  FW_CHECK_GE(v, 0);
  FW_CHECK_LT(v, num_nodes());
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  adj_[static_cast<size_t>(u)].push_back(v);
  adj_[static_cast<size_t>(v)].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::HasEdge(int64_t u, int64_t v) const {
  const auto& nu = Neighbors(u);
  return std::find(nu.begin(), nu.end(), v) != nu.end();
}

const std::vector<int64_t>& Graph::Neighbors(int64_t v) const {
  FW_CHECK_GE(v, 0);
  FW_CHECK_LT(v, num_nodes());
  return adj_[static_cast<size_t>(v)];
}

double Graph::AverageDegree() const {
  if (num_nodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_nodes());
}

std::vector<int64_t> Graph::KHopNeighborhood(int64_t v, int hops) const {
  FW_CHECK_GE(hops, 0);
  std::vector<int64_t> out;
  std::vector<int> dist(static_cast<size_t>(num_nodes()), -1);
  std::deque<int64_t> queue;
  dist[static_cast<size_t>(v)] = 0;
  queue.push_back(v);
  while (!queue.empty()) {
    int64_t u = queue.front();
    queue.pop_front();
    out.push_back(u);
    if (dist[static_cast<size_t>(u)] == hops) continue;
    for (int64_t w : Neighbors(u)) {
      if (dist[static_cast<size_t>(w)] < 0) {
        dist[static_cast<size_t>(w)] = dist[static_cast<size_t>(u)] + 1;
        queue.push_back(w);
      }
    }
  }
  return out;
}

double Graph::EdgeHomophily(const std::vector<int>& groups) const {
  FW_CHECK_EQ(static_cast<int64_t>(groups.size()), num_nodes());
  if (num_edges_ == 0) return 0.0;
  int64_t same = 0;
  for (int64_t u = 0; u < num_nodes(); ++u) {
    for (int64_t v : Neighbors(u)) {
      if (u < v && groups[static_cast<size_t>(u)] ==
                       groups[static_cast<size_t>(v)]) {
        ++same;
      }
    }
  }
  return static_cast<double>(same) / static_cast<double>(num_edges_);
}

std::shared_ptr<tensor::SparseMatrix> Graph::GcnNormalizedAdjacency() const {
  const int64_t n = num_nodes();
  std::vector<double> inv_sqrt_deg(static_cast<size_t>(n));
  for (int64_t v = 0; v < n; ++v) {
    // Degree with the self-loop counted (D̃ = D + I).
    inv_sqrt_deg[static_cast<size_t>(v)] =
        1.0 / std::sqrt(static_cast<double>(Degree(v)) + 1.0);
  }
  std::vector<tensor::CooEntry> entries;
  entries.reserve(static_cast<size_t>(2 * num_edges_ + n));
  for (int64_t u = 0; u < n; ++u) {
    const double du = inv_sqrt_deg[static_cast<size_t>(u)];
    entries.push_back({u, u, static_cast<float>(du * du)});
    for (int64_t v : Neighbors(u)) {
      entries.push_back(
          {u, v, static_cast<float>(du * inv_sqrt_deg[static_cast<size_t>(v)])});
    }
  }
  return tensor::SparseMatrix::FromCoo(n, n, std::move(entries));
}

std::shared_ptr<tensor::SparseMatrix> Graph::PlainAdjacency() const {
  const int64_t n = num_nodes();
  std::vector<tensor::CooEntry> entries;
  entries.reserve(static_cast<size_t>(2 * num_edges_));
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v : Neighbors(u)) entries.push_back({u, v, 1.0f});
  }
  return tensor::SparseMatrix::FromCoo(n, n, std::move(entries));
}

std::shared_ptr<tensor::SparseMatrix> Graph::RowNormalizedAdjacency() const {
  const int64_t n = num_nodes();
  std::vector<tensor::CooEntry> entries;
  entries.reserve(static_cast<size_t>(2 * num_edges_ + n));
  for (int64_t u = 0; u < n; ++u) {
    const float inv = 1.0f / static_cast<float>(Degree(u) + 1);
    entries.push_back({u, u, inv});
    for (int64_t v : Neighbors(u)) entries.push_back({u, v, inv});
  }
  return tensor::SparseMatrix::FromCoo(n, n, std::move(entries));
}

std::shared_ptr<tensor::SparseMatrix> Graph::AdjacencyWithSelfLoops() const {
  const int64_t n = num_nodes();
  std::vector<tensor::CooEntry> entries;
  entries.reserve(static_cast<size_t>(2 * num_edges_ + n));
  for (int64_t u = 0; u < n; ++u) {
    entries.push_back({u, u, 1.0f});
    for (int64_t v : Neighbors(u)) entries.push_back({u, v, 1.0f});
  }
  return tensor::SparseMatrix::FromCoo(n, n, std::move(entries));
}

std::shared_ptr<tensor::SparseMatrix> Graph::NeighborMeanAdjacency() const {
  const int64_t n = num_nodes();
  std::vector<tensor::CooEntry> entries;
  entries.reserve(static_cast<size_t>(2 * num_edges_));
  for (int64_t u = 0; u < n; ++u) {
    const int64_t deg = Degree(u);
    if (deg == 0) continue;
    const float inv = 1.0f / static_cast<float>(deg);
    for (int64_t v : Neighbors(u)) entries.push_back({u, v, inv});
  }
  return tensor::SparseMatrix::FromCoo(n, n, std::move(entries));
}

common::Result<Graph> LoadEdgeListCsv(const std::string& path,
                                      bool has_header, int64_t num_nodes) {
  FW_ASSIGN_OR_RETURN(common::CsvTable table,
                      common::ReadCsv(path, has_header));
  std::vector<std::pair<int64_t, int64_t>> edges;
  int64_t max_id = -1;
  for (const auto& row : table.rows) {
    if (row.size() < 2) {
      return common::Status::InvalidArgument(
          "edge list row needs two columns in " + path);
    }
    FW_ASSIGN_OR_RETURN(int64_t u, common::ParseInt(row[0]));
    FW_ASSIGN_OR_RETURN(int64_t v, common::ParseInt(row[1]));
    if (u < 0 || v < 0) {
      return common::Status::InvalidArgument("negative node id in " + path);
    }
    max_id = std::max({max_id, u, v});
    edges.emplace_back(u, v);
  }
  const int64_t n = num_nodes > 0 ? num_nodes : max_id + 1;
  if (max_id >= n) {
    return common::Status::OutOfRange(
        common::StrFormat("node id %lld exceeds num_nodes %lld",
                          static_cast<long long>(max_id),
                          static_cast<long long>(n)));
  }
  Graph g(n);
  for (auto [u, v] : edges) g.AddEdge(u, v);
  return g;
}

}  // namespace fairwos::graph
