// Undirected attributed graph used throughout the library. Nodes carry a
// dense feature matrix (held separately, see data::Dataset); the Graph holds
// topology and exposes the normalized adjacency operators GNN layers need.
#ifndef FAIRWOS_GRAPH_GRAPH_H_
#define FAIRWOS_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "tensor/sparse.h"

namespace fairwos::graph {

/// Simple undirected graph with adjacency lists. Self-loops are not stored;
/// GNN normalizations add them explicitly where required.
class Graph {
 public:
  /// An edgeless graph over `num_nodes` nodes.
  explicit Graph(int64_t num_nodes);

  int64_t num_nodes() const { return static_cast<int64_t>(adj_.size()); }

  /// Number of undirected edges.
  int64_t num_edges() const { return num_edges_; }

  /// Adds an undirected edge {u, v}. Duplicate edges and self-loops are
  /// ignored (returns false); returns true when the edge was inserted.
  bool AddEdge(int64_t u, int64_t v);

  /// True when {u, v} is an edge. O(deg(u)) scan — fine for the sparse
  /// graphs we build.
  bool HasEdge(int64_t u, int64_t v) const;

  const std::vector<int64_t>& Neighbors(int64_t v) const;

  int64_t Degree(int64_t v) const {
    return static_cast<int64_t>(Neighbors(v).size());
  }

  /// 2 * num_edges / num_nodes (the paper's Table I statistic).
  double AverageDegree() const;

  /// Nodes within `hops` of `v` (including `v`), BFS order. Exposed for the
  /// ego-subgraph view of counterfactual candidates.
  std::vector<int64_t> KHopNeighborhood(int64_t v, int hops) const;

  /// Fraction of edges whose endpoints share the same value of `groups`
  /// (label homophily when given labels, sensitive homophily when given s).
  double EdgeHomophily(const std::vector<int>& groups) const;

  // --- Operators for GNN layers -------------------------------------------

  /// GCN symmetric normalization: Â = D̃^(-1/2) (A + I) D̃^(-1/2).
  std::shared_ptr<tensor::SparseMatrix> GcnNormalizedAdjacency() const;

  /// Plain adjacency (no self-loops, unit weights), for GIN aggregation.
  std::shared_ptr<tensor::SparseMatrix> PlainAdjacency() const;

  /// Row-normalized adjacency with self-loops: D̃^(-1) (A + I).
  std::shared_ptr<tensor::SparseMatrix> RowNormalizedAdjacency() const;

  /// Unit adjacency plus identity (A + I); the support set GAT attends over.
  std::shared_ptr<tensor::SparseMatrix> AdjacencyWithSelfLoops() const;

  /// Pure neighbor mean operator D^(-1) A (no self-loops); isolated nodes
  /// get an all-zero row. The GraphSAGE mean aggregator.
  std::shared_ptr<tensor::SparseMatrix> NeighborMeanAdjacency() const;

 private:
  std::vector<std::vector<int64_t>> adj_;
  int64_t num_edges_ = 0;
};

/// Reads an undirected edge list from a CSV with two integer columns
/// (optionally with a header). Node count is `num_nodes` when positive,
/// otherwise 1 + max node id seen.
common::Result<Graph> LoadEdgeListCsv(const std::string& path,
                                      bool has_header, int64_t num_nodes);

}  // namespace fairwos::graph

#endif  // FAIRWOS_GRAPH_GRAPH_H_
