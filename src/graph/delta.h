// The bounded, validated mutation overlay behind graph::MutableGraph
// (docs/serving.md "Dynamic graphs"). A DeltaOverlay sits on top of an
// immutable base Graph and records node inserts, edge inserts, and edge
// deletes as a replayable log plus derived index structures, exposing the
// *merged* logical view (base ⊕ overlay) without touching the base.
//
// Validation is the front door: every mutation is checked against the
// merged view before any state changes, so a rejected mutation leaves the
// overlay bit-identical to before — there is never partial application.
// The Status contract is precise so callers can tell the failure classes
// apart:
//   OutOfRange          an endpoint id outside [0, num_nodes())
//   InvalidArgument     self-loop (policy: always rejected, because the
//                       base Graph does not store them either) or a
//                       feature row of the wrong width
//   FailedPrecondition  inserting an edge that already exists in the view
//   NotFound            deleting an edge the view does not have
//   ResourceExhausted   the overlay is full (MutableGraph turns this into
//                       the latched mutation_backlog incident)
//
// Not thread-safe: MutableGraph serializes access under its own mutex.
#ifndef FAIRWOS_GRAPH_DELTA_H_
#define FAIRWOS_GRAPH_DELTA_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace fairwos::graph {

enum class MutationKind : int { kAddNode = 0, kAddEdge = 1, kRemoveEdge = 2 };

const char* MutationKindName(MutationKind kind);

/// One graph mutation. Build via the factory helpers; `u`/`v` are the edge
/// endpoints (unused for kAddNode), `features` the new node's feature row
/// (unused for the edge kinds).
struct GraphMutation {
  MutationKind kind = MutationKind::kAddEdge;
  int64_t u = -1;
  int64_t v = -1;
  std::vector<float> features;

  static GraphMutation AddNode(std::vector<float> features);
  static GraphMutation AddEdge(int64_t u, int64_t v);
  static GraphMutation RemoveEdge(int64_t u, int64_t v);
};

/// Validated, bounded delta overlay over `base` (nodes carry feature rows
/// of width `feature_dim`). The base must outlive the overlay.
class DeltaOverlay {
 public:
  DeltaOverlay(std::shared_ptr<const Graph> base, int64_t feature_dim,
               int64_t max_pending);

  /// Validates `m` against the merged view, then applies it. On any error
  /// the overlay is untouched. `probe_faults=false` skips the
  /// kGraphDeltaApply fault hook — compaction's internal rebase replay uses
  /// it so an armed fault plan cannot break the atomic swap.
  common::Status Apply(const GraphMutation& m, bool probe_faults = true);

  /// Validates `m` against the merged view without applying it (and without
  /// probing any fault site). Apply() revalidates — this exists so callers
  /// with a write-ahead log can check a mutation *before* durably logging
  /// it.
  common::Status Validate(const GraphMutation& m) const;

  // --- Merged (base ⊕ overlay) view --------------------------------------
  int64_t num_nodes() const {
    return base_->num_nodes() + static_cast<int64_t>(added_features_.size());
  }
  int64_t num_edges() const { return num_edges_; }
  bool HasEdge(int64_t u, int64_t v) const;
  int64_t Degree(int64_t v) const;
  /// Appends the merged view's neighbors of `v` to `out` (base order, then
  /// overlay insertion order; deleted edges skipped).
  void AppendNeighbors(int64_t v, std::vector<int64_t>* out) const;

  // --- Overlay introspection ---------------------------------------------
  /// Applied mutations, in application order (the replay log).
  const std::vector<GraphMutation>& log() const { return log_; }
  int64_t size() const { return static_cast<int64_t>(log_.size()); }
  bool full() const { return size() >= max_pending_; }
  int64_t max_pending() const { return max_pending_; }
  int64_t feature_dim() const { return feature_dim_; }
  const std::shared_ptr<const Graph>& base() const { return base_; }
  /// Feature rows of the overlay-added nodes, in node-id order (node id of
  /// row i is base->num_nodes() + i).
  const std::vector<std::vector<float>>& added_features() const {
    return added_features_;
  }

  /// Materializes the merged view as a fresh Graph. Neighbor *sets* (and
  /// therefore every CSR adjacency operator, which sorts its COO entries)
  /// are identical to a Graph built from scratch with the same edges.
  Graph Materialize() const;

 private:
  static uint64_t EdgeKey(int64_t u, int64_t v);

  std::shared_ptr<const Graph> base_;
  int64_t feature_dim_;
  int64_t max_pending_;
  int64_t num_edges_;

  std::vector<GraphMutation> log_;
  std::vector<std::vector<float>> added_features_;
  /// Adjacency of overlay-inserted edges (both directions), insertion order.
  std::unordered_map<int64_t, std::vector<int64_t>> added_adj_;
  std::unordered_set<uint64_t> added_edges_;
  std::unordered_set<uint64_t> removed_edges_;
};

}  // namespace fairwos::graph

#endif  // FAIRWOS_GRAPH_DELTA_H_
