#include "graph/algorithms.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace fairwos::graph {

int64_t ComponentResult::LargestSize() const {
  std::vector<int64_t> sizes(static_cast<size_t>(num_components), 0);
  for (int64_t c : component) ++sizes[static_cast<size_t>(c)];
  int64_t best = 0;
  for (int64_t s : sizes) best = std::max(best, s);
  return best;
}

ComponentResult ConnectedComponents(const Graph& g) {
  const int64_t n = g.num_nodes();
  ComponentResult result;
  result.component.assign(static_cast<size_t>(n), -1);
  for (int64_t start = 0; start < n; ++start) {
    if (result.component[static_cast<size_t>(start)] >= 0) continue;
    const int64_t id = result.num_components++;
    std::deque<int64_t> queue = {start};
    result.component[static_cast<size_t>(start)] = id;
    while (!queue.empty()) {
      const int64_t u = queue.front();
      queue.pop_front();
      for (int64_t v : g.Neighbors(u)) {
        if (result.component[static_cast<size_t>(v)] < 0) {
          result.component[static_cast<size_t>(v)] = id;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

double LocalClusteringCoefficient(const Graph& g, int64_t v) {
  const auto& neighbors = g.Neighbors(v);
  const int64_t deg = static_cast<int64_t>(neighbors.size());
  if (deg < 2) return 0.0;
  int64_t links = 0;
  for (size_t i = 0; i < neighbors.size(); ++i) {
    for (size_t j = i + 1; j < neighbors.size(); ++j) {
      if (g.HasEdge(neighbors[i], neighbors[j])) ++links;
    }
  }
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(deg) * static_cast<double>(deg - 1));
}

double AverageClusteringCoefficient(const Graph& g) {
  if (g.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    total += LocalClusteringCoefficient(g, v);
  }
  return total / static_cast<double>(g.num_nodes());
}

std::vector<int64_t> DegreeHistogram(const Graph& g) {
  int64_t max_degree = 0;
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  std::vector<int64_t> histogram(static_cast<size_t>(max_degree) + 1, 0);
  for (int64_t v = 0; v < g.num_nodes(); ++v) {
    ++histogram[static_cast<size_t>(g.Degree(v))];
  }
  return histogram;
}

Graph ErdosRenyi(int64_t n, double p, common::Rng* rng) {
  FW_CHECK_GE(n, 0);
  FW_CHECK_GE(p, 0.0);
  FW_CHECK_LE(p, 1.0);
  FW_CHECK(rng != nullptr);
  Graph g(n);
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v = u + 1; v < n; ++v) {
      if (rng->Bernoulli(p)) g.AddEdge(u, v);
    }
  }
  return g;
}

Graph BarabasiAlbert(int64_t n, int64_t attach, common::Rng* rng) {
  FW_CHECK_GE(attach, 1);
  FW_CHECK_GT(n, attach);
  FW_CHECK(rng != nullptr);
  Graph g(n);
  // Seed clique over the first attach+1 nodes.
  for (int64_t u = 0; u <= attach; ++u) {
    for (int64_t v = u + 1; v <= attach; ++v) g.AddEdge(u, v);
  }
  // Degree-proportional sampling via a repeated-endpoint urn.
  std::vector<int64_t> urn;
  for (int64_t u = 0; u <= attach; ++u) {
    for (int64_t v : g.Neighbors(u)) {
      (void)v;
      urn.push_back(u);
    }
  }
  for (int64_t u = attach + 1; u < n; ++u) {
    std::vector<int64_t> targets;
    while (static_cast<int64_t>(targets.size()) < attach) {
      const int64_t candidate =
          urn[static_cast<size_t>(rng->UniformInt(
              static_cast<int64_t>(urn.size())))];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (int64_t t : targets) {
      if (g.AddEdge(u, t)) {
        urn.push_back(u);
        urn.push_back(t);
      }
    }
  }
  return g;
}

Graph TwoBlockSbm(int64_t n, double p_in, double p_out, common::Rng* rng) {
  FW_CHECK_GE(n, 2);
  FW_CHECK(rng != nullptr);
  Graph g(n);
  const int64_t half = n / 2;
  for (int64_t u = 0; u < n; ++u) {
    for (int64_t v = u + 1; v < n; ++v) {
      const bool same_block = (u < half) == (v < half);
      if (rng->Bernoulli(same_block ? p_in : p_out)) g.AddEdge(u, v);
    }
  }
  return g;
}

std::vector<int> SpectralBipartition(const Graph& g, int64_t iterations,
                                     common::Rng* rng) {
  FW_CHECK_GE(iterations, 1);
  FW_CHECK(rng != nullptr);
  const int64_t n = g.num_nodes();
  FW_CHECK_GT(n, 0);
  auto adj = g.RowNormalizedAdjacency();  // self-loops keep it aperiodic
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng->Normal());
  std::vector<float> next(static_cast<size_t>(n));
  for (int64_t iter = 0; iter < iterations; ++iter) {
    // Deflate the trivial stationary direction (all ones), then one step.
    double mean = 0.0;
    for (float x : v) mean += x;
    mean /= static_cast<double>(n);
    for (auto& x : v) x -= static_cast<float>(mean);
    adj->Multiply(v.data(), 1, next.data());
    double norm = 0.0;
    for (float x : next) norm += static_cast<double>(x) * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) break;  // graph has no non-trivial structure
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = next[i] / static_cast<float>(norm);
    }
  }
  std::vector<int> side(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    side[static_cast<size_t>(i)] = v[static_cast<size_t>(i)] >= 0.0f ? 1 : 0;
  }
  return side;
}

}  // namespace fairwos::graph
