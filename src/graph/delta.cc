#include "graph/delta.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/fault.h"

namespace fairwos::graph {

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kAddNode:
      return "add-node";
    case MutationKind::kAddEdge:
      return "add-edge";
    case MutationKind::kRemoveEdge:
      return "remove-edge";
  }
  return "unknown";
}

GraphMutation GraphMutation::AddNode(std::vector<float> features) {
  GraphMutation m;
  m.kind = MutationKind::kAddNode;
  m.features = std::move(features);
  return m;
}

GraphMutation GraphMutation::AddEdge(int64_t u, int64_t v) {
  GraphMutation m;
  m.kind = MutationKind::kAddEdge;
  m.u = u;
  m.v = v;
  return m;
}

GraphMutation GraphMutation::RemoveEdge(int64_t u, int64_t v) {
  GraphMutation m;
  m.kind = MutationKind::kRemoveEdge;
  m.u = u;
  m.v = v;
  return m;
}

DeltaOverlay::DeltaOverlay(std::shared_ptr<const Graph> base,
                           int64_t feature_dim, int64_t max_pending)
    : base_(std::move(base)),
      feature_dim_(feature_dim),
      max_pending_(max_pending),
      num_edges_(base_->num_edges()) {
  FW_CHECK(base_ != nullptr);
  FW_CHECK_GE(feature_dim_, 0);
  FW_CHECK_GE(max_pending_, 1);
  // EdgeKey packs both endpoints into one uint64.
  FW_CHECK_LT(base_->num_nodes() + max_pending_, int64_t{1} << 31);
}

uint64_t DeltaOverlay::EdgeKey(int64_t u, int64_t v) {
  const uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  const uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  return (lo << 32) | hi;
}

bool DeltaOverlay::HasEdge(int64_t u, int64_t v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  const uint64_t key = EdgeKey(u, v);
  if (added_edges_.count(key) > 0) return true;
  if (u >= base_->num_nodes() || v >= base_->num_nodes()) return false;
  return base_->HasEdge(u, v) && removed_edges_.count(key) == 0;
}

void DeltaOverlay::AppendNeighbors(int64_t v,
                                   std::vector<int64_t>* out) const {
  FW_CHECK_GE(v, 0);
  FW_CHECK_LT(v, num_nodes());
  if (v < base_->num_nodes()) {
    for (int64_t u : base_->Neighbors(v)) {
      if (removed_edges_.count(EdgeKey(u, v)) == 0) out->push_back(u);
    }
  }
  auto it = added_adj_.find(v);
  if (it != added_adj_.end()) {
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

int64_t DeltaOverlay::Degree(int64_t v) const {
  std::vector<int64_t> neighbors;
  AppendNeighbors(v, &neighbors);
  return static_cast<int64_t>(neighbors.size());
}

common::Status DeltaOverlay::Validate(const GraphMutation& m) const {
  switch (m.kind) {
    case MutationKind::kAddNode:
      if (static_cast<int64_t>(m.features.size()) != feature_dim_) {
        return common::Status::InvalidArgument(
            "add-node feature row has " + std::to_string(m.features.size()) +
            " columns; the graph carries " + std::to_string(feature_dim_));
      }
      break;
    case MutationKind::kAddEdge:
    case MutationKind::kRemoveEdge: {
      const char* name = MutationKindName(m.kind);
      if (m.u < 0 || m.u >= num_nodes() || m.v < 0 || m.v >= num_nodes()) {
        return common::Status::OutOfRange(
            std::string(name) + " {" + std::to_string(m.u) + ", " +
            std::to_string(m.v) + "} has an endpoint outside [0, " +
            std::to_string(num_nodes()) + ")");
      }
      if (m.u == m.v) {
        return common::Status::InvalidArgument(
            std::string(name) + " {" + std::to_string(m.u) + ", " +
            std::to_string(m.v) + "} is a self-loop (policy: rejected)");
      }
      if (m.kind == MutationKind::kAddEdge && HasEdge(m.u, m.v)) {
        return common::Status::FailedPrecondition(
            "edge {" + std::to_string(m.u) + ", " + std::to_string(m.v) +
            "} already exists");
      }
      if (m.kind == MutationKind::kRemoveEdge && !HasEdge(m.u, m.v)) {
        return common::Status::NotFound(
            "edge {" + std::to_string(m.u) + ", " + std::to_string(m.v) +
            "} does not exist");
      }
      break;
    }
  }
  if (full()) {
    return common::Status::ResourceExhausted(
        "delta overlay full (" + std::to_string(max_pending_) +
        " pending mutations); compact before mutating further");
  }
  return common::Status::OK();
}

common::Status DeltaOverlay::Apply(const GraphMutation& m, bool probe_faults) {
  FW_RETURN_IF_ERROR(Validate(m));
  if (auto* fi = testing::ActiveFaultInjector();
      probe_faults && fi != nullptr &&
      fi->ShouldFire(testing::FaultSite::kGraphDeltaApply)) {
    return common::Status::Internal(
        std::string("injected delta-apply fault on ") +
        MutationKindName(m.kind));
  }
  switch (m.kind) {
    case MutationKind::kAddNode:
      added_features_.push_back(m.features);
      break;
    case MutationKind::kAddEdge: {
      const uint64_t key = EdgeKey(m.u, m.v);
      // Re-inserting a deleted base edge resurrects it; anything else is a
      // genuine overlay edge.
      if (removed_edges_.erase(key) == 0) {
        added_edges_.insert(key);
        added_adj_[m.u].push_back(m.v);
        added_adj_[m.v].push_back(m.u);
      }
      ++num_edges_;
      break;
    }
    case MutationKind::kRemoveEdge: {
      const uint64_t key = EdgeKey(m.u, m.v);
      if (added_edges_.erase(key) > 0) {
        auto& at_u = added_adj_[m.u];
        at_u.erase(std::find(at_u.begin(), at_u.end(), m.v));
        auto& at_v = added_adj_[m.v];
        at_v.erase(std::find(at_v.begin(), at_v.end(), m.u));
      } else {
        removed_edges_.insert(key);
      }
      --num_edges_;
      break;
    }
  }
  log_.push_back(m);
  return common::Status::OK();
}

Graph DeltaOverlay::Materialize() const {
  Graph g(num_nodes());
  const int64_t base_nodes = base_->num_nodes();
  for (int64_t u = 0; u < base_nodes; ++u) {
    for (int64_t v : base_->Neighbors(u)) {
      if (v > u && removed_edges_.count(EdgeKey(u, v)) == 0) {
        FW_CHECK(g.AddEdge(u, v));
      }
    }
  }
  // Replay order (not hash order) keeps the materialized adjacency lists
  // deterministic; edges removed again later in the log are skipped.
  for (const GraphMutation& m : log_) {
    if (m.kind == MutationKind::kAddEdge &&
        added_edges_.count(EdgeKey(m.u, m.v)) > 0) {
      g.AddEdge(m.u, m.v);  // false only for a resurrect-then-re-add replay
    }
  }
  FW_CHECK_EQ(g.num_edges(), num_edges_);
  return g;
}

}  // namespace fairwos::graph
