#include "graph/mutation_log.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/check.h"
#include "common/crc32.h"
#include "common/fault.h"

namespace fairwos::graph {
namespace {

constexpr uint64_t kLogMagic = 0x46574D4Cull;   // "FWML"
constexpr uint64_t kBaseMagic = 0x46574742ull;  // "FWGB"
constexpr uint64_t kVersion = 1;
constexpr size_t kHeaderBytes = 5 * sizeof(uint64_t) + sizeof(uint32_t);
// A record is one mutation; anything claiming more than this is a
// malformed length, not a real payload.
constexpr uint32_t kMaxRecordBytes = 1u << 24;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(const std::string& in, size_t* off, uint32_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}
bool GetU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

std::string SerializeHeader(const MutationLog::Header& h) {
  std::string out;
  out.reserve(kHeaderBytes);
  PutU64(&out, (kLogMagic << 32) | kVersion);
  PutU64(&out, h.base_seq);
  PutU64(&out, static_cast<uint64_t>(h.base_nodes));
  PutU64(&out, static_cast<uint64_t>(h.base_edges));
  PutU64(&out, static_cast<uint64_t>(h.feature_dim));
  PutU32(&out, common::Crc32(out.data(), out.size()));
  return out;
}

std::string SerializeRecord(const GraphMutation& m) {
  std::string payload;
  payload.reserve(20 + m.features.size() * sizeof(float));
  PutU32(&payload, static_cast<uint32_t>(m.kind));
  PutU64(&payload, static_cast<uint64_t>(m.u));
  PutU64(&payload, static_cast<uint64_t>(m.v));
  PutU32(&payload, static_cast<uint32_t>(m.features.size()));
  if (!m.features.empty()) {
    payload.append(reinterpret_cast<const char*>(m.features.data()),
                   m.features.size() * sizeof(float));
  }
  std::string out;
  out.reserve(payload.size() + 2 * sizeof(uint32_t));
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  PutU32(&out, common::Crc32(payload.data(), payload.size()));
  return out;
}

common::Result<GraphMutation> ParseRecordPayload(const std::string& payload,
                                                 int64_t index) {
  size_t off = 0;
  uint32_t kind = 0, nfeat = 0;
  uint64_t u = 0, v = 0;
  GraphMutation m;
  if (!GetU32(payload, &off, &kind) || !GetU64(payload, &off, &u) ||
      !GetU64(payload, &off, &v) || !GetU32(payload, &off, &nfeat) ||
      off + static_cast<size_t>(nfeat) * sizeof(float) != payload.size()) {
    return common::Status::IoError("mutation log record " +
                                   std::to_string(index) +
                                   " has a malformed payload");
  }
  if (kind > static_cast<uint32_t>(MutationKind::kRemoveEdge)) {
    return common::Status::IoError(
        "mutation log record " + std::to_string(index) +
        " names unknown mutation kind " + std::to_string(kind));
  }
  m.kind = static_cast<MutationKind>(kind);
  m.u = static_cast<int64_t>(u);
  m.v = static_cast<int64_t>(v);
  m.features.resize(nfeat);
  if (nfeat > 0) {
    std::memcpy(m.features.data(), payload.data() + off,
                static_cast<size_t>(nfeat) * sizeof(float));
  }
  return m;
}

#if !defined(_WIN32)
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

common::Status FsyncDir(const std::string& file_path) {
  const std::string dir =
      std::filesystem::path(file_path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    const bool synced = ::fsync(dfd) == 0;
    ::close(dfd);
    if (!synced) {
      return common::Status::IoError("directory fsync failed for: " +
                                     file_path);
    }
  }
  return common::Status::OK();
}
#endif

/// Same atomic + durable discipline as the checkpoint envelope writer:
/// tmp file, fsync, rename, directory fsync.
common::Status WriteFileDurably(const std::string& path,
                                const std::string& bytes) {
  const std::string tmp_path = path + ".tmp";
#if defined(_WIN32)
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return common::Status::IoError("cannot open for write: " + tmp_path);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp_path.c_str());
      return common::Status::IoError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return common::Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return common::Status::OK();
#else
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::Status::IoError("cannot open for write: " + tmp_path);
  }
  if (!WriteAll(fd, bytes.data(), bytes.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return common::Status::IoError("write failed: " + tmp_path);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return common::Status::IoError("close failed: " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return common::Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  return FsyncDir(path);
#endif
}

common::Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open for read: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return common::Status::IoError("read failed: " + path);
  return bytes;
}

}  // namespace

MutationLog::MutationLog(std::string path, Header header)
    : path_(std::move(path)), header_(header) {}

MutationLog::~MutationLog() {
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
#endif
}

common::Result<std::unique_ptr<MutationLog>> MutationLog::Create(
    const std::string& path, const Header& header) {
  const std::string bytes = SerializeHeader(header);
  FW_RETURN_IF_ERROR(WriteFileDurably(path, bytes));
  auto log = std::unique_ptr<MutationLog>(new MutationLog(path, header));
  log->bytes_ = static_cast<int64_t>(bytes.size());
#if !defined(_WIN32)
  log->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (log->fd_ < 0) {
    return common::Status::IoError("cannot open for append: " + path);
  }
#endif
  return log;
}

common::Result<MutationLog::ReplayResult> MutationLog::Replay(
    const std::string& path) {
  FW_ASSIGN_OR_RETURN(const std::string bytes, ReadWholeFile(path));
  if (bytes.size() < kHeaderBytes) {
    return common::Status::IoError("mutation log header truncated: " + path);
  }
  size_t off = 0;
  uint64_t magic_version = 0, base_seq = 0, nodes = 0, edges = 0, fdim = 0;
  uint32_t header_crc = 0;
  GetU64(bytes, &off, &magic_version);
  GetU64(bytes, &off, &base_seq);
  GetU64(bytes, &off, &nodes);
  GetU64(bytes, &off, &edges);
  GetU64(bytes, &off, &fdim);
  const uint32_t crc_expected =
      common::Crc32(bytes.data(), 5 * sizeof(uint64_t));
  GetU32(bytes, &off, &header_crc);
  if (magic_version != ((kLogMagic << 32) | kVersion)) {
    return common::Status::IoError("not a mutation log (bad magic): " + path);
  }
  if (header_crc != crc_expected) {
    return common::Status::IoError("mutation log header failed CRC: " + path);
  }
  ReplayResult result;
  result.header = {base_seq, static_cast<int64_t>(nodes),
                   static_cast<int64_t>(edges), static_cast<int64_t>(fdim)};
  result.valid_bytes = static_cast<int64_t>(off);
  while (off < bytes.size()) {
    const size_t record_start = off;
    uint32_t len = 0;
    if (!GetU32(bytes, &off, &len)) {
      result.torn_tail = true;  // partial length prefix at EOF
      break;
    }
    if (len > kMaxRecordBytes) {
      return common::Status::IoError(
          "mutation log record " + std::to_string(result.records.size()) +
          " claims " + std::to_string(len) + " bytes (malformed length)");
    }
    if (off + len + sizeof(uint32_t) > bytes.size()) {
      result.torn_tail = true;  // record cut off mid-write by a crash
      off = record_start;
      break;
    }
    const std::string payload = bytes.substr(off, len);
    off += len;
    uint32_t crc = 0;
    GetU32(bytes, &off, &crc);
    if (crc != common::Crc32(payload.data(), payload.size())) {
      return common::Status::IoError(
          "mutation log record " + std::to_string(result.records.size()) +
          " failed CRC in " + path);
    }
    FW_ASSIGN_OR_RETURN(
        GraphMutation m,
        ParseRecordPayload(payload,
                           static_cast<int64_t>(result.records.size())));
    result.records.push_back(std::move(m));
    result.valid_bytes = static_cast<int64_t>(off);
  }
  return result;
}

common::Result<std::unique_ptr<MutationLog>> MutationLog::Open(
    const std::string& path, const ReplayResult& replay) {
  if (replay.torn_tail) {
    // Drop the unacknowledged partial record so new appends start on a
    // record boundary.
    std::error_code ec;
    std::filesystem::resize_file(
        path, static_cast<uint64_t>(replay.valid_bytes), ec);
    if (ec) {
      return common::Status::IoError("cannot drop torn tail of: " + path);
    }
  }
  auto log =
      std::unique_ptr<MutationLog>(new MutationLog(path, replay.header));
  log->records_ = static_cast<int64_t>(replay.records.size());
  log->bytes_ = replay.valid_bytes;
#if !defined(_WIN32)
  log->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (log->fd_ < 0) {
    return common::Status::IoError("cannot open for append: " + path);
  }
#endif
  return log;
}

common::Status MutationLog::AppendSerialized(const std::string& bytes,
                                             int64_t count) {
  if (auto* fi = testing::ActiveFaultInjector();
      fi != nullptr &&
      fi->ShouldFire(testing::FaultSite::kMutationLogAppend)) {
    return common::Status::Internal(
        "injected mutation-log append fault; mutation rejected, log and "
        "overlay untouched");
  }
  const int64_t before = bytes_;
#if defined(_WIN32)
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) return common::Status::IoError("cannot append to: " + path_);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return common::Status::IoError("append failed: " + path_);
#else
  FW_CHECK_GE(fd_, 0);
  if (!WriteAll(fd_, bytes.data(), bytes.size())) {
    // A short write leaves a torn tail; roll it back so the file stays on
    // a record boundary (Replay would tolerate it either way).
    std::error_code ec;
    std::filesystem::resize_file(path_, static_cast<uint64_t>(before), ec);
    return common::Status::IoError("append failed: " + path_);
  }
  if (::fsync(fd_) != 0) {
    return common::Status::IoError("append fsync failed: " + path_);
  }
#endif
  last_append_bytes_ = before;
  bytes_ += static_cast<int64_t>(bytes.size());
  records_ += count;
  return common::Status::OK();
}

common::Status MutationLog::Append(const GraphMutation& m) {
  return AppendSerialized(SerializeRecord(m), 1);
}

common::Status MutationLog::AppendBatch(
    const std::vector<GraphMutation>& batch) {
  if (batch.empty()) return common::Status::OK();
  std::string bytes;
  for (const GraphMutation& m : batch) bytes += SerializeRecord(m);
  return AppendSerialized(bytes, static_cast<int64_t>(batch.size()));
}

common::Status MutationLog::RollbackLastAppend() {
  FW_CHECK_GE(last_append_bytes_, 0)
      << "RollbackLastAppend without a preceding append";
  std::error_code ec;
  std::filesystem::resize_file(
      path_, static_cast<uint64_t>(last_append_bytes_), ec);
  if (ec) {
    return common::Status::IoError("mutation log rollback failed: " + path_);
  }
#if !defined(_WIN32)
  // The append fd's offset is implicit (O_APPEND); nothing to seek.
  if (fd_ >= 0) ::fsync(fd_);
#endif
  bytes_ = last_append_bytes_;
  records_ -= 1;  // single-record rollback (batch commits cannot fail)
  last_append_bytes_ = -1;
  return common::Status::OK();
}

common::Status MutationLog::Reset(const Header& header,
                                  const std::vector<GraphMutation>& carried) {
  std::string bytes = SerializeHeader(header);
  for (const GraphMutation& m : carried) bytes += SerializeRecord(m);
  FW_RETURN_IF_ERROR(WriteFileDurably(path_, bytes));
#if !defined(_WIN32)
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return common::Status::IoError("cannot reopen for append: " + path_);
  }
#endif
  header_ = header;
  records_ = static_cast<int64_t>(carried.size());
  bytes_ = static_cast<int64_t>(bytes.size());
  last_append_bytes_ = -1;
  return common::Status::OK();
}

common::Status WriteGraphBase(const std::string& path,
                              const GraphBaseCheckpoint& base) {
  FW_CHECK(base.graph != nullptr);
  const Graph& g = *base.graph;
  std::string payload;
  payload.reserve(5 * sizeof(uint64_t) +
                  static_cast<size_t>(g.num_edges()) * 2 * sizeof(uint64_t) +
                  base.features.data().size() * sizeof(float));
  PutU64(&payload, base.seq);
  PutU64(&payload, static_cast<uint64_t>(base.folded));
  PutU64(&payload, static_cast<uint64_t>(g.num_nodes()));
  PutU64(&payload, static_cast<uint64_t>(g.num_edges()));
  PutU64(&payload, static_cast<uint64_t>(
                       base.features.rank() == 2 ? base.features.dim(1) : 0));
  for (int64_t u = 0; u < g.num_nodes(); ++u) {
    for (int64_t v : g.Neighbors(u)) {
      if (v > u) {
        PutU64(&payload, static_cast<uint64_t>(u));
        PutU64(&payload, static_cast<uint64_t>(v));
      }
    }
  }
  const auto& feat = base.features.data();
  if (!feat.empty()) {
    payload.append(reinterpret_cast<const char*>(feat.data()),
                   feat.size() * sizeof(float));
  }
  std::string bytes;
  bytes.reserve(3 * sizeof(uint64_t) + payload.size());
  PutU64(&bytes, (kBaseMagic << 32) | kVersion);
  PutU64(&bytes, static_cast<uint64_t>(payload.size()));
  PutU64(&bytes, common::Crc32(payload.data(), payload.size()));
  bytes += payload;
  return WriteFileDurably(path, bytes);
}

common::Result<GraphBaseCheckpoint> ReadGraphBase(const std::string& path) {
  FW_ASSIGN_OR_RETURN(const std::string bytes, ReadWholeFile(path));
  size_t off = 0;
  uint64_t magic_version = 0, payload_size = 0, crc = 0;
  if (!GetU64(bytes, &off, &magic_version) ||
      !GetU64(bytes, &off, &payload_size) || !GetU64(bytes, &off, &crc)) {
    return common::Status::IoError("graph-base header truncated: " + path);
  }
  if (magic_version != ((kBaseMagic << 32) | kVersion)) {
    return common::Status::IoError("not a graph-base checkpoint (bad magic): " +
                                   path);
  }
  if (off + payload_size != bytes.size()) {
    return common::Status::IoError(
        "graph-base payload size mismatch (expected " +
        std::to_string(payload_size) + " bytes, file carries " +
        std::to_string(bytes.size() - off) + "): " + path);
  }
  if (crc != common::Crc32(bytes.data() + off, payload_size)) {
    return common::Status::IoError("graph-base payload failed CRC: " + path);
  }
  uint64_t seq = 0, folded = 0, nodes = 0, edges = 0, fdim = 0;
  GetU64(bytes, &off, &seq);
  GetU64(bytes, &off, &folded);
  GetU64(bytes, &off, &nodes);
  GetU64(bytes, &off, &edges);
  GetU64(bytes, &off, &fdim);
  const size_t expect = off + edges * 2 * sizeof(uint64_t) +
                        nodes * fdim * sizeof(float);
  if (expect != bytes.size()) {
    return common::Status::IoError("graph-base payload malformed: " + path);
  }
  Graph g(static_cast<int64_t>(nodes));
  for (uint64_t i = 0; i < edges; ++i) {
    uint64_t u = 0, v = 0;
    GetU64(bytes, &off, &u);
    GetU64(bytes, &off, &v);
    // Range-check before AddEdge: a corrupt id must reject with a Status,
    // not trip AddEdge's FW_CHECKs.
    if (u >= nodes || v >= nodes ||
        !g.AddEdge(static_cast<int64_t>(u), static_cast<int64_t>(v))) {
      return common::Status::IoError("graph-base edge list invalid: " + path);
    }
  }
  std::vector<float> feat(nodes * fdim);
  if (!feat.empty()) {
    std::memcpy(feat.data(), bytes.data() + off, feat.size() * sizeof(float));
  }
  GraphBaseCheckpoint out;
  out.seq = seq;
  out.folded = static_cast<int64_t>(folded);
  out.graph = std::make_shared<const Graph>(std::move(g));
  out.features = tensor::Tensor::FromVector(
      {static_cast<int64_t>(nodes), static_cast<int64_t>(fdim)},
      std::move(feat));
  return out;
}

}  // namespace fairwos::graph
