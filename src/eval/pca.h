// Principal component analysis via orthogonalised power iteration — the
// cheap linear companion to t-SNE for inspecting pseudo-sensitive
// attribute spaces, and a building block for diagnostics.
#ifndef FAIRWOS_EVAL_PCA_H_
#define FAIRWOS_EVAL_PCA_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fairwos::eval {

struct PcaResult {
  /// Row-major [components, dim] orthonormal principal directions.
  std::vector<double> components;
  /// Variance captured by each component, descending.
  std::vector<double> explained_variance;
  /// Column means subtracted before fitting.
  std::vector<double> mean;
  int64_t dim = 0;

  /// Projects `n` points (row-major, n x dim) onto the components,
  /// returning row-major n x components scores.
  std::vector<float> Transform(const std::vector<float>& points,
                               int64_t n) const;
};

/// Fits `components` principal directions to `n` points of dimension `dim`
/// (row-major `points`). Requires 1 <= components <= dim and n >= 2.
/// Deterministic in the RNG state; power iteration with deflation.
PcaResult FitPca(const std::vector<float>& points, int64_t n, int64_t dim,
                 int64_t components, common::Rng* rng);

}  // namespace fairwos::eval

#endif  // FAIRWOS_EVAL_PCA_H_
