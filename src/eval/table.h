// Column-aligned ASCII table rendering for the bench binaries — each bench
// prints rows shaped like the paper's tables.
#ifndef FAIRWOS_EVAL_TABLE_H_
#define FAIRWOS_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace fairwos::eval {

/// Accumulates rows and renders them with padded columns and a header rule.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Row length must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table; every call reflects all rows added so far.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fairwos::eval

#endif  // FAIRWOS_EVAL_TABLE_H_
