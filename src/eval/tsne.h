// Exact t-SNE (van der Maaten & Hinton, 2008), used by the Fig. 7 bench to
// project pseudo-sensitive attributes into 2-D. O(n²) per iteration —
// intended for the test-set-sized inputs the paper visualises (hundreds of
// points).
#ifndef FAIRWOS_EVAL_TSNE_H_
#define FAIRWOS_EVAL_TSNE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fairwos::eval {

struct TsneConfig {
  int64_t out_dim = 2;
  double perplexity = 30.0;
  int64_t iterations = 500;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;   // applied for the first 1/4 of iters
  double momentum = 0.5;              // raised to 0.8 after exaggeration
};

/// Embeds `n` points of dimension `dim` (row-major `points`) into
/// `config.out_dim` dimensions. Deterministic in the RNG state.
/// Requires n >= 4 and perplexity < n.
std::vector<float> Tsne(const std::vector<float>& points, int64_t n,
                        int64_t dim, const TsneConfig& config,
                        common::Rng* rng);

}  // namespace fairwos::eval

#endif  // FAIRWOS_EVAL_TSNE_H_
