#include "eval/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace fairwos::eval {
namespace {

double SquaredDistance(const float* a, const float* b, int64_t dim) {
  double d = 0.0;
  for (int64_t i = 0; i < dim; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    d += diff * diff;
  }
  return d;
}

/// k-means++ seeding: each next centroid is drawn proportionally to the
/// squared distance from the nearest existing centroid.
std::vector<float> SeedCentroids(const float* points, int64_t n,
                                 int64_t dim, int64_t k, common::Rng* rng) {
  std::vector<float> centroids(static_cast<size_t>(k * dim));
  const int64_t first = rng->UniformInt(n);
  std::copy_n(points + first * dim, dim, centroids.data());
  std::vector<double> min_dist(static_cast<size_t>(n),
                               std::numeric_limits<double>::infinity());
  for (int64_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const double d = SquaredDistance(points + i * dim,
                                       centroids.data() + (c - 1) * dim, dim);
      min_dist[static_cast<size_t>(i)] =
          std::min(min_dist[static_cast<size_t>(i)], d);
      total += min_dist[static_cast<size_t>(i)];
    }
    int64_t chosen = 0;
    if (total > 0.0) {
      double r = rng->Uniform() * total;
      for (int64_t i = 0; i < n; ++i) {
        r -= min_dist[static_cast<size_t>(i)];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(n);
    }
    std::copy_n(points + chosen * dim, dim,
                centroids.data() + c * dim);
  }
  return centroids;
}

}  // namespace

KMeansResult KMeans(const float* points, int64_t n, int64_t dim,
                    int64_t k, int64_t max_iters, common::Rng* rng) {
  FW_CHECK_GT(n, 0);
  FW_CHECK_GT(dim, 0);
  FW_CHECK_GE(k, 1);
  FW_CHECK_LE(k, n);
  FW_CHECK(rng != nullptr);

  KMeansResult result;
  result.centroids = SeedCentroids(points, n, dim, k, rng);
  result.assignment.assign(static_cast<size_t>(n), 0);

  for (int64_t iter = 0; iter < max_iters; ++iter) {
    ++result.iterations;
    // Assignment step.
    bool changed = false;
    result.inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int64_t c = 0; c < k; ++c) {
        const double d = SquaredDistance(points + i * dim,
                                         result.centroids.data() + c * dim,
                                         dim);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (result.assignment[static_cast<size_t>(i)] != best_c) {
        result.assignment[static_cast<size_t>(i)] = best_c;
        changed = true;
      }
      result.inertia += best;
    }
    if (!changed && iter > 0) break;
    // Update step; empty clusters keep their previous centroid.
    std::vector<double> sums(static_cast<size_t>(k * dim), 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int c = result.assignment[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      for (int64_t d = 0; d < dim; ++d) {
        sums[static_cast<size_t>(c * dim + d)] +=
            points[static_cast<size_t>(i * dim + d)];
      }
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      for (int64_t d = 0; d < dim; ++d) {
        result.centroids[static_cast<size_t>(c * dim + d)] = static_cast<float>(
            sums[static_cast<size_t>(c * dim + d)] /
            static_cast<double>(counts[static_cast<size_t>(c)]));
      }
    }
  }
  return result;
}

}  // namespace fairwos::eval
