#include "eval/harness.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "fairness/metrics.h"

namespace fairwos::eval {

common::Result<TrialMetrics> RunTrial(core::FairMethod* method,
                                      const data::Dataset& ds, uint64_t seed) {
  FW_CHECK(method != nullptr);
  FW_TRACE_SPAN("eval/trial");
  FW_ASSIGN_OR_RETURN(core::MethodOutput out, method->Run(ds, seed));
  if (static_cast<int64_t>(out.pred.size()) != ds.num_nodes()) {
    return common::Status::Internal(method->name() +
                                    ": prediction size mismatch");
  }
  TrialMetrics m;
  const auto& idx = ds.split.test;
  m.acc = fairness::AccuracyPct(out.pred, ds.labels, idx);
  m.f1 = fairness::F1Pct(out.pred, ds.labels, idx);
  m.auc = fairness::AucPct(out.prob1, ds.labels, idx);
  m.dsp = fairness::StatisticalParityGapPct(out.pred, ds.sens, idx);
  m.deo = fairness::EqualOpportunityGapPct(out.pred, ds.labels, ds.sens, idx);
  m.seconds = out.train_seconds;
  return m;
}

common::Result<AggregateMetrics> RunRepeated(core::FairMethod* method,
                                             const data::Dataset& ds,
                                             int64_t trials,
                                             uint64_t base_seed,
                                             const common::Deadline* deadline) {
  if (trials <= 0) {
    return common::Status::InvalidArgument("trials must be positive");
  }
  FW_TRACE_SPAN("eval/run_repeated");
  common::Rng seed_stream(base_seed);
  std::vector<double> acc, f1, auc, dsp, deo, seconds;
  int64_t failed = 0;
  int64_t skipped = 0;
  std::vector<std::string> failure_reasons;
  common::Status last_error = common::Status::OK();
  for (int64_t t = 0; t < trials; ++t) {
    if (deadline != nullptr && deadline->Expired()) {
      skipped = trials - t;
      obs::EmitEvent(
          obs::Event("deadline_exceeded")
              .Set("phase", "harness")
              .Set("trial", t + 1)
              .Set("trials", trials)
              .Set("reason", common::StopReasonName(deadline->reason()))
              .Set("skipped_trials", skipped));
      FW_LOG(Warning) << method->name() << ": deadline expired before trial "
                      << t + 1 << "/" << trials << "; skipping the rest";
      if (acc.empty()) {
        return common::Status::DeadlineExceeded(
            method->name() + ": deadline expired before any trial completed");
      }
      break;
    }
    auto trial = RunTrial(method, ds, seed_stream.NextU64());
    if (!trial.ok()) {
      // An interrupted training loop left a resume checkpoint behind —
      // surface that to the caller instead of aggregating around it.
      if (trial.status().code() == common::StatusCode::kDeadlineExceeded) {
        return trial.status();
      }
      // One bad trial must not poison the whole aggregation: skip it, keep
      // the failure visible in the logs, in `failed_trials`, and — with the
      // precise Status — in `failure_reasons` and the telemetry stream.
      ++failed;
      last_error = trial.status();
      failure_reasons.push_back("trial " + std::to_string(t + 1) + ": " +
                                last_error.ToString());
      obs::MetricsRegistry::Global()
          .GetCounter("eval.failed_trials")
          ->Increment();
      obs::EmitEvent(obs::Event("trial_failed")
                         .Set("method", method->name())
                         .Set("trial", t + 1)
                         .Set("trials", trials)
                         .Set("reason", last_error.ToString()));
      FW_LOG(Warning) << method->name() << " trial " << t + 1 << "/" << trials
                      << " failed, skipping: " << last_error.ToString();
      continue;
    }
    const TrialMetrics& m = *trial;
    if (obs::TelemetryEnabled()) {
      obs::EmitEvent(obs::Event("trial_done")
                         .Set("method", method->name())
                         .Set("trial", t + 1)
                         .Set("trials", trials)
                         .Set("acc", m.acc)
                         .Set("dsp", m.dsp)
                         .Set("deo", m.deo)
                         .Set("seconds", m.seconds));
    }
    acc.push_back(m.acc);
    f1.push_back(m.f1);
    auc.push_back(m.auc);
    dsp.push_back(m.dsp);
    deo.push_back(m.deo);
    seconds.push_back(m.seconds);
  }
  if (acc.empty()) {
    return common::Status::Internal(
        method->name() + ": all " + std::to_string(trials) +
        " trials failed; last error: " + last_error.ToString());
  }
  AggregateMetrics agg;
  agg.acc = ComputeMeanStd(acc);
  agg.f1 = ComputeMeanStd(f1);
  agg.auc = ComputeMeanStd(auc);
  agg.dsp = ComputeMeanStd(dsp);
  agg.deo = ComputeMeanStd(deo);
  agg.seconds = ComputeMeanStd(seconds);
  agg.trials = static_cast<int64_t>(acc.size());
  agg.failed_trials = failed;
  agg.failure_reasons = std::move(failure_reasons);
  agg.skipped_trials = skipped;
  return agg;
}

}  // namespace fairwos::eval
