#include "eval/harness.h"

#include <atomic>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/telemetry.h"
#include "common/threadpool.h"
#include "common/trace.h"
#include "fairness/metrics.h"

namespace fairwos::eval {
namespace {

/// Outcome slot for one trial, written only by the worker that ran that
/// trial and read only after the parallel region joins.
struct TrialSlot {
  enum class State {
    kSkipped,   // never launched (deadline expired or halt raised)
    kDone,      // metrics valid
    kFailed,    // status holds the trial error
    kDeadline,  // the trial itself hit its deadline mid-training
  };
  State state = State::kSkipped;
  TrialMetrics metrics;
  common::Status status = common::Status::OK();
};

}  // namespace

common::Result<TrialMetrics> RunTrial(core::FairMethod* method,
                                      const data::Dataset& ds, uint64_t seed) {
  FW_CHECK(method != nullptr);
  FW_TRACE_SPAN("eval/trial");
  FW_ASSIGN_OR_RETURN(std::unique_ptr<core::FittedModel> fitted,
                      method->Fit(ds, seed));
  core::MethodOutput out = fitted->Predict(ds);
  out.train_seconds = fitted->train_seconds();
  if (static_cast<int64_t>(out.pred.size()) != ds.num_nodes()) {
    return common::Status::Internal(method->name() +
                                    ": prediction size mismatch");
  }
  TrialMetrics m;
  const auto& idx = ds.split.test;
  m.acc = fairness::AccuracyPct(out.pred, ds.labels, idx);
  m.f1 = fairness::F1Pct(out.pred, ds.labels, idx);
  m.auc = fairness::AucPct(out.prob1, ds.labels, idx);
  m.dsp = fairness::StatisticalParityGapPct(out.pred, ds.sens, idx);
  m.deo = fairness::EqualOpportunityGapPct(out.pred, ds.labels, ds.sens, idx);
  m.seconds = out.train_seconds;
  return m;
}

common::Result<AggregateMetrics> RunRepeated(core::FairMethod* method,
                                             const data::Dataset& ds,
                                             int64_t trials,
                                             uint64_t base_seed,
                                             const common::Deadline* deadline) {
  if (trials <= 0) {
    return common::Status::InvalidArgument("trials must be positive");
  }
  FW_TRACE_SPAN("eval/run_repeated");
  // Pre-draw every trial seed up front: trial t's seed is the t-th draw of
  // the stream no matter which trials run, fail, or are skipped, and no
  // matter how many threads execute them — the foundation of the
  // bit-identical --threads 1 vs --threads N guarantee.
  std::vector<uint64_t> seeds(static_cast<size_t>(trials));
  {
    common::Rng seed_stream(base_seed);
    for (auto& s : seeds) s = seed_stream.NextU64();
  }
  // Independent trials run in parallel on the global pool, each writing its
  // own pre-sized slot; aggregation, telemetry, and failure reporting all
  // walk the slots in trial order after the join, so the outputs are
  // deterministic regardless of completion order.
  std::vector<TrialSlot> slots(static_cast<size_t>(trials));
  std::atomic<bool> halt{false};
  common::ParallelFor(0, trials, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      if (halt.load(std::memory_order_relaxed)) return;
      if (deadline != nullptr && deadline->Expired()) {
        halt.store(true, std::memory_order_relaxed);
        return;
      }
      auto trial = RunTrial(method, ds, seeds[static_cast<size_t>(t)]);
      TrialSlot& slot = slots[static_cast<size_t>(t)];
      if (trial.ok()) {
        slot.state = TrialSlot::State::kDone;
        slot.metrics = *trial;
      } else if (trial.status().code() ==
                 common::StatusCode::kDeadlineExceeded) {
        slot.state = TrialSlot::State::kDeadline;
        slot.status = trial.status();
        halt.store(true, std::memory_order_relaxed);
      } else {
        slot.state = TrialSlot::State::kFailed;
        slot.status = trial.status();
      }
    }
  });

  // In-order walk of the slots: every aggregate, event, and reason string
  // comes out in trial order.
  int64_t skipped = 0;
  for (const TrialSlot& slot : slots) {
    if (slot.state == TrialSlot::State::kSkipped) ++skipped;
  }
  std::vector<double> acc, f1, auc, dsp, deo, seconds;
  int64_t failed = 0;
  std::vector<std::string> failure_reasons;
  common::Status last_error = common::Status::OK();
  bool deadline_reported = false;
  for (int64_t t = 0; t < trials; ++t) {
    const TrialSlot& slot = slots[static_cast<size_t>(t)];
    switch (slot.state) {
      case TrialSlot::State::kDeadline:
        // An interrupted training loop left a resume checkpoint behind —
        // surface that to the caller instead of aggregating around it.
        return slot.status;
      case TrialSlot::State::kSkipped: {
        if (deadline_reported) break;
        deadline_reported = true;
        obs::EmitEvent(
            obs::Event("deadline_exceeded")
                .Set("phase", "harness")
                .Set("trial", t + 1)
                .Set("trials", trials)
                .Set("reason", deadline != nullptr
                                   ? common::StopReasonName(deadline->reason())
                                   : "none")
                .Set("skipped_trials", skipped));
        FW_LOG(Warning) << method->name() << ": deadline expired before trial "
                        << t + 1 << "/" << trials << "; skipping the rest";
        break;
      }
      case TrialSlot::State::kFailed: {
        // One bad trial must not poison the whole aggregation: skip it,
        // keep the failure visible in the logs, in `failed_trials`, and —
        // with the precise Status — in `failure_reasons` and the telemetry
        // stream.
        ++failed;
        last_error = slot.status;
        failure_reasons.push_back("trial " + std::to_string(t + 1) + ": " +
                                  last_error.ToString());
        obs::MetricsRegistry::Global()
            .GetCounter("eval.failed_trials")
            ->Increment();
        obs::EmitEvent(obs::Event("trial_failed")
                           .Set("method", method->name())
                           .Set("trial", t + 1)
                           .Set("trials", trials)
                           .Set("reason", last_error.ToString()));
        FW_LOG(Warning) << method->name() << " trial " << t + 1 << "/"
                        << trials << " failed, skipping: "
                        << last_error.ToString();
        break;
      }
      case TrialSlot::State::kDone: {
        const TrialMetrics& m = slot.metrics;
        if (obs::TelemetryEnabled()) {
          obs::EmitEvent(obs::Event("trial_done")
                             .Set("method", method->name())
                             .Set("trial", t + 1)
                             .Set("trials", trials)
                             .Set("acc", m.acc)
                             .Set("dsp", m.dsp)
                             .Set("deo", m.deo)
                             .Set("seconds", m.seconds));
        }
        acc.push_back(m.acc);
        f1.push_back(m.f1);
        auc.push_back(m.auc);
        dsp.push_back(m.dsp);
        deo.push_back(m.deo);
        seconds.push_back(m.seconds);
        break;
      }
    }
  }
  if (acc.empty() && skipped > 0) {
    return common::Status::DeadlineExceeded(
        method->name() + ": deadline expired before any trial completed");
  }
  if (acc.empty()) {
    return common::Status::Internal(
        method->name() + ": all " + std::to_string(trials) +
        " trials failed; last error: " + last_error.ToString());
  }
  AggregateMetrics agg;
  agg.acc = ComputeMeanStd(acc);
  agg.f1 = ComputeMeanStd(f1);
  agg.auc = ComputeMeanStd(auc);
  agg.dsp = ComputeMeanStd(dsp);
  agg.deo = ComputeMeanStd(deo);
  agg.seconds = ComputeMeanStd(seconds);
  agg.trials = static_cast<int64_t>(acc.size());
  agg.failed_trials = failed;
  agg.failure_reasons = std::move(failure_reasons);
  agg.skipped_trials = skipped;
  return agg;
}

}  // namespace fairwos::eval
