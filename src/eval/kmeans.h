// Lloyd's k-means with k-means++ seeding. Used by the KSMOTE baseline to
// form pseudo-groups, and by tests of the pseudo-sensitive attribute space.
#ifndef FAIRWOS_EVAL_KMEANS_H_
#define FAIRWOS_EVAL_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace fairwos::eval {

struct KMeansResult {
  std::vector<int> assignment;     // cluster id per point
  std::vector<float> centroids;   // row-major [k, dim]
  double inertia = 0.0;           // sum of squared distances to centroids
  int64_t iterations = 0;
};

/// Clusters `n` points of dimension `dim` (row-major `points`, any
/// contiguous float storage) into `k` clusters. Deterministic in the RNG
/// state. Requires 1 <= k <= n.
KMeansResult KMeans(const float* points, int64_t n, int64_t dim,
                    int64_t k, int64_t max_iters, common::Rng* rng);

}  // namespace fairwos::eval

#endif  // FAIRWOS_EVAL_KMEANS_H_
