#include "eval/tsne.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace fairwos::eval {
namespace {

/// Binary-searches the Gaussian bandwidth for row i so that the conditional
/// distribution P(.|i) has the target perplexity; writes P(j|i) into `p`.
void ComputeRowAffinities(const std::vector<double>& sq_dist, int64_t n,
                          int64_t i, double perplexity, double* p) {
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;  // 1 / (2 sigma^2)
  double beta_min = 0.0, beta_max = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      p[j] = j == i ? 0.0
                    : std::exp(-beta * sq_dist[static_cast<size_t>(i * n + j)]);
      sum += p[j];
    }
    sum = std::max(sum, 1e-300);
    double entropy = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      p[j] /= sum;
      if (p[j] > 1e-12) entropy -= p[j] * std::log(p[j]);
    }
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0.0) {  // entropy too high -> sharpen
      beta_min = beta;
      beta = std::isinf(beta_max) ? beta * 2.0 : 0.5 * (beta + beta_max);
    } else {
      beta_max = beta;
      beta = 0.5 * (beta + beta_min);
    }
  }
}

}  // namespace

std::vector<float> Tsne(const std::vector<float>& points, int64_t n,
                        int64_t dim, const TsneConfig& config,
                        common::Rng* rng) {
  FW_CHECK_GE(n, 4);
  FW_CHECK_GT(dim, 0);
  FW_CHECK_EQ(static_cast<int64_t>(points.size()), n * dim);
  FW_CHECK_LT(config.perplexity, static_cast<double>(n));
  FW_CHECK(rng != nullptr);
  const int64_t out_dim = config.out_dim;

  // Pairwise squared distances in the input space.
  std::vector<double> sq_dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double d = 0.0;
      for (int64_t k = 0; k < dim; ++k) {
        const double diff = static_cast<double>(
                                points[static_cast<size_t>(i * dim + k)]) -
                            points[static_cast<size_t>(j * dim + k)];
        d += diff * diff;
      }
      sq_dist[static_cast<size_t>(i * n + j)] = d;
      sq_dist[static_cast<size_t>(j * n + i)] = d;
    }
  }

  // Symmetrised affinities P.
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  {
    std::vector<double> row(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      ComputeRowAffinities(sq_dist, n, i, config.perplexity, row.data());
      for (int64_t j = 0; j < n; ++j) {
        p[static_cast<size_t>(i * n + j)] += row[static_cast<size_t>(j)];
        p[static_cast<size_t>(j * n + i)] += row[static_cast<size_t>(j)];
      }
    }
    double sum = 0.0;
    for (double v : p) sum += v;
    for (double& v : p) v = std::max(v / sum, 1e-12);
  }

  // Gradient descent on KL(P || Q) with early exaggeration and momentum.
  std::vector<double> y(static_cast<size_t>(n * out_dim));
  for (auto& v : y) v = rng->Normal(0.0, 1e-4);
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> q(static_cast<size_t>(n * n));
  std::vector<double> grad(y.size());
  const int64_t exaggeration_end = config.iterations / 4;

  for (int64_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_end ? config.early_exaggeration : 1.0;
    const double momentum =
        iter < exaggeration_end ? config.momentum : 0.8;
    // Student-t affinities Q.
    double q_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double d = 0.0;
        for (int64_t k = 0; k < out_dim; ++k) {
          const double diff = y[static_cast<size_t>(i * out_dim + k)] -
                              y[static_cast<size_t>(j * out_dim + k)];
          d += diff * diff;
        }
        const double w = 1.0 / (1.0 + d);
        q[static_cast<size_t>(i * n + j)] = w;
        q[static_cast<size_t>(j * n + i)] = w;
        q_sum += 2.0 * w;
      }
      q[static_cast<size_t>(i * n + i)] = 0.0;
    }
    q_sum = std::max(q_sum, 1e-300);
    // Gradient: 4 Σ_j (exag*P_ij − Q_ij) w_ij (y_i − y_j).
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[static_cast<size_t>(i * n + j)];
        const double coeff =
            4.0 * (exaggeration * p[static_cast<size_t>(i * n + j)] -
                   w / q_sum) *
            w;
        for (int64_t k = 0; k < out_dim; ++k) {
          grad[static_cast<size_t>(i * out_dim + k)] +=
              coeff * (y[static_cast<size_t>(i * out_dim + k)] -
                       y[static_cast<size_t>(j * out_dim + k)]);
        }
      }
    }
    for (size_t i = 0; i < y.size(); ++i) {
      velocity[i] = momentum * velocity[i] - config.learning_rate * grad[i];
      y[i] += velocity[i];
    }
    // Re-center to keep the embedding bounded.
    for (int64_t k = 0; k < out_dim; ++k) {
      double mean = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        mean += y[static_cast<size_t>(i * out_dim + k)];
      }
      mean /= static_cast<double>(n);
      for (int64_t i = 0; i < n; ++i) {
        y[static_cast<size_t>(i * out_dim + k)] -= mean;
      }
    }
  }

  std::vector<float> out(y.size());
  for (size_t i = 0; i < y.size(); ++i) out[i] = static_cast<float>(y[i]);
  return out;
}

}  // namespace fairwos::eval
