#include "eval/table.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace fairwos::eval {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FW_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  FW_CHECK_EQ(cells.size(), header_.size())
      << "row width must match header width";
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace fairwos::eval
