#include "eval/stats.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"

namespace fairwos::eval {

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  FW_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  return {mean, std::sqrt(var)};
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  FW_CHECK_EQ(a.size(), b.size());
  FW_CHECK(!a.empty());
  const auto ma = ComputeMeanStd(a);
  const auto mb = ComputeMeanStd(b);
  if (ma.stddev < 1e-12 || mb.stddev < 1e-12) return 0.0;
  double cov = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma.mean) * (b[i] - mb.mean);
  }
  cov /= static_cast<double>(a.size());
  return cov / (ma.stddev * mb.stddev);
}

double SilhouetteScore(const std::vector<float>& points, int64_t dim,
                       const std::vector<int>& labels) {
  FW_CHECK_GT(dim, 0);
  const int64_t n = static_cast<int64_t>(labels.size());
  FW_CHECK_EQ(static_cast<int64_t>(points.size()), n * dim);
  FW_CHECK_GT(n, 1);
  std::map<int, int64_t> cluster_sizes;
  for (int c : labels) ++cluster_sizes[c];
  if (cluster_sizes.size() < 2) return 0.0;

  auto distance = [&](int64_t i, int64_t j) {
    double d = 0.0;
    for (int64_t k = 0; k < dim; ++k) {
      const double diff = points[static_cast<size_t>(i * dim + k)] -
                          points[static_cast<size_t>(j * dim + k)];
      d += diff * diff;
    }
    return std::sqrt(d);
  };

  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const int own = labels[static_cast<size_t>(i)];
    if (cluster_sizes[own] <= 1) continue;  // singleton: contributes 0
    std::map<int, double> sum_dist;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sum_dist[labels[static_cast<size_t>(j)]] += distance(i, j);
    }
    const double a =
        sum_dist[own] / static_cast<double>(cluster_sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [cluster, sum] : sum_dist) {
      if (cluster == own) continue;
      b = std::min(b, sum / static_cast<double>(cluster_sizes[cluster]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

}  // namespace fairwos::eval
