// The experiment harness: runs a FairMethod on a dataset over repeated
// seeded trials and aggregates the paper's metrics (ACC / ΔSP / ΔEO, plus
// F1 / AUC / runtime) as mean ± std, exactly what Table II and the figure
// benches report.
#ifndef FAIRWOS_EVAL_HARNESS_H_
#define FAIRWOS_EVAL_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/method.h"
#include "data/dataset.h"
#include "eval/stats.h"

namespace fairwos::eval {

/// Test-split metrics of one training run.
struct TrialMetrics {
  double acc = 0.0;   // percent
  double f1 = 0.0;    // percent
  double auc = 0.0;   // percent
  double dsp = 0.0;   // ΔSP, percent
  double deo = 0.0;   // ΔEO, percent
  double seconds = 0.0;
};

/// Mean ± std over the trials that succeeded. `trials` counts successes;
/// `failed_trials` counts trials whose method returned an error and were
/// skipped (logged) instead of aborting the aggregation.
struct AggregateMetrics {
  MeanStd acc, f1, auc, dsp, deo, seconds;
  int64_t trials = 0;
  int64_t failed_trials = 0;
  /// One "trial <n>: <Status>" entry per failed trial, in trial order — so
  /// telemetry and the Table II output can report *why* trials failed.
  std::vector<std::string> failure_reasons;
  /// Trials never launched because the deadline expired between trials
  /// (docs/resume.md); the aggregate over the completed ones stays valid.
  int64_t skipped_trials = 0;
};

/// Trains `method` once with `seed` and evaluates on ds.split.test.
/// The sensitive attribute is consulted here — and only here (§II-B).
common::Result<TrialMetrics> RunTrial(core::FairMethod* method,
                                      const data::Dataset& ds, uint64_t seed);

/// Runs `trials` independent trials with seeds derived from `base_seed`.
/// Tolerates partial failure: an errored trial is skipped and counted in
/// `failed_trials`; an error is returned only when every trial fails.
///
/// Trials execute in parallel on the global thread pool (--threads /
/// FAIRWOS_THREADS; docs/parallelism.md). Every trial seed is pre-drawn
/// from `base_seed` before any trial starts and results land in per-trial
/// slots that are aggregated in trial order after the join, so the
/// aggregate — and the trial_done/trial_failed telemetry order — is
/// bit-identical at any thread count and unaffected by failed or skipped
/// trials.
///
/// A non-null `deadline` is polled before each trial launches: on expiry
/// the unlaunched trials are counted in `skipped_trials` and the completed
/// ones are aggregated (DeadlineExceeded when none completed). A trial that
/// *itself* returns DeadlineExceeded — an interrupted training loop that
/// saved a resume checkpoint — takes precedence, so callers can print the
/// resume hint instead of a half-aggregated table.
common::Result<AggregateMetrics> RunRepeated(
    core::FairMethod* method, const data::Dataset& ds, int64_t trials,
    uint64_t base_seed, const common::Deadline* deadline = nullptr);

}  // namespace fairwos::eval

#endif  // FAIRWOS_EVAL_HARNESS_H_
