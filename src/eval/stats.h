// Small statistics helpers used by the harness, baselines, and benches.
#ifndef FAIRWOS_EVAL_STATS_H_
#define FAIRWOS_EVAL_STATS_H_

#include <cstdint>
#include <vector>

namespace fairwos::eval {

/// Sample mean and (population) standard deviation of `values`.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

/// Pearson correlation coefficient; 0 when either vector is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Mean silhouette coefficient of rows of `points` (row-major, n x dim)
/// under integer cluster `labels`; in [-1, 1], higher = better separated.
/// Points in singleton clusters contribute 0. O(n²·dim).
double SilhouetteScore(const std::vector<float>& points, int64_t dim,
                       const std::vector<int>& labels);

}  // namespace fairwos::eval

#endif  // FAIRWOS_EVAL_STATS_H_
