#include "eval/pca.h"

#include <cmath>

#include "common/check.h"

namespace fairwos::eval {
namespace {

/// y = C·v where C is the dim x dim covariance of the centered data,
/// computed without materialising C: y = Xᵀ(Xv)/n.
void CovarianceMultiply(const std::vector<double>& centered, int64_t n,
                        int64_t dim, const std::vector<double>& v,
                        std::vector<double>* y) {
  std::vector<double> xv(static_cast<size_t>(n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* row = centered.data() + i * dim;
    double acc = 0.0;
    for (int64_t d = 0; d < dim; ++d) acc += row[d] * v[static_cast<size_t>(d)];
    xv[static_cast<size_t>(i)] = acc;
  }
  y->assign(static_cast<size_t>(dim), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    const double* row = centered.data() + i * dim;
    const double w = xv[static_cast<size_t>(i)];
    for (int64_t d = 0; d < dim; ++d) (*y)[static_cast<size_t>(d)] += w * row[d];
  }
  for (auto& val : *y) val /= static_cast<double>(n);
}

}  // namespace

PcaResult FitPca(const std::vector<float>& points, int64_t n, int64_t dim,
                 int64_t components, common::Rng* rng) {
  FW_CHECK_GE(n, 2);
  FW_CHECK_GT(dim, 0);
  FW_CHECK_GE(components, 1);
  FW_CHECK_LE(components, dim);
  FW_CHECK_EQ(static_cast<int64_t>(points.size()), n * dim);
  FW_CHECK(rng != nullptr);

  PcaResult result;
  result.dim = dim;
  result.mean.assign(static_cast<size_t>(dim), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t d = 0; d < dim; ++d) {
      result.mean[static_cast<size_t>(d)] +=
          points[static_cast<size_t>(i * dim + d)];
    }
  }
  for (auto& m : result.mean) m /= static_cast<double>(n);

  std::vector<double> centered(static_cast<size_t>(n * dim));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t d = 0; d < dim; ++d) {
      centered[static_cast<size_t>(i * dim + d)] =
          points[static_cast<size_t>(i * dim + d)] -
          result.mean[static_cast<size_t>(d)];
    }
  }

  result.components.assign(static_cast<size_t>(components * dim), 0.0);
  result.explained_variance.assign(static_cast<size_t>(components), 0.0);
  std::vector<double> v(static_cast<size_t>(dim));
  std::vector<double> cv;
  for (int64_t c = 0; c < components; ++c) {
    for (auto& x : v) x = rng->Normal();
    double eigenvalue = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
      // Deflate: remove projections onto found components.
      for (int64_t p = 0; p < c; ++p) {
        const double* comp = result.components.data() + p * dim;
        double dot = 0.0;
        for (int64_t d = 0; d < dim; ++d) dot += v[static_cast<size_t>(d)] * comp[d];
        for (int64_t d = 0; d < dim; ++d) v[static_cast<size_t>(d)] -= dot * comp[d];
      }
      CovarianceMultiply(centered, n, dim, v, &cv);
      double norm = 0.0;
      for (double x : cv) norm += x * x;
      norm = std::sqrt(norm);
      if (norm < 1e-15) break;  // data has fewer than `components` directions
      eigenvalue = norm;
      for (int64_t d = 0; d < dim; ++d) v[static_cast<size_t>(d)] = cv[static_cast<size_t>(d)] / norm;
    }
    // One more deflation to keep orthogonality tight, then store.
    for (int64_t p = 0; p < c; ++p) {
      const double* comp = result.components.data() + p * dim;
      double dot = 0.0;
      for (int64_t d = 0; d < dim; ++d) dot += v[static_cast<size_t>(d)] * comp[d];
      for (int64_t d = 0; d < dim; ++d) v[static_cast<size_t>(d)] -= dot * comp[d];
    }
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(std::max(norm, 1e-300));
    for (int64_t d = 0; d < dim; ++d) {
      result.components[static_cast<size_t>(c * dim + d)] =
          v[static_cast<size_t>(d)] / norm;
    }
    result.explained_variance[static_cast<size_t>(c)] = eigenvalue;
  }
  return result;
}

std::vector<float> PcaResult::Transform(const std::vector<float>& points,
                                        int64_t n) const {
  FW_CHECK_EQ(static_cast<int64_t>(points.size()), n * dim);
  const int64_t k = static_cast<int64_t>(explained_variance.size());
  std::vector<float> out(static_cast<size_t>(n * k));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < k; ++c) {
      const double* comp = components.data() + c * dim;
      double acc = 0.0;
      for (int64_t d = 0; d < dim; ++d) {
        acc += (points[static_cast<size_t>(i * dim + d)] -
                mean[static_cast<size_t>(d)]) *
               comp[d];
      }
      out[static_cast<size_t>(i * k + c)] = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace fairwos::eval
