#include "nn/init.h"

#include <cmath>

namespace fairwos::nn {

tensor::Tensor GlorotUniform(int64_t fan_in, int64_t fan_out,
                             common::Rng* rng) {
  FW_CHECK_GT(fan_in, 0);
  FW_CHECK_GT(fan_out, 0);
  const float a =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::RandUniform({fan_in, fan_out}, -a, a, rng);
}

tensor::Tensor HeNormal(int64_t fan_in, int64_t fan_out, common::Rng* rng) {
  FW_CHECK_GT(fan_in, 0);
  FW_CHECK_GT(fan_out, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return tensor::Tensor::RandNormal({fan_in, fan_out}, stddev, rng);
}

}  // namespace fairwos::nn
