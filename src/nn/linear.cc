#include "nn/linear.h"

#include "nn/init.h"

namespace fairwos::nn {

Linear::Linear(int64_t in_features, int64_t out_features, common::Rng* rng) {
  weight_ = RegisterParameter(GlorotUniform(in_features, out_features, rng));
  bias_ = RegisterParameter(tensor::Tensor::Zeros({out_features}));
}

tensor::Tensor Linear::Forward(const tensor::Tensor& x) const {
  return tensor::AddRowBroadcast(tensor::MatMul(x, weight_), bias_);
}

Mlp::Mlp(const std::vector<int64_t>& dims, float dropout, common::Rng* rng)
    : dropout_(dropout) {
  FW_CHECK_GE(dims.size(), 2u) << "Mlp needs at least input and output dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
  for (const auto& layer : layers_) RegisterSubmodule(layer);
}

tensor::Tensor Mlp::Forward(const tensor::Tensor& x, bool training,
                            common::Rng* rng) const {
  tensor::Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      h = tensor::Relu(h);
      if (dropout_ > 0.0f) h = tensor::Dropout(h, dropout_, training, rng);
    }
  }
  return h;
}

}  // namespace fairwos::nn
