#include "nn/guard.h"

#include <cmath>

#include "common/health.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/telemetry.h"

namespace fairwos::nn {

double GlobalGradNorm(const std::vector<tensor::Tensor>& params) {
  double total = 0.0;
  for (const auto& p : params) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  return std::sqrt(total);
}

double ClipGradNorm(const std::vector<tensor::Tensor>& params,
                    double max_norm) {
  FW_CHECK_GT(max_norm, 0.0);
  const double norm = GlobalGradNorm(params);
  if (!common::IsFinite(norm) || norm <= max_norm) return norm;
  const float scale = static_cast<float>(max_norm / norm);
  for (const auto& p : params) {
    for (float& g : tensor::Tensor(p).mutable_grad()) g *= scale;
  }
  return norm;
}

common::Status GradientGuard::CheckLoss(double loss) const {
  if (common::IsFinite(loss)) return common::Status::OK();
  return common::Status::Internal("non-finite loss: " + std::to_string(loss));
}

common::Status GradientGuard::CheckGradients() const {
  for (size_t i = 0; i < params_.size(); ++i) {
    const auto& grad = params_[i].grad();
    if (common::AllFinite(grad)) continue;
    return common::Status::Internal(
        "non-finite gradient on parameter " + std::to_string(i) + " " +
        tensor::ShapeToString(params_[i].shape()) + ": " +
        common::CheckHealth(grad).ToString());
  }
  return common::Status::OK();
}

common::Status GradientGuard::CheckParameters() const {
  for (size_t i = 0; i < params_.size(); ++i) {
    const auto& data = params_[i].data();
    if (common::AllFinite(data.data(), data.size())) continue;
    return common::Status::Internal(
        "non-finite parameter " + std::to_string(i) + " " +
        tensor::ShapeToString(params_[i].shape()) + ": " +
        common::CheckHealth(data.data(), data.size()).ToString());
  }
  return common::Status::OK();
}

SelfHealing::SelfHealing(const RecoveryConfig& config, const Module& model,
                         Optimizer* opt, std::string context)
    : config_(config),
      model_(model),
      opt_(opt),
      context_(std::move(context)),
      guard_(model.parameters()),
      last_good_(SnapshotParameters(model)) {
  FW_CHECK(opt_ != nullptr);
}

bool SelfHealing::GuardedStep(double loss) {
  last_failure_ = guard_.CheckLoss(loss);
  if (last_failure_.ok()) last_failure_ = guard_.CheckGradients();
  if (last_failure_.ok()) {
    opt_->Step();
    last_failure_ = guard_.CheckParameters();
  }
  if (!last_failure_.ok()) {
    obs::MetricsRegistry::Global()
        .GetCounter("selfheal.guard_trips")
        ->Increment();
  }
  return last_failure_.ok();
}

void SelfHealing::Commit() { last_good_ = SnapshotParameters(model_); }

bool SelfHealing::Recover() {
  RestoreParameters(model_, last_good_);
  if (retries_ >= config_.max_retries) {
    FW_LOG(Warning) << context_ << ": retry budget (" << config_.max_retries
                    << ") exhausted after " << last_failure_.ToString()
                    << "; rolled back to last-good parameters";
    obs::MetricsRegistry::Global()
        .GetCounter("selfheal.budget_exhausted")
        ->Increment();
    obs::EmitEvent(obs::Event("recovery_exhausted")
                       .Set("context", context_)
                       .Set("max_retries", config_.max_retries)
                       .Set("reason", last_failure_.ToString()));
    return false;
  }
  ++retries_;
  opt_->ResetState();
  const float new_lr = opt_->lr() * static_cast<float>(config_.lr_decay);
  opt_->set_lr(new_lr);
  if (config_.retry_clip_norm > 0.0) {
    opt_->set_max_grad_norm(static_cast<float>(config_.retry_clip_norm));
  }
  FW_LOG(Warning) << context_ << ": divergence (" << last_failure_.ToString()
                  << "); rolled back, lr -> " << new_lr << ", retry "
                  << retries_ << "/" << config_.max_retries;
  obs::MetricsRegistry::Global().GetCounter("selfheal.rollbacks")->Increment();
  obs::EmitEvent(obs::Event("rollback")
                     .Set("context", context_)
                     .Set("retry", retries_)
                     .Set("max_retries", config_.max_retries)
                     .Set("new_lr", static_cast<double>(new_lr))
                     .Set("reason", last_failure_.ToString()));
  return true;
}

}  // namespace fairwos::nn
