// Byte-level payload primitives shared by every FWCP envelope payload: the
// v2 module and v3 train-state checkpoints (nn/checkpoint.cc) and the v4
// frozen-model artifact (serve/artifact.cc). Append* build a little-endian
// payload string; PayloadReader parses one back with bounds checking, so a
// corrupt length field never turns into a huge allocation or an
// out-of-bounds read.
#ifndef FAIRWOS_NN_PAYLOAD_H_
#define FAIRWOS_NN_PAYLOAD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace fairwos::nn {

inline void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void AppendF32(std::string* out, float v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void AppendF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Works for any contiguous float container (std::vector, FloatBuffer).
template <typename FloatContainer>
inline void AppendFloats(std::string* out, const FloatContainer& v) {
  static_assert(sizeof(typename FloatContainer::value_type) == sizeof(float));
  out->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(float));
}

/// u64 byte count followed by the raw bytes.
inline void AppendString(std::string* out, const std::string& s) {
  AppendU64(out, s.size());
  out->append(s);
}

/// Bounds-checked sequential reads from a CRC-verified payload buffer.
/// Every Read* returns false instead of reading past the end; the sized
/// variants validate the element count against the remaining bytes before
/// allocating.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buffer) : buffer_(buffer) {}

  bool ReadU64(uint64_t* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, buffer_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool ReadF32(float* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, buffer_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool ReadF64(double* v) {
    if (remaining() < sizeof(*v)) return false;
    std::memcpy(v, buffer_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool ReadFloats(std::vector<float>* out) {
    const size_t bytes = out->size() * sizeof(float);
    if (remaining() < bytes) return false;
    std::memcpy(out->data(), buffer_.data() + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  /// u64 element count followed by that many floats. The count is validated
  /// against the remaining payload before the allocation, so a flipped size
  /// field never becomes a huge alloc.
  bool ReadSizedFloats(std::vector<float>* out) {
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    if (remaining() / sizeof(float) < n) return false;
    out->resize(n);
    return ReadFloats(out);
  }

  /// u64 byte count followed by the raw bytes (pairs with AppendString).
  bool ReadString(std::string* out) {
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    if (remaining() < n) return false;
    out->assign(buffer_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return buffer_.size() - pos_; }
  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  const std::string& buffer_;
  size_t pos_ = 0;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_PAYLOAD_H_
