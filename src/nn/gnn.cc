#include "nn/gnn.h"

#include "common/trace.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace fairwos::nn {

common::Result<Backbone> ParseBackbone(const std::string& name) {
  if (name == "gcn") return Backbone::kGcn;
  if (name == "gin") return Backbone::kGin;
  if (name == "sage") return Backbone::kSage;
  if (name == "gat") return Backbone::kGat;
  return common::Status::InvalidArgument("unknown backbone: " + name);
}

const char* BackboneName(Backbone backbone) {
  switch (backbone) {
    case Backbone::kGcn:
      return "gcn";
    case Backbone::kGin:
      return "gin";
    case Backbone::kSage:
      return "sage";
    case Backbone::kGat:
      return "gat";
  }
  return "?";
}

std::shared_ptr<const tensor::SparseMatrix> AdjacencyForBackbone(
    Backbone backbone, const graph::Graph& g) {
  switch (backbone) {
    case Backbone::kGcn:
      return g.GcnNormalizedAdjacency();
    case Backbone::kGin:
      return g.PlainAdjacency();
    case Backbone::kSage:
      return g.NeighborMeanAdjacency();
    case Backbone::kGat:
      return g.AdjacencyWithSelfLoops();
  }
  return nullptr;
}

GcnConv::GcnConv(int64_t in_features, int64_t out_features, common::Rng* rng)
    : linear_(in_features, out_features, rng) {
  RegisterSubmodule(linear_);
}

tensor::Tensor GcnConv::Forward(
    const std::shared_ptr<const tensor::SparseMatrix>& adj_norm,
    const tensor::Tensor& x) const {
  FW_TRACE_SPAN("gcn_conv/forward");
  return linear_.Forward(tensor::SpMM(adj_norm, x));
}

GinConv::GinConv(int64_t in_features, int64_t out_features, float eps,
                 common::Rng* rng)
    : mlp_({in_features, out_features, out_features}, /*dropout=*/0.0f, rng),
      eps_(eps) {
  RegisterSubmodule(mlp_);
}

tensor::Tensor GinConv::Forward(
    const std::shared_ptr<const tensor::SparseMatrix>& adj_plain,
    const tensor::Tensor& x, bool training, common::Rng* rng) const {
  FW_TRACE_SPAN("gin_conv/forward");
  tensor::Tensor aggregated = tensor::SpMM(adj_plain, x);
  tensor::Tensor self = tensor::MulScalar(x, 1.0f + eps_);
  return mlp_.Forward(tensor::Add(self, aggregated), training, rng);
}

SageConv::SageConv(int64_t in_features, int64_t out_features, bool normalize,
                   common::Rng* rng)
    : self_linear_(in_features, out_features, rng),
      neighbor_linear_(in_features, out_features, rng),
      normalize_(normalize) {
  RegisterSubmodule(self_linear_);
  RegisterSubmodule(neighbor_linear_);
}

tensor::Tensor SageConv::Forward(
    const std::shared_ptr<const tensor::SparseMatrix>& neighbor_mean,
    const tensor::Tensor& x) const {
  tensor::Tensor aggregated = tensor::SpMM(neighbor_mean, x);
  tensor::Tensor out = tensor::Add(self_linear_.Forward(x),
                                   neighbor_linear_.Forward(aggregated));
  return normalize_ ? tensor::L2NormalizeRows(out) : out;
}

GatConv::GatConv(int64_t in_features, int64_t out_features, int64_t heads,
                 float negative_slope, common::Rng* rng)
    : negative_slope_(negative_slope) {
  FW_CHECK_GE(heads, 1);
  FW_CHECK_EQ(out_features % heads, 0)
      << "GAT: out_features must be divisible by heads";
  const int64_t per_head = out_features / heads;
  for (int64_t h = 0; h < heads; ++h) {
    Head head{Linear(in_features, per_head, rng),
              GlorotUniform(per_head, 1, rng), GlorotUniform(per_head, 1, rng)};
    heads_.push_back(std::move(head));
  }
  for (auto& head : heads_) {
    RegisterSubmodule(head.linear);
    head.att_dst = RegisterParameter(head.att_dst);
    head.att_src = RegisterParameter(head.att_src);
  }
}

tensor::Tensor GatConv::Forward(
    const std::shared_ptr<const tensor::SparseMatrix>& adj_self_loops,
    const tensor::Tensor& x) const {
  std::vector<tensor::Tensor> outputs;
  outputs.reserve(heads_.size());
  const int64_t n = x.dim(0);
  for (const auto& head : heads_) {
    tensor::Tensor z = head.linear.Forward(x);  // [N, per_head]
    tensor::Tensor dst_score =
        tensor::Reshape(tensor::MatMul(z, head.att_dst), {n});
    tensor::Tensor src_score =
        tensor::Reshape(tensor::MatMul(z, head.att_src), {n});
    outputs.push_back(tensor::GatAggregate(adj_self_loops, dst_score,
                                           src_score, z, negative_slope_));
  }
  return outputs.size() == 1 ? outputs[0] : tensor::Concat(outputs, /*axis=*/1);
}

GnnEncoder::GnnEncoder(const GnnConfig& config, const graph::Graph& g,
                       common::Rng* rng)
    : config_(config) {
  FW_CHECK_GT(config.in_features, 0);
  FW_CHECK_GT(config.hidden, 0);
  FW_CHECK_GE(config.num_layers, 1);
  int64_t in = config.in_features;
  switch (config.backbone) {
    case Backbone::kGcn:
      adj_ = g.GcnNormalizedAdjacency();
      for (int64_t l = 0; l < config.num_layers; ++l) {
        gcn_layers_.emplace_back(in, config.hidden, rng);
        in = config.hidden;
      }
      for (const auto& layer : gcn_layers_) RegisterSubmodule(layer);
      break;
    case Backbone::kGin:
      adj_ = g.PlainAdjacency();
      for (int64_t l = 0; l < config.num_layers; ++l) {
        gin_layers_.emplace_back(in, config.hidden, config.gin_eps, rng);
        in = config.hidden;
      }
      for (const auto& layer : gin_layers_) RegisterSubmodule(layer);
      break;
    case Backbone::kSage:
      adj_ = g.NeighborMeanAdjacency();
      for (int64_t l = 0; l < config.num_layers; ++l) {
        sage_layers_.emplace_back(in, config.hidden, config.sage_normalize,
                                  rng);
        in = config.hidden;
      }
      for (const auto& layer : sage_layers_) RegisterSubmodule(layer);
      break;
    case Backbone::kGat:
      adj_ = g.AdjacencyWithSelfLoops();
      for (int64_t l = 0; l < config.num_layers; ++l) {
        gat_layers_.emplace_back(in, config.hidden, config.gat_heads,
                                 config.gat_negative_slope, rng);
        in = config.hidden;
      }
      for (const auto& layer : gat_layers_) RegisterSubmodule(layer);
      break;
  }
}

tensor::Tensor GnnEncoder::Forward(const tensor::Tensor& x, bool training,
                                   common::Rng* rng) const {
  return ForwardWith(adj_, x, training, rng);
}

tensor::Tensor GnnEncoder::ForwardWith(
    const std::shared_ptr<const tensor::SparseMatrix>& adj,
    const tensor::Tensor& x, bool training, common::Rng* rng) const {
  tensor::Tensor h = x;
  switch (config_.backbone) {
    case Backbone::kGcn:
      for (size_t l = 0; l < gcn_layers_.size(); ++l) {
        h = gcn_layers_[l].Forward(adj, h);
        if (l + 1 < gcn_layers_.size()) h = tensor::Relu(h);
      }
      break;
    case Backbone::kGin:
      for (size_t l = 0; l < gin_layers_.size(); ++l) {
        h = gin_layers_[l].Forward(adj, h, training, rng);
        if (l + 1 < gin_layers_.size()) h = tensor::Relu(h);
      }
      break;
    case Backbone::kSage:
      for (size_t l = 0; l < sage_layers_.size(); ++l) {
        h = sage_layers_[l].Forward(adj, h);
        if (l + 1 < sage_layers_.size()) h = tensor::Relu(h);
      }
      break;
    case Backbone::kGat:
      for (size_t l = 0; l < gat_layers_.size(); ++l) {
        h = gat_layers_[l].Forward(adj, h);
        if (l + 1 < gat_layers_.size()) h = tensor::Relu(h);
      }
      break;
  }
  if (config_.dropout > 0.0f) {
    h = tensor::Dropout(h, config_.dropout, training, rng);
  }
  return h;
}

GnnClassifier::GnnClassifier(const GnnConfig& config, const graph::Graph& g,
                             common::Rng* rng)
    : encoder_(config, g, rng),
      head_(config.hidden, config.num_classes, rng) {
  RegisterSubmodule(encoder_);
  RegisterSubmodule(head_);
}

tensor::Tensor GnnClassifier::Embed(const tensor::Tensor& x, bool training,
                                    common::Rng* rng) const {
  return encoder_.Forward(x, training, rng);
}

tensor::Tensor GnnClassifier::Logits(const tensor::Tensor& h) const {
  return head_.Forward(h);
}

tensor::Tensor GnnClassifier::Forward(const tensor::Tensor& x, bool training,
                                      common::Rng* rng) const {
  return Logits(Embed(x, training, rng));
}

tensor::Tensor GnnClassifier::ForwardWith(
    const std::shared_ptr<const tensor::SparseMatrix>& adj,
    const tensor::Tensor& x, bool training, common::Rng* rng) const {
  return Logits(encoder_.ForwardWith(adj, x, training, rng));
}

PredictionResult PredictFromLogits(const tensor::Tensor& logits) {
  FW_CHECK_EQ(logits.rank(), 2);
  tensor::NoGradGuard no_grad;
  tensor::Tensor probs = tensor::Softmax(logits);
  const int64_t n = logits.dim(0), c = logits.dim(1);
  PredictionResult out;
  out.pred.resize(static_cast<size_t>(n));
  out.prob1.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    int best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (probs.at(i, j) > probs.at(i, best)) best = static_cast<int>(j);
    }
    out.pred[static_cast<size_t>(i)] = best;
    out.prob1[static_cast<size_t>(i)] = c > 1 ? probs.at(i, 1) : probs.at(i, 0);
  }
  return out;
}

}  // namespace fairwos::nn
