#include "nn/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "nn/payload.h"

namespace fairwos::nn {
namespace {

constexpr uint32_t kMagic = 0x46574350;  // "FWCP"
constexpr uint32_t kModuleVersion = kModuleCheckpointVersion;
constexpr uint32_t kTrainStateVersion = kTrainStateCheckpointVersion;
constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);

constexpr char kRotationPrefix[] = "state-";
constexpr char kRotationSuffix[] = ".fwck";

/// Fault-injection sites modelling a failing disk on the write path: the
/// checksum is computed from the intended bytes *before* these run, so
/// either corruption is caught at load time.
void MaybeCorruptForSave(std::string* payload) {
  auto* fi = testing::ActiveFaultInjector();
  if (fi == nullptr) return;
  if (!payload->empty() &&
      fi->ShouldFire(testing::FaultSite::kCheckpointFlip)) {
    const auto offset = static_cast<size_t>(
        fi->rng()->UniformInt(static_cast<int64_t>(payload->size())));
    (*payload)[offset] = static_cast<char>((*payload)[offset] ^
                                           (1 << fi->rng()->UniformInt(8)));
  }
  if (fi->ShouldFire(testing::FaultSite::kCheckpointTruncate)) {
    payload->resize(payload->size() / 2);
  }
}

/// Fault-injection site modelling a corrupt read (bus error, bitrot that
/// beat the write-side checks): flips one bit in the buffer read back from
/// disk, before the CRC verification that must then reject it.
void MaybeCorruptAfterRead(std::string* payload) {
  auto* fi = testing::ActiveFaultInjector();
  if (fi == nullptr || payload->empty()) return;
  if (fi->ShouldFire(testing::FaultSite::kCheckpointRead)) {
    const auto offset = static_cast<size_t>(
        fi->rng()->UniformInt(static_cast<int64_t>(payload->size())));
    (*payload)[offset] = static_cast<char>((*payload)[offset] ^
                                           (1 << fi->rng()->UniformInt(8)));
  }
}

#if !defined(_WIN32)
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}
#endif

/// Writes header+payload to `path` atomically and durably: the bytes are
/// flushed to stable storage (fsync) *before* the rename, and the directory
/// entry is flushed after it — a crash at any instant leaves either the old
/// file or the complete new one, never a truncated rename target.
common::Status WriteFileDurably(const std::string& path,
                                const std::string& header,
                                const std::string& payload) {
  const std::string tmp_path = path + ".tmp";
#if defined(_WIN32)
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return common::Status::IoError("cannot open for write: " + tmp_path);
    }
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp_path.c_str());
      return common::Status::IoError("write failed: " + tmp_path);
    }
  }
#else
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::Status::IoError("cannot open for write: " + tmp_path);
  }
  if (!WriteAll(fd, header.data(), header.size()) ||
      !WriteAll(fd, payload.data(), payload.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return common::Status::IoError("write failed: " + tmp_path);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp_path.c_str());
    return common::Status::IoError("close failed: " + tmp_path);
  }
#endif
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return common::Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
#if !defined(_WIN32)
  // Flush the rename itself: without a directory fsync the new entry can
  // still be lost to a power cut. Opening a directory read-only can fail on
  // exotic filesystems — skip silently then; an fsync error on an open
  // directory fd is a real durability failure and is reported.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    const bool synced = ::fsync(dfd) == 0;
    ::close(dfd);
    if (!synced) {
      return common::Status::IoError("directory fsync failed for: " + path);
    }
  }
#endif
  return common::Status::OK();
}

}  // namespace

common::Status ReadCheckpointEnvelope(const std::string& path,
                                      uint32_t expected_version,
                                      std::string* payload) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open for read: " + path);

  char header[kHeaderBytes];
  in.read(header, static_cast<std::streamsize>(kHeaderBytes));
  if (!in) {
    return common::Status::IoError("truncated checkpoint header: " + path);
  }
  uint64_t magic_version = 0, payload_size = 0, crc_expected = 0;
  std::memcpy(&magic_version, header, sizeof(uint64_t));
  std::memcpy(&payload_size, header + sizeof(uint64_t), sizeof(uint64_t));
  std::memcpy(&crc_expected, header + 2 * sizeof(uint64_t), sizeof(uint64_t));
  if ((magic_version >> 32) != kMagic) {
    return common::Status::InvalidArgument("not a Fairwos checkpoint: " + path);
  }
  if ((magic_version & 0xFFFFFFFFu) != expected_version) {
    return common::Status::InvalidArgument(
        "unsupported checkpoint version " +
        std::to_string(magic_version & 0xFFFFFFFFu) + " (expected " +
        std::to_string(expected_version) + "): " + path);
  }

  // Validate the (untrusted) size field against the real file size before
  // allocating anything — a flipped bit in it must not become a huge alloc.
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (payload_size != file_size - kHeaderBytes) {
    return common::Status::IoError(
        "checkpoint size mismatch: header promises " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(file_size - kHeaderBytes) + ": " + path);
  }
  in.seekg(static_cast<std::streamoff>(kHeaderBytes));
  payload->assign(payload_size, '\0');
  in.read(payload->data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<uint64_t>(in.gcount()) != payload_size) {
    return common::Status::IoError("truncated checkpoint: " + path);
  }
  MaybeCorruptAfterRead(payload);
  const uint32_t crc_actual = common::Crc32(payload->data(), payload->size());
  if (crc_actual != static_cast<uint32_t>(crc_expected)) {
    return common::Status::IoError("checkpoint CRC mismatch (corrupt file): " +
                                   path);
  }
  return common::Status::OK();
}

common::Status WriteCheckpointEnvelope(const std::string& path,
                                       uint32_t version, std::string payload) {
  const uint64_t payload_size = payload.size();
  const uint32_t crc = common::Crc32(payload.data(), payload.size());
  MaybeCorruptForSave(&payload);
  std::string header;
  AppendU64(&header, (static_cast<uint64_t>(kMagic) << 32) | version);
  AppendU64(&header, payload_size);
  AppendU64(&header, crc);
  FW_RETURN_IF_ERROR(WriteFileDurably(path, header, payload));
  obs::MetricsRegistry::Global().GetCounter("checkpoint.saves")->Increment();
  obs::EmitEvent(
      obs::Event("checkpoint_save")
          .Set("path", path)
          .Set("version", static_cast<int64_t>(version))
          .Set("bytes", static_cast<int64_t>(kHeaderBytes + payload.size())));
  return common::Status::OK();
}

common::Status CheckParamsCompatible(
    const std::vector<tensor::Tensor>& params,
    const std::vector<std::vector<float>>& saved, const char* what) {
  if (saved.size() != params.size()) {
    return common::Status::FailedPrecondition(
        std::string("checkpoint ") + what + " holds " +
        std::to_string(saved.size()) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < saved.size(); ++i) {
    if (saved[i].size() != params[i].data().size()) {
      return common::Status::FailedPrecondition(
          std::string("checkpoint ") + what + " tensor " + std::to_string(i) +
          " has " + std::to_string(saved[i].size()) + " values, model wants " +
          std::to_string(params[i].data().size()));
    }
  }
  return common::Status::OK();
}

namespace {

/// Parses the rotation sequence number out of a `state-<seq>.fwck`
/// filename; returns -1 for anything else.
int64_t ParseRotationSeq(const std::string& filename) {
  const size_t prefix_len = sizeof(kRotationPrefix) - 1;
  const size_t suffix_len = sizeof(kRotationSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len ||
      filename.compare(0, prefix_len, kRotationPrefix) != 0 ||
      filename.compare(filename.size() - suffix_len, suffix_len,
                       kRotationSuffix) != 0) {
    return -1;
  }
  int64_t seq = 0;
  for (size_t i = prefix_len; i < filename.size() - suffix_len; ++i) {
    if (filename[i] < '0' || filename[i] > '9') return -1;
    seq = seq * 10 + (filename[i] - '0');
  }
  return seq;
}

}  // namespace

common::Status SaveCheckpoint(const std::string& path, const Module& module) {
  FW_TRACE_SPAN("checkpoint/save");
  std::string payload;
  AppendU64(&payload, module.parameters().size());
  for (const auto& p : module.parameters()) {
    AppendU64(&payload, p.shape().size());
    for (int64_t d : p.shape()) AppendU64(&payload, static_cast<uint64_t>(d));
    payload.append(reinterpret_cast<const char*>(p.data().data()),
                   p.data().size() * sizeof(float));
  }
  return WriteCheckpointEnvelope(path, kModuleVersion, std::move(payload));
}

common::Status LoadCheckpoint(const std::string& path, const Module& module) {
  std::string payload;
  FW_RETURN_IF_ERROR(ReadCheckpointEnvelope(path, kModuleVersion, &payload));

  // The payload is authenticated; a parse failure past this point means an
  // architecture mismatch or a malformed writer, not disk corruption.
  PayloadReader reader(payload);
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return common::Status::IoError("payload too short for header: " + path);
  }
  if (count != module.parameters().size()) {
    return common::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(module.parameters().size()));
  }
  // Stage everything first so a mismatch mid-payload leaves the module intact.
  std::vector<std::vector<float>> staged;
  staged.reserve(count);
  for (const auto& p : module.parameters()) {
    uint64_t rank = 0;
    if (!reader.ReadU64(&rank)) {
      return common::Status::IoError("payload ends inside a shape: " + path);
    }
    tensor::Shape shape(rank);
    for (auto& d : shape) {
      uint64_t v = 0;
      if (!reader.ReadU64(&v)) {
        return common::Status::IoError("payload ends inside a shape: " + path);
      }
      d = static_cast<int64_t>(v);
    }
    if (shape != p.shape()) {
      return common::Status::FailedPrecondition(
          "checkpoint shape " + tensor::ShapeToString(shape) +
          " does not match module shape " + tensor::ShapeToString(p.shape()));
    }
    std::vector<float> data(p.data().size());
    if (!reader.ReadFloats(&data)) {
      return common::Status::IoError("payload ends inside tensor data: " +
                                     path);
    }
    staged.push_back(std::move(data));
  }
  if (!reader.exhausted()) {
    return common::Status::IoError("payload has trailing bytes: " + path);
  }
  RestoreParameters(module, staged);
  return common::Status::OK();
}

common::Status SaveTrainState(const std::string& path,
                              const TrainState& state) {
  FW_TRACE_SPAN("checkpoint/save_train_state");
  FW_CHECK_EQ(state.optimizer.moment1.size(), state.optimizer.moment2.size());
  std::string payload;
  AppendU64(&payload, static_cast<uint64_t>(state.phase));
  AppendU64(&payload, static_cast<uint64_t>(state.epoch));
  for (uint64_t w : state.rng.words) AppendU64(&payload, w);
  AppendU64(&payload, state.rng.has_cached_normal ? 1 : 0);
  AppendF64(&payload, state.rng.cached_normal);
  AppendF32(&payload, state.optimizer.lr);
  AppendF32(&payload, state.optimizer.max_grad_norm);
  AppendU64(&payload, static_cast<uint64_t>(state.optimizer.step_count));
  AppendU64(&payload, state.optimizer.moment1.size());
  for (size_t i = 0; i < state.optimizer.moment1.size(); ++i) {
    FW_CHECK_EQ(state.optimizer.moment1[i].size(),
                state.optimizer.moment2[i].size());
    AppendU64(&payload, state.optimizer.moment1[i].size());
    AppendFloats(&payload, state.optimizer.moment1[i]);
    AppendFloats(&payload, state.optimizer.moment2[i]);
  }
  for (const auto* section : {&state.params, &state.blobs}) {
    AppendU64(&payload, section->size());
    for (const auto& v : *section) {
      AppendU64(&payload, v.size());
      AppendFloats(&payload, v);
    }
  }
  AppendU64(&payload, state.scalars.size());
  for (double s : state.scalars) AppendF64(&payload, s);
  AppendU64(&payload, state.counters.size());
  for (int64_t c : state.counters) {
    AppendU64(&payload, static_cast<uint64_t>(c));
  }
  return WriteCheckpointEnvelope(path, kTrainStateVersion, std::move(payload));
}

common::Status LoadTrainState(const std::string& path, TrainState* state) {
  FW_CHECK(state != nullptr);
  std::string payload;
  FW_RETURN_IF_ERROR(ReadCheckpointEnvelope(path, kTrainStateVersion, &payload));

  const auto malformed = [&path](const std::string& what) {
    return common::Status::IoError("payload ends inside " + what + ": " + path);
  };
  PayloadReader reader(payload);
  TrainState staged;
  uint64_t u = 0;
  if (!reader.ReadU64(&u)) return malformed("phase");
  staged.phase = static_cast<int64_t>(u);
  if (!reader.ReadU64(&u)) return malformed("epoch");
  staged.epoch = static_cast<int64_t>(u);
  for (auto& w : staged.rng.words) {
    if (!reader.ReadU64(&w)) return malformed("rng state");
  }
  if (!reader.ReadU64(&u)) return malformed("rng state");
  staged.rng.has_cached_normal = u != 0;
  if (!reader.ReadF64(&staged.rng.cached_normal)) return malformed("rng state");
  if (!reader.ReadF32(&staged.optimizer.lr) ||
      !reader.ReadF32(&staged.optimizer.max_grad_norm) ||
      !reader.ReadU64(&u)) {
    return malformed("optimizer state");
  }
  staged.optimizer.step_count = static_cast<int64_t>(u);
  uint64_t slots = 0;
  if (!reader.ReadU64(&slots)) return malformed("optimizer state");
  // The slot count is bounded by the payload itself (each slot costs at
  // least one u64), so a corrupt count cannot drive a huge reserve.
  if (slots > reader.remaining() / sizeof(uint64_t)) {
    return malformed("optimizer moments");
  }
  staged.optimizer.moment1.resize(slots);
  staged.optimizer.moment2.resize(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    uint64_t n = 0;
    if (!reader.ReadU64(&n)) return malformed("optimizer moments");
    if (reader.remaining() / sizeof(float) < 2 * n) {
      return malformed("optimizer moments");
    }
    staged.optimizer.moment1[i].resize(n);
    staged.optimizer.moment2[i].resize(n);
    if (!reader.ReadFloats(&staged.optimizer.moment1[i]) ||
        !reader.ReadFloats(&staged.optimizer.moment2[i])) {
      return malformed("optimizer moments");
    }
  }
  for (auto* section : {&staged.params, &staged.blobs}) {
    uint64_t count = 0;
    if (!reader.ReadU64(&count)) return malformed("tensor section");
    if (count > reader.remaining() / sizeof(uint64_t)) {
      return malformed("tensor section");
    }
    section->resize(count);
    for (auto& v : *section) {
      if (!reader.ReadSizedFloats(&v)) return malformed("tensor section");
    }
  }
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) return malformed("scalars");
  if (count > reader.remaining() / sizeof(double)) return malformed("scalars");
  staged.scalars.resize(count);
  for (auto& s : staged.scalars) {
    if (!reader.ReadF64(&s)) return malformed("scalars");
  }
  if (!reader.ReadU64(&count)) return malformed("counters");
  if (count > reader.remaining() / sizeof(uint64_t)) {
    return malformed("counters");
  }
  staged.counters.resize(count);
  for (auto& c : staged.counters) {
    if (!reader.ReadU64(&u)) return malformed("counters");
    c = static_cast<int64_t>(u);
  }
  if (!reader.exhausted()) {
    return common::Status::IoError("payload has trailing bytes: " + path);
  }
  *state = std::move(staged);
  return common::Status::OK();
}

CheckpointRotation::CheckpointRotation(std::string dir, int64_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  FW_CHECK(!dir_.empty());
  FW_CHECK_GE(keep_, 1);
}

std::vector<std::string> CheckpointRotation::ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const int64_t seq = ParseRotationSeq(entry.path().filename().string());
    if (seq >= 0) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [seq, path] : found) paths.push_back(std::move(path));
  return paths;
}

common::Status CheckpointRotation::Save(const TrainState& state) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return common::Status::IoError("cannot create checkpoint dir " + dir_ +
                                   ": " + ec.message());
  }
  if (next_seq_ < 0) {
    next_seq_ = 0;
    for (const auto& path : ListCheckpoints(dir_)) {
      const int64_t seq =
          ParseRotationSeq(std::filesystem::path(path).filename().string());
      if (seq >= next_seq_) next_seq_ = seq + 1;
    }
  }
  const std::string path =
      dir_ + "/" + kRotationPrefix +
      common::StrFormat("%06lld", static_cast<long long>(next_seq_)) +
      kRotationSuffix;
  FW_RETURN_IF_ERROR(SaveTrainState(path, state));
  ++next_seq_;
  auto existing = ListCheckpoints(dir_);
  for (size_t i = 0;
       i + static_cast<size_t>(keep_) < existing.size(); ++i) {
    std::filesystem::remove(existing[i], ec);  // best-effort prune
  }
  return common::Status::OK();
}

common::Result<TrainState> CheckpointRotation::LoadLatestValid() {
  auto files = ListCheckpoints(dir_);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    TrainState state;
    const common::Status status = LoadTrainState(*it, &state);
    if (status.ok()) {
      last_loaded_path_ = *it;
      return state;
    }
    // A torn or corrupt newer checkpoint is exactly what the rotation is
    // for: fall back to the previous slot, loudly.
    FW_LOG(Warning) << "checkpoint " << *it
                    << " is unusable, falling back to the previous slot: "
                    << status.ToString();
    obs::MetricsRegistry::Global().GetCounter("resume.fallbacks")->Increment();
    obs::EmitEvent(obs::Event("resume_fallback")
                       .Set("path", *it)
                       .Set("reason", status.ToString()));
  }
  return common::Status::NotFound("no valid checkpoint in " + dir_);
}

}  // namespace fairwos::nn
