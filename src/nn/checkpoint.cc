#include "nn/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace fairwos::nn {
namespace {

constexpr uint32_t kMagic = 0x46574350;  // "FWCP"
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytes = 3 * sizeof(uint64_t);

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Bounds-checked sequential reads from the verified payload buffer.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& buffer) : buffer_(buffer) {}

  bool ReadU64(uint64_t* v) {
    if (buffer_.size() - pos_ < sizeof(*v)) return false;
    std::memcpy(v, buffer_.data() + pos_, sizeof(*v));
    pos_ += sizeof(*v);
    return true;
  }

  bool ReadFloats(std::vector<float>* out) {
    const size_t bytes = out->size() * sizeof(float);
    if (buffer_.size() - pos_ < bytes) return false;
    std::memcpy(out->data(), buffer_.data() + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  bool exhausted() const { return pos_ == buffer_.size(); }

 private:
  const std::string& buffer_;
  size_t pos_ = 0;
};

}  // namespace

common::Status SaveCheckpoint(const std::string& path, const Module& module) {
  FW_TRACE_SPAN("checkpoint/save");
  std::string payload;
  AppendU64(&payload, module.parameters().size());
  for (const auto& p : module.parameters()) {
    AppendU64(&payload, p.shape().size());
    for (int64_t d : p.shape()) AppendU64(&payload, static_cast<uint64_t>(d));
    payload.append(reinterpret_cast<const char*>(p.data().data()),
                   p.data().size() * sizeof(float));
  }
  const uint64_t payload_size = payload.size();
  const uint32_t crc = common::Crc32(payload.data(), payload.size());

  // Fault-injection sites modelling a failing disk: the checksum above is of
  // the intended bytes, so either corruption is caught at load time.
  if (auto* fi = testing::ActiveFaultInjector(); fi != nullptr) {
    if (!payload.empty() &&
        fi->ShouldFire(testing::FaultSite::kCheckpointFlip)) {
      const auto offset = static_cast<size_t>(
          fi->rng()->UniformInt(static_cast<int64_t>(payload.size())));
      payload[offset] = static_cast<char>(
          payload[offset] ^ (1 << fi->rng()->UniformInt(8)));
    }
    if (fi->ShouldFire(testing::FaultSite::kCheckpointTruncate)) {
      payload.resize(payload.size() / 2);
    }
  }

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return common::Status::IoError("cannot open for write: " + tmp_path);
    }
    std::string header;
    AppendU64(&header, (static_cast<uint64_t>(kMagic) << 32) | kVersion);
    AppendU64(&header, payload_size);
    AppendU64(&header, crc);
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) {
      out.close();
      std::remove(tmp_path.c_str());
      return common::Status::IoError("write failed: " + tmp_path);
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return common::Status::IoError("cannot rename " + tmp_path + " to " + path);
  }
  obs::MetricsRegistry::Global().GetCounter("checkpoint.saves")->Increment();
  obs::EmitEvent(obs::Event("checkpoint_save")
                     .Set("path", path)
                     .Set("bytes", static_cast<int64_t>(kHeaderBytes +
                                                        payload.size())));
  return common::Status::OK();
}

common::Status LoadCheckpoint(const std::string& path, const Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open for read: " + path);

  char header[kHeaderBytes];
  in.read(header, static_cast<std::streamsize>(kHeaderBytes));
  if (!in) return common::Status::IoError("truncated checkpoint header: " + path);
  uint64_t magic_version = 0, payload_size = 0, crc_expected = 0;
  std::memcpy(&magic_version, header, sizeof(uint64_t));
  std::memcpy(&payload_size, header + sizeof(uint64_t), sizeof(uint64_t));
  std::memcpy(&crc_expected, header + 2 * sizeof(uint64_t), sizeof(uint64_t));
  if ((magic_version >> 32) != kMagic) {
    return common::Status::InvalidArgument("not a Fairwos checkpoint: " + path);
  }
  if ((magic_version & 0xFFFFFFFFu) != kVersion) {
    return common::Status::InvalidArgument(
        "unsupported checkpoint version " +
        std::to_string(magic_version & 0xFFFFFFFFu) + " (expected " +
        std::to_string(kVersion) + "): " + path);
  }

  // Validate the (untrusted) size field against the real file size before
  // allocating anything — a flipped bit in it must not become a huge alloc.
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  if (payload_size != file_size - kHeaderBytes) {
    return common::Status::IoError(
        "checkpoint size mismatch: header promises " +
        std::to_string(payload_size) + " payload bytes, file has " +
        std::to_string(file_size - kHeaderBytes) + ": " + path);
  }
  in.seekg(static_cast<std::streamoff>(kHeaderBytes));
  std::string payload(payload_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_size));
  if (static_cast<uint64_t>(in.gcount()) != payload_size) {
    return common::Status::IoError("truncated checkpoint: " + path);
  }
  const uint32_t crc_actual = common::Crc32(payload.data(), payload.size());
  if (crc_actual != static_cast<uint32_t>(crc_expected)) {
    return common::Status::IoError("checkpoint CRC mismatch (corrupt file): " +
                                   path);
  }

  // The payload is authenticated; a parse failure past this point means an
  // architecture mismatch or a malformed writer, not disk corruption.
  PayloadReader reader(payload);
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) {
    return common::Status::IoError("payload too short for header: " + path);
  }
  if (count != module.parameters().size()) {
    return common::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(module.parameters().size()));
  }
  // Stage everything first so a mismatch mid-payload leaves the module intact.
  std::vector<std::vector<float>> staged;
  staged.reserve(count);
  for (const auto& p : module.parameters()) {
    uint64_t rank = 0;
    if (!reader.ReadU64(&rank)) {
      return common::Status::IoError("payload ends inside a shape: " + path);
    }
    tensor::Shape shape(rank);
    for (auto& d : shape) {
      uint64_t v = 0;
      if (!reader.ReadU64(&v)) {
        return common::Status::IoError("payload ends inside a shape: " + path);
      }
      d = static_cast<int64_t>(v);
    }
    if (shape != p.shape()) {
      return common::Status::FailedPrecondition(
          "checkpoint shape " + tensor::ShapeToString(shape) +
          " does not match module shape " + tensor::ShapeToString(p.shape()));
    }
    std::vector<float> data(p.data().size());
    if (!reader.ReadFloats(&data)) {
      return common::Status::IoError("payload ends inside tensor data: " +
                                     path);
    }
    staged.push_back(std::move(data));
  }
  if (!reader.exhausted()) {
    return common::Status::IoError("payload has trailing bytes: " + path);
  }
  RestoreParameters(module, staged);
  return common::Status::OK();
}

}  // namespace fairwos::nn
