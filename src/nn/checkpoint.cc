#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace fairwos::nn {
namespace {

constexpr uint32_t kMagic = 0x46574350;  // "FWCP"
constexpr uint32_t kVersion = 1;

void WriteU64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::ifstream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

}  // namespace

common::Status SaveCheckpoint(const std::string& path, const Module& module) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return common::Status::IoError("cannot open for write: " + path);
  WriteU64(out, (static_cast<uint64_t>(kMagic) << 32) | kVersion);
  WriteU64(out, module.parameters().size());
  for (const auto& p : module.parameters()) {
    WriteU64(out, p.shape().size());
    for (int64_t d : p.shape()) WriteU64(out, static_cast<uint64_t>(d));
    out.write(reinterpret_cast<const char*>(p.data().data()),
              static_cast<std::streamsize>(p.data().size() * sizeof(float)));
  }
  if (!out) return common::Status::IoError("write failed: " + path);
  return common::Status::OK();
}

common::Status LoadCheckpoint(const std::string& path, const Module& module) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open for read: " + path);
  uint64_t header = 0;
  if (!ReadU64(in, &header) ||
      header != ((static_cast<uint64_t>(kMagic) << 32) | kVersion)) {
    return common::Status::InvalidArgument("not a Fairwos checkpoint: " + path);
  }
  uint64_t count = 0;
  if (!ReadU64(in, &count)) {
    return common::Status::IoError("truncated checkpoint: " + path);
  }
  if (count != module.parameters().size()) {
    return common::Status::FailedPrecondition(
        "checkpoint has " + std::to_string(count) + " parameters, module has " +
        std::to_string(module.parameters().size()));
  }
  // Stage everything first so a mismatch mid-file leaves the module intact.
  std::vector<std::vector<float>> staged;
  staged.reserve(count);
  for (const auto& p : module.parameters()) {
    uint64_t rank = 0;
    if (!ReadU64(in, &rank)) {
      return common::Status::IoError("truncated checkpoint: " + path);
    }
    tensor::Shape shape(rank);
    for (auto& d : shape) {
      uint64_t v = 0;
      if (!ReadU64(in, &v)) {
        return common::Status::IoError("truncated checkpoint: " + path);
      }
      d = static_cast<int64_t>(v);
    }
    if (shape != p.shape()) {
      return common::Status::FailedPrecondition(
          "checkpoint shape " + tensor::ShapeToString(shape) +
          " does not match module shape " + tensor::ShapeToString(p.shape()));
    }
    std::vector<float> data(p.data().size());
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) return common::Status::IoError("truncated checkpoint: " + path);
    staged.push_back(std::move(data));
  }
  RestoreParameters(module, staged);
  return common::Status::OK();
}

}  // namespace fairwos::nn
