// The one prediction type of the repository: what any trained model — a
// live FairMethod run, a FittedModel, or a restored .fwmodel artifact —
// produces for a dataset. Replaces the former core::MethodOutput /
// nn::PredictionResult pair (docs/serving.md, "Fit/Predict migration").
#ifndef FAIRWOS_NN_PREDICTION_H_
#define FAIRWOS_NN_PREDICTION_H_

#include <vector>

#include "tensor/tensor.h"

namespace fairwos::nn {

/// Predictions for every node of a dataset (train/val/test alike).
struct PredictionResult {
  /// Hard predictions (argmax), one per node.
  std::vector<int> pred;
  /// P(y = 1) per node; used for AUC.
  std::vector<float> prob1;
  /// Final node representations [N, hidden]; may be undefined for methods
  /// that do not expose one.
  tensor::Tensor embeddings;
  /// Pseudo-sensitive attributes X⁰ [N, I]; defined only for the
  /// encoder-based methods (visualised by the Fig. 7 bench).
  tensor::Tensor pseudo_sens;
  /// Wall-clock fit time, for the Fig. 8 runtime comparison; 0 when the
  /// producing model's fit time is unknown (e.g. a restored artifact).
  double train_seconds = 0.0;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_PREDICTION_H_
