// Base class for trainable components: tracks parameter tensors so that
// optimizers and checkpoints can treat models uniformly.
#ifndef FAIRWOS_NN_MODULE_H_
#define FAIRWOS_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace fairwos::nn {

/// A trainable component. Subclasses register their parameters (and
/// submodules) in their constructor; `parameters()` then exposes every
/// trainable tensor for the optimizer.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // Movable so that layers can live in std::vector. Parameter handles share
  // storage, so moves never invalidate optimizer references.
  Module(Module&&) = default;
  Module& operator=(Module&&) = default;

  /// All trainable tensors, including those of registered submodules.
  /// Handles share storage with the module, so optimizer updates are seen
  /// by subsequent forward passes.
  const std::vector<tensor::Tensor>& parameters() const { return params_; }

  /// Clears accumulated gradients on every parameter.
  void ZeroGrad() {
    for (auto& p : params_) {
      tensor::Tensor(p).ZeroGrad();
    }
  }

  /// Total number of trainable scalars.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const auto& p : params_) n += p.numel();
    return n;
  }

 protected:
  Module() = default;

  /// Registers a leaf parameter; returns the handle for the caller to keep.
  tensor::Tensor RegisterParameter(tensor::Tensor t) {
    t.set_requires_grad(true);
    params_.push_back(t);
    return t;
  }

  /// Makes a submodule's parameters visible through this module.
  void RegisterSubmodule(const Module& m) {
    for (const auto& p : m.parameters()) params_.push_back(p);
  }

 private:
  std::vector<tensor::Tensor> params_;
};

/// Copies every parameter's values; pairs with RestoreParameters for
/// "keep the best validation epoch" checkpointing.
inline std::vector<std::vector<float>> SnapshotParameters(const Module& m) {
  std::vector<std::vector<float>> snapshot;
  snapshot.reserve(m.parameters().size());
  for (const auto& p : m.parameters()) {
    snapshot.emplace_back(p.data().begin(), p.data().end());
  }
  return snapshot;
}

/// Restores values captured by SnapshotParameters into the same module.
inline void RestoreParameters(const Module& m,
                              const std::vector<std::vector<float>>& snapshot) {
  FW_CHECK_EQ(m.parameters().size(), snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    tensor::Tensor p = m.parameters()[i];
    FW_CHECK_EQ(p.data().size(), snapshot[i].size());
    p.mutable_data().assign(snapshot[i].begin(), snapshot[i].end());
  }
}

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_MODULE_H_
