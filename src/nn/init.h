// Weight initialization schemes.
#ifndef FAIRWOS_NN_INIT_H_
#define FAIRWOS_NN_INIT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace fairwos::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// The default for linear and graph-convolution weights.
tensor::Tensor GlorotUniform(int64_t fan_in, int64_t fan_out,
                             common::Rng* rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)); used before ReLU stacks.
tensor::Tensor HeNormal(int64_t fan_in, int64_t fan_out, common::Rng* rng);

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_INIT_H_
