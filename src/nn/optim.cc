#include "nn/optim.h"

#include <cmath>
#include <limits>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "nn/guard.h"

namespace fairwos::nn {

void Optimizer::Step() {
  FW_TRACE_SPAN("optimizer/step");
  // Registry lookup once per process; afterwards one relaxed atomic add.
  static obs::Counter* steps =
      obs::MetricsRegistry::Global().GetCounter("optimizer.steps");
  steps->Increment();
  PrepareStep();
  StepImpl();
  FinishStep();
}

void Optimizer::PrepareStep() {
  if (auto* fi = testing::ActiveFaultInjector();
      fi != nullptr && fi->ShouldFire(testing::FaultSite::kGradient)) {
    // Poison one element of the first live gradient, as a bad kernel or
    // flipped exponent bit would.
    for (auto& p : params_) {
      auto& grad = p.mutable_grad();
      if (grad.empty()) continue;
      grad[static_cast<size_t>(fi->rng()->UniformInt(
          static_cast<int64_t>(grad.size())))] =
          std::numeric_limits<float>::quiet_NaN();
      break;
    }
  }
  if (max_grad_norm_ > 0.0f) {
    ClipGradNorm(params_, static_cast<double>(max_grad_norm_));
  }
}

void Optimizer::FinishStep() {
  if (auto* fi = testing::ActiveFaultInjector();
      fi != nullptr && fi->ShouldFire(testing::FaultSite::kParameter)) {
    for (auto& p : params_) {
      auto& data = p.mutable_data();
      if (data.empty()) continue;
      data[static_cast<size_t>(fi->rng()->UniformInt(
          static_cast<int64_t>(data.size())))] =
          std::numeric_limits<float>::quiet_NaN();
      break;
    }
  }
}

OptimizerState Optimizer::ExportState() const {
  OptimizerState state;
  state.lr = lr_;
  state.max_grad_norm = max_grad_norm_;
  return state;
}

common::Status Optimizer::ImportState(const OptimizerState& state) {
  if (state.lr <= 0.0f) {
    return common::Status::FailedPrecondition(
        "optimizer state has non-positive lr");
  }
  lr_ = state.lr;
  max_grad_norm_ = state.max_grad_norm;
  return common::Status::OK();
}

Sgd::Sgd(std::vector<tensor::Tensor> params, float lr, float weight_decay)
    : Optimizer(std::move(params), lr), weight_decay_(weight_decay) {}

void Sgd::StepImpl() {
  for (auto& p : params_) {
    if (p.grad().empty()) continue;  // never received a gradient
    auto& data = p.mutable_data();
    const auto& grad = p.grad();
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] -= lr_ * (grad[i] + weight_decay_ * data[i]);
    }
  }
}

Adam::Adam(std::vector<tensor::Tensor> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].data().size(), 0.0f);
    v_[i].assign(params_[i].data().size(), 0.0f);
  }
}

void Adam::ResetState() {
  t_ = 0;
  for (auto& m : m_) m.assign(m.size(), 0.0f);
  for (auto& v : v_) v.assign(v.size(), 0.0f);
}

OptimizerState Adam::ExportState() const {
  OptimizerState state = Optimizer::ExportState();
  state.step_count = t_;
  state.moment1 = m_;
  state.moment2 = v_;
  return state;
}

common::Status Adam::ImportState(const OptimizerState& state) {
  if (state.moment1.size() != m_.size() || state.moment2.size() != v_.size()) {
    return common::Status::FailedPrecondition(
        "Adam state covers " + std::to_string(state.moment1.size()) +
        " parameters, optimizer has " + std::to_string(m_.size()));
  }
  for (size_t i = 0; i < m_.size(); ++i) {
    if (state.moment1[i].size() != m_[i].size() ||
        state.moment2[i].size() != v_[i].size()) {
      return common::Status::FailedPrecondition(
          "Adam moment " + std::to_string(i) + " has " +
          std::to_string(state.moment1[i].size()) + " elements, expected " +
          std::to_string(m_[i].size()));
    }
  }
  FW_RETURN_IF_ERROR(Optimizer::ImportState(state));
  t_ = state.step_count;
  m_ = state.moment1;
  v_ = state.moment2;
  return common::Status::OK();
}

void Adam::StepImpl() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& data = p.mutable_data();
    const auto& grad = p.grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      const float g = grad[j] + weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace fairwos::nn
