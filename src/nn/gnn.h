// Graph neural network layers and the two backbones the paper evaluates
// (GCN and GIN), plus the node-classification head used everywhere.
#ifndef FAIRWOS_NN_GNN_H_
#define FAIRWOS_NN_GNN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/prediction.h"

namespace fairwos::nn {

/// The GNN backbone family. Fairwos is backbone-agnostic (paper §III-C);
/// GCN and GIN appear in Table II, GraphSAGE and GAT are the extension
/// backbones the paper's related-work section motivates.
enum class Backbone { kGcn, kGin, kSage, kGat };

/// Parses "gcn" / "gin" / "sage" / "gat" (case-sensitive, CLI convention).
common::Result<Backbone> ParseBackbone(const std::string& name);
const char* BackboneName(Backbone backbone);

/// The adjacency operator `backbone`'s layers aggregate with, built from
/// `g` — the same operator GnnEncoder captures at construction. Exposed so
/// dynamic-graph serving (and verification passes) can rebuild it for a
/// mutated graph and run the encoder via ForwardWith.
std::shared_ptr<const tensor::SparseMatrix> AdjacencyForBackbone(
    Backbone backbone, const graph::Graph& g);

/// One GCN layer: H' = Â H W + b with Â the symmetric-normalized adjacency
/// (paper Eq. 7-8 instantiated as in Kipf & Welling).
class GcnConv : public Module {
 public:
  GcnConv(int64_t in_features, int64_t out_features, common::Rng* rng);

  tensor::Tensor Forward(
      const std::shared_ptr<const tensor::SparseMatrix>& adj_norm,
      const tensor::Tensor& x) const;

 private:
  Linear linear_;
};

/// One GIN layer: H' = MLP((1 + eps) H + A H); eps fixed at construction.
class GinConv : public Module {
 public:
  GinConv(int64_t in_features, int64_t out_features, float eps,
          common::Rng* rng);

  tensor::Tensor Forward(
      const std::shared_ptr<const tensor::SparseMatrix>& adj_plain,
      const tensor::Tensor& x, bool training, common::Rng* rng) const;

 private:
  Mlp mlp_;
  float eps_;
};

/// One GraphSAGE layer (mean aggregator):
/// H' = l2norm(W_self H + W_neigh · mean_{u∈N(v)} H_u).
class SageConv : public Module {
 public:
  SageConv(int64_t in_features, int64_t out_features, bool normalize,
           common::Rng* rng);

  tensor::Tensor Forward(
      const std::shared_ptr<const tensor::SparseMatrix>& neighbor_mean,
      const tensor::Tensor& x) const;

 private:
  Linear self_linear_;
  Linear neighbor_linear_;
  bool normalize_;
};

/// One multi-head GAT layer (Velickovic et al.): per head h,
///   e_vu = LeakyReLU(a_dstᵀ W_h x_v + a_srcᵀ W_h x_u),
///   out_v = Σ_{u∈N⁺(v)} softmax_u(e_vu) · W_h x_u,
/// heads concatenated. out_features must be divisible by `heads`.
class GatConv : public Module {
 public:
  GatConv(int64_t in_features, int64_t out_features, int64_t heads,
          float negative_slope, common::Rng* rng);

  tensor::Tensor Forward(
      const std::shared_ptr<const tensor::SparseMatrix>& adj_self_loops,
      const tensor::Tensor& x) const;

 private:
  struct Head {
    Linear linear;
    tensor::Tensor att_dst;  // [out/heads, 1]
    tensor::Tensor att_src;  // [out/heads, 1]
  };
  std::vector<Head> heads_;
  float negative_slope_;
};

/// Configuration shared by every GNN model in the repository.
struct GnnConfig {
  Backbone backbone = Backbone::kGcn;
  int64_t in_features = 0;
  int64_t hidden = 16;   // paper §V-A4: hidden unit number 16
  int64_t num_layers = 1;  // paper §V-A4: layer number 1
  int64_t num_classes = 2;
  float dropout = 0.5f;
  float gin_eps = 0.0f;
  bool sage_normalize = true;  // L2-normalize SAGE layer outputs
  int64_t gat_heads = 2;       // attention heads (hidden % heads == 0)
  float gat_negative_slope = 0.2f;
};

/// A stack of graph convolutions producing node representations h (the
/// f_G of paper §III-E). The adjacency operators are captured at
/// construction since the graph is fixed per dataset.
class GnnEncoder : public Module {
 public:
  GnnEncoder(const GnnConfig& config, const graph::Graph& g,
             common::Rng* rng);

  /// x: [N, in_features] -> [N, hidden].
  tensor::Tensor Forward(const tensor::Tensor& x, bool training,
                         common::Rng* rng) const;

  /// Same stack, but aggregating over an explicit adjacency operator
  /// instead of the one captured at construction — the dynamic-graph
  /// serving path (`adj` must be AdjacencyForBackbone-compatible with this
  /// encoder's backbone; its node count may differ from the construction
  /// graph's). Forward(x, ...) ≡ ForwardWith(captured_adj, x, ...).
  tensor::Tensor ForwardWith(
      const std::shared_ptr<const tensor::SparseMatrix>& adj,
      const tensor::Tensor& x, bool training, common::Rng* rng) const;

  int64_t hidden() const { return config_.hidden; }
  const GnnConfig& config() const { return config_; }

 private:
  GnnConfig config_;
  std::shared_ptr<const tensor::SparseMatrix> adj_;  // backbone-specific
  std::vector<GcnConv> gcn_layers_;
  std::vector<GinConv> gin_layers_;
  std::vector<SageConv> sage_layers_;
  std::vector<GatConv> gat_layers_;
};

/// GNN encoder + linear classification head (paper Eq. 9). Exposes both the
/// representation h and the logits so fairness losses can hook h.
class GnnClassifier : public Module {
 public:
  GnnClassifier(const GnnConfig& config, const graph::Graph& g,
                common::Rng* rng);

  /// Node representations h: [N, hidden].
  tensor::Tensor Embed(const tensor::Tensor& x, bool training,
                       common::Rng* rng) const;

  /// Class logits from a representation: [N, num_classes].
  tensor::Tensor Logits(const tensor::Tensor& h) const;

  /// Convenience: Logits(Embed(x)).
  tensor::Tensor Forward(const tensor::Tensor& x, bool training,
                         common::Rng* rng) const;

  /// Logits over an explicit adjacency operator (see
  /// GnnEncoder::ForwardWith) — one eval pass of the dynamic-graph
  /// serving path.
  tensor::Tensor ForwardWith(
      const std::shared_ptr<const tensor::SparseMatrix>& adj,
      const tensor::Tensor& x, bool training, common::Rng* rng) const;

  const GnnEncoder& encoder() const { return encoder_; }

 private:
  GnnEncoder encoder_;
  Linear head_;
};

/// Hard predictions (argmax) and P(class 1) from logits, computed without
/// touching the tape. Only `pred` and `prob1` are filled; callers that
/// expose embeddings or pseudo-attributes add them afterwards.
PredictionResult PredictFromLogits(const tensor::Tensor& logits);

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_GNN_H_
