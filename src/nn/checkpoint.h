// Model checkpointing: serialize a Module's parameters to a small binary
// file and restore them into an identically-constructed module.
//
// Format v2 (little-endian, see docs/robustness.md):
//   u64  (magic "FWCP" << 32) | version
//   u64  payload byte size
//   u64  CRC-32 of the payload (zero-extended)
//   payload:
//     u64  parameter count
//     per parameter: u64 rank, u64 dims..., float32 data
//
// Robustness guarantees:
//   * Saves are atomic: the file is written to `<path>.tmp` and renamed into
//     place, so a crash mid-save never leaves a half-written checkpoint at
//     `path`.
//   * Loads verify the header and the payload CRC before touching the
//     module; a truncated or bit-flipped file is rejected with a precise
//     Status and the module keeps its current parameters. Load never
//     FW_CHECK-aborts on malformed input.
//
// Status codes returned by LoadCheckpoint:
//   InvalidArgument     wrong magic or unsupported version
//   IoError             unreadable, truncated, size-mismatched, or
//                       CRC-mismatched (corrupt) file
//   FailedPrecondition  well-formed checkpoint whose parameter count or
//                       shapes do not match the module
#ifndef FAIRWOS_NN_CHECKPOINT_H_
#define FAIRWOS_NN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace fairwos::nn {

/// Writes every parameter tensor to `path` (atomically; overwrites existing
/// files).
common::Status SaveCheckpoint(const std::string& path, const Module& module);

/// Restores parameters saved by SaveCheckpoint. The module must have the
/// same parameter count and shapes (i.e. be built from the same config).
/// On any error the module is left untouched.
common::Status LoadCheckpoint(const std::string& path, const Module& module);

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_CHECKPOINT_H_
