// Model checkpointing: serialize a Module's parameters to a small binary
// file and restore them into an identically-constructed module — plus the
// durable crash-resume layer (docs/resume.md): full-training-state v3
// checkpoints, rotating keep-N retention, and latest-valid selection.
//
// Format v2 (little-endian, see docs/robustness.md):
//   u64  (magic "FWCP" << 32) | version
//   u64  payload byte size
//   u64  CRC-32 of the payload (zero-extended)
//   payload:
//     u64  parameter count
//     per parameter: u64 rank, u64 dims..., float32 data
//
// Format v3 shares the header and CRC envelope; its payload serializes a
// complete TrainState (see the struct below for the field order).
//
// Robustness guarantees:
//   * Saves are atomic AND durable: the file is written to `<path>.tmp`,
//     flushed to stable storage (fsync of the file and its directory), and
//     renamed into place — a crash at any instant leaves either the old
//     checkpoint or the complete new one, never a torn file.
//   * Loads verify the header and the payload CRC before touching any
//     caller state; a truncated or bit-flipped file is rejected with a
//     precise Status. Load never FW_CHECK-aborts on malformed input.
//   * Both the save path and the read path carry fairwos::testing fault-
//     injection hooks (kCheckpointFlip / kCheckpointTruncate /
//     kCheckpointRead) so tests can prove the CRC catches disk and bus
//     corruption in either direction.
//
// Status codes returned by the load functions:
//   InvalidArgument     wrong magic or unsupported version
//   IoError             unreadable, truncated, size-mismatched, or
//                       CRC-mismatched (corrupt) file
//   FailedPrecondition  well-formed checkpoint whose parameter count or
//                       shapes do not match the module
#ifndef FAIRWOS_NN_CHECKPOINT_H_
#define FAIRWOS_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/module.h"
#include "nn/optim.h"

namespace fairwos::nn {

// --------------------------------------------------------------------------
// FWCP envelope — shared by all checkpoint-family codecs
// --------------------------------------------------------------------------

/// Envelope versions in use. v2/v3 are implemented here; v4 is the frozen
/// model artifact (serve/artifact.h), which reuses the same envelope.
inline constexpr uint32_t kModuleCheckpointVersion = 2;
inline constexpr uint32_t kTrainStateCheckpointVersion = 3;
inline constexpr uint32_t kModelArtifactVersion = 4;

/// Writes `payload` to `path` inside the FWCP magic/size/CRC header,
/// atomically and durably (tmp file + fsync + rename + directory fsync).
/// Carries the kCheckpointFlip/kCheckpointTruncate write-path fault hooks.
common::Status WriteCheckpointEnvelope(const std::string& path,
                                       uint32_t version, std::string payload);

/// Reads and authenticates an FWCP file: validates the magic, the exact
/// `expected_version`, the size field, and the payload CRC before any byte
/// reaches the caller. Carries the kCheckpointRead read-path fault hook.
/// Errors follow the Status contract in the header comment above.
common::Status ReadCheckpointEnvelope(const std::string& path,
                                      uint32_t expected_version,
                                      std::string* payload);

/// Validates a snapshot (or any per-parameter float blob list) against a
/// module's parameters — count and per-tensor element count — so that
/// RestoreParameters (which FW_CHECK-aborts on mismatch) only ever sees
/// compatible data. `what` names the section in the error message.
common::Status CheckParamsCompatible(
    const std::vector<tensor::Tensor>& params,
    const std::vector<std::vector<float>>& saved, const char* what);

/// Writes every parameter tensor to `path` (atomically and durably;
/// overwrites existing files).
common::Status SaveCheckpoint(const std::string& path, const Module& module);

/// Restores parameters saved by SaveCheckpoint. The module must have the
/// same parameter count and shapes (i.e. be built from the same config).
/// On any error the module is left untouched.
common::Status LoadCheckpoint(const std::string& path, const Module& module);

// --------------------------------------------------------------------------
// Durable crash-resume (docs/resume.md)
// --------------------------------------------------------------------------

/// The complete state of an interrupted training loop, serialized as a v3
/// checkpoint. Restoring every field at an epoch boundary makes the resumed
/// run bit-identical to an uninterrupted one: the module parameters, the
/// optimizer moments, the RNG stream, and the loop's own bookkeeping all
/// continue exactly where they stopped.
///
/// `params` carries the module parameters; `blobs`, `scalars`, and
/// `counters` are loop-defined sections (best-model snapshots, frozen
/// pseudo-attributes, early-stopping counters, ...) whose layout each
/// training loop documents at its pack/unpack site. The checkpoint layer
/// only guarantees their faithful round trip.
struct TrainState {
  /// Loop-defined phase id (core::TrainFairwos: 1 = classifier pre-train,
  /// 2 = fairness fine-tune; baselines::TrainClassifier: 0).
  int64_t phase = 0;
  /// Next epoch to run within the phase.
  int64_t epoch = 0;
  common::RngState rng;
  OptimizerState optimizer;
  std::vector<std::vector<float>> params;
  std::vector<std::vector<float>> blobs;
  std::vector<double> scalars;
  std::vector<int64_t> counters;
};

/// Writes `state` to `path` as a v3 checkpoint (atomic + durable, like
/// SaveCheckpoint).
common::Status SaveTrainState(const std::string& path,
                              const TrainState& state);

/// Reads a v3 checkpoint. `state` is written only on success.
common::Status LoadTrainState(const std::string& path, TrainState* state);

/// Rotating keep-N retention over a checkpoint directory. Files are named
/// `state-<seq>.fwck` with a strictly increasing sequence number that
/// survives process restarts (the directory is scanned on first use), so
/// "newest" is well defined even across crashes.
class CheckpointRotation {
 public:
  /// `keep` >= 1: how many most-recent checkpoints Save retains.
  CheckpointRotation(std::string dir, int64_t keep = 3);

  /// Writes `state` to the next slot, then prunes all but the newest
  /// `keep` checkpoints. Creates the directory if needed.
  common::Status Save(const TrainState& state);

  /// Loads the newest checkpoint that parses and passes its CRC. A damaged
  /// newer file falls back to the previous slot, emitting one
  /// `resume_fallback` telemetry event (and a `resume.fallbacks` counter
  /// tick) per rejected file. NotFound when the directory holds no valid
  /// checkpoint at all.
  common::Result<TrainState> LoadLatestValid();

  /// Path of the checkpoint LoadLatestValid returned; empty before a
  /// successful load. Diagnostic for logs and the `resume` event.
  const std::string& last_loaded_path() const { return last_loaded_path_; }

  /// Checkpoint files under `dir`, sorted oldest-first by sequence number.
  /// Non-checkpoint files are ignored.
  static std::vector<std::string> ListCheckpoints(const std::string& dir);

 private:
  std::string dir_;
  int64_t keep_;
  int64_t next_seq_ = -1;  // lazily initialised from the directory listing
  std::string last_loaded_path_;
};

/// Crash-resume knobs shared by every resumable training loop
/// (core::FairwosConfig, baselines::TrainOptions).
struct CheckpointOptions {
  /// Directory for rotating TrainState checkpoints; empty disables the
  /// whole subsystem (zero overhead on the training loop).
  std::string dir;
  /// Save every N completed epochs; <= 0 saves only the graceful final
  /// checkpoint written when a Deadline expires.
  int64_t every = 0;
  /// Rotation depth passed to CheckpointRotation.
  int64_t keep = 3;
  /// Resume from the latest valid checkpoint in `dir` before training; a
  /// fresh start when the directory holds none.
  bool resume = false;

  bool enabled() const { return !dir.empty(); }
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_CHECKPOINT_H_
