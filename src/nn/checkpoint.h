// Model checkpointing: serialize a Module's parameters to a small binary
// file and restore them into an identically-constructed module. The format
// is self-describing enough to fail loudly on architecture mismatches.
#ifndef FAIRWOS_NN_CHECKPOINT_H_
#define FAIRWOS_NN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace fairwos::nn {

/// Writes every parameter tensor (shapes + float32 data, little-endian) to
/// `path`. Overwrites existing files.
common::Status SaveCheckpoint(const std::string& path, const Module& module);

/// Restores parameters saved by SaveCheckpoint. The module must have the
/// same parameter count and shapes (i.e. be built from the same config);
/// mismatches return FailedPrecondition and leave the module untouched.
common::Status LoadCheckpoint(const std::string& path, const Module& module);

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_CHECKPOINT_H_
