// First-order optimizers over Module parameters. The paper trains with Adam
// (lr = 0.001, §V-A4); SGD is kept for tests and ablations.
#ifndef FAIRWOS_NN_OPTIM_H_
#define FAIRWOS_NN_OPTIM_H_

#include <vector>

#include "tensor/tensor.h"

namespace fairwos::nn {

/// Interface: Step() applies one update from the gradients currently
/// accumulated on the parameters; ZeroGrad() clears them.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void Step() = 0;

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

 protected:
  std::vector<tensor::Tensor> params_;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, float lr, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_OPTIM_H_
