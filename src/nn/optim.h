// First-order optimizers over Module parameters. The paper trains with Adam
// (lr = 0.001, §V-A4); SGD is kept for tests and ablations.
//
// Robustness hooks (docs/robustness.md): every optimizer supports global-
// norm gradient clipping (set_max_grad_norm) applied at the top of Step(),
// and a mutable learning rate (set_lr) so the self-healing training loops
// can decay it when recovering from a divergence. Step() also carries the
// fairwos::testing fault-injection sites for gradients and parameters.
#ifndef FAIRWOS_NN_OPTIM_H_
#define FAIRWOS_NN_OPTIM_H_

#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace fairwos::nn {

/// Complete serializable optimizer state, captured by ExportState and
/// replayed by ImportState so a crash-resumed run continues with the exact
/// update dynamics of the interrupted one (docs/resume.md). SGD uses only
/// the base fields; Adam adds its step count and per-parameter moments.
struct OptimizerState {
  float lr = 0.0f;
  float max_grad_norm = 0.0f;
  int64_t step_count = 0;
  std::vector<std::vector<float>> moment1;  // Adam m, one entry per parameter
  std::vector<std::vector<float>> moment2;  // Adam v, one entry per parameter
};

/// Interface: Step() applies one update from the gradients currently
/// accumulated on the parameters; ZeroGrad() clears them.
class Optimizer {
 public:
  Optimizer(std::vector<tensor::Tensor> params, float lr)
      : params_(std::move(params)), lr_(lr) {
    FW_CHECK_GT(lr_, 0.0f);
  }
  virtual ~Optimizer() = default;

  /// Applies one update. Wraps the subclass update in an "optimizer/step"
  /// trace span and bumps the `optimizer.steps` counter (obs layer).
  void Step();

  void ZeroGrad() {
    for (auto& p : params_) p.ZeroGrad();
  }

  /// Current learning rate; mutable so recovery policies can decay it
  /// mid-training without rebuilding the optimizer (moments are kept).
  float lr() const { return lr_; }
  void set_lr(float lr) {
    FW_CHECK_GT(lr, 0.0f);
    lr_ = lr;
  }

  /// Global-norm gradient clipping applied at the top of every Step();
  /// <= 0 (the default) disables it.
  float max_grad_norm() const { return max_grad_norm_; }
  void set_max_grad_norm(float max_norm) { max_grad_norm_ = max_norm; }

  /// Discards internal optimizer state (Adam moments, step count). The
  /// self-healing recovery path calls this: moments that absorbed a NaN
  /// gradient stay NaN forever and would re-poison every later step.
  virtual void ResetState() {}

  /// Captures every mutable knob and buffer for checkpointing. The base
  /// implementation covers lr and the clip norm; stateful subclasses
  /// append their buffers.
  virtual OptimizerState ExportState() const;

  /// Restores state captured by ExportState on an optimizer built over the
  /// same parameters. FailedPrecondition when buffer shapes do not match;
  /// the optimizer is left untouched on error.
  virtual common::Status ImportState(const OptimizerState& state);

 protected:
  /// The subclass update rule, invoked by Step() between PrepareStep() and
  /// FinishStep().
  virtual void StepImpl() = 0;

  /// Runs the fault-injection gradient hook and clipping; Step() calls
  /// this before StepImpl().
  void PrepareStep();

  /// Runs the fault-injection parameter hook; Step() calls this after
  /// StepImpl().
  void FinishStep();

  std::vector<tensor::Tensor> params_;
  float lr_;
  float max_grad_norm_ = 0.0f;
};

/// Plain SGD with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, float lr, float weight_decay = 0.0f);

 protected:
  void StepImpl() override;

 private:
  float weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void ResetState() override;
  OptimizerState ExportState() const override;
  common::Status ImportState(const OptimizerState& state) override;

 protected:
  void StepImpl() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_OPTIM_H_
