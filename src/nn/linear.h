// Dense affine layer and a small multilayer perceptron.
#ifndef FAIRWOS_NN_LINEAR_H_
#define FAIRWOS_NN_LINEAR_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace fairwos::nn {

/// y = x · W + b, with Glorot-initialised W [in, out] and zero bias.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, common::Rng* rng);

  /// x: [N, in] -> [N, out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t in_features() const { return weight_.dim(0); }
  int64_t out_features() const { return weight_.dim(1); }

  const tensor::Tensor& weight() const { return weight_; }
  const tensor::Tensor& bias() const { return bias_; }

 private:
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

/// Fully connected stack: Linear -> ReLU -> [Dropout] -> ... -> Linear.
/// The final layer has no activation.
class Mlp : public Module {
 public:
  /// `dims` = {in, hidden..., out}; needs at least one layer (size >= 2).
  Mlp(const std::vector<int64_t>& dims, float dropout, common::Rng* rng);

  /// x: [N, dims.front()] -> [N, dims.back()]. `rng` is only consulted when
  /// `training` and dropout > 0.
  tensor::Tensor Forward(const tensor::Tensor& x, bool training,
                         common::Rng* rng) const;

 private:
  std::vector<Linear> layers_;
  float dropout_;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_LINEAR_H_
