// Numerical guardrails and self-healing for training loops.
//
// GradientGuard is the detection layer: it scans the loss, every parameter
// gradient, and every parameter value for NaN/Inf after each step.
// SelfHealing is the recovery layer: it keeps a rolling last-known-good
// parameter snapshot and, when the guard trips, rolls the model back,
// halves the learning rate, enables gradient clipping, and lets the caller
// retry the step — up to a bounded retry budget, after which the caller
// degrades gracefully (core/fairwos falls back to the pre-trained
// classifier). Policy details: docs/robustness.md.
#ifndef FAIRWOS_NN_GUARD_H_
#define FAIRWOS_NN_GUARD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"
#include "nn/optim.h"
#include "tensor/tensor.h"

namespace fairwos::nn {

/// Global L2 norm over every parameter gradient (parameters that never
/// received a gradient contribute zero).
double GlobalGradNorm(const std::vector<tensor::Tensor>& params);

/// Scales all gradients by max_norm / norm when the global norm exceeds
/// `max_norm` (> 0). Returns the pre-clip norm. A non-finite norm is left
/// untouched — scaling NaN hides it from the guard instead of fixing it.
double ClipGradNorm(const std::vector<tensor::Tensor>& params,
                    double max_norm);

/// Detects NaN/Inf in the loss, gradients, and parameters of one model.
/// All checks return OK or Internal with a precise description.
class GradientGuard {
 public:
  explicit GradientGuard(std::vector<tensor::Tensor> params)
      : params_(std::move(params)) {}

  common::Status CheckLoss(double loss) const;
  common::Status CheckGradients() const;
  common::Status CheckParameters() const;

 private:
  std::vector<tensor::Tensor> params_;
};

/// Rollback-and-retry policy knobs, embedded in FairwosConfig/TrainOptions.
struct RecoveryConfig {
  /// Divergences tolerated before the loop gives up (0 disables recovery:
  /// the first divergence immediately exhausts the budget).
  int64_t max_retries = 3;
  /// Learning-rate multiplier applied on every recovery.
  double lr_decay = 0.5;
  /// Global-norm gradient clip enabled on the optimizer after the first
  /// divergence — steady-state steps run unclipped unless the caller also
  /// sets Optimizer::set_max_grad_norm themselves.
  double retry_clip_norm = 5.0;
};

/// Self-healing harness around one (model, optimizer) training loop:
///
///   SelfHealing healer(config.recovery, model, &opt, "fine-tune");
///   for (epoch ...) {
///     forward; loss.Backward();
///     if (!healer.GuardedStep(loss.item())) {
///       if (!healer.Recover()) { /* budget exhausted: degrade */ break; }
///       continue;  // retry the epoch from the rolled-back parameters
///     }
///     healer.Commit();  // parameters are healthy: new last-known-good
///   }
class SelfHealing {
 public:
  /// Snapshots the model's current parameters as the initial last-good
  /// state. `context` names the loop in log lines ("fine-tune", ...).
  SelfHealing(const RecoveryConfig& config, const Module& model,
              Optimizer* opt, std::string context);

  /// Checks loss and gradients, applies the optimizer step, then checks the
  /// updated parameters. Returns true when everything stayed finite; on
  /// false the step may have poisoned the parameters — call Recover().
  bool GuardedStep(double loss);

  /// Marks the current parameters as last-known-good.
  void Commit();

  /// Restores the last-good parameters, decays the learning rate, and turns
  /// on gradient clipping. Returns false when the retry budget is spent
  /// (the model is still restored to the last-good state).
  bool Recover();

  /// Number of recoveries performed so far.
  int64_t retries() const { return retries_; }

  /// Restores a retry count consumed before a crash, so a resumed run
  /// continues with the same remaining budget (docs/resume.md).
  void RestoreRetries(int64_t retries) {
    FW_CHECK_GE(retries, 0);
    retries_ = retries;
  }

  /// Why the most recent GuardedStep failed (for logs and stats).
  const common::Status& last_failure() const { return last_failure_; }

 private:
  RecoveryConfig config_;
  const Module& model_;
  Optimizer* opt_;
  std::string context_;
  GradientGuard guard_;
  std::vector<std::vector<float>> last_good_;
  common::Status last_failure_;
  int64_t retries_ = 0;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_GUARD_H_
