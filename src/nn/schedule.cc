#include "nn/schedule.h"

#include <cmath>
#include <numbers>

namespace fairwos::nn {

float StepDecaySchedule::Multiplier(int64_t epoch) const {
  FW_CHECK_GE(epoch, 0);
  const int64_t steps = epoch / step_size_;
  return std::pow(gamma_, static_cast<float>(steps));
}

float CosineSchedule::Multiplier(int64_t epoch) const {
  FW_CHECK_GE(epoch, 0);
  if (epoch >= total_epochs_) return floor_;
  const double progress =
      static_cast<double>(epoch) / static_cast<double>(total_epochs_);
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return static_cast<float>(floor_ + (1.0 - floor_) * cosine);
}

float WarmupSchedule::Multiplier(int64_t epoch) const {
  FW_CHECK_GE(epoch, 0);
  if (epoch >= warmup_epochs_) return 1.0f;
  const float progress =
      static_cast<float>(epoch) / static_cast<float>(warmup_epochs_);
  return start_ + (1.0f - start_) * progress;
}

}  // namespace fairwos::nn
