// Learning-rate schedules. The paper trains at a fixed rate; schedules are
// provided for the repository's own fine-tuning experiments (a warmup ramp
// stabilises the GIN/GAT fine-tuning phase) and as general library surface.
#ifndef FAIRWOS_NN_SCHEDULE_H_
#define FAIRWOS_NN_SCHEDULE_H_

#include <cstdint>

#include "common/check.h"

namespace fairwos::nn {

/// Interface: maps an epoch index to a learning-rate multiplier in (0, 1].
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  /// Multiplier applied to the base learning rate at `epoch` (0-based).
  virtual float Multiplier(int64_t epoch) const = 0;
};

/// Constant 1.0 — the paper's setting.
class ConstantSchedule : public LrSchedule {
 public:
  float Multiplier(int64_t) const override { return 1.0f; }
};

/// Multiplies by `gamma` every `step_size` epochs.
class StepDecaySchedule : public LrSchedule {
 public:
  StepDecaySchedule(int64_t step_size, float gamma)
      : step_size_(step_size), gamma_(gamma) {
    FW_CHECK_GT(step_size_, 0);
    FW_CHECK_GT(gamma_, 0.0f);
    FW_CHECK_LE(gamma_, 1.0f);
  }
  float Multiplier(int64_t epoch) const override;

 private:
  int64_t step_size_;
  float gamma_;
};

/// Cosine annealing from 1 to `floor` over `total_epochs`.
class CosineSchedule : public LrSchedule {
 public:
  CosineSchedule(int64_t total_epochs, float floor)
      : total_epochs_(total_epochs), floor_(floor) {
    FW_CHECK_GT(total_epochs_, 0);
    FW_CHECK_GE(floor_, 0.0f);
    FW_CHECK_LE(floor_, 1.0f);
  }
  float Multiplier(int64_t epoch) const override;

 private:
  int64_t total_epochs_;
  float floor_;
};

/// Linear ramp from `start` to 1 over `warmup_epochs`, then constant 1.
class WarmupSchedule : public LrSchedule {
 public:
  WarmupSchedule(int64_t warmup_epochs, float start)
      : warmup_epochs_(warmup_epochs), start_(start) {
    FW_CHECK_GT(warmup_epochs_, 0);
    FW_CHECK_GT(start_, 0.0f);
    FW_CHECK_LE(start_, 1.0f);
  }
  float Multiplier(int64_t epoch) const override;

 private:
  int64_t warmup_epochs_;
  float start_;
};

}  // namespace fairwos::nn

#endif  // FAIRWOS_NN_SCHEDULE_H_
